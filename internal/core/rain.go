package core

import (
	"errors"

	"amber/internal/fil"
	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
)

// RAIN reconstruction and patrol scrub, the firmware halves of the ftl
// parity layout (ftl/rain.go):
//
//   - Reactive: an uncorrectable read of a data page reassembles the page
//     from its stripe (XOR of the surviving peers and parity, all verified
//     against their OOB verdicts) and executes a certified PlanReconstruct
//     that re-homes the sub-page — the data loss becomes a latency event.
//     Host-path fills retry their fetch against the fresh mapping
//     (recoverFillFault); GC plan faults queue the repair and execute it
//     once the recovered plan restores model/flash lockstep
//     (noteRainFault / drainRainRepairs).
//
//   - Patrol: a periodic scrub tick (RunConfig.ScrubEvery, its own
//     engine domain so the dispatch prefix is worker-count invariant)
//     refreshes the super-block under the most read-disturb/retention
//     stress — migrate valid data onto young cells, erase — before the
//     stress becomes uncorrectable.
//
// The two halves meet in the scrub-or-retire policy (noteRecon): a block
// that keeps sourcing reconstructions is scrubbed when a patrol is armed
// (disturb and retention are stress, not damage — the erase clears them),
// but retired conservatively when none is, which is what makes an
// unscrubbed device exhaust its spare reserve and latch read-only sooner
// than a scrubbed one under the same read stress.

// scrubRiskThreshold is the patrol trigger: a super-block whose riskiest
// plane block has accumulated this fraction of a read-disturb or retention
// limit is refreshed before the stress becomes uncorrectable.
const scrubRiskThreshold = 0.6

// rainRepair is one reconstruction queued by GC plan-fault recovery: the
// payload was reassembled from the stripe at fault time (while the members
// were still physically present) and the re-homing plan executes once the
// faulted plan's recovery lands.
type rainRepair struct {
	lspn int64
	sub  int
	sb   int    // source super-block, for the scrub-or-retire policy
	data []byte // reassembled payload (nil when data tracking is off)
}

// stripeAssemble verifies every surviving member of src's RAIN stripe
// (peer data pages plus parity) is physically present, clean and readable,
// and XORs their payloads into the controller-RAM scratch — reassembling
// src's page. Returns the member locations (for the repair plan's timing
// reads), the payload (nil when data tracking is off) and whether the
// stripe proves the bytes; a torn, unwritten or unreadable member is a
// double fault. The returned slices are scratch, valid until the next
// call.
func (s *System) stripeAssemble(now sim.Time, src ftl.PageLoc) ([]ftl.PageLoc, []byte, bool) {
	peers, parity, ok := s.FTL.StripePeers(src, s.reconLocs[:0])
	if !ok {
		return nil, nil, false
	}
	pa := s.FTL.Address(parity)
	if !s.Flash.PageWritten(pa) {
		return nil, nil, false
	}
	if po := s.Flash.PageOOB(pa); !po.Good || po.FI != ftl.ParityTag || po.Stripe&s.FTL.StripeMaskBit(src) == 0 {
		return nil, nil, false
	}
	members := append(peers, parity)
	s.reconLocs = members
	track := s.Flash.TrackData()
	if track {
		if s.reconBuf == nil {
			ps := s.cfg.Device.Geometry.PageSize
			s.reconBuf = make([]byte, ps)
			s.reconTmp = make([]byte, ps)
		}
		for i := range s.reconBuf {
			s.reconBuf[i] = 0
		}
	}
	for _, m := range members {
		ma := s.FTL.Address(m)
		if !s.Flash.PageWritten(ma) {
			return nil, nil, false
		}
		if oob := s.Flash.PageOOB(ma); !oob.Good {
			return nil, nil, false
		}
		if err := s.Flash.ProbeRead(now, ma); err != nil {
			return nil, nil, false
		}
		if track {
			s.Flash.PagePayload(ma, s.reconTmp)
			for j := range s.reconBuf {
				s.reconBuf[j] ^= s.reconTmp[j]
			}
		}
	}
	if !track {
		return members, nil, true
	}
	return members, s.reconBuf, true
}

// recoverFillFault handles a flash fault surfaced by a fill's read batch:
// with RAIN armed and the fault an uncorrectable read of one of the fetch
// locations, the stripe is reassembled and the sub-page re-homed, so the
// caller re-looks-up the fresh mapping and retries the fetch — the read
// served its originally acknowledged bytes a reconstruction later.
// Returns whether to retry and the firmware clock after the repair.
func (s *System) recoverFillFault(e *sim.Engine, t sim.Time, lspn int64, fetch []ftl.PageLoc, err error) (bool, sim.Time) {
	if !s.FTL.RAINEnabled() || !errors.Is(err, nand.ErrUncorrectable) {
		return false, t
	}
	var fe *nand.FaultError
	if !errors.As(err, &fe) {
		return false, t
	}
	for _, loc := range fetch {
		if s.FTL.Address(loc) == fe.Addr {
			done, ok := s.reconstructSub(e, t, lspn, loc.Sub, loc, true)
			return ok, done
		}
	}
	return false, t
}

// reconstructSub reassembles and re-homes the data sub-page (lspn, sub)
// after an uncorrectable read at src. withAux emits timing reads of the
// surviving stripe members into the repair plan (the host read path; the
// GC-recovery path already read them as part of the faulted plan and
// passes prepared payloads through the repair queue instead). ok is false
// on a double fault — the caller falls back to honest data loss.
func (s *System) reconstructSub(e *sim.Engine, t sim.Time, lspn int64, sub int, src ftl.PageLoc, withAux bool) (sim.Time, bool) {
	aux, data, ok := s.stripeAssemble(t, src)
	if !ok {
		s.FTL.NoteDoubleFault()
		return t, false
	}
	if !withAux {
		aux = nil
	}
	return s.executeReconstruct(e, t, lspn, sub, src.SB, aux, data)
}

// executeReconstruct builds and runs the certified re-homing plan, feeding
// the reassembled payload through the host-data path, then applies the
// scrub-or-retire policy to the source block.
func (s *System) executeReconstruct(e *sim.Engine, t sim.Time, lspn int64, sub, srcSB int, aux []ftl.PageLoc, data []byte) (sim.Time, bool) {
	plan, err := s.FTL.PlanReconstruct(t, lspn, sub, aux)
	if err != nil { // Allocation exhausted on a degrading device: execute the partial
		// plan (flash in lockstep with the model's mutations), then fall
		// back to honest loss.
		if len(plan.Ops) > 0 {
			s.runPlan(e, t, plan, fil.PlanData{}, nil)
		}
		s.FTL.NoteDoubleFault()
		return t, false
	}
	var hd fil.PlanData
	if data != nil {
		subSize := s.ICL.Config().SubSize
		if s.reconData == nil {
			s.reconData = make([]byte, s.FTL.SuperPageBytes())
			s.reconDirty = make([]bool, s.FTL.SubPagesPerSuperPage())
		}
		for i := range s.reconDirty {
			s.reconDirty[i] = false
		}
		s.reconDirty[sub] = true
		copy(s.reconData[sub*subSize:(sub+1)*subSize], data)
		hd = fil.HostData(lspn, s.reconDirty, s.reconData, subSize)
	}
	t2 := s.chargeFirmware(t, 1, "ftl.rain", s.filScheduleMix(len(plan.Ops)))
	res, rerr, _ := s.runPlan(e, t2, plan, hd, nil)
	if rerr != nil {
		return t2, false
	}
	done := res.Done
	if done < t2 {
		done = t2
	}
	done = s.noteRecon(e, done, srcSB)
	return done, true
}

// noteRecon applies the scrub-or-retire policy after a reconstruction
// sourced from super-block sb: under an armed patrol the block queues for
// a forced scrub (the erase clears the accumulated stress and the block
// rejoins the pool); without one the firmware cannot tell stress from
// damage and retires the block, spending a spare.
func (s *System) noteRecon(e *sim.Engine, t sim.Time, sb int) sim.Time {
	if !s.FTL.NoteReconstruct(sb) {
		return t
	}
	if s.scrubArmed {
		for _, q := range s.scrubPending {
			if q == sb {
				return t
			}
		}
		s.scrubPending = append(s.scrubPending, sb)
		return t
	}
	plan, err := s.FTL.PlanRetire(t, sb)
	if len(plan.Ops) == 0 && err == nil {
		return t
	}
	t2 := s.chargeFirmware(t, 1, "ftl.retire", s.filScheduleMix(len(plan.Ops)))
	res, _, _ := s.runPlan(e, t2, plan, fil.PlanData{}, nil)
	if res.Done > t2 {
		t2 = res.Done
	}
	return t2
}

// noteRainFault inspects a plan fault before recovery re-plans around it:
// an uncorrectable read of a mapped data page under RAIN is repairable.
// The stripe is reassembled now — while the members are still physically
// present (the victim's erase sits in the never-executed suffix) — and the
// repair queued for execution once the recovered plan restores lockstep.
// Recovery still unmaps the page (counted in LostSubs) and pads its paired
// program; the queued repair then re-homes the payload, so the net effect
// is a latency event, with Reconstructions recording the save. A stripe
// that cannot prove the bytes is a double fault and the unmapping stands.
func (s *System) noteRainFault(t sim.Time, pf *fil.PlanFault) {
	if !s.FTL.RAINEnabled() || pf.Op.Kind != ftl.OpRead || pf.Op.LSPN < 0 {
		return
	}
	if !errors.Is(pf.Err, nand.ErrUncorrectable) {
		return
	}
	src := pf.Op.Loc
	_, data, ok := s.stripeAssemble(t, src)
	if !ok {
		s.FTL.NoteDoubleFault()
		return
	}
	var cp []byte
	if data != nil {
		cp = append([]byte(nil), data...)
	}
	s.rainRepairs = append(s.rainRepairs, rainRepair{lspn: pf.Op.LSPN, sub: src.Sub, sb: src.SB, data: cp})
}

// drainRainRepairs executes the reconstructions GC plan-fault recovery
// queued. Re-entrancy-guarded: a repair's own plan can fault and queue
// further repairs, which the outermost drain picks up.
func (s *System) drainRainRepairs(e *sim.Engine, t sim.Time) sim.Time {
	if s.rainDraining {
		return t
	}
	s.rainDraining = true
	defer func() { s.rainDraining = false }()
	for len(s.rainRepairs) > 0 {
		r := s.rainRepairs[0]
		s.rainRepairs = s.rainRepairs[:copy(s.rainRepairs, s.rainRepairs[1:])]
		if done, ok := s.executeReconstruct(e, t, r.lspn, r.sub, r.sb, nil, r.data); ok && done > t {
			t = done
		}
	}
	return t
}

// scrubTick runs one patrol pass at t: a forced scrub queued by
// reconstruction pressure first, else the super-block past the patrol
// risk threshold. One block per tick keeps the background traffic from
// starving the foreground.
func (s *System) scrubTick(e *sim.Engine, t sim.Time) {
	if s.FTL.ReadOnly() {
		return
	}
	sb := -1
	for len(s.scrubPending) > 0 {
		cand := s.scrubPending[0]
		s.scrubPending = s.scrubPending[:copy(s.scrubPending, s.scrubPending[1:])]
		if s.FTL.Scrubbable(cand) {
			sb = cand
			break
		}
	}
	if sb < 0 {
		sb = s.riskiestSB(t)
	}
	if sb < 0 {
		return
	}
	plan, moved, err := s.FTL.PlanScrub(t, sb)
	if err != nil {
		// Out of space mid-scrub on a degrading device: execute the partial
		// plan (lockstep) and let foreground GC recover the reserve first.
		if len(plan.Ops) > 0 {
			s.runPlan(e, t, plan, fil.PlanData{}, nil)
		}
		return
	}
	if len(plan.Ops) == 0 {
		return
	}
	t2 := s.chargeFirmware(t, 1, "ftl.scrub", s.gcMix(moved))
	s.runPlan(e, t2, plan, fil.PlanData{}, nil)
	s.drainRainRepairs(e, t2)
}

// riskiestSB returns the super-block whose most-stressed plane block is
// past the patrol threshold (the maximum over its plane blocks of
// nand.Flash.BlockRisk), or -1 when nothing qualifies.
func (s *System) riskiestSB(now sim.Time) int {
	geo := s.cfg.Device.Geometry
	best := -1
	bestRisk := scrubRiskThreshold
	for sb := 0; sb < s.FTL.SuperBlockCount(); sb++ {
		if !s.FTL.Scrubbable(sb) {
			continue
		}
		risk := 0.0
		for p := 0; p < geo.TotalPlanes(); p++ {
			bi := geo.BlockIndex(s.FTL.Address(ftl.PageLoc{SB: sb, Plane: p, Sub: p}))
			if r := s.Flash.BlockRisk(bi, now); r > risk {
				risk = r
			}
		}
		if risk >= bestRisk {
			best, bestRisk = sb, risk
		}
	}
	return best
}
