package core_test

import (
	"bytes"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/host"
	"amber/internal/proto"
	"amber/internal/sim"
	"amber/internal/workload"
)

func smallSystem(t *testing.T, mutate func(*core.SystemConfig)) *core.System {
	t.Helper()
	cfg := config.PCSystem(config.SmallTestDevice())
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemPresets(t *testing.T) {
	for name := range config.Devices() {
		d, err := config.Device(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.NewSystem(config.PCSystem(d)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := config.Device("nope"); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestWriteReadDataIntegrity(t *testing.T) {
	s := smallSystem(t, nil)
	bs := 8192
	payload := make([]byte, bs)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	req := workload.Request{Write: true, Offset: int64(bs) * 3, Length: bs}
	done, err := s.Submit(0, req, payload)
	if err != nil {
		t.Fatal(err)
	}
	if done == 0 {
		t.Fatal("write completed at time zero")
	}
	got := make([]byte, bs)
	req.Write = false
	if _, err := s.Submit(done, req, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back differs from written payload")
	}
}

func TestDataSurvivesCacheEvictionAndFlush(t *testing.T) {
	s := smallSystem(t, nil)
	bs := s.Split.LineBytes()
	written := map[int64][]byte{}
	now := sim.Time(0)
	// Write far more lines than the 8-line cache holds.
	for i := int64(0); i < 32; i++ {
		payload := make([]byte, bs)
		for j := range payload {
			payload[j] = byte(int64(j)*7 + i)
		}
		var err error
		now, err = s.Submit(now, workload.Request{Write: true, Offset: i * int64(bs), Length: bs}, payload)
		if err != nil {
			t.Fatal(err)
		}
		written[i] = payload
	}
	if _, err := s.Flush(now); err != nil {
		t.Fatal(err)
	}
	for i, want := range written {
		got := make([]byte, bs)
		var err error
		now, err = s.Submit(now, workload.Request{Offset: i * int64(bs), Length: bs}, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("line %d corrupted after eviction", i)
		}
	}
}

func TestUnwrittenReadReturnsZeroes(t *testing.T) {
	s := smallSystem(t, nil)
	got := make([]byte, 4096)
	got[0] = 0xFF
	if _, err := s.Submit(0, workload.Request{Offset: 0, Length: 4096}, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	s := smallSystem(t, nil)
	if _, err := s.Submit(0, workload.Request{Offset: -1, Length: 4096}, nil); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := s.Submit(0, workload.Request{Offset: 0, Length: 0}, nil); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := s.Submit(0, workload.Request{Offset: s.VolumeBytes(), Length: 4096}, nil); err == nil {
		t.Fatal("out-of-volume request accepted")
	}
	if _, err := s.Submit(0, workload.Request{Offset: 0, Length: 4096}, make([]byte, 10)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestCompletionTimesAdvance(t *testing.T) {
	s := smallSystem(t, nil)
	var prev sim.Time
	for i := 0; i < 10; i++ {
		done, err := s.Submit(prev, workload.Request{Write: true, Offset: int64(i) * 4096, Length: 4096}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if done <= prev {
			t.Fatalf("request %d completed at %v, not after %v", i, done, prev)
		}
		prev = done
	}
	if s.Now() != prev {
		t.Fatalf("system clock %v, want %v", s.Now(), prev)
	}
}

func TestRunClosedLoop(t *testing.T) {
	s := smallSystem(t, nil)
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(gen, core.RunConfig{Requests: 200, IODepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 200 || res.Depth != 8 {
		t.Fatalf("result = %+v", res)
	}
	if res.BytesWritten != 200*4096 {
		t.Fatalf("BytesWritten = %d", res.BytesWritten)
	}
	if res.BandwidthMBps() <= 0 || res.AvgLatencyUs() <= 0 {
		t.Fatal("degenerate bandwidth/latency")
	}
	if res.Latency.Count() != 200 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
}

func TestDeeperQueueRaisesBandwidth(t *testing.T) {
	bw := func(depth int) float64 {
		s := smallSystem(t, func(c *core.SystemConfig) { c.Device.TrackData = false })
		gen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Flush(s.Now()); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(gen, core.RunConfig{Requests: 400, IODepth: depth})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	b1, b8 := bw(1), bw(8)
	if b8 <= b1*1.5 {
		t.Fatalf("depth 8 (%v MB/s) should be well above depth 1 (%v MB/s)", b8, b1)
	}
}

func TestHTypeQueueClamp(t *testing.T) {
	s := smallSystem(t, func(c *core.SystemConfig) {
		c.Device.Protocol = proto.SATA30()
	})
	gen, _ := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 3)
	res, err := s.Run(gen, core.RunConfig{Requests: 50, IODepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 32 {
		t.Fatalf("SATA depth = %d, want clamp to 32", res.Depth)
	}
}

func TestCFQDepthCap(t *testing.T) {
	s := smallSystem(t, func(c *core.SystemConfig) {
		c.Host.Scheduler = host.CFQ
	})
	gen, _ := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 3)
	res, err := s.Run(gen, core.RunConfig{Requests: 50, IODepth: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 8 {
		t.Fatalf("CFQ depth = %d, want cap at 8", res.Depth)
	}
}

func TestSequentialReadBeatsRandomRead(t *testing.T) {
	run := func(p workload.Pattern) float64 {
		s := smallSystem(t, func(c *core.SystemConfig) {
			c.Device.TrackData = false
			// Cache sized big enough for the prefetch window but small
			// relative to the volume, as on a real device (a cache covering
			// a third of the volume would hand random reads free hits).
			c.Device.CacheLines = 16
			c.Device.Geometry.BlocksPerPlane = 32
		})
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Flush(s.Now()); err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewFIO(p, 4096, s.VolumeBytes(), 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(gen, core.RunConfig{Requests: 600, IODepth: 16})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthMBps()
	}
	seq, rnd := run(workload.SeqRead), run(workload.RandRead)
	if seq <= rnd {
		t.Fatalf("sequential read (%v) should beat random read (%v): readahead + locality", seq, rnd)
	}
}

func TestPassiveModeUsesHostResources(t *testing.T) {
	active := smallSystem(t, nil)
	passive := smallSystem(t, func(c *core.SystemConfig) {
		c.Device.Passive = true
		c.Device.Protocol = proto.OCSSD20()
	})
	if !passive.Passive() || active.Passive() {
		t.Fatal("passive flags wrong")
	}
	// pblk allocates host memory at init (64 MB + tables).
	if passive.Host.MemUsed() <= active.Host.MemUsed() {
		t.Fatal("pblk should hold more host memory than the NVMe driver")
	}
	gen, _ := workload.NewFIO(workload.RandWrite, 4096, passive.VolumeBytes(), 5)
	if _, err := passive.Run(gen, core.RunConfig{Requests: 300, IODepth: 8}); err != nil {
		t.Fatal(err)
	}
	gen2, _ := workload.NewFIO(workload.RandWrite, 4096, active.VolumeBytes(), 5)
	if _, err := active.Run(gen2, core.RunConfig{Requests: 300, IODepth: 8}); err != nil {
		t.Fatal(err)
	}
	// The passive architecture consumes far more host CPU (Fig. 15b).
	pu := passive.Host.CPU.BusyTime()
	au := active.Host.CPU.BusyTime()
	if float64(pu) < 1.5*float64(au) {
		t.Fatalf("pblk host CPU busy (%v) should far exceed NVMe (%v)", pu, au)
	}
}

func TestRunSampling(t *testing.T) {
	s := smallSystem(t, nil)
	gen, _ := workload.NewFIO(workload.SeqWrite, 4096, s.VolumeBytes(), 6)
	res, err := s.Run(gen, core.RunConfig{
		Requests: 300, IODepth: 4,
		SampleEvery: sim.Millisecond,
		RunMemBytes: 280 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.HostCPUUtil.Len() == 0 || res.HostMemMB.Len() == 0 {
		t.Fatal("sampling produced no points")
	}
	// Memory series reflects the run allocation.
	if res.HostMemMB.Max() < 280 {
		t.Fatalf("memory series max = %v MB", res.HostMemMB.Max())
	}
	// The allocation is released after the run.
	if s.Host.MemUsed() >= 280<<20 {
		t.Fatal("run memory not released")
	}
}

func TestPreconditionReachesSteadyState(t *testing.T) {
	s := smallSystem(t, func(c *core.SystemConfig) { c.Device.TrackData = false })
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(s.Now()); err != nil {
		t.Fatal(err)
	}
	// After preconditioning and a flush every LSPN is mapped.
	for lspn := int64(0); lspn < s.FTL.UserSuperPages(); lspn++ {
		if !s.FTL.Mapped(lspn) {
			t.Fatalf("LSPN %d unmapped after precondition", lspn)
		}
	}
	// Stress overwrites force GC.
	if err := s.StressFill(4096, 0.5); err != nil {
		t.Fatal(err)
	}
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("no GC during stress fill")
	}
}

func TestFirmwareInstructionAccounting(t *testing.T) {
	s := smallSystem(t, nil)
	gen, _ := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 8)
	if _, err := s.Run(gen, core.RunConfig{Requests: 100, IODepth: 4}); err != nil {
		t.Fatal(err)
	}
	total := s.DevCPU.Instructions().Total()
	if total == 0 {
		t.Fatal("no firmware instructions recorded")
	}
	// Load/store should dominate per Fig. 13c.
	if f := s.DevCPU.Instructions().LoadStoreFraction(); f < 0.5 || f > 0.7 {
		t.Fatalf("load/store fraction = %v", f)
	}
	mods := s.DevCPU.Modules()
	if len(mods) < 2 {
		t.Fatalf("modules = %v", mods)
	}
}

func TestEnergyPositiveAfterRun(t *testing.T) {
	s := smallSystem(t, nil)
	gen, _ := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 9)
	res, err := s.Run(gen, core.RunConfig{Requests: 200, IODepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	el := res.Elapsed()
	if s.Flash.TotalEnergyJoules(el) <= 0 {
		t.Fatal("flash energy not accounted")
	}
	if s.DevDRAM.TotalEnergyJoules(el) <= 0 {
		t.Fatal("DRAM energy not accounted")
	}
	if s.DevCPU.TotalEnergyJoules(el) <= 0 {
		t.Fatal("CPU energy not accounted")
	}
}

func TestNVMeVsSATALatency(t *testing.T) {
	lat := func(p proto.Params) float64 {
		s := smallSystem(t, func(c *core.SystemConfig) {
			c.Device.Protocol = p
			c.Device.TrackData = false
		})
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 10)
		res, err := s.Run(gen, core.RunConfig{Requests: 300, IODepth: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatencyUs()
	}
	nvme, sata := lat(proto.NVMe121()), lat(proto.SATA30())
	if nvme >= sata {
		t.Fatalf("NVMe QD1 latency (%v us) should beat SATA (%v us)", nvme, sata)
	}
}

// TestSubmitAllocLean locks in the tentpole guarantee: with TrackData off,
// a steady-state Submit performs (almost) no heap allocations — the event
// records, op structs, line buffers and plan storage are all pooled.
func TestSubmitAllocLean(t *testing.T) {
	d := config.SmallTestDevice()
	d.TrackData = false
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every pool (ops, fills, engine records, FTL plan, FIL scratch)
	// through cache-eviction and GC territory.
	i := 0
	for ; i < 2000; i++ {
		if _, err := s.Submit(s.Now(), gen.Next(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := s.Submit(s.Now(), gen.Next(i), nil); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// The seed implementation spent ~25 allocs per request; the pooled
	// pipeline's budget is under one (occasional map/slice growth inside
	// rare GC plans is tolerated, steady state is zero).
	if allocs > 1 {
		t.Fatalf("Submit allocated %.2f objects/op in steady state, want <= 1", allocs)
	}
}

// TestSubmitDeterministicAcrossRuns guards the scratch-and-pool refactor
// against order dependence: completion times must not depend on map
// iteration order or on which recycled op/fill struct a request happens
// to draw (stale fields leaking through reuse). The workload interleaves
// shapes — single-line and multi-line, reads and writes, hits and misses
// — so recycled ops cross shapes, then the identical sequence is replayed
// on a second system and every completion time compared.
func TestSubmitDeterministicAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		s := smallSystem(t, nil)
		bs := s.Split.LineBytes()
		var times []sim.Time
		submit := func(req workload.Request) {
			done, err := s.Submit(s.Now(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, done)
		}
		gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			submit(gen.Next(i))
			switch i % 4 {
			case 0: // multi-line write lands in pooled ops sized by 4K ones
				submit(workload.Request{Write: true, Offset: int64(i%8) * int64(bs), Length: 3 * bs})
			case 2: // read mixes hit/miss fills through the same pools
				submit(workload.Request{Offset: int64(i%16) * int64(bs), Length: bs})
			}
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d completed at %v vs %v across identical runs", i, a[i], b[i])
		}
	}
}
