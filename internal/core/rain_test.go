package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/workload"
)

// rainSystem builds the faultSystem shape with die-level RAIN armed:
// stripe width 3 over the 16-plane device (each group of 3 data planes
// shares one parity plane), read-disturb and retention accumulation on,
// and probabilities high enough that a read storm draws uncorrectables
// which the stripe reconstructs.
func rainSystem(t *testing.T) *core.System {
	t.Helper()
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	d.OPRatio = 0.4
	d.RAINWidth = 3
	// Read-fault pressure only: program/erase faults retire blocks, and on
	// this RAIN-shrunk geometry the recovery migrations cascade into spare
	// exhaustion before the read storm reconstructs anything (their
	// worker-count equivalence is TestFaultScheduleGoldenEquivalence's
	// job). Reads draw hard — disturb and retention growth push repeat
	// reads over the uncorrectable threshold mid-storm.
	d.Faults = nand.FaultConfig{
		Seed:             99,
		ReadFailProb:     0.05,
		MaxReadRetries:   1,
		ReadDisturbLimit: 1024,
		RetentionLimit:   500 * sim.Millisecond,
	}
	d.SpareBlocks = 6
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rainTrajectory drives one RAIN-armed faulty system through a GC-heavy
// overwrite storm plus a read storm and renders every observable — run
// rows with failure and reconstruction counters, fault sites, component
// stats, payload fingerprints — into one golden string.
func rainTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	// Phase 1: 4K random overwrites — parity rides along every allocation,
	// GC churn draws program and erase faults among parity-striped blocks.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 600, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderFaultRow(&out, "rain-rand-write", res)
	fmt.Fprintf(&out, "  recon %d double %d parity %d\n", res.Reconstructions, res.DoubleFaults, res.ParityWrites)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC; the RAIN equivalence must cover parity under GC")
	}

	// Phase 2: random reads against the striped volume — uncorrectables
	// draw, each reconstructs deterministically from its stripe peers.
	rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	renderFaultRow(&out, "rain-rand-read", res)
	fmt.Fprintf(&out, "  recon %d double %d parity %d\n", res.Reconstructions, res.DoubleFaults, res.ParityWrites)

	renderFaults(&out, s)
	renderState(&out, s)
	renderFaultData(&out, s)
	return out.String()
}

// TestRAINReconstructGoldenEquivalence is the acceptance bar for die-level
// RAIN: a fault-armed striped trajectory — parity writes, uncorrectable
// draws, stripe reconstructions, remaps — must render byte-identical
// goldens at every intra-parallel worker count versus plain serial
// dispatch. Reconstruction plans are built in serial sections from the
// same certified lookups the serial leg sees, so the repaired payloads and
// the post-repair mapping are a property of the op sequence alone. Run
// under -race (AMBERSIM_INTRA_WORKERS matrix) this also proves the
// reconstruction path adds no data races.
func TestRAINReconstructGoldenEquivalence(t *testing.T) {
	serial := rainTrajectory(t, rainSystem(t), 0)

	// The equivalence is vacuous unless parity was written and stripes
	// actually reconstructed somewhere on the trajectory.
	var totRecon, totParity uint64
	for _, line := range strings.Split(serial, "\n") {
		var recon, double, parity uint64
		if _, err := fmt.Sscanf(line, "  recon %d double %d parity %d", &recon, &double, &parity); err == nil {
			totRecon += recon
			totParity += parity
		}
	}
	if totParity == 0 {
		t.Fatalf("trajectory wrote no parity:\n%s", serial)
	}
	if totRecon == 0 {
		t.Fatalf("trajectory reconstructed nothing; raise the read-fault pressure:\n%s", serial)
	}

	for _, workers := range intraWorkerMatrix(t) {
		got := rainTrajectory(t, rainSystem(t), workers)
		if got != serial {
			sl := strings.Split(serial, "\n")
			gl := strings.Split(got, "\n")
			for i := 0; i < len(sl) || i < len(gl); i++ {
				var a, b string
				if i < len(sl) {
					a = sl[i]
				}
				if i < len(gl) {
					b = gl[i]
				}
				if a != b {
					t.Fatalf("workers=%d RAIN trajectory diverged at line %d:\nserial: %s\nworkers: %s", workers, i, a, b)
				}
			}
			t.Fatalf("workers=%d diverged from serial (length %d vs %d)", workers, len(serial), len(got))
		}
	}
}

// TestRAINReconstructFaultPayload proves reconstruction returns the
// originally acknowledged bytes, not plausible garbage: every logical
// block gets a distinct tracked payload, a read storm forces stripe
// reconstructions, and every successful read-back — including the ones
// that went through reconstruction — must match the acknowledged write
// byte-for-byte. Reads lost to double faults surface as errors, never as
// wrong data.
func TestRAINReconstructFaultPayload(t *testing.T) {
	// Read-fault-only error model: program and erase faults off so the
	// whole-volume fill stays clean, a generous spare reserve so the read
	// storm's retirement pressure cannot latch read-only mid-test.
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	d.OPRatio = 0.4
	d.RAINWidth = 3
	d.Faults = nand.FaultConfig{
		Seed:             99,
		ReadFailProb:     0.03,
		MaxReadRetries:   1,
		ReadDisturbLimit: 4096,
	}
	d.SpareBlocks = 6
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	bs := 4096
	n := int(s.VolumeBytes() / int64(bs))
	want := make(map[int64][]byte, n)
	for i := 0; i < n; i++ {
		off := int64(i) * int64(bs)
		buf := make([]byte, bs)
		for k := range buf {
			buf[k] = byte(int(off) + k + 7*i)
		}
		if _, err := s.Submit(s.Now(), workload.Request{Write: true, Offset: off, Length: bs}, buf); err != nil {
			t.Fatal(err)
		}
		want[off] = buf
	}
	if _, err := s.Flush(s.Now()); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	// Read the whole volume back several times: repeated reads accumulate
	// disturb, pushing the draw over the uncorrectable line on some pages.
	recon0 := s.FTL.Stats().Reconstructions
	var lost, checked int
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			off := int64(i) * int64(bs)
			buf := make([]byte, bs)
			if _, err := s.Submit(s.Now(), workload.Request{Offset: off, Length: bs}, buf); err != nil {
				lost++
				continue
			}
			checked++
			if !bytes.Equal(buf, want[off]) {
				t.Fatalf("pass %d off %d: read-back differs from acknowledged write", pass, off)
			}
		}
	}
	recon := s.FTL.Stats().Reconstructions - recon0
	if recon == 0 {
		t.Fatalf("read storm reconstructed nothing (lost %d, checked %d); raise the fault pressure", lost, checked)
	}
	t.Logf("reconstructions %d, double-fault losses %d, verified reads %d", recon, lost, checked)
}

// TestScrubExtendsReadOnlyHorizon is the patrol scrubber's acceptance
// bar: under identical seeds and identical read-storm pressure, the
// scrubbed device must latch read-only strictly later than the unscrubbed
// one — or not at all. Without a scrubber, blocks under repeated
// reconstruction pressure are retired (each spending a spare) until the
// spare reserve exhausts; the scrubber instead migrates and erases them,
// clearing their disturb and retention stress without burning spares.
func TestScrubExtendsReadOnlyHorizon(t *testing.T) {
	horizon := func(scrub sim.Duration) (segments int, readOnly bool, scrubRuns uint64) {
		d := config.SmallTestDevice()
		d.Geometry = nand.Geometry{
			Channels:           8,
			PackagesPerChannel: 1,
			DiesPerPackage:     1,
			PlanesPerDie:       2,
			BlocksPerPlane:     10,
			PagesPerBlock:      16,
			PageSize:           4096,
		}
		d.OPRatio = 0.4
		d.RAINWidth = 3
		// Pure read-stress wear-out: no program/erase faults, a tight
		// disturb limit, and a tiny spare reserve so retirement pressure
		// latches quickly when nothing relieves the stress.
		d.Faults = nand.FaultConfig{
			Seed:             99,
			ReadFailProb:     0.04,
			MaxReadRetries:   1,
			ReadDisturbLimit: 512,
		}
		d.SpareBlocks = 1
		s, err := core.NewSystem(config.PCSystem(d))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 17)
		if err != nil {
			t.Fatal(err)
		}
		const maxSegments = 40
		for segments = 0; segments < maxSegments; segments++ {
			if s.FTL.ReadOnly() {
				break
			}
			if _, err := s.Run(gen, core.RunConfig{Requests: 200, IODepth: 16, ScrubEvery: scrub}); err != nil {
				t.Fatal(err)
			}
		}
		return segments, s.FTL.ReadOnly(), s.FTL.Stats().ScrubRuns
	}

	plainSegs, plainRO, _ := horizon(0)
	if !plainRO {
		t.Fatalf("unscrubbed device never latched read-only in %d segments; raise the read pressure", plainSegs)
	}
	scrubSegs, scrubRO, scrubRuns := horizon(2 * sim.Millisecond)
	if scrubRuns == 0 {
		t.Fatal("scrubber never ran; shorten the cadence")
	}
	if scrubRO && scrubSegs <= plainSegs {
		t.Fatalf("scrub did not extend the read-only horizon: scrubbed latched at segment %d, unscrubbed at %d", scrubSegs, plainSegs)
	}
	t.Logf("unscrubbed read-only after %d segments; scrubbed after %d (read-only %v, %d scrub runs)", plainSegs, scrubSegs, scrubRO, scrubRuns)
}

// TestRAINParityPowerLossFaultRecovery cuts power mid-storm on a striped
// device and proves the parity invariant survives the cut: the mount
// re-emits parity for rows completed right before the cut, and a
// post-mount read storm still reconstructs uncorrectable pages from their
// stripes — durably acknowledged data stays recoverable across the cut.
func TestRAINParityPowerLossFaultRecovery(t *testing.T) {
	s := rainSystem(t)
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 300, IODepth: 16, WithData: true})
	if err != nil {
		t.Fatal(err)
	}

	// Cut a third of the reference span into a second identical storm.
	cut := s.Now() + sim.Time((res.End-res.Start)/3)
	w2gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(w2gen, core.RunConfig{Requests: 600, IODepth: 16, WithData: true, PowerLossAt: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PowerLost {
		t.Fatalf("cut at %v did not fire (run ended %v)", cut, res.End)
	}
	if res.PowerLoss.Flash.InFlight == 0 {
		t.Fatal("cut caught no in-flight programs; move it deeper into the storm")
	}
	t.Logf("mount: %d mappings recovered, %d parity pages seen, %d parity re-emitted",
		res.Mount.RecoveredSubs, res.Mount.ParityPages, res.Mount.ParityReemitted)
	if res.Mount.ParityPages == 0 {
		t.Fatal("mount scan saw no parity pages on a striped device")
	}

	// The remounted device still reconstructs: a read storm against the
	// recovered mapping must turn its uncorrectable draws into stripe
	// repairs, not data loss.
	recon0 := s.FTL.Stats().Reconstructions
	rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 400, IODepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.FTL.Stats().Reconstructions - recon0; got == 0 {
		t.Fatalf("post-mount read storm reconstructed nothing (failed reads %d); parity did not survive the cut", res.FailedReads)
	}
}
