package core

import (
	"errors"
	"fmt"

	"amber/internal/fil"
	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/snap"
)

// SnapshotVersion is the image format version Snapshot writes and Restore
// accepts. Bump it whenever any module's Encode/DecodeState layout changes.
// Version 2: RAIN parity + scrub (nand disturb counters and stripe OOB,
// ftl per-SB reconstruction pressure and rain/scrub stats, core pending
// scrub queue).
const SnapshotVersion = 2

// configFingerprint hashes the full system configuration: an image restores
// only onto a device built from byte-identical knobs, because every decoder
// sizes its collections from the live configuration.
func (s *System) configFingerprint() uint64 {
	return snap.Fingerprint([]byte(fmt.Sprintf("%+v", s.cfg)))
}

// quiescedForSnapshot reports why the system cannot snapshot right now:
// snapshots capture states between Runs, with the engine drained — no
// in-flight fills, no waiters parked on them, no half-open plan batches.
func (s *System) quiescedForSnapshot() error {
	if err := s.Flash.QuiescedForSnapshot(); err != nil {
		return err
	}
	if len(s.filling) != 0 || len(s.waiters) != 0 {
		return fmt.Errorf("core: snapshot with %d fills in flight", len(s.filling))
	}
	return nil
}

// Snapshot serializes the system's complete functional state — FTL tables,
// cache contents, NAND pages with their OOB stamps and erase counts, fault
// cursors, every stats and energy accumulator — into a checksummed,
// versioned image. The system must be quiescent (between Runs, engine
// drained). restore(snapshot(S)) continues byte-identical to S.
func (s *System) Snapshot() ([]byte, error) {
	if err := s.quiescedForSnapshot(); err != nil {
		return nil, err
	}
	var e snap.Enc
	e.I64(int64(s.now))
	e.I64(s.lastEnd)
	e.U64(s.reqs)
	e.U64(s.bytesRead)
	e.U64(s.bytesWritten)
	e.U64(s.fillsTwoStage)
	e.U64(s.fillsLegacy)
	e.U64(uint64(len(s.scrubPending)))
	for _, sb := range s.scrubPending {
		e.U64(uint64(sb))
	}
	encodeResource(&e, s.link)
	e.Bool(s.hba != nil)
	if s.hba != nil {
		encodeResource(&e, s.hba)
	}
	fb := s.flushBuf.State()
	e.U64(uint64(len(fb.Servers)))
	for _, t := range fb.Servers {
		e.I64(int64(t))
	}
	e.I64(int64(fb.Busy))
	e.U64(fb.Claims)
	s.Flash.EncodeState(&e)
	s.FTL.EncodeState(&e)
	s.ICL.EncodeState(&e)
	s.FIL.EncodeState(&e)
	s.DevDRAM.EncodeState(&e)
	s.DevCPU.EncodeState(&e)
	s.Host.EncodeState(&e)
	s.DMA.EncodeState(&e)
	return snap.Seal(SnapshotVersion, s.configFingerprint(), e.Bytes()), nil
}

// Restore reinstalls a Snapshot image into s. The image must carry the
// supported format version and the fingerprint of s's configuration; a
// truncated, corrupted, version-skewed or mismatched image returns a typed
// snap error with s untouched — the decode targets a freshly constructed
// system and s is replaced only after every module decoded cleanly.
func (s *System) Restore(img []byte) error {
	body, err := snap.Open(img, SnapshotVersion, s.configFingerprint())
	if err != nil {
		return err
	}
	s2, err := NewSystem(s.cfg)
	if err != nil {
		return err
	}
	d := snap.NewDec(body)
	s2.now = sim.Time(d.I64())
	s2.lastEnd = d.I64()
	s2.reqs = d.U64()
	s2.bytesRead = d.U64()
	s2.bytesWritten = d.U64()
	s2.fillsTwoStage = d.U64()
	s2.fillsLegacy = d.U64()
	if n := int(d.U64()); n > 0 && d.Err() == nil {
		s2.scrubPending = make([]int, n)
		for i := range s2.scrubPending {
			s2.scrubPending[i] = int(d.U64())
		}
	}
	decodeResource(d, s2.link)
	hadHBA := d.Bool()
	if d.Err() == nil && hadHBA != (s2.hba != nil) {
		return fmt.Errorf("%w: image hba presence %v, device %v", snap.ErrMismatch, hadHBA, s2.hba != nil)
	}
	if hadHBA {
		decodeResource(d, s2.hba)
	}
	nFB := int(d.U64())
	fb := sim.PoolState{Servers: make([]sim.Time, nFB)}
	if d.Err() == nil && nFB != len(s2.flushBuf.State().Servers) {
		return fmt.Errorf("%w: flush buffer of %d slots, want %d", snap.ErrMismatch, nFB, len(s2.flushBuf.State().Servers))
	}
	for i := range fb.Servers {
		fb.Servers[i] = sim.Time(d.I64())
	}
	fb.Busy = sim.Duration(d.I64())
	fb.Claims = d.U64()
	if err := s2.Flash.DecodeState(d); err != nil {
		return err
	}
	if err := s2.FTL.DecodeState(d); err != nil {
		return err
	}
	if err := s2.ICL.DecodeState(d); err != nil {
		return err
	}
	if err := s2.FIL.DecodeState(d, s2.FTL); err != nil {
		return err
	}
	if err := s2.DevDRAM.DecodeState(d); err != nil {
		return err
	}
	if err := s2.DevCPU.DecodeState(d); err != nil {
		return err
	}
	if err := s2.Host.DecodeState(d); err != nil {
		return err
	}
	if err := s2.DMA.DecodeState(d); err != nil {
		return err
	}
	if err := d.Done(); err != nil {
		return err
	}
	s2.flushBuf.SetState(fb)
	// Runtime knobs are session preferences, not device state: carry them
	// over from the live system instead of the image.
	s2.twoStageFills = s.twoStageFills
	s2.intraWorkers = s.intraWorkers
	if s2.FTL.ReadOnly() {
		s2.ICL.SetPreferCleanVictims(true)
	}
	*s = *s2
	return nil
}

// PowerLossReport summarizes a full device power cut.
type PowerLossReport struct {
	// Flash is the storage complex's in-flight program resolution.
	Flash nand.PowerLossReport
	// DirtyLinesLost counts cache lines holding unflushed writes at the cut
	// — data that was never acknowledged durable and is legitimately gone.
	DirtyLinesLost int
}

// PowerLoss cuts power to the device at simulated time now: the NAND
// resolves its in-flight programs torn-or-committed by the seeded draw
// (nand.Flash.PowerLoss), the cache drops every line (DRAM is volatile),
// the FIL drops its scratch and disarms the certified chain, the flush
// buffer and fill trackers empty. The caller must have stopped dispatching
// events first (the cut event halts the engine); Mount rebuilds a servable
// FTL afterwards.
func (s *System) PowerLoss(now sim.Time) PowerLossReport {
	var rep PowerLossReport
	rep.DirtyLinesLost = s.ICL.DirtyLines()
	seed := s.cfg.Device.Faults.Seed
	if seed == 0 {
		seed = s.cfg.Device.Seed
	}
	rep.Flash = s.Flash.PowerLoss(now, seed)
	s.ICL.Invalidate()
	s.FIL.PowerLoss()
	s.flushBuf = sim.NewPool("flushbuf", s.cfg.Device.Geometry.TotalPlanes())
	clear(s.filling)
	clear(s.waiters)
	s.lastEnd = -1
	if now > s.now {
		s.now = now
	}
	return rep
}

// Mount runs mount-time FTL recovery after a power cut: a fresh FTL is
// rebuilt from the flash's OOB stamps alone (ftl.Mount), rewired into the
// firmware stack — retire hook re-attached, certified chain re-armed,
// degraded-mode cache policy re-derived — and the simulated clock advances
// past the scan. Every write acknowledged durable before the cut is
// readable afterwards; no torn page is ever served.
func (s *System) Mount() (ftl.MountReport, error) {
	mounted, rep, err := ftl.Mount(ftlConfigOf(s.cfg.Device), s.Flash)
	if err != nil {
		return rep, err
	}
	d := s.cfg.Device
	mounted.SetRetireHook(func(sb int) {
		for plane := 0; plane < d.Geometry.TotalPlanes(); plane++ {
			addr := mounted.Address(ftl.PageLoc{SB: sb, Plane: plane})
			s.Flash.MarkBadBlock(d.Geometry.BlockIndex(addr))
		}
	})
	s.FTL = mounted
	// Certificates minted by the pre-cut FTL are rejected by issuer
	// identity; the mounted FTL mints fresh ones against the same epoch
	// source.
	mounted.SetEpochSource(s.Flash.StateEpoch)
	if err := s.FIL.AcceptCertified(mounted); err != nil {
		return rep, err
	}
	s.now += rep.ScanTime
	// Post-mount cleanup: erase blocks whose pages are all stale or torn,
	// restoring the free reserve a mid-GC cut may have drained (the victim
	// erase was undone, so its block came back closed and empty of valid
	// data). Without this the first post-mount flush can find no free block
	// and no GC destination, wedging a healthy device read-only.
	if plan, n := mounted.MountCleanup(); n > 0 {
		rep.CleanupErases = n
		if cerr := s.mountExec(plan); cerr != nil {
			return rep, cerr
		}
	}
	// Emergency compaction: when the cut undid every claimed erase the
	// durable image can hold no erased block at all, leaving GC without a
	// bootstrap destination. The squeeze reads a victim's valid pages into
	// controller RAM, erases it, and rewrites them compactly — a no-op
	// whenever the free reserve already clears the GC threshold.
	plan, sqBlocks, sqSubs, serr := mounted.MountSqueeze(s.now)
	if serr != nil {
		return rep, serr
	}
	if sqBlocks > 0 || len(plan.Ops) > 0 {
		rep.SqueezedSBs = sqBlocks
		rep.SqueezedSubs = sqSubs
		if cerr := s.mountExec(plan); cerr != nil {
			return rep, cerr
		}
	}
	// RAIN parity catch-up: rows completed right before the cut whose
	// parity program never started get their parity re-emitted, so every
	// surviving stripe is reconstructable again. (A torn parity page stays
	// dead until its block erases — strict in-order programming forbids
	// reprogramming it — and its rows ride without parity until then.)
	if plan, n := mounted.ParityCatchup(); n > 0 {
		rep.ParityReemitted = n
		if cerr := s.mountExec(plan); cerr != nil {
			return rep, cerr
		}
	}
	s.ICL.SetPreferCleanVictims(mounted.ReadOnly())
	return rep, nil
}

// mountExec runs a mount-time maintenance plan, absorbing injected flash
// faults with the same bounded replan loop the runtime datapath uses: on a
// device whose error model keeps drawing, a mount must degrade — lose the
// faulted page, retire the block, replan the rest — rather than fail
// outright and leave the device unmountable.
func (s *System) mountExec(plan ftl.Plan) error {
	// Unlike the runtime datapath's tight retry bound, mount-time plans can
	// span thousands of ops on a device whose error model keeps drawing —
	// every recovery strictly shrinks the remaining suffix, so the loop is
	// bounded by the plan size, not a fixed constant.
	maxAttempts := len(plan.Ops) + maxFaultRetries
	res, err := s.FIL.Execute(s.now, plan, fil.PlanData{})
	for attempt := 0; err != nil && attempt < maxAttempts; attempt++ {
		var pf *fil.PlanFault
		if !errors.As(err, &pf) {
			break
		}
		rplan, rerr := s.FTL.RecoverPlanFault(s.now, plan, pf.Executed, pf.Err)
		if rerr != nil {
			return rerr
		}
		// A program/erase fault's recovery can grow past the original plan
		// (retiring a block migrates everything valid on it); extend the
		// budget — retirements are bounded by the spare reserve.
		if grown := attempt + 1 + len(rplan.Ops) + maxFaultRetries; grown > maxAttempts {
			maxAttempts = grown
		}
		plan = rplan
		res, err = s.FIL.Execute(s.now, plan, fil.PlanData{})
	}
	if err != nil {
		return err
	}
	// Recovery burned the certified chain's sequence; re-arm it.
	if aerr := s.FIL.AcceptCertified(s.FTL); aerr != nil {
		return aerr
	}
	if res.Done > s.now {
		s.now = res.Done
	}
	return nil
}

func encodeResource(e *snap.Enc, r *sim.Resource) {
	st := r.State()
	e.I64(int64(st.FreeAt))
	e.I64(int64(st.Busy))
	e.U64(st.Claims)
}

func decodeResource(d *snap.Dec, r *sim.Resource) {
	r.SetState(sim.ResourceState{
		FreeAt: sim.Time(d.I64()),
		Busy:   sim.Duration(d.I64()),
		Claims: d.U64(),
	})
}
