package core

import (
	"errors"
	"fmt"

	"amber/internal/dma"
	"amber/internal/fil"
	"amber/internal/ftl"
	"amber/internal/hil"
	"amber/internal/sim"
	"amber/internal/workload"
)

// The submit path is staged on pooled op structs rather than per-request
// closures: a submitOp carries one host request through the pipeline and a
// fillOp carries one flash fetch to its cache install. Both are recycled
// through per-System free lists with their step callbacks bound once, so a
// steady-state request schedules engine events without allocating.

// maxFaultRetries bounds how many consecutive injected flash faults one
// eviction absorbs before giving up: each retry retires a block and
// re-plans, so the bound only trips under a fault storm (at which point
// the FTL has usually latched read-only anyway).
const maxFaultRetries = 8

// submitOp pipeline stages.
const (
	opDispatch = iota // after queue/parse firmware: start DMA + line ops
	opWriteOps        // write payload transferred: run the line writes
	opReadDMA         // all lines staged in cache: move payload to host
	opFinish          // completion firmware, CQ/interrupt, host ISR
)

// submitOp is one in-flight host request.
type submitOp struct {
	s    *System
	e    *sim.Engine
	doms *engineDomains
	req  workload.Request
	data []byte
	cb   func(sim.Time, error)

	lines []hil.Line // owned buffer, reused across op lifetimes
	pl    dma.PointerList

	stage   int
	pending int      // outstanding line reads
	ready   sim.Time // latest line-ready time (reads)
	failed  bool

	stepFn func()                // op.step, bound once
	lineFn func(sim.Time, error) // op.lineDone, bound once
}

func (s *System) acquireOp(e *sim.Engine, req workload.Request, data []byte, cb func(sim.Time, error)) *submitOp {
	var op *submitOp
	if n := len(s.opFree); n > 0 {
		op = s.opFree[n-1]
		s.opFree = s.opFree[:n-1]
	} else {
		op = &submitOp{s: s}
		op.stepFn = op.step
		op.lineFn = op.lineDone
	}
	op.e, op.req, op.data, op.cb = e, req, data, cb
	op.doms = s.domainsFor(e)
	op.pending, op.ready, op.failed = 0, 0, false
	return op
}

func (s *System) releaseOp(op *submitOp) {
	op.e, op.doms, op.data, op.cb = nil, nil, nil, nil
	op.pl = dma.PointerList{}
	s.opFree = append(s.opFree, op)
}

// fail reports a pipeline error and retires the op. Only valid on stages
// with no outstanding line callbacks (writes and the final stages).
func (op *submitOp) fail(err error) {
	cb := op.cb
	op.s.releaseOp(op)
	cb(0, err)
}

// step advances the op through its pipeline stages. Each engine event the
// original closure-per-stage implementation scheduled maps to exactly one
// step invocation, so resource claims keep their global time order.
func (op *submitOp) step() {
	s, e := op.s, op.e
	switch op.stage {
	case opDispatch:
		// Parse finished: fetch the pointer list, then move data. Writes
		// transfer the payload into the device before the line writes;
		// reads probe the cache per line first.
		now := e.Now()
		walked := s.DMA.WalkList(now, op.pl)
		if op.req.Write {
			// The write-ops stage flushes evictions into flash, so it rides
			// the icl shard — kept apart from dma because its neutrality
			// stands on its own proof (the eviction flush only issues flash
			// work, doc.go) and is withdrawn with SetTwoStageFills(false).
			xferDone := s.DMA.Transfer(walked, op.pl, true)
			op.stage = opWriteOps
			e.AtIn(op.doms.icl, xferDone, op.stepFn)
			return
		}
		op.pending = len(op.lines)
		op.ready = walked
		for i := range op.lines {
			ln := op.lines[i]
			if op.data == nil {
				s.readLineAsync(e, ln, nil, op.lineFn)
				continue
			}
			// Data-tracking run (cold path): stage each line through its
			// own buffer and copy the touched range out on completion.
			lineBuf := make([]byte, s.Split.LineBytes())
			s.readLineAsync(e, ln, lineBuf, func(t sim.Time, err error) {
				if err == nil {
					start := s.lineByteStart(ln)
					copy(op.data[ln.ByteOff:ln.ByteOff+ln.ByteLen], lineBuf[start:start+ln.ByteLen])
				}
				op.lineFn(t, err)
			})
		}

	case opWriteOps:
		opsDone := e.Now()
		for i := range op.lines {
			ln := op.lines[i]
			var lineData []byte
			if op.data != nil {
				lineData = s.lineBuffer(ln, op.data[ln.ByteOff:ln.ByteOff+ln.ByteLen])
			}
			done, err := s.writeLine(e, e.Now(), ln, lineData)
			if err != nil {
				op.fail(err)
				return
			}
			if done > opsDone {
				opsDone = done
			}
		}
		s.bytesWritten += uint64(op.req.Length)
		op.stage = opFinish
		e.AtIn(op.doms.host, sim.MaxOf(opsDone, e.Now()), op.stepFn)

	case opReadDMA:
		// All lines staged in cache memory: move the payload to the host.
		xferDone := s.DMA.Transfer(e.Now(), op.pl, false)
		s.bytesRead += uint64(op.req.Length)
		op.stage = opFinish
		e.AtIn(op.doms.host, sim.MaxOf(xferDone, e.Now()), op.stepFn)

	case opFinish:
		// Completion path: firmware composes the CQ entry / response FIS,
		// the link carries it, the interrupt fires, the host ISR retires
		// the request.
		now := e.Now()
		_, composed := s.DevCPU.Execute(now, s.coreFor(0), "hil.complete", s.params.CompleteMix)
		_, cqDone := s.link.Claim(composed, s.params.CompletionTime())
		intr := cqDone + s.params.InterruptLatency
		if s.hba != nil {
			// The single h-type I/O path serializes completions too (§II-A).
			_, intr = s.hba.Claim(intr, s.params.ControllerLatency/2)
		}
		complete := s.Host.Complete(intr, s.params.CompleteInstr)
		s.reqs++
		if complete > s.now {
			s.now = complete
		}
		cb := op.cb
		s.releaseOp(op)
		cb(complete, nil)
	}
}

// lineDone collects one line read. When the last line lands, the payload
// DMA stage is scheduled at the latest line-ready time.
func (op *submitOp) lineDone(t sim.Time, err error) {
	if err != nil && !op.failed {
		op.failed = true
		op.cb(0, err)
	}
	if t > op.ready {
		op.ready = t
	}
	op.pending--
	if op.pending > 0 {
		return
	}
	if op.failed {
		// The error was already reported; retire the op once the last
		// outstanding line callback has drained.
		op.s.releaseOp(op)
		return
	}
	op.stage = opReadDMA
	op.e.AtIn(op.doms.dma, sim.MaxOf(op.ready, op.e.Now()), op.stepFn)
}

// SubmitAsync pushes one host request through the full stack, staged on
// the discrete-event engine so that concurrent requests interleave their
// resource claims in global time order (the property that makes queue
// depth buy bandwidth, exactly as on real hardware). The callback fires
// with the request's completion time.
//
// The path mirrors §III-B/§IV: kernel submission (scheduler + driver) on a
// host core → doorbell/register write → command fetch over the link →
// device-side queue and parse firmware → HIL split into super-page lines →
// ICL/FTL/FIL per line → DMA data transfer emulation → completion record,
// interrupt and host ISR. Claims made inside one engine event start at
// that event's time; each stage boundary (parse done, flash done, data
// staged) is its own event.
//
// data optionally carries the request payload (writes) or receives it
// (reads) when the system tracks data; it must remain valid until the
// callback fires.
func (s *System) SubmitAsync(e *sim.Engine, req workload.Request, data []byte, cb func(sim.Time, error)) {
	if req.Length <= 0 || req.Offset < 0 || req.Offset+int64(req.Length) > s.VolumeBytes() {
		cb(0, fmt.Errorf("core: request [%d,+%d) outside volume of %d bytes",
			req.Offset, req.Length, s.VolumeBytes()))
		return
	}
	if data != nil && len(data) < req.Length {
		cb(0, fmt.Errorf("core: data buffer shorter than request"))
		return
	}
	if s.down {
		// Injected whole-device failure (SetDeviceDown): the device no
		// longer answers anything. The host layer above decides when the
		// silence is observed (its request timeout).
		cb(0, fmt.Errorf("core: request [%d,+%d) lost: %w",
			req.Offset, req.Length, ErrDeviceDown))
		return
	}
	if s.FTL.ReadOnly() {
		if req.Write {
			// Grown bad blocks exhausted the spare reserve: the device
			// degrades to read-only instead of risking further data.
			// Reads still serve.
			cb(0, fmt.Errorf("core: write of [%d,+%d) refused: %w",
				req.Offset, req.Length, ftl.ErrReadOnly))
			return
		}
		// Reads on a read-only device must not evict dirty lines (their
		// write-back can never succeed); pin them and recycle clean frames.
		s.ICL.SetPreferCleanVictims(true)
	}
	now := e.Now()

	if s.passive {
		// Passive storage (§V-E): pblk runs the cache and FTL on the host,
		// so requests are served host-side; only cache misses and flushes
		// cross the link as OCSSD vector commands (charged inside
		// startFill / flushEviction).
		s.submitPassive(e, req, data, cb)
		return
	}

	// Stage 1: kernel submission path (block layer + I/O scheduler +
	// driver), doorbell, command fetch, device-side queue/parse firmware.
	sequential := req.Offset == s.lastEnd
	s.lastEnd = req.Offset + int64(req.Length)
	subEnd := s.Host.Submit(now, sequential, s.params.SubmitInstr)

	t := subEnd + s.params.DoorbellLatency
	if s.hba != nil {
		// The h-type host controller serializes command issue.
		_, t = s.hba.Claim(t, s.params.ControllerLatency)
	}
	_, fetched := s.link.Claim(t, s.params.CmdFetchTime())
	arrived := fetched + s.params.ControllerLatency
	_, parsed := s.DevCPU.Execute(arrived, s.coreFor(0), "hil",
		s.params.QueueMix.Add(s.params.ParseMix))

	op := s.acquireOp(e, req, data, cb)
	var err error
	op.lines, err = s.Split.SplitInto(op.lines[:0], req.Offset, req.Length)
	if err != nil {
		s.releaseOp(op)
		cb(0, err)
		return
	}
	build := dma.Build
	if s.cfg.ContiguousDMA {
		build = dma.BuildContiguous
	}
	op.pl, err = build(s.listKind(), req.Length, s.cfg.HostPageSize, data)
	if err != nil {
		s.releaseOp(op)
		cb(0, err)
		return
	}
	op.stage = opDispatch
	e.AtIn(op.doms.cpu, parsed, op.stepFn)
}

// submitPassive is the OCSSD/pblk request path: the kernel submission
// runs, then pblk serves the request from its host-side cache; flash
// traffic happens only for misses and write-back flushes, as vector
// commands issued by lightNVM.
func (s *System) submitPassive(e *sim.Engine, req workload.Request, data []byte, cb func(sim.Time, error)) {
	doms := s.domainsFor(e)
	now := e.Now()
	sequential := req.Offset == s.lastEnd
	s.lastEnd = req.Offset + int64(req.Length)
	subEnd := s.Host.Submit(now, sequential, s.params.SubmitInstr)

	lines, err := s.Split.Split(req.Offset, req.Length)
	if err != nil {
		cb(0, err)
		return
	}

	finish := func(done sim.Time) {
		// Stage the completion as its own event so the host-CPU claim
		// happens in global time order, not call order.
		e.AtIn(doms.host, sim.MaxOf(done, e.Now()), func() {
			complete := s.Host.Complete(e.Now(), s.params.CompleteInstr/2)
			s.reqs++
			if complete > s.now {
				s.now = complete
			}
			cb(complete, nil)
		})
	}

	e.AtIn(doms.host, subEnd, func() {
		if req.Write {
			done := e.Now()
			for _, ln := range lines {
				var lineData []byte
				if data != nil {
					lineData = s.lineBuffer(ln, data[ln.ByteOff:ln.ByteOff+ln.ByteLen])
				}
				d, err := s.writeLine(e, e.Now(), ln, lineData)
				if err != nil {
					cb(0, err)
					return
				}
				if d > done {
					done = d
				}
			}
			s.bytesWritten += uint64(req.Length)
			finish(done)
			return
		}
		pending := len(lines)
		ready := e.Now()
		failed := false
		for _, ln := range lines {
			ln := ln
			var lineBuf []byte
			if data != nil {
				lineBuf = make([]byte, s.Split.LineBytes())
			}
			s.readLineAsync(e, ln, lineBuf, func(t sim.Time, err error) {
				if failed {
					return
				}
				if err != nil {
					failed = true
					cb(0, err)
					return
				}
				if lineBuf != nil {
					start := s.lineByteStart(ln)
					copy(data[ln.ByteOff:ln.ByteOff+ln.ByteLen], lineBuf[start:start+ln.ByteLen])
				}
				if t > ready {
					ready = t
				}
				pending--
				if pending == 0 {
					s.bytesRead += uint64(req.Length)
					finish(ready)
				}
			})
		}
	})
}

// Submit is the synchronous convenience wrapper around SubmitAsync for a
// single request: it runs a private event engine to completion and returns
// the completion time. The engine and its dispatch closures are reused
// across calls, so a submit-per-call workload does not allocate them anew.
// With SetIntraWorkers > 1 the drain goes through the horizon-synchronized
// dispatcher over a worker pool that persists across calls (no per-call
// goroutine setup), so data-tracking trace replays parallelize their
// per-channel flash bookkeeping while staying byte-identical to the serial
// drain.
func (s *System) Submit(now sim.Time, req workload.Request, data []byte) (sim.Time, error) {
	if now < s.now {
		now = s.now
	}
	now += s.serviceDelay
	e := s.submitEngine()
	e.Reset()
	s.subReq, s.subData = req, data
	s.subDone, s.subErr = 0, nil
	e.AtIn(s.domainsFor(e).host, now, s.subStartFn)
	if s.intraWorkers > 1 {
		s.drainSubmitIntra(e)
	} else {
		e.Run()
	}
	s.subReq, s.subData = workload.Request{}, nil
	return s.subDone, s.subErr
}

// drainSubmitIntra is Submit's pooled horizon-synchronized drain, kept out
// of Submit's body so the serial fast path stays lean.
//
//go:noinline
func (s *System) drainSubmitIntra(e *sim.Engine) {
	if s.subPool == nil {
		s.subPool = sim.NewWorkerPool(e, s.intraWorkers)
	}
	s.submitIntra.Accumulate(e.RunParallelWith(s.subPool))
}

// submitEngine returns the synchronous submit paths' private engine,
// lazily constructed with Submit's dispatch closures bound once.
func (s *System) submitEngine() *sim.Engine {
	if s.subEngine == nil {
		s.subEngine = sim.NewEngine()
		s.subStartFn = func() {
			s.SubmitAsync(s.subEngine, s.subReq, s.subData, s.subFinishFn)
		}
		s.subFinishFn = func(t sim.Time, err error) {
			s.subDone, s.subErr = t, err
		}
	}
	return s.subEngine
}

// SubmitBatch pushes a whole vector of host requests through the stack with
// per-request results identical to calling Submit in a loop — request i+1
// is issued at request i's completion, the serial depth-1 semantics of the
// synchronous API — while amortizing the per-request constants across a
// queue-depth window. Steady-state write requests are unrolled inline:
// their stage boundaries (parse done, payload transferred, lines written,
// completion composed) are pure time arithmetic over the same resource
// claims the evented pipeline makes, in the same order, so no engine events
// are scheduled for them at all; only the deferred per-channel flash
// bookkeeping (accounting-only by construction, sim/doc.go) accumulates,
// and drains once per window instead of once per request. The window is
// bounded by the host scheduler's queue-depth cap, the protocol's hardware
// queue limit, and the engine's SetBatchLimit backstop. Requests the inline
// contract cannot cover — reads (their fills install in future events),
// passive mode, an in-flight fill — fall back to the evented Submit after a
// window drain, so mixed batches stay byte-identical too.
//
// datas optionally carries per-request payload buffers (writes) or receives
// them (reads); it may be nil, or hold nil entries. times optionally
// receives each request's completion time (it must be at least as long as
// reqs when non-nil), so batch callers keep their per-request latency
// histograms without falling back to the evented path. Processing stops at
// the first error, which is returned wrapped with the request's index;
// earlier requests remain applied, exactly as a Submit loop would leave
// them. On error the times slots of the failing request and every request
// after it are zeroed: zero is the documented "no completion" sentinel (a
// real completion is always positive — stage-1 submission costs alone push
// it past zero), so callers never read a stale time for a request that
// failed mid-window, even when reusing one times buffer across batches.
func (s *System) SubmitBatch(now sim.Time, reqs []workload.Request, datas [][]byte, times []sim.Time) (sim.Time, error) {
	if now < s.now {
		now = s.now
	}
	last := now
	if times != nil && len(times) < len(reqs) {
		return 0, fmt.Errorf("core: batch times buffer of %d for %d requests", len(times), len(reqs))
	}
	e := s.submitEngine()
	e.Reset()
	window := s.params.EffectiveQueueDepth(s.Host.BatchWindow(len(reqs)))
	if w := s.batchWindowCap(); window > w {
		window = w
	}
	if bl := e.BatchLimit(); window > bl {
		window = bl
	}
	fill := 0
	for i, req := range reqs {
		var data []byte
		if datas != nil {
			data = datas[i]
		}
		cur := now
		if cur < s.now {
			cur = s.now
		}
		var done sim.Time
		var err error
		if req.Write && !s.passive && len(s.filling) == 0 {
			done, err = s.submitInline(e, cur, req, data)
			fill++
			if fill >= window {
				s.drainWindow(e, &fill)
			}
		} else {
			// The evented path resets the shared engine, so pending window
			// bookkeeping must land first.
			s.drainWindow(e, &fill)
			done, err = s.Submit(cur, req, data)
		}
		if err != nil {
			s.drainWindow(e, &fill)
			if times != nil {
				// No stale completions: the failed request and the
				// requests never reached hold the zero sentinel.
				for j := i; j < len(reqs); j++ {
					times[j] = 0
				}
			}
			return 0, fmt.Errorf("core: batch request %d: %w", i, err)
		}
		if times != nil {
			times[i] = done
		}
		last = done
		s.batchReqs++
	}
	s.drainWindow(e, &fill)
	return last, nil
}

// drainWindow dispatches the deferred bookkeeping a batch window
// accumulated and resets the shared engine (times rewind to zero, exactly
// the state a fresh Submit would start from). fill counts the inline
// requests since the last drain; an empty window drains nothing and is not
// counted.
func (s *System) drainWindow(e *sim.Engine, fill *int) {
	if *fill == 0 && e.Pending() == 0 {
		return
	}
	if s.intraWorkers > 1 {
		s.drainSubmitIntra(e)
	} else {
		e.Run()
	}
	e.Reset()
	// Inline erase claims ran outside the engine, where the dispatch clock
	// that normally retires their power-loss undo snapshots never moves; the
	// host clock is the earliest time a future cut can land, so snapshots of
	// erases already started by then are dead weight.
	s.Flash.PruneEraseUndo(s.now)
	s.batchWindows++
	*fill = 0
}

// submitInline is the batched write fast path: SubmitAsync's stage 1 plus
// the opDispatch/opWriteOps/opFinish stages of submitOp.step, unrolled into
// one call. Every resource claim the evented pipeline would make is made
// here, at the same time, in the same order — the stage events it elides
// carried no claims of their own, only the times the claims below derive
// directly. Deferred per-channel flash bookkeeping is scheduled on e as
// usual and left for the caller's window drain.
func (s *System) submitInline(e *sim.Engine, now sim.Time, req workload.Request, data []byte) (sim.Time, error) {
	if req.Length <= 0 || req.Offset < 0 || req.Offset+int64(req.Length) > s.VolumeBytes() {
		return 0, fmt.Errorf("core: request [%d,+%d) outside volume of %d bytes",
			req.Offset, req.Length, s.VolumeBytes())
	}
	if data != nil && len(data) < req.Length {
		return 0, fmt.Errorf("core: data buffer shorter than request")
	}
	if s.down {
		return 0, fmt.Errorf("core: request [%d,+%d) lost: %w",
			req.Offset, req.Length, ErrDeviceDown)
	}
	if s.FTL.ReadOnly() {
		return 0, fmt.Errorf("core: write of [%d,+%d) refused: %w",
			req.Offset, req.Length, ftl.ErrReadOnly)
	}
	now += s.serviceDelay

	// Stage 1: kernel submission, doorbell, command fetch, queue/parse.
	sequential := req.Offset == s.lastEnd
	s.lastEnd = req.Offset + int64(req.Length)
	subEnd := s.Host.Submit(now, sequential, s.params.SubmitInstr)
	t := subEnd + s.params.DoorbellLatency
	if s.hba != nil {
		_, t = s.hba.Claim(t, s.params.ControllerLatency)
	}
	_, fetched := s.link.Claim(t, s.params.CmdFetchTime())
	arrived := fetched + s.params.ControllerLatency
	_, parsed := s.DevCPU.Execute(arrived, s.coreFor(0), "hil",
		s.params.QueueMix.Add(s.params.ParseMix))

	lines, err := s.Split.SplitInto(s.batchLines[:0], req.Offset, req.Length)
	if err != nil {
		return 0, err
	}
	s.batchLines = lines
	build := dma.Build
	if s.cfg.ContiguousDMA {
		build = dma.BuildContiguous
	}
	pl, err := build(s.listKind(), req.Length, s.cfg.HostPageSize, data)
	if err != nil {
		return 0, err
	}

	// opDispatch: pointer-list walk, payload transfer into the device.
	walked := s.DMA.WalkList(parsed, pl)
	xferDone := s.DMA.Transfer(walked, pl, true)

	// opWriteOps: the line writes, all claiming from the transfer's end.
	opsDone := xferDone
	for i := range lines {
		ln := lines[i]
		var lineData []byte
		if data != nil {
			lineData = s.lineBuffer(ln, data[ln.ByteOff:ln.ByteOff+ln.ByteLen])
		}
		done, err := s.writeLine(e, xferDone, ln, lineData)
		if err != nil {
			return 0, err
		}
		if done > opsDone {
			opsDone = done
		}
	}
	s.bytesWritten += uint64(req.Length)

	// opFinish: completion firmware, CQ/interrupt, host ISR.
	_, composed := s.DevCPU.Execute(opsDone, s.coreFor(0), "hil.complete", s.params.CompleteMix)
	_, cqDone := s.link.Claim(composed, s.params.CompletionTime())
	intr := cqDone + s.params.InterruptLatency
	if s.hba != nil {
		_, intr = s.hba.Claim(intr, s.params.ControllerLatency/2)
	}
	complete := s.Host.Complete(intr, s.params.CompleteInstr)
	s.reqs++
	if complete > s.now {
		s.now = complete
	}
	return complete, nil
}

// lineByteStart returns the offset of the request's payload within the
// line-sized buffer (the first touched sub-page's start; sub-aligned I/O
// lands exactly on the sub boundary).
func (s *System) lineByteStart(ln hil.Line) int {
	return ln.FirstSub * s.ICL.Config().SubSize
}

// lineBuffer assembles a line-layout buffer holding payload at the line's
// touched range (sub-page aligned I/O fills whole subs).
func (s *System) lineBuffer(ln hil.Line, payload []byte) []byte {
	buf := make([]byte, s.Split.LineBytes())
	copy(buf[s.lineByteStart(ln):], payload)
	return buf
}

// writeLine stores one line into the ICL (write-back, write-allocate) and
// flushes the displaced victim if dirty. Completion is when the data is in
// cache memory and the victim's frame was safely flushed. All claims start
// at t (the caller invokes it inside an event at t). e routes the flush's
// flash bookkeeping through the deferred per-channel path; nil (the
// engine-less Flush) falls back to synchronous execution.
func (s *System) writeLine(e *sim.Engine, t sim.Time, ln hil.Line, lineData []byte) (sim.Time, error) {
	t2 := s.chargeFirmware(t, 1, "icl", s.iclInsertMix())
	ev, err := s.ICL.Write(ln.LSPN, ln.FirstSub, ln.NumSubs, lineData)
	if err != nil {
		return 0, err
	}
	dramDone := s.cacheMemAccess(t2, ln.LSPN, ln.ByteLen, true)
	slotFree := t2
	if ev != nil && ev.IsDirty() {
		flushDone, err := s.flushEviction(e, t2, ev)
		if err != nil {
			return 0, err
		}
		// Write-back decoupling: the incoming write only waits for a flush
		// buffer slot, not for the victim's flash programs. The slot is
		// occupied until the flush lands, so a saturated backend
		// back-pressures the host exactly when all slots are busy.
		var dur sim.Duration
		if flushDone > t2 {
			dur = flushDone - t2
		}
		slotFree, _, _ = s.flushBuf.Claim(t2, dur)
	}
	return sim.MaxOf(dramDone, slotFree), nil
}

// readLineAsync serves one line: cache hits stream from cache memory now;
// misses issue flash reads now and install their fills in a second event
// at flash completion, where §IV-C readahead is also armed. When the
// missing sub-pages are already being fetched (by a prefetch or another
// request), the read coalesces onto the in-flight fill instead of
// duplicating flash work, retrying once when the fill lands.
func (s *System) readLineAsync(e *sim.Engine, ln hil.Line, lineBuf []byte, cb func(sim.Time, error)) {
	s.readLineAttempt(e, ln, lineBuf, cb, false)
}

func (s *System) readLineAttempt(e *sim.Engine, ln hil.Line, lineBuf []byte, cb func(sim.Time, error), retried bool) {
	t := e.Now()
	t2 := s.chargeFirmware(t, 1, "icl", s.iclLookupMix())
	res, err := s.ICL.Read(ln.LSPN, ln.FirstSub, ln.NumSubs, lineBuf)
	if err != nil {
		cb(0, err)
		return
	}
	ready := t2
	if len(res.HitSubs) > 0 {
		bytes := len(res.HitSubs) * s.ICL.Config().SubSize
		if d := s.cacheMemAccess(t2, ln.LSPN, bytes, false); d > ready {
			ready = d
		}
	}

	// Arm readahead off the critical path.
	for _, pre := range res.Readahead {
		s.prefetch(e, pre)
	}

	if len(res.MissSubs) == 0 {
		cb(ready, nil)
		return
	}
	// Coalesce onto an in-flight fill covering every missing sub.
	if !retried {
		if fl, ok := s.filling[ln.LSPN]; ok {
			covered := true
			for _, sub := range res.MissSubs {
				if !fl[sub] {
					covered = false
					break
				}
			}
			if covered {
				s.waiters[ln.LSPN] = append(s.waiters[ln.LSPN], func() {
					s.readLineAttempt(e, ln, lineBuf, cb, true)
				})
				return
			}
		}
	}
	s.startFill(e, t2, ln.LSPN, res.MissSubs, lineBuf, false, ready, cb)
}

// fillOp carries one flash fetch (demand miss or prefetch) from its FTL
// lookup to the cache install at flash completion. Pooled like submitOp.
type fillOp struct {
	s        *System
	e        *sim.Engine
	lspn     int64
	subs     []int         // owned copy (the caller's slice may be scratch)
	locs     []ftl.PageLoc // lookup buffer, reused
	fetch    []ftl.PageLoc // mapped subset to read, reused
	lineBuf  []byte
	prefetch bool
	nFetch   int
	floor    sim.Time // completion lower bound (hit-side readiness)
	cb       func(sim.Time, error)

	doneFn func() // op.done, bound once
}

func (s *System) acquireFill(e *sim.Engine) *fillOp {
	var fo *fillOp
	if n := len(s.fillFree); n > 0 {
		fo = s.fillFree[n-1]
		s.fillFree = s.fillFree[:n-1]
	} else {
		fo = &fillOp{s: s}
		fo.doneFn = fo.done
	}
	fo.e = e
	return fo
}

func (s *System) releaseFill(fo *fillOp) {
	fo.e, fo.lineBuf, fo.cb = nil, nil, nil
	s.fillFree = append(s.fillFree, fo)
}

// noopFill is the completion callback for prefetches.
func noopFill(sim.Time, error) {}

// startFill reads the given subs of lspn from flash (claims at t) and
// installs them in the cache at flash completion, flushing any displaced
// dirty victim. The callback fires with max(floor, install time).
func (s *System) startFill(e *sim.Engine, t sim.Time, lspn int64, subs []int, lineBuf []byte, prefetch bool, floor sim.Time, cb func(sim.Time, error)) {
	fo := s.acquireFill(e)
	fo.lspn = lspn
	fo.subs = append(fo.subs[:0], subs...)
	fo.lineBuf = lineBuf
	fo.prefetch = prefetch
	fo.floor = floor
	fo.cb = cb

	t2 := s.chargeFirmware(t, 1, "ftl", s.ftlTranslateMix())
	doms := s.domainsFor(e)
	flashDone := t2
	var nFetch int
	// Lookup-fetch loop: an uncorrectable read under RAIN reconstructs the
	// sub-page from its stripe and retries against the fresh mapping, so
	// the fill still serves the originally acknowledged bytes — the loss
	// became a latency event. Bounded like plan-fault recovery.
	for attempt := 0; ; attempt++ {
		locs, cert, err := s.FTL.LookupCertified(fo.locs[:0], lspn)
		if err != nil {
			s.releaseFill(fo)
			cb(0, err)
			return
		}
		fo.locs = locs[:0]
		fetch := fo.fetch[:0]
		for _, loc := range locs {
			for _, sub := range fo.subs {
				if loc.Sub == sub {
					fetch = append(fetch, loc)
					break
				}
			}
		}
		fo.fetch = fetch[:0]
		nFetch = len(fetch)
		if len(fetch) == 0 {
			// Unmapped subs read as zeroes with no flash work.
			break
		}
		t3 := s.chargeFirmware(t2, 2, "fil", s.filScheduleMix(len(fetch)))
		if s.passive {
			// OCSSD vector read command + device-side thin parse, then the
			// data crosses the link back to the host buffer.
			_, t3 = s.link.Claim(t3, s.params.CmdFetchTime())
			_, t3 = s.DevCPU.Execute(t3, s.coreFor(0), "hil", s.params.ParseMix)
		}
		var dsts [][]byte
		if lineBuf != nil {
			subSize := s.ICL.Config().SubSize
			dsts = make([][]byte, len(fetch))
			for i, loc := range fetch {
				dsts[i] = lineBuf[loc.Sub*subSize : (loc.Sub+1)*subSize]
			}
		}
		if s.twoStageFills {
			// Two-stage install, precopy stage: the page bytes land in the
			// fill's line buffer at issue (pending-aware, one copy), so the
			// channel shards carry only the reads' accounting and the
			// publish below depends on no pending channel event.
			// The lookup's read certificate rides along: while the
			// FTL↔flash chain is armed, the per-address validation walk
			// is skipped (mapped ⇒ written by construction).
			flashDone, err = s.FIL.ReadSubsStaged(e, doms.nand, t3, fetch, dsts, cert)
		} else {
			// Legacy single stage: each read's per-channel bookkeeping
			// (counters, energy, the copy into its dst slice) rides the
			// owning channel's domain-local shard, scheduled here — before
			// fo.doneFn — so among same-time events every copy orders
			// before the install that consumes it.
			flashDone, err = s.FIL.ReadSubsOn(e, doms.nand, t3, fetch, dsts)
		}
		if err == nil {
			break
		}
		var redo bool
		if attempt < maxFaultRetries {
			redo, t2 = s.recoverFillFault(e, t3, lspn, fetch, err)
		}
		if !redo {
			s.releaseFill(fo)
			cb(0, err)
			return
		}
	}
	fo.nFetch = nFetch

	// Register the fill so concurrent readers coalesce instead of
	// refetching.
	fl := s.filling[lspn]
	if fl == nil {
		fl = make(map[int]bool)
		s.filling[lspn] = fl
	}
	for _, sub := range fo.subs {
		fl[sub] = true
	}

	// The continuation installs into the ICL, charges cache memory and
	// wakes coalesced waiters — cross-channel state — so it must ride a
	// cross-domain shard for the intra-parallel horizon computation to be
	// sound. Flash-backed fills publish through the fil.publish shard
	// (channel-neutral in the active architecture: the staged line buffer
	// is complete at issue, so the publish batches past pending channel
	// work) or, on the legacy path, the barrier-forcing fil shard (the
	// install then consumes bytes pending read completions write). Fills
	// with no flash work (all subs unmapped, pure cache-side traffic) ride
	// the icl shard.
	dom := doms.icl
	if nFetch > 0 {
		if s.twoStageFills {
			dom = doms.pub
			s.fillsTwoStage++
		} else {
			dom = doms.fil
			s.fillsLegacy++
		}
	}
	e.AtIn(dom, sim.MaxOf(flashDone, e.Now()), fo.doneFn)
}

// done installs the fetched subs at flash completion, flushes any
// displaced dirty victim, wakes coalesced waiters and fires the callback.
func (fo *fillOp) done() {
	s, e := fo.s, fo.e
	if fl := s.filling[fo.lspn]; fl != nil {
		for _, sub := range fo.subs {
			delete(fl, sub)
		}
		if len(fl) == 0 {
			delete(s.filling, fo.lspn)
		}
	}
	if s.passive && fo.nFetch > 0 {
		// Vector-read payload crosses the link into the host buffer.
		// Claimed here, inside the completion event, so the claim is
		// made in global time order.
		s.link.Claim(e.Now(), sim.TransferTime(int64(fo.nFetch*s.ICL.Config().SubSize), s.params.LinkBytesPerSec))
	}
	ev, err := s.ICL.Fill(fo.lspn, fo.subs, fo.lineBuf, fo.prefetch)
	if err != nil {
		fo.finish(0, err)
		return
	}
	now := e.Now()
	ready := s.cacheMemAccess(now, fo.lspn, len(fo.subs)*s.ICL.Config().SubSize, true)
	if ev != nil && ev.IsDirty() {
		flushDone, err := s.flushEviction(e, now, ev)
		if err != nil {
			fo.finish(0, err)
			return
		}
		if flushDone > ready {
			ready = flushDone
		}
	}
	if ws := s.waiters[fo.lspn]; len(ws) > 0 {
		delete(s.waiters, fo.lspn)
		for _, w := range ws {
			w()
		}
	}
	fo.finish(sim.MaxOf(fo.floor, ready), nil)
}

func (fo *fillOp) finish(t sim.Time, err error) {
	cb := fo.cb
	fo.s.releaseFill(fo)
	cb(t, err)
}

// prefetch loads a full super-page in the background (§IV-C readahead):
// the line lands across all dies and later sequential reads hit it.
func (s *System) prefetch(e *sim.Engine, lspn int64) {
	if lspn >= s.FTL.UserSuperPages() || !s.FTL.Mapped(lspn) {
		return
	}
	if _, busy := s.filling[lspn]; busy {
		return // a fetch is already in flight
	}
	var buf []byte
	if s.ICL.Config().TrackData {
		// Prefetched lines must carry real bytes when the system tracks
		// data, or later hits would serve zeroes.
		buf = make([]byte, s.Split.LineBytes())
	}
	s.startFill(e, e.Now(), lspn, s.allSubs, buf, true, 0, noopFill)
}

// flushEviction writes a displaced dirty line back through FTL and FIL,
// returning when the victim's data has left the cache memory (host writes
// programmed; background GC may continue past this point). With an engine,
// the plan executes on the deferred path (fil.ExecuteOn): each program's
// and erase's per-channel bookkeeping rides the owning channel's
// domain-local shard in per-die batches, widening the intra-parallel
// windows to writes and GC; without one (the synchronous Flush), the plan
// executes synchronously.
func (s *System) flushEviction(e *sim.Engine, t sim.Time, ev *iclEviction) (sim.Time, error) {
	t2 := s.chargeFirmware(t, 1, "ftl", s.ftlTranslateMix())
	plan, err := s.FTL.Write(t2, ev.LSPN, ev.Dirty)
	// A mid-plan FTL error (allocation exhausted on a degrading device)
	// still returns the partial plan covering every mutation the model
	// made. It must be executed — flash in lockstep with the model — before
	// the error surfaces, because on a read-only device the host keeps
	// running past this failure and later plans build on this state.
	pending := err
	if err != nil && len(plan.Ops) == 0 {
		return 0, err
	}
	err = nil
	if plan.GCRuns > 0 {
		t2 = s.chargeFirmware(t2, 1, "ftl.gc", s.gcMix(plan.Migrated))
	}
	nWrites := 0
	for _, op := range plan.Ops {
		if op.Kind == ftl.OpWrite {
			nWrites++
		}
	}
	t3 := s.chargeFirmware(t2, 2, "fil", s.filScheduleMix(nWrites))
	if s.passive && nWrites > 0 {
		// OCSSD vector write: command plus the dirty payload cross the link
		// before the device programs it.
		dirtyBytes := 0
		for _, d := range ev.Dirty {
			if d {
				dirtyBytes += s.ICL.Config().SubSize
			}
		}
		_, t3 = s.link.Claim(t3, s.params.CmdFetchTime()+
			sim.TransferTime(int64(dirtyBytes), s.params.LinkBytesPerSec))
		_, t3 = s.DevCPU.Execute(t3, s.coreFor(0), "hil", s.params.ParseMix)
	}
	hostData := fil.HostData(ev.LSPN, ev.Dirty, ev.Data, s.ICL.Config().SubSize)
	res, err, pending := s.runPlan(e, t3, plan, hostData, pending)
	if err != nil {
		return 0, err
	}
	if pending != nil {
		return 0, pending
	}
	// Reconstructions the plan's fault recovery queued (uncorrectable GC
	// reads under RAIN) execute now, with model and flash back in lockstep.
	s.drainRainRepairs(e, t3)
	if res.HostWritesDone > 0 {
		return res.HostWritesDone, nil
	}
	return res.Done, nil
}

// runPlan executes one FTL plan through the FIL at t, absorbing injected
// flash faults: each *fil.PlanFault commits the executed prefix, disarms
// the certified chain, and the FTL re-places the stranded suffix (retiring
// the bad block) into a fresh uncertified plan. Bounded retries absorb
// back-to-back faults; once a recovered plan lands clean the certified
// chain re-arms. A recovery that itself runs out of space returns a
// partial plan plus an error: the partial plan still executes (lockstep)
// and the error is folded into pending, surfaced by the caller once the
// flash has caught up. Uncorrectable reads of mapped data pages under RAIN
// additionally queue a reconstruction (noteRainFault) which the caller
// drains after the plan lands.
func (s *System) runPlan(e *sim.Engine, t sim.Time, plan ftl.Plan, hostData fil.PlanData, pending error) (fil.Result, error, error) {
	execute := func(p ftl.Plan) (fil.Result, error) {
		if e != nil {
			return s.FIL.ExecuteOn(e, s.domainsFor(e).nand, t, p, hostData)
		}
		return s.FIL.Execute(t, p, hostData)
	}
	res, err := execute(plan)
	// The retry budget scales with the work in flight, not a flat constant:
	// a read-fault recovery strictly shrinks the un-executed suffix (bounded
	// by the plan size), while a program/erase fault can GROW the plan —
	// retiring a full super-block emits a migration of everything valid on
	// it — but only finitely often (each retirement spends a spare; an
	// exhausted reserve latches read-only and recovery returns an error
	// instead of a plan). Abandoning a suffix mid-chain is never safe: the
	// FTL mutated its append pointers at plan build, so unexecuted ops
	// desynchronize model and flash.
	maxAttempts := len(plan.Ops) + maxFaultRetries
	for attempt := 0; err != nil && attempt < maxAttempts; attempt++ {
		var pf *fil.PlanFault
		if !errors.As(err, &pf) {
			break
		}
		s.noteRainFault(t, pf)
		rplan, rerr := s.FTL.RecoverPlanFault(t, plan, pf.Executed, pf.Err)
		if rerr != nil {
			if pending == nil {
				pending = fmt.Errorf("core: plan-fault recovery: %w", rerr)
			}
			if len(rplan.Ops) == 0 {
				return res, nil, pending
			}
		}
		if grown := attempt + 1 + len(rplan.Ops) + maxFaultRetries; grown > maxAttempts {
			maxAttempts = grown
		}
		t = s.chargeFirmware(t, 1, "ftl.recover", s.filScheduleMix(len(rplan.Ops)))
		plan = rplan
		res, err = execute(plan)
		if err == nil && pending == nil {
			s.FIL.AcceptCertified(s.FTL)
		}
	}
	return res, err, pending
}

// Flush forces every dirty cache line to flash (the host FLUSH command)
// and returns when the last write lands.
func (s *System) Flush(now sim.Time) (sim.Time, error) {
	if now < s.now {
		now = s.now
	}
	done := now
	for _, ev := range s.ICL.FlushAll() {
		ev := ev
		d, err := s.flushEviction(nil, now, &ev)
		if err != nil {
			return 0, err
		}
		if d > done {
			done = d
		}
	}
	if done > s.now {
		s.now = done
	}
	return done, nil
}

// cacheMemAccess charges a data movement through the cache memory:
// internal DRAM for active storage, host memory bandwidth for pblk.
func (s *System) cacheMemAccess(t sim.Time, lspn int64, bytes int, write bool) sim.Time {
	if bytes <= 0 {
		return t
	}
	if s.passive {
		_, done := s.Host.Mem.Claim(t, sim.TransferTime(int64(bytes), s.Host.MemBandwidth()))
		return done
	}
	addr := lspn * int64(s.Split.LineBytes()) % s.cfg.Device.DRAM.CapacityBytes
	return s.DevDRAM.Access(t, addr, bytes, write)
}
