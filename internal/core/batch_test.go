package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"amber/internal/core"
	"amber/internal/sim"
	"amber/internal/workload"
)

// batchTrajectory builds the mixed request vector the SubmitBatch golden
// comparison replays: a GC-heavy 4K random-write stream with a random read
// every fifth request (forcing the evented fallback mid-window) and a
// sequential read tail (readahead prefetches, so fills are in flight when
// later requests arrive). Writes carry deterministic payloads; reads
// receive buffers whose bytes are part of the golden comparison.
func batchRequests(s *core.System) ([]workload.Request, [][]byte, error) {
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 1)
	if err != nil {
		return nil, nil, err
	}
	rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 7)
	if err != nil {
		return nil, nil, err
	}
	sgen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 9)
	if err != nil {
		return nil, nil, err
	}
	var reqs []workload.Request
	for i := 0; i < 300; i++ {
		if i%5 == 4 {
			reqs = append(reqs, rgen.Next(i))
		} else {
			reqs = append(reqs, wgen.Next(i))
		}
	}
	for i := 0; i < 40; i++ {
		reqs = append(reqs, sgen.Next(i))
	}
	datas := make([][]byte, len(reqs))
	for i, req := range reqs {
		buf := make([]byte, req.Length)
		if req.Write {
			for j := range buf {
				buf[j] = byte((int64(j) + req.Offset + int64(i)*131) % 251)
			}
		}
		datas[i] = buf
	}
	return reqs, datas, nil
}

// renderBatchRun fingerprints everything the two submit APIs must agree
// on: each request's completion time, every read payload, and the full
// component state (flash counters and energy, FTL/ICL/FIL stats, clock).
func renderBatchRun(out *bytes.Buffer, s *core.System, reqs []workload.Request, datas [][]byte, times []sim.Time) {
	for i, tm := range times {
		fmt.Fprintf(out, "req%d done %d\n", i, tm)
	}
	for i, req := range reqs {
		if req.Write {
			continue
		}
		sum := uint64(0)
		for j, b := range datas[i] {
			sum += uint64(b) * uint64(j+1)
		}
		fmt.Fprintf(out, "read%d sum %d\n", i, sum)
	}
	renderState(out, s)
}

// TestSubmitBatchGoldenEquivalence is the acceptance bar of the vectored
// submit API: SubmitBatch over a mixed read/write vector must produce
// byte-identical completion times, payload bytes, component statistics and
// energy versus the same requests pushed one at a time through Submit — at
// the serial drain and at every intra worker count. Run under -race
// (AMBERSIM_INTRA_WORKERS matrix in ci.yml) it also proves the batched
// window drain shares nothing across channel shards.
func TestSubmitBatchGoldenEquivalence(t *testing.T) {
	run := func(batched bool, workers int) string {
		s := wideSystem(t)
		if workers > 0 {
			s.SetIntraWorkers(workers)
		}
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		reqs, datas, err := batchRequests(s)
		if err != nil {
			t.Fatal(err)
		}
		times := make([]sim.Time, len(reqs))
		if batched {
			// Batch in chunks so window boundaries are exercised mid-vector
			// as well as at the trailing partial window. The completions
			// out-param exposes every per-request stamp, so the two legs
			// compare all of them one-to-one.
			chunk := 64
			idx := 0
			for idx < len(reqs) {
				end := idx + chunk
				if end > len(reqs) {
					end = len(reqs)
				}
				done, err := s.SubmitBatch(s.Now(), reqs[idx:end], datas[idx:end], times[idx:end])
				if err != nil {
					t.Fatal(err)
				}
				if done != times[end-1] {
					t.Fatalf("chunk-final completion %d != times[%d]=%d", done, end-1, times[end-1])
				}
				idx = end
			}
		} else {
			for i, req := range reqs {
				done, err := s.Submit(s.Now(), req, datas[i])
				if err != nil {
					t.Fatal(err)
				}
				times[i] = done
			}
		}
		var out bytes.Buffer
		renderBatchRun(&out, s, reqs, datas, times)
		if batched {
			if windows, requests := s.BatchStats(); windows == 0 || requests != uint64(len(reqs)) {
				t.Fatalf("batch counters degenerate: windows=%d requests=%d", windows, requests)
			}
		}
		return out.String()
	}
	serial := run(false, 0)
	if len(serial) == 0 {
		t.Fatal("empty golden")
	}
	if got := run(true, 0); got != serial {
		t.Fatalf("SubmitBatch diverged from per-request Submit:\n--- serial ---\n%s--- batched ---\n%s", serial, got)
	}
	for _, workers := range intraWorkerMatrix(t) {
		if got := run(true, workers); got != serial {
			t.Fatalf("SubmitBatch workers=%d diverged:\n--- serial ---\n%s--- batched ---\n%s", workers, serial, got)
		}
	}
}
