package core_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/ftl"
	"amber/internal/sim"
	"amber/internal/workload"
)

// wearoutSystem builds the end-of-life device shape from examples/faults:
// blocks wear out after ~50 erases and the spare reserve is small, so a
// sustained overwrite storm deterministically exhausts the spares and
// latches the FTL read-only mid-traffic.
func wearoutSystem(t *testing.T) *core.System {
	t.Helper()
	d := config.SmallTestDevice()
	d.TrackData = false
	d.OPRatio = 0.4
	faults, err := config.FaultProfile("wearout", 7)
	if err != nil {
		t.Fatal(err)
	}
	d.Faults = faults
	d.SpareBlocks = 4
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSubmitBatchMidWindowReadOnlyFault drives a wear-out trajectory
// through SubmitBatch until the spare reserve runs dry inside a window:
// the write that hits the latch must fail with ftl.ErrReadOnly wrapped
// under its batch index, earlier requests in the same window stay applied
// with their real completion times, the failing request and everything
// after it hold the zero times sentinel, and the device neither panics
// nor desyncs — afterwards the clock stays monotonic, every later batched
// write is refused with the same sentinel, and reads (standalone and
// leading a mixed batch) keep serving.
func TestSubmitBatchMidWindowReadOnlyFault(t *testing.T) {
	batch := wearoutSystem(t)
	gen, err := workload.NewFIO(workload.RandWrite, 4096, batch.VolumeBytes(), 3)
	if err != nil {
		t.Fatal(err)
	}

	const window = 64
	reqs := make([]workload.Request, window)
	times := make([]sim.Time, window)
	failIdx := -1 // global index of the first refused write
	next := 0
	for round := 0; round < 400 && failIdx < 0; round++ {
		for j := range reqs {
			reqs[j] = gen.Next(next + j)
			times[j] = 12345 // poison: every slot must be overwritten or zeroed
		}
		_, err := batch.SubmitBatch(batch.Now(), reqs, nil, times)
		if err == nil {
			next += window
			continue
		}
		if !errors.Is(err, ftl.ErrReadOnly) {
			t.Fatalf("batch failed with %v, want the read-only latch", err)
		}
		k := 0
		for k < window && times[k] != 0 {
			k++
		}
		if k == window {
			t.Fatalf("batch returned %v but zeroed no times slot", err)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("batch request %d", k)) {
			t.Fatalf("error %q does not carry the failing index %d", err, k)
		}
		var prev sim.Time
		for j := 0; j < k; j++ {
			if times[j] == 0 || times[j] == 12345 || times[j] < prev {
				t.Fatalf("completed prefix corrupted: times[%d] = %d (prev %d)", j, times[j], prev)
			}
			prev = times[j]
		}
		for j := k; j < window; j++ {
			if times[j] != 0 {
				t.Fatalf("stale completion after failure: times[%d] = %d, want the zero sentinel", j, times[j])
			}
		}
		failIdx = next + k
	}
	if failIdx < 0 {
		t.Fatal("device refused to latch read-only; raise the wear-out rates")
	}
	if !batch.FTL.ReadOnly() {
		t.Fatal("batch reported the latch but the FTL is not read-only")
	}

	// No desync: the clock is intact (monotonic, not rewound by the failed
	// window), a standalone read still serves, a standalone write is
	// refused with the same sentinel.
	clk := batch.Now()
	if _, err := batch.Submit(batch.Now(), workload.Request{Offset: 0, Length: 4096}, nil); err != nil {
		t.Fatalf("read after latch failed: %v", err)
	}
	if batch.Now() < clk {
		t.Fatalf("clock rewound after the failed window: %d -> %d", clk, batch.Now())
	}
	if _, err := batch.Submit(batch.Now(), workload.Request{Write: true, Offset: 0, Length: 4096}, nil); !errors.Is(err, ftl.ErrReadOnly) {
		t.Fatalf("write after latch = %v, want ftl.ErrReadOnly", err)
	}

	// A fresh mixed batch behaves the same way on the worn device: the
	// leading reads complete with real stamps, the write is refused under
	// its index, the trailing slot holds the sentinel.
	mixed := []workload.Request{
		{Offset: 0, Length: 4096},
		{Offset: 4096, Length: 4096},
		{Write: true, Offset: 8192, Length: 4096},
		{Offset: 12288, Length: 4096},
	}
	mt := []sim.Time{7, 7, 7, 7}
	if _, err := batch.SubmitBatch(batch.Now(), mixed, nil, mt); !errors.Is(err, ftl.ErrReadOnly) {
		t.Fatalf("mixed batch after latch = %v, want ftl.ErrReadOnly", err)
	} else if !strings.Contains(err.Error(), "batch request 2") {
		t.Fatalf("mixed batch error %q does not name the write's index", err)
	}
	if mt[0] == 0 || mt[1] < mt[0] || mt[2] != 0 || mt[3] != 0 {
		t.Fatalf("mixed batch times contract violated: %v", mt)
	}
}

// TestSubmitBatchTimesZeroSentinel pins the documented times contract on
// a crisp deterministic failure: a batch of [read, read, write, read]
// against a force-latched device completes the leading reads with real
// stamps, fails the write under its index, and zeroes the write's slot
// and every slot after it — even when the buffer arrives poisoned from a
// previous batch.
func TestSubmitBatchTimesZeroSentinel(t *testing.T) {
	s := smallSystem(t, nil)
	bs := 4096
	// Map the LBAs the reads will hit.
	if _, err := s.Submit(s.Now(), workload.Request{Write: true, Offset: 0, Length: 4 * bs}, nil); err != nil {
		t.Fatal(err)
	}
	s.ForceReadOnly()

	reqs := []workload.Request{
		{Offset: 0, Length: bs},
		{Offset: int64(bs), Length: bs},
		{Write: true, Offset: 2 * int64(bs), Length: bs},
		{Offset: 3 * int64(bs), Length: bs},
	}
	times := []sim.Time{7, 7, 7, 7}
	_, err := s.SubmitBatch(s.Now(), reqs, nil, times)
	if !errors.Is(err, ftl.ErrReadOnly) {
		t.Fatalf("batch = %v, want the read-only latch", err)
	}
	if !strings.Contains(err.Error(), "batch request 2") {
		t.Fatalf("error %q does not name the failing request", err)
	}
	if times[0] == 0 || times[1] < times[0] {
		t.Fatalf("leading reads lost their completions: %v", times)
	}
	if times[2] != 0 || times[3] != 0 {
		t.Fatalf("failed and unreached slots must hold the zero sentinel: %v", times)
	}
}
