// Package core assembles Amber: the SSD's computation complex (embedded
// cores + internal DRAM), storage complex (multi-channel NAND behind the
// FIL), the firmware stack (HIL splitting, ICL caching with readahead, FTL
// mapping with GC and wear-leveling), a protocol instance (SATA, UFS, NVMe
// or OCSSD), the host system model, and the DMA engine that emulates real
// data movement between them. It exposes the public simulation API used by
// the examples, the command-line tools and the experiment harness.
//
// The System supports both architectures of §V-E: the default "active"
// storage runs the firmware on the SSD's cores; the "passive" (OCSSD)
// configuration moves the ICL and FTL to the host, charging their
// instructions to host cores and their memory to host DRAM, which is
// exactly what pblk + LightNVM do.
package core

import (
	"fmt"

	"amber/internal/cpu"
	"amber/internal/dma"
	"amber/internal/dram"
	"amber/internal/fil"
	"amber/internal/ftl"
	"amber/internal/hil"
	"amber/internal/host"
	"amber/internal/icl"
	"amber/internal/nand"
	"amber/internal/proto"
	"amber/internal/sim"
	"amber/internal/workload"
)

// DeviceConfig describes one SSD.
type DeviceConfig struct {
	Name string

	Geometry   nand.Geometry
	Flash      nand.Timing
	FlashPower nand.Power
	Cell       nand.CellType

	DRAM      dram.Config
	DRAMPower dram.Power

	CPU      cpu.Config
	CPUPower cpu.Power

	// FTL knobs.
	OPRatio        float64
	GCPolicy       ftl.GCPolicy
	PartialUpdate  bool
	WearLevelDelta uint32
	// RAINWidth stripes user data across dies with one parity plane per
	// RAINWidth data planes (see ftl.Config.RAINWidth): an uncorrectable
	// read of a data page is then reconstructed from the surviving stripe
	// members instead of losing data. Zero disables parity.
	RAINWidth int

	// ICL knobs. CacheLines == 0 sizes the cache to 70% of internal DRAM.
	CacheLines         int
	CacheAssoc         icl.Assoc
	CacheRepl          icl.Replacement
	ReadaheadThreshold int
	ReadaheadLines     int

	Protocol proto.Params

	// Passive moves FTL+ICL to the host (OCSSD/pblk architecture).
	Passive bool

	// TrackData carries real payload bytes end to end. Data integrity is
	// guaranteed for sub-page-aligned I/O.
	TrackData bool
	Seed      uint64

	// Faults configures deterministic NAND fault injection (zero disables):
	// program/erase failures retire blocks, uncorrectable reads lose data,
	// and spare exhaustion degrades the device to read-only.
	Faults nand.FaultConfig
	// SpareBlocks overrides the FTL's grown-bad-block budget before the
	// read-only transition; zero keeps the FTL default.
	SpareBlocks int
}

// Validate reports descriptive configuration errors.
func (c DeviceConfig) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Flash.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	if c.OPRatio <= 0 {
		return fmt.Errorf("core: OPRatio must be positive")
	}
	return nil
}

// SystemConfig pairs a device with a host platform.
type SystemConfig struct {
	Device DeviceConfig
	Host   host.Config
	// DMAMode selects timing (per-page) or functional (aggregate) data
	// transfer emulation.
	DMAMode dma.Mode
	// HostPageSize is the system-memory page size pointer lists reference.
	// Zero defaults to 4096.
	HostPageSize int
	// ContiguousDMA models request payload buffers as physically
	// contiguous host pages (hugepage-backed or pinned pool allocation),
	// letting Timing-mode DMA coalesce adjacent pointer-list entries into
	// descriptor batches. Off, every entry arbitrates on its own, the
	// conservative historical behavior.
	ContiguousDMA bool
}

// System is a full simulated machine: host plus SSD. Not safe for
// concurrent use; the simulation is single-threaded by design.
type System struct {
	cfg    SystemConfig
	params proto.Params

	Host    *host.Host
	DevCPU  *cpu.Complex
	DevDRAM *dram.DRAM
	Flash   *nand.Flash
	FTL     *ftl.FTL
	ICL     *icl.Cache
	FIL     *fil.FIL
	DMA     *dma.Engine
	Split   *hil.Splitter

	link *sim.Resource
	hba  *sim.Resource // h-type host controller serialization point
	// flushBuf bounds outstanding dirty-line write-backs: a write completes
	// once its victim's data moved to a flush-buffer slot, and the slot is
	// held until the flash programs land — the write-back decoupling real
	// firmware uses so host writes are acknowledged at DRAM speed until the
	// flash backend saturates.
	flushBuf *sim.Pool

	passive bool
	now     sim.Time
	lastEnd int64 // sequential-merge detector for the scheduler model

	// MSHR-style in-flight fill tracking: concurrent demand reads and
	// prefetches of the same super-page coalesce onto one flash fetch.
	filling map[int64]map[int]bool // lspn -> subs currently being fetched
	waiters map[int64][]func()     // lspn -> callbacks to retry at fill completion

	// RAIN reconstruction + patrol scrub state (see rain.go): super-blocks
	// whose reconstruction pressure demands a forced scrub, whether a
	// patrol scrubber is armed (Run with ScrubEvery > 0 — the
	// scrub-or-retire policy switch), repairs queued by GC plan-fault
	// recovery, and the controller-RAM scratch stripe reassembly XORs
	// members into.
	scrubPending []int
	scrubArmed   bool
	rainRepairs  []rainRepair
	rainDraining bool
	reconLocs    []ftl.PageLoc
	reconBuf     []byte
	reconTmp     []byte
	reconDirty   []bool
	reconData    []byte

	// Submit-path op pools (see submit.go): recycled request and fill
	// carriers with their step callbacks bound once.
	opFree   []*submitOp
	fillFree []*fillOp
	allSubs  []int // 0..SubPagesPerSuperPage-1, shared read-only by prefetches

	// Per-engine scheduling-domain cache (see domainsFor).
	domTab []*engineDomains

	// twoStageFills selects the fill-install structure (SetTwoStageFills):
	// on (the default), flash-backed fills stage their page bytes at issue
	// (fil.ReadSubsStaged) and publish through the channel-neutral
	// fil.publish shard, and the icl write-back shard is marked neutral too
	// — the classification whose safety argument lives in sim/doc.go. Off
	// restores the PR 4 structure (deferred copies, barrier-forcing fil and
	// icl shards), kept for equivalence tests and barrier-count benchmarks.
	twoStageFills bool
	fillsTwoStage uint64 // fills published through the neutral two-stage path
	fillsLegacy   uint64 // fills installed through the legacy fil-shard path

	// Submit-path intra mode (SetIntraWorkers): when > 1, the synchronous
	// Submit wrapper drains its engine through RunParallelWith over a
	// persistent worker pool instead of the serial Run, and Run uses it as
	// the default for RunConfig.IntraWorkers == 0.
	intraWorkers int
	subPool      *sim.WorkerPool
	submitIntra  sim.ParallelStats // accumulated over all pooled Submit drains

	// Reusable state for the synchronous Submit wrapper.
	subEngine   *sim.Engine
	subStartFn  func()
	subFinishFn func(sim.Time, error)
	subReq      workload.Request
	subData     []byte
	subDone     sim.Time
	subErr      error

	// Vectored submit state (SubmitBatch): the inline path's line scratch
	// and the window counters the ambersim footer reports.
	batchLines   []hil.Line
	batchWindow  int
	batchWindows uint64
	batchReqs    uint64

	// Farm-level fault-injection hooks (SetDeviceDown / SetServiceDelay /
	// ForceReadOnly): a latched whole-device failure and a transient extra
	// per-request service delay, both driven by internal/farm's seeded
	// device fault schedule. Plain fields checked with single branches on
	// the submit paths so the hooks cost nothing when unused.
	down         bool
	serviceDelay sim.Duration

	reqs         uint64
	bytesRead    uint64
	bytesWritten uint64
}

// ftlConfigOf maps the device knobs to the FTL configuration. Mount-time
// recovery reconstructs FTLs from it, so it must stay the single source.
func ftlConfigOf(d DeviceConfig) ftl.Config {
	return ftl.Config{
		Geometry:        d.Geometry,
		OPRatio:         d.OPRatio,
		GCPolicy:        d.GCPolicy,
		GCFreeThreshold: 2,
		PartialUpdate:   d.PartialUpdate,
		WearLevelDelta:  d.WearLevelDelta,
		SpareBlocks:     d.SpareBlocks,
		RAINWidth:       d.RAINWidth,
	}
}

// NewSystem wires a full machine from the configuration.
func NewSystem(cfg SystemConfig) (*System, error) {
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Host.Validate(); err != nil {
		return nil, err
	}
	if cfg.HostPageSize == 0 {
		cfg.HostPageSize = 4096
	}
	d := cfg.Device

	h, err := host.New(cfg.Host)
	if err != nil {
		return nil, err
	}
	devCPU, err := cpu.New(d.CPU, d.CPUPower)
	if err != nil {
		return nil, err
	}
	devDRAM, err := dram.New(d.DRAM, d.DRAMPower)
	if err != nil {
		return nil, err
	}
	flash, err := nand.New(d.Geometry, d.Flash, d.FlashPower, d.Cell, nand.Options{
		TrackData: d.TrackData, Seed: d.Seed, Faults: d.Faults,
	})
	if err != nil {
		return nil, err
	}
	translator, err := ftl.New(ftlConfigOf(d))
	if err != nil {
		return nil, err
	}
	// Durable bad-block table: every retirement the FTL decides is stamped
	// into the flash's grown-bad-block list (one entry per plane block of
	// the super-block), which is what mount-time recovery replays to rebuild
	// the retirement order — and the read-only latch — from flash state
	// alone.
	translator.SetRetireHook(func(sb int) {
		for plane := 0; plane < d.Geometry.TotalPlanes(); plane++ {
			addr := translator.Address(ftl.PageLoc{SB: sb, Plane: plane})
			flash.MarkBadBlock(d.Geometry.BlockIndex(addr))
		}
	})
	f, err := fil.New(flash, translator.Address)
	if err != nil {
		return nil, err
	}

	subSize := d.Geometry.PageSize
	subsPerLine := d.Geometry.TotalPlanes()
	lineBytes := int64(subSize) * int64(subsPerLine)
	lines := d.CacheLines
	if lines == 0 {
		if d.Passive {
			// pblk's host-side buffer is a fixed 64 MB ring (§V-E), far
			// smaller than the device DRAM an active SSD would use.
			lines = int((64 << 20) / lineBytes)
		} else {
			lines = int(d.DRAM.CapacityBytes * 7 / 10 / lineBytes)
		}
		if lines < 4 {
			lines = 4
		}
	}
	cacheCfg := icl.Config{
		Lines:              lines,
		SubsPerLine:        subsPerLine,
		SubSize:            subSize,
		Assoc:              d.CacheAssoc,
		Replacement:        d.CacheRepl,
		ReadaheadThreshold: d.ReadaheadThreshold,
		ReadaheadLines:     d.ReadaheadLines,
		TrackData:          d.TrackData,
		Seed:               d.Seed,
	}
	if cacheCfg.Assoc == icl.SetAssoc && cacheCfg.Ways == 0 {
		cacheCfg.Ways = 4
		for cacheCfg.Lines%cacheCfg.Ways != 0 {
			cacheCfg.Ways--
		}
	}
	cache, err := icl.New(cacheCfg)
	if err != nil {
		return nil, err
	}

	split, err := hil.NewSplitter(subSize, subsPerLine)
	if err != nil {
		return nil, err
	}

	link := sim.NewResource("link." + d.Protocol.Kind.String())
	engine, err := dma.New(dma.Config{
		Link:               link,
		LinkBytesPerSec:    d.Protocol.LinkBytesPerSec,
		HostMem:            h.Mem,
		HostMemBytesPerSec: cfg.Host.MemBandwidth,
		Mode:               cfg.DMAMode,
		HostControllerCopy: d.Protocol.HostControllerCopy,
	})
	if err != nil {
		return nil, err
	}

	s := &System{
		cfg:     cfg,
		params:  d.Protocol,
		Host:    h,
		DevCPU:  devCPU,
		DevDRAM: devDRAM,
		Flash:   flash,
		FTL:     translator,
		ICL:     cache,
		FIL:     f,
		DMA:     engine,
		Split:   split,
		link:    link,
		passive: d.Passive,
		lastEnd: -1,
		filling: make(map[int64]map[int]bool),
		waiters: make(map[int64][]func()),

		twoStageFills: true,
	}
	// Certified plans: the FTL and flash were constructed together above,
	// so they are in lockstep by definition — the binding that lets the FIL
	// execute the FTL's plans without the prevalidation double-walk. The
	// whole I/O path keeps the chain armed (no raw OCSSD traffic crosses
	// it); anything that breaks lockstep disarms automatically.
	if err := f.AcceptCertified(translator); err != nil {
		return nil, err
	}
	// Read certificates: lookups stamp the flash mutation epoch they were
	// performed under, so the FIL can honor "mapped ⇒ written" on the read
	// side and skip the per-address validation walk while the chain holds.
	translator.SetEpochSource(flash.StateEpoch)
	s.allSubs = make([]int, translator.SubPagesPerSuperPage())
	for i := range s.allSubs {
		s.allSubs[i] = i
	}
	if d.Protocol.HostControllerCopy {
		s.hba = sim.NewResource("hba")
	}
	s.flushBuf = sim.NewPool("flushbuf", d.Geometry.TotalPlanes())

	// Memory accounting: the firmware's cache and mapping tables live in
	// the internal DRAM for active storage; pblk moves them to the host
	// (64 MB buffer + tables), §V-E.
	mapBytes := translator.UserSuperPages() * int64(subsPerLine) * 8
	if d.Passive {
		if err := h.Alloc(64<<20 + mapBytes); err != nil {
			return nil, err
		}
	} else {
		if err := devDRAM.Reserve(cacheCfg.CapacityBytes() + mapBytes); err != nil {
			return nil, fmt.Errorf("core: internal DRAM too small for cache+map: %w", err)
		}
		// Host driver pools (queues, PRP pages).
		if err := h.Alloc(16 << 20); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// engineDomains is one engine's resolved scheduling-domain ids: the shard
// each subsystem's stage-boundary events are ordered in. Resolving names
// once per engine keeps the hot path free of map lookups.
//
// The domains split into the three classes the horizon-synchronized engine
// distinguishes (sim.MarkDomainLocal / sim.MarkChannelNeutral, doc.go):
//
//   - The per-channel nand shards are domain-local: they carry only the
//     deferred per-channel flash bookkeeping — read completions and the
//     per-die plan batches of program installs and erase clears
//     (nand.ReadDeferred, nand.PlanBatch) — which touches nothing outside
//     its channel.
//
//   - host, cpu and dma are additionally marked channel-neutral in the
//     active (non-passive) architecture: request issue, parse/dispatch and
//     payload-transfer arbitration never read per-channel counters, energy
//     or installed page contents (flash issue paths stage bytes through the
//     pending-aware index, see doc.go's safety condition), so RunParallel
//     may batch them past pending channel work without a barrier. The
//     passive (OCSSD/pblk) architecture serves requests host-side and
//     programs flash from host events, so it marks nothing neutral.
//
//   - With two-stage fills (the default), pub and icl join the neutral
//     set in the active architecture. A publish event installs a fill
//     whose line buffer was completed at issue (fil.ReadSubsStaged), so it
//     reads nothing pending channel events write; the icl write-back stage
//     only issues flash work — claims, functional block state, staged
//     program bytes all live in serial sections — and never reads channel
//     counters, energy or arena pages except through the pending-aware
//     staging path. sim/doc.go carries both proofs. SetTwoStageFills(false)
//     restores the PR 4 classification: fills ride the barrier-forcing fil
//     shard (their installs then consume line buffers that pending read
//     completions write) and icl forces barriers with them.
//
// That classification is what makes RunConfig.IntraWorkers sound and
// cheap: channels step concurrently between horizons, channel-coupled
// events dispatch serially in global order, and channel-neutral traffic
// amortizes the barriers.
type engineDomains struct {
	e    *sim.Engine
	host sim.DomainID   // request issue slots, kernel submit/complete (neutral)
	cpu  sim.DomainID   // firmware parse boundaries (neutral)
	icl  sim.DomainID   // cache/DRAM write-back boundaries (neutral with two-stage fills)
	dma  sim.DomainID   // payload-transfer boundaries (neutral)
	fil  sim.DomainID   // legacy fill continuations (barrier-forcing)
	pub  sim.DomainID   // two-stage fill publishes (neutral: staged line buffers)
	nand []sim.DomainID // per-channel deferred flash bookkeeping (domain-local)
}

// domainsFor resolves (registering on first use) this system's scheduling
// domains on e. The cache is a small linear-scan table: a System drives at
// most a couple of engines at a time (its reusable Submit engine plus one
// per Run loop), so a scan beats a map and keeps steady state
// allocation-free.
func (s *System) domainsFor(e *sim.Engine) *engineDomains {
	for _, d := range s.domTab {
		if d.e == e {
			return d
		}
	}
	d := &engineDomains{
		e:    e,
		host: e.Domain(host.Domain),
		cpu:  e.Domain(cpu.Domain),
		icl:  e.Domain(dram.Domain),
		dma:  e.Domain(dma.Domain),
		fil:  e.Domain(fil.Domain),
		pub:  e.Domain(fil.PublishDomain),
	}
	channels := s.cfg.Device.Geometry.Channels
	d.nand = make([]sim.DomainID, channels)
	for ch := 0; ch < channels; ch++ {
		d.nand[ch] = e.Domain(nand.ChannelDomain(ch))
		e.MarkDomainLocal(d.nand[ch])
	}
	if !s.passive {
		e.MarkChannelNeutral(d.host)
		e.MarkChannelNeutral(d.cpu)
		e.MarkChannelNeutral(d.dma)
		if s.twoStageFills {
			e.MarkChannelNeutral(d.pub)
			e.MarkChannelNeutral(d.icl)
		}
	}
	if len(s.domTab) >= 4 {
		// Stale entries from completed Run loops: keep the long-lived
		// Submit engine's entry (so the synchronous path stays
		// allocation-free), zero the rest for the collector. An evicted
		// live engine just re-resolves (idempotent).
		kept := s.domTab[:0]
		for _, t := range s.domTab {
			if t.e == s.subEngine {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(s.domTab); i++ {
			s.domTab[i] = nil
		}
		s.domTab = kept
	}
	s.domTab = append(s.domTab, d)
	return d
}

// Config returns the system configuration.
func (s *System) Config() SystemConfig { return s.cfg }

// Protocol returns the protocol parameters in use.
func (s *System) Protocol() proto.Params { return s.params }

// Passive reports whether the host-side FTL (pblk) architecture is active.
func (s *System) Passive() bool { return s.passive }

// Now returns the system's current simulated time.
func (s *System) Now() sim.Time { return s.now }

// SubmitEventsDispatched returns the lifetime engine-event count of the
// synchronous Submit path — the events/sec numerator for simulation-speed
// reporting (asynchronous Run loops own their engines and are excluded).
func (s *System) SubmitEventsDispatched() uint64 {
	if s.subEngine == nil {
		return 0
	}
	return s.subEngine.Dispatched()
}

// SetIntraWorkers configures the system-wide intra-device dispatch
// parallelism: with n > 1 the synchronous Submit wrapper (trace replay's
// hot path) drains its private engine via sim.Engine.RunParallelWith over a
// worker pool created once and reused across calls, and Run treats n as the
// default when RunConfig.IntraWorkers is zero. Results are byte-identical
// to the serial dispatch at any n. n <= 1 restores the plain serial drain
// and releases the pool's goroutines.
func (s *System) SetIntraWorkers(n int) {
	if s.subPool != nil && n != s.intraWorkers {
		s.subPool.Close()
		s.subPool = nil
	}
	s.intraWorkers = n
}

// IntraWorkers returns the system-wide intra-device dispatch parallelism
// configured with SetIntraWorkers.
func (s *System) IntraWorkers() int { return s.intraWorkers }

// SetTwoStageFills selects the fill-install structure. On (the default),
// flash-backed cache fills run in two stages: the page bytes are staged
// into the fill's line buffer at issue (one copy instead of the legacy
// stage-then-copy pair), the channel shards carry only the reads'
// accounting, and the install/waiter-wakeup continuation publishes through
// the channel-neutral fil.publish shard — so consecutive fills from
// different channels batch past pending channel work instead of paying one
// synchronization barrier each, and the icl write-back shard (proven
// commute-safe under the same condition, sim/doc.go) batches write-heavy
// traffic too. Off restores the PR 4 single-stage structure for
// equivalence tests and barrier-count comparisons; both settings are
// byte-identical in every simulated observable.
//
// The setting is an experiment-setup knob: call it before issuing I/O.
// Changing it resets the cached per-engine domain classification (and the
// reusable Submit engine), so a system that already ran loses its lifetime
// Submit event counters.
func (s *System) SetTwoStageFills(v bool) {
	if v == s.twoStageFills {
		return
	}
	s.twoStageFills = v
	// Neutral marks are per-engine and sticky; drop every cached engine so
	// the next use re-resolves under the new classification.
	for i := range s.domTab {
		s.domTab[i] = nil
	}
	s.domTab = s.domTab[:0]
	if s.subPool != nil {
		s.subPool.Close()
		s.subPool = nil
	}
	s.subEngine = nil
}

// TwoStageFills reports whether the two-stage fill-install structure is
// active (see SetTwoStageFills).
func (s *System) TwoStageFills() bool { return s.twoStageFills }

// FillStats returns how many flash-backed cache fills installed through the
// two-stage publish path versus the legacy single-stage path — the counters
// trace replays use to confirm which structure served them.
func (s *System) FillStats() (twoStage, legacy uint64) {
	return s.fillsTwoStage, s.fillsLegacy
}

// BatchStats returns how many requests SubmitBatch has processed and how
// many deferred-bookkeeping windows it drained for them — zero windows with
// nonzero requests means every request fell back to the evented path.
func (s *System) BatchStats() (windows, requests uint64) {
	return s.batchWindows, s.batchReqs
}

// DefaultBatchWindow is SubmitBatch's submission-window ceiling when the
// caller has not chosen one (SetBatchWindow): deferred per-channel
// bookkeeping drains at least this often even for arbitrarily long request
// vectors, keeping the engine's event pool at its steady-state size. The
// host scheduler's depth cap and the protocol's hardware queue limit still
// clamp below it.
const DefaultBatchWindow = 64

// SetBatchWindow overrides the SubmitBatch submission-window ceiling;
// n <= 0 restores DefaultBatchWindow. Larger windows defer more
// bookkeeping per drain (bounded by the engine's SetBatchLimit backstop);
// simulated results are identical at any window size.
func (s *System) SetBatchWindow(n int) { s.batchWindow = n }

// batchWindowCap returns the active submission-window ceiling.
func (s *System) batchWindowCap() int {
	if s.batchWindow > 0 {
		return s.batchWindow
	}
	return DefaultBatchWindow
}

// SubmitIntraStats returns the horizon structure accumulated over every
// pooled synchronous Submit drain since SetIntraWorkers enabled the intra
// mode (the zero value before then or with the mode off).
func (s *System) SubmitIntraStats() sim.ParallelStats { return s.submitIntra }

// SubmitEngineDomainStats returns the per-domain event counts of the
// synchronous Submit path's engine, nil before the first Submit. Reporting
// tools use it to show how engine traffic spreads across shards.
func (s *System) SubmitEngineDomainStats() []sim.DomainStat {
	if s.subEngine == nil {
		return nil
	}
	return s.subEngine.DomainStats()
}

// VolumeBytes returns the logical capacity exposed to the host.
func (s *System) VolumeBytes() int64 {
	return s.FTL.UserSuperPages() * int64(s.FTL.SuperPageBytes())
}

// ErrDeviceDown reports a whole-device failure injected through
// SetDeviceDown: the device stopped responding entirely (controller crash,
// power rail, hot unplug). Unlike ftl.ErrReadOnly it fails reads and
// writes alike; the farm host observes it as a request timeout.
var ErrDeviceDown = fmt.Errorf("core: device down")

// SetDeviceDown latches (or clears) an injected whole-device failure.
// While down, every submit path fails immediately with ErrDeviceDown and
// no device state advances. The functional state is preserved — a farm
// rebuild decides what survives, not the device.
func (s *System) SetDeviceDown(down bool) { s.down = down }

// DeviceDown reports whether an injected whole-device failure is latched.
func (s *System) DeviceDown() bool { return s.down }

// SetServiceDelay adds d to the issue time of every subsequent synchronous
// Submit / SubmitBatch request — a controller-level stall (thermal
// throttle, internal housekeeping storm) that shifts the whole request
// later without touching per-stage timing. Zero restores normal service.
func (s *System) SetServiceDelay(d sim.Duration) { s.serviceDelay = d }

// ForceReadOnly latches the device read-only through the FTL's organic
// wear-out path (ftl.ForceReadOnly): writes refuse with ftl.ErrReadOnly,
// reads keep serving and prefer clean cache victims, exactly as if grown
// bad blocks had exhausted the spare reserve at this moment.
func (s *System) ForceReadOnly() {
	s.FTL.ForceReadOnly()
	s.ICL.SetPreferCleanVictims(true)
}

// listKind maps the protocol to its pointer-list structure.
func (s *System) listKind() dma.ListKind {
	switch s.params.Kind {
	case proto.SATA:
		return dma.PRDT
	case proto.UFS:
		return dma.UPIU
	default:
		return dma.PRP
	}
}

// coreFor maps a firmware module to its pinned embedded core, clamped to
// the configured core count (the default 3-core layout pins HIL to core 0,
// ICL/FTL to core 1, FIL to core 2).
func (s *System) coreFor(module int) int {
	c := s.cfg.Device.CPU.Cores
	if module >= c {
		return c - 1
	}
	return module
}

// chargeFirmware charges an instruction mix either to the pinned embedded
// core (active storage) or to the host CPU (passive storage, where pblk
// runs the same logic), returning completion.
func (s *System) chargeFirmware(now sim.Time, module int, name string, mix cpu.InstrMix) sim.Time {
	if s.passive && module > 0 {
		// ICL/FTL/FIL-scheduling logic executes in pblk on the host.
		return s.Host.ExecutePinned(now, module%s.cfg.Host.CPUs, "pblk."+name, mix)
	}
	_, end := s.DevCPU.Execute(now, s.coreFor(module), name, mix)
	return end
}
