package core

import (
	"errors"
	"fmt"

	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/stats"
	"amber/internal/workload"
)

// RunConfig parameterizes a closed-loop benchmark run.
type RunConfig struct {
	// Requests is the number of I/Os to complete.
	Requests int
	// IODepth is the requested queue depth; the protocol's hardware queue
	// limit and the scheduler's dispatch window may clamp it.
	IODepth int
	// SampleEvery enables time-series sampling of host CPU utilization and
	// memory usage at this period (zero disables).
	SampleEvery sim.Duration
	// RunMemBytes models the benchmark process's resident memory (FIO
	// buffers + driver pools), allocated for the duration of the run
	// (Fig. 15c). Zero allocates nothing.
	RunMemBytes int64
	// WithData attaches payload buffers to every request so real bytes
	// move end to end (requires a TrackData system for integrity checks).
	WithData bool
	// IntraWorkers enables horizon-synchronized parallel intra-device
	// dispatch: between two cross-domain events, the per-NAND-channel
	// domain-local shards step concurrently over up to this many workers
	// (sim.Engine.RunParallel). Results are byte-identical to the serial
	// dispatch at any worker count. Zero falls back to the system-wide
	// System.SetIntraWorkers setting; <= 1 effective keeps the plain
	// serial loop.
	IntraWorkers int
	// PowerLossAt cuts device power at this absolute simulated time (zero
	// disables): the run's engine halts at the cut — a plain cross-domain
	// event, so the dispatched prefix is identical at any worker count —
	// all volatile firmware state is discarded with in-flight programs
	// resolved torn-or-committed by the seeded fault draw, and mount-time
	// recovery rebuilds the FTL from OOB stamps before the run returns.
	// Requests in flight at the cut never complete and are not counted.
	PowerLossAt sim.Time
	// StopOnReadOnly stops issuing new requests after the first write the
	// device refuses with ftl.ErrReadOnly, instead of grinding through the
	// remaining budget against a read-only device. Outstanding requests
	// still drain; RunResult.StoppedEarly reports the truncation.
	StopOnReadOnly bool
	// ScrubEvery arms the background patrol scrubber at this period (zero
	// disables): each tick refreshes at most one super-block — forced
	// scrubs queued by RAIN reconstruction pressure first, then the block
	// under the most read-disturb/retention stress. The tick rides its own
	// scheduling domain (a plain cross-domain shard, like the power cut),
	// so the dispatched prefix — and every simulated byte — is identical
	// at any RunConfig.IntraWorkers count. Arming a scrubber also flips
	// the scrub-or-retire policy: blocks under reconstruction pressure are
	// refreshed instead of retired, deferring the read-only latch.
	ScrubEvery sim.Duration
}

// RunResult reports a completed run.
type RunResult struct {
	Workload     string
	Requests     int
	Depth        int // effective depth after protocol/scheduler clamping
	BytesRead    int64
	BytesWritten int64
	Start        sim.Time
	End          sim.Time

	Latency stats.Latency

	// Time series (populated when sampling was enabled).
	HostCPUUtil stats.Series // fraction of all host cores busy
	HostMemMB   stats.Series // resident host memory in MB

	// Engine activity of this run's event loop: total dispatched events
	// and how they spread across the scheduling-domain shards.
	Events       uint64
	DomainEvents []sim.DomainStat

	// Intra reports the horizon structure when the run used
	// RunConfig.IntraWorkers > 1 (zero value otherwise): synchronization
	// horizons, events stepped inside windows vs dispatched serially.
	Intra sim.ParallelStats

	// Degradation under injected faults: writes refused because the device
	// latched read-only, reads lost to uncorrectable errors, and whether
	// the run ended with the device read-only. These requests complete with
	// an error instead of aborting the run — real hosts retry or fail the
	// I/O, they don't stop the machine.
	FailedWrites int
	FailedReads  int
	ReadOnly     bool
	// StoppedEarly reports that RunConfig.StopOnReadOnly truncated the run:
	// Requests holds the count actually issued, not the configured budget.
	StoppedEarly bool

	// RAIN and patrol-scrub activity over the run (deltas of the FTL's
	// lifetime counters): uncorrectable reads downgraded to latency events
	// by stripe reconstruction, reconstructions that found a second dead
	// stripe member and fell back to data loss, patrol scrub passes and the
	// sub-pages they migrated, and the parity pages programmed.
	Reconstructions uint64
	DoubleFaults    uint64
	ScrubRuns       uint64
	ScrubMigrated   uint64
	ParityWrites    uint64

	// Power-loss outcome (RunConfig.PowerLossAt): whether the cut fired,
	// how the flash resolved in-flight programs, and what mount-time
	// recovery rebuilt. End excludes the mount scan; the system clock
	// advances past it.
	PowerLost bool
	PowerLoss PowerLossReport
	Mount     ftl.MountReport
}

// Elapsed returns the wall-clock span of the run in simulated time.
func (r *RunResult) Elapsed() sim.Duration {
	if r.End <= r.Start {
		return 0
	}
	return r.End - r.Start
}

// BandwidthMBps returns total data moved over elapsed time.
func (r *RunResult) BandwidthMBps() float64 {
	return stats.BandwidthMBps(r.BytesRead+r.BytesWritten, r.Elapsed())
}

// IOPS returns completed requests per second.
func (r *RunResult) IOPS() float64 {
	return stats.IOPS(int64(r.Requests), r.Elapsed())
}

// AvgLatencyUs returns mean request latency in microseconds.
func (r *RunResult) AvgLatencyUs() float64 { return r.Latency.Mean() }

// Run drives the generator through the system closed-loop: `depth` slots
// each keep one request in flight, issuing the next the moment the
// previous completes — the FIO/libaio behavior the paper benchmarks with.
func (s *System) Run(gen workload.Generator, rc RunConfig) (*RunResult, error) {
	if rc.Requests <= 0 {
		return nil, fmt.Errorf("core: run needs a positive request count")
	}
	depth := s.params.EffectiveQueueDepth(rc.IODepth)
	if cap := s.Host.DepthCap(); depth > cap {
		depth = cap
	}
	if depth > rc.Requests {
		depth = rc.Requests
	}

	if rc.RunMemBytes > 0 {
		if err := s.Host.Alloc(rc.RunMemBytes); err != nil {
			return nil, err
		}
		defer s.Host.Free(rc.RunMemBytes)
	}

	res := &RunResult{
		Workload: gen.Name(),
		Requests: rc.Requests,
		Depth:    depth,
		Start:    s.now,
	}
	res.HostCPUUtil.Name = "host-cpu-util"
	res.HostMemMB.Name = "host-mem-mb"

	bytesRead0, bytesWritten0 := s.bytesRead, s.bytesWritten
	ftlStats0 := s.FTL.Stats()
	res.End = res.Start

	var cpuCounter stats.Counter
	nextSample := res.Start
	if rc.SampleEvery > 0 {
		cpuCounter.Delta(res.Start+1, s.Host.CPU.BusyTime().Seconds())
		nextSample = res.Start + rc.SampleEvery
	}

	// Event-driven closed loop: each of the `depth` jobs keeps one request
	// in flight, issuing its next the moment the previous completes. The
	// shared engine makes concurrent requests claim resources in global
	// time order.
	e := sim.NewEngine()
	doms := s.domainsFor(e)
	// The power cut rides a plain cross-domain event (its own shard, never
	// marked local or neutral), so horizon batching treats it as a barrier:
	// the set of events dispatched before it is identical at any worker
	// count, and the cut point is registered before any workload event so
	// its sequence number orders it ahead of same-time traffic.
	if rc.PowerLossAt > 0 {
		pwr := e.Domain("pwr")
		e.AtIn(pwr, rc.PowerLossAt, func() { e.Halt() })
	}
	issued := 0
	completed := 0
	stopped := false
	var runErr error
	var issueNext func()
	issueNext = func() {
		if runErr != nil || stopped || issued >= rc.Requests {
			return
		}
		i := issued
		issued++
		req := gen.Next(i)
		var data []byte
		if rc.WithData {
			data = make([]byte, req.Length)
			if req.Write {
				for k := range data {
					data[k] = byte(int(req.Offset) + k + i)
				}
			}
		}
		issue := e.Now()
		s.SubmitAsync(e, req, data, func(done sim.Time, err error) {
			completed++
			if err != nil {
				// Degradation errors are per-request outcomes, not run
				// failures: a read-only device refuses writes and an
				// uncorrectable page fails its read, but the host keeps
				// issuing. Anything else is a simulator fault and aborts.
				if errors.Is(err, ftl.ErrReadOnly) || errors.Is(err, nand.ErrUncorrectable) {
					if req.Write {
						res.FailedWrites++
					} else {
						res.FailedReads++
					}
					if rc.StopOnReadOnly && errors.Is(err, ftl.ErrReadOnly) {
						stopped = true
						return
					}
					e.AtIn(doms.host, e.Now(), issueNext)
					return
				}
				if runErr == nil {
					runErr = fmt.Errorf("core: request %d (%+v): %w", i, req, err)
				}
				return
			}
			res.Latency.Add(done - issue)
			if done > res.End {
				res.End = done
			}
			if rc.SampleEvery > 0 {
				for done >= nextSample {
					// Host CPU utilization over the window: busy-seconds
					// rate divided by core count.
					rate := cpuCounter.Delta(nextSample, s.Host.CPU.BusyTime().Seconds())
					res.HostCPUUtil.Add(nextSample, rate/float64(s.cfg.Host.CPUs))
					res.HostMemMB.Add(nextSample, float64(s.Host.MemUsed())/1e6)
					nextSample += rc.SampleEvery
				}
			}
			e.AtIn(doms.host, sim.MaxOf(done, e.Now()), issueNext)
		})
	}
	for i := 0; i < depth; i++ {
		e.AtIn(doms.host, res.Start, issueNext)
	}
	if rc.ScrubEvery > 0 {
		// The patrol tick self-reschedules only while the workload still
		// has requests outstanding, so the engine drains when the run does.
		// Arming it also flips the scrub-or-retire policy (see noteRecon).
		s.scrubArmed = true
		defer func() { s.scrubArmed = false }()
		scrubDom := e.Domain("scrub")
		var tick func()
		tick = func() {
			if runErr != nil {
				return
			}
			s.scrubTick(e, e.Now())
			if issued < rc.Requests && !stopped || completed < issued {
				e.AtIn(scrubDom, e.Now()+rc.ScrubEvery, tick)
			}
		}
		e.AtIn(scrubDom, res.Start+rc.ScrubEvery, tick)
	}
	intraWorkers := rc.IntraWorkers
	if intraWorkers == 0 {
		intraWorkers = s.intraWorkers
	}
	if intraWorkers > 1 {
		res.Intra = e.RunParallel(intraWorkers)
	} else {
		e.Run()
	}
	res.Events = e.Dispatched()
	res.DomainEvents = e.DomainStats()
	// RAIN/scrub deltas come off the live FTL before a power-loss mount
	// replaces it (the mounted FTL restarts its lifetime counters).
	ftlStats := s.FTL.Stats()
	res.Reconstructions = ftlStats.Reconstructions - ftlStats0.Reconstructions
	res.DoubleFaults = ftlStats.DoubleFaults - ftlStats0.DoubleFaults
	res.ScrubRuns = ftlStats.ScrubRuns - ftlStats0.ScrubRuns
	res.ScrubMigrated = ftlStats.ScrubMigrated - ftlStats0.ScrubMigrated
	res.ParityWrites = ftlStats.ParityWrites - ftlStats0.ParityWrites
	if stopped {
		res.StoppedEarly = true
		res.Requests = issued
	}
	if runErr != nil {
		return nil, runErr
	}
	if res.End > s.now {
		s.now = res.End
	}
	if e.Halted() {
		// The cut fired: requests still in flight die with the firmware
		// RAM (their completions never ran, so they were never counted),
		// the device loses all volatile state, and mount-time recovery
		// rebuilds the FTL from the flash's OOB stamps.
		res.PowerLost = true
		res.PowerLoss = s.PowerLoss(rc.PowerLossAt)
		mrep, err := s.Mount()
		if err != nil {
			return nil, fmt.Errorf("core: mount after power loss: %w", err)
		}
		res.Mount = mrep
	}
	res.ReadOnly = s.FTL.ReadOnly()
	res.BytesRead = int64(s.bytesRead - bytesRead0)
	res.BytesWritten = int64(s.bytesWritten - bytesWritten0)
	return res, nil
}

// Drain advances the system clock past all outstanding backend work
// (flash programs, GC migrations, erases), so a following measurement is
// not polluted by the tail of earlier writes. Benchmarks call it between
// preconditioning and the measured run, mirroring the idle settle time
// real SSD test methodology inserts.
func (s *System) Drain() {
	if t := s.Flash.FreeAt(); t > s.now {
		s.now = t
	}
}

// Precondition brings the device to the paper's STEADY-STATE: the entire
// logical volume is written sequentially once (full mapping, no free
// logical space), so subsequent write tests exercise GC realistically.
func (s *System) Precondition(depth int) error {
	bs := s.Split.LineBytes()
	n := int(s.VolumeBytes() / int64(bs))
	gen, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), s.cfg.Device.Seed)
	if err != nil {
		return err
	}
	res, err := s.Run(gen, RunConfig{Requests: n, IODepth: depth, StopOnReadOnly: true})
	if err != nil {
		return err
	}
	if res.StoppedEarly || res.FailedWrites > 0 {
		// Surface wear-out as a typed error with progress context instead
		// of grinding the remaining budget against a read-only device.
		ok := res.Requests - res.FailedWrites
		return fmt.Errorf("core: precondition stopped after %d of %d writes (%d refused): %w",
			ok, n, res.FailedWrites, ftl.ErrReadOnly)
	}
	if _, err := s.Flush(s.now); err != nil {
		return err
	}
	s.Drain()
	return nil
}

// StressFill overwrites the volume randomly with writeFactor times its
// capacity in 4 KiB-aligned blocks of the given size — the Fig. 11
// worst-case stress pattern.
func (s *System) StressFill(blockSize int, writeFactor float64) error {
	gen, err := workload.NewFIO(workload.RandWrite, blockSize, s.VolumeBytes(), s.cfg.Device.Seed^0x5f)
	if err != nil {
		return err
	}
	n := int(float64(s.VolumeBytes()) * writeFactor / float64(blockSize))
	if n < 1 {
		n = 1
	}
	res, err := s.Run(gen, RunConfig{Requests: n, IODepth: 32, StopOnReadOnly: true})
	if err != nil {
		return err
	}
	if res.StoppedEarly || res.FailedWrites > 0 {
		ok := res.Requests - res.FailedWrites
		return fmt.Errorf("core: stress fill stopped after %d of %d writes (%d refused): %w",
			ok, n, res.FailedWrites, ftl.ErrReadOnly)
	}
	return nil
}
