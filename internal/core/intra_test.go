package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/nand"
	"amber/internal/workload"
)

// wideSystem builds a TrackData system whose device has many NAND channels,
// the shape intra-device parallelism targets.
func wideSystem(t *testing.T) *core.System {
	t.Helper()
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// intraTrajectory drives one system through the GC-triggering write +
// mixed-read trajectory the equivalence test compares, and renders every
// observable — experiment-table rows, per-domain dispatch counts, component
// stats, read-back payloads — into one golden string.
func intraTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	table := func(name string, res *core.RunResult) {
		fmt.Fprintf(&out, "%s | reqs %d depth %d | %d..%d | rd %d wr %d | lat mean %.6f p50 %.6f p95 %.6f max %.6f | events %d\n",
			name, res.Requests, res.Depth, res.Start, res.End, res.BytesRead, res.BytesWritten,
			res.Latency.Mean(), res.Latency.Percentile(50), res.Latency.Percentile(95), res.Latency.Max(),
			res.Events)
		for _, d := range res.DomainEvents {
			if d.Dispatched > 0 {
				fmt.Fprintf(&out, "  dom %s dispatched %d pending %d\n", d.Name, d.Dispatched, d.Pending)
			}
		}
	}

	// Phase 1: random overwrites on the preconditioned (fully mapped)
	// volume — the GC-triggering write workload.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	table("rand-write", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC; the equivalence must cover a GC-triggering workload")
	}
	s.Drain()

	// Phase 2: sequential reads with payload buffers, so the channels'
	// deferred tracked-data copies are exercised and checked byte-for-byte.
	rgen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	table("seq-read", res)

	// Phase 3: random reads at depth (coalescing, readahead churn).
	rrgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rrgen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	table("rand-read", res)

	fs := s.Flash.Stats()
	fmt.Fprintf(&out, "flash %+v energy %.18g\n", fs, s.Flash.EnergyJoules())
	for ch := 0; ch < s.Config().Device.Geometry.Channels; ch++ {
		fmt.Fprintf(&out, "  ch%d %+v\n", ch, s.Flash.ChannelStats(ch))
	}
	fmt.Fprintf(&out, "ftl %+v\n", s.FTL.Stats())
	fmt.Fprintf(&out, "icl %+v\n", s.ICL.Stats())
	fmt.Fprintf(&out, "fil %+v\n", s.FIL.Stats())
	fmt.Fprintf(&out, "now %v\n", s.Now())

	// Read a deterministic sample of payloads back synchronously and
	// fingerprint the bytes: the data path must be identical too.
	bs := 4096
	for i := 0; i < 16; i++ {
		off := (int64(i) * 977 * int64(bs)) % (s.VolumeBytes() - int64(bs))
		off -= off % int64(bs)
		buf := make([]byte, bs)
		if _, err := s.Submit(s.Now(), workload.Request{Offset: off, Length: bs}, buf); err != nil {
			t.Fatal(err)
		}
		sum := uint64(0)
		for j, b := range buf {
			sum += uint64(b) * uint64(j+1)
		}
		fmt.Fprintf(&out, "data@%d sum %d\n", off, sum)
	}
	return out.String()
}

// TestIntraParallelGoldenEquivalence is the acceptance bar of the
// horizon-synchronized execution model: a run with IntraWorkers > 1 must
// produce byte-identical experiment tables, per-domain dispatch counts,
// component statistics and payload bytes versus the plain serial dispatch,
// on a multi-channel device and through a GC-triggering write phase. Run
// under -race it also proves the channel shards share nothing.
func TestIntraParallelGoldenEquivalence(t *testing.T) {
	serial := intraTrajectory(t, wideSystem(t), 0)
	parallel := intraTrajectory(t, wideSystem(t), 4)
	if serial != parallel {
		t.Fatalf("intra-parallel run diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty trajectory")
	}
}

// TestIntraParallelHorizonStats sanity-checks the reported horizon
// structure: windows exist, local events flow through them, and the mean
// local events per horizon is positive.
func TestIntraParallelHorizonStats(t *testing.T) {
	s := wideSystem(t)
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewFIO(workload.RandRead, 16384, s.VolumeBytes(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(gen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Intra
	if st.Horizons == 0 || st.LocalEvents == 0 || st.CrossEvents == 0 {
		t.Fatalf("degenerate horizon stats: %+v", st)
	}
	if st.MeanLocalPerHorizon() <= 0 {
		t.Fatalf("MeanLocalPerHorizon = %v", st.MeanLocalPerHorizon())
	}
	// Every window-dispatched event is a nand-channel event and vice versa:
	// the per-domain counters must reconcile with the horizon stats.
	var local uint64
	for _, d := range res.DomainEvents {
		if strings.HasPrefix(d.Name, "nand.ch") {
			local += d.Dispatched
		}
	}
	if local != st.LocalEvents {
		t.Fatalf("per-domain nand dispatches %d != window local events %d", local, st.LocalEvents)
	}
}
