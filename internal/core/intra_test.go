package core_test

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/workload"
)

// intraWorkerMatrix returns the worker counts the golden equivalence tests
// compare against the serial reference. CI's race matrix pins one count per
// job via AMBERSIM_INTRA_WORKERS; without the variable, the full {1, 2, 4}
// set runs.
func intraWorkerMatrix(t *testing.T) []int {
	t.Helper()
	if v := os.Getenv("AMBERSIM_INTRA_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad AMBERSIM_INTRA_WORKERS %q", v)
		}
		return []int{n}
	}
	return []int{1, 2, 4}
}

// wideSystem builds a TrackData system whose device has many NAND channels,
// the shape intra-device parallelism targets.
func wideSystem(t *testing.T) *core.System {
	t.Helper()
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderRow writes one run's experiment-table row (no per-domain lines)
// into the golden buffer.
func renderRow(out *bytes.Buffer, name string, res *core.RunResult) {
	fmt.Fprintf(out, "%s | reqs %d depth %d | %d..%d | rd %d wr %d | lat mean %.6f p50 %.6f p95 %.6f max %.6f | events %d\n",
		name, res.Requests, res.Depth, res.Start, res.End, res.BytesRead, res.BytesWritten,
		res.Latency.Mean(), res.Latency.Percentile(50), res.Latency.Percentile(95), res.Latency.Max(),
		res.Events)
}

// renderRun writes one run's experiment-table row and per-domain dispatch
// counts into the golden buffer.
func renderRun(out *bytes.Buffer, name string, res *core.RunResult) {
	renderRow(out, name, res)
	for _, d := range res.DomainEvents {
		if d.Dispatched > 0 {
			fmt.Fprintf(out, "  dom %s dispatched %d pending %d\n", d.Name, d.Dispatched, d.Pending)
		}
	}
}

// renderState writes the component statistics — flash counters and energy
// (total and per channel), FTL, ICL, FIL, clock — into the golden buffer.
func renderState(out *bytes.Buffer, s *core.System) {
	fs := s.Flash.Stats()
	fmt.Fprintf(out, "flash %+v energy %.18g\n", fs, s.Flash.EnergyJoules())
	for ch := 0; ch < s.Config().Device.Geometry.Channels; ch++ {
		fmt.Fprintf(out, "  ch%d %+v\n", ch, s.Flash.ChannelStats(ch))
	}
	fmt.Fprintf(out, "ftl %+v\n", s.FTL.Stats())
	fmt.Fprintf(out, "icl %+v\n", s.ICL.Stats())
	// CertifiedReads counts read fast-path hits — exactly what the fill-mode
	// comparison toggles (legacy installs walk by design), and the one
	// non-semantic fil-counter difference between the modes. Normalize it
	// like the shard-name difference so the trajectory stays comparable.
	fst := s.FIL.Stats()
	fst.CertifiedReads = 0
	fmt.Fprintf(out, "fil %+v\n", fst)
	fmt.Fprintf(out, "now %v\n", s.Now())
}

// renderData reads a deterministic sample of payloads back synchronously
// and fingerprints the bytes: the data path must be identical too.
func renderData(t *testing.T, out *bytes.Buffer, s *core.System) {
	t.Helper()
	bs := 4096
	for i := 0; i < 16; i++ {
		off := (int64(i) * 977 * int64(bs)) % (s.VolumeBytes() - int64(bs))
		off -= off % int64(bs)
		buf := make([]byte, bs)
		if _, err := s.Submit(s.Now(), workload.Request{Offset: off, Length: bs}, buf); err != nil {
			t.Fatal(err)
		}
		sum := uint64(0)
		for j, b := range buf {
			sum += uint64(b) * uint64(j+1)
		}
		fmt.Fprintf(out, "data@%d sum %d\n", off, sum)
	}
}

// intraTrajectory drives one system through the GC-triggering write +
// mixed-read trajectory the equivalence test compares, and renders every
// observable — experiment-table rows, per-domain dispatch counts, component
// stats, read-back payloads — into one golden string.
func intraTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	table := func(name string, res *core.RunResult) {
		renderRun(&out, name, res)
	}

	// Phase 1: random overwrites on the preconditioned (fully mapped)
	// volume — the GC-triggering write workload.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	table("rand-write", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC; the equivalence must cover a GC-triggering workload")
	}
	s.Drain()

	// Phase 2: sequential reads with payload buffers, so the channels'
	// deferred tracked-data copies are exercised and checked byte-for-byte.
	rgen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	table("seq-read", res)

	// Phase 3: random reads at depth (coalescing, readahead churn).
	rrgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rrgen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	table("rand-read", res)

	renderState(&out, s)
	renderData(t, &out, s)
	return out.String()
}

// writeTrajectory is the write-heavy golden trajectory for the deferred
// program/erase path: GC-triggering random overwrites carrying real payload
// bytes, a second GC wave at a larger block size (multi-sub lines, more
// migrations), then a mixed-read phase that checks the written bytes came
// back through the deferred installs, all on one preconditioned system.
func writeTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	// Phase 1: 4K random overwrites with payload buffers on the fully
	// mapped volume — deferred program installs under GC.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 500, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRun(&out, "rand-write-4k", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC; the deferred-write equivalence must cover GC")
	}

	// Phase 2: larger random writes — whole-line programs plus erase waves.
	w2gen, err := workload.NewFIO(workload.RandWrite, 16384, s.VolumeBytes(), 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(w2gen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRun(&out, "rand-write-16k", res)
	s.Drain()

	// Phase 3: mixed reads — sequential with payload verification traffic,
	// then random at depth against the rewritten volume.
	rgen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 15)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 150, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRun(&out, "seq-read", res)
	rrgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rrgen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	renderRun(&out, "rand-read", res)

	renderState(&out, s)
	renderData(t, &out, s)
	return out.String()
}

// TestWriteDeferredGoldenEquivalence is the acceptance bar for deferred
// program/erase bookkeeping and horizon batching: a GC-triggering
// random-write trajectory with real payloads plus a mixed-read phase must
// produce byte-identical experiment tables, per-domain dispatch counts,
// component statistics, per-channel counters/energy and payload bytes at
// every worker count versus the plain serial dispatch. Run under -race
// (with the AMBERSIM_INTRA_WORKERS CI matrix) it also proves the deferred
// installs and clears share nothing across channel shards.
func TestWriteDeferredGoldenEquivalence(t *testing.T) {
	serial := writeTrajectory(t, wideSystem(t), 0)
	if len(serial) == 0 {
		t.Fatal("empty trajectory")
	}
	for _, workers := range intraWorkerMatrix(t) {
		got := writeTrajectory(t, wideSystem(t), workers)
		if got != serial {
			t.Fatalf("workers=%d diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestSubmitIntraEquivalence locks in the submit-path intra mode: a system
// with SetIntraWorkers draining its synchronous Submit engine through the
// pooled horizon dispatcher must complete every request at the same time,
// with the same component statistics and the same read-back bytes, as a
// serial system replaying the same sequence.
func TestSubmitIntraEquivalence(t *testing.T) {
	run := func(workers int) (string, *core.System) {
		s := wideSystem(t)
		s.SetIntraWorkers(workers)
		defer s.SetIntraWorkers(0) // release the pool goroutines
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 21)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		buf := make([]byte, 16384)
		for i := 0; i < 300; i++ {
			req := gen.Next(i)
			data := buf[:req.Length]
			for k := range data {
				data[k] = byte(int(req.Offset) + k + i)
			}
			done, err := s.Submit(s.Now(), req, data)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&out, "req %d done %d\n", i, done)
		}
		renderState(&out, s)
		renderData(t, &out, s)
		return out.String(), s
	}
	serial, _ := run(0)
	for _, workers := range intraWorkerMatrix(t) {
		if workers <= 1 {
			continue // the pooled path needs >= 2 workers to engage
		}
		got, s := run(workers)
		if got != serial {
			t.Fatalf("submit intra workers=%d diverged from serial:\n--- serial ---\n%s--- intra ---\n%s",
				workers, serial, got)
		}
		st := s.SubmitIntraStats()
		if st.LocalEvents == 0 || st.CrossEvents == 0 {
			t.Fatalf("pooled submit drains recorded no horizon structure: %+v", st)
		}
	}
	// Precondition and renderData above also exercised Run/Submit falling
	// back to the system-wide setting (RunConfig.IntraWorkers == 0).
}

// TestIntraParallelGoldenEquivalence is the acceptance bar of the
// horizon-synchronized execution model: a run with IntraWorkers > 1 must
// produce byte-identical experiment tables, per-domain dispatch counts,
// component statistics and payload bytes versus the plain serial dispatch,
// on a multi-channel device and through a GC-triggering write phase. Run
// under -race it also proves the channel shards share nothing.
func TestIntraParallelGoldenEquivalence(t *testing.T) {
	serial := intraTrajectory(t, wideSystem(t), 0)
	parallel := intraTrajectory(t, wideSystem(t), 4)
	if serial != parallel {
		t.Fatalf("intra-parallel run diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
	if len(serial) == 0 {
		t.Fatal("empty trajectory")
	}
}

// twoStageTrajectory drives a miss-heavy read phase (the fill class
// two-stage installs target), a GC-triggering write phase with payloads
// (dirty evictions flushing from publish and write-ops events) and a
// sequential read phase (readahead prefetch fills), rendering every
// mode-independent observable. Per-domain dispatch lines are deliberately
// omitted: the publish continuations ride differently named shards per
// fill mode (fil.publish vs fil), which is the one non-semantic difference
// between the modes.
func twoStageTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	rrgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 31)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(rrgen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRow(&out, "rand-read-4k", res)

	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 33)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(wgen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRow(&out, "rand-write-4k", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC")
	}
	s.Drain()

	sgen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 35)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(sgen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRow(&out, "seq-read", res)

	renderState(&out, s)
	renderData(t, &out, s)
	return out.String()
}

// TestTwoStageFillGoldenEquivalence is the acceptance bar for two-stage
// fill installs and the neutral icl shard: with both enabled (the
// default), a miss-heavy read + GC write trajectory must produce identical
// component statistics, per-channel counters/energy, latencies and payload
// bytes at every worker count versus the serial dispatch — and the legacy
// single-stage fill structure must produce the same observables too, since
// the restructuring moves bookkeeping between shards without touching a
// single simulated claim. Run under -race (AMBERSIM_INTRA_WORKERS matrix)
// it also proves the batched publish/icl events share nothing with the
// channel shards they batch past.
func TestTwoStageFillGoldenEquivalence(t *testing.T) {
	run := func(twoStage bool, workers int) string {
		s := wideSystem(t)
		s.SetTwoStageFills(twoStage)
		if s.TwoStageFills() != twoStage {
			t.Fatal("SetTwoStageFills did not take")
		}
		return twoStageTrajectory(t, s, workers)
	}
	serial := run(true, 0)
	if len(serial) == 0 {
		t.Fatal("empty trajectory")
	}
	for _, workers := range intraWorkerMatrix(t) {
		if got := run(true, workers); got != serial {
			t.Fatalf("two-stage workers=%d diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
		// The legacy classification stays live code (SetTwoStageFills's off
		// position, the barrier benchmarks' baseline), so its parallel
		// dispatch is held to the same golden bar, not just workers=0.
		if got := run(false, workers); got != serial {
			t.Fatalf("legacy fill mode workers=%d diverged:\n--- two-stage serial ---\n%s--- legacy workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
	if got := run(false, 0); got != serial {
		t.Fatalf("legacy fill mode diverged from two-stage:\n--- two-stage ---\n%s--- legacy ---\n%s", serial, got)
	}
}

// TestTwoStageFillBatching verifies the point of the restructuring: on a
// 4K random-read miss-heavy workload, the two-stage structure batches fill
// publishes past pending channel work (the legacy structure pays a barrier
// per fill), and the fill counters attribute the installs to the right
// path in each mode.
func TestTwoStageFillBatching(t *testing.T) {
	run := func(twoStage bool) (sim.ParallelStats, *core.System) {
		s := wideSystem(t)
		s.SetTwoStageFills(twoStage)
		if err := s.Precondition(16); err != nil {
			t.Fatal(err)
		}
		gen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 41)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(gen, core.RunConfig{Requests: 400, IODepth: 16, IntraWorkers: 2, WithData: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Intra, s
	}
	stTwo, sTwo := run(true)
	stLegacy, sLegacy := run(false)
	if stTwo.Barriers() >= stLegacy.Barriers() {
		t.Fatalf("two-stage fills did not cut barriers: %d vs legacy %d", stTwo.Barriers(), stLegacy.Barriers())
	}
	if stTwo.BatchedCross <= stLegacy.BatchedCross {
		t.Fatalf("two-stage fills did not batch more cross events: %d vs legacy %d", stTwo.BatchedCross, stLegacy.BatchedCross)
	}
	if two, legacy := sTwo.FillStats(); two == 0 || legacy != 0 {
		t.Fatalf("two-stage system fill counters: twoStage=%d legacy=%d", two, legacy)
	}
	if two, legacy := sLegacy.FillStats(); two != 0 || legacy == 0 {
		t.Fatalf("legacy system fill counters: twoStage=%d legacy=%d", two, legacy)
	}
	// The certified fast path served the trajectory too: every deferred
	// plan execution skipped the walk (PlanCount also counts Flush's
	// synchronous Execute plans, which have no walk to skip).
	if fs := sTwo.FIL.Stats(); fs.CertifiedPlans == 0 {
		t.Fatalf("no plan took the certified fast path: %+v", fs)
	}
}

// TestIntraParallelHorizonStats sanity-checks the reported horizon
// structure: windows exist, local events flow through them, and the mean
// local events per horizon is positive.
func TestIntraParallelHorizonStats(t *testing.T) {
	s := wideSystem(t)
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewFIO(workload.RandRead, 16384, s.VolumeBytes(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(gen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Intra
	if st.Horizons == 0 || st.LocalEvents == 0 || st.CrossEvents == 0 {
		t.Fatalf("degenerate horizon stats: %+v", st)
	}
	if st.MeanLocalPerHorizon() <= 0 {
		t.Fatalf("MeanLocalPerHorizon = %v", st.MeanLocalPerHorizon())
	}
	// Every window-dispatched event is a nand-channel event and vice versa:
	// the per-domain counters must reconcile with the horizon stats.
	var local uint64
	for _, d := range res.DomainEvents {
		if strings.HasPrefix(d.Name, "nand.ch") {
			local += d.Dispatched
		}
	}
	if local != st.LocalEvents {
		t.Fatalf("per-domain nand dispatches %d != window local events %d", local, st.LocalEvents)
	}
}
