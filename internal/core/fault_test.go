package core_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/nand"
	"amber/internal/workload"
)

// faultSystem builds the wideSystem shape with deterministic fault
// injection armed: wear-independent probabilities (WearEraseLimit 0) so
// faults fire on a fresh device, and a spare reserve large enough that the
// trajectory degrades without latching read-only.
func faultSystem(t *testing.T) *core.System {
	t.Helper()
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	// Generous over-provisioning: each retirement removes one of only ten
	// super-blocks, and GC needs room to keep absorbing the churn.
	d.OPRatio = 0.4
	d.Faults = nand.FaultConfig{
		Seed:            99,
		ProgramFailProb: 0.0015,
		EraseFailProb:   0.01,
		ReadFailProb:    0.05,
		MaxReadRetries:  1,
	}
	d.SpareBlocks = 4
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// renderFaults writes every fault-injection observable into the golden
// buffer: aggregate fault counters, the ordered fault-site log, the
// retirement order, the remaining spare headroom and the read-only latch.
func renderFaults(out *bytes.Buffer, s *core.System) {
	fmt.Fprintf(out, "faults %+v\n", s.Flash.FaultStats())
	for i, site := range s.Flash.FaultSites() {
		fmt.Fprintf(out, "  site %d %v %+v ec %d\n", i, site.Op, site.Addr, site.EraseCount)
	}
	fmt.Fprintf(out, "retired %v headroom %d readonly %v\n",
		s.FTL.RetiredSuperBlocks(), s.FTL.SpareHeadroom(), s.FTL.ReadOnly())
}

// renderFaultRow extends the experiment-table row with the degradation
// counters a faulty run surfaces.
func renderFaultRow(out *bytes.Buffer, name string, res *core.RunResult) {
	renderRow(out, name, res)
	fmt.Fprintf(out, "  failed wr %d rd %d readonly %v\n",
		res.FailedWrites, res.FailedReads, res.ReadOnly)
}

// renderFaultData fingerprints a deterministic payload sample like
// renderData, but folds read errors into the golden string instead of
// failing: on a faulty device an uncorrectable read is a legitimate,
// deterministic outcome the equivalence must cover.
func renderFaultData(out *bytes.Buffer, s *core.System) {
	bs := 4096
	for i := 0; i < 16; i++ {
		off := (int64(i) * 977 * int64(bs)) % (s.VolumeBytes() - int64(bs))
		off -= off % int64(bs)
		buf := make([]byte, bs)
		if _, err := s.Submit(s.Now(), workload.Request{Offset: off, Length: bs}, buf); err != nil {
			fmt.Fprintf(out, "data@%d err %v\n", off, err)
			continue
		}
		sum := uint64(0)
		for j, b := range buf {
			sum += uint64(b) * uint64(j+1)
		}
		fmt.Fprintf(out, "data@%d sum %d\n", off, sum)
	}
}

// faultTrajectory drives one fault-armed system through a GC-heavy
// overwrite storm plus a read phase and renders every observable — run
// rows with failure counters, fault sites, retirement order, component
// stats, payload fingerprints — into one golden string.
func faultTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	if err := s.Precondition(16); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer

	// Phase 1: 4K random overwrites on the fully mapped volume — GC churn
	// draws program and erase faults, retires blocks, replans.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 600, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderFaultRow(&out, "fault-rand-write", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("write phase did not trigger GC; the fault equivalence must cover recovery under GC")
	}

	// Phase 2: random reads against the degraded volume — the retry
	// ladder draws, some reads are lost as uncorrectable.
	rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(rgen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	renderFaultRow(&out, "fault-rand-read", res)

	renderFaults(&out, s)
	renderState(&out, s)
	renderFaultData(&out, s)
	return out.String()
}

// TestFaultScheduleGoldenEquivalence is the acceptance bar for
// deterministic fault injection: with a fixed seed, a GC-heavy trajectory
// must draw the identical fault schedule — same fault sites in the same
// order, same retirements, same replans, same lost pages, same payload
// bytes — at every intra-parallel worker count as under plain serial
// dispatch. Faults, like claims, are drawn only in serial sections, so the
// schedule is a property of the op sequence alone. Run under -race (with
// the AMBERSIM_INTRA_WORKERS CI matrix) this also proves the fault path
// adds no data races.
func TestFaultScheduleGoldenEquivalence(t *testing.T) {
	serial := faultTrajectory(t, faultSystem(t), 0)

	// The equivalence is vacuous unless faults actually fired and retired
	// blocks on this trajectory.
	if !strings.Contains(serial, "site 0") {
		t.Fatalf("trajectory drew no faults; raise the probabilities:\n%s", serial)
	}
	if strings.Contains(serial, "retired []") {
		t.Fatalf("trajectory retired no blocks; the equivalence must cover retirement order:\n%s", serial)
	}

	for _, workers := range intraWorkerMatrix(t) {
		got := faultTrajectory(t, faultSystem(t), workers)
		if got != serial {
			sl := strings.Split(serial, "\n")
			gl := strings.Split(got, "\n")
			for i := 0; i < len(sl) || i < len(gl); i++ {
				var a, b string
				if i < len(sl) {
					a = sl[i]
				}
				if i < len(gl) {
					b = gl[i]
				}
				if a != b {
					t.Fatalf("workers=%d fault schedule diverged at line %d:\nserial: %s\nworkers: %s", workers, i, a, b)
				}
			}
			t.Fatalf("workers=%d diverged from serial (length %d vs %d)", workers, len(serial), len(got))
		}
	}
}
