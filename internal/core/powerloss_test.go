package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"amber/internal/core"
	"amber/internal/sim"
	"amber/internal/workload"
)

// seqFillDurable writes the whole volume sequentially with tracked payload
// bytes, then flushes and drains so every byte is acknowledged durable on
// flash. It returns the generator seed so callers can replay the request
// sequence and reconstruct the exact payload of every line.
func seqFillDurable(t *testing.T, s *core.System, workers int) (bs int, n int, seed int) {
	t.Helper()
	bs = s.Split.LineBytes()
	n = int(s.VolumeBytes() / int64(bs))
	seed = 43
	gen, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), uint64(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: 16, IntraWorkers: workers, WithData: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(s.Now()); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	return bs, n, seed
}

// runPayload reconstructs the payload bytes Run's WithData generator
// attached to request i: data[k] = byte(offset + k + i).
func runPayload(req workload.Request, i int) []byte {
	data := make([]byte, req.Length)
	for k := range data {
		data[k] = byte(int(req.Offset) + k + i)
	}
	return data
}

// powerTrajectory drives a TrackData system through a durable sequential
// fill, a GC-heavy overwrite storm cut by a power loss mid-flight, recovery,
// and a post-mount write+read phase, rendering every observable — run rows,
// the power-loss resolution, the mount report, component stats and payload
// fingerprints — into one golden string.
func powerTrajectory(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	var out bytes.Buffer
	seqFillDurable(t, s, workers)

	// Phase 1: uncut storm segment — establishes GC churn and a reference
	// duration for placing the cut.
	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRow(&out, "pre-cut", res)
	if s.FTL.Stats().GCRuns == 0 {
		t.Fatal("storm did not trigger GC; the power-loss equivalence must cover recovery under GC")
	}

	// Phase 2: the same storm continues and power is cut a third of the
	// phase-1 span in — deep inside the overwrite churn, with programs (and
	// typically GC plans) in flight.
	cut := s.Now() + sim.Time((res.End-res.Start)/3)
	w2gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(w2gen, core.RunConfig{Requests: 600, IODepth: 16, IntraWorkers: workers, WithData: true, PowerLossAt: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PowerLost {
		t.Fatalf("cut at %v did not fire (run ended %v)", cut, res.End)
	}
	if res.PowerLoss.Flash.InFlight == 0 {
		t.Fatal("cut caught no in-flight programs; move it deeper into the storm")
	}
	renderRow(&out, "cut", res)
	fmt.Fprintf(&out, "powerloss %+v\n", res.PowerLoss)
	fmt.Fprintf(&out, "mount %+v\n", res.Mount)

	// Phase 3: the remounted device keeps serving — writes allocate fresh
	// open blocks, reads hit the recovered mapping.
	w3gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(w3gen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRow(&out, "post-mount", res)

	renderState(&out, s)
	renderData(t, &out, s)
	return out.String()
}

// TestPowerLossRecoveryGoldenEquivalence is the acceptance bar for
// deterministic power-loss emulation: a cut dropped into a GC-heavy
// overwrite storm must resolve the identical in-flight set
// torn-or-committed, rebuild the identical mapping at mount, and leave the
// device continuing byte-identically — at every intra-parallel worker count
// versus the plain serial dispatch. The cut rides a plain cross-domain
// event (a barrier), so the dispatched prefix is a property of the event
// sequence alone. Run under -race (AMBERSIM_INTRA_WORKERS matrix) it also
// proves the cut and mount paths add no data races.
func TestPowerLossRecoveryGoldenEquivalence(t *testing.T) {
	serial := powerTrajectory(t, wideSystem(t), 0)
	if len(serial) == 0 {
		t.Fatal("empty trajectory")
	}
	for _, workers := range intraWorkerMatrix(t) {
		got := powerTrajectory(t, wideSystem(t), workers)
		if got != serial {
			t.Fatalf("workers=%d power-loss trajectory diverged from serial:\n--- serial ---\n%s--- workers=%d ---\n%s",
				workers, serial, workers, got)
		}
	}
}

// TestPowerLossFlushedRemountExact is the quiescent-cut durability bar: if
// power is lost while no program is in flight (all writes flushed and
// drained), mount-time recovery must rebuild a mapping that serves every
// byte of the volume exactly as written — nothing torn, nothing stale,
// nothing lost.
func TestPowerLossFlushedRemountExact(t *testing.T) {
	s := wideSystem(t)
	bs, n, seed := seqFillDurable(t, s, 0)

	// Cut power during a pure read run: reads hold no volatile payloads the
	// device promised to keep, so recovery must be lossless.
	rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	cut := s.Now() + 1
	res, err := s.Run(rgen, core.RunConfig{Requests: 500, IODepth: 16, PowerLossAt: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PowerLost {
		t.Fatalf("cut at %v did not fire", cut)
	}
	if fl := res.PowerLoss.Flash; fl.InFlight != 0 || fl.Torn != 0 {
		t.Fatalf("quiescent cut resolved in-flight programs: %+v", fl)
	}
	if res.Mount.TornDiscarded != 0 {
		t.Fatalf("quiescent cut discarded %d pages as torn", res.Mount.TornDiscarded)
	}
	if res.Mount.RecoveredSubs == 0 {
		t.Fatal("mount recovered no mappings")
	}

	// Every line of the sequential fill must read back byte-exact.
	gen, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), uint64(seed))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	for i := 0; i < n; i++ {
		req := gen.Next(i)
		want := runPayload(req, i)
		req.Write = false
		if _, err := s.Submit(s.Now(), req, buf); err != nil {
			t.Fatalf("read %d @%d after remount: %v", i, req.Offset, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("read %d @%d after remount: payload diverged from the acknowledged-durable write", i, req.Offset)
		}
	}
}

// powerCutDigest runs one storm-cut-mount-verify cycle: a fresh system gets
// a durable sequential fill, an overwrite storm cut at the given absolute
// time, and a full-volume read-back where every 4 KiB block must hold either
// its durable baseline payload or the payload of some storm write to that
// offset — a torn or lost acknowledged write would surface as an unmapped
// (zero) or mismatched read. It returns a digest of the recovery for
// cross-worker-count comparison, plus the flash resolution counts.
func powerCutDigest(t *testing.T, cut sim.Time, stormReqs int, workers int) (string, core.PowerLossReport) {
	t.Helper()
	s := wideSystem(t)
	bs, n, seed := seqFillDurable(t, s, workers)

	wgen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 29)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(wgen, core.RunConfig{Requests: stormReqs, IODepth: 16, IntraWorkers: workers, WithData: true, PowerLossAt: cut})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PowerLost {
		t.Fatalf("cut at %v did not fire (storm ended %v)", cut, res.End)
	}

	// Candidate payloads per 4 KiB offset: the baseline fill line slice,
	// plus every storm write to that offset (acknowledged or not — a write
	// in flight at the cut may legitimately have committed).
	baseGen, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), uint64(seed))
	if err != nil {
		t.Fatal(err)
	}
	base := make(map[int64][]byte, n*(bs/4096))
	for i := 0; i < n; i++ {
		req := baseGen.Next(i)
		data := runPayload(req, i)
		for off := 0; off < req.Length; off += 4096 {
			base[req.Offset+int64(off)] = data[off : off+4096]
		}
	}
	stormGen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 29)
	if err != nil {
		t.Fatal(err)
	}
	storm := make(map[int64][][]byte)
	for i := 0; i < stormReqs; i++ {
		req := stormGen.Next(i)
		storm[req.Offset] = append(storm[req.Offset], runPayload(req, i))
	}

	buf := make([]byte, 4096)
	var sum uint64
	for off := int64(0); off+4096 <= s.VolumeBytes(); off += 4096 {
		req := workload.Request{Offset: off, Length: 4096}
		if _, err := s.Submit(s.Now(), req, buf); err != nil {
			t.Fatalf("cut %v: read @%d after remount: %v", cut, off, err)
		}
		ok := bytes.Equal(buf, base[off])
		for _, cand := range storm[off] {
			if ok {
				break
			}
			ok = bytes.Equal(buf, cand)
		}
		if !ok {
			t.Fatalf("cut %v: block @%d holds neither its durable baseline nor any storm payload — an acknowledged-durable write was lost", cut, off)
		}
		for j, b := range buf {
			sum += uint64(b) * uint64(j+1)
		}
	}
	digest := fmt.Sprintf("cut %v loss %+v mount %+v readsum %d", cut, res.PowerLoss, res.Mount, sum)
	return digest, res.PowerLoss
}

// TestPowerLossSweepGoldenEquivalence sweeps cuts across a GC-heavy
// overwrite storm and holds every recovery to two bars at once: durability
// (after mount, every 4 KiB block serves its durable baseline or a storm
// payload — never torn data, never a lost acknowledged write) and
// determinism (the full recovery digest — resolution counts, mount report,
// volume read-back checksum — is byte-identical at every intra-parallel
// worker count versus serial dispatch).
func TestPowerLossSweepGoldenEquivalence(t *testing.T) {
	const stormReqs = 500

	// Probe the storm span serially and uncut to place the sweep.
	probe := wideSystem(t)
	seqFillDurable(t, probe, 0)
	pgen, err := workload.NewFIO(workload.RandWrite, 4096, probe.VolumeBytes(), 29)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := probe.Run(pgen, core.RunConfig{Requests: stormReqs, IODepth: 16, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	if probe.FTL.Stats().GCRuns == 0 {
		t.Fatal("storm did not trigger GC; the sweep must cover cuts mid-GC")
	}
	span := pres.End - pres.Start
	fracs := []float64{0.1, 0.25, 0.45, 0.65, 0.85}
	cuts := make([]sim.Time, len(fracs))
	for i, f := range fracs {
		cuts[i] = pres.Start + sim.Time(float64(span)*f)
	}

	serial := make([]string, len(cuts))
	inFlight, torn, undone := 0, 0, 0
	for i, cut := range cuts {
		var rep core.PowerLossReport
		serial[i], rep = powerCutDigest(t, cut, stormReqs, 0)
		inFlight += rep.Flash.InFlight
		torn += rep.Flash.Torn
		undone += rep.Flash.ErasesUndone
	}
	if inFlight == 0 || torn == 0 {
		t.Fatalf("sweep is vacuous: %d in-flight programs, %d torn across all cuts", inFlight, torn)
	}
	t.Logf("sweep: %d in-flight, %d torn, %d erases undone across %d cuts", inFlight, torn, undone, len(cuts))

	for _, workers := range intraWorkerMatrix(t) {
		for i, cut := range cuts {
			got, _ := powerCutDigest(t, cut, stormReqs, workers)
			if got != serial[i] {
				t.Fatalf("workers=%d cut %v recovery diverged from serial:\nserial: %s\nworkers: %s",
					workers, cut, serial[i], got)
			}
		}
	}
}

// TestReadCertPowerLossMountDisarm pins the read-certificate lifecycle
// across a power cycle at the system level: durable reads fast-path while
// the chain is armed, the cut disarms it (reads walk validation), and
// Mount's recovery re-arms against the rebuilt FTL so the fast path
// resumes — with the pre-cut issuer's certificates rejected by identity.
func TestReadCertPowerLossMountDisarm(t *testing.T) {
	s := wideSystem(t)
	seqFillDurable(t, s, 0)

	readRun := func(seed uint64) {
		t.Helper()
		rgen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), seed)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		for i := 0; i < 50; i++ {
			if _, err := s.Submit(s.Now(), rgen.Next(i), buf); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
	}

	readRun(11)
	armed := s.FIL.Stats()
	if armed.CertifiedReads == 0 {
		t.Fatal("durable reads on an armed chain never took the certified path")
	}

	s.PowerLoss(s.Now() + 1)
	afterCut := s.FIL.Stats()
	if afterCut.CertDisarms <= armed.CertDisarms {
		t.Fatalf("power loss did not disarm the read certificate: %d -> %d",
			armed.CertDisarms, afterCut.CertDisarms)
	}
	if _, err := s.Mount(); err != nil {
		t.Fatal(err)
	}

	readRun(13)
	remounted := s.FIL.Stats()
	if remounted.CertifiedReads <= afterCut.CertifiedReads {
		t.Fatalf("mount recovery did not re-arm the certified read path: %d -> %d",
			afterCut.CertifiedReads, remounted.CertifiedReads)
	}
}
