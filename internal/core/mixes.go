package core

import (
	"amber/internal/cpu"
	"amber/internal/icl"
)

// pblkFactor amplifies firmware instruction budgets when the FTL/ICL run
// as pblk on the host (§V-E): the kernel-space implementation pays for
// generic bio plumbing, per-page memcpy through the buffer, locking and
// lightNVM translation — the reason the passive architecture burns ~50%%
// of four host cores where the in-SSD firmware barely registers.
const pblkFactor = 120

// Firmware instruction budgets, delegating to the calibrated mixes in
// package cpu. Kept as methods so configurations can be specialized later
// without touching call sites.

func (s *System) iclLookupMix() cpu.InstrMix { return s.scaleIfPassive(cpu.MixICLLookup) }

func (s *System) iclInsertMix() cpu.InstrMix { return s.scaleIfPassive(cpu.MixICLInsert) }

func (s *System) ftlTranslateMix() cpu.InstrMix { return s.scaleIfPassive(cpu.MixFTLTranslate) }

func (s *System) scaleIfPassive(m cpu.InstrMix) cpu.InstrMix {
	if s.passive {
		return m.Scale(pblkFactor)
	}
	return m
}

// filScheduleMix scales the FIL transaction-composition cost by the number
// of flash operations dispatched.
func (s *System) filScheduleMix(ops int) cpu.InstrMix {
	if ops < 1 {
		ops = 1
	}
	return s.scaleIfPassive(cpu.MixFILSchedule.Scale(uint64(ops)))
}

// gcMix scales GC bookkeeping by the number of migrated sub-pages.
func (s *System) gcMix(migrated int) cpu.InstrMix {
	if migrated < 1 {
		migrated = 1
	}
	return s.scaleIfPassive(cpu.MixFTLGCPerPage.Scale(uint64(migrated)))
}

// iclEviction aliases the ICL's eviction record for the submit path.
type iclEviction = icl.Eviction
