package core_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"amber/internal/core"
	"amber/internal/snap"
	"amber/internal/workload"
)

// snapshotImage drives a TrackData system through a durable fill and a
// GC-provoking overwrite storm, then snapshots it. Returns the system
// (still live, positioned exactly at the snapshot point) and the image.
func snapshotImage(t *testing.T, s *core.System) []byte {
	t.Helper()
	seqFillDurable(t, s, 0)
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(gen, core.RunConfig{Requests: 200, IODepth: 16, WithData: true}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Fatal("empty snapshot image")
	}
	return img
}

// snapshotTail continues a system past the snapshot point — an overwrite
// storm, then a full payload read-back — and renders every observable into
// a golden string.
func snapshotTail(t *testing.T, s *core.System, workers int) string {
	t.Helper()
	var out bytes.Buffer
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 23)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(gen, core.RunConfig{Requests: 200, IODepth: 16, IntraWorkers: workers, WithData: true})
	if err != nil {
		t.Fatal(err)
	}
	renderRun(&out, "tail", res)
	renderState(&out, s)
	renderData(t, &out, s)
	return out.String()
}

// TestSnapshotRestoreGoldenEquivalence is the snapshot acceptance bar:
// restore(snapshot(S)) must continue byte-identical to S itself — same run
// timings, same component stats and energy, same payload fingerprints — at
// every intra-parallel worker count. A snapshot taken from the restored
// system must also reproduce the image byte for byte (the state round-trips
// with no drift).
func TestSnapshotRestoreGoldenEquivalence(t *testing.T) {
	s := wideSystem(t)
	img := snapshotImage(t, s)
	want := snapshotTail(t, s, 0) // the original continues

	for _, workers := range intraWorkerMatrix(t) {
		r := wideSystem(t)
		if err := r.Restore(img); err != nil {
			t.Fatalf("restore: %v", err)
		}
		img2, err := r.Snapshot()
		if err != nil {
			t.Fatalf("re-snapshot: %v", err)
		}
		if !bytes.Equal(img, img2) {
			t.Fatalf("snapshot(restore(img)) differs from img: %d vs %d bytes", len(img2), len(img))
		}
		got := snapshotTail(t, r, workers)
		if got != want {
			t.Fatalf("workers=%d restored trajectory diverged from original:\n--- original ---\n%s--- restored ---\n%s",
				workers, want, got)
		}
	}
}

// TestSnapshotLoaderFaults is the loader-robustness table: truncated
// images, flipped bytes in every framing region, version-skewed and
// fingerprint-mismatched images must all fail Restore with the right typed
// error — and leave the target system bit-for-bit untouched (proven by
// comparing its own snapshot before and after every failed load).
func TestSnapshotLoaderFaults(t *testing.T) {
	s := wideSystem(t)
	img := snapshotImage(t, s)

	const headerLen = 8 + 4 + 8 + 8
	fp := binary.LittleEndian.Uint64(img[12:20])
	body := img[headerLen : len(img)-8]

	clone := func() []byte { return append([]byte(nil), img...) }
	flip := func(at int) []byte {
		c := clone()
		c[at] ^= 0x40
		return c
	}

	cases := []struct {
		name    string
		img     []byte
		wantErr error // nil: any error accepted
	}{
		{"empty", nil, snap.ErrTruncated},
		{"below-min-frame", img[:headerLen+7], snap.ErrTruncated},
		{"half-image", clone()[:len(img)/2], nil},
		{"missing-trailer", clone()[:len(img)-8], nil},
		{"bad-magic", flip(0), snap.ErrCorrupt},
		{"flipped-version-byte", flip(8), snap.ErrCorrupt},
		{"flipped-fingerprint-byte", flip(12), snap.ErrCorrupt},
		{"flipped-bodylen-byte", flip(20), snap.ErrCorrupt},
		{"flipped-body-byte", flip(headerLen + len(body)/2), snap.ErrCorrupt},
		{"flipped-checksum-byte", flip(len(img) - 1), snap.ErrCorrupt},
		{"future-version", snap.Seal(core.SnapshotVersion+1, fp, body), snap.ErrVersion},
		{"wrong-fingerprint", snap.Seal(core.SnapshotVersion, fp^0xdeadbeef, body), snap.ErrMismatch},
		{"valid-frame-truncated-body", snap.Seal(core.SnapshotVersion, fp, body[:len(body)-16]), nil},
		{"valid-frame-garbage-body", snap.Seal(core.SnapshotVersion, fp, bytes.Repeat([]byte{0xa5}, 64)), nil},
	}

	target := wideSystem(t)
	seqFillDurable(t, target, 0)
	before, err := target.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := target.Restore(tc.img)
			if err == nil {
				t.Fatalf("restore of %s image succeeded", tc.name)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("restore of %s image: got %v, want %v", tc.name, err, tc.wantErr)
			}
			after, serr := target.Snapshot()
			if serr != nil {
				t.Fatalf("snapshot after failed restore: %v", serr)
			}
			if !bytes.Equal(before, after) {
				t.Fatalf("failed restore of %s image mutated the target system", tc.name)
			}
		})
	}

	// The intact image still loads after the gauntlet.
	if err := target.Restore(img); err != nil {
		t.Fatalf("restore of intact image: %v", err)
	}
}

// FuzzSnapshotOpen fuzzes the image loader's framing validation: arbitrary
// byte soup must produce a typed error or a clean open — never a panic or
// an out-of-bounds slice.
func FuzzSnapshotOpen(f *testing.F) {
	var e snap.Enc
	e.U64(7)
	e.I64(-3)
	e.Blob([]byte("payload"))
	valid := snap.Seal(1, snap.Fingerprint([]byte("cfg")), e.Bytes())
	f.Add(valid)
	f.Add(valid[:len(valid)-9])
	f.Add([]byte("AMBRSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, img []byte) {
		body, err := snap.Open(img, 1, snap.Fingerprint([]byte("cfg")))
		if err == nil {
			// A clean open hands the body to the decoder, which must fail
			// softly (sticky typed error) on any content.
			d := snap.NewDec(body)
			_ = d.U64()
			_ = d.I64()
			_ = d.Blob()
			_ = d.Done()
			return
		}
		if !errors.Is(err, snap.ErrTruncated) && !errors.Is(err, snap.ErrCorrupt) &&
			!errors.Is(err, snap.ErrVersion) && !errors.Is(err, snap.ErrMismatch) {
			t.Fatalf("untyped open error: %v", err)
		}
	})
}
