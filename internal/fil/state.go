package fil

import (
	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/snap"
)

// planTag computes the OOB logical tag stamped on a plan write: the FTL's
// forward-map index of the logical sub-page (LSPN × planes + sub, matching
// ftl's fwdIndex), or the reserved parity tag for RAIN parity programs.
// Mount-time recovery rebuilds the forward map from these stamps alone.
func planTag(op ftl.Op, g nand.Geometry) int64 {
	if op.Parity {
		return ftl.ParityTag
	}
	return op.LSPN*int64(g.TotalPlanes()) + int64(op.Loc.Sub)
}

// PowerLoss models the cut hitting the FIL: all per-plan scratch state is
// firmware RAM and is dropped, and the certified-plan binding disarms —
// the issuing FTL is gone with the RAM, so no outstanding certificate can
// be honored. The caller re-arms with AcceptCertified after mount-time
// recovery hands it a fresh FTL.
func (f *FIL) PowerLoss() {
	f.disarm()
	if f.reads != nil {
		clear(f.reads)
	}
	f.sbTimes = f.sbTimes[:0]
	f.readBufN = 0
}

// EncodeState serializes the FIL's functional state: the counters and the
// certified-chain position. The issuer pointer itself is identity, not
// state — DecodeState rebinds it.
func (f *FIL) EncodeState(e *snap.Enc) {
	e.U64(f.stats.Reads)
	e.U64(f.stats.Programs)
	e.U64(f.stats.Erases)
	e.U64(f.stats.PlanCount)
	e.U64(f.stats.DepStalls)
	e.U64(f.stats.CertifiedPlans)
	e.U64(f.stats.PlanFaults)
	e.U64(f.stats.CertifiedReads)
	e.U64(f.stats.CertDisarms)
	e.Bool(f.certIssuer != nil)
	e.U64(f.certNext)
	e.U64(f.certEpoch)
	e.Bool(f.forceWalk)
}

// DecodeState reinstalls a state captured by EncodeState. issuer is the
// (restored) FTL whose certificates this FIL honored at snapshot time; it
// is bound only if the binding was armed then, at the exact chain position
// the snapshot recorded — so a restored device honors or walks precisely
// the plans the original would have.
func (f *FIL) DecodeState(d *snap.Dec, issuer *ftl.FTL) error {
	f.stats.Reads = d.U64()
	f.stats.Programs = d.U64()
	f.stats.Erases = d.U64()
	f.stats.PlanCount = d.U64()
	f.stats.DepStalls = d.U64()
	f.stats.CertifiedPlans = d.U64()
	f.stats.PlanFaults = d.U64()
	f.stats.CertifiedReads = d.U64()
	f.stats.CertDisarms = d.U64()
	armed := d.Bool()
	f.certNext = d.U64()
	f.certEpoch = d.U64()
	f.forceWalk = d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if armed {
		f.certIssuer = issuer
	} else {
		f.certIssuer = nil
	}
	return nil
}
