// Package fil implements the flash interface layer: the bottom firmware
// module that schedules flash transactions produced by the FTL onto the
// storage complex, exploiting channel/way/die/plane parallelism (§III-B).
// Dependency order within a plan is preserved — a GC or read-modify-write
// rewrite cannot program before its source page has been read, and an
// erase cannot start before the victim's migrations complete — while
// independent transactions overlap freely, bounded only by the per-channel
// and per-die resource contention modeled inside package nand.
//
// The FIL also exposes raw per-page access used by the OCSSD path, where
// the host-side FTL (pblk) addresses physical pages directly.
package fil

import (
	"fmt"

	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
)

// AddrFunc converts an FTL page location to a NAND physical address.
type AddrFunc func(ftl.PageLoc) nand.Address

// Domain names the cross-domain scheduling shard (sim.Engine) where the
// core places flash-completion continuations: the cache installs, waiter
// wakeups and pipeline advances that follow a flash fetch. Those read and
// write state spanning channels (ICL lines, MSHR maps, DRAM timing), so —
// unlike the per-channel bookkeeping events in nand.ChannelDomain shards —
// they must never ride in a domain-local shard: the engine's horizon
// computation assumes every cross-channel effect lives in a cross-domain
// shard. This shard stays barrier-forcing: its continuations consume line
// buffers that pending channel events write (the legacy one-stage fill
// path, ReadSubsOn).
const Domain = "fil"

// PublishDomain names the cross-domain shard for the publish stage of
// two-stage fill installs: the cache install, memory charge and waiter
// wakeups of a fill whose page bytes were staged at issue (ReadSubsStaged).
// Unlike Domain, a publish event reads no state that pending domain-local
// events write — its line buffer was complete before the fill's channel
// bookkeeping was even scheduled — so the core marks this shard
// channel-neutral in the active architecture and the engine batches
// consecutive publishes past pending channel work instead of paying a
// barrier per fill (sim.Engine.MarkChannelNeutral, sim/doc.go).
const PublishDomain = "fil.publish"

// Stats aggregates FIL activity.
type Stats struct {
	Reads     uint64
	Programs  uint64
	Erases    uint64
	PlanCount uint64
	DepStalls uint64 // programs that had to wait for a source read
	// CertifiedPlans counts plans executed through the certified fast path:
	// construction-time certification honored, prevalidation walk skipped.
	CertifiedPlans uint64
	// PlanFaults counts plans stopped mid-execution by an injected flash
	// fault (reported as *PlanFault, recovered by ftl.RecoverPlanFault).
	PlanFaults uint64
	// CertifiedReads counts reads executed through the certified read fast
	// path: a ReadCert honored, the per-address CheckRead walk skipped.
	CertifiedReads uint64
	// CertDisarms counts armed→disarmed transitions of the certified-chain
	// binding, whatever broke it (sequence gap, foreign epoch bump, plan
	// fault, power loss, explicit AcceptCertified(nil)).
	CertDisarms uint64
}

// PlanFault reports a plan stopped mid-execution by an injected flash
// fault. Unlike a structural error (which prevalidation guarantees arrives
// with nothing issued), a fault interrupts real work: the plan's first
// Executed ops claimed resources, transitioned block state and scheduled
// their bookkeeping — only the op at index Executed (and everything after
// it) did not happen. The executor disarms its certified chain before
// returning one: the issuing FTL's model and the flash have diverged, and
// no later certificate can be trusted until recovery completes and
// AcceptCertified re-arms the binding. Err wraps the nand sentinel
// (ErrProgramFail, ErrEraseFail, ErrUncorrectable) with address context.
type PlanFault struct {
	Executed int    // plan ops fully executed before the fault
	Op       ftl.Op // the faulting op
	Plane    int    // faulting plane for erases, -1 otherwise
	Err      error  // wrapped nand fault sentinel
}

func (p *PlanFault) Error() string {
	return fmt.Sprintf("fil: plan fault after %d ops: %v", p.Executed, p.Err)
}

// Unwrap exposes the underlying fault for errors.Is.
func (p *PlanFault) Unwrap() error { return p.Err }

// Result reports the timing of one executed plan.
type Result struct {
	// ReadsDone is when the last pre-read finished (zero if none).
	ReadsDone sim.Time
	// HostWritesDone is when the last host-data program finished.
	HostWritesDone sim.Time
	// Done is when everything, including GC migrations and erases,
	// finished.
	Done sim.Time
}

// FIL schedules flash transactions. Not safe for concurrent use.
type FIL struct {
	flash  *nand.Flash
	addrOf AddrFunc
	stats  Stats

	// Per-Execute scratch state, reused across calls so plan execution is
	// allocation-free in steady state. The pre-read index is a persistent
	// map (GC plans can carry thousands of migration reads, so lookups
	// must stay O(1)); the super-block ordering slots are a small linear
	// list (a plan touches few distinct super-blocks), scanned directly —
	// a map index would pay a hash per op for a handful of entries.
	reads    map[SubKey]planRead // completed pre-reads of this plan
	sbTimes  []sbTime            // per-super-block erase completion / latest touch
	readBufs [][]byte            // pooled page buffers backing planRead.data
	readBufN int                 // buffers handed out for the current plan

	// addrScratch carries the translated addresses of one ReadSubsOn call
	// from its validation pass to its issue pass, reused across calls.
	// extraScratch carries each read's probe-time fault-retry latency beside
	// it: with read-disturb accumulation armed, every issued read bumps its
	// block's disturb counter, so a batch that re-drew at issue could
	// disagree with its own probe — the probe IS the draw, and the issue
	// pass replays it (nand.Flash.ReadDeferredPredrawn).
	addrScratch  []nand.Address
	extraScratch []sim.Duration

	// parityBuf/parityTmp back RAIN parity payload assembly (the stripe
	// XOR), reused across plans.
	parityBuf []byte
	parityTmp []byte

	// Plan prevalidation scratch (ExecuteOn): the translated address of
	// every op in plan order (erases contribute one address per plane) and
	// a per-block overlay of in-plan state transitions — pvNext[block] is
	// the simulated in-order program pointer plus one (zero = untouched),
	// a lazily sized direct-indexed array (GC plans run thousands of ops,
	// so the overlay lookup must cost an array load, not a map probe),
	// with pvTouched resetting only the dirtied slots after the pass. The
	// flash invariant "written pages are exactly [0, next)" (in-order
	// programs, whole-block erases) makes the pointer sufficient to answer
	// both the written-page and the next-program checks against in-plan
	// mutations. Reused across calls.
	planAddrs []nand.Address
	pvNext    []int32
	pvTouched []int32

	// Certified-plan state (AcceptCertified): the one FTL whose
	// certificates this FIL honors, the sequence number of the next plan it
	// expects from it, and the flash state epoch recorded after the last
	// plan executed here. A certificate is honored only while all three
	// line up — issuer identity, exact sequence continuity, untouched epoch
	// — which together prove the flash is byte-for-byte in the state the
	// FTL's model assumed when it built the plan. Any break permanently
	// disarms the binding (until AcceptCertified is called again): a
	// diverged model cannot be re-trusted just because one later plan
	// happens to pass the walk.
	certIssuer *ftl.FTL
	certNext   uint64
	certEpoch  uint64
	// forceWalk routes certified plans through prevalidatePlan anyway while
	// keeping the certificate chain advancing — the benchmark and test hook
	// for measuring the walk's cost on identical executions.
	forceWalk bool
}

// planRead records one completed pre-read: its completion time, (when
// data is tracked) the page contents, and the super-block it read from —
// a rewrite consuming it touches that source block with the program's
// completion, so the victim's erase waits for the migration to land.
type planRead struct {
	done  sim.Time
	data  []byte
	srcSB int
}

// sbTime tracks in-plan per-super-block ordering state.
type sbTime struct {
	sb      int
	erased  sim.Time // completion of an in-plan erase, zero if none
	touched sim.Time // latest op completion touching the super-block
}

// New constructs a FIL over the storage complex.
func New(flash *nand.Flash, addrOf AddrFunc) (*FIL, error) {
	if flash == nil || addrOf == nil {
		return nil, fmt.Errorf("fil: flash and address function are required")
	}
	return &FIL{flash: flash, addrOf: addrOf}, nil
}

// Stats returns a copy of the counters.
func (f *FIL) Stats() Stats { return f.stats }

// AcceptCertified binds the FIL to issuer's plan certificates: the caller
// asserts that the flash and the issuer's mapping model are in lockstep
// right now (typically both freshly constructed, as core.NewSystem wires
// them). From then on, a plan stamped by issuer with the exact next
// sequence number executes without the prevalidation walk, as long as
// nothing but this FIL's plan chain has mutated the flash (checked against
// nand.Flash.StateEpoch). Raw OCSSD traffic, a skipped or replayed plan, or
// a plan from another FTL breaks the lockstep and disarms the binding;
// every plan then takes the slow path until AcceptCertified re-asserts it.
// A nil issuer disarms explicitly.
func (f *FIL) AcceptCertified(issuer *ftl.FTL) error {
	if issuer == nil {
		f.disarm()
		return nil
	}
	if issuer.Config().Geometry != f.flash.Geometry() {
		return fmt.Errorf("fil: certifying FTL geometry %+v does not match flash geometry %+v",
			issuer.Config().Geometry, f.flash.Geometry())
	}
	f.certIssuer = issuer
	f.certNext = issuer.PlanSeq()
	f.certEpoch = f.flash.StateEpoch()
	return nil
}

// ForcePrevalidate routes every plan — certified or not — through the
// prevalidation walk while still advancing the certificate chain, so a
// later ForcePrevalidate(false) resumes the fast path seamlessly. It exists
// for benchmarks (measuring the walk's cost against identical executions)
// and for equivalence tests; production callers never need it.
func (f *FIL) ForcePrevalidate(v bool) { f.forceWalk = v }

// certCheck reports whether the plan's certificate is honored right now:
// bound issuer, exact sequence continuity, untouched flash epoch. A
// sequence or epoch break disarms the binding — the FTL model and the
// flash have diverged, so no later certificate can be trusted. An
// uncertified or foreign plan returns false without disarming (executing
// it will advance the epoch past certEpoch, so the next certified plan
// disarms then).
func (f *FIL) certCheck(plan ftl.Plan) bool {
	if f.certIssuer == nil || !plan.Cert.By(f.certIssuer) {
		return false
	}
	if plan.Cert.Seq() != f.certNext || f.flash.StateEpoch() != f.certEpoch {
		f.disarm()
		return false
	}
	return true
}

// disarm breaks the certified-chain binding, counting only real
// armed→disarmed transitions (repeat disarms are free and common: every
// uncertified plan after a break re-confirms the chain is down).
func (f *FIL) disarm() {
	if f.certIssuer != nil {
		f.certIssuer = nil
		f.stats.CertDisarms++
	}
}

// readCertOK reports whether a lookup's read certificate is honored right
// now: the chain with the minting FTL is armed, the flash epoch still
// matches both the chain's recorded epoch (nothing but certified plans has
// mutated the flash — a foreign bump is the same lockstep break certCheck
// disarms on, so it disarms here too) and the certificate's own epoch (the
// lookup is not stale relative to the chain position), and read-fault
// draws are disabled (the injected retry ladder runs per read and affects
// timing, so it must not be skipped). A certificate failing only the
// staleness check leaves the chain armed: the model is still trusted, that
// one lookup just predates its current state, so the read walks.
func (f *FIL) readCertOK(cert ftl.ReadCert) bool {
	if f.certIssuer == nil || !cert.By(f.certIssuer) || f.forceWalk {
		return false
	}
	if f.flash.StateEpoch() != f.certEpoch {
		f.disarm()
		return false
	}
	if cert.Epoch() != f.certEpoch || f.flash.ReadFaultsArmed() {
		return false
	}
	return true
}

// certAdvance moves the certificate chain past a successfully executed
// in-sequence plan: the next certificate expected and the flash epoch that
// execution left behind.
func (f *FIL) certAdvance() {
	f.certNext++
	f.certEpoch = f.flash.StateEpoch()
}

// SubKey identifies one logical sub-page for data pairing inside a plan.
type SubKey struct {
	LSPN int64
	Sub  int
}

// PlanData supplies host payload bytes for a plan's writes: the dirty subs
// of one logical super-page backed by a line-layout buffer. The zero value
// means "no payload" (timing-only execution). It replaces a per-call
// map[SubKey][]byte so assembling it is allocation-free.
type PlanData struct {
	LSPN    int64
	Dirty   []bool
	Data    []byte // line buffer sliced per sub; may be nil with Dirty set
	SubSize int
}

// Bytes returns the payload for key k and whether the plan data covers it.
// A covered key may still carry nil bytes (data tracking off).
func (d PlanData) Bytes(k SubKey) ([]byte, bool) {
	if k.LSPN != d.LSPN || d.Dirty == nil || k.Sub < 0 || k.Sub >= len(d.Dirty) || !d.Dirty[k.Sub] {
		return nil, false
	}
	if d.Data == nil {
		return nil, true
	}
	return d.Data[k.Sub*d.SubSize : (k.Sub+1)*d.SubSize], true
}

// HostData builds the PlanData for Execute from a full line buffer: each
// dirty sub of lspn maps to its slice of data (which may be nil).
func HostData(lspn int64, dirty []bool, data []byte, subSize int) PlanData {
	return PlanData{LSPN: lspn, Dirty: dirty, Data: data, SubSize: subSize}
}

// sbSlot returns (allocating if needed) the ordering slot for sb. The
// returned pointer is valid until the next sbSlot call (the slice may
// grow); callers must not hold it across calls.
func (f *FIL) sbSlot(sb int) *sbTime {
	for i := range f.sbTimes {
		if f.sbTimes[i].sb == sb {
			return &f.sbTimes[i]
		}
	}
	f.sbTimes = append(f.sbTimes, sbTime{sb: sb})
	return &f.sbTimes[len(f.sbTimes)-1]
}

// planFault finalizes a mid-plan injected fault: the executed prefix's
// batched bookkeeping is committed (those transactions really happened —
// aborting would discard real claims and installs), the certified chain is
// disarmed, and the typed report is built for the recovery orchestration.
// batch is nil on the synchronous path, whose bookkeeping already applied.
func (f *FIL) planFault(batch *nand.PlanBatch, executed int, op ftl.Op, plane int, err error) *PlanFault {
	if batch != nil {
		batch.Commit()
	}
	f.disarm()
	f.stats.PlanFaults++
	return &PlanFault{Executed: executed, Op: op, Plane: plane, Err: err}
}

// parityPayload assembles the RAIN parity payload of op — the XOR of the
// stripe row's covered data pages — into a pooled page buffer. Member
// bytes come through nand.Flash.PagePayload (pending-aware, no timing or
// accounting): the controller accumulates parity in RAM as the row's data
// programs issue, so the parity program carries the stripe's only flash
// cost. Returns nil when data tracking is off (timing-only execution).
// The op names its own stripe: data planes [Loc.Sub, Loc.Plane), mask bit
// i covering plane Loc.Sub+i.
func (f *FIL) parityPayload(op ftl.Op) []byte {
	if !f.flash.TrackData() {
		return nil
	}
	if f.parityBuf == nil {
		ps := f.flash.Geometry().PageSize
		f.parityBuf = make([]byte, ps)
		f.parityTmp = make([]byte, ps)
	}
	buf := f.parityBuf
	for i := range buf {
		buf[i] = 0
	}
	for i := 0; op.Loc.Sub+i < op.Loc.Plane; i++ {
		if op.Mask&(uint32(1)<<uint(i)) == 0 {
			continue
		}
		p := op.Loc.Sub + i
		peer := ftl.PageLoc{SB: op.Loc.SB, Page: op.Loc.Page, Plane: p, Sub: p}
		f.flash.PagePayload(f.addrOf(peer), f.parityTmp)
		for j := range buf {
			buf[j] ^= f.parityTmp[j]
		}
	}
	return buf
}

// readBuf hands out a pooled page buffer for a plan pre-read.
func (f *FIL) readBuf() []byte {
	if f.readBufN == len(f.readBufs) {
		f.readBufs = append(f.readBufs, make([]byte, f.flash.Geometry().PageSize))
	}
	buf := f.readBufs[f.readBufN]
	f.readBufN++
	return buf
}

// Execute runs an FTL plan against the flash, walking the plan's causal
// op order. hostData supplies payload bytes for host writes (the zero
// PlanData when data tracking is off or the plan has no host writes).
//
// Dependency timing: every op starts no earlier than `now`; a GC/RMW
// rewrite additionally waits for the completion of the pre-read of the
// same (LSPN, Sub); a write into a super-block erased earlier in the plan
// waits for that erase; an erase waits for every earlier op touching the
// same super-block (its migration reads). Everything else overlaps, bounded
// only by the channel/die contention modeled inside package nand.
func (f *FIL) Execute(now sim.Time, plan ftl.Plan, hostData PlanData) (Result, error) {
	var res Result
	res.Done = now
	// The synchronous path validates per op inside the flash calls, so the
	// certificate buys no skipped work here; the chain still advances so a
	// mixed Execute/ExecuteOn caller (core's Flush) keeps the fast path
	// armed for the deferred executions around it.
	inSeq := f.certCheck(plan)
	g := f.flash.Geometry()

	if f.reads == nil {
		f.reads = make(map[SubKey]planRead)
	} else {
		clear(f.reads)
	}
	f.sbTimes = f.sbTimes[:0]
	f.readBufN = 0
	trackData := f.flash.TrackData()

	touch := func(sb int, t sim.Time) {
		slot := f.sbSlot(sb)
		if t > slot.touched {
			slot.touched = t
		}
		if t > res.Done {
			res.Done = t
		}
	}

	for i, op := range plan.Ops {
		switch op.Kind {
		case ftl.OpRead:
			start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
			var buf []byte
			if trackData {
				buf = f.readBuf()
			}
			r, err := f.flash.Read(start, f.addrOf(op.Loc), buf)
			if err != nil {
				if nand.IsInjectedFault(err) {
					return res, f.planFault(nil, i, op, -1, err)
				}
				return res, fmt.Errorf("fil: plan read %v: %w", op.Loc, err)
			}
			f.stats.Reads++
			f.reads[SubKey{op.LSPN, op.Loc.Sub}] = planRead{done: r.Done, data: buf, srcSB: op.Loc.SB}
			if r.Done > res.ReadsDone {
				res.ReadsDone = r.Done
			}
			touch(op.Loc.SB, r.Done)

		case ftl.OpWrite:
			if op.Parity {
				// RAIN parity: payload is the XOR of the stripe row's data
				// pages, accumulated in controller RAM as the row programmed
				// — the parity program itself is the only flash cost. The
				// membership mask stamps the page's OOB in the same serial
				// section as the program (a torn cut clears both).
				start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
				addr := f.addrOf(op.Loc)
				r, err := f.flash.ProgramTagged(start, addr, f.parityPayload(op), planTag(op, g))
				if err != nil {
					if nand.IsInjectedFault(err) {
						return res, f.planFault(nil, i, op, -1, err)
					}
					return res, fmt.Errorf("fil: plan parity program %v: %w", op.Loc, err)
				}
				f.flash.SetPageStripe(addr, op.Mask)
				f.stats.Programs++
				touch(op.Loc.SB, r.Done)
				continue
			}
			k := SubKey{op.LSPN, op.Loc.Sub}
			start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
			data, _ := hostData.Bytes(k)
			srcSB := -1
			if pr, ok := f.reads[k]; ok {
				// Rewrite of data sourced from flash: wait for the read.
				if pr.done > start {
					start = pr.done
					f.stats.DepStalls++
				}
				if data == nil {
					data = pr.data
				}
				srcSB = pr.srcSB
			}
			r, err := f.flash.ProgramTagged(start, f.addrOf(op.Loc), data, planTag(op, g))
			if err != nil {
				if nand.IsInjectedFault(err) {
					return res, f.planFault(nil, i, op, -1, err)
				}
				return res, fmt.Errorf("fil: plan program %v: %w", op.Loc, err)
			}
			f.stats.Programs++
			if !op.GC && r.Done > res.HostWritesDone {
				res.HostWritesDone = r.Done
			}
			touch(op.Loc.SB, r.Done)
			if srcSB >= 0 && srcSB != op.Loc.SB {
				// Crash consistency: the source block must not erase until
				// the data moved off it has physically landed — otherwise a
				// power cut between the erase and the migration program
				// destroys the only durable copy.
				touch(srcSB, r.Done)
			}

		case ftl.OpErase:
			// The erase wipes the same block index on every plane, after
			// all earlier plan ops touching this super-block (the
			// migration reads) completed.
			start := sim.MaxOf(now, f.sbSlot(op.SB).touched)
			// Probe the fault draw for every plane before wiping any: the
			// op must fail atomically or the planes issued ahead of a
			// faulting one would already be erased when the FTL recovers
			// under the assumption the whole erase never happened.
			for plane := 0; plane < g.TotalPlanes(); plane++ {
				addr := f.addrOf(ftl.PageLoc{SB: op.SB, Page: 0, Plane: plane, Sub: plane})
				if err := f.flash.ProbeErase(addr); err != nil {
					if nand.IsInjectedFault(err) {
						return res, f.planFault(nil, i, op, plane, err)
					}
					return res, fmt.Errorf("fil: plan erase SB %d plane %d: %w", op.SB, plane, err)
				}
			}
			var done sim.Time
			for plane := 0; plane < g.TotalPlanes(); plane++ {
				addr := f.addrOf(ftl.PageLoc{SB: op.SB, Page: 0, Plane: plane, Sub: plane})
				r, err := f.flash.Erase(start, addr)
				if err != nil {
					return res, fmt.Errorf("fil: plan erase SB %d plane %d: %w", op.SB, plane, err)
				}
				f.stats.Erases++
				if r.Done > done {
					done = r.Done
				}
			}
			f.sbSlot(op.SB).erased = done
			touch(op.SB, done)

		default:
			return res, fmt.Errorf("fil: unknown plan op kind %d", op.Kind)
		}
	}
	f.stats.PlanCount++
	if inSeq {
		f.certAdvance()
	}
	return res, nil
}

// pvReset clears the overlay slots the last prevalidation dirtied.
func (f *FIL) pvReset() {
	for _, b := range f.pvTouched {
		f.pvNext[b] = 0
	}
	f.pvTouched = f.pvTouched[:0]
}

// pvNextOf returns the overlay's in-order program pointer for the block
// containing addr, seeding it from the flash on first touch. The stored
// value is pointer+1 so zero means untouched.
func (f *FIL) pvNextOf(block int32, addr nand.Address) int32 {
	v := f.pvNext[block]
	if v == 0 {
		v = int32(f.flash.NextProgramPage(addr)) + 1
		f.pvNext[block] = v
		f.pvTouched = append(f.pvTouched, block)
	}
	return v - 1
}

// prevalidatePlan walks the whole plan before anything claims or schedules:
// it translates every op's address (erases contribute one per plane, all
// cached in f.planAddrs for the issue pass), checks geometry bounds, and
// simulates the in-order program pointer of every touched block so
// overwrites, out-of-order programs and reads of unwritten pages are caught
// up front. A mid-plan error therefore leaves no completion events queued
// and no flash state mutated — the batching contract ExecuteOn promises.
func (f *FIL) prevalidatePlan(plan ftl.Plan) error {
	g := f.flash.Geometry()
	if f.pvNext == nil {
		f.pvNext = make([]int32, g.TotalBlocks())
	}
	defer f.pvReset()
	addrs := f.planAddrs[:0]
	defer func() { f.planAddrs = addrs }()
	for _, op := range plan.Ops {
		switch op.Kind {
		case ftl.OpRead:
			addr := f.addrOf(op.Loc)
			if err := g.CheckAddress(addr); err != nil {
				return fmt.Errorf("fil: plan read %v: %w", op.Loc, err)
			}
			block := int32(g.BlockIndex(addr))
			if int32(addr.Page) >= f.pvNextOf(block, addr) {
				return fmt.Errorf("fil: plan read %v: page %v unwritten", op.Loc, addr)
			}
			addrs = append(addrs, addr)

		case ftl.OpWrite:
			addr := f.addrOf(op.Loc)
			if err := g.CheckAddress(addr); err != nil {
				return fmt.Errorf("fil: plan program %v: %w", op.Loc, err)
			}
			block := int32(g.BlockIndex(addr))
			next := f.pvNextOf(block, addr)
			if int32(addr.Page) != next {
				return fmt.Errorf("fil: plan program %v: page %d out of order (next is %d)", op.Loc, addr.Page, next)
			}
			f.pvNext[block] = next + 2 // stored as pointer+1
			addrs = append(addrs, addr)

		case ftl.OpErase:
			for plane := 0; plane < g.TotalPlanes(); plane++ {
				addr := f.addrOf(ftl.PageLoc{SB: op.SB, Page: 0, Plane: plane, Sub: plane})
				addr.Page = 0
				if err := g.CheckAddress(addr); err != nil {
					return fmt.Errorf("fil: plan erase SB %d plane %d: %w", op.SB, plane, err)
				}
				block := int32(g.BlockIndex(addr))
				if f.pvNext[block] == 0 {
					f.pvTouched = append(f.pvTouched, block)
				}
				f.pvNext[block] = 1 // erased: pointer 0, stored as 1
				addrs = append(addrs, addr)
			}

		default:
			return fmt.Errorf("fil: unknown plan op kind %d", op.Kind)
		}
	}
	return nil
}

// ExecuteOn is Execute with every flash transaction's per-channel
// bookkeeping — counters, energy, tracked-data installs and presence
// clears — deferred into the owning channel's scheduling domain through a
// nand.PlanBatch: chDoms[channel] is the channel's domain-local shard, and
// the whole plan schedules one batched completion event per touched die
// (not per op), keeping the deferred path's engine traffic negligible even
// for thousand-op GC plans. Plan pre-reads deliver their bytes at issue (a
// dependent rewrite consumes them within this same call). Timing,
// dependency ordering, data and every integer counter are identical to
// Execute — per-channel float energy is the one exception: the same
// values accumulate in per-die-batch grouped order rather than Execute's
// op-issue order, so the sums may differ in the last ulp between the two
// paths (each path is individually deterministic and byte-identical at
// any worker count). The deferred events let an intra-parallel engine run the
// channels' completion work concurrently between horizons, extending PR 3's
// read-only windows to writes and GC.
//
// An uncertified plan is prevalidated whole before any transaction claims
// resources or schedules, so an error returns with no events queued and no
// state mutated. A plan whose construction-time certificate is honored
// (AcceptCertified: bound issuer, in-sequence, flash epoch untouched) skips
// the walk and the overlay reset entirely — the FTL already proved every
// address in bounds and every program in order when it built the plan, so
// revalidating would re-derive the same answer from the same state. The
// error-⇒-no-mutation contract holds on that path by construction: a
// certified plan cannot fail, and a per-op check tripping anyway means the
// certification invariant itself was broken, which panics rather than
// returning with state the contract forbids.
func (f *FIL) ExecuteOn(e *sim.Engine, chDoms []sim.DomainID, now sim.Time, plan ftl.Plan, hostData PlanData) (Result, error) {
	var res Result
	res.Done = now
	inSeq := f.certCheck(plan)
	certified := inSeq && !f.forceWalk
	if certified {
		f.stats.CertifiedPlans++
	} else if err := f.prevalidatePlan(plan); err != nil {
		return res, err
	}
	g := f.flash.Geometry()
	batch := f.flash.BeginPlan(e, chDoms)

	if f.reads == nil {
		f.reads = make(map[SubKey]planRead)
	} else {
		clear(f.reads)
	}
	f.sbTimes = f.sbTimes[:0]
	f.readBufN = 0
	trackData := f.flash.TrackData()

	touch := func(sb int, t sim.Time) {
		slot := f.sbSlot(sb)
		if t > slot.touched {
			slot.touched = t
		}
		if t > res.Done {
			res.Done = t
		}
	}

	// fail abandons the batch on a mid-plan structural error. On the
	// certified path no structural check can fail by construction — the
	// skipped walk is precisely what would have caught it — so tripping a
	// per-op check there means the lockstep invariant itself broke, and
	// continuing (or returning with the valid prefix already claimed)
	// would corrupt state silently. Injected faults never reach here:
	// recoverable runtime events on either path, they route through
	// planFault, which commits the executed prefix and disarms the chain.
	fail := func(err error) error {
		batch.Abort()
		if certified {
			panic("fil: certified plan failed mid-execution (certification invariant broken): " + err.Error())
		}
		return err
	}

	// addrFor resolves one op's physical address: translated inline on the
	// certified path, consumed from the prevalidation cache (which walked
	// the plan in this same op order, erases contributing one address per
	// plane) otherwise. One definition keeps the two paths' address
	// sequences structurally identical.
	ai := 0
	addrFor := func(loc ftl.PageLoc) nand.Address {
		if certified {
			return f.addrOf(loc)
		}
		a := f.planAddrs[ai]
		ai++
		return a
	}
	for i, op := range plan.Ops {
		switch op.Kind {
		case ftl.OpRead:
			addr := addrFor(op.Loc)
			start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
			var buf []byte
			if trackData {
				buf = f.readBuf()
			}
			var r nand.Result
			var err error
			if certified {
				// The walk this path skipped is exactly what the per-op
				// precheck would re-derive; only the fault draw remains live.
				r, err = batch.ReadTrusted(start, addr, buf)
			} else {
				r, err = batch.Read(start, addr, buf)
			}
			if err != nil {
				if nand.IsInjectedFault(err) {
					return res, f.planFault(batch, i, op, -1, err)
				}
				return res, fail(fmt.Errorf("fil: plan read %v: %w", op.Loc, err))
			}
			f.stats.Reads++
			f.reads[SubKey{op.LSPN, op.Loc.Sub}] = planRead{done: r.Done, data: buf, srcSB: op.Loc.SB}
			if r.Done > res.ReadsDone {
				res.ReadsDone = r.Done
			}
			touch(op.Loc.SB, r.Done)

		case ftl.OpWrite:
			addr := addrFor(op.Loc)
			if op.Parity {
				// RAIN parity: see Execute's parity branch. Claims, OOB
				// stamping and the stripe mask apply in this serial section;
				// only the program's bookkeeping defers into the channel
				// domain, like any other batched program.
				start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
				pdata := f.parityPayload(op)
				var r nand.Result
				var err error
				if certified {
					r, err = batch.ProgramTaggedTrusted(start, addr, pdata, planTag(op, g))
				} else {
					r, err = batch.ProgramTagged(start, addr, pdata, planTag(op, g))
				}
				if err != nil {
					if nand.IsInjectedFault(err) {
						return res, f.planFault(batch, i, op, -1, err)
					}
					return res, fail(fmt.Errorf("fil: plan parity program %v: %w", op.Loc, err))
				}
				f.flash.SetPageStripe(addr, op.Mask)
				f.stats.Programs++
				touch(op.Loc.SB, r.Done)
				continue
			}
			k := SubKey{op.LSPN, op.Loc.Sub}
			start := sim.MaxOf(now, f.sbSlot(op.Loc.SB).erased)
			data, _ := hostData.Bytes(k)
			srcSB := -1
			if pr, ok := f.reads[k]; ok {
				// Rewrite of data sourced from flash: wait for the read.
				if pr.done > start {
					start = pr.done
					f.stats.DepStalls++
				}
				if data == nil {
					data = pr.data
				}
				srcSB = pr.srcSB
			}
			var r nand.Result
			var err error
			if certified {
				r, err = batch.ProgramTaggedTrusted(start, addr, data, planTag(op, g))
			} else {
				r, err = batch.ProgramTagged(start, addr, data, planTag(op, g))
			}
			if err != nil {
				if nand.IsInjectedFault(err) {
					return res, f.planFault(batch, i, op, -1, err)
				}
				return res, fail(fmt.Errorf("fil: plan program %v: %w", op.Loc, err))
			}
			f.stats.Programs++
			if !op.GC && r.Done > res.HostWritesDone {
				res.HostWritesDone = r.Done
			}
			touch(op.Loc.SB, r.Done)
			if srcSB >= 0 && srcSB != op.Loc.SB {
				// Crash consistency: the source block must not erase until
				// the data moved off it has physically landed — otherwise a
				// power cut between the erase and the migration program
				// destroys the only durable copy.
				touch(srcSB, r.Done)
			}

		case ftl.OpErase:
			// The erase wipes the same block index on every plane, after
			// all earlier plan ops touching this super-block (the
			// migration reads) completed.
			start := sim.MaxOf(now, f.sbSlot(op.SB).touched)
			// Probe the fault draw for every plane before wiping any: the
			// op must fail atomically or the planes issued ahead of a
			// faulting one would already be erased when the FTL recovers
			// under the assumption the whole erase never happened.
			// Translated inline, NOT via addrFor: the prevalidation cache
			// holds one address per plane for the issue loop below, and
			// consuming them here would shift every later op's address.
			for plane := 0; plane < g.TotalPlanes(); plane++ {
				addr := f.addrOf(ftl.PageLoc{SB: op.SB, Page: 0, Plane: plane, Sub: plane})
				if err := f.flash.ProbeErase(addr); err != nil {
					if nand.IsInjectedFault(err) {
						return res, f.planFault(batch, i, op, plane, err)
					}
					return res, fail(fmt.Errorf("fil: plan erase SB %d plane %d: %w", op.SB, plane, err))
				}
			}
			var done sim.Time
			for plane := 0; plane < g.TotalPlanes(); plane++ {
				addr := addrFor(ftl.PageLoc{SB: op.SB, Page: 0, Plane: plane, Sub: plane})
				r, err := batch.Erase(start, addr)
				if err != nil {
					return res, fail(fmt.Errorf("fil: plan erase SB %d plane %d: %w", op.SB, plane, err))
				}
				f.stats.Erases++
				if r.Done > done {
					done = r.Done
				}
			}
			f.sbSlot(op.SB).erased = done
			touch(op.SB, done)

		default:
			// Unreachable: the walk rejects unknown kinds up front, and
			// certified plans only carry kinds the FTL emits.
			return res, fail(fmt.Errorf("fil: unknown plan op kind %d", op.Kind))
		}
	}
	batch.Commit()
	f.stats.PlanCount++
	if inSeq {
		f.certAdvance()
	}
	return res, nil
}

// Key constructs a SubKey; exported for callers assembling payload lookups
// sub by sub.
func Key(lspn int64, sub int) SubKey { return SubKey{lspn, sub} }

// ReadSubs reads the given locations in parallel (subject to physical
// contention) and returns the last completion. When dsts is non-nil it
// must have one buffer per location.
func (f *FIL) ReadSubs(now sim.Time, locs []ftl.PageLoc, dsts [][]byte) (sim.Time, error) {
	done := now
	for i, loc := range locs {
		var dst []byte
		if dsts != nil {
			dst = dsts[i]
		}
		r, err := f.flash.Read(now, f.addrOf(loc), dst)
		if err != nil {
			return done, fmt.Errorf("fil: read %v: %w", loc, err)
		}
		f.stats.Reads++
		if r.Done > done {
			done = r.Done
		}
	}
	return done, nil
}

// ReadSubsOn is ReadSubs with each read's per-channel bookkeeping (counters,
// energy, tracked-data copy into its dst) deferred into the owning channel's
// scheduling domain via nand.Flash.ReadDeferred: chDoms[channel] is the
// channel's domain-local shard. Timing is identical to ReadSubs; the
// deferred events let an intra-parallel engine run the channels' completion
// work concurrently between horizons. Every address is validated before any
// read claims or schedules, so an error leaves no completion events queued
// against the caller's buffers.
func (f *FIL) ReadSubsOn(e *sim.Engine, chDoms []sim.DomainID, now sim.Time, locs []ftl.PageLoc, dsts [][]byte) (sim.Time, error) {
	return f.readSubsDeferred(e, chDoms, now, locs, dsts, false, ftl.ReadCert{})
}

// ReadSubsStaged is ReadSubsOn with each read's page bytes delivered into
// its dst at issue time (nand.Flash.ReadDeferredEager) instead of inside
// the channel's completion event: when this call returns, every dst already
// holds the bytes a synchronous ReadSubs would have produced, and the
// channel shards carry only the reads' counters and energy. Timing is
// identical to ReadSubs/ReadSubsOn. This is the precopy stage of two-stage
// fill installs: because the caller's buffer is complete before any
// completion event exists, the fill's publish continuation depends on no
// pending channel work and may ride a channel-neutral shard
// (PublishDomain), letting the engine batch consecutive publishes past
// pending channel bookkeeping instead of paying one barrier per fill. Every
// address is validated before any read claims or schedules, so an error
// leaves no completion events queued and no dst written.
//
// cert is the read certificate stamped on locs by ftl.LookupCertified;
// while it is honored (readCertOK: chain armed, epochs matched, read-fault
// draws off), the per-address validation walk is skipped entirely —
// mapped ⇒ written holds by construction, so the walk could not have
// changed outcome or timing. Pass the zero ReadCert for hand-built
// location lists; they always walk.
func (f *FIL) ReadSubsStaged(e *sim.Engine, chDoms []sim.DomainID, now sim.Time, locs []ftl.PageLoc, dsts [][]byte, cert ftl.ReadCert) (sim.Time, error) {
	return f.readSubsDeferred(e, chDoms, now, locs, dsts, true, cert)
}

// readSubsDeferred is the shared body of ReadSubsOn and ReadSubsStaged:
// prevalidate every address (so a mid-batch failure leaves no completion
// events queued), then issue each read on the deferred path — eager
// delivers the bytes at issue, otherwise the channel event copies them.
// A certified eager batch skips prevalidation wholesale and issues on the
// trusted path; claims, accounting and delivered bytes are identical.
func (f *FIL) readSubsDeferred(e *sim.Engine, chDoms []sim.DomainID, now sim.Time, locs []ftl.PageLoc, dsts [][]byte, eager bool, cert ftl.ReadCert) (sim.Time, error) {
	if eager && f.readCertOK(cert) {
		done := now
		for i, loc := range locs {
			var dst []byte
			if dsts != nil {
				dst = dsts[i]
			}
			addr := f.addrOf(loc)
			r := f.flash.ReadDeferredEagerTrusted(e, chDoms[addr.Channel], now, addr, dst)
			f.stats.Reads++
			if r.Done > done {
				done = r.Done
			}
		}
		f.stats.CertifiedReads += uint64(len(locs))
		return done, nil
	}
	addrs := f.addrScratch[:0]
	extras := f.extraScratch[:0]
	for _, loc := range locs {
		addr := f.addrOf(loc)
		// ProbeReadExtra covers the structural checks AND the injected
		// read-fault ladder, returning the drawn retry latency: the draw is
		// pure in state that cannot change before the issue pass below (the
		// disturb bump lands at claim, after each read's draw), so a batch
		// whose every probe passes cannot fault at issue — an uncorrectable
		// read surfaces here, with no completion events queued and no dst
		// written, same contract as a structural failure. The issue pass
		// replays the probe's draw instead of re-drawing: issued reads bump
		// their block's disturb counter, and a later read of the same block
		// in this batch must not see its batchmate's bump mid-flight.
		extra, err := f.flash.ProbeReadExtra(now, addr)
		if err != nil {
			f.addrScratch = addrs
			f.extraScratch = extras
			return now, fmt.Errorf("fil: read %v: %w", loc, err)
		}
		addrs = append(addrs, addr)
		extras = append(extras, extra)
	}
	f.addrScratch = addrs
	f.extraScratch = extras
	done := now
	for i, addr := range addrs {
		var dst []byte
		if dsts != nil {
			dst = dsts[i]
		}
		var r nand.Result
		if eager {
			r = f.flash.ReadDeferredEagerPredrawn(e, chDoms[addr.Channel], now, addr, dst, extras[i])
		} else {
			r = f.flash.ReadDeferredPredrawn(e, chDoms[addr.Channel], now, addr, dst, extras[i])
		}
		f.stats.Reads++
		if r.Done > done {
			done = r.Done
		}
	}
	return done, nil
}

// ReadPage performs a raw physical page read (OCSSD path).
func (f *FIL) ReadPage(now sim.Time, addr nand.Address, dst []byte) (nand.Result, error) {
	r, err := f.flash.Read(now, addr, dst)
	if err == nil {
		f.stats.Reads++
	}
	return r, err
}

// ProgramPage performs a raw physical page program (OCSSD path).
func (f *FIL) ProgramPage(now sim.Time, addr nand.Address, data []byte) (nand.Result, error) {
	r, err := f.flash.Program(now, addr, data)
	if err == nil {
		f.stats.Programs++
	}
	return r, err
}

// EraseBlock performs a raw physical block erase (OCSSD path).
func (f *FIL) EraseBlock(now sim.Time, addr nand.Address) (nand.Result, error) {
	r, err := f.flash.Erase(now, addr)
	if err == nil {
		f.stats.Erases++
	}
	return r, err
}

// Flash exposes the underlying storage complex for stats/energy queries.
func (f *FIL) Flash() *nand.Flash { return f.flash }
