package fil

import (
	"bytes"
	"errors"
	"testing"

	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
)

func newStack(t *testing.T, trackData bool) (*FIL, *ftl.FTL, *nand.Flash) {
	t.Helper()
	g := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 2,
		BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
	}
	tim := nand.Timing{
		ReadFast: sim.FromMicroseconds(60), ReadSlow: sim.FromMicroseconds(105),
		ProgFast: sim.FromMicroseconds(820), ProgSlow: sim.FromMicroseconds(2250),
		Erase: sim.FromMicroseconds(3000), BusMTps: 333, CmdCycles: sim.FromNanoseconds(100),
	}
	fl, err := nand.New(g, tim, nand.Power{}, nand.MLC, nand.Options{TrackData: trackData})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ftl.New(ftl.Config{
		Geometry: g, OPRatio: 0.25, GCFreeThreshold: 2, PartialUpdate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(fl, tr.Address)
	if err != nil {
		t.Fatal(err)
	}
	return f, tr, fl
}

func TestNewRequiresArgs(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestExecuteFullWritePlan(t *testing.T) {
	f, tr, fl := newStack(t, true)
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	dirty := []bool{true, true, true, true}
	plan, err := tr.Write(0, 9, dirty)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Execute(0, plan, HostData(9, dirty, payload, 512))
	if err != nil {
		t.Fatal(err)
	}
	if res.HostWritesDone == 0 || res.Done < res.HostWritesDone {
		t.Fatalf("result = %+v", res)
	}
	if fl.Stats().Programs != 4 {
		t.Fatalf("programs = %d", fl.Stats().Programs)
	}
	// Read back through the FIL and verify contents.
	locs, err := tr.Lookup(9)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*512)
	dsts := make([][]byte, len(locs))
	for i, l := range locs {
		dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
	}
	if _, err := f.ReadSubs(sim.FromMicroseconds(10000), locs, dsts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back bytes differ")
	}
}

func TestWritesAcrossPlanesOverlap(t *testing.T) {
	f, tr, _ := newStack(t, false)
	plan, err := tr.Write(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Execute(0, plan, PlanData{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 programs across 4 planes (2 channels): wall-clock must be far less
	// than 4 serial programs.
	serial := 4 * sim.FromMicroseconds(820)
	if res.Done >= serial {
		t.Fatalf("no parallelism: done=%v, serial=%v", res.Done, serial)
	}
}

func TestGCPlanSurvivesDataIntegrity(t *testing.T) {
	f, tr, _ := newStack(t, true)
	now := sim.Time(0)
	content := map[int64][]byte{}
	write := func(lspn int64) {
		t.Helper()
		payload := make([]byte, 4*512)
		for i := range payload {
			payload[i] = byte(int64(i) + lspn*7)
		}
		dirty := []bool{true, true, true, true}
		plan, err := tr.Write(now, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Execute(now, plan, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		content[lspn] = payload
		now = res.Done + sim.Microsecond
	}
	// Fill sequentially, then overwrite in random order: random
	// invalidation leaves victims partially valid, forcing migrations.
	for lspn := int64(0); lspn < tr.UserSuperPages(); lspn++ {
		write(lspn)
	}
	rng := sim.NewRNG(12)
	for i := int64(0); i < 3*tr.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(tr.UserSuperPages()))))
	}
	if tr.Stats().GCMigrated == 0 {
		t.Fatal("GC never migrated; test is vacuous")
	}
	// All data must be intact after migrations.
	for lspn, want := range content {
		locs, err := tr.Lookup(lspn)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 4*512)
		dsts := make([][]byte, len(locs))
		for i, l := range locs {
			dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
		}
		if _, err := f.ReadSubs(now, locs, dsts); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("LSPN %d corrupted after GC", lspn)
		}
	}
}

func TestDepStallsCounted(t *testing.T) {
	f, tr, _ := newStack(t, false)
	now := sim.Time(0)
	rng := sim.NewRNG(5)
	write := func(lspn int64) {
		t.Helper()
		plan, err := tr.Write(now, lspn, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Execute(now, plan, PlanData{})
		if err != nil {
			t.Fatal(err)
		}
		now = res.Done + sim.Microsecond
	}
	for lspn := int64(0); lspn < tr.UserSuperPages(); lspn++ {
		write(lspn)
	}
	for i := int64(0); i < 3*tr.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(tr.UserSuperPages()))))
	}
	if f.Stats().DepStalls == 0 {
		t.Fatal("GC rewrites never waited on their source reads")
	}
	if f.Stats().Erases == 0 {
		t.Fatal("no erases executed")
	}
}

// chDomsFor registers (and marks domain-local) one scheduling domain per
// NAND channel on e, the shape core.domainsFor builds for a full system.
func chDomsFor(t *testing.T, e *sim.Engine, fl *nand.Flash) []sim.DomainID {
	t.Helper()
	doms := make([]sim.DomainID, fl.Geometry().Channels)
	for ch := range doms {
		doms[ch] = e.Domain(nand.ChannelDomain(ch))
		e.MarkDomainLocal(doms[ch])
	}
	return doms
}

// TestExecuteOnEquivalence drives the same GC-heavy write trajectory
// through the synchronous Execute and the deferred ExecuteOn and demands
// identical plan timings, identical flash/FIL counters and identical
// read-back bytes — the sync-vs-deferred semantic bar under plans that mix
// migration reads, rewrites and erases.
func TestExecuteOnEquivalence(t *testing.T) {
	fSync, trSync, flSync := newStack(t, true)
	fDef, trDef, flDef := newStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, flDef)

	nowS, nowD := sim.Time(0), sim.Time(0)
	rng := sim.NewRNG(12)
	write := func(lspn int64) {
		t.Helper()
		payload := make([]byte, 4*512)
		for i := range payload {
			payload[i] = byte(int64(i)*3 + lspn)
		}
		dirty := []bool{true, true, true, true}

		planS, err := trSync.Write(nowS, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		resS, err := fSync.Execute(nowS, planS, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		nowS = resS.Done + sim.Microsecond

		planD, err := trDef.Write(nowD, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		resD, err := fDef.ExecuteOn(e, doms, nowD, planD, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		nowD = resD.Done + sim.Microsecond

		if resS != resD {
			t.Fatalf("lspn %d: deferred result %+v != sync %+v", lspn, resD, resS)
		}
	}
	for lspn := int64(0); lspn < trSync.UserSuperPages(); lspn++ {
		write(lspn)
	}
	for i := int64(0); i < 3*trSync.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(trSync.UserSuperPages()))))
	}
	if trDef.Stats().GCMigrated == 0 {
		t.Fatal("GC never migrated; equivalence is vacuous")
	}
	e.Run() // drain the deferred bookkeeping
	if flSync.Stats() != flDef.Stats() {
		t.Fatalf("flash stats diverged: sync %+v deferred %+v", flSync.Stats(), flDef.Stats())
	}
	if fSync.Stats() != fDef.Stats() {
		t.Fatalf("fil stats diverged: sync %+v deferred %+v", fSync.Stats(), fDef.Stats())
	}
	// Byte-for-byte read-back of every mapped super-page.
	for lspn := int64(0); lspn < trSync.UserSuperPages(); lspn++ {
		locs, err := trSync.Lookup(lspn)
		if err != nil {
			t.Fatal(err)
		}
		read := func(f *FIL, at sim.Time) []byte {
			got := make([]byte, 4*512)
			dsts := make([][]byte, len(locs))
			for i, l := range locs {
				dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
			}
			if _, err := f.ReadSubs(at, locs, dsts); err != nil {
				t.Fatal(err)
			}
			return got
		}
		locsD, err := trDef.Lookup(lspn)
		if err != nil {
			t.Fatal(err)
		}
		gotS := read(fSync, nowS)
		dstsD := make([][]byte, len(locsD))
		gotD := make([]byte, 4*512)
		for i, l := range locsD {
			dstsD[i] = gotD[l.Sub*512 : (l.Sub+1)*512]
		}
		if _, err := fDef.ReadSubs(nowD, locsD, dstsD); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotS, gotD) {
			t.Fatalf("LSPN %d bytes diverged between sync and deferred execution", lspn)
		}
	}
}

// TestCertifiedPlanEquivalence drives the same GC-heavy write trajectory
// through two certified-bound stacks, one with the certificate honored
// (prevalidation skipped) and one force-routed through the walk, and
// demands identical plan timings, identical flash/FIL counters and
// identical read-back bytes. It is the semantic bar for the certified fast
// path: skipping the walk must change nothing but the work done.
func TestCertifiedPlanEquivalence(t *testing.T) {
	fFast, trFast, flFast := newStack(t, true)
	fWalk, trWalk, flWalk := newStack(t, true)
	if err := fFast.AcceptCertified(trFast); err != nil {
		t.Fatal(err)
	}
	if err := fWalk.AcceptCertified(trWalk); err != nil {
		t.Fatal(err)
	}
	fWalk.ForcePrevalidate(true)
	eF, eW := sim.NewEngine(), sim.NewEngine()
	domsF := chDomsFor(t, eF, flFast)
	domsW := chDomsFor(t, eW, flWalk)

	nowF, nowW := sim.Time(0), sim.Time(0)
	rng := sim.NewRNG(12)
	write := func(lspn int64) {
		t.Helper()
		payload := make([]byte, 4*512)
		for i := range payload {
			payload[i] = byte(int64(i)*5 + lspn)
		}
		dirty := []bool{true, true, true, true}

		planF, err := trFast.Write(nowF, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		resF, err := fFast.ExecuteOn(eF, domsF, nowF, planF, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		nowF = resF.Done + sim.Microsecond

		planW, err := trWalk.Write(nowW, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		resW, err := fWalk.ExecuteOn(eW, domsW, nowW, planW, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		nowW = resW.Done + sim.Microsecond

		if resF != resW {
			t.Fatalf("lspn %d: certified result %+v != walked %+v", lspn, resF, resW)
		}
	}
	for lspn := int64(0); lspn < trFast.UserSuperPages(); lspn++ {
		write(lspn)
	}
	for i := int64(0); i < 3*trFast.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(trFast.UserSuperPages()))))
	}
	if trFast.Stats().GCMigrated == 0 {
		t.Fatal("GC never migrated; equivalence is vacuous")
	}
	eF.Run()
	eW.Run()

	sf, sw := fFast.Stats(), fWalk.Stats()
	if sf.CertifiedPlans != sf.PlanCount {
		t.Fatalf("certified leg fast-pathed %d of %d plans; the chain broke", sf.CertifiedPlans, sf.PlanCount)
	}
	if sw.CertifiedPlans != 0 {
		t.Fatalf("forced-walk leg fast-pathed %d plans", sw.CertifiedPlans)
	}
	sf.CertifiedPlans, sw.CertifiedPlans = 0, 0
	if sf != sw {
		t.Fatalf("fil stats diverged: certified %+v walked %+v", sf, sw)
	}
	if flFast.Stats() != flWalk.Stats() {
		t.Fatalf("flash stats diverged: certified %+v walked %+v", flFast.Stats(), flWalk.Stats())
	}
	// Byte-for-byte read-back of every mapped super-page.
	for lspn := int64(0); lspn < trFast.UserSuperPages(); lspn++ {
		read := func(f *FIL, tr *ftl.FTL, at sim.Time) []byte {
			t.Helper()
			locs, err := tr.Lookup(lspn)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 4*512)
			dsts := make([][]byte, len(locs))
			for i, l := range locs {
				dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
			}
			if _, err := f.ReadSubs(at, locs, dsts); err != nil {
				t.Fatal(err)
			}
			return got
		}
		if !bytes.Equal(read(fFast, trFast, nowF), read(fWalk, trWalk, nowW)) {
			t.Fatalf("LSPN %d bytes diverged between certified and walked execution", lspn)
		}
	}
}

// TestCertificationInvalidation locks in the slow-path fallbacks: a raw
// flash mutation behind the FIL's back (epoch break) and a replayed plan
// (sequence break) must both disarm the certificate chain, and an
// invalidated plan that then fails mid-way must be rejected by the walk
// with no events queued, no counters moved and no block state touched —
// the error-⇒-no-mutation contract survives certification.
func TestCertificationInvalidation(t *testing.T) {
	f, tr, fl := newStack(t, true)
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	dirty := []bool{true, true, true, true}
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// Plan 1 rides the fast path.
	plan1, err := tr.Write(0, 0, dirty)
	if err != nil {
		t.Fatal(err)
	}
	// Keep a private copy: replaying the scratch-backed plan later needs
	// ops that survive the next Write call.
	replay := plan1
	replay.Ops = append([]ftl.Op(nil), plan1.Ops...)
	if _, err := f.ExecuteOn(e, doms, 0, plan1, HostData(0, dirty, payload, 512)); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().CertifiedPlans; got != 1 {
		t.Fatalf("CertifiedPlans = %d, want 1", got)
	}
	e.Run()

	// A raw OCSSD program into the FTL's open super-block: the flash epoch
	// moves without the certificate chain, and the raw page collides with
	// the next page the FTL will allocate there.
	rawLoc := plan1.Ops[0].Loc
	rawLoc.Page = fl.NextProgramPage(tr.Address(rawLoc))
	if _, err := f.ProgramPage(sim.FromMicroseconds(50000), tr.Address(rawLoc), payload[:512]); err != nil {
		t.Fatal(err)
	}

	// Plan 2 carries a valid-looking certificate, but the lockstep is
	// broken: the walk must run, catch the collision mid-plan and reject
	// with nothing queued and nothing mutated.
	plan2, err := tr.Write(sim.FromMicroseconds(60000), 1, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Cert.Certified() {
		t.Fatal("FTL did not certify plan 2")
	}
	statsBefore, flashBefore := f.Stats(), fl.Stats()
	if _, err := f.ExecuteOn(e, doms, sim.FromMicroseconds(60000), plan2, HostData(1, dirty, payload, 512)); err == nil {
		t.Fatal("stale-certified colliding plan accepted")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events queued by a rejected plan", e.Pending())
	}
	// The epoch break disarms the chain — the one counter a rejection is
	// allowed to move.
	wantAfter := statsBefore
	wantAfter.CertDisarms++
	if got := f.Stats(); got != wantAfter {
		t.Fatalf("fil counters moved on rejection: %+v -> %+v", statsBefore, got)
	}
	if got := fl.Stats(); got != flashBefore {
		t.Fatalf("flash counters moved on rejection: %+v -> %+v", flashBefore, got)
	}
	for _, op := range plan2.Ops {
		if op.Kind == ftl.OpWrite && op.Loc != rawLoc && fl.PageWritten(tr.Address(op.Loc)) {
			t.Fatalf("rejected plan programmed %v", op.Loc)
		}
	}

	// Replaying an already-executed plan is a sequence break: slow path,
	// and the walk rejects the duplicate programs.
	if _, err := f.ExecuteOn(e, doms, sim.FromMicroseconds(70000), replay, HostData(0, dirty, payload, 512)); err == nil {
		t.Fatal("replayed plan accepted")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events queued by a replayed plan", e.Pending())
	}
	if got := f.Stats().CertifiedPlans; got != 1 {
		t.Fatalf("CertifiedPlans = %d after invalidation, want 1", got)
	}

	// Re-binding is explicit: a fresh lockstep assertion re-arms nothing
	// here because the flash genuinely diverged from the model, so even a
	// hand re-bound chain walks (seq mismatch) — only a fresh stack pair
	// earns the fast path again. A hand-built (uncertified) plan also
	// walks.
	var bare ftl.Plan
	bare.Ops = append(bare.Ops, ftl.Op{Kind: ftl.OpRead, Loc: plan1.Ops[0].Loc, LSPN: 0})
	if _, err := f.ExecuteOn(e, doms, sim.FromMicroseconds(80000), bare, PlanData{}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := f.Stats().CertifiedPlans; got != 1 {
		t.Fatalf("uncertified plan took the fast path (CertifiedPlans = %d)", got)
	}
}

// TestExecuteOnPrevalidates verifies the batching contract: a plan that
// fails mid-way (an out-of-order program after valid ops) must be rejected
// before anything claims, mutates or schedules — no events queued, no
// counters moved, no block state touched.
func TestExecuteOnPrevalidates(t *testing.T) {
	f, tr, fl := newStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)

	// A handcrafted plan: one valid write, then an out-of-order program.
	plan, err := tr.Write(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := plan
	bad.Ops = append(append([]ftl.Op{}, plan.Ops...), ftl.Op{
		Kind: ftl.OpWrite,
		Loc:  ftl.PageLoc{SB: plan.Ops[0].Loc.SB, Page: 3, Plane: plan.Ops[0].Loc.Plane, Sub: 0},
		LSPN: 1,
	})
	if _, err := f.ExecuteOn(e, doms, 0, bad, PlanData{}); err == nil {
		t.Fatal("mid-plan invalid program accepted")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events queued by a rejected plan", e.Pending())
	}
	if s := fl.Stats(); s != (nand.Stats{}) {
		t.Fatalf("flash counters moved: %+v", s)
	}
	if s := f.Stats(); s != (Stats{}) {
		t.Fatalf("fil counters moved: %+v", s)
	}
	// The valid prefix must not have transitioned any block state either.
	for _, op := range plan.Ops {
		if op.Kind == ftl.OpWrite && fl.PageWritten(tr.Address(op.Loc)) {
			t.Fatalf("rejected plan programmed %v", op.Loc)
		}
	}
	// The same plan without the poison op still executes.
	if _, err := f.ExecuteOn(e, doms, 0, plan, PlanData{}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if f.Stats().Programs == 0 {
		t.Fatal("valid plan did not execute")
	}
}

// TestStatsSingleCountAcrossPaths is the double-count regression for the
// raw OCSSD page paths: a FIL mixing deferred plan execution with raw
// ProgramPage/EraseBlock/ReadPage calls must count every transaction
// exactly once, matching a serial reference that runs the same sequence
// through the synchronous paths.
func TestStatsSingleCountAcrossPaths(t *testing.T) {
	fDef, trDef, flDef := newStack(t, true)
	fRef, trRef, flRef := newStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, flDef)

	dirty := []bool{true, true, true, true}
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i)
	}
	for lspn := int64(0); lspn < 3; lspn++ {
		planD, err := trDef.Write(0, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fDef.ExecuteOn(e, doms, 0, planD, HostData(lspn, dirty, payload, 512)); err != nil {
			t.Fatal(err)
		}
		planR, err := trRef.Write(0, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fRef.Execute(0, planR, HostData(lspn, dirty, payload, 512)); err != nil {
			t.Fatal(err)
		}
	}
	e.Run() // drain deferred bookkeeping before the raw (synchronous) ops

	// Raw OCSSD traffic on a block with in-order program room (both stacks
	// ran identical plans, so one scan serves both), same sequence each.
	g := flDef.Geometry()
	raw := nand.Address{Channel: 1}
	for raw.Block = 0; raw.Block < g.BlocksPerPlane; raw.Block++ {
		if next := flDef.NextProgramPage(raw); next < g.PagesPerBlock {
			raw.Page = next
			break
		}
	}
	if raw.Block == g.BlocksPerPlane {
		t.Fatal("no block with program room")
	}
	for _, f := range []*FIL{fDef, fRef} {
		at := sim.FromMicroseconds(500000)
		if _, err := f.ProgramPage(at, raw, payload[:512]); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 512)
		if _, err := f.ReadPage(at+sim.FromMicroseconds(5000), raw, got); err != nil {
			t.Fatal(err)
		}
		if _, err := f.EraseBlock(at+sim.FromMicroseconds(10000), raw); err != nil {
			t.Fatal(err)
		}
	}

	if fDef.Stats() != fRef.Stats() {
		t.Fatalf("fil stats diverged: mixed %+v reference %+v", fDef.Stats(), fRef.Stats())
	}
	if flDef.Stats() != flRef.Stats() {
		t.Fatalf("flash stats diverged: mixed %+v reference %+v", flDef.Stats(), flRef.Stats())
	}
	if got, want := flDef.Stats().Programs, uint64(3*4+1); got != want {
		t.Fatalf("Programs = %d, want %d (12 plan + 1 raw, each exactly once)", got, want)
	}
}

func TestRawOCSSDPath(t *testing.T) {
	f, _, _ := newStack(t, true)
	addr := nand.Address{Channel: 1, Page: 0}
	data := make([]byte, 512)
	data[7] = 0x77
	if _, err := f.ProgramPage(0, addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := f.ReadPage(sim.FromMicroseconds(5000), addr, got); err != nil {
		t.Fatal(err)
	}
	if got[7] != 0x77 {
		t.Fatal("raw path lost data")
	}
	if _, err := f.EraseBlock(sim.FromMicroseconds(9000), addr); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPage(sim.FromMicroseconds(13000), addr, got); err == nil {
		t.Fatal("read after erase should fail")
	}
}

func TestHostDataHelper(t *testing.T) {
	buf := make([]byte, 4*512)
	buf[512] = 0xEE
	d := HostData(3, []bool{false, true, false, false}, buf, 512)
	p, ok := d.Bytes(Key(3, 1))
	if !ok || p == nil || p[0] != 0xEE {
		t.Fatal("payload slice wrong")
	}
	if _, ok := d.Bytes(Key(3, 0)); ok {
		t.Fatal("clean sub reported as covered")
	}
	if _, ok := d.Bytes(Key(4, 1)); ok {
		t.Fatal("foreign LSPN reported as covered")
	}
	// Nil data gives nil payloads but still covers dirty subs.
	d2 := HostData(3, []bool{true, true, false, false}, nil, 512)
	p2, ok := d2.Bytes(Key(3, 0))
	if !ok || p2 != nil {
		t.Fatal("nil-data coverage wrong")
	}
	// The zero value covers nothing.
	if _, ok := (PlanData{}).Bytes(Key(0, 0)); ok {
		t.Fatal("zero PlanData covered a key")
	}
}

// newFaultStack is newStack with deterministic fault injection armed on the
// flash and a spare-block reserve on the FTL.
func newFaultStack(t *testing.T, faults nand.FaultConfig) (*FIL, *ftl.FTL, *nand.Flash) {
	t.Helper()
	g := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 2,
		BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
	}
	tim := nand.Timing{
		ReadFast: sim.FromMicroseconds(60), ReadSlow: sim.FromMicroseconds(105),
		ProgFast: sim.FromMicroseconds(820), ProgSlow: sim.FromMicroseconds(2250),
		Erase: sim.FromMicroseconds(3000), BusMTps: 333, CmdCycles: sim.FromNanoseconds(100),
	}
	fl, err := nand.New(g, tim, nand.Power{}, nand.MLC, nand.Options{TrackData: true, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ftl.New(ftl.Config{
		Geometry: g, OPRatio: 0.25, GCFreeThreshold: 2, PartialUpdate: true,
		SpareBlocks: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(fl, tr.Address)
	if err != nil {
		t.Fatal(err)
	}
	return f, tr, fl
}

// TestCertifiedChainFaultDisarm proves the certified fast path and fault
// injection compose safely: an injected program failure mid-plan surfaces
// as *PlanFault, disarms the certified chain (so every later plan —
// including the recovery plan and fresh certified plans — takes the
// walking slow path), and only an explicit AcceptCertified after clean
// recovery re-arms the fast path.
func TestCertifiedChainFaultDisarm(t *testing.T) {
	f, tr, fl := newFaultStack(t, nand.FaultConfig{Seed: 5, ProgramFailProb: 0.02})
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	dirty := []bool{true, true, true, true}
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// Overwrite the volume until a plan draws a program fault. Every clean
	// plan before it must ride the certified fast path.
	var (
		pf        *PlanFault
		faulty    ftl.Plan
		faultLSPN int64
		now       sim.Time
	)
	user := tr.UserSuperPages()
	for i := 0; i < 10000; i++ {
		lspn := int64(i) % user
		plan, err := tr.Write(now, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Cert.Certified() {
			t.Fatalf("write %d: plan not certified", i)
		}
		certBefore := f.Stats().CertifiedPlans
		_, err = f.ExecuteOn(e, doms, now, plan, HostData(lspn, dirty, payload, 512))
		e.Run()
		if err == nil {
			if got := f.Stats().CertifiedPlans; got != certBefore+1 {
				t.Fatalf("write %d: clean certified plan walked (CertifiedPlans %d -> %d)", i, certBefore, got)
			}
			now += sim.FromMicroseconds(5000)
			continue
		}
		if !errors.As(err, &pf) {
			t.Fatalf("write %d: non-fault error: %v", i, err)
		}
		// The plan's ops live in the FTL's scratch buffer; recovery below
		// must see them as the fault left them.
		faulty = plan
		faultLSPN = lspn
		break
	}
	if pf == nil {
		t.Fatal("no program fault drawn in 10000 writes; raise ProgramFailProb")
	}
	if !errors.Is(pf.Err, nand.ErrProgramFail) {
		t.Fatalf("fault cause = %v, want ErrProgramFail", pf.Err)
	}
	if pf.Executed < 0 || pf.Executed >= len(faulty.Ops) {
		t.Fatalf("Executed %d outside plan of %d ops", pf.Executed, len(faulty.Ops))
	}
	if got := f.Stats().PlanFaults; got != 1 {
		t.Fatalf("PlanFaults = %d, want 1", got)
	}

	// Recovery: the FTL retires the bad block and re-places the stranded
	// suffix into an uncertified plan — which must walk.
	certAtFault := f.Stats().CertifiedPlans
	rplan, err := tr.RecoverPlanFault(now, faulty, pf.Executed, pf.Err)
	if err != nil {
		t.Fatal(err)
	}
	if rplan.Cert.Certified() {
		t.Fatal("recovery plan carries a certificate")
	}
	if _, err := f.ExecuteOn(e, doms, now, rplan, HostData(faultLSPN, dirty, payload, 512)); err != nil {
		t.Fatalf("recovery plan rejected: %v", err)
	}
	e.Run()
	if tr.Stats().Retirements == 0 {
		t.Fatal("program fault retired no block")
	}

	// The chain is still disarmed: a fresh, validly-certified plan walks.
	now += sim.FromMicroseconds(5000)
	plan, err := tr.Write(now, 0, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Cert.Certified() {
		t.Fatal("post-recovery plan not certified")
	}
	if _, err := f.ExecuteOn(e, doms, now, plan, HostData(0, dirty, payload, 512)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := f.Stats().CertifiedPlans; got != certAtFault {
		t.Fatalf("disarmed chain took the fast path (CertifiedPlans %d -> %d)", certAtFault, got)
	}

	// AcceptCertified re-arms: the next certified plan rides fast again.
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	now += sim.FromMicroseconds(5000)
	plan, err = tr.Write(now, 1, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecuteOn(e, doms, now, plan, HostData(1, dirty, payload, 512)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := f.Stats().CertifiedPlans; got != certAtFault+1 {
		t.Fatalf("re-armed chain did not take the fast path (CertifiedPlans %d -> %d)", certAtFault, got)
	}
}
