package fil

import (
	"bytes"
	"testing"

	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
)

func newStack(t *testing.T, trackData bool) (*FIL, *ftl.FTL, *nand.Flash) {
	t.Helper()
	g := nand.Geometry{
		Channels: 2, PackagesPerChannel: 1, DiesPerPackage: 1, PlanesPerDie: 2,
		BlocksPerPlane: 8, PagesPerBlock: 4, PageSize: 512,
	}
	tim := nand.Timing{
		ReadFast: sim.FromMicroseconds(60), ReadSlow: sim.FromMicroseconds(105),
		ProgFast: sim.FromMicroseconds(820), ProgSlow: sim.FromMicroseconds(2250),
		Erase: sim.FromMicroseconds(3000), BusMTps: 333, CmdCycles: sim.FromNanoseconds(100),
	}
	fl, err := nand.New(g, tim, nand.Power{}, nand.MLC, nand.Options{TrackData: trackData})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ftl.New(ftl.Config{
		Geometry: g, OPRatio: 0.25, GCFreeThreshold: 2, PartialUpdate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(fl, tr.Address)
	if err != nil {
		t.Fatal(err)
	}
	return f, tr, fl
}

func TestNewRequiresArgs(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestExecuteFullWritePlan(t *testing.T) {
	f, tr, fl := newStack(t, true)
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	dirty := []bool{true, true, true, true}
	plan, err := tr.Write(0, 9, dirty)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Execute(0, plan, HostData(9, dirty, payload, 512))
	if err != nil {
		t.Fatal(err)
	}
	if res.HostWritesDone == 0 || res.Done < res.HostWritesDone {
		t.Fatalf("result = %+v", res)
	}
	if fl.Stats().Programs != 4 {
		t.Fatalf("programs = %d", fl.Stats().Programs)
	}
	// Read back through the FIL and verify contents.
	locs, err := tr.Lookup(9)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*512)
	dsts := make([][]byte, len(locs))
	for i, l := range locs {
		dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
	}
	if _, err := f.ReadSubs(sim.FromMicroseconds(10000), locs, dsts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back bytes differ")
	}
}

func TestWritesAcrossPlanesOverlap(t *testing.T) {
	f, tr, _ := newStack(t, false)
	plan, err := tr.Write(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Execute(0, plan, PlanData{})
	if err != nil {
		t.Fatal(err)
	}
	// 4 programs across 4 planes (2 channels): wall-clock must be far less
	// than 4 serial programs.
	serial := 4 * sim.FromMicroseconds(820)
	if res.Done >= serial {
		t.Fatalf("no parallelism: done=%v, serial=%v", res.Done, serial)
	}
}

func TestGCPlanSurvivesDataIntegrity(t *testing.T) {
	f, tr, _ := newStack(t, true)
	now := sim.Time(0)
	content := map[int64][]byte{}
	write := func(lspn int64) {
		t.Helper()
		payload := make([]byte, 4*512)
		for i := range payload {
			payload[i] = byte(int64(i) + lspn*7)
		}
		dirty := []bool{true, true, true, true}
		plan, err := tr.Write(now, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Execute(now, plan, HostData(lspn, dirty, payload, 512))
		if err != nil {
			t.Fatal(err)
		}
		content[lspn] = payload
		now = res.Done + sim.Microsecond
	}
	// Fill sequentially, then overwrite in random order: random
	// invalidation leaves victims partially valid, forcing migrations.
	for lspn := int64(0); lspn < tr.UserSuperPages(); lspn++ {
		write(lspn)
	}
	rng := sim.NewRNG(12)
	for i := int64(0); i < 3*tr.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(tr.UserSuperPages()))))
	}
	if tr.Stats().GCMigrated == 0 {
		t.Fatal("GC never migrated; test is vacuous")
	}
	// All data must be intact after migrations.
	for lspn, want := range content {
		locs, err := tr.Lookup(lspn)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 4*512)
		dsts := make([][]byte, len(locs))
		for i, l := range locs {
			dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
		}
		if _, err := f.ReadSubs(now, locs, dsts); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("LSPN %d corrupted after GC", lspn)
		}
	}
}

func TestDepStallsCounted(t *testing.T) {
	f, tr, _ := newStack(t, false)
	now := sim.Time(0)
	rng := sim.NewRNG(5)
	write := func(lspn int64) {
		t.Helper()
		plan, err := tr.Write(now, lspn, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Execute(now, plan, PlanData{})
		if err != nil {
			t.Fatal(err)
		}
		now = res.Done + sim.Microsecond
	}
	for lspn := int64(0); lspn < tr.UserSuperPages(); lspn++ {
		write(lspn)
	}
	for i := int64(0); i < 3*tr.UserSuperPages(); i++ {
		write(int64(rng.Uint64n(uint64(tr.UserSuperPages()))))
	}
	if f.Stats().DepStalls == 0 {
		t.Fatal("GC rewrites never waited on their source reads")
	}
	if f.Stats().Erases == 0 {
		t.Fatal("no erases executed")
	}
}

func TestRawOCSSDPath(t *testing.T) {
	f, _, _ := newStack(t, true)
	addr := nand.Address{Channel: 1, Page: 0}
	data := make([]byte, 512)
	data[7] = 0x77
	if _, err := f.ProgramPage(0, addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if _, err := f.ReadPage(sim.FromMicroseconds(5000), addr, got); err != nil {
		t.Fatal(err)
	}
	if got[7] != 0x77 {
		t.Fatal("raw path lost data")
	}
	if _, err := f.EraseBlock(sim.FromMicroseconds(9000), addr); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPage(sim.FromMicroseconds(13000), addr, got); err == nil {
		t.Fatal("read after erase should fail")
	}
}

func TestHostDataHelper(t *testing.T) {
	buf := make([]byte, 4*512)
	buf[512] = 0xEE
	d := HostData(3, []bool{false, true, false, false}, buf, 512)
	p, ok := d.Bytes(Key(3, 1))
	if !ok || p == nil || p[0] != 0xEE {
		t.Fatal("payload slice wrong")
	}
	if _, ok := d.Bytes(Key(3, 0)); ok {
		t.Fatal("clean sub reported as covered")
	}
	if _, ok := d.Bytes(Key(4, 1)); ok {
		t.Fatal("foreign LSPN reported as covered")
	}
	// Nil data gives nil payloads but still covers dirty subs.
	d2 := HostData(3, []bool{true, true, false, false}, nil, 512)
	p2, ok := d2.Bytes(Key(3, 0))
	if !ok || p2 != nil {
		t.Fatal("nil-data coverage wrong")
	}
	// The zero value covers nothing.
	if _, ok := (PlanData{}).Bytes(Key(0, 0)); ok {
		t.Fatal("zero PlanData covered a key")
	}
}
