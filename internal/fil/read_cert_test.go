package fil

import (
	"bytes"
	"errors"
	"testing"

	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
)

// certStack is newStack plus the read-certificate wiring core.NewSystem
// does: the FTL stamps lookups with the flash epoch and the FIL honors the
// write-side chain.
func certStack(t *testing.T, trackData bool) (*FIL, *ftl.FTL, *nand.Flash) {
	t.Helper()
	f, tr, fl := newStack(t, trackData)
	tr.SetEpochSource(fl.StateEpoch)
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	return f, tr, fl
}

// writeSuper writes every sub of lspn through a certified plan on the
// deferred path and returns the payload.
func writeSuper(t *testing.T, f *FIL, tr *ftl.FTL, e *sim.Engine, doms []sim.DomainID, now sim.Time, lspn int64) []byte {
	t.Helper()
	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(int64(i)*5 + lspn*11)
	}
	dirty := []bool{true, true, true, true}
	plan, err := tr.Write(now, lspn, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecuteOn(e, doms, now, plan, HostData(lspn, dirty, payload, 512)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	return payload
}

// readStaged reads lspn's mapped subs through ReadSubsStaged with the
// lookup's certificate and returns the delivered bytes.
func readStaged(t *testing.T, f *FIL, tr *ftl.FTL, e *sim.Engine, doms []sim.DomainID, now sim.Time, lspn int64) []byte {
	t.Helper()
	locs, cert, err := tr.LookupCertified(nil, lspn)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4*512)
	dsts := make([][]byte, len(locs))
	for i, l := range locs {
		dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
	}
	if _, err := f.ReadSubsStaged(e, doms, now, locs, dsts, cert); err != nil {
		t.Fatal(err)
	}
	e.Run()
	return got
}

// TestReadCertFastPath proves the steady-state contract: while the chain is
// armed, a certified lookup's reads skip the validation walk (counted by
// CertifiedReads), deliver the same bytes, and a later lookup re-certifies.
func TestReadCertFastPath(t *testing.T) {
	f, tr, fl := certStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	payload := writeSuper(t, f, tr, e, doms, 0, 9)

	got := readStaged(t, f, tr, e, doms, sim.FromMicroseconds(10000), 9)
	if !bytes.Equal(got, payload) {
		t.Fatal("certified read-back bytes differ")
	}
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("CertifiedReads = %d, want 4", got)
	}
	if got := f.Stats().CertDisarms; got != 0 {
		t.Fatalf("CertDisarms = %d, want 0", got)
	}
	// The zero certificate (hand-built address lists) always walks.
	locs, err := tr.Lookup(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadSubsStaged(e, doms, sim.FromMicroseconds(20000), locs, nil, ftl.ReadCert{}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("uncertified read took the fast path: CertifiedReads = %d", got)
	}
}

// TestReadCertStaleWalks proves a certificate that predates the chain's
// current position walks without breaking the chain: the model is still
// trusted, so the next fresh lookup fast-paths again.
func TestReadCertStaleWalks(t *testing.T) {
	f, tr, fl := certStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	writeSuper(t, f, tr, e, doms, 0, 3)

	locs, stale, err := tr.LookupCertified(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Another certified plan moves the epoch past the stale certificate.
	writeSuper(t, f, tr, e, doms, sim.FromMicroseconds(5000), 4)

	if _, err := f.ReadSubsStaged(e, doms, sim.FromMicroseconds(10000), locs, nil, stale); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("stale certificate fast-pathed: CertifiedReads = %d", got)
	}
	if got := f.Stats().CertDisarms; got != 0 {
		t.Fatalf("stale certificate disarmed the chain: CertDisarms = %d", got)
	}
	// A fresh lookup is honored — the chain never broke.
	readStaged(t, f, tr, e, doms, sim.FromMicroseconds(20000), 3)
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("fresh certificate did not fast-path: CertifiedReads = %d", got)
	}
}

// TestReadCertRawOpDisarm proves a raw OCSSD program — the flash mutating
// outside the certified chain — disarms the read certificate exactly like
// the write side: the next certified read detects the foreign epoch, breaks
// the binding, and walks until AcceptCertified re-arms it.
func TestReadCertRawOpDisarm(t *testing.T) {
	f, tr, fl := certStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	payload := writeSuper(t, f, tr, e, doms, 0, 2)

	// Raw traffic into a block the FTL doesn't manage.
	rawLoc := ftl.PageLoc{SB: 7, Page: 0, Plane: 0, Sub: 0}
	rawAddr := tr.Address(rawLoc)
	rawAddr.Page = fl.NextProgramPage(rawAddr)
	if _, err := f.ProgramPage(sim.FromMicroseconds(5000), rawAddr, payload[:512]); err != nil {
		t.Fatal(err)
	}

	got := readStaged(t, f, tr, e, doms, sim.FromMicroseconds(10000), 2)
	if !bytes.Equal(got, payload) {
		t.Fatal("walked read-back bytes differ")
	}
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("read after raw op fast-pathed: CertifiedReads = %d", got)
	}
	if got := f.Stats().CertDisarms; got != 1 {
		t.Fatalf("CertDisarms = %d, want 1", got)
	}
	// Repeat reads keep walking — the break is latched, not re-drawn.
	readStaged(t, f, tr, e, doms, sim.FromMicroseconds(20000), 2)
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("read while disarmed fast-pathed: CertifiedReads = %d", got)
	}
	// AcceptCertified re-asserts lockstep; the fast path resumes.
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	readStaged(t, f, tr, e, doms, sim.FromMicroseconds(30000), 2)
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("re-armed read did not fast-path: CertifiedReads = %d", got)
	}
}

// TestReadCertPowerLossDisarm proves the cut drops the binding: reads walk
// after PowerLoss until AcceptCertified re-arms against a recovered FTL.
func TestReadCertPowerLossDisarm(t *testing.T) {
	f, tr, fl := certStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	writeSuper(t, f, tr, e, doms, 0, 5)

	f.PowerLoss()
	if got := f.Stats().CertDisarms; got != 1 {
		t.Fatalf("CertDisarms = %d, want 1", got)
	}
	readStaged(t, f, tr, e, doms, sim.FromMicroseconds(10000), 5)
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("read after power loss fast-pathed: CertifiedReads = %d", got)
	}
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	readStaged(t, f, tr, e, doms, sim.FromMicroseconds(20000), 5)
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("re-armed read did not fast-path: CertifiedReads = %d", got)
	}
}

// TestReadCertInjectedReadFaultsWalk proves armed read-fault draws suppress
// the fast path: the retry ladder runs per read and affects die occupancy,
// so a certified read must still walk — and the chain stays armed while it
// does.
func TestReadCertInjectedReadFaultsWalk(t *testing.T) {
	f, tr, fl := newFaultStack(t, nand.FaultConfig{Seed: 3, ReadFailProb: 0.01})
	tr.SetEpochSource(fl.StateEpoch)
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	payload := writeSuper(t, f, tr, e, doms, 0, 1)

	got := readStaged(t, f, tr, e, doms, sim.FromMicroseconds(10000), 1)
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back bytes differ under read faults")
	}
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("read with fault draws armed fast-pathed: CertifiedReads = %d", got)
	}
	if got := f.Stats().CertDisarms; got != 0 {
		t.Fatalf("read-fault walk disarmed the chain: CertDisarms = %d", got)
	}
}

// TestReadCertProgramFaultDisarm proves an injected program fault
// (*PlanFault) disarms the read side along with the write side: reads walk
// from the fault until recovery re-arms the chain.
func TestReadCertProgramFaultDisarm(t *testing.T) {
	f, tr, fl := newFaultStack(t, nand.FaultConfig{Seed: 5, ProgramFailProb: 0.02})
	tr.SetEpochSource(fl.StateEpoch)
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)

	payload := make([]byte, 4*512)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	dirty := []bool{true, true, true, true}
	var (
		pf        *PlanFault
		faulty    ftl.Plan
		faultLSPN int64
		otherLSPN int64 = -1 // last lspn written cleanly before the fault
	)
	now := sim.Time(0)
	for i := 0; pf == nil && i < 10000; i++ {
		lspn := int64(i % 8)
		plan, err := tr.Write(now, lspn, dirty)
		if err != nil {
			t.Fatal(err)
		}
		_, err = f.ExecuteOn(e, doms, now, plan, HostData(lspn, dirty, payload, 512))
		now += sim.FromMicroseconds(3000)
		if err == nil {
			otherLSPN = lspn
			continue
		}
		if !errors.As(err, &pf) {
			t.Fatalf("write %d: non-fault error: %v", i, err)
		}
		faulty = plan
		faultLSPN = lspn
	}
	if pf == nil {
		t.Fatal("no program fault drawn in 10000 writes; raise ProgramFailProb")
	}
	if otherLSPN < 0 {
		t.Fatal("fault on the very first write; no intact super-page to read")
	}
	e.Run()
	disarmsAtFault := f.Stats().CertDisarms
	if disarmsAtFault == 0 {
		t.Fatal("plan fault did not count a disarm")
	}

	// Reads of an intact, earlier super-page walk while disarmed.
	readStaged(t, f, tr, e, doms, now, otherLSPN)
	if got := f.Stats().CertifiedReads; got != 0 {
		t.Fatalf("read after plan fault fast-pathed: CertifiedReads = %d", got)
	}

	// Recover, re-arm, and the read fast path resumes with the chain.
	rplan, err := tr.RecoverPlanFault(now, faulty, pf.Executed, pf.Err)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ExecuteOn(e, doms, now, rplan, HostData(faultLSPN, dirty, payload, 512)); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := f.AcceptCertified(tr); err != nil {
		t.Fatal(err)
	}
	readStaged(t, f, tr, e, doms, now+sim.FromMicroseconds(10000), otherLSPN)
	if got := f.Stats().CertifiedReads; got != 4 {
		t.Fatalf("re-armed read did not fast-path: CertifiedReads = %d", got)
	}
}

// TestReadCertDisarmedMidBatchNoMutation proves the error contract survives
// the certificate plumbing: with the chain disarmed, a batch whose last
// address is invalid walks, fails up front, queues no completion events,
// writes no dst byte and moves no counter.
func TestReadCertDisarmedMidBatchNoMutation(t *testing.T) {
	f, tr, fl := certStack(t, true)
	e := sim.NewEngine()
	doms := chDomsFor(t, e, fl)
	writeSuper(t, f, tr, e, doms, 0, 6)

	locs, cert, err := tr.LookupCertified(nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AcceptCertified(nil); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats().CertDisarms; got != 1 {
		t.Fatalf("CertDisarms = %d, want 1", got)
	}
	// An unwritten page at the end of the batch: the walk must catch it
	// before any earlier read issues.
	locs = append(locs, ftl.PageLoc{SB: 7, Page: 3, Plane: 0, Sub: 0})
	got := make([]byte, 4*512)
	dsts := make([][]byte, len(locs))
	for i, l := range locs[:len(locs)-1] {
		dsts[i] = got[l.Sub*512 : (l.Sub+1)*512]
	}
	dsts[len(locs)-1] = make([]byte, 512)
	statsBefore, flashBefore := f.Stats(), fl.Stats()
	if _, err := f.ReadSubsStaged(e, doms, sim.FromMicroseconds(10000), locs, dsts, cert); err == nil {
		t.Fatal("batch with unwritten page accepted")
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events queued by a rejected batch", e.Pending())
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("dst byte %d written by a rejected batch", i)
		}
	}
	if got := f.Stats(); got != statsBefore {
		t.Fatalf("fil counters moved on rejection: %+v -> %+v", statsBefore, got)
	}
	if got := fl.Stats(); got != flashBefore {
		t.Fatalf("flash counters moved on rejection: %+v -> %+v", flashBefore, got)
	}
}
