package exp

import (
	"fmt"
	"time"

	"amber/internal/baseline"
	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/cpu"
	"amber/internal/host"
	"amber/internal/refdata"
	"amber/internal/sim"
	"amber/internal/stats"
	"amber/internal/workload"
)

// TableI reports the reverse-engineered hardware configuration of the
// validation device (the paper's Table I), as instantiated by the preset.
func TableI(o Options) (*Table, error) {
	d, err := config.Device("intel750")
	if err != nil {
		return nil, err
	}
	g := d.Geometry
	t := &Table{
		ID:     "table1",
		Title:  "Hardware configuration of real device (Intel 750 preset)",
		Header: []string{"parameter", "value"},
		Rows: [][]string{
			{"tPROG (us)", fmt.Sprintf("%.2f / %.0f", d.Flash.ProgFast.Microseconds(), d.Flash.ProgSlow.Microseconds())},
			{"tR (us)", fmt.Sprintf("%.3f / %.3f", d.Flash.ReadFast.Microseconds(), d.Flash.ReadSlow.Microseconds())},
			{"tERASE (us)", f0(d.Flash.Erase.Microseconds())},
			{"channels", fmt.Sprint(g.Channels)},
			{"packages/channel", fmt.Sprint(g.PackagesPerChannel)},
			{"dies/package", fmt.Sprint(g.DiesPerPackage)},
			{"planes/die", fmt.Sprint(g.PlanesPerDie)},
			{"blocks/plane", fmt.Sprint(g.BlocksPerPlane) + " (scaled from 512)"},
			{"pages/block", fmt.Sprint(g.PagesPerBlock) + " (scaled from 512)"},
			{"internal DRAM", fmt.Sprintf("%d MB, %d ch, %d rank, %d banks", d.DRAM.CapacityBytes>>20, d.DRAM.Channels, d.DRAM.RanksPerChannel, d.DRAM.BanksPerRank)},
			{"flash bus", fmt.Sprintf("ONFi %d MT/s", int(d.Flash.BusMTps))},
			{"interface", d.Protocol.Kind.String()},
			{"over-provisioning", pct(d.OPRatio)},
		},
	}
	return t, nil
}

// Figure3 compares the bandwidth-vs-depth curves of the four baseline
// simulators with the real-device reference and Amber's full model
// (the paper's motivation figure).
func Figure3(o Options) (*Table, error) { return baselineFigure(o, false) }

// Figure4 is the latency version of Figure3.
func Figure4(o Options) (*Table, error) { return baselineFigure(o, true) }

func baselineFigure(o Options, latency bool) (*Table, error) {
	id, title := "fig3", "Bandwidth (MB/s) vs I/O depth: existing simulators vs real device vs Amber"
	if latency {
		id, title = "fig4", "Latency (us) vs I/O depth: existing simulators vs real device vs Amber"
	}
	depths := o.depths()
	n := o.requests(2000)
	t := &Table{ID: id, Title: title}
	t.Header = []string{"pattern", "model"}
	for _, d := range depths {
		t.Header = append(t.Header, fmt.Sprintf("qd%d", d))
	}

	pats := patterns()

	// Amber: one task per (pattern, depth) sweep point, each owning a
	// freshly built and preconditioned System, so the whole depth axis fans
	// out under Options.Parallel like fig8/9/10 do per device.
	//
	// Preconditioning-state methodology: the depth axis used to be swept on
	// one shared preconditioned system per pattern, so each point inherited
	// the cache contents and (for writes) the mapping/GC state left by the
	// previous depth's run — qd32's number depended on qd1..qd24 having run
	// first. Per-point systems pin the choice to "every point starts from
	// the same freshly preconditioned steady state" (the paper's FIO
	// methodology: precondition, then measure each configuration), which
	// makes the points order-independent and deterministic at any worker
	// count, at the cost of repeating preconditioning once per point.
	vals := make([]float64, len(pats)*len(depths))
	err := forEach(o, len(vals), func(ti int) error {
		pi, di := ti/len(depths), ti%len(depths)
		amber, err := newSystem("intel750", nil)
		if err != nil {
			return err
		}
		res, err := runPoint(o, amber, pats[pi], 4096, depths[di], n)
		if err != nil {
			return err
		}
		if latency {
			vals[ti] = res.AvgLatencyUs()
		} else {
			vals[ti] = res.BandwidthMBps()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Reference curves and baseline replays are deterministic and cheap;
	// assemble them inline around the fanned-out amber values.
	for pi, p := range pats {
		refBW, err := refdata.Bandwidth("intel750", p)
		if err != nil {
			return nil, err
		}
		refLat, err := refdata.Latency("intel750", p)
		if err != nil {
			return nil, err
		}
		row := []string{p.String(), "real-device"}
		for _, d := range depths {
			i := depthIndex(d)
			if latency {
				row = append(row, f1(refLat[i]))
			} else {
				row = append(row, f0(refBW[i]))
			}
		}
		t.Rows = append(t.Rows, row)

		for _, b := range baseline.All() {
			row := []string{p.String(), b.Name()}
			for _, d := range depths {
				r := b.Replay(p, 4096, d, n)
				if latency {
					row = append(row, f1(r.LatencyUs))
				} else {
					row = append(row, f0(r.BandwidthMBps))
				}
			}
			t.Rows = append(t.Rows, row)
		}

		row = []string{p.String(), "amber"}
		for di := range depths {
			if latency {
				row = append(row, f1(vals[pi*len(depths)+di]))
			} else {
				row = append(row, f0(vals[pi*len(depths)+di]))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"mqsim-like grows linearly (no interface ceiling), ssdsim-like never saturates,",
		"ssdext/flashsim-like are flat (serialized single path); amber follows the device's curve shape.",
		"each amber (pattern, depth) point runs on its own freshly preconditioned device (no state carryover between points).")
	return t, nil
}

func depthIndex(d int) int {
	for i, v := range refdata.Depths {
		if v == d {
			return i
		}
	}
	return 0
}

// Figure8 validates Amber's bandwidth curves against the four reference
// devices and reports mean accuracy per pattern (paper Fig. 8).
func Figure8(o Options) (*Table, error) { return validationFigure(o, false) }

// Figure9 is the latency version (paper Fig. 9).
func Figure9(o Options) (*Table, error) { return validationFigure(o, true) }

func validationFigure(o Options, latency bool) (*Table, error) {
	id, title := "fig8", "Amber vs real devices: bandwidth (MB/s) and accuracy"
	if latency {
		id, title = "fig9", "Amber vs real devices: latency (us) and accuracy"
	}
	depths := o.depths()
	n := o.requests(2000)
	t := &Table{ID: id, Title: title}
	t.Header = []string{"device", "pattern", "series"}
	for _, d := range depths {
		t.Header = append(t.Header, fmt.Sprintf("qd%d", d))
	}
	t.Header = append(t.Header, "accuracy")

	// One task per reference device: each owns its simulated system and
	// sweeps patterns x depths on it exactly as the serial run did.
	devs := refdata.DeviceNames()
	rowsPerDev := make([][][]string, len(devs))
	err := forEach(o, len(devs), func(di int) error {
		dev := devs[di]
		s, err := newSystem(dev, nil)
		if err != nil {
			return err
		}
		var rows [][]string
		for _, p := range patterns() {
			refBW, err := refdata.Bandwidth(dev, p)
			if err != nil {
				return err
			}
			refLat, err := refdata.Latency(dev, p)
			if err != nil {
				return err
			}
			var refRow, simRow []float64
			for _, d := range depths {
				i := depthIndex(d)
				res, err := runPoint(o, s, p, 4096, d, n)
				if err != nil {
					return err
				}
				if latency {
					refRow = append(refRow, refLat[i])
					simRow = append(simRow, res.AvgLatencyUs())
				} else {
					refRow = append(refRow, refBW[i])
					simRow = append(simRow, res.BandwidthMBps())
				}
			}
			acc, err := stats.MeanAccuracy(refRow, simRow)
			if err != nil {
				return err
			}
			rr := []string{dev, p.String(), "real"}
			sr := []string{dev, p.String(), "amber"}
			for i := range depths {
				rr = append(rr, f0(refRow[i]))
				sr = append(sr, f0(simRow[i]))
			}
			rr = append(rr, "")
			sr = append(sr, pct(acc))
			rows = append(rows, rr, sr)
		}
		rowsPerDev[di] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPerDev {
		t.Rows = append(t.Rows, rows...)
	}
	t.Notes = append(t.Notes, "accuracy = mean(1 - |real-sim|/real) across the depth axis, the paper's metric.")
	return t, nil
}

// Figure10 sweeps block size from 4 KiB to 1024 KiB at depth 32 and
// reports per-device error rates (paper Fig. 10).
func Figure10(o Options) (*Table, error) {
	n := o.requests(1200)
	sizes := refdata.BlockSizesKiB
	if o.Quick {
		sizes = []int{4, 64, 1024}
	}
	t := &Table{ID: "fig10", Title: "Bandwidth (MB/s) vs block size at qd32, with error rates"}
	t.Header = []string{"device", "pattern", "series"}
	for _, kb := range sizes {
		t.Header = append(t.Header, fmt.Sprintf("%dK", kb))
	}
	t.Header = append(t.Header, "mean-err")

	devs := refdata.DeviceNames()
	rowsPerDev := make([][][]string, len(devs))
	err := forEach(o, len(devs), func(di int) error {
		dev := devs[di]
		s, err := newSystem(dev, nil)
		if err != nil {
			return err
		}
		var rows [][]string
		for _, p := range patterns() {
			refAll, err := refdata.BlockBandwidth(dev, p)
			if err != nil {
				return err
			}
			var refRow, simRow []float64
			for _, kb := range sizes {
				idx := 0
				for i, v := range refdata.BlockSizesKiB {
					if v == kb {
						idx = i
					}
				}
				refRow = append(refRow, refAll[idx])
				nn := n
				if kb >= 256 {
					nn = n / 4 // large blocks move 64x the data per request
				}
				res, err := runPoint(o, s, p, kb*1024, 32, nn)
				if err != nil {
					return err
				}
				simRow = append(simRow, res.BandwidthMBps())
			}
			var errSum float64
			for i := range refRow {
				errSum += stats.ErrorRate(refRow[i], simRow[i])
			}
			meanErr := errSum / float64(len(refRow))
			rr := []string{dev, p.String(), "real"}
			sr := []string{dev, p.String(), "amber"}
			for i := range refRow {
				rr = append(rr, f0(refRow[i]))
				sr = append(sr, f0(simRow[i]))
			}
			rr = append(rr, "")
			sr = append(sr, pct(meanErr))
			rows = append(rows, rr, sr)
		}
		rowsPerDev[di] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPerDev {
		t.Rows = append(t.Rows, rows...)
	}
	return t, nil
}

// Figure11 sweeps the over-provisioning ratio (20/15/10/5%) under the
// paper's worst-case stress (random writes of 2x the volume into a
// steady-state device) and reports normalized write bandwidth (Fig. 11).
func Figure11(o Options) (*Table, error) {
	n := o.requests(3000)
	ops := []float64{0.20, 0.15, 0.10, 0.05}
	sizes := []int{4096, 65536}
	if o.Quick {
		sizes = []int{4096}
	}
	t := &Table{ID: "fig11", Title: "Normalized random-write bandwidth vs over-provisioning ratio (stress: 2x volume random overwrite)"}
	t.Header = []string{"block"}
	for _, op := range ops {
		t.Header = append(t.Header, pct(op))
	}

	// Every (block size, OP ratio) point stresses its own device from
	// scratch: a fully independent task.
	bws := make([]float64, len(sizes)*len(ops))
	err := forEach(o, len(bws), func(ti int) error {
		bs := sizes[ti/len(ops)]
		op := ops[ti%len(ops)]
		d, err := config.Device("intel750")
		if err != nil {
			return err
		}
		d.OPRatio = op
		cfg := config.PCSystem(d)
		s, err := core.NewSystem(cfg)
		if err != nil {
			return err
		}
		if err := s.Precondition(32); err != nil {
			return err
		}
		// Worst-case stress: random overwrite of 2x the volume.
		if err := s.StressFill(bs, 0.25); err != nil {
			return err
		}
		s.Drain()
		res, err := runPoint(o, s, workload.RandWrite, bs, 32, n)
		if err != nil {
			return err
		}
		bws[ti] = res.BandwidthMBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, bs := range sizes {
		base := bws[si*len(ops)]
		row := []string{fmt.Sprintf("%dK", bs/1024)}
		for oi := range ops {
			row = append(row, fmt.Sprintf("%.2f", bws[si*len(ops)+oi]/base))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "paper: 15/10/5% OP drop to ~0.66/0.38/0.12 of the 20% OP bandwidth (drops of 33.7/62.1/87.9%).")
	return t, nil
}

// Figure12 compares the Linux 4.4 (CFQ) and 4.14 (BFQ) storage stacks over
// NVMe and SATA across the Table III workloads (paper Fig. 12).
func Figure12(o Options) (*Table, error) {
	n := o.requests(2500)
	t := &Table{ID: "fig12", Title: "Performance impact of OS version (kernel 4.4/CFQ vs 4.14/BFQ), MB/s"}
	t.Header = []string{"interface", "workload", "kernel4.4 (CFQ)", "kernel4.14 (BFQ)", "4.4/4.14"}

	ifaces := []string{"nvme", "sata"}
	traces := workload.Traces()
	scheds := []host.SchedulerKind{host.CFQ, host.BFQ}
	// One task per (interface, trace, scheduler): each builds its own
	// preconditioned system.
	bw := make([]float64, len(ifaces)*len(traces)*len(scheds))
	err := forEach(o, len(bw), func(ti int) error {
		ii := ti / (len(traces) * len(scheds))
		rest := ti % (len(traces) * len(scheds))
		wi, si := rest/len(scheds), rest%len(scheds)
		dev := "intel750"
		if ifaces[ii] == "sata" {
			dev = "850pro"
		}
		sched := scheds[si]
		s, err := newSystem(dev, func(c *core.SystemConfig) {
			c.Host.Scheduler = sched
		})
		if err != nil {
			return err
		}
		gen, err := workload.NewTrace(traces[wi], s.VolumeBytes(), 13)
		if err != nil {
			return err
		}
		res, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: 32})
		if err != nil {
			return err
		}
		bw[ti] = res.BandwidthMBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ii, iface := range ifaces {
		for wi, tp := range traces {
			base := (ii*len(traces) + wi) * len(scheds)
			cfq, bfq := bw[base], bw[base+1]
			t.Rows = append(t.Rows, []string{
				iface, tp.TraceName, f0(cfq), f0(bfq), fmt.Sprintf("%.2f", cfq/bfq),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: kernel 4.4 underperforms 4.14 by ~63% (reads) / ~69% (writes) on average.")
	return t, nil
}

// Figure13a compares handheld (UFS) and general (NVMe) computing across
// the Table III workloads on the mobile platform (paper Fig. 13a).
func Figure13a(o Options) (*Table, error) {
	n := o.requests(2500)
	t := &Table{ID: "fig13a", Title: "Handheld vs general computing: UFS vs NVMe bandwidth (MB/s), mobile host"}
	t.Header = []string{"workload", "ufs", "nvme", "nvme/ufs"}

	traces := workload.Traces()
	devs := []string{"ufs", "mobile-nvme"}
	bw := make([]float64, len(traces)*len(devs))
	err := forEach(o, len(bw), func(ti int) error {
		tp := traces[ti/len(devs)]
		dev := devs[ti%len(devs)]
		d, err := config.Device(dev)
		if err != nil {
			return err
		}
		s, err := core.NewSystem(config.MobileSystem(d))
		if err != nil {
			return err
		}
		if err := s.Precondition(32); err != nil {
			return err
		}
		gen, err := workload.NewTrace(tp, s.VolumeBytes(), 17)
		if err != nil {
			return err
		}
		res, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: 32})
		if err != nil {
			return err
		}
		bw[ti] = res.BandwidthMBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var ratios float64
	for wi, tp := range traces {
		ufs, nvme := bw[wi*2], bw[wi*2+1]
		ratios += nvme / ufs
		t.Rows = append(t.Rows, []string{tp.TraceName, f0(ufs), f0(nvme), fmt.Sprintf("%.2f", nvme/ufs)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean NVMe/UFS ratio = %.2f (paper: 1.81x, limited by low mobile compute for small workloads).", ratios/float64(len(traces))))
	return t, nil
}

// Figure13b breaks down SSD power (CPU / DRAM / NAND) for UFS and NVMe
// (paper Fig. 13b).
func Figure13b(o Options) (*Table, error) {
	n := o.requests(3000)
	t := &Table{ID: "fig13b", Title: "SSD power breakdown (W): embedded CPU vs DRAM vs NAND"}
	t.Header = []string{"interface", "cpu", "dram", "nand", "total"}

	devs := []string{"ufs", "mobile-nvme"}
	rows := make([][]string, len(devs))
	err := forEach(o, len(devs), func(di int) error {
		d, err := config.Device(devs[di])
		if err != nil {
			return err
		}
		s, err := core.NewSystem(config.MobileSystem(d))
		if err != nil {
			return err
		}
		if err := s.Precondition(32); err != nil {
			return err
		}
		gen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 19)
		if err != nil {
			return err
		}
		cpu0 := s.DevCPU.EnergyJoules()
		dram0 := s.DevDRAM.EnergyJoules()
		nand0 := s.Flash.EnergyJoules()
		res, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: 32})
		if err != nil {
			return err
		}
		el := res.Elapsed()
		// Windowed power: dynamic-energy delta over the run, plus the
		// components' background/leakage terms for the same window.
		window := func(dyn0, dynNow, totalWindow, dynCum float64) float64 {
			bg := totalWindow - dynCum // leakage/background charged for el
			if bg < 0 {
				bg = 0
			}
			return (dynNow - dyn0 + bg) / el.Seconds()
		}
		cpuW := window(cpu0, s.DevCPU.EnergyJoules(), s.DevCPU.TotalEnergyJoules(el), s.DevCPU.EnergyJoules())
		dramW := window(dram0, s.DevDRAM.EnergyJoules(), s.DevDRAM.TotalEnergyJoules(el), s.DevDRAM.EnergyJoules())
		nandW := window(nand0, s.Flash.EnergyJoules(), s.Flash.TotalEnergyJoules(el), s.Flash.EnergyJoules())
		rows[di] = []string{
			s.Protocol().Kind.String(), fmt.Sprintf("%.2f", cpuW), fmt.Sprintf("%.2f", dramW),
			fmt.Sprintf("%.2f", nandW), fmt.Sprintf("%.2f", cpuW+dramW+nandW),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "paper: the embedded CPU is the most power-hungry component; UFS total ~2W, mostly CPU.")
	return t, nil
}

// Figure13c breaks down executed firmware instructions by category for UFS
// and NVMe over the same wall-clock window (paper Fig. 13c).
func Figure13c(o Options) (*Table, error) {
	n := o.requests(3000)
	t := &Table{ID: "fig13c", Title: "Firmware instruction breakdown (millions) over an equal time window"}
	t.Header = []string{"interface", "branch", "load", "store", "arith", "fp", "other", "total", "ld/st frac"}

	type devRun struct {
		kind string
		m    cpu.InstrMix // delta over the measured run
		el   sim.Duration
	}
	devs := []string{"ufs", "mobile-nvme"}
	runs := make([]devRun, len(devs))
	err := forEach(o, len(devs), func(di int) error {
		d, err := config.Device(devs[di])
		if err != nil {
			return err
		}
		s, err := core.NewSystem(config.MobileSystem(d))
		if err != nil {
			return err
		}
		if err := s.Precondition(32); err != nil {
			return err
		}
		base := s.DevCPU.Instructions()
		gen, err := workload.NewFIO(workload.RandRead, 4096, s.VolumeBytes(), 23)
		if err != nil {
			return err
		}
		res, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: 32})
		if err != nil {
			return err
		}
		m := s.DevCPU.Instructions()
		m.Branch -= base.Branch
		m.Load -= base.Load
		m.Store -= base.Store
		m.Arith -= base.Arith
		m.FP -= base.FP
		m.Other -= base.Other
		runs[di] = devRun{kind: s.Protocol().Kind.String(), m: m, el: res.Elapsed()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Normalize both devices to the first run's time window: the paper
	// counts instructions executed "within a same time period".
	window := runs[0].el
	var totals []float64
	for _, r := range runs {
		scale := window.Seconds() / r.el.Seconds()
		mm := func(v uint64) string { return fmt.Sprintf("%.2f", float64(v)*scale/1e6) }
		tot := float64(r.m.Total()) * scale
		totals = append(totals, tot)
		t.Rows = append(t.Rows, []string{
			r.kind, mm(r.m.Branch), mm(r.m.Load), mm(r.m.Store), mm(r.m.Arith), mm(r.m.FP), mm(r.m.Other),
			fmt.Sprintf("%.2f", tot/1e6), fmt.Sprintf("%.2f", r.m.LoadStoreFraction()),
		})
	}
	if len(totals) == 2 && totals[0] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("NVMe executes %.2fx the UFS instructions in the same window (paper: 5.45x); loads+stores dominate (~60%%).", totals[1]/totals[0]))
	}
	return t, nil
}

// Figure14 sweeps the host CPU frequency from 2 to 8 GHz against the
// fastest device (Z-SSD) and reports device-level, interface-level and
// user-level sequential read bandwidth (paper Fig. 14).
func Figure14(o Options) (*Table, error) {
	n := o.requests(3000)
	freqs := []float64{2000, 4000, 6000, 8000}
	if o.Quick {
		freqs = []float64{2000, 8000}
	}
	t := &Table{ID: "fig14", Title: "Z-SSD sequential-read bandwidth (MB/s) vs host CPU frequency"}
	t.Header = []string{"host freq", "device-level", "interface-level", "user-level", "loss"}

	d, err := config.Device("zssd")
	if err != nil {
		return nil, err
	}
	// Device-level: the storage backend's aggregate streaming ability
	// (channels x bus rate), before any interface or host effect.
	deviceLevel := float64(d.Geometry.Channels) * d.Flash.BusMTps * 1e6 / 1e6 // MB/s
	ifaceLevel := d.Protocol.LinkBytesPerSec / 1e6
	if ifaceLevel > deviceLevel {
		ifaceLevel = deviceLevel
	}
	user := make([]float64, len(freqs))
	err = forEach(o, len(freqs), func(fi int) error {
		f := freqs[fi]
		s, err := newSystem("zssd", func(c *core.SystemConfig) {
			c.Host.FreqMHz = f
		})
		if err != nil {
			return err
		}
		res, err := runPoint(o, s, workload.SeqRead, 131072, 32, n/4)
		if err != nil {
			return err
		}
		user[fi] = res.BandwidthMBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, f := range freqs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0fGHz", f/1000), f0(deviceLevel), f0(ifaceLevel), f0(user[fi]),
			pct(1 - user[fi]/deviceLevel),
		})
	}
	t.Notes = append(t.Notes, "paper: kernel execution at 2GHz costs 41% of device-level bandwidth, recovering to 29% at 8GHz.")
	return t, nil
}

// Figure15a compares NVMe (active) and OCSSD+pblk (passive) bandwidth for
// small and large blocks (paper Fig. 15a).
func Figure15a(o Options) (*Table, error) {
	n := o.requests(2000)
	t := &Table{ID: "fig15a", Title: "Active (NVMe) vs passive (OCSSD+pblk) bandwidth (MB/s)"}
	t.Header = []string{"pattern", "block", "nvme", "ocssd", "ocssd/nvme"}

	pats := []workload.Pattern{workload.RandRead, workload.RandWrite, workload.SeqRead, workload.SeqWrite}
	blocks := []int{4096, 65536}
	devs := []string{"intel750", "ocssd"}
	bw := make([]float64, len(pats)*len(blocks)*len(devs))
	err := forEach(o, len(bw), func(ti int) error {
		pi := ti / (len(blocks) * len(devs))
		rest := ti % (len(blocks) * len(devs))
		bi, di := rest/len(devs), rest%len(devs)
		s, err := newSystem(devs[di], nil)
		if err != nil {
			return err
		}
		nn := n
		if blocks[bi] > 4096 {
			nn = n / 4
		}
		res, err := runPoint(o, s, pats[pi], blocks[bi], 32, nn)
		if err != nil {
			return err
		}
		bw[ti] = res.BandwidthMBps()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range pats {
		for bi, bs := range blocks {
			base := (pi*len(blocks) + bi) * len(devs)
			nvme, ocssd := bw[base], bw[base+1]
			t.Rows = append(t.Rows, []string{
				p.String(), fmt.Sprintf("%dK", bs/1024), f0(nvme), f0(ocssd),
				fmt.Sprintf("%.2f", ocssd/nvme),
			})
		}
	}
	t.Notes = append(t.Notes, "paper: OCSSD wins ~30% at 4K (host-side buffering), NVMe wins ~20% at 64K (kernel buffer limits).")
	return t, nil
}

// Figure15b samples kernel CPU utilization over the write-then-read phases
// for NVMe and OCSSD (paper Fig. 15b).
func Figure15b(o Options) (*Table, error) { return passiveSeries(o, false) }

// Figure15c samples total host DRAM usage over the same phases (Fig. 15c).
func Figure15c(o Options) (*Table, error) { return passiveSeries(o, true) }

func passiveSeries(o Options, mem bool) (*Table, error) {
	id, title := "fig15b", "Kernel CPU utilization (%) over time: NVMe vs OCSSD"
	if mem {
		id, title = "fig15c", "Host DRAM usage (MB) over time: NVMe vs OCSSD"
	}
	n := o.requests(4000)
	t := &Table{ID: id, Title: title}
	t.Header = []string{"device", "phase", "mean", "max"}

	devs := []string{"intel750", "ocssd"}
	rowsPerDev := make([][][]string, len(devs))
	err := forEach(o, len(devs), func(di int) error {
		dev := devs[di]
		s, err := newSystem(dev, nil)
		if err != nil {
			return err
		}
		runMem := int64(280 << 20) // FIO + NVMe protocol management (~280MB)
		if dev == "ocssd" {
			runMem = 120 << 20 // pblk holds its 64MB at init; FIO footprint smaller
		}
		gen, err := workload.NewMixed("write-then-read", n/2, 4096, s.VolumeBytes()/4, 29)
		if err != nil {
			return err
		}
		res, err := s.Run(gen, core.RunConfig{
			Requests: n, IODepth: 32,
			SampleEvery: sim.Millisecond,
			RunMemBytes: runMem,
		})
		if err != nil {
			return err
		}
		series := res.HostCPUUtil
		scale := 100.0
		if mem {
			series = res.HostMemMB
			scale = 1
		}
		// Split samples at the write->read boundary (half the requests).
		var rows [][]string
		half := len(series.Points) / 2
		phase := func(name string, pts []stats.Point) {
			sub := stats.Series{Points: pts}
			rows = append(rows, []string{
				dev, name, f1(sub.Mean() * scale), f1(sub.Max() * scale),
			})
		}
		if half > 0 {
			phase("write", series.Points[:half])
			phase("read", series.Points[half:])
		} else {
			phase("all", series.Points)
		}
		rowsPerDev[di] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsPerDev {
		t.Rows = append(t.Rows, rows...)
	}
	if mem {
		t.Notes = append(t.Notes, "paper: pblk allocates ~64MB at init and reuses it; FIO+NVMe needs ~280MB.")
	} else {
		t.Notes = append(t.Notes, "paper: after warm-up OCSSD consumes ~50% of the 4 cores, NVMe only ~10%.")
	}
	return t, nil
}

// Figure16 measures simulation speed: wall-clock time for the baseline
// simulators vs the full Amber stack over the same request count
// (paper Fig. 16). It always runs serially: concurrent simulations would
// contend for cores and distort the wall-clock metric being measured.
func Figure16(o Options) (*Table, error) {
	n := o.requests(5000)
	t := &Table{ID: "fig16", Title: "Simulation speed: wall-clock seconds per 100k simulated 4K requests"}
	t.Header = []string{"simulator", "wall s/100k reqs", "sim-reqs/s"}
	for _, b := range baseline.All() {
		start := time.Now()
		b.Replay(workload.RandRead, 4096, 16, n)
		el := time.Since(start).Seconds()
		t.Rows = append(t.Rows, []string{
			b.Name(), fmt.Sprintf("%.3f", el/float64(n)*1e5), f0(float64(n) / el),
		})
	}
	s, err := newSystem("intel750", nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if _, err := runPoint(o, s, workload.RandRead, 4096, 16, n); err != nil {
		return nil, err
	}
	el := time.Since(start).Seconds()
	t.Rows = append(t.Rows, []string{
		"amber (full system)", fmt.Sprintf("%.3f", el/float64(n)*1e5), f0(float64(n) / el),
	})
	t.Notes = append(t.Notes, "amber simulates every SSD resource plus the host stack; the baselines replay traces against skeleton models.")
	return t, nil
}

// TableIV prints the feature matrix of Table IV by probing the
// implementation's actual capabilities.
func TableIV(o Options) (*Table, error) {
	t := &Table{ID: "table4", Title: "Feature comparison (this implementation's capabilities)"}
	t.Header = []string{"feature", "supported", "where"}
	rows := [][]string{
		{"standalone full-system simulation", "yes", "core.System"},
		{"SATA / UFS / NVMe / OCSSD", "yes", "proto, core"},
		{"computation complex (CPU+DRAM)", "yes", "cpu, dram"},
		{"storage complex w/ transaction timing", "yes", "nand, fil"},
		{"super-page/super-block striping", "yes", "ftl"},
		{"ISPP latency variation", "yes", "nand.Timing.ISPPJitter"},
		{"configurable cache + readahead", "yes", "icl"},
		{"page-level mapping + partial update", "yes", "ftl"},
		{"GC greedy/cost-benefit + wear-leveling", "yes", "ftl"},
		{"CPU/DRAM/NAND power + energy", "yes", "cpu, dram, nand"},
		{"dynamic firmware execution accounting", "yes", "cpu.InstrMix"},
		{"queue arbitration (FIFO/RR/WRR)", "yes", "hil.Arbiter"},
		{"data transfer emulation (real bytes)", "yes", "dma, nand.Options.TrackData"},
		{"functional + timing DMA modes", "yes", "dma.Mode"},
		{"parallel multi-system experiment harness", "yes", "exp.Options.Parallel"},
		{"intra-device parallel dispatch (horizon-synchronized)", "yes", "sim.Engine.RunParallel, core.RunConfig.IntraWorkers"},
	}
	t.Rows = rows
	return t, nil
}

// All returns every experiment in paper order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"table1", TableI},
		{"fig3", Figure3},
		{"fig4", Figure4},
		{"fig8", Figure8},
		{"fig9", Figure9},
		{"fig10", Figure10},
		{"fig11", Figure11},
		{"fig12", Figure12},
		{"fig13a", Figure13a},
		{"fig13b", Figure13b},
		{"fig13c", Figure13c},
		{"fig14", Figure14},
		{"fig15a", Figure15a},
		{"fig15b", Figure15b},
		{"fig15c", Figure15c},
		{"fig16", Figure16},
		{"table4", TableIV},
	}
}
