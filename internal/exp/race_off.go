//go:build !race

package exp

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
