package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun is the integration smoke test: every table/figure
// regenerates without error in quick mode and produces plausible content.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds each")
	}
	o := Options{Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tab.String()
			if !strings.Contains(out, tab.Title) {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.String()
	for _, want := range []string{"== x: T ==", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	full := Options{}
	quick := Options{Quick: true}
	if quick.requests(4000) >= full.requests(4000) {
		t.Fatal("quick mode should reduce requests")
	}
	if len(quick.depths()) >= len(full.depths()) {
		t.Fatal("quick mode should reduce depth resolution")
	}
}
