package exp

import (
	"strings"
	"testing"
)

// TestAllExperimentsRun is the integration smoke test: every table/figure
// regenerates without error in quick mode and produces plausible content.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds each")
	}
	o := Options{Quick: true}
	// The slowest sweeps take minutes each under the race detector (5-10x
	// slowdown), which blows the package past the test timeout on slow
	// hosts; their dispatch machinery is identical to the cheap
	// experiments', so -race runs skip them.
	// fig8 duplicates fig9's machinery (same validation sweep, bandwidth vs
	// latency view), so skipping it costs no race coverage.
	heavy := map[string]bool{"fig3": true, "fig4": true, "fig8": true, "fig10": true, "fig11": true, "fig12": true, "fig15a": true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if raceDetectorEnabled && heavy[e.ID] {
				t.Skip("multi-minute sweep skipped under -race")
			}
			tab, err := e.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tab.String()
			if !strings.Contains(out, tab.Title) {
				t.Fatal("render missing title")
			}
		})
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.String()
	for _, want := range []string{"== x: T ==", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	full := Options{}
	quick := Options{Quick: true}
	if quick.requests(4000) >= full.requests(4000) {
		t.Fatal("quick mode should reduce requests")
	}
	if len(quick.depths()) >= len(full.depths()) {
		t.Fatal("quick mode should reduce depth resolution")
	}
}

// TestParallelDeterminism locks in the harness guarantee: an experiment
// fanned out over workers produces a table byte-identical to the serial
// run, because every task owns its systems and writes into an
// index-addressed slot.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full quick experiments")
	}
	serial, err := Figure14(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Figure14(Options{Quick: true, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != par.String() {
		t.Fatalf("parallel run diverged from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

// TestIntraWorkersDeterminism locks in the orthogonal guarantee for
// horizon-synchronized dispatch inside each measured run: tables are
// byte-identical whether the runs dispatch serially or step their channel
// shards concurrently (the engine-level contract of
// sim.Engine.RunParallel, surfaced through Options.IntraWorkers).
func TestIntraWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full quick experiments")
	}
	serial, err := Figure14(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	intra, err := Figure14(Options{Quick: true, IntraWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != intra.String() {
		t.Fatalf("intra-parallel run diverged from serial:\n--- serial ---\n%s--- intra ---\n%s", serial, intra)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	errs := []error{nil, errTest(1), errTest(2)}
	got := forEach(Options{Parallel: 3}, 3, func(i int) error { return errs[i] })
	if got != errs[1] {
		t.Fatalf("forEach returned %v, want the lowest-index error %v", got, errs[1])
	}
	if err := forEach(Options{}, 3, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

type errTest int

func (e errTest) Error() string { return "task error" }
