package exp

import (
	"runtime"
	"sync"
)

// Workers returns the effective worker count for fanning independent
// simulations out: o.Parallel when set, else 1 (serial). A zero/negative
// value keeps the historical serial behavior so existing callers are
// unaffected.
func (o Options) workers() int {
	if o.Parallel > 1 {
		return o.Parallel
	}
	return 1
}

// AutoParallel returns a reasonable worker count for this machine.
func AutoParallel() int {
	n := runtime.NumCPU()
	if n < 1 {
		return 1
	}
	return n
}

// forEach runs n independent tasks over the experiment's worker pool.
func forEach(o Options, n int, task func(i int) error) error {
	return ForEach(o.workers(), n, task)
}

// ForEach runs n independent simulation tasks over up to `workers`
// goroutines (<= 1 means serial, with short-circuit on first error).
// Each core.System is single-threaded by design, so the fan-out is across
// systems: every task must build and own its private System(s) and write
// its result into a dedicated slot, which keeps the assembled output
// byte-identical to a serial run regardless of scheduling. The first
// error (by task index, deterministically) is returned. Exported for the
// cmds that fan device simulations out the same way.
func ForEach(workers, n int, task func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = task(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
