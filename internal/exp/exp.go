// Package exp regenerates every table and figure of the paper's
// evaluation (§V): each Figure*/Table* function runs the corresponding
// experiment on the simulator and returns a printable table with the same
// rows/series the paper reports. cmd/amberbench and the root bench suite
// are thin wrappers over this package.
package exp

import (
	"fmt"
	"io"
	"strings"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/workload"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // "fig8", "table1", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Options scales experiment effort: Quick shrinks request counts and
// sweep resolution so the whole suite runs in seconds (used by unit tests
// and the bench harness); the default is the full evaluation.
type Options struct {
	Quick bool
	// Parallel is the number of independent device configurations to
	// simulate concurrently within one experiment (each core.System stays
	// single-threaded; the fan-out is across systems). Values <= 1 run
	// serially. Results are byte-identical at any worker count: every
	// task owns its systems and writes into an index-addressed slot.
	Parallel int
	// IntraWorkers enables horizon-synchronized parallel dispatch inside
	// each measured run (core.RunConfig.IntraWorkers): NAND channel shards
	// step concurrently between cross-domain events. Orthogonal to
	// Parallel (across systems vs within one system) and byte-identical
	// to serial at any worker count, so tables never change.
	IntraWorkers int
}

// requests returns the per-point request budget.
func (o Options) requests(full int) int {
	if o.Quick {
		q := full / 4
		if q < 600 {
			q = 600
		}
		return q
	}
	return full
}

// depths returns the I/O-depth axis.
func (o Options) depths() []int {
	if o.Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 24, 32}
}

// patterns is the four-panel microbenchmark set of Figs. 3/4/8/9/10.
func patterns() []workload.Pattern {
	return []workload.Pattern{workload.SeqRead, workload.RandRead, workload.SeqWrite, workload.RandWrite}
}

// newSystem builds a preconditioned PC-platform system around the device.
func newSystem(deviceName string, mutate func(*core.SystemConfig)) (*core.System, error) {
	d, err := config.Device(deviceName)
	if err != nil {
		return nil, err
	}
	cfg := config.PCSystem(d)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Precondition(32); err != nil {
		return nil, err
	}
	return s, nil
}

// runPoint measures one (pattern, depth) point.
func runPoint(o Options, s *core.System, p workload.Pattern, blockSize, depth, n int) (*core.RunResult, error) {
	gen, err := workload.NewFIO(p, blockSize, s.VolumeBytes(), 11)
	if err != nil {
		return nil, err
	}
	res, err := s.Run(gen, core.RunConfig{Requests: n, IODepth: depth, IntraWorkers: o.IntraWorkers})
	if err != nil {
		return nil, err
	}
	s.Drain()
	return res, nil
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func pct(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
