//go:build race

package exp

// raceDetectorEnabled reports whether this binary was built with -race.
// The experiment smoke test uses it to skip the multi-minute sweeps, whose
// race-relevant machinery (parallel fan-out, intra-device dispatch) is
// covered by the cheaper experiments here plus the sim/core golden tests.
const raceDetectorEnabled = true
