package icl

import (
	"bytes"
	"testing"

	"amber/internal/sim"
)

func testConfig() Config {
	return Config{
		Lines:              8,
		SubsPerLine:        4,
		SubSize:            512,
		Assoc:              FullyAssoc,
		Replacement:        LRU,
		ReadaheadThreshold: 3,
		ReadaheadLines:     2,
		TrackData:          true,
	}
}

func newCache(t *testing.T, mutate func(*Config)) *Cache {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Lines = 0 },
		func(c *Config) { c.SubsPerLine = 0 },
		func(c *Config) { c.SubSize = 0 },
		func(c *Config) { c.Assoc = SetAssoc; c.Ways = 3 }, // 8 % 3 != 0
		func(c *Config) { c.ReadaheadThreshold = 2; c.ReadaheadLines = 0 },
	}
	for i, m := range cases {
		cfg := testConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if got := testConfig().LineBytes(); got != 2048 {
		t.Fatalf("LineBytes = %d", got)
	}
	if got := testConfig().CapacityBytes(); got != 8*2048 {
		t.Fatalf("CapacityBytes = %d", got)
	}
}

func TestReadMissThenFillHit(t *testing.T) {
	c := newCache(t, nil)
	res, err := c.Read(5, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissSubs) != 4 || len(res.HitSubs) != 0 {
		t.Fatalf("cold read: %+v", res)
	}
	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.Fill(5, []int{0, 1, 2, 3}, data, false); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 2048)
	res, err = c.Read(5, 0, 4, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitSubs) != 4 || len(res.MissSubs) != 0 {
		t.Fatalf("warm read: %+v", res)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("hit bytes differ from filled bytes")
	}
}

func TestPartialLineValidity(t *testing.T) {
	c := newCache(t, nil)
	if _, err := c.Fill(7, []int{1}, nil, false); err != nil {
		t.Fatal(err)
	}
	res, err := c.Read(7, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitSubs) != 1 || res.HitSubs[0] != 1 {
		t.Fatalf("hits = %v", res.HitSubs)
	}
	if len(res.MissSubs) != 3 {
		t.Fatalf("misses = %v", res.MissSubs)
	}
}

func TestWriteAllocateAndDirty(t *testing.T) {
	c := newCache(t, nil)
	src := make([]byte, 2048)
	src[512] = 0xAB // sub 1 first byte
	ev, err := c.Write(3, 1, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Fatal("write into empty cache should not evict")
	}
	if c.DirtyLines() != 1 {
		t.Fatalf("DirtyLines = %d", c.DirtyLines())
	}
	// Read back the written sub.
	dst := make([]byte, 2048)
	res, err := c.Read(3, 1, 1, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HitSubs) != 1 || dst[512] != 0xAB {
		t.Fatal("write data not readable from cache")
	}
}

func TestEvictionCarriesDirtyData(t *testing.T) {
	c := newCache(t, func(cfg *Config) { cfg.Lines = 2; cfg.ReadaheadThreshold = 0 })
	src := make([]byte, 2048)
	src[0] = 0x11
	if _, err := c.Write(0, 0, 1, src); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(1, 0, 4, nil); err != nil {
		t.Fatal(err)
	}
	// Third distinct line evicts the LRU (lspn 0).
	ev, err := c.Write(2, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.LSPN != 0 {
		t.Fatalf("eviction = %+v", ev)
	}
	if !ev.IsDirty() || !ev.Dirty[0] || ev.Dirty[1] {
		t.Fatalf("dirty mask = %v", ev.Dirty)
	}
	if ev.Data[0] != 0x11 {
		t.Fatal("eviction lost data")
	}
	if c.Stats().DirtyEvictions != 1 {
		t.Fatalf("DirtyEvictions = %d", c.Stats().DirtyEvictions)
	}
}

func TestLRUOrder(t *testing.T) {
	c := newCache(t, func(cfg *Config) { cfg.Lines = 2; cfg.ReadaheadThreshold = 0 })
	mustFill := func(lspn int64) {
		t.Helper()
		if _, err := c.Fill(lspn, []int{0}, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	mustFill(0)
	mustFill(1)
	// Touch 0 so 1 becomes LRU.
	if _, err := c.Read(0, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fill(2, []int{0}, nil, false); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(0, 0) || c.Contains(1, 0) {
		t.Fatal("LRU evicted the wrong line")
	}
}

func TestFIFOIgnoresTouches(t *testing.T) {
	c := newCache(t, func(cfg *Config) {
		cfg.Lines = 2
		cfg.Replacement = FIFO
		cfg.ReadaheadThreshold = 0
	})
	for _, l := range []int64{0, 1} {
		if _, err := c.Fill(l, []int{0}, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(0, 0, 1, nil); err != nil { // touch 0; FIFO must still evict it
		t.Fatal(err)
	}
	if _, err := c.Fill(2, []int{0}, nil, false); err != nil {
		t.Fatal(err)
	}
	if c.Contains(0, 0) || !c.Contains(1, 0) {
		t.Fatal("FIFO evicted the wrong line")
	}
}

func TestRandomReplacementStaysInSet(t *testing.T) {
	c := newCache(t, func(cfg *Config) {
		cfg.Lines = 4
		cfg.Replacement = Random
		cfg.ReadaheadThreshold = 0
	})
	for i := int64(0); i < 50; i++ {
		if _, err := c.Fill(i, []int{0}, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	if c.ResidentLines() != 4 {
		t.Fatalf("ResidentLines = %d", c.ResidentLines())
	}
}

func TestDirectMapConflicts(t *testing.T) {
	c := newCache(t, func(cfg *Config) {
		cfg.Assoc = DirectMap
		cfg.Lines = 4
		cfg.ReadaheadThreshold = 0
	})
	// LSPN 0 and 4 conflict (4 sets).
	if _, err := c.Fill(0, []int{0}, nil, false); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Fill(4, []int{0}, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.LSPN != 0 {
		t.Fatalf("direct-map conflict did not evict 0: %+v", ev)
	}
	// LSPN 1 does not conflict.
	if ev, _ := c.Fill(1, []int{0}, nil, false); ev != nil {
		t.Fatal("non-conflicting fill evicted")
	}
}

func TestSetAssocSetSelection(t *testing.T) {
	c := newCache(t, func(cfg *Config) {
		cfg.Assoc = SetAssoc
		cfg.Lines = 8
		cfg.Ways = 2
		cfg.ReadaheadThreshold = 0
	})
	// 4 sets of 2: LSPNs 0,4,8 share set 0; third fill evicts.
	for _, l := range []int64{0, 4} {
		if ev, _ := c.Fill(l, []int{0}, nil, false); ev != nil {
			t.Fatal("premature eviction")
		}
	}
	ev, _ := c.Fill(8, []int{0}, nil, false)
	if ev == nil {
		t.Fatal("full set did not evict")
	}
}

func TestReadaheadArmsAfterStreak(t *testing.T) {
	c := newCache(t, nil) // threshold 3, lines 2
	var ra []int64
	for l := int64(10); l < 14; l++ {
		res, err := c.Read(l, 0, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		ra = append(ra, res.Readahead...)
	}
	if len(ra) == 0 {
		t.Fatal("sequential miss streak did not arm readahead")
	}
	// Prefetches are the LSPNs after the streak.
	if ra[0] != 13 && ra[0] != 14 {
		t.Fatalf("unexpected readahead target %d (all: %v)", ra[0], ra)
	}
}

func TestReadaheadNotArmedByRandom(t *testing.T) {
	c := newCache(t, nil)
	for _, l := range []int64{5, 92, 17, 44, 3, 71} {
		res, err := c.Read(l, 0, 4, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Readahead) != 0 {
			t.Fatalf("random pattern armed readahead at %d", l)
		}
	}
}

func TestReadaheadHitsAttributed(t *testing.T) {
	c := newCache(t, func(cfg *Config) { cfg.Lines = 16 })
	// Arm the prefetcher.
	for l := int64(0); l < 3; l++ {
		if _, err := c.Read(l, 0, 4, nil); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Read(3, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Readahead) == 0 {
		t.Fatal("prefetch not armed")
	}
	for _, l := range res.Readahead {
		if _, err := c.Fill(l, []int{0, 1, 2, 3}, nil, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Read(res.Readahead[0], 0, 4, nil); err != nil {
		t.Fatal(err)
	}
	if c.Stats().ReadaheadHits == 0 {
		t.Fatal("prefetched hit not attributed")
	}
}

func TestFlushLineAndAll(t *testing.T) {
	c := newCache(t, nil)
	if _, err := c.Write(1, 0, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(2, 1, 1, nil); err != nil {
		t.Fatal(err)
	}
	ev := c.FlushLine(1)
	if ev == nil || !ev.Dirty[0] || !ev.Dirty[1] || ev.Dirty[2] {
		t.Fatalf("FlushLine = %+v", ev)
	}
	if c.DirtyLines() != 1 {
		t.Fatalf("DirtyLines after FlushLine = %d", c.DirtyLines())
	}
	all := c.FlushAll()
	if len(all) != 1 || all[0].LSPN != 2 {
		t.Fatalf("FlushAll = %+v", all)
	}
	if c.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after FlushAll")
	}
	// Lines stay resident after flush.
	if !c.Contains(1, 0) || !c.Contains(2, 1) {
		t.Fatal("flush dropped resident lines")
	}
	if c.FlushLine(99) != nil {
		t.Fatal("flush of uncached line returned record")
	}
}

func TestStatsHitRate(t *testing.T) {
	c := newCache(t, func(cfg *Config) { cfg.ReadaheadThreshold = 0 })
	if _, err := c.Fill(0, []int{0, 1}, nil, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(0, 0, 4, nil); err != nil { // 2 hits, 2 misses
		t.Fatal(err)
	}
	if hr := c.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("HitRate = %v", hr)
	}
}

func TestRangeChecks(t *testing.T) {
	c := newCache(t, nil)
	if _, err := c.Read(0, -1, 1, nil); err == nil {
		t.Fatal("negative sub accepted")
	}
	if _, err := c.Read(0, 0, 5, nil); err == nil {
		t.Fatal("overlong range accepted")
	}
	if _, err := c.Write(0, 4, 1, nil); err == nil {
		t.Fatal("out-of-line write accepted")
	}
	if _, err := c.Fill(0, []int{4}, nil, false); err == nil {
		t.Fatal("out-of-line fill accepted")
	}
}

// Property-style stress: cached data always matches a shadow model.
func TestCacheDataCoherence(t *testing.T) {
	c := newCache(t, func(cfg *Config) { cfg.Lines = 4; cfg.ReadaheadThreshold = 0 })
	rng := sim.NewRNG(31)
	shadow := map[int64][]byte{} // lspn -> line bytes (last written anywhere)
	flashed := map[int64][]byte{}
	flush := func(ev *Eviction) {
		if ev == nil || !ev.IsDirty() {
			return
		}
		// Persist dirty subs to "flash".
		line, ok := flashed[ev.LSPN]
		if !ok {
			line = make([]byte, 2048)
		}
		for s, d := range ev.Dirty {
			if d {
				copy(line[s*512:(s+1)*512], ev.Data[s*512:(s+1)*512])
			}
		}
		flashed[ev.LSPN] = line
	}
	for i := 0; i < 500; i++ {
		lspn := int64(rng.Intn(8))
		sub := rng.Intn(4)
		if rng.Bool(0.5) {
			// Write one sub with a known byte pattern.
			src := make([]byte, 2048)
			v := byte(rng.Uint64())
			for j := sub * 512; j < (sub+1)*512; j++ {
				src[j] = v
			}
			ev, err := c.Write(lspn, sub, 1, src)
			if err != nil {
				t.Fatal(err)
			}
			flush(ev)
			line, ok := shadow[lspn]
			if !ok {
				line = make([]byte, 2048)
			}
			copy(line[sub*512:(sub+1)*512], src[sub*512:(sub+1)*512])
			shadow[lspn] = line
		} else {
			dst := make([]byte, 2048)
			res, err := c.Read(lspn, sub, 1, dst)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.HitSubs) == 1 {
				want, ok := shadow[lspn]
				if !ok {
					continue
				}
				if !bytes.Equal(dst[sub*512:(sub+1)*512], want[sub*512:(sub+1)*512]) {
					t.Fatalf("iter %d: stale bytes for lspn %d sub %d", i, lspn, sub)
				}
			}
		}
	}
}

func BenchmarkCacheReadWrite(b *testing.B) {
	cfg := testConfig()
	cfg.Lines = 1024
	cfg.TrackData = false
	cfg.ReadaheadThreshold = 0
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lspn := int64(rng.Intn(4096))
		if i%2 == 0 {
			if _, err := c.Write(lspn, 0, 4, nil); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := c.Read(lspn, 0, 4, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}
