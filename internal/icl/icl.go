// Package icl implements Amber's internal cache layer (§III-B, §IV-C): the
// firmware module that buffers super-page-sized lines of data in the SSD's
// internal DRAM between the host interface and the FTL. It supports
// fully-associative, set-associative and direct-mapped organizations with
// LRU, FIFO and random replacement, write-back with dirty sub-page masks,
// explicit flush, and the parallelism-aware readahead of §IV-C: a
// frequency counter detects sequential miss streaks and prefetches the
// following super-pages, which land on disjoint dies and therefore load in
// parallel.
//
// Like the FTL, the ICL is a pure state machine: it returns the evictions
// and prefetch candidates its caller (the core SSD assembly) must turn
// into DRAM and flash traffic.
package icl

import (
	"fmt"

	"amber/internal/sim"
)

// Assoc selects the cache organization.
type Assoc int

// Cache organizations.
const (
	FullyAssoc Assoc = iota
	SetAssoc
	DirectMap
)

func (a Assoc) String() string {
	switch a {
	case SetAssoc:
		return "set-associative"
	case DirectMap:
		return "direct-mapped"
	default:
		return "fully-associative"
	}
}

// Replacement selects the victim policy within a set.
type Replacement int

// Replacement policies.
const (
	LRU Replacement = iota
	FIFO
	Random
)

func (r Replacement) String() string {
	switch r {
	case FIFO:
		return "fifo"
	case Random:
		return "random"
	default:
		return "lru"
	}
}

// Config parameterizes the cache.
type Config struct {
	// Lines is the total line count; line size is SubsPerLine*SubSize (one
	// super-page).
	Lines       int
	Ways        int // associativity for SetAssoc (ignored otherwise)
	SubsPerLine int // sub-pages (physical pages) per line
	SubSize     int // bytes per sub-page
	Assoc       Assoc
	Replacement Replacement
	// ReadaheadThreshold is the sequential-streak count that arms the
	// §IV-C readahead; zero disables readahead.
	ReadaheadThreshold int
	// ReadaheadLines is how many following super-pages to prefetch once
	// armed.
	ReadaheadLines int
	// TrackData keeps real line contents.
	TrackData bool
	Seed      uint64
}

// Validate reports descriptive configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Lines <= 0:
		return fmt.Errorf("icl: Lines must be positive")
	case c.SubsPerLine <= 0 || c.SubSize <= 0:
		return fmt.Errorf("icl: line geometry must be positive")
	case c.Assoc == SetAssoc && (c.Ways <= 0 || c.Lines%c.Ways != 0):
		return fmt.Errorf("icl: SetAssoc needs Ways dividing Lines (lines=%d ways=%d)", c.Lines, c.Ways)
	case c.ReadaheadThreshold > 0 && c.ReadaheadLines <= 0:
		return fmt.Errorf("icl: readahead enabled but ReadaheadLines is %d", c.ReadaheadLines)
	}
	return nil
}

// LineBytes returns the byte size of one line.
func (c Config) LineBytes() int { return c.SubsPerLine * c.SubSize }

// CapacityBytes returns total data capacity of the cache.
func (c Config) CapacityBytes() int64 { return int64(c.Lines) * int64(c.LineBytes()) }

// Eviction describes a line the caller must flush (if dirty) before its
// frame is reused.
type Eviction struct {
	LSPN  int64
	Dirty []bool // per-sub dirty mask; all-false means clean drop
	Data  []byte // line contents when TrackData, else nil
}

// IsDirty reports whether any sub-page needs a flash write.
func (e Eviction) IsDirty() bool {
	for _, d := range e.Dirty {
		if d {
			return true
		}
	}
	return false
}

// Stats aggregates cache activity.
type Stats struct {
	ReadSubHits    uint64
	ReadSubMisses  uint64
	WriteSubHits   uint64
	WriteSubMisses uint64
	Evictions      uint64
	DirtyEvictions uint64
	Readaheads     uint64 // prefetch lines requested
	ReadaheadHits  uint64 // read hits on prefetched subs
	Flushes        uint64
}

// HitRate returns the overall sub-page hit fraction.
func (s Stats) HitRate() float64 {
	hits := s.ReadSubHits + s.WriteSubHits
	tot := hits + s.ReadSubMisses + s.WriteSubMisses
	if tot == 0 {
		return 0
	}
	return float64(hits) / float64(tot)
}

type line struct {
	lspn       int64 // -1 = empty
	valid      []bool
	dirty      []bool
	data       []byte
	prefetched bool
	lastUse    uint64
	inserted   uint64
}

// Cache is the internal cache layer. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  [][]*line
	ways  int
	tick  uint64
	rng   *sim.RNG
	stats Stats

	// Sequential detector state for readahead (§IV-C): the next expected
	// LSPN and the current streak length.
	seqNext   int64
	seqStreak int

	// preferClean restricts victim selection to clean frames whenever any
	// exist in the set. Core enables it once the FTL latches read-only:
	// dirty lines can never be written back then, so evicting one would
	// fail the read that needed the frame — pinning them keeps reads
	// serving through the clean frames instead.
	preferClean bool

	// scratchEv is the reusable eviction record returned by Fill/Write:
	// the submit path consumes it synchronously, so one preallocated
	// buffer per cache avoids a Dirty-mask (and Data) copy per eviction.
	scratchEv Eviction

	// scratchHits/scratchMisses/scratchRA back ReadResult slices, reused
	// across Read calls for the same reason.
	scratchHits   []int
	scratchMisses []int
	scratchRA     []int64

	// scratchClean backs degraded-mode victim filtering (preferClean),
	// reused across calls so the read-only survival path stays alloc-free.
	scratchClean []*line
}

// New constructs a Cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ways := cfg.Lines
	switch cfg.Assoc {
	case SetAssoc:
		ways = cfg.Ways
	case DirectMap:
		ways = 1
	}
	nsets := cfg.Lines / ways
	c := &Cache{
		cfg:     cfg,
		ways:    ways,
		rng:     sim.NewRNG(cfg.Seed ^ 0x1c1),
		seqNext: -1,
	}
	c.sets = make([][]*line, nsets)
	for i := range c.sets {
		set := make([]*line, ways)
		for w := range set {
			ln := &line{lspn: -1, valid: make([]bool, cfg.SubsPerLine), dirty: make([]bool, cfg.SubsPerLine)}
			if cfg.TrackData {
				ln.data = make([]byte, cfg.LineBytes())
			}
			set[w] = ln
		}
		c.sets[i] = set
	}
	return c, nil
}

// Config returns the configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) setOf(lspn int64) []*line {
	return c.sets[int(lspn%int64(len(c.sets)))]
}

func (c *Cache) find(lspn int64) *line {
	for _, ln := range c.setOf(lspn) {
		if ln.lspn == lspn {
			return ln
		}
	}
	return nil
}

// SetPreferCleanVictims toggles degraded-mode victim selection: clean
// frames are evicted before dirty ones regardless of the replacement
// policy's preference. See the preferClean field.
func (c *Cache) SetPreferCleanVictims(on bool) { c.preferClean = on }

// victim picks the replacement frame in lspn's set, preferring an empty or
// fully clean-invalid frame.
func (c *Cache) victim(lspn int64) *line {
	set := c.setOf(lspn)
	for _, ln := range set {
		if ln.lspn < 0 {
			return ln
		}
	}
	if c.preferClean {
		clean := c.scratchClean[:0]
		for _, ln := range set {
			if !lineDirty(ln) {
				clean = append(clean, ln)
			}
		}
		c.scratchClean = clean
		if len(clean) > 0 {
			set = clean
		}
	}
	switch c.cfg.Replacement {
	case FIFO:
		best := set[0]
		for _, ln := range set[1:] {
			if ln.inserted < best.inserted {
				best = ln
			}
		}
		return best
	case Random:
		return set[c.rng.Intn(len(set))]
	default: // LRU
		best := set[0]
		for _, ln := range set[1:] {
			if ln.lastUse < best.lastUse {
				best = ln
			}
		}
		return best
	}
}

// evictInto resets the victim frame for reuse by lspn and returns the
// eviction record if the frame held a line. The record aliases the cache's
// scratch buffers and stays valid only until the next Cache call; callers
// that keep evictions must copy them (see FlushAll).
func (c *Cache) evictInto(ln *line, lspn int64) *Eviction {
	var ev *Eviction
	if ln.lspn >= 0 {
		c.scratchEv.LSPN = ln.lspn
		// Swap, don't copy: the record takes the frame's dirty mask and
		// payload wholesale and the frame inherits the scratch buffers —
		// it is about to be reset for the new resident either way, so the
		// swap turns a per-eviction line-sized copy into pointer exchanges
		// (plus a one-time allocation seeding the scratch side).
		c.scratchEv.Dirty, ln.dirty = ln.dirty, c.scratchEv.Dirty
		if ln.dirty == nil {
			ln.dirty = make([]bool, c.cfg.SubsPerLine)
		}
		if c.cfg.TrackData {
			c.scratchEv.Data, ln.data = ln.data, c.scratchEv.Data
			if ln.data == nil {
				ln.data = make([]byte, c.cfg.LineBytes())
			}
		} else {
			c.scratchEv.Data = nil
		}
		c.stats.Evictions++
		if c.scratchEv.IsDirty() {
			c.stats.DirtyEvictions++
		}
		ev = &c.scratchEv
	}
	ln.lspn = lspn
	ln.prefetched = false
	for i := range ln.valid {
		ln.valid[i] = false
		ln.dirty[i] = false
	}
	if c.cfg.TrackData {
		for i := range ln.data {
			ln.data[i] = 0
		}
	}
	c.tick++
	ln.inserted = c.tick
	ln.lastUse = c.tick
	return ev
}

// lineDirty reports whether any sub of the frame is dirty.
func lineDirty(ln *line) bool {
	for _, d := range ln.dirty {
		if d {
			return true
		}
	}
	return false
}

func (c *Cache) touch(ln *line) {
	c.tick++
	ln.lastUse = c.tick
}

// ReadResult reports the outcome of a cache read probe. Its slices alias
// per-cache scratch buffers and stay valid only until the next Read call;
// callers that defer consumption (e.g. into a scheduled event) must copy.
type ReadResult struct {
	// HitSubs are sub-pages served from DRAM.
	HitSubs []int
	// MissSubs must be fetched from flash and then installed with Fill.
	MissSubs []int
	// Readahead lists LSPNs the §IV-C prefetcher wants loaded.
	Readahead []int64
}

// Read probes the cache for sub-pages [firstSub, firstSub+nSubs) of lspn.
// If TrackData is on and dst is non-nil, bytes of hit subs are copied into
// dst at their line offsets.
func (c *Cache) Read(lspn int64, firstSub, nSubs int, dst []byte) (ReadResult, error) {
	if err := c.checkRange(firstSub, nSubs); err != nil {
		return ReadResult{}, err
	}
	res := ReadResult{
		HitSubs:   c.scratchHits[:0],
		MissSubs:  c.scratchMisses[:0],
		Readahead: c.scratchRA[:0],
	}
	ln := c.find(lspn)
	anyMiss := false
	for s := firstSub; s < firstSub+nSubs; s++ {
		if ln != nil && ln.valid[s] {
			res.HitSubs = append(res.HitSubs, s)
			c.stats.ReadSubHits++
			if ln.prefetched {
				c.stats.ReadaheadHits++
			}
			if c.cfg.TrackData && dst != nil {
				copy(dst[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize], ln.data[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize])
			}
		} else {
			res.MissSubs = append(res.MissSubs, s)
			c.stats.ReadSubMisses++
			anyMiss = true
		}
	}
	if ln != nil {
		c.touch(ln)
	}
	// Sequential-streak readahead: misses arm the counter ("sequentially
	// accessed right after the addresses of the previous ones, but no
	// cache hit"), and hits on previously prefetched lines keep the stream
	// armed so a sustained sequential scan stays ahead of the consumer.
	if c.cfg.ReadaheadThreshold > 0 {
		armed := false
		switch {
		case anyMiss:
			if lspn == c.seqNext {
				c.seqStreak++
			} else {
				c.seqStreak = 1
			}
			c.seqNext = lspn + 1
			armed = c.seqStreak >= c.cfg.ReadaheadThreshold
		case ln != nil && ln.prefetched:
			// Stream follow-up: the consumer reached a prefetched line.
			c.seqStreak = c.cfg.ReadaheadThreshold
			if lspn+1 > c.seqNext {
				c.seqNext = lspn + 1
			}
			armed = true
		}
		if armed {
			for i := int64(1); i <= int64(c.cfg.ReadaheadLines); i++ {
				next := lspn + i
				if c.find(next) == nil {
					res.Readahead = append(res.Readahead, next)
					c.stats.Readaheads++
				}
			}
		}
	}
	c.scratchHits = res.HitSubs[:0]
	c.scratchMisses = res.MissSubs[:0]
	c.scratchRA = res.Readahead[:0]
	return res, nil
}

// Fill installs fetched sub-pages of lspn, evicting a victim line if the
// set is full. prefetched marks readahead fills so their later hits are
// attributed. data, when non-nil with TrackData, supplies full-line bytes
// (only the filled subs are copied).
func (c *Cache) Fill(lspn int64, subs []int, data []byte, prefetched bool) (*Eviction, error) {
	for _, s := range subs {
		if err := c.checkRange(s, 1); err != nil {
			return nil, err
		}
	}
	ln := c.find(lspn)
	var ev *Eviction
	if ln == nil {
		ln = c.victim(lspn)
		if c.preferClean && ln.lspn >= 0 && lineDirty(ln) {
			// Degraded read-around: every candidate frame holds dirty
			// data that can never flush on a read-only device. The
			// caller's buffer already has the fetched bytes; serve them
			// uncached rather than evict what cannot be written back.
			return nil, nil
		}
		ev = c.evictInto(ln, lspn)
	}
	ln.prefetched = ln.prefetched || prefetched
	for _, s := range subs {
		ln.valid[s] = true
		if c.cfg.TrackData && data != nil {
			copy(ln.data[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize], data[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize])
		}
	}
	c.touch(ln)
	return ev, nil
}

// Write stores sub-pages [firstSub, firstSub+nSubs) of lspn into the cache
// (write-back), marking them dirty. A miss allocates a frame
// (write-allocate), possibly evicting. When TrackData is on and src is
// non-nil, bytes are taken from src at line offsets.
func (c *Cache) Write(lspn int64, firstSub, nSubs int, src []byte) (*Eviction, error) {
	if err := c.checkRange(firstSub, nSubs); err != nil {
		return nil, err
	}
	ln := c.find(lspn)
	var ev *Eviction
	if ln == nil {
		c.stats.WriteSubMisses += uint64(nSubs)
		ln = c.victim(lspn)
		ev = c.evictInto(ln, lspn)
	} else {
		c.stats.WriteSubHits += uint64(nSubs)
	}
	for s := firstSub; s < firstSub+nSubs; s++ {
		ln.valid[s] = true
		ln.dirty[s] = true
		if c.cfg.TrackData && src != nil {
			copy(ln.data[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize], src[s*c.cfg.SubSize:(s+1)*c.cfg.SubSize])
		}
	}
	c.touch(ln)
	return ev, nil
}

// FlushLine cleans lspn's line, returning its eviction record (nil if not
// cached). The line stays resident but clean.
func (c *Cache) FlushLine(lspn int64) *Eviction {
	ln := c.find(lspn)
	if ln == nil {
		return nil
	}
	e := Eviction{LSPN: ln.lspn, Dirty: append([]bool(nil), ln.dirty...)}
	if c.cfg.TrackData {
		e.Data = append([]byte(nil), ln.data...)
	}
	for i := range ln.dirty {
		ln.dirty[i] = false
	}
	c.stats.Flushes++
	return &e
}

// FlushAll returns eviction records for every dirty line (host FLUSH /
// power-fail path) and cleans them. Lines stay resident.
func (c *Cache) FlushAll() []Eviction {
	var out []Eviction
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.lspn < 0 {
				continue
			}
			dirty := false
			for _, d := range ln.dirty {
				if d {
					dirty = true
					break
				}
			}
			if !dirty {
				continue
			}
			e := Eviction{LSPN: ln.lspn, Dirty: append([]bool(nil), ln.dirty...)}
			if c.cfg.TrackData {
				e.Data = append([]byte(nil), ln.data...)
			}
			for i := range ln.dirty {
				ln.dirty[i] = false
			}
			c.stats.Flushes++
			out = append(out, e)
		}
	}
	return out
}

// Contains reports whether sub s of lspn is valid in the cache.
func (c *Cache) Contains(lspn int64, s int) bool {
	ln := c.find(lspn)
	return ln != nil && s >= 0 && s < c.cfg.SubsPerLine && ln.valid[s]
}

// DirtyLines counts lines with at least one dirty sub.
func (c *Cache) DirtyLines() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.lspn < 0 {
				continue
			}
			for _, d := range ln.dirty {
				if d {
					n++
					break
				}
			}
		}
	}
	return n
}

// ResidentLines counts occupied frames.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.lspn >= 0 {
				n++
			}
		}
	}
	return n
}

func (c *Cache) checkRange(firstSub, nSubs int) error {
	if firstSub < 0 || nSubs < 1 || firstSub+nSubs > c.cfg.SubsPerLine {
		return fmt.Errorf("icl: sub range [%d,%d) outside line of %d subs",
			firstSub, firstSub+nSubs, c.cfg.SubsPerLine)
	}
	return nil
}
