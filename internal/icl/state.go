package icl

import (
	"fmt"

	"amber/internal/snap"
)

// Invalidate models a power cut hitting the cache: the DRAM contents are
// volatile, so every frame is dropped — including dirty lines whose
// write-back never reached flash (that is exactly the data a power-loss
// test must prove was either acknowledged-durable or never acknowledged).
// The sequential detector and degraded-mode latch reset with the frames;
// the statistics survive (they are the observer's, not the firmware's).
func (c *Cache) Invalidate() {
	for _, set := range c.sets {
		for _, ln := range set {
			ln.lspn = -1
			ln.prefetched = false
			ln.lastUse = 0
			ln.inserted = 0
			for i := range ln.valid {
				ln.valid[i] = false
				ln.dirty[i] = false
			}
			if c.cfg.TrackData {
				for i := range ln.data {
					ln.data[i] = 0
				}
			}
		}
	}
	c.tick = 0
	c.seqNext = -1
	c.seqStreak = 0
	c.preferClean = false
}

// EncodeState serializes the cache's complete functional state: every
// frame (tag, valid/dirty masks, payload, replacement metadata), the
// replacement clock, the RNG, the sequential detector and the statistics.
func (c *Cache) EncodeState(e *snap.Enc) {
	e.U64(uint64(len(c.sets)))
	e.U64(uint64(c.ways))
	for _, set := range c.sets {
		for _, ln := range set {
			e.I64(ln.lspn)
			for i := range ln.valid {
				e.Bool(ln.valid[i])
				e.Bool(ln.dirty[i])
			}
			e.Bool(ln.prefetched)
			e.U64(ln.lastUse)
			e.U64(ln.inserted)
			if c.cfg.TrackData {
				e.Blob(ln.data)
			}
		}
	}
	e.U64(c.tick)
	for _, w := range c.rng.State() {
		e.U64(w)
	}
	e.I64(c.seqNext)
	e.Int(c.seqStreak)
	e.Bool(c.preferClean)
	e.U64(c.stats.ReadSubHits)
	e.U64(c.stats.ReadSubMisses)
	e.U64(c.stats.WriteSubHits)
	e.U64(c.stats.WriteSubMisses)
	e.U64(c.stats.Evictions)
	e.U64(c.stats.DirtyEvictions)
	e.U64(c.stats.Readaheads)
	e.U64(c.stats.ReadaheadHits)
	e.U64(c.stats.Flushes)
}

// DecodeState reinstalls a state captured by EncodeState into c, which
// must be freshly constructed with the identical configuration. On error
// c must be discarded.
func (c *Cache) DecodeState(d *snap.Dec) error {
	if n := d.U64(); d.Err() == nil && n != uint64(len(c.sets)) {
		return fmt.Errorf("%w: %d cache sets, want %d", snap.ErrMismatch, n, len(c.sets))
	}
	if w := d.U64(); d.Err() == nil && w != uint64(c.ways) {
		return fmt.Errorf("%w: %d cache ways, want %d", snap.ErrMismatch, w, c.ways)
	}
	for _, set := range c.sets {
		for _, ln := range set {
			ln.lspn = d.I64()
			for i := range ln.valid {
				ln.valid[i] = d.Bool()
				ln.dirty[i] = d.Bool()
			}
			ln.prefetched = d.Bool()
			ln.lastUse = d.U64()
			ln.inserted = d.U64()
			if c.cfg.TrackData {
				buf := d.Blob()
				if d.Err() == nil && len(buf) != len(ln.data) {
					return fmt.Errorf("%w: cache line of %d bytes, want %d", snap.ErrMismatch, len(buf), len(ln.data))
				}
				copy(ln.data, buf)
			}
		}
	}
	c.tick = d.U64()
	var rs [4]uint64
	for i := range rs {
		rs[i] = d.U64()
	}
	c.rng.SetState(rs)
	c.seqNext = d.I64()
	c.seqStreak = d.Int()
	c.preferClean = d.Bool()
	c.stats.ReadSubHits = d.U64()
	c.stats.ReadSubMisses = d.U64()
	c.stats.WriteSubHits = d.U64()
	c.stats.WriteSubMisses = d.U64()
	c.stats.Evictions = d.U64()
	c.stats.DirtyEvictions = d.U64()
	c.stats.Readaheads = d.U64()
	c.stats.ReadaheadHits = d.U64()
	c.stats.Flushes = d.U64()
	return d.Err()
}
