package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Horizon-synchronized parallel dispatch. Every scheduling domain is one of
// two classes:
//
//   - cross-domain (the default): its events may read or write any
//     simulator state and may schedule further events anywhere. They are
//     always dispatched serially, in global (time, sequence) order.
//
//   - domain-local (marked with MarkDomainLocal): its events touch only
//     state owned by that domain (per-NAND-channel buses, dies, counters,
//     tracked-page copies) and never call back into the engine — no
//     scheduling, no cancels, no Step. Between two cross-domain events,
//     events in distinct domain-local shards are causally independent, so
//     they may be dispatched concurrently by different workers without
//     changing any observable result.
//
// Cross-domain shards may additionally be marked channel-neutral
// (MarkChannelNeutral): their events are promised not to touch the state
// pending domain-local events write, so they commute with them. RunParallel
// dispatches a channel-neutral horizon head without draining the local
// shards first — horizon batching — so consecutive neutral cross events
// cost no barrier and the local work accumulates into fewer, larger
// windows.
//
// RunParallel exploits this: it repeatedly computes the horizon — the
// (time, sequence) key of the earliest pending cross-domain event — lets
// workers drain every domain-local shard strictly up to that key
// (StepDomainUntil), barriers (EndWindow), then dispatches the horizon
// event serially and repeats. doc.go states the full determinism argument;
// the short form is that the dispatch order restricted to any one state
// partition (each local domain, and the union of all cross domains) is
// identical to the serial order, and all scheduling happens in serial
// sections so sequence numbers are assigned identically too.

// checkSerial panics when a serial-only engine call is made while a
// parallel window is open. Window callbacks must not touch the engine;
// this turns such bugs into a deterministic panic instead of a data race.
func (e *Engine) checkSerial() {
	if e.inWindow {
		panic("sim: engine call during an open parallel window (domain-local events must not schedule, cancel or step)")
	}
}

// DefaultBatchLimit is the horizon-batching backstop every new engine
// starts with: once the eligible domain-local shards hold more than this
// many pending events, a neutral cross head forces a window instead of
// batching past them. With every cross shard of a workload neutral (the
// active architecture after the two-stage fill installs), nothing else
// would ever drain the local shards until the cross queue empties, so the
// backstop bounds the engine's latent event population — and doubles as a
// parallelism pump, turning an otherwise run-length batching window into
// periodic wide fan-outs. The bound is read from shard queue depths, so the
// decision sequence is a pure function of queue state and identical at
// every worker count.
const DefaultBatchLimit = 4096

// SetBatchLimit replaces the horizon-batching backstop (DefaultBatchLimit);
// n < 1 restores the default. A smaller limit trades barrier frequency for
// a tighter bound on pending domain-local work; results are byte-identical
// at any limit (batching a neutral event is safe at any depth — the limit
// only decides when to stop paying memory for saved barriers).
func (e *Engine) SetBatchLimit(n int) {
	e.checkSerial()
	if n < 1 {
		n = DefaultBatchLimit
	}
	e.batchLimit = n
}

// BatchLimit returns the current horizon-batching backstop.
func (e *Engine) BatchLimit() int { return e.batchLimit }

// MarkDomainLocal classifies dom as domain-local: its events touch only
// per-domain state and never call the engine, so RunParallel may dispatch
// them concurrently with other local domains between synchronization
// horizons. Marking is idempotent and, like Domain registration, is a
// setup-time call.
func (e *Engine) MarkDomainLocal(dom DomainID) {
	e.checkSerial()
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: marking unregistered domain %d local", dom))
	}
	sh := &e.shards[dom]
	if sh.local {
		return
	}
	if sh.neutral {
		panic(fmt.Sprintf("sim: domain %q is channel-neutral, cannot also be domain-local", sh.name))
	}
	sh.local = true
	e.locals = append(e.locals, dom)
}

// IsDomainLocal reports whether dom was marked domain-local.
func (e *Engine) IsDomainLocal(dom DomainID) bool {
	return int(dom) < len(e.shards) && e.shards[dom].local
}

// MarkChannelNeutral classifies the cross-domain shard dom as
// channel-neutral: its events are promised not to read or write any state
// that pending domain-local events write (per-channel counters and energy
// accumulators, installed tracked-data pages except through the
// pending-aware staging paths, in-flight destination buffers). A neutral
// cross event therefore commutes with every pending domain-local event, and
// RunParallel may dispatch it without first draining the local shards —
// horizon batching: consecutive neutral cross events run back to back while
// local work accumulates for one larger window, cutting barrier frequency
// on small-window workloads. doc.go states the full safety condition.
// Marking is idempotent and is a setup-time call.
func (e *Engine) MarkChannelNeutral(dom DomainID) {
	e.checkSerial()
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: marking unregistered domain %d channel-neutral", dom))
	}
	sh := &e.shards[dom]
	if sh.local {
		panic(fmt.Sprintf("sim: domain %q is domain-local, cannot also be channel-neutral", sh.name))
	}
	sh.neutral = true
}

// IsChannelNeutral reports whether dom was marked channel-neutral.
func (e *Engine) IsChannelNeutral(dom DomainID) bool {
	return int(dom) < len(e.shards) && e.shards[dom].neutral
}

// NextCrossDomainTime returns the (time, sequence) key of the earliest
// pending event in any cross-domain shard, or ok=false when every
// cross-domain shard is empty. RunParallel uses it as the horizon bound for
// a window; the scan is O(number of cross shards), which a full system
// keeps small (host, cpu, icl.dram, dma, fil, default).
func (e *Engine) NextCrossDomainTime() (at Time, seq uint64, ok bool) {
	at, seq, _, ok = e.nextCross()
	return at, seq, ok
}

// nextCross is NextCrossDomainTime plus the winning shard's index, which
// the horizon loop needs both to dispatch the head without re-reading the
// tournament and to test the shard's channel-neutral mark.
func (e *Engine) nextCross() (at Time, seq uint64, shard int, ok bool) {
	best := emptyNode
	for s := range e.shards {
		sh := &e.shards[s]
		if sh.local || len(sh.heap) == 0 {
			continue
		}
		rec := &e.records[sh.heap[0]]
		if n := (treeNode{at: rec.at, key: rec.seq<<16 | uint64(s)}); n.beats(best) {
			best = n
		}
	}
	if best == emptyNode {
		return 0, 0, 0, false
	}
	return best.at, best.key >> 16, int(best.key & 0xffff), true
}

// BeginWindow opens a parallel window: until EndWindow, the only legal
// engine calls are StepDomainUntil on distinct domain-local shards,
// possibly from concurrent goroutines. All other engine methods panic.
func (e *Engine) BeginWindow() {
	if e.inWindow {
		panic("sim: nested BeginWindow")
	}
	e.inWindow = true
}

// StepDomainUntil dispatches every pending event of the given domain-local
// shard whose (time, sequence) key is strictly before (horizon,
// horizonSeq), in shard order, and returns the number dispatched. It is the
// one engine call legal inside an open window and may run concurrently
// with StepDomainUntil on other shards: all bookkeeping it touches is
// owned by the shard (an atomic owner guard panics if two workers ever
// step the same shard). Freed records, the pending delta and the clock
// advance are staged on the shard and merged serially by EndWindow.
func (e *Engine) StepDomainUntil(dom DomainID, horizon Time, horizonSeq uint64) int {
	if !e.inWindow {
		panic("sim: StepDomainUntil outside an open window")
	}
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: stepping unregistered domain %d", dom))
	}
	sh := &e.shards[dom]
	if !sh.local {
		panic(fmt.Sprintf("sim: StepDomainUntil on cross-domain shard %q", sh.name))
	}
	if !atomic.CompareAndSwapInt32(&sh.owner, 0, 1) {
		panic(fmt.Sprintf("sim: shard %q stepped by two workers concurrently", sh.name))
	}
	n := 0
	for len(sh.heap) > 0 {
		id := sh.heap[0]
		rec := &e.records[id]
		if rec.at > horizon || (rec.at == horizon && rec.seq >= horizonSeq) {
			break
		}
		e.heapRemoveAt(sh, 0)
		sh.dispatched++
		sh.popped++
		if rec.at > sh.maxAt {
			sh.maxAt = rec.at
		}
		fn := rec.fn
		rec.fn = nil
		rec.gen++
		sh.freed = append(sh.freed, id)
		n++
		fn()
	}
	atomic.StoreInt32(&sh.owner, 0)
	return n
}

// EndWindow closes a parallel window: it merges each local shard's staged
// bookkeeping back into the engine — pending and dispatched counters, freed
// record slots (in domain registration order, so the free list stays
// deterministic), the clock (to the latest event dispatched in the window)
// — and repairs the tournament leaves of the shards that changed.
func (e *Engine) EndWindow() {
	if !e.inWindow {
		panic("sim: EndWindow without BeginWindow")
	}
	e.inWindow = false
	for _, dom := range e.locals {
		sh := &e.shards[dom]
		if sh.popped == 0 {
			continue
		}
		e.pending -= sh.popped
		e.dispatched += uint64(sh.popped)
		e.free = append(e.free, sh.freed...)
		sh.freed = sh.freed[:0]
		sh.popped = 0
		if sh.maxAt > e.now {
			e.now = sh.maxAt
		}
		sh.maxAt = 0
		e.repair(int(dom))
	}
}

// ParallelStats reports the horizon structure of one RunParallel drain.
type ParallelStats struct {
	Horizons         uint64 // windows that dispatched at least one local event
	ParallelHorizons uint64 // of those, windows fanned out over >1 worker
	LocalEvents      uint64 // events dispatched inside windows
	CrossEvents      uint64 // events dispatched serially between windows
	// BatchedCross counts cross-domain events dispatched through the
	// horizon-batching fast path: their shard was channel-neutral, so they
	// ran while eligible domain-local events were still pending instead of
	// forcing a drain-and-barrier first. Each one is a barrier the
	// un-batched loop would have paid.
	BatchedCross uint64
	// LimitBarriers counts windows a neutral cross head would have batched
	// past but the batch limit forced anyway (Engine.SetBatchLimit): the
	// pending-local backstop draining accumulated channel work. They are
	// included in Horizons.
	LimitBarriers uint64
}

// MeanLocalPerHorizon returns the average number of domain-local events a
// window dispatched — the work available between two synchronization
// barriers, the figure of merit for intra-device parallel efficiency.
func (p ParallelStats) MeanLocalPerHorizon() float64 {
	if p.Horizons == 0 {
		return 0
	}
	return float64(p.LocalEvents) / float64(p.Horizons)
}

// Barriers returns the number of synchronization barriers the drain paid:
// one per window.
func (p ParallelStats) Barriers() uint64 { return p.Horizons }

// BarriersWithoutBatching returns the barrier count the same drain would
// have paid with horizon batching disabled: every batched cross event had
// eligible local work pending and would have opened its own window first.
func (p ParallelStats) BarriersWithoutBatching() uint64 {
	return p.Horizons + p.BatchedCross
}

// Accumulate adds o's counters into p, for callers aggregating the horizon
// structure over many small drains (the pooled synchronous submit path).
func (p *ParallelStats) Accumulate(o ParallelStats) {
	p.Horizons += o.Horizons
	p.ParallelHorizons += o.ParallelHorizons
	p.LocalEvents += o.LocalEvents
	p.CrossEvents += o.CrossEvents
	p.BatchedCross += o.BatchedCross
	p.LimitBarriers += o.LimitBarriers
}

// RunParallel dispatches events until the queue drains, like Run, but steps
// domain-local shards concurrently between synchronization horizons over up
// to `workers` goroutines (the calling goroutine is one of them). The
// result — every callback effect, counter and the final clock — is
// byte-identical to Run at any worker count; see doc.go for the argument.
// With workers <= 1 the same horizon-structured loop runs entirely on the
// calling goroutine, which is the reference mode for equivalence tests.
//
// The worker goroutines live for this call only; a caller draining the
// engine many times (the synchronous submit path) should allocate one
// WorkerPool and use RunParallelWith instead.
func (e *Engine) RunParallel(workers int) ParallelStats {
	if len(e.locals) == 0 {
		return e.runSerialDrain()
	}
	workers = clampWorkers(workers, len(e.locals))
	var pool *WorkerPool
	defer func() {
		if pool != nil {
			pool.Close()
		}
	}()
	return e.runParallel(workers, func() *WorkerPool {
		pool = NewWorkerPool(e, workers)
		return pool
	})
}

// RunParallelWith is RunParallel using a caller-owned WorkerPool, so
// drains repeated on the same engine (one per synchronous Submit) reuse the
// parked worker goroutines instead of spawning and joining a set per call.
// The pool must have been created for this engine and stays usable (and
// open) after the call returns.
func (e *Engine) RunParallelWith(pool *WorkerPool) ParallelStats {
	if pool.e != e {
		panic("sim: RunParallelWith with a pool built for a different engine")
	}
	if len(e.locals) == 0 {
		return e.runSerialDrain()
	}
	workers := clampWorkers(pool.workers, len(e.locals))
	return e.runParallel(workers, func() *WorkerPool { return pool })
}

// clampWorkers bounds the window fan-out width: more workers than local
// domains can never get work, and more workers than processors only add
// handoff and context-switch cost to every window — on a single-processor
// host the horizon loop runs entirely on the calling goroutine, which
// still collects the batch-drain and horizon-batching wins. Results are
// byte-identical at any width, so the clamp is purely a scheduling choice.
func clampWorkers(workers, locals int) int {
	if workers > locals {
		workers = locals
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	return workers
}

// runSerialDrain is the no-local-domains degenerate mode: a plain serial
// drain counted as cross events.
func (e *Engine) runSerialDrain() ParallelStats {
	var st ParallelStats
	for !e.halted && e.Step() {
		st.CrossEvents++
	}
	return st
}

// runParallel is the horizon loop shared by RunParallel and
// RunParallelWith. getPool supplies the worker set on the first window wide
// enough to fan out; it is not called when workers <= 1 or every window is
// single-domain.
func (e *Engine) runParallel(workers int, getPool func() *WorkerPool) ParallelStats {
	var st ParallelStats
	var pool *WorkerPool
	for {
		at, seq, cross, ok := e.nextCross()
		if !ok {
			// No cross-domain work left: drain every local shard fully.
			at, seq = MaxTime, ^uint64(0)
		}
		eligible := e.elig[:0]
		pendingLocal := 0
		for _, dom := range e.locals {
			sh := &e.shards[dom]
			if len(sh.heap) == 0 {
				continue
			}
			rec := &e.records[sh.heap[0]]
			if rec.at < at || (rec.at == at && rec.seq < seq) {
				eligible = append(eligible, dom)
				// Queue depth is a cheap upper bound on the shard's eligible
				// events (some may lie past the horizon); exactness doesn't
				// matter — the limit is a backstop, not a schedule.
				pendingLocal += len(sh.heap)
			}
		}
		e.elig = eligible // keep the (possibly grown) scratch for the next round
		if len(eligible) > 0 {
			// Horizon batching: a channel-neutral cross head commutes with
			// every pending local event, so dispatch it without paying the
			// drain-and-barrier — the local work keeps accumulating for one
			// larger window at the next channel-coupled horizon, bounded by
			// the batch limit so a fully neutral workload cannot defer its
			// channel work (and the memory holding it) indefinitely.
			neutral := ok && e.shards[cross].neutral
			if neutral && pendingLocal <= e.batchLimit {
				e.stepShard(cross)
				st.CrossEvents++
				st.BatchedCross++
				if e.halted {
					return st
				}
				continue
			}
			st.Horizons++
			if neutral {
				st.LimitBarriers++
			}
			e.BeginWindow()
			if workers <= 1 || len(eligible) == 1 {
				for _, dom := range eligible {
					st.LocalEvents += uint64(e.StepDomainUntil(dom, at, seq))
				}
			} else {
				if pool == nil {
					pool = getPool()
				}
				st.ParallelHorizons++
				st.LocalEvents += pool.run(eligible, at, seq, workers)
			}
			e.EndWindow()
		}
		if !ok {
			return st
		}
		e.stepShard(cross)
		st.CrossEvents++
		if e.halted {
			// A power-loss cut: every event before the halting cross event
			// (in (time, sequence) order) has dispatched — the windows above
			// drained the local shards strictly up to it at any worker count
			// — and everything after it stays queued. The surviving state is
			// therefore identical to the serial drain halting at the same
			// event.
			return st
		}
	}
}

// WorkerPool is a reusable RunParallel worker set: workers-1 background
// goroutines plus the coordinator drain an atomically indexed list of
// eligible domains each window. Handoff is one unbuffered channel token per
// participating worker (a happens-before edge for the window fields) and a
// WaitGroup barrier back. RunParallel builds a transient one per call;
// RunParallelWith reuses a caller-owned pool across drains. Close releases
// the background goroutines; a closed pool must not be used again.
type WorkerPool struct {
	e       *Engine
	workers int // total workers including the coordinating caller
	nbg     int // background goroutines (workers - 1)
	doms    []DomainID
	at      Time
	seq     uint64
	next    int32 // atomic index into doms
	events  int64 // atomic dispatched-count accumulator
	start   chan struct{}
	wg      sync.WaitGroup
}

// NewWorkerPool parks workers-1 background goroutines for horizon windows
// on e. workers counts the calling goroutine too; values <= 1 park none
// (the pool then only marks the intended width for RunParallelWith).
func NewWorkerPool(e *Engine, workers int) *WorkerPool {
	if workers < 1 {
		workers = 1
	}
	p := &WorkerPool{e: e, workers: workers, nbg: workers - 1, start: make(chan struct{})}
	for w := 0; w < p.nbg; w++ {
		go func() {
			for range p.start {
				p.drain()
				p.wg.Done()
			}
		}()
	}
	return p
}

// drain steps eligible domains until the shared index runs out.
func (p *WorkerPool) drain() {
	var n int64
	for {
		i := int(atomic.AddInt32(&p.next, 1)) - 1
		if i >= len(p.doms) {
			break
		}
		n += int64(p.e.StepDomainUntil(p.doms[i], p.at, p.seq))
	}
	if n != 0 {
		atomic.AddInt64(&p.events, n)
	}
}

// run fans one window out over at most `workers` total participants
// (including the coordinating caller; the caller passes its clamped width,
// which may be below the pool's parked-goroutine count) and blocks until
// every domain is stepped.
func (p *WorkerPool) run(doms []DomainID, at Time, seq uint64, workers int) uint64 {
	p.doms, p.at, p.seq = doms, at, seq
	atomic.StoreInt32(&p.next, 0)
	atomic.StoreInt64(&p.events, 0)
	n := workers - 1
	if n > p.nbg {
		n = p.nbg
	}
	if n > len(doms)-1 {
		n = len(doms) - 1 // the coordinator always takes at least one
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		p.start <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
	return uint64(atomic.LoadInt64(&p.events))
}

// Close releases the pool's background goroutines.
func (p *WorkerPool) Close() { close(p.start) }
