package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Horizon-synchronized parallel dispatch. Every scheduling domain is one of
// two classes:
//
//   - cross-domain (the default): its events may read or write any
//     simulator state and may schedule further events anywhere. They are
//     always dispatched serially, in global (time, sequence) order.
//
//   - domain-local (marked with MarkDomainLocal): its events touch only
//     state owned by that domain (per-NAND-channel buses, dies, counters,
//     tracked-page copies) and never call back into the engine — no
//     scheduling, no cancels, no Step. Between two cross-domain events,
//     events in distinct domain-local shards are causally independent, so
//     they may be dispatched concurrently by different workers without
//     changing any observable result.
//
// RunParallel exploits this: it repeatedly computes the horizon — the
// (time, sequence) key of the earliest pending cross-domain event — lets
// workers drain every domain-local shard strictly up to that key
// (StepDomainUntil), barriers (EndWindow), then dispatches the horizon
// event serially and repeats. doc.go states the full determinism argument;
// the short form is that the dispatch order restricted to any one state
// partition (each local domain, and the union of all cross domains) is
// identical to the serial order, and all scheduling happens in serial
// sections so sequence numbers are assigned identically too.

// checkSerial panics when a serial-only engine call is made while a
// parallel window is open. Window callbacks must not touch the engine;
// this turns such bugs into a deterministic panic instead of a data race.
func (e *Engine) checkSerial() {
	if e.inWindow {
		panic("sim: engine call during an open parallel window (domain-local events must not schedule, cancel or step)")
	}
}

// MarkDomainLocal classifies dom as domain-local: its events touch only
// per-domain state and never call the engine, so RunParallel may dispatch
// them concurrently with other local domains between synchronization
// horizons. Marking is idempotent and, like Domain registration, is a
// setup-time call.
func (e *Engine) MarkDomainLocal(dom DomainID) {
	e.checkSerial()
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: marking unregistered domain %d local", dom))
	}
	sh := &e.shards[dom]
	if sh.local {
		return
	}
	sh.local = true
	e.locals = append(e.locals, dom)
}

// IsDomainLocal reports whether dom was marked domain-local.
func (e *Engine) IsDomainLocal(dom DomainID) bool {
	return int(dom) < len(e.shards) && e.shards[dom].local
}

// NextCrossDomainTime returns the (time, sequence) key of the earliest
// pending event in any cross-domain shard, or ok=false when every
// cross-domain shard is empty. RunParallel uses it as the horizon bound for
// a window; the scan is O(number of cross shards), which a full system
// keeps small (host, cpu, icl.dram, dma, fil, default).
func (e *Engine) NextCrossDomainTime() (at Time, seq uint64, ok bool) {
	best := emptyNode
	for s := range e.shards {
		sh := &e.shards[s]
		if sh.local || len(sh.heap) == 0 {
			continue
		}
		rec := &e.records[sh.heap[0]]
		if n := (treeNode{at: rec.at, key: rec.seq<<16 | uint64(s)}); n.beats(best) {
			best = n
		}
	}
	if best == emptyNode {
		return 0, 0, false
	}
	return best.at, best.key >> 16, true
}

// BeginWindow opens a parallel window: until EndWindow, the only legal
// engine calls are StepDomainUntil on distinct domain-local shards,
// possibly from concurrent goroutines. All other engine methods panic.
func (e *Engine) BeginWindow() {
	if e.inWindow {
		panic("sim: nested BeginWindow")
	}
	e.inWindow = true
}

// StepDomainUntil dispatches every pending event of the given domain-local
// shard whose (time, sequence) key is strictly before (horizon,
// horizonSeq), in shard order, and returns the number dispatched. It is the
// one engine call legal inside an open window and may run concurrently
// with StepDomainUntil on other shards: all bookkeeping it touches is
// owned by the shard (an atomic owner guard panics if two workers ever
// step the same shard). Freed records, the pending delta and the clock
// advance are staged on the shard and merged serially by EndWindow.
func (e *Engine) StepDomainUntil(dom DomainID, horizon Time, horizonSeq uint64) int {
	if !e.inWindow {
		panic("sim: StepDomainUntil outside an open window")
	}
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: stepping unregistered domain %d", dom))
	}
	sh := &e.shards[dom]
	if !sh.local {
		panic(fmt.Sprintf("sim: StepDomainUntil on cross-domain shard %q", sh.name))
	}
	if !atomic.CompareAndSwapInt32(&sh.owner, 0, 1) {
		panic(fmt.Sprintf("sim: shard %q stepped by two workers concurrently", sh.name))
	}
	n := 0
	for len(sh.heap) > 0 {
		id := sh.heap[0]
		rec := &e.records[id]
		if rec.at > horizon || (rec.at == horizon && rec.seq >= horizonSeq) {
			break
		}
		e.heapRemoveAt(sh, 0)
		sh.dispatched++
		sh.popped++
		if rec.at > sh.maxAt {
			sh.maxAt = rec.at
		}
		fn := rec.fn
		rec.fn = nil
		rec.gen++
		sh.freed = append(sh.freed, id)
		n++
		fn()
	}
	atomic.StoreInt32(&sh.owner, 0)
	return n
}

// EndWindow closes a parallel window: it merges each local shard's staged
// bookkeeping back into the engine — pending and dispatched counters, freed
// record slots (in domain registration order, so the free list stays
// deterministic), the clock (to the latest event dispatched in the window)
// — and repairs the tournament leaves of the shards that changed.
func (e *Engine) EndWindow() {
	if !e.inWindow {
		panic("sim: EndWindow without BeginWindow")
	}
	e.inWindow = false
	for _, dom := range e.locals {
		sh := &e.shards[dom]
		if sh.popped == 0 {
			continue
		}
		e.pending -= sh.popped
		e.dispatched += uint64(sh.popped)
		e.free = append(e.free, sh.freed...)
		sh.freed = sh.freed[:0]
		sh.popped = 0
		if sh.maxAt > e.now {
			e.now = sh.maxAt
		}
		sh.maxAt = 0
		e.repair(int(dom))
	}
}

// ParallelStats reports the horizon structure of one RunParallel drain.
type ParallelStats struct {
	Horizons         uint64 // windows that dispatched at least one local event
	ParallelHorizons uint64 // of those, windows fanned out over >1 worker
	LocalEvents      uint64 // events dispatched inside windows
	CrossEvents      uint64 // events dispatched serially between windows
}

// MeanLocalPerHorizon returns the average number of domain-local events a
// window dispatched — the work available between two synchronization
// barriers, the figure of merit for intra-device parallel efficiency.
func (p ParallelStats) MeanLocalPerHorizon() float64 {
	if p.Horizons == 0 {
		return 0
	}
	return float64(p.LocalEvents) / float64(p.Horizons)
}

// RunParallel dispatches events until the queue drains, like Run, but steps
// domain-local shards concurrently between synchronization horizons over up
// to `workers` goroutines (the calling goroutine is one of them). The
// result — every callback effect, counter and the final clock — is
// byte-identical to Run at any worker count; see doc.go for the argument.
// With workers <= 1 the same horizon-structured loop runs entirely on the
// calling goroutine, which is the reference mode for equivalence tests.
func (e *Engine) RunParallel(workers int) ParallelStats {
	var st ParallelStats
	if len(e.locals) == 0 {
		for e.Step() {
			st.CrossEvents++
		}
		return st
	}
	if workers > len(e.locals) {
		workers = len(e.locals)
	}
	var pool *windowPool
	defer func() {
		if pool != nil {
			pool.close()
		}
	}()
	eligible := make([]DomainID, 0, len(e.locals))
	for {
		at, seq, ok := e.NextCrossDomainTime()
		if !ok {
			// No cross-domain work left: drain every local shard fully.
			at, seq = MaxTime, ^uint64(0)
		}
		eligible = eligible[:0]
		for _, dom := range e.locals {
			sh := &e.shards[dom]
			if len(sh.heap) == 0 {
				continue
			}
			rec := &e.records[sh.heap[0]]
			if rec.at < at || (rec.at == at && rec.seq < seq) {
				eligible = append(eligible, dom)
			}
		}
		if len(eligible) > 0 {
			st.Horizons++
			e.BeginWindow()
			if workers <= 1 || len(eligible) == 1 {
				for _, dom := range eligible {
					st.LocalEvents += uint64(e.StepDomainUntil(dom, at, seq))
				}
			} else {
				if pool == nil {
					pool = newWindowPool(e, workers-1)
				}
				st.ParallelHorizons++
				st.LocalEvents += pool.run(eligible, at, seq)
			}
			e.EndWindow()
		}
		if !ok {
			return st
		}
		e.Step()
		st.CrossEvents++
	}
}

// windowPool is RunParallel's persistent worker set: workers-1 background
// goroutines plus the coordinator drain an atomically indexed list of
// eligible domains each window. Handoff is one unbuffered channel token per
// participating worker (a happens-before edge for the window fields) and a
// WaitGroup barrier back.
type windowPool struct {
	e      *Engine
	nbg    int // background workers
	doms   []DomainID
	at     Time
	seq    uint64
	next   int32 // atomic index into doms
	events int64 // atomic dispatched-count accumulator
	start  chan struct{}
	wg     sync.WaitGroup
}

func newWindowPool(e *Engine, background int) *windowPool {
	p := &windowPool{e: e, nbg: background, start: make(chan struct{})}
	for w := 0; w < background; w++ {
		go func() {
			for range p.start {
				p.drain()
				p.wg.Done()
			}
		}()
	}
	return p
}

// drain steps eligible domains until the shared index runs out.
func (p *windowPool) drain() {
	var n int64
	for {
		i := int(atomic.AddInt32(&p.next, 1)) - 1
		if i >= len(p.doms) {
			break
		}
		n += int64(p.e.StepDomainUntil(p.doms[i], p.at, p.seq))
	}
	if n != 0 {
		atomic.AddInt64(&p.events, n)
	}
}

// run fans one window out and blocks until every domain is stepped.
func (p *windowPool) run(doms []DomainID, at Time, seq uint64) uint64 {
	p.doms, p.at, p.seq = doms, at, seq
	atomic.StoreInt32(&p.next, 0)
	atomic.StoreInt64(&p.events, 0)
	n := p.nbg
	if n > len(doms)-1 {
		n = len(doms) - 1 // the coordinator always takes at least one
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		p.start <- struct{}{}
	}
	p.drain()
	p.wg.Wait()
	return uint64(atomic.LoadInt64(&p.events))
}

func (p *windowPool) close() { close(p.start) }
