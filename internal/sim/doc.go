// Package sim provides the discrete-event simulation core used by every
// Amber subsystem: a picosecond-resolution clock, a cancellable event
// queue, time-reservation resources that model contention on buses, dies,
// controllers and CPU cores, and a deterministic RNG.
//
// All of Amber is single-threaded and deterministic: components reserve
// spans of simulated time on shared resources and schedule completion
// events; the engine dispatches events in non-decreasing time order, with
// FIFO ordering among events at the same instant.
//
// # Engine design: pooled records, sharded index heaps, generation handles
//
// The engine is the innermost loop of every experiment — the Fig. 16
// simulation-speed claim lives or dies here — so its data layout is chosen
// to make Schedule/Step allocation-free and cache-friendly in steady state:
//
//   - Event records live in one flat []eventRecord slice. A fired or
//     cancelled record's slot goes onto a free list and is reused by the
//     next Schedule, so a workload with bounded in-flight events reaches a
//     fixed pool size and never allocates again. The callback reference is
//     cleared on release to keep closures collectable.
//
//   - Ordering is sharded by scheduling domain: each domain (registered
//     with Engine.Domain, targeted with ScheduleIn/AtIn, one per NAND
//     channel plus host/HIL, ICL/DRAM, CPU, DMA and a default shard in a
//     full system) owns an index-based 4-ary min-heap — a []int32 of
//     record ids keyed by (time, sequence). Compared to the pointer-based
//     binary container/heap this needs no per-event heap object, no
//     interface boxing on push/pop, walks half the levels per sift, and
//     touches a quarter the cache lines; sharding additionally cuts the
//     sift depth from log4(N_total) to log4(N_shard) on the dominant
//     per-channel traffic.
//
//   - The global minimum is read from a tournament (winner) tree over the
//     shard heads. Each node caches the winning head's (time, sequence)
//     key inline, so when one shard's head changes — push of a new head,
//     dispatch, head cancel — repairing replays only that leaf's root
//     path, one sibling load and compare per level with an early exit
//     once a node's value stops changing: O(log S) worst case. Dispatch
//     order is provably identical to one global heap: the sequence
//     counter is engine-global and unique, every comparison (in-shard and
//     cross-shard) is by the same (time, sequence) key, so the tournament
//     winner is the global minimum and FIFO among equal times holds
//     across shards. The golden equivalence test locks this in against an
//     independent single-queue reference through random Schedule/Cancel/
//     Step/RunUntil/Reset interleavings.
//
//   - The Event handle returned by Schedule/At is a value
//     {engine, slot id, generation}. Each release bumps the slot's
//     generation, so a stale handle (its event fired or was cancelled, the
//     slot possibly reused) simply compares unequal: Pending reports
//     false and Cancel is a no-op. This keeps the timeout pattern — keep a
//     handle, cancel it if the guarded event happens first — safe with
//     aggressive slot reuse, with no allocation and no epoch bookkeeping
//     at the call sites.
//
//   - Reset rewinds the clock and recycles all queued records, keeping the
//     pool, the registered domains and the lifetime per-domain dispatch
//     counters. The synchronous core.Submit wrapper reuses one engine this
//     way for its per-request private simulation.
//
// # Resources
//
// Resource and Pool model FCFS servers by time reservation: Claim(now, dur)
// returns the [start, end) service interval, queueing behind the previous
// reservation. ClaimAt(start, dur) is the trace-replay variant: it reserves
// exactly at start (the caller asserts the resource is genuinely free then)
// and only pushes the next-free time forward. This is exact for FCFS
// disciplines and removes any explicit queue processes from the hot path.
//
// # Related arenas
//
// The same pooling discipline extends up the stack: package nand stores
// tracked page contents in a chunked arena indexed by physical page number
// (256 pages per chunk, presence bitmap, erase clears bits without freeing
// chunks), and package core recycles its per-request submit and fill op
// structs through free lists with their event callbacks bound once. See
// those packages for details; together they make the submit path
// zero-allocation in steady state.
package sim
