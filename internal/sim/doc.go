// Package sim provides the discrete-event simulation core used by every
// Amber subsystem: a picosecond-resolution clock, a cancellable event
// queue, time-reservation resources that model contention on buses, dies,
// controllers and CPU cores, and a deterministic RNG.
//
// All of Amber is single-threaded and deterministic: components reserve
// spans of simulated time on shared resources and schedule completion
// events; the engine dispatches events in non-decreasing time order, with
// FIFO ordering among events at the same instant.
//
// # Engine design: pooled records, sharded index heaps, generation handles
//
// The engine is the innermost loop of every experiment — the Fig. 16
// simulation-speed claim lives or dies here — so its data layout is chosen
// to make Schedule/Step allocation-free and cache-friendly in steady state:
//
//   - Event records live in one flat []eventRecord slice. A fired or
//     cancelled record's slot goes onto a free list and is reused by the
//     next Schedule, so a workload with bounded in-flight events reaches a
//     fixed pool size and never allocates again. The callback reference is
//     cleared on release to keep closures collectable.
//
//   - Ordering is sharded by scheduling domain: each domain (registered
//     with Engine.Domain, targeted with ScheduleIn/AtIn, one per NAND
//     channel plus host/HIL, ICL/DRAM, CPU, DMA and a default shard in a
//     full system) owns an index-based 4-ary min-heap — a []int32 of
//     record ids keyed by (time, sequence). Compared to the pointer-based
//     binary container/heap this needs no per-event heap object, no
//     interface boxing on push/pop, walks half the levels per sift, and
//     touches a quarter the cache lines; sharding additionally cuts the
//     sift depth from log4(N_total) to log4(N_shard) on the dominant
//     per-channel traffic.
//
//   - The global minimum is read from a tournament (winner) tree over the
//     shard heads. Each node caches the winning head's (time, sequence)
//     key inline, so when one shard's head changes — push of a new head,
//     dispatch, head cancel — repairing replays only that leaf's root
//     path, one sibling load and compare per level with an early exit
//     once a node's value stops changing: O(log S) worst case. Dispatch
//     order is provably identical to one global heap: the sequence
//     counter is engine-global and unique, every comparison (in-shard and
//     cross-shard) is by the same (time, sequence) key, so the tournament
//     winner is the global minimum and FIFO among equal times holds
//     across shards. The golden equivalence test locks this in against an
//     independent single-queue reference through random Schedule/Cancel/
//     Step/RunUntil/Reset interleavings.
//
//   - The Event handle returned by Schedule/At is a value
//     {engine, slot id, generation}. Each release bumps the slot's
//     generation, so a stale handle (its event fired or was cancelled, the
//     slot possibly reused) simply compares unequal: Pending reports
//     false and Cancel is a no-op. This keeps the timeout pattern — keep a
//     handle, cancel it if the guarded event happens first — safe with
//     aggressive slot reuse, with no allocation and no epoch bookkeeping
//     at the call sites.
//
//   - Reset rewinds the clock and recycles all queued records, keeping the
//     pool, the registered domains and the lifetime per-domain dispatch
//     counters. The synchronous core.Submit wrapper reuses one engine this
//     way for its per-request private simulation.
//
// # Domain-local vs cross-domain events, horizon-synchronized parallelism
//
// With the per-channel shards in place, the engine distinguishes two event
// classes (MarkDomainLocal):
//
//   - Cross-domain (the default: host/HIL, CPU, ICL/DRAM, DMA, the fil
//     continuation shard, default). These events may read or write any
//     simulator state and may schedule or cancel events anywhere. Firmware
//     stage boundaries, cache installs, GC, transfers and request
//     completions are all cross-domain: each can observe several channels.
//
//   - Domain-local (the per-NAND-channel shards). These events touch only
//     state owned by their channel — the channel's counters and energy
//     accumulator, its pooled completion carriers, its tracked-data arena
//     and pending-install index, and destination slices no other event
//     writes — and never call back into the engine: no scheduling, no
//     cancels, no Now. In the full system they are exactly the deferred
//     per-channel bookkeeping of flash transactions: read completions
//     (nand.Flash.ReadDeferred) and the per-die plan batches of program
//     installs and erase clears (nand.PlanBatch via fil.ExecuteOn).
//
// RunParallel exploits the split: it computes the horizon — the earliest
// cross-domain (time, sequence) key (NextCrossDomainTime) — opens a window
// (BeginWindow), lets workers drain every domain-local shard strictly up
// to that key (StepDomainUntil, one shard per worker at a time, enforced
// by an atomic owner guard that panics if two workers ever step one
// shard), barriers (EndWindow, which merges the staged pending/dispatched
// deltas, freed record slots in fixed domain order, and the clock), then
// dispatches the horizon event serially and repeats.
//
// Why this is byte-identical to the serial dispatch, at any worker count:
//
//  1. Every scheduling call happens in a serial section (cross-domain
//     callbacks or setup code) — domain-local events never schedule — so
//     the global sequence counter assigns the same (time, sequence) key to
//     every event in both modes, and a window's event set is fixed when it
//     opens.
//
//  2. Within one domain, StepDomainUntil pops the shard heap in (time,
//     sequence) order — the same relative order the serial loop dispatches
//     those events in.
//
//  3. Two domain-local events in different domains commute: their state
//     partitions are disjoint by the domain-local contract, so dispatching
//     them in either order (or concurrently) yields the same final state.
//     Serial-call guards turn contract violations into panics, and the
//     race job keeps the no-shared-state claim honest under -race.
//
//  4. A domain-local event L and a cross-domain event C do not commute (C
//     may read L's channel state), but their relative order is preserved
//     exactly: the window dispatches precisely the local events whose key
//     is strictly before C's key — the same set that precedes C in the
//     serial total order, including same-time events, which the strict
//     (time, sequence) bound orders by their engine-global sequence.
//
// So the dispatch order restricted to every state partition is identical
// to serial, all cross-partition reads observe identical state, and the
// merged bookkeeping (counters in fixed domain order, per-channel float
// accumulators summed in channel order) is deterministic. The golden tests
// lock this in at the engine level (TestRunParallelEquivalence) and
// through the full stack (core's TestIntraParallelGoldenEquivalence and
// TestWriteDeferredGoldenEquivalence: identical experiment tables,
// per-domain dispatch counts and payload bytes through GC-triggering
// workloads).
//
// # Deferred writes: why staged-at-issue data and channel-ordered merges
// preserve the serial observable state
//
// Deferring a program or erase is subtler than deferring a read, because
// writes change what later reads observe. Three mechanisms keep the
// deferred path's observable state identical to synchronous execution:
//
//  1. Functional state transitions stay at issue. The block's written map,
//     in-order program pointer and erase count mutate synchronously when
//     the transaction is issued (in a serial section), so every later
//     serial-section check — CheckRead, CheckProgram, plan prevalidation —
//     sees exactly the state the synchronous path would show. Only the
//     bookkeeping (counters, energy, tracked-data arena updates) defers.
//
//  2. Data is latched at issue. A program's page bytes are copied into a
//     pooled per-channel staging buffer when it issues (physically: the
//     die register latches the data when the bus transfer ends), and the
//     channel's pending-install index maps the physical page to those
//     staged bytes until the install event runs. Every read-side copy
//     (ReadDeferred's staging, plan reads, synchronous Read) consults the
//     index before the arena, so a read issued after a program observes
//     the programmed bytes whether or not the install has dispatched —
//     and an in-flight read is immune to a later GC erase + reprogram of
//     the same page because its own bytes were staged at its issue
//     (TestReadDeferredSnapshotsAtIssue, TestDeferredGCReprogramOrdering).
//
//  3. Arena updates merge in channel order, aligned with issue order by
//     die serialization. A channel shard dispatches its events in (time,
//     seq) order. Installs and clears are grouped per (plan, die)
//     (nand.dieBatch) and scheduled at the die's last completion time;
//     because the die and channel resources serialize every claim, any
//     transaction of a later plan on the same die completes strictly
//     after every transaction of an earlier plan on that die, so batches
//     of the same die dispatch in plan-issue order, records within a
//     batch apply in issue order, and batches of different dies touch
//     disjoint pages. The arena therefore converges to exactly the
//     synchronous sequence of puts and clears. (Same-page traffic always
//     shares a die, so cross-die timing never reorders a page's history.)
//
// # Horizon batching: the channel-neutral safety condition
//
// Small-window workloads (4K random reads) average near one local event
// per horizon, so the per-horizon barrier dominates. A cross-domain shard
// may opt out of forcing barriers by being marked channel-neutral
// (MarkChannelNeutral): RunParallel then dispatches its head events while
// eligible domain-local events are still pending, deferring the drain to
// the next channel-coupled horizon and batching consecutive neutral cross
// events between two barriers.
//
// The safety condition a neutral shard's events must satisfy: they do not
// read or write any state that pending domain-local events write — the
// per-channel counters and energy accumulators, arena pages except
// through the pending-aware staging path of mechanism 2 (which returns
// identical bytes whether the pending install has run or not, so the
// interleaving is unobservable), and in-flight read destination buffers.
// Issuing new flash transactions from a neutral event is fine: claims,
// functional block state and the pending index live in serial sections and
// commute with pending bookkeeping (carrier-pool push/pop interleavings
// can change which pooled object is reused, never an observable). Under
// that condition a neutral event C commutes with every pending local event
// L, so dispatching C before L — the only reordering batching introduces
// relative to the serial total order — leaves every state partition's
// history unchanged. In the full system, core marks host, CPU and DMA
// arbitration shards neutral (active architecture), and — with two-stage
// fill installs, the default — the fil.publish and icl shards too (the
// next two sections). The legacy fil continuation shard (single-stage fill
// installs read line buffers that pending read completions write) stays
// barrier-forcing.
//
// The wall-clock win has three parts: batch-draining a shard skips the
// per-event tournament read/repair the serial loop pays (measurable even
// single-threaded), horizon batching cuts barrier frequency on
// small-window workloads, and with GOMAXPROCS > 1 the channel shards'
// work — dominated by tracked-data page copies and installs on
// data-tracking systems — runs on real cores in parallel (RunParallel
// clamps its fan-out to GOMAXPROCS; extra workers only add handoff cost).
//
// # Two-stage fill installs: precopy at issue, publish horizon-ordered
//
// The fill continuation — the cache install, memory charge and waiter
// wakeup that follow a flash-backed fetch — originally had to ride a
// barrier-forcing cross shard: the install read a line buffer that the
// fetch's pending channel events were still writing (the deferred dst
// copies), so dispatching it early would observe incomplete bytes. That
// coupling cost one barrier per fill, the dominant tax on read-miss-heavy
// workloads whose windows average near one local event.
//
// The two-stage structure dissolves the coupling instead of scheduling
// around it. The precopy stage delivers the page bytes into the fill's
// line buffer at issue time (nand.Flash.ReadDeferredEager through
// fil.ReadSubsStaged): the copy happens in the serial section, reads the
// channel's pending-aware index — so it is channel-ordered by
// construction, observing exactly the bytes the synchronous path would —
// and is the only data movement (one copy, where the deferred-dst scheme
// staged the same bytes at issue and copied them again inside the channel
// event). The channel shards then carry only the reads' counters and
// energy. The publish stage (core's fil.publish shard) installs the
// completed buffer, and is horizon-ordered like any cross event — but
// because its buffer was finished before the fill's bookkeeping was even
// scheduled, it reads nothing that any pending domain-local event writes.
// It therefore satisfies the channel-neutral condition above and is marked
// MarkChannelNeutral in the active architecture: consecutive fills from
// different channels batch past pending channel work instead of paying a
// barrier each. Determinism is immediate: the publish consumes bytes fixed
// at issue (identical in every mode), publishes dispatch in cross order
// (batching never reorders cross events), and the accounting it skips past
// merges per channel in shard order exactly as before.
//
// # The icl write-back shard is channel-neutral: proof obligation
//
// Marking the icl shard (write-ops stages, eviction flushes, no-flash
// fills) neutral carries a proof obligation under the same condition: its
// events must not read or write any state pending domain-local events
// write. The discharge is an audit of everything a write-ops event does:
// ICL probes and installs (cross-owned line state), DRAM and flush-buffer
// claims (serial-section resources), FTL mapping mutations (cross-owned),
// and the eviction flush itself — fil.ExecuteOn — which *issues* flash
// transactions. Issuing is exactly the case the safety condition already
// blesses: resource claims, functional block state, the certified-plan
// epoch and the pending-install index all live in serial sections and
// commute with pending bookkeeping; plan pre-reads (GC migrations, RMW
// fills) copy their bytes at issue through the pending-aware index, which
// returns identical bytes whether or not the pending install has run; and
// the per-channel counters, energy and arena mutations the flush *causes*
// are scheduled as new channel-shard events with later keys, not touched
// directly. Nothing in the path reads a channel counter, an energy
// accumulator, an arena page outside the staging path, or an in-flight
// destination buffer. With fills published neutrally and the icl shard
// neutral, every cross shard of the active architecture batches, which is
// what extends horizon batching to write-heavy traffic.
//
// # The batch limit: bounding deferred channel work
//
// With every cross shard neutral, nothing would drain the local shards
// until the cross queue empties at the end of the run — unbounded pending
// events, carriers and staged buffers. Engine.SetBatchLimit bounds the
// accumulation: once the eligible local shards' queue depth exceeds the
// limit (DefaultBatchLimit 4096), a neutral head forces a window anyway
// (ParallelStats.LimitBarriers). The decision reads only shard queue
// depths, so the window placement is a pure function of queue state —
// identical at every worker count — and since batching a neutral event is
// safe at any depth, the limit affects only when barriers are paid, never
// what any event observes. The forced windows double as the parallelism
// pump on wide workloads: accumulated channel work fans out over the
// worker pool in large, efficient windows instead of the per-fill slivers
// the barrier-per-fill structure produced.
//
// # Fault-schedule determinism under horizon-parallel execution
//
// The nand fault-injection subsystem (nand.FaultConfig) must draw the
// same fault schedule — which operations fail, in which order, with which
// recovery consequences — at any worker count, or the byte-identical
// guarantee above would silently exclude the most interesting runs. Three
// properties make the schedule a pure function of the seed and the
// request stream, independent of wall-clock and of the horizon structure:
//
//  1. Draws happen at issue time, in serial sections. Every fault
//     decision — program, erase, and the read-retry ladder — is evaluated
//     when the transaction is issued (after its Check* validation,
//     before any claim or functional mutation), and issuing only ever
//     happens from cross-domain callbacks or setup code. Domain-local
//     channel events never draw: the bookkeeping they defer (counters,
//     energy, arena installs) is downstream of an already-decided issue.
//     So the set of draws and their interleaving is fixed by the serial
//     total order of issues, which mechanisms 1-4 above already prove
//     identical at every worker count.
//
//  2. Draws are stateless. A draw is a pure hash of (seed, operation
//     kind, physical index, the block's erase count, retry attempt) — no
//     shared RNG stream whose cursor position could depend on draw
//     order, no wall-clock, no global counter. Two consequences: probing
//     an operation's outcome is idempotent (the FIL's deferred
//     prevalidation probe and the later issue draw agree by
//     construction, so a fault surfaces at probe time, claims nothing
//     and queues nothing — the same error-implies-no-mutation contract
//     prevalidation already provides), and the schedule depends only on
//     each operation's own history (the erase count its block has
//     reached), which is functional state mutated at issue in serial
//     sections.
//
//  3. Fault accounting stays serial. FaultStats increments and
//     fault-site records happen inside the issue draw, never inside a
//     channel event, so the stats read identically at any worker count
//     without merge rules.
//
// The recovery path inherits determinism from the same argument: a plan
// fault surfaces from a serial-section issue, the FIL commits the
// executed prefix and disarms the certified chain serially, and the
// FTL's recovery replan is a pure function of its (serial) mapping
// state. The core golden test locks the whole chain in: a GC-heavy run
// with faults enabled renders identical fault sites, retirement order,
// stats and payload bytes at workers 1, 2 and 4.
//
// # Power-loss determinism: the durable/volatile split under parallelism
//
// The durability subsystem (nand.Flash.PowerLoss, ftl Mount/recovery,
// core snapshot/restore) rides on the same horizon structure, and its
// guarantee is the same one: an emulated power cut at simulated time T
// produces the identical post-recovery device at any worker count. Four
// rules make that hold:
//
//  1. The cut is a cross-domain event. core schedules PowerLossAt as a
//     plain cross event in its own domain, so RunParallel barriers before
//     dispatching it: every domain-local event with key strictly before
//     the cut has run, every one after it has not, and that prefix is the
//     same set the serial loop would have dispatched (property 4 of the
//     window argument above). The volatile/durable classification of
//     every byte of simulator state is therefore fixed by the serial
//     total order, not by which worker happened to run what.
//
//  2. Durable state is exactly what reached NAND. The cut discards all
//     volatile firmware state — ICL cache lines and flush buffers,
//     staged pageBufs, in-flight plans, the deferred per-channel
//     bookkeeping — and keeps only the arena pages and per-page OOB
//     stamps (logical tag, device-wide write sequence, checksum) that
//     programs physically completed. A program in flight at T resolves
//     torn-or-committed by a stateless seeded draw keyed on (seed,
//     physical page, write sequence) — the same draw discipline as fault
//     injection: no shared RNG cursor, so the resolution is a pure
//     function of the cut time and the issue stream. Claimed-but-unstarted
//     erases are undone from per-block snapshots taken at claim time
//     (functional state mutates at issue, far ahead of dispatch, so a cut
//     can land between claim and start).
//
//  3. Mount rebuilds from OOB alone. ftl.Mount scans every block's OOB
//     stamps in fixed physical order, keeps the highest-sequence valid
//     copy of each logical page, discards torn tails by checksum, and
//     reconstructs mapping, valid counts, append pointers and retirement
//     state with no reference to any volatile structure. Because the
//     durable image is deterministic (rules 1-2) and the scan order is
//     fixed, the mounted FTL is too — including the post-mount free-
//     reserve recovery (cleanup erases of fully-stale blocks, and the
//     emergency squeeze compaction when a cut undoes every claimed erase
//     and leaves no erased block at all).
//
//  4. Snapshots serialize only functional state. core.Snapshot encodes
//     the drained system — clocks, resources' next-free times, FTL
//     mapping, cache contents, arena pages, stats — into a checksummed,
//     versioned, config-fingerprinted image (package snap); Restore
//     decodes into a fresh system and swaps only on full success, so a
//     corrupt or skewed image fails with a typed error and an untouched
//     target. A drained system has no pending events, so the image is
//     mode-independent by construction, and restore(snapshot(S))
//     continues byte-identical to S at any worker count.
//
// The golden tests lock the chain in end to end: power-loss recovery and
// cut-time sweeps compare serial against workers 1, 2 and 4 under -race,
// and the snapshot round-trip asserts re-snapshot byte-equality plus an
// identical continuation trajectory.
//
// # Read certificates: mapped implies written while the chain is armed
//
// The certified-plan chain (ftl/fil) extends to the read side. While the
// chain is armed, every mapping the FTL publishes was installed by a plan
// the FIL executed to completion: a lookup that returns a physical
// location is therefore proof the location was programmed, and the
// per-address nand.CheckRead walk a staged read would pay re-derives
// exactly that fact. ftl.FTL.LookupCertified stamps its result with a
// ReadCert naming the issuer and the nand.Flash.StateEpoch it observed;
// fil.ReadSubsStaged (and the core fill path above it) honor the cert and
// skip the walk, counting fil.Stats.CertifiedReads. The cert is advisory,
// never load-bearing for safety: a stale epoch (cert observed an older
// flash state) silently falls back to the walked path, and anything that
// could break the invariant — a raw OCSSD channel op, an injected plan
// fault, a power cut, a mount — disarms the chain exactly as on the write
// side (fil.Stats.CertDisarms), after which every read walks until
// AcceptCertified re-arms. Injected read faults keep their draws on the
// certified path: the certificate trusts the model, not the silicon, so
// readFaultExtra and the retry ladder stay live while only the structural
// bounds/presence re-validation is skipped.
//
// # Batch windows: amortized bookkeeping with serial semantics
//
// core.System.SubmitBatch is the vectored entry over the same machinery:
// it runs each request through the identical inline or evented path a
// Submit loop would use, but drains the shared engine once per window —
// min(host scheduler dispatch window, protocol queue depth,
// core.DefaultBatchWindow, engine batch limit) requests — instead of once
// per request. Determinism needs no new argument: the deferred events a
// window accumulates are the same channel-neutral bookkeeping horizon
// batching already proved commutes with issue (counters, energy, arena
// installs make no resource claims and are keyed in per-channel order),
// so draining them at the window boundary dispatches the same multiset in
// the same per-channel order as draining after every request. The one
// subtlety is the engine clock: the drain rewinds it (Engine.Reset), so
// maintenance that prunes by engine time — the power-loss erase-undo
// journal — is pruned explicitly against the host clock instead
// (nand.Flash.PruneEraseUndo), which is sound because SubmitBatch is
// synchronous: no power cut can land before the call returns, so the host
// clock lower-bounds every future cut time. The golden equivalence test
// locks the contract in: SubmitBatch against a Submit loop over a
// GC-heavy mixed stream, byte-identical payloads, stats and completion
// times at workers 1, 2 and 4.
//
// # Scrub-domain determinism: patrol ticks as their own event domain
//
// The patrol scrubber (core.RunConfig.ScrubEvery) follows the power-loss
// playbook for background machinery under horizon parallelism: its ticks
// live in a dedicated engine domain ("scrub", like "powerloss"), so the
// scheduler's cross-domain ordering — not worker scheduling — decides
// where in the request stream each tick lands. A tick dispatches exactly
// when every domain's horizon has passed it, which is a property of the
// event multiset alone; at that point the scrubber reads the FTL's
// disturb/retention risk ranking (pure model state, identical at any
// worker count because every plan that shaped it dispatched identically)
// and emits its migration plan through the same certified serial section
// host writes use. The prefix of dispatched events before a tick is
// therefore byte-identical at workers 1, 2 and 4, which is what lets the
// scrub-enabled wear-out golden compare trajectories across the matrix —
// and what makes "scrub strictly defers the read-only latch" a testable
// claim instead of a race-dependent tendency.
//
// # RAIN reconstruction: the XOR identity is a property of durable state
//
// Die-level RAIN (ftl/rain.go) stripes each page row of a plane group as
// W data pages plus one parity page XOR-ing them, emitted in the same
// certified plan as the data write that completes the row. Flash pages
// program exactly once per erase cycle and a stripe erases atomically
// (the super-block erase wipes all planes), so from the parity program
// until the erase, the XOR identity over the row's physical contents is
// invariant — reconstruction reads no firmware RAM, only pages whose OOB
// stamps (tag, sequence, checksum verdict, stripe mask) prove membership.
// That is what makes an uncorrectable read's recovery deterministic at
// any worker count: core.System reassembles the page in the serial
// section that owns the faulted plan (stripe peers resolved from the
// mapping model, payloads XOR-ed from tracked flash state), executes a
// certified re-homing plan, and the repaired mapping is a pure function
// of the op sequence — the same function the serial drain computes. A
// missing or torn member is a double fault and degrades to the honest
// loss path (unmap, counted), never to serving reassembled-wrong bytes;
// parity membership itself survives power loss because the stripe mask
// rides the parity page's OOB stamp and ftl.Mount rebuilds it in the
// fixed scan order, with ftl.ParityCatchup re-emitting parity the cut
// stranded.
//
// # Farm determinism: device-local windows, host-ordered cross traffic
//
// The device farm (internal/farm) lifts the domain-local vs cross-domain
// split one level up: each member System is a whole parallel domain, and
// the only cross-domain actor is the host multiplexer. Execution is
// round-lockstep. A serial host phase runs first and fixes everything the
// round will do — it retires or retries the previous round's completions,
// admits new tenant arrivals, decomposes them into per-device ops
// (mirrored writes, hedged or failed-over reads), and issues the next
// hot-spare rebuild batch — assigning every op its device, payload and
// issue time before any device clock moves. Then the device windows open:
// one worker per device executes that device's ops through its own
// SubmitBatch, never touching another device's state. Finally a serial
// merge folds completions back in op-creation order, so retry/hedge/
// failover decisions in the next host phase see results in an order fixed
// by the host phase that created the ops, not by which worker finished
// first. Fault injection keeps the same discipline: whole-device deaths,
// read-only latches and latency storms are drawn by a pure function of
// (seed, device index, fault kind) via a splitmix64 mix, so the schedule
// is computed once at construction and is trivially worker-invariant.
// Worker count therefore never appears in any value the simulation
// computes, and the farm golden test pins it the strong way: a seeded
// fault storm across nine devices — death, failover, rebuild, hedging,
// retries and timeouts all exercised — must produce byte-identical stats,
// event timelines and per-device content digests serial and at workers
// 1, 2 and 4.
//
// # Resources
//
// Resource and Pool model FCFS servers by time reservation: Claim(now, dur)
// returns the [start, end) service interval, queueing behind the previous
// reservation. ClaimAt(start, dur) is the trace-replay variant: it reserves
// exactly at start (the caller asserts the resource is genuinely free then)
// and only pushes the next-free time forward. This is exact for FCFS
// disciplines and removes any explicit queue processes from the hot path.
//
// # Related arenas
//
// The same pooling discipline extends up the stack: package nand stores
// tracked page contents in a chunked arena indexed by physical page number
// (256 pages per chunk, presence bitmap, erase clears bits without freeing
// chunks), and package core recycles its per-request submit and fill op
// structs through free lists with their event callbacks bound once. See
// those packages for details; together they make the submit path
// zero-allocation in steady state.
package sim
