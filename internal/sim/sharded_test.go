package sim

import (
	"fmt"
	"sort"
	"testing"
)

// --- Reference single-heap oracle -----------------------------------------
//
// refScheduler is an independent reference implementation of the engine's
// dispatch contract: one flat queue kept sorted by (at, seq) with stable
// insertion. The sharded engine must stay byte-identical to it — same
// (time, dispatch-sequence, tag) order — through any interleaving of
// Schedule, Cancel, Step, RunUntil and Reset.

type refEvent struct {
	at  Time
	seq uint64
	tag int
}

type refScheduler struct {
	now  Time
	seq  uint64
	evts []refEvent
}

func (r *refScheduler) schedule(d Duration, tag int) uint64 {
	at := r.now + d
	seq := r.seq
	r.seq++
	i := sort.Search(len(r.evts), func(i int) bool {
		e := r.evts[i]
		return e.at > at || (e.at == at && e.seq > seq)
	})
	r.evts = append(r.evts, refEvent{})
	copy(r.evts[i+1:], r.evts[i:])
	r.evts[i] = refEvent{at: at, seq: seq, tag: tag}
	return seq
}

// cancel removes the event with the given schedule sequence; cancelling a
// fired or already-cancelled event is a no-op, like Engine.Cancel.
func (r *refScheduler) cancel(seq uint64) {
	for i := range r.evts {
		if r.evts[i].seq == seq {
			r.evts = append(r.evts[:i], r.evts[i+1:]...)
			return
		}
	}
}

func (r *refScheduler) step() (Time, int, bool) {
	if len(r.evts) == 0 {
		return 0, 0, false
	}
	ev := r.evts[0]
	r.evts = r.evts[1:]
	r.now = ev.at
	return ev.at, ev.tag, true
}

func (r *refScheduler) runUntil(t Time) []refEvent {
	var fired []refEvent
	for len(r.evts) > 0 && r.evts[0].at <= t {
		at, tag, _ := r.step()
		fired = append(fired, refEvent{at: at, tag: tag})
	}
	if t > r.now {
		r.now = t
	}
	return fired
}

func (r *refScheduler) reset() {
	r.evts = r.evts[:0]
	r.now = 0
	r.seq = 0
}

// --- Golden dispatch-order equivalence ------------------------------------

// TestEngineGoldenDispatchEquivalence drives the sharded engine and the
// single-queue reference through the same seeded random workload —
// schedules spread across many domains, cancels of live and stale handles,
// single steps, RunUntil sweeps and full Resets — and asserts the dispatch
// sequences (time, callback tag) are identical. This is the cross-check
// that sharding plus the tournament tree is a pure data-structure change:
// the global (time, seq) order, including FIFO among equal times across
// different shards, is exactly the single-heap order.
func TestEngineGoldenDispatchEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := NewEngine()
			doms := []DomainID{DefaultDomain}
			for i := 0; i < 7; i++ {
				doms = append(doms, e.Domain(fmt.Sprintf("shard%d", i)))
			}
			ref := &refScheduler{}
			rng := NewRNG(seed)

			type live struct {
				ev  Event
				seq uint64
			}
			var handles []live // includes stale ones: cancels hit both kinds
			var gotAt, wantAt []Time
			var gotTag, wantTag []int
			tag := 0

			record := func(tg int) func() {
				return func() {
					gotAt = append(gotAt, e.Now())
					gotTag = append(gotTag, tg)
				}
			}

			stepBoth := func() {
				at, tg, ok := ref.step()
				stepped := e.Step()
				if stepped != ok {
					t.Fatalf("Step=%v, reference=%v (pending %d vs %d)",
						stepped, ok, e.Pending(), len(ref.evts))
				}
				if ok {
					wantAt = append(wantAt, at)
					wantTag = append(wantTag, tg)
				}
			}

			for op := 0; op < 20000; op++ {
				switch r := rng.Intn(100); {
				case r < 55: // schedule into a random domain
					d := Duration(rng.Intn(50)) // small range: many time ties
					dom := doms[rng.Intn(len(doms))]
					tg := tag
					tag++
					ev := e.ScheduleIn(dom, d, record(tg))
					seq := ref.schedule(d, tg)
					handles = append(handles, live{ev, seq})
				case r < 65: // cancel a random (possibly stale) handle
					if len(handles) > 0 {
						h := handles[rng.Intn(len(handles))]
						if h.ev.Pending() {
							ref.cancel(h.seq)
						}
						e.Cancel(h.ev)
					}
				case r < 90: // dispatch one event
					stepBoth()
				case r < 97: // RunUntil a nearby horizon
					horizon := e.Now() + Duration(rng.Intn(30))
					fired := ref.runUntil(horizon)
					for _, f := range fired {
						wantAt = append(wantAt, f.at)
						wantTag = append(wantTag, f.tag)
					}
					e.RunUntil(horizon)
					if e.Now() != ref.now {
						t.Fatalf("RunUntil(%v): now %v vs reference %v", horizon, e.Now(), ref.now)
					}
				default: // full reset
					e.Reset()
					ref.reset()
					handles = handles[:0]
				}
				if e.Pending() != len(ref.evts) {
					t.Fatalf("op %d: Pending %d vs reference %d", op, e.Pending(), len(ref.evts))
				}
			}
			// Drain what's left.
			for e.Pending() > 0 {
				stepBoth()
			}

			if len(gotAt) != len(wantAt) {
				t.Fatalf("dispatched %d events, reference %d", len(gotAt), len(wantAt))
			}
			for i := range gotAt {
				if gotAt[i] != wantAt[i] || gotTag[i] != wantTag[i] {
					t.Fatalf("dispatch %d: got (t=%v tag=%d), want (t=%v tag=%d)",
						i, gotAt[i], gotTag[i], wantAt[i], wantTag[i])
				}
			}
		})
	}
}

// --- Domain semantics ------------------------------------------------------

func TestEngineDomainRegistration(t *testing.T) {
	e := NewEngine()
	if e.NumDomains() != 1 || e.DomainName(DefaultDomain) != "default" {
		t.Fatalf("fresh engine has %d domains (%q)", e.NumDomains(), e.DomainName(DefaultDomain))
	}
	a := e.Domain("nand.ch0")
	b := e.Domain("nand.ch1")
	if a == DefaultDomain || b == DefaultDomain || a == b {
		t.Fatalf("domain ids not distinct: %d %d", a, b)
	}
	if e.Domain("nand.ch0") != a {
		t.Fatal("re-registration must be idempotent")
	}
	if e.Domain("default") != DefaultDomain {
		t.Fatal("\"default\" must name the default domain")
	}
	if e.NumDomains() != 3 {
		t.Fatalf("NumDomains = %d, want 3", e.NumDomains())
	}
}

// TestEngineFIFOAcrossDomains locks in the cross-shard tie rule: events at
// the same instant fire in schedule order no matter which domains they
// landed in, because the sequence counter is engine-global.
func TestEngineFIFOAcrossDomains(t *testing.T) {
	e := NewEngine()
	d1 := e.Domain("a")
	d2 := e.Domain("b")
	var order []int
	for i := 0; i < 30; i++ {
		i := i
		dom := DefaultDomain
		switch i % 3 {
		case 1:
			dom = d1
		case 2:
			dom = d2
		}
		e.ScheduleIn(dom, 5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time cross-domain dispatch out of FIFO: %v", order)
		}
	}
}

// TestEngineDomainRegisteredWhileQueued: registering a new domain (which
// regrows the tournament tree) must not disturb already-queued events.
func TestEngineDomainRegisteredWhileQueued(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Schedule(Duration(10+i)*Nanosecond, func() { order = append(order, i) })
	}
	// Force tree growth past the next power of two with events in flight.
	var doms []DomainID
	for i := 0; i < 9; i++ {
		doms = append(doms, e.Domain(fmt.Sprintf("late%d", i)))
	}
	for i := 5; i < 10; i++ {
		i := i
		e.ScheduleIn(doms[i-5], Duration(10+i)*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("dispatch disturbed by mid-flight domain registration: %v", order)
		}
	}
}

func TestEngineDomainStats(t *testing.T) {
	e := NewEngine()
	d := e.Domain("nand.ch0")
	e.ScheduleIn(d, Nanosecond, func() {})
	e.ScheduleIn(d, 2*Nanosecond, func() {})
	e.Schedule(3*Nanosecond, func() {})
	st := e.DomainStats()
	if len(st) != 2 {
		t.Fatalf("DomainStats has %d entries", len(st))
	}
	if st[d].Pending != 2 || st[DefaultDomain].Pending != 1 {
		t.Fatalf("pending counts: %+v", st)
	}
	e.Run()
	st = e.DomainStats()
	if st[d].Dispatched != 2 || st[DefaultDomain].Dispatched != 1 {
		t.Fatalf("dispatched counts: %+v", st)
	}
	if st[d].Name != "nand.ch0" {
		t.Fatalf("name = %q", st[d].Name)
	}
	// Reset keeps lifetime dispatch counts, drops queues.
	e.ScheduleIn(d, Nanosecond, func() {})
	e.Reset()
	st = e.DomainStats()
	if st[d].Dispatched != 2 || st[d].Pending != 0 {
		t.Fatalf("after Reset: %+v", st[d])
	}
}

// TestEngineCancelShardHead cancels the head of a non-default shard while
// another shard holds the global minimum, exercising tournament repair on
// the cancel path.
func TestEngineCancelShardHead(t *testing.T) {
	e := NewEngine()
	d := e.Domain("a")
	var fired []int
	e.Schedule(5*Nanosecond, func() { fired = append(fired, 0) })
	head := e.ScheduleIn(d, 2*Nanosecond, func() { fired = append(fired, 1) })
	e.ScheduleIn(d, 7*Nanosecond, func() { fired = append(fired, 2) })
	e.Cancel(head) // shard d's head (and global minimum) goes away
	e.Run()
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 2 {
		t.Fatalf("dispatch after head cancel: %v", fired)
	}
}

// TestEngineHotLoopAllocFree is the multi-domain counterpart of
// TestEngineScheduleStepAllocFree: schedule/cancel/step churn across many
// shards at steady queue depth must not allocate.
func TestEngineHotLoopAllocFree(t *testing.T) {
	e := NewEngine()
	doms := make([]DomainID, 13)
	doms[0] = DefaultDomain
	for i := 1; i < len(doms); i++ {
		doms[i] = e.Domain(fmt.Sprintf("nand.ch%d", i-1))
	}
	fn := func() {}
	// Warm the pool and the shard heaps to steady depth.
	for i := 0; i < 64*len(doms); i++ {
		e.ScheduleIn(doms[i%len(doms)], Duration(i%97)*Nanosecond, fn)
	}
	e.Run()
	for i := 0; i < 48*len(doms); i++ {
		e.ScheduleIn(doms[i%len(doms)], Duration(i%97)*Nanosecond, fn)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		dom := doms[i%len(doms)]
		ev := e.ScheduleIn(dom, Duration(50+i%13)*Nanosecond, fn)
		if i%5 == 0 {
			e.Cancel(ev)
			e.ScheduleIn(dom, Duration(60+i%7)*Nanosecond, fn)
		}
		e.Step()
		i++
	})
	if allocs != 0 {
		t.Fatalf("sharded schedule/cancel/step allocated %.1f objects per run, want 0", allocs)
	}
}
