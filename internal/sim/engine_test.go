package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", uint64(Second))
	}
	if got := (2 * Microsecond).Microseconds(); got != 2 {
		t.Fatalf("Microseconds() = %v, want 2", got)
	}
	if got := FromMicroseconds(59.975); got != 59_975*Nanosecond {
		t.Fatalf("FromMicroseconds(59.975) = %v", got)
	}
	if FromSeconds(-1) != 0 {
		t.Fatal("negative seconds should clamp to zero")
	}
	if FromSeconds(1e30) != MaxTime {
		t.Fatal("huge seconds should saturate")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3ns"},
		{12 * Microsecond, "12us"},
		{7 * Millisecond, "7ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 4 KiB at 1 GiB/s = 4096/2^30 s.
	got := TransferTime(4096, float64(1<<30))
	want := FromSeconds(4096.0 / float64(1<<30))
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if TransferTime(0, 100) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if TransferTime(1, 0) != MaxTime {
		t.Fatal("zero bandwidth should be unusable")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10*Nanosecond, func() { fired = true })
	if !ev.Pending() {
		t.Fatal("event should be pending before firing")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Fatal("event should not be pending after cancel")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.Schedule(Time(i)*Nanosecond, func() { got = append(got, i) }))
	}
	// Cancel every third event.
	want := []int{}
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			e.Cancel(evs[i])
		} else {
			want = append(want, i)
		}
	}
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			e.Schedule(Nanosecond, rec)
		}
	}
	e.Schedule(0, rec)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*Nanosecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d*Nanosecond, func() { fired = append(fired, d) })
	}
	e.RunUntil(12 * Nanosecond)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 12*Nanosecond {
		t.Fatalf("Now = %v, want 12ns", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after Run", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past should panic")
		}
	}()
	e.At(5*Nanosecond, func() {})
}

func TestEngineDispatchedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Dispatched() != 7 {
		t.Fatalf("Dispatched = %d, want 7", e.Dispatched())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestEngineMonotonicProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		e := NewEngine()
		var times []Time
		for _, d := range delays {
			e.Schedule(Time(d), func() { times = append(times, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceContention(t *testing.T) {
	r := NewResource("bus")
	s1, e1 := r.Claim(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first claim [%v,%v)", s1, e1)
	}
	// Second claim arrives at 5 but must wait until 10.
	s2, e2 := r.Claim(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second claim [%v,%v), want [10,20)", s2, e2)
	}
	// Third claim arrives after the resource is idle.
	s3, e3 := r.Claim(100, 10)
	if s3 != 100 || e3 != 110 {
		t.Fatalf("third claim [%v,%v), want [100,110)", s3, e3)
	}
	if r.BusyTime() != 30 {
		t.Fatalf("BusyTime = %v, want 30", r.BusyTime())
	}
	if r.Claims() != 3 {
		t.Fatalf("Claims = %d", r.Claims())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("die")
	r.Claim(0, 25)
	r.Claim(0, 25)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(10); u != 1 {
		t.Fatalf("Utilization should clamp to 1, got %v", u)
	}
	r.Reset()
	if r.BusyTime() != 0 || r.FreeAt() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestPoolPicksEarliestFree(t *testing.T) {
	p := NewPool("cores", 2)
	_, _, sv0 := p.Claim(0, 100)
	_, _, sv1 := p.Claim(0, 50)
	if sv0 == sv1 {
		t.Fatal("two concurrent claims should use distinct servers")
	}
	// Next claim at t=0 should go to the server free at 50.
	start, end, _ := p.Claim(0, 10)
	if start != 50 || end != 60 {
		t.Fatalf("third claim [%v,%v), want [50,60)", start, end)
	}
}

func TestPoolClaimServerPinned(t *testing.T) {
	p := NewPool("cores", 3)
	s1, e1 := p.ClaimServer(1, 0, 40)
	if s1 != 0 || e1 != 40 {
		t.Fatalf("pinned claim [%v,%v)", s1, e1)
	}
	s2, e2 := p.ClaimServer(1, 10, 40)
	if s2 != 40 || e2 != 80 {
		t.Fatalf("pinned claim must queue on its server: [%v,%v)", s2, e2)
	}
	// Other servers are still idle.
	s3, e3 := p.ClaimServer(0, 10, 5)
	if s3 != 10 || e3 != 15 {
		t.Fatalf("other server should be idle: [%v,%v)", s3, e3)
	}
}

// Property: a single-server resource never overlaps reservations and time
// never goes backwards.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, durs []uint8) bool {
		r := NewResource("x")
		now := Time(0)
		prevEnd := Time(0)
		for i, a := range arrivals {
			now += Time(a)
			d := Duration(10)
			if i < len(durs) {
				d = Duration(durs[i]) + 1
			}
			start, end := r.Claim(now, d)
			if start < now || start < prevEnd || end != start+d {
				return false
			}
			prevEnd = end
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds look correlated: %d collisions", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d draws", i, c, n)
		}
	}
}

func TestRNGFloatRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		w := r.Range(5, 8)
		if w < 5 || w >= 8 {
			t.Fatalf("Range out of range: %v", w)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGBoolBias(t *testing.T) {
	r := NewRNG(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

// TestEngineHandleStaleAfterReuse locks in the generation scheme: a handle
// to a fired event must stay stale even after its pooled record slot is
// reused by a later event.
func TestEngineHandleStaleAfterReuse(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(Nanosecond, func() {})
	e.Run()
	if first.Pending() {
		t.Fatal("fired event still pending")
	}
	// The next schedule reuses the freed slot; the old handle must not
	// alias it.
	second := e.Schedule(Nanosecond, func() {})
	if first.Pending() {
		t.Fatal("stale handle aliases the reused slot")
	}
	fired := false
	third := e.Schedule(2*Nanosecond, func() { fired = true })
	e.Cancel(first) // stale cancel must not disturb live events
	if !second.Pending() || !third.Pending() {
		t.Fatal("stale cancel removed a live event")
	}
	e.Run()
	if !fired {
		t.Fatal("live event did not fire")
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(5*Nanosecond, func() { fired = true })
	e.Schedule(7*Nanosecond, func() { fired = true })
	e.RunUntil(2 * Nanosecond)
	e.Reset()
	if e.Pending() != 0 || e.Now() != 0 {
		t.Fatalf("Reset left Pending=%d Now=%v", e.Pending(), e.Now())
	}
	if ev.Pending() {
		t.Fatal("handle survived Reset")
	}
	e.Run()
	if fired {
		t.Fatal("event fired after Reset")
	}
	// The engine is fully usable after Reset.
	n := 0
	e.Schedule(Nanosecond, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatal("engine unusable after Reset")
	}
}

// TestEngineScheduleStepAllocFree locks in the tentpole guarantee: in
// steady state (pool warmed up), Schedule+Step allocate nothing.
func TestEngineScheduleStepAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm the pool.
	for i := 0; i < 64; i++ {
		e.Schedule(Time(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(10*Nanosecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Step allocated %.1f objects per run, want 0", allocs)
	}
}

func TestEngineStressRandomOrder(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(3)
	var prev Time
	fired := 0
	const n = 5000
	for i := 0; i < n; i++ {
		e.Schedule(Time(rng.Intn(1000))*Nanosecond, func() {
			if e.Now() < prev {
				t.Fatalf("time went backwards: %v after %v", e.Now(), prev)
			}
			prev = e.Now()
			fired++
		})
	}
	e.Run()
	if fired != n {
		t.Fatalf("fired %d of %d", fired, n)
	}
}

func TestResourceClaimAtExactStart(t *testing.T) {
	r := NewResource("trace")
	s1, e1 := r.ClaimAt(100, 10)
	if s1 != 100 || e1 != 110 {
		t.Fatalf("ClaimAt = [%v,%v), want [100,110)", s1, e1)
	}
	// ClaimAt never queues: even though the resource is busy until 110,
	// the reservation starts exactly at the requested time.
	s2, e2 := r.ClaimAt(105, 10)
	if s2 != 105 || e2 != 115 {
		t.Fatalf("ClaimAt = [%v,%v), want [105,115)", s2, e2)
	}
	if r.FreeAt() != 115 {
		t.Fatalf("FreeAt = %v, want 115", r.FreeAt())
	}
	// An earlier exact claim must not rewind the free time.
	r.ClaimAt(50, 5)
	if r.FreeAt() != 115 {
		t.Fatalf("FreeAt rewound to %v", r.FreeAt())
	}
	if r.BusyTime() != 25 {
		t.Fatalf("BusyTime = %v, want 25", r.BusyTime())
	}
	// Claim still queues behind everything.
	s3, _ := r.Claim(60, 5)
	if s3 != 115 {
		t.Fatalf("Claim after ClaimAt started at %v, want 115", s3)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000), func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + 500)
		}
	}
	e.Run()
}

func BenchmarkResourceClaim(b *testing.B) {
	r := NewResource("bench")
	for i := 0; i < b.N; i++ {
		r.Claim(Time(i), 10)
	}
}
