package sim

import (
	"fmt"
)

// Event is a generation-stamped handle to a scheduled callback. It is a
// small value (not a pointer into the engine), safe to copy and to keep
// after the event fires: a stale handle simply reports Pending() == false
// and cancels as a no-op. The zero Event is a valid "no event" handle.
type Event struct {
	engine *Engine
	id     int32
	gen    uint32
}

// At reports the simulated time at which the event will fire, or zero if
// the handle is stale (fired or cancelled).
func (ev Event) At() Time {
	if !ev.Pending() {
		return 0
	}
	return ev.engine.records[ev.id].at
}

// Pending reports whether the event is still queued.
func (ev Event) Pending() bool {
	if ev.engine == nil || ev.id < 0 || int(ev.id) >= len(ev.engine.records) {
		return false
	}
	rec := &ev.engine.records[ev.id]
	return rec.gen == ev.gen && rec.heapIdx >= 0
}

// eventRecord is one pooled event slot. Records live in a flat slice and
// are reused through a free list; the generation counter invalidates
// handles to freed slots.
type eventRecord struct {
	at      Time
	seq     uint64
	fn      func()
	gen     uint32
	heapIdx int32 // index into Engine.heap, -1 when free/fired/cancelled
}

// Engine is the discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Scheduling and dispatch are allocation-free in
// steady state: event records are pooled in a flat slice and ordered by an
// index-based 4-ary min-heap (see doc.go for the layout rationale).
type Engine struct {
	now        Time
	seq        uint64
	dispatched uint64

	records []eventRecord // slot storage, indexed by Event.id
	free    []int32       // free-list of record slots
	heap    []int32       // record ids ordered as a 4-ary min-heap by (at, seq)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Dispatched returns the total number of events fired so far. It is used by
// the simulation-speed experiment (Fig. 16) as the work metric.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Reset drops all queued events and rewinds the clock to zero, keeping the
// pooled storage so a reused engine schedules without reallocating. The
// dispatched counter is preserved (it tracks lifetime work for the
// simulation-speed metric). All outstanding handles become stale.
func (e *Engine) Reset() {
	for _, id := range e.heap {
		rec := &e.records[id]
		rec.fn = nil
		rec.gen++
		rec.heapIdx = -1
		e.free = append(e.free, id)
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
}

// Schedule queues fn to run after delay. A zero delay fires on the next
// Step at the current time, after previously queued same-time events.
func (e *Engine) Schedule(delay Duration, fn func()) Event {
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		id = int32(len(e.records))
		e.records = append(e.records, eventRecord{heapIdx: -1})
	}
	rec := &e.records[id]
	rec.at = t
	rec.seq = e.seq
	rec.fn = fn
	e.seq++
	rec.heapIdx = int32(len(e.heap))
	e.heap = append(e.heap, id)
	e.siftUp(int(rec.heapIdx))
	return Event{engine: e, id: id, gen: rec.gen}
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled or
// stale event is a harmless no-op, which simplifies timeout patterns.
func (e *Engine) Cancel(ev Event) {
	if ev.engine != e || ev.id < 0 || int(ev.id) >= len(e.records) {
		return
	}
	rec := &e.records[ev.id]
	if rec.gen != ev.gen || rec.heapIdx < 0 {
		return
	}
	e.removeAt(int(rec.heapIdx))
	e.release(ev.id)
}

// release returns a record slot to the free list, bumping its generation so
// outstanding handles go stale.
func (e *Engine) release(id int32) {
	rec := &e.records[id]
	rec.fn = nil
	rec.gen++
	rec.heapIdx = -1
	e.free = append(e.free, id)
}

// Step fires the earliest event and advances the clock to it. It returns
// false when the queue is empty. The fired record is recycled before its
// callback runs, so callbacks can schedule freely without growing the pool.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	id := e.heap[0]
	e.removeAt(0)
	rec := &e.records[id]
	fn := rec.fn
	e.now = rec.at
	e.release(id)
	e.dispatched++
	fn()
	return true
}

// Run dispatches events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.heap) > 0 && e.records[e.heap[0]].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// The heap is 4-ary: children of node i are 4i+1..4i+4. Compared to the
// binary container/heap it does ~half the levels per sift with better
// locality over the flat []int32, and needs no interface boxing.

// less orders records by (time, sequence): FIFO among equal times.
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.records[a], &e.records[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

func (e *Engine) siftUp(i int) {
	id := e.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		pid := e.heap[parent]
		if !e.less(id, pid) {
			break
		}
		e.heap[i] = pid
		e.records[pid].heapIdx = int32(i)
		i = parent
	}
	e.heap[i] = id
	e.records[id].heapIdx = int32(i)
}

func (e *Engine) siftDown(i int) {
	id := e.heap[i]
	n := len(e.heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(e.heap[c], e.heap[best]) {
				best = c
			}
		}
		bid := e.heap[best]
		if !e.less(bid, id) {
			break
		}
		e.heap[i] = bid
		e.records[bid].heapIdx = int32(i)
		i = best
	}
	e.heap[i] = id
	e.records[id].heapIdx = int32(i)
}

// removeAt deletes the heap entry at index i, restoring heap order. The
// record itself is untouched (the caller releases or reads it).
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	moved := e.heap[n]
	removed := e.heap[i]
	e.heap = e.heap[:n]
	e.records[removed].heapIdx = -1
	if i == n {
		return
	}
	e.heap[i] = moved
	e.records[moved].heapIdx = int32(i)
	if i > 0 && e.less(moved, e.heap[(i-1)/4]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}
