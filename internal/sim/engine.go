package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created by Engine.Schedule/At
// and may be cancelled until they fire.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal times
	fn     func()
	index  int // heap index, -1 once fired or cancelled
	engine *Engine
}

// At reports the simulated time at which the event will (or did) fire.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued.
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 }

// Engine is the discrete-event simulator. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	now        Time
	queue      eventHeap
	seq        uint64
	dispatched uint64
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched returns the total number of events fired so far. It is used by
// the simulation-speed experiment (Fig. 16) as the work metric.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Schedule queues fn to run after delay. A zero delay fires on the next
// Step at the current time, after previously queued same-time events.
func (e *Engine) Schedule(delay Duration, fn func()) *Event {
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a harmless no-op, which simplifies timeout patterns.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.engine != e {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the earliest event and advances the clock to it. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.at
	e.dispatched++
	ev.fn()
	return true
}

// Run dispatches events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t Time) {
	for len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
