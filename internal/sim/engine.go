package sim

import (
	"fmt"
	"math"
)

// Event is a generation-stamped handle to a scheduled callback. It is a
// small value (not a pointer into the engine), safe to copy and to keep
// after the event fires: a stale handle simply reports Pending() == false
// and cancels as a no-op. The zero Event is a valid "no event" handle.
type Event struct {
	engine *Engine
	id     int32
	gen    uint32
}

// At reports the simulated time at which the event will fire, or zero if
// the handle is stale (fired or cancelled).
func (ev Event) At() Time {
	if !ev.Pending() {
		return 0
	}
	return ev.engine.records[ev.id].at
}

// Pending reports whether the event is still queued.
func (ev Event) Pending() bool {
	if ev.engine == nil || ev.id < 0 || int(ev.id) >= len(ev.engine.records) {
		return false
	}
	rec := &ev.engine.records[ev.id]
	return rec.gen == ev.gen && rec.heapIdx >= 0
}

// DomainID names one scheduling domain (shard) of an Engine. The zero
// value is the default domain every event lands in unless the caller
// schedules with ScheduleIn/AtIn.
type DomainID int32

// DefaultDomain is the domain Schedule and At use.
const DefaultDomain DomainID = 0

// eventRecord is one pooled event slot. Records live in a flat slice and
// are reused through a free list; the generation counter invalidates
// handles to freed slots.
type eventRecord struct {
	at      Time
	seq     uint64
	fn      func()
	gen     uint32
	heapIdx int32    // index into the owning shard's heap, -1 when free/fired/cancelled
	dom     DomainID // owning shard while queued
}

// shard is one scheduling domain: a pooled 4-ary min-heap of record ids
// plus its lifetime dispatch counter. The window fields exist for
// domain-local shards stepped inside a parallel window (see parallel.go):
// while a window is open exactly one worker owns the shard (enforced by the
// owner guard) and accumulates dispatch bookkeeping locally; EndWindow
// merges it back into the engine serially.
type shard struct {
	name       string
	heap       []int32 // record ids ordered as a 4-ary min-heap by (at, seq)
	dispatched uint64

	local   bool    // domain-local: steppable inside a parallel window
	neutral bool    // channel-neutral cross shard: batchable past pending locals
	owner   int32   // CAS guard: 1 while a worker steps the shard, else 0
	freed   []int32 // records released during the open window
	popped  int     // events dispatched during the open window
	maxAt   Time    // latest event time dispatched during the open window
}

// DomainStat reports one domain's activity.
type DomainStat struct {
	ID         DomainID
	Name       string
	Dispatched uint64 // lifetime events fired from this domain
	Pending    int    // currently queued events
}

// Engine is the discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Scheduling and dispatch are allocation-free in
// steady state: event records are pooled in a flat slice, each scheduling
// domain orders its own events in an index-based 4-ary min-heap, and the
// global minimum is read from a tournament (winner) tree over the shard
// heads that is repaired in O(log S) when a single shard's head changes
// (see doc.go for the layout rationale). Dispatch order is identical to a
// single global heap: the tree compares shard heads by (time, sequence)
// and the sequence counter is engine-global, so FIFO among equal times
// holds across shards.
type Engine struct {
	now        Time
	seq        uint64
	dispatched uint64
	pending    int

	records []eventRecord // slot storage, indexed by Event.id
	free    []int32       // free-list of record slots

	shards  []shard
	domains map[string]DomainID
	locals  []DomainID // domains marked domain-local, in registration order
	elig    []DomainID // RunParallel's per-window eligible-domain scratch

	// batchLimit bounds how much pending domain-local work horizon batching
	// may accumulate before RunParallel forces a window anyway (see
	// SetBatchLimit and parallel.go).
	batchLimit int

	// inWindow is true between BeginWindow and EndWindow: the only legal
	// engine calls are then StepDomainUntil on distinct domain-local shards
	// (possibly from concurrent workers). Every serial mutator checks it, so
	// a window callback that tries to schedule, cancel or step fails loudly
	// instead of racing.
	inWindow bool

	// halted is set by Halt (a power-loss event body): the drain loops —
	// Run, RunUntil, RunParallel — return after the current dispatch
	// completes, leaving every later event queued. Reset clears it.
	halted bool

	// Tournament (winner) tree over shard heads: tree[leafCap+s] mirrors
	// shard s's head, each internal node caches the winner of its two
	// children, tree[1] is the overall winner. Nodes carry the head
	// event's (at, seq) key inline, so replaying a match after one
	// shard's head changes is a single sibling load and compare per
	// level — no pointer chasing into the shard heaps — with an early
	// exit as soon as a path node's value stops changing: O(log S) worst
	// case, often O(1). leafCap is the smallest power of two
	// >= len(shards).
	tree    []treeNode
	leafCap int
}

// treeNode is one tournament slot: a shard-head key ordered by (at, seq).
// key packs seq<<16 | shard, which both identifies the winning shard and
// breaks same-time ties exactly like the heap comparison (the sequence
// counter is engine-global and unique; the shard bits are only reached on
// a seq tie, which cannot happen). The packing caps an engine at 65535
// domains and 2^48 lifetime events per Reset — both far beyond any
// simulation.
type treeNode struct {
	at  Time
	key uint64
}

// emptyNode loses to every real head: its at is the maximum Time and its
// key compares above every packed (seq, shard).
var emptyNode = treeNode{at: Time(math.MaxInt64), key: ^uint64(0)}

// beats reports whether n's head fires before m's.
func (n treeNode) beats(m treeNode) bool {
	return n.at < m.at || (n.at == m.at && n.key < m.key)
}

// NewEngine returns an empty engine at time zero with only the default
// domain registered.
func NewEngine() *Engine {
	e := &Engine{domains: make(map[string]DomainID, 4), batchLimit: DefaultBatchLimit}
	e.shards = append(e.shards, shard{name: "default"})
	e.domains["default"] = DefaultDomain
	e.growTree()
	return e
}

// Domain returns the id of the named scheduling domain, registering it on
// first use. Registration is cheap but not allocation-free; callers are
// expected to resolve domains at setup time and reuse the ids in the hot
// path. "default" names the default domain.
func (e *Engine) Domain(name string) DomainID {
	if id, ok := e.domains[name]; ok {
		return id
	}
	e.checkSerial()
	if len(e.shards) >= 1<<16 {
		panic("sim: too many scheduling domains (max 65536)")
	}
	id := DomainID(len(e.shards))
	e.shards = append(e.shards, shard{name: name})
	e.domains[name] = id
	e.growTree()
	return id
}

// NumDomains returns the number of registered domains (including the
// default one).
func (e *Engine) NumDomains() int { return len(e.shards) }

// DomainName returns the name of a registered domain.
func (e *Engine) DomainName(dom DomainID) string { return e.shards[dom].name }

// DomainStats returns per-domain lifetime dispatch counts and queue
// depths, in registration order. It allocates; it is a reporting call,
// not a hot-path one.
func (e *Engine) DomainStats() []DomainStat {
	out := make([]DomainStat, len(e.shards))
	for i := range e.shards {
		out[i] = DomainStat{
			ID:         DomainID(i),
			Name:       e.shards[i].name,
			Dispatched: e.shards[i].dispatched,
			Pending:    len(e.shards[i].heap),
		}
	}
	return out
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events across all domains.
func (e *Engine) Pending() int { return e.pending }

// Dispatched returns the total number of events fired so far. It is used by
// the simulation-speed experiment (Fig. 16) as the work metric.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Reset drops all queued events and rewinds the clock to zero, keeping the
// pooled storage and the registered domains so a reused engine schedules
// without reallocating. The dispatched counters (global and per-domain)
// are preserved (they track lifetime work for the simulation-speed
// metric). All outstanding handles become stale.
func (e *Engine) Reset() {
	e.checkSerial()
	for s := range e.shards {
		sh := &e.shards[s]
		for _, id := range sh.heap {
			rec := &e.records[id]
			rec.fn = nil
			rec.gen++
			rec.heapIdx = -1
			e.free = append(e.free, id)
		}
		sh.heap = sh.heap[:0]
	}
	// Every shard is now empty; the tree is all sentinels.
	for i := range e.tree {
		e.tree[i] = emptyNode
	}
	e.pending = 0
	e.now = 0
	e.seq = 0
	e.halted = false
}

// Halt stops the drain loops: after the event that calls it returns, Run,
// RunUntil and RunParallel exit with every later event still queued. It is
// the mechanism behind deterministic power-loss injection — the cut event
// halts the engine at an exact (time, sequence) point, and because it rides
// a plain cross-domain shard, the horizon-parallel drain reaches it only
// after every earlier event dispatched at any worker count. Reset clears
// the flag.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt stopped the engine since the last Reset.
func (e *Engine) Halted() bool { return e.halted }

// Schedule queues fn to run after delay in the default domain. A zero
// delay fires on the next Step at the current time, after previously
// queued same-time events.
func (e *Engine) Schedule(delay Duration, fn func()) Event {
	return e.AtIn(DefaultDomain, e.now+delay, fn)
}

// ScheduleIn queues fn to run after delay in the given domain. The domain
// only selects the shard that orders the event; dispatch order across the
// whole engine is the same for every placement.
func (e *Engine) ScheduleIn(dom DomainID, delay Duration, fn func()) Event {
	return e.AtIn(dom, e.now+delay, fn)
}

// At queues fn to run at absolute time t in the default domain.
// Scheduling in the past is a programming error and panics: it would
// silently reorder causality.
func (e *Engine) At(t Time, fn func()) Event {
	return e.AtIn(DefaultDomain, t, fn)
}

// AtIn queues fn to run at absolute time t in the given domain.
func (e *Engine) AtIn(dom DomainID, t Time, fn func()) Event {
	e.checkSerial()
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event function")
	}
	if dom < 0 || int(dom) >= len(e.shards) {
		panic(fmt.Sprintf("sim: scheduling into unregistered domain %d", dom))
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		id = int32(len(e.records))
		e.records = append(e.records, eventRecord{heapIdx: -1})
	}
	rec := &e.records[id]
	rec.at = t
	rec.seq = e.seq
	rec.fn = fn
	rec.dom = dom
	e.seq++
	sh := &e.shards[dom]
	rec.heapIdx = int32(len(sh.heap))
	sh.heap = append(sh.heap, id)
	e.siftUp(sh.heap, int(rec.heapIdx))
	e.pending++
	if sh.heap[0] == id {
		// Only a new shard head can change the tournament outcome.
		e.repair(int(dom))
	}
	return Event{engine: e, id: id, gen: rec.gen}
}

// Cancel removes a pending event. Cancelling a fired, already-cancelled or
// stale event is a harmless no-op, which simplifies timeout patterns.
func (e *Engine) Cancel(ev Event) {
	e.checkSerial()
	if ev.engine != e || ev.id < 0 || int(ev.id) >= len(e.records) {
		return
	}
	rec := &e.records[ev.id]
	if rec.gen != ev.gen || rec.heapIdx < 0 {
		return
	}
	dom := rec.dom
	i := int(rec.heapIdx)
	e.heapRemoveAt(&e.shards[dom], i)
	e.release(ev.id)
	e.pending--
	if i == 0 {
		// The shard lost its head (a non-head removal cannot promote a
		// new minimum), so the tournament must be replayed on its path.
		e.repair(int(dom))
	}
}

// release returns a record slot to the free list, bumping its generation so
// outstanding handles go stale.
func (e *Engine) release(id int32) {
	rec := &e.records[id]
	rec.fn = nil
	rec.gen++
	rec.heapIdx = -1
	e.free = append(e.free, id)
}

// Step fires the earliest event across all domains and advances the clock
// to it. It returns false when every shard is empty. The fired record is
// recycled before its callback runs, so callbacks can schedule freely
// without growing the pool.
func (e *Engine) Step() bool {
	e.checkSerial()
	head := e.tree[1]
	if head == emptyNode {
		return false
	}
	e.stepShard(int(head.key & 0xffff))
	return true
}

// stepShard fires the head event of shard w — which the caller has
// determined is the event to dispatch next — and advances the clock to it.
// Step resolves w from the tournament winner; RunParallel's horizon loop
// resolves it from the cross-domain scan, which also lets it dispatch a
// channel-neutral cross head while earlier domain-local events are still
// pending (see parallel.go).
func (e *Engine) stepShard(w int) {
	sh := &e.shards[w]
	id := sh.heap[0]
	e.heapRemoveAt(sh, 0)
	sh.dispatched++
	e.repair(w)
	rec := &e.records[id]
	fn := rec.fn
	e.now = rec.at
	e.release(id)
	e.pending--
	e.dispatched++
	fn()
}

// Run dispatches events until the queue drains or Halt stops the engine.
func (e *Engine) Run() {
	for !e.halted && e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued. A Halt stops the loop early
// without advancing the clock.
func (e *Engine) RunUntil(t Time) {
	for !e.halted {
		if head := e.tree[1]; head == emptyNode || head.at > t {
			break
		}
		e.Step()
	}
	if e.halted {
		return
	}
	if t > e.now {
		e.now = t
	}
}

// Tournament tree. The leaves are the shard heads; each internal node
// caches the winner (earlier (at, seq)) of its two children, so reading
// the global minimum is O(1) and repairing after one shard's head change
// replays only that leaf's root path: O(log S) comparisons, each touching
// the two record structs involved. Compared to re-heapifying one global
// queue, a dispatch costs log4(N_shard) sift steps plus log2(S) match
// replays instead of log4(N_total) sift steps.

// growTree resizes the tree to the next power of two covering all shards
// and rebuilds it. Called only from Domain registration.
func (e *Engine) growTree() {
	leafCap := 1
	for leafCap < len(e.shards) {
		leafCap *= 2
	}
	if leafCap != e.leafCap {
		e.leafCap = leafCap
		e.tree = make([]treeNode, 2*leafCap)
	}
	e.rebuildTree()
}

// leafNode builds the tournament leaf for shard s from its current head.
func (e *Engine) leafNode(s int) treeNode {
	if s >= len(e.shards) || len(e.shards[s].heap) == 0 {
		return emptyNode
	}
	rec := &e.records[e.shards[s].heap[0]]
	return treeNode{at: rec.at, key: rec.seq<<16 | uint64(s)}
}

// rebuildTree recomputes every node from the current shard heads. Only
// domain registration pays this O(S); steady-state mutations use repair.
func (e *Engine) rebuildTree() {
	for i := 0; i < e.leafCap; i++ {
		e.tree[e.leafCap+i] = e.leafNode(i)
	}
	for k := e.leafCap - 1; k >= 1; k-- {
		win := e.tree[2*k]
		if e.tree[2*k+1].beats(win) {
			win = e.tree[2*k+1]
		}
		e.tree[k] = win
	}
}

// repair replays the matches on shard s's path to the root after its head
// changed (new head, head dispatched/cancelled, or shard emptied). The
// candidate winner is carried upward so each level costs one sibling load
// and one comparison, and the walk stops as soon as a node's stored value
// is already the recomputed winner: every node off the path is correct by
// construction, so an unchanged path node proves the ancestors are
// consistent too.
func (e *Engine) repair(s int) {
	k := e.leafCap + s
	cand := e.leafNode(s)
	for {
		if e.tree[k] == cand {
			return
		}
		e.tree[k] = cand
		if k == 1 {
			return
		}
		if sib := e.tree[k^1]; sib.beats(cand) {
			cand = sib
		}
		k >>= 1
	}
}

// Each shard heap is 4-ary: children of node i are 4i+1..4i+4. Compared to
// the binary container/heap it does ~half the levels per sift with better
// locality over the flat []int32, and needs no interface boxing.

// less orders records by (time, sequence): FIFO among equal times. The
// sequence counter is engine-global, so the order is total across shards.
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.records[a], &e.records[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

func (e *Engine) siftUp(heap []int32, i int) {
	id := heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		pid := heap[parent]
		if !e.less(id, pid) {
			break
		}
		heap[i] = pid
		e.records[pid].heapIdx = int32(i)
		i = parent
	}
	heap[i] = id
	e.records[id].heapIdx = int32(i)
}

func (e *Engine) siftDown(heap []int32, i int) {
	id := heap[i]
	n := len(heap)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(heap[c], heap[best]) {
				best = c
			}
		}
		bid := heap[best]
		if !e.less(bid, id) {
			break
		}
		heap[i] = bid
		e.records[bid].heapIdx = int32(i)
		i = best
	}
	heap[i] = id
	e.records[id].heapIdx = int32(i)
}

// heapRemoveAt deletes the shard-heap entry at index i, restoring heap
// order. The record itself is untouched (the caller releases or reads it).
func (e *Engine) heapRemoveAt(sh *shard, i int) {
	n := len(sh.heap) - 1
	moved := sh.heap[n]
	removed := sh.heap[i]
	sh.heap = sh.heap[:n]
	e.records[removed].heapIdx = -1
	if i == n {
		return
	}
	sh.heap[i] = moved
	e.records[moved].heapIdx = int32(i)
	if i > 0 && e.less(moved, sh.heap[(i-1)/4]) {
		e.siftUp(sh.heap, i)
	} else {
		e.siftDown(sh.heap, i)
	}
}
