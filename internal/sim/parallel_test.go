package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// parallelHarness is a miniature system shaped like the real simulator: a
// few cross-domain "firmware" shards whose events mutate shared state and
// schedule bursts of domain-local events, plus local shards whose events
// touch only their own domain's state. It exists to compare Run,
// RunParallel(1) and RunParallel(N) for byte-identical behavior.
type parallelHarness struct {
	e       *Engine
	locals  []DomainID
	crossA  DomainID
	crossB  DomainID
	neutral DomainID // channel-neutral cross shard (horizon batching)

	localLog   [][]uint64 // per-local-domain (time<<16|tag) records
	localSum   []uint64   // per-local-domain counters
	crossLog   []uint64   // horizon snapshots: sum over localSum at each driver
	neutralLog []uint64   // per-neutral-event (time, counter) records
	rngState   uint64
	rounds     int
}

func (h *parallelHarness) rng() uint64 {
	h.rngState = h.rngState*6364136223846793005 + 1442695040888963407
	return h.rngState >> 17
}

// drive is the cross-domain driver: it snapshots the (cross-visible) local
// counters, schedules a burst of local events before its next firing, and
// reschedules itself. Local events may tie the driver's time exactly, which
// is the horizon edge case the strict (time, seq) bound must get right.
func (h *parallelHarness) drive() {
	var sum uint64
	for _, v := range h.localSum {
		sum += v
	}
	h.crossLog = append(h.crossLog, sum)
	if h.rounds <= 0 {
		return
	}
	h.rounds--
	period := Duration(1000 + h.rng()%1000)
	for i := 0; i < 40; i++ {
		d := int(h.rng()) % len(h.locals)
		dom := h.locals[d]
		tag := h.rng() & 0xffff
		// Delays 0..period inclusive: some land exactly on the next driver
		// firing and must still dispatch before it (smaller sequence).
		delay := Duration(h.rng() % uint64(period+1))
		at := h.e.Now() + delay // captured: local callbacks must not call e.Now()
		h.e.ScheduleIn(dom, delay, func() {
			h.localLog[d] = append(h.localLog[d], uint64(at)<<16|tag)
			h.localSum[d] += tag
		})
	}
	// A second cross shard interleaves mid-window horizons.
	h.e.ScheduleIn(h.crossB, period/2, func() { h.crossLog = append(h.crossLog, ^uint64(0)) })
	// Channel-neutral events land between the local bursts: they must not
	// read local state (that is the neutrality promise), so they log only
	// their own time and may schedule — including a follow-up neutral event,
	// exercising scheduling from inside the batched fast path.
	for i := 0; i < 3; i++ {
		delay := Duration(h.rng() % uint64(period+1))
		h.e.ScheduleIn(h.neutral, delay, func() {
			h.neutralLog = append(h.neutralLog, uint64(h.e.Now()))
			if len(h.neutralLog)%5 == 0 {
				h.e.ScheduleIn(h.neutral, 7, func() {
					h.neutralLog = append(h.neutralLog, uint64(h.e.Now())|1<<62)
				})
			}
		})
	}
	h.e.ScheduleIn(h.crossA, period, h.drive)
}

func newParallelHarness(nLocal, rounds int, seed uint64) *parallelHarness {
	h := &parallelHarness{e: NewEngine(), rngState: seed, rounds: rounds}
	h.crossA = h.e.Domain("cross.a")
	h.crossB = h.e.Domain("cross.b")
	h.neutral = h.e.Domain("cross.neutral")
	h.e.MarkChannelNeutral(h.neutral)
	for i := 0; i < nLocal; i++ {
		dom := h.e.Domain(fmt.Sprintf("local.%d", i))
		h.e.MarkDomainLocal(dom)
		h.locals = append(h.locals, dom)
	}
	h.localLog = make([][]uint64, nLocal)
	h.localSum = make([]uint64, nLocal)
	h.e.ScheduleIn(h.crossA, 100, h.drive)
	return h
}

func (h *parallelHarness) fingerprint() string {
	return fmt.Sprintf("now=%v dispatched=%d pending=%d doms=%+v cross=%v local=%v sums=%v neutral=%v",
		h.e.Now(), h.e.Dispatched(), h.e.Pending(), h.e.DomainStats(), h.crossLog, h.localLog, h.localSum, h.neutralLog)
}

// TestRunParallelEquivalence locks in the horizon-synchronization
// contract: serial Run, the horizon loop on one goroutine, and the horizon
// loop over several workers must leave identical state — per-domain event
// logs, cross-domain snapshots of local state, clock, dispatch counters.
func TestRunParallelEquivalence(t *testing.T) {
	const nLocal, rounds, seed = 8, 50, 12345
	serial := newParallelHarness(nLocal, rounds, seed)
	serial.e.Run()

	one := newParallelHarness(nLocal, rounds, seed)
	st1 := one.e.RunParallel(1)

	many := newParallelHarness(nLocal, rounds, seed)
	stN := many.e.RunParallel(4)

	want := serial.fingerprint()
	if got := one.fingerprint(); got != want {
		t.Fatalf("RunParallel(1) diverged:\nserial: %s\ngot:    %s", want, got)
	}
	if got := many.fingerprint(); got != want {
		t.Fatalf("RunParallel(4) diverged:\nserial: %s\ngot:    %s", want, got)
	}
	if st1.LocalEvents == 0 || st1.CrossEvents == 0 {
		t.Fatalf("degenerate run: %+v", st1)
	}
	// The horizon structure itself is deterministic: only the fan-out
	// (ParallelHorizons) may differ between worker counts.
	st1.ParallelHorizons, stN.ParallelHorizons = 0, 0
	if !reflect.DeepEqual(st1, stN) {
		t.Fatalf("horizon structure differs: %+v vs %+v", st1, stN)
	}
	if m := st1.MeanLocalPerHorizon(); m <= 0 {
		t.Fatalf("MeanLocalPerHorizon = %v", m)
	}
}

// TestRunParallelNoLocals degrades to a plain serial drain.
func TestRunParallelNoLocals(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i*10), func() { n++ })
	}
	st := e.RunParallel(8)
	if n != 10 || st.CrossEvents != 10 || st.Horizons != 0 {
		t.Fatalf("n=%d stats=%+v", n, st)
	}
}

// TestNextCrossDomainTime verifies the horizon scan ignores local shards
// and reports the earliest cross-domain (time, seq) key.
func TestNextCrossDomainTime(t *testing.T) {
	e := NewEngine()
	loc := e.Domain("local")
	e.MarkDomainLocal(loc)
	if _, _, ok := e.NextCrossDomainTime(); ok {
		t.Fatal("empty engine reported a cross-domain event")
	}
	e.ScheduleIn(loc, 5, func() {})
	if _, _, ok := e.NextCrossDomainTime(); ok {
		t.Fatal("local-only population reported a cross-domain event")
	}
	e.Schedule(50, func() {})
	cross := e.Domain("cross")
	e.ScheduleIn(cross, 20, func() {})
	at, seq, ok := e.NextCrossDomainTime()
	if !ok || at != 20 || seq != 2 {
		t.Fatalf("NextCrossDomainTime = (%v, %d, %v), want (20ps, 2, true)", at, seq, ok)
	}
}

// TestHorizonBatching verifies the channel-neutral fast path: neutral cross
// events dispatch without draining pending local work (BatchedCross counts
// them), the barrier count drops accordingly, and the final state still
// matches the serial dispatch (covered by the equivalence harness, which
// carries a neutral shard).
func TestHorizonBatching(t *testing.T) {
	h := newParallelHarness(8, 50, 999)
	st := h.e.RunParallel(4)
	if st.BatchedCross == 0 {
		t.Fatalf("harness with a neutral shard batched nothing: %+v", st)
	}
	if st.Barriers() != st.Horizons {
		t.Fatalf("Barriers() = %d, want Horizons = %d", st.Barriers(), st.Horizons)
	}
	if got, want := st.BarriersWithoutBatching(), st.Horizons+st.BatchedCross; got != want {
		t.Fatalf("BarriersWithoutBatching() = %d, want %d", got, want)
	}

	// The same engine shape with the neutral mark withheld must pay a
	// barrier for every one of those events and still finish identically.
	plain := newParallelHarness(8, 50, 999)
	plain.e.shards[plain.neutral].neutral = false
	st2 := plain.e.RunParallel(4)
	if st2.BatchedCross != 0 {
		t.Fatalf("unmarked run batched %d events", st2.BatchedCross)
	}
	if st2.Horizons <= st.Horizons {
		t.Fatalf("batching did not reduce windows: %d (batched) vs %d (plain)", st.Horizons, st2.Horizons)
	}
	if got, want := plain.fingerprint(), h.fingerprint(); got != want {
		t.Fatalf("batched and unbatched runs diverged:\nbatched: %s\nplain:   %s", want, got)
	}
}

// TestBatchLimit verifies the horizon-batching backstop: with a tiny batch
// limit, neutral cross heads stop skipping the drain once the eligible
// local shards' queue depth exceeds the limit (LimitBarriers counts the
// forced windows), and the final state still matches the unbounded run —
// the limit only decides when barriers are paid, never what dispatches.
func TestBatchLimit(t *testing.T) {
	const nLocal, rounds, seed = 8, 50, 4242
	free := newParallelHarness(nLocal, rounds, seed)
	stFree := free.e.RunParallel(4)

	tight := newParallelHarness(nLocal, rounds, seed)
	tight.e.SetBatchLimit(4)
	if got := tight.e.BatchLimit(); got != 4 {
		t.Fatalf("BatchLimit = %d, want 4", got)
	}
	stTight := tight.e.RunParallel(4)

	if got, want := tight.fingerprint(), free.fingerprint(); got != want {
		t.Fatalf("batch limit changed observable state:\nfree:  %s\ntight: %s", want, got)
	}
	if stTight.LimitBarriers == 0 {
		t.Fatalf("limit 4 forced no windows: %+v", stTight)
	}
	if stTight.Horizons <= stFree.Horizons {
		t.Fatalf("tight limit did not add windows: %d vs %d", stTight.Horizons, stFree.Horizons)
	}
	if stTight.BatchedCross >= stFree.BatchedCross {
		t.Fatalf("tight limit did not reduce batching: %d vs %d", stTight.BatchedCross, stFree.BatchedCross)
	}
	// Totals are invariant: every event dispatches exactly once either way.
	if la, lb := stTight.LocalEvents, stFree.LocalEvents; la != lb {
		t.Fatalf("local event totals differ: %d vs %d", la, lb)
	}
	if ca, cb := stTight.CrossEvents, stFree.CrossEvents; ca != cb {
		t.Fatalf("cross event totals differ: %d vs %d", ca, cb)
	}

	// n < 1 restores the default.
	tight.e.SetBatchLimit(0)
	if got := tight.e.BatchLimit(); got != DefaultBatchLimit {
		t.Fatalf("BatchLimit after reset = %d, want %d", got, DefaultBatchLimit)
	}
}

// TestMarkChannelNeutralGuards verifies the classification is exclusive:
// a domain cannot be both domain-local and channel-neutral, and marking an
// unregistered domain panics.
func TestMarkChannelNeutralGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	e := NewEngine()
	loc := e.Domain("local")
	e.MarkDomainLocal(loc)
	neu := e.Domain("neutral")
	e.MarkChannelNeutral(neu)
	e.MarkChannelNeutral(neu) // idempotent
	if !e.IsChannelNeutral(neu) || e.IsChannelNeutral(loc) {
		t.Fatal("IsChannelNeutral misreports")
	}
	mustPanic("neutral mark on local domain", func() { e.MarkChannelNeutral(loc) })
	mustPanic("local mark on neutral domain", func() { e.MarkDomainLocal(neu) })
	mustPanic("neutral mark on unregistered domain", func() { e.MarkChannelNeutral(DomainID(99)) })
}

// TestWorkerPoolReuse drains one engine many times through a single
// caller-owned pool — the synchronous submit path's shape — and checks each
// drain matches a fresh serial reference.
func TestWorkerPoolReuse(t *testing.T) {
	const nLocal, rounds = 6, 10
	pooled := newParallelHarness(nLocal, rounds, 7)
	pool := NewWorkerPool(pooled.e, 4)
	defer pool.Close()
	for iter := 0; iter < 5; iter++ {
		serial := newParallelHarness(nLocal, rounds, uint64(100+iter))
		serial.e.Run()

		// Re-drive the pooled harness with the same seed: reset its engine
		// and logs, then drain through the persistent pool.
		pooled.e.Reset()
		pooled.rngState = uint64(100 + iter)
		pooled.rounds = rounds
		for d := range pooled.localLog {
			pooled.localLog[d] = nil
		}
		for d := range pooled.localSum {
			pooled.localSum[d] = 0
		}
		pooled.crossLog, pooled.neutralLog = nil, nil
		pooled.e.ScheduleIn(pooled.crossA, 100, pooled.drive)
		st := pooled.e.RunParallelWith(pool)

		// The engine's lifetime dispatch counters survive Reset, so compare
		// the observable run products instead of the full fingerprint.
		obs := func(h *parallelHarness) string {
			return fmt.Sprintf("now=%v pending=%d cross=%v local=%v sums=%v neutral=%v",
				h.e.Now(), h.e.Pending(), h.crossLog, h.localLog, h.localSum, h.neutralLog)
		}
		if got, want := obs(pooled), obs(serial); got != want {
			t.Fatalf("iter %d diverged:\nserial: %s\npooled: %s", iter, want, got)
		}
		if st.LocalEvents == 0 {
			t.Fatalf("iter %d: no local events", iter)
		}
	}
}

// TestWindowGuards verifies the serial-call guards: engine mutation during
// an open window panics, as does stepping a cross-domain shard or stepping
// outside a window.
func TestWindowGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}

	e := NewEngine()
	loc := e.Domain("local")
	e.MarkDomainLocal(loc)
	e.ScheduleIn(loc, 10, func() {})

	mustPanic("StepDomainUntil outside window", func() { e.StepDomainUntil(loc, MaxTime, ^uint64(0)) })

	e.BeginWindow()
	mustPanic("AtIn during window", func() { e.At(100, func() {}) })
	mustPanic("Cancel during window", func() { e.Cancel(Event{}) })
	mustPanic("Step during window", func() { e.Step() })
	mustPanic("Reset during window", func() { e.Reset() })
	mustPanic("nested BeginWindow", func() { e.BeginWindow() })
	mustPanic("StepDomainUntil on cross shard", func() { e.StepDomainUntil(DefaultDomain, MaxTime, ^uint64(0)) })
	if n := e.StepDomainUntil(loc, MaxTime, ^uint64(0)); n != 1 {
		t.Fatalf("StepDomainUntil dispatched %d events, want 1", n)
	}
	e.EndWindow()
	mustPanic("EndWindow without BeginWindow", func() { e.EndWindow() })

	if e.Pending() != 0 || e.Dispatched() != 1 || e.Now() != 10 {
		t.Fatalf("post-window state: pending=%d dispatched=%d now=%v", e.Pending(), e.Dispatched(), e.Now())
	}
}
