package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// parallelHarness is a miniature system shaped like the real simulator: a
// few cross-domain "firmware" shards whose events mutate shared state and
// schedule bursts of domain-local events, plus local shards whose events
// touch only their own domain's state. It exists to compare Run,
// RunParallel(1) and RunParallel(N) for byte-identical behavior.
type parallelHarness struct {
	e      *Engine
	locals []DomainID
	crossA DomainID
	crossB DomainID

	localLog [][]uint64 // per-local-domain (time<<16|tag) records
	localSum []uint64   // per-local-domain counters
	crossLog []uint64   // horizon snapshots: sum over localSum at each driver
	rngState uint64
	rounds   int
}

func (h *parallelHarness) rng() uint64 {
	h.rngState = h.rngState*6364136223846793005 + 1442695040888963407
	return h.rngState >> 17
}

// drive is the cross-domain driver: it snapshots the (cross-visible) local
// counters, schedules a burst of local events before its next firing, and
// reschedules itself. Local events may tie the driver's time exactly, which
// is the horizon edge case the strict (time, seq) bound must get right.
func (h *parallelHarness) drive() {
	var sum uint64
	for _, v := range h.localSum {
		sum += v
	}
	h.crossLog = append(h.crossLog, sum)
	if h.rounds <= 0 {
		return
	}
	h.rounds--
	period := Duration(1000 + h.rng()%1000)
	for i := 0; i < 40; i++ {
		d := int(h.rng()) % len(h.locals)
		dom := h.locals[d]
		tag := h.rng() & 0xffff
		// Delays 0..period inclusive: some land exactly on the next driver
		// firing and must still dispatch before it (smaller sequence).
		delay := Duration(h.rng() % uint64(period+1))
		at := h.e.Now() + delay // captured: local callbacks must not call e.Now()
		h.e.ScheduleIn(dom, delay, func() {
			h.localLog[d] = append(h.localLog[d], uint64(at)<<16|tag)
			h.localSum[d] += tag
		})
	}
	// A second cross shard interleaves mid-window horizons.
	h.e.ScheduleIn(h.crossB, period/2, func() { h.crossLog = append(h.crossLog, ^uint64(0)) })
	h.e.ScheduleIn(h.crossA, period, h.drive)
}

func newParallelHarness(nLocal, rounds int, seed uint64) *parallelHarness {
	h := &parallelHarness{e: NewEngine(), rngState: seed, rounds: rounds}
	h.crossA = h.e.Domain("cross.a")
	h.crossB = h.e.Domain("cross.b")
	for i := 0; i < nLocal; i++ {
		dom := h.e.Domain(fmt.Sprintf("local.%d", i))
		h.e.MarkDomainLocal(dom)
		h.locals = append(h.locals, dom)
	}
	h.localLog = make([][]uint64, nLocal)
	h.localSum = make([]uint64, nLocal)
	h.e.ScheduleIn(h.crossA, 100, h.drive)
	return h
}

func (h *parallelHarness) fingerprint() string {
	return fmt.Sprintf("now=%v dispatched=%d pending=%d doms=%+v cross=%v local=%v sums=%v",
		h.e.Now(), h.e.Dispatched(), h.e.Pending(), h.e.DomainStats(), h.crossLog, h.localLog, h.localSum)
}

// TestRunParallelEquivalence locks in the horizon-synchronization
// contract: serial Run, the horizon loop on one goroutine, and the horizon
// loop over several workers must leave identical state — per-domain event
// logs, cross-domain snapshots of local state, clock, dispatch counters.
func TestRunParallelEquivalence(t *testing.T) {
	const nLocal, rounds, seed = 8, 50, 12345
	serial := newParallelHarness(nLocal, rounds, seed)
	serial.e.Run()

	one := newParallelHarness(nLocal, rounds, seed)
	st1 := one.e.RunParallel(1)

	many := newParallelHarness(nLocal, rounds, seed)
	stN := many.e.RunParallel(4)

	want := serial.fingerprint()
	if got := one.fingerprint(); got != want {
		t.Fatalf("RunParallel(1) diverged:\nserial: %s\ngot:    %s", want, got)
	}
	if got := many.fingerprint(); got != want {
		t.Fatalf("RunParallel(4) diverged:\nserial: %s\ngot:    %s", want, got)
	}
	if st1.LocalEvents == 0 || st1.CrossEvents == 0 {
		t.Fatalf("degenerate run: %+v", st1)
	}
	// The horizon structure itself is deterministic: only the fan-out
	// (ParallelHorizons) may differ between worker counts.
	st1.ParallelHorizons, stN.ParallelHorizons = 0, 0
	if !reflect.DeepEqual(st1, stN) {
		t.Fatalf("horizon structure differs: %+v vs %+v", st1, stN)
	}
	if m := st1.MeanLocalPerHorizon(); m <= 0 {
		t.Fatalf("MeanLocalPerHorizon = %v", m)
	}
}

// TestRunParallelNoLocals degrades to a plain serial drain.
func TestRunParallelNoLocals(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Duration(i*10), func() { n++ })
	}
	st := e.RunParallel(8)
	if n != 10 || st.CrossEvents != 10 || st.Horizons != 0 {
		t.Fatalf("n=%d stats=%+v", n, st)
	}
}

// TestNextCrossDomainTime verifies the horizon scan ignores local shards
// and reports the earliest cross-domain (time, seq) key.
func TestNextCrossDomainTime(t *testing.T) {
	e := NewEngine()
	loc := e.Domain("local")
	e.MarkDomainLocal(loc)
	if _, _, ok := e.NextCrossDomainTime(); ok {
		t.Fatal("empty engine reported a cross-domain event")
	}
	e.ScheduleIn(loc, 5, func() {})
	if _, _, ok := e.NextCrossDomainTime(); ok {
		t.Fatal("local-only population reported a cross-domain event")
	}
	e.Schedule(50, func() {})
	cross := e.Domain("cross")
	e.ScheduleIn(cross, 20, func() {})
	at, seq, ok := e.NextCrossDomainTime()
	if !ok || at != 20 || seq != 2 {
		t.Fatalf("NextCrossDomainTime = (%v, %d, %v), want (20ps, 2, true)", at, seq, ok)
	}
}

// TestWindowGuards verifies the serial-call guards: engine mutation during
// an open window panics, as does stepping a cross-domain shard or stepping
// outside a window.
func TestWindowGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}

	e := NewEngine()
	loc := e.Domain("local")
	e.MarkDomainLocal(loc)
	e.ScheduleIn(loc, 10, func() {})

	mustPanic("StepDomainUntil outside window", func() { e.StepDomainUntil(loc, MaxTime, ^uint64(0)) })

	e.BeginWindow()
	mustPanic("AtIn during window", func() { e.At(100, func() {}) })
	mustPanic("Cancel during window", func() { e.Cancel(Event{}) })
	mustPanic("Step during window", func() { e.Step() })
	mustPanic("Reset during window", func() { e.Reset() })
	mustPanic("nested BeginWindow", func() { e.BeginWindow() })
	mustPanic("StepDomainUntil on cross shard", func() { e.StepDomainUntil(DefaultDomain, MaxTime, ^uint64(0)) })
	if n := e.StepDomainUntil(loc, MaxTime, ^uint64(0)); n != 1 {
		t.Fatalf("StepDomainUntil dispatched %d events, want 1", n)
	}
	e.EndWindow()
	mustPanic("EndWindow without BeginWindow", func() { e.EndWindow() })

	if e.Pending() != 0 || e.Dispatched() != 1 || e.Now() != 10 {
		t.Fatalf("post-window state: pending=%d dispatched=%d now=%v", e.Pending(), e.Dispatched(), e.Now())
	}
}
