package sim

import "math/bits"

// RNG is a small deterministic pseudo-random generator (xoshiro256**) used
// wherever the simulator needs randomness: ISPP latency draws, random cache
// replacement, workload address streams. A hand-rolled generator keeps runs
// byte-for-byte reproducible across Go releases, which math/rand does not
// guarantee for its global functions.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given value via splitmix64,
// so nearby seeds give uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// State returns the generator's internal state for snapshot/restore.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState reinstalls a previously captured generator state, so the stream
// continues exactly where the captured generator left off. The all-zero
// state (which xoshiro cannot escape) is rejected by substituting the same
// non-zero fallback NewRNG uses.
func (r *RNG) SetState(s [4]uint64) {
	r.s = s
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	threshold := (-n) % n
	for {
		hi, lo := bits.Mul64(r.Uint64(), n)
		if lo >= threshold {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
