package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, measured in integer picoseconds.
//
// Picosecond resolution is required because the fastest clocks in the model
// (ONFi 3 at 333 MT/s, DDR3L tCK, PCIe symbol times) have sub-nanosecond
// periods; integer time keeps event ordering exact and runs reproducible.
// A uint64 of picoseconds covers about 213 simulated days, far beyond any
// experiment in the paper.
type Time uint64

// Duration is a span of simulated time in picoseconds. It is the same
// representation as Time; the separate name documents intent in APIs.
type Duration = Time

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable simulated time.
const MaxTime Time = math.MaxUint64

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as floating-point microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Nanoseconds returns t as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String formats the time with an auto-selected unit, e.g. "12.5us".
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", t.Milliseconds())
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Microseconds())
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", uint64(t))
	}
}

// FromSeconds converts floating-point seconds to a Time, saturating at
// MaxTime and flooring negative values to zero.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	ps := s * float64(Second)
	if ps >= math.MaxUint64 {
		return MaxTime
	}
	return Time(ps)
}

// FromMicroseconds converts floating-point microseconds to a Time.
func FromMicroseconds(us float64) Time { return FromSeconds(us * 1e-6) }

// FromNanoseconds converts floating-point nanoseconds to a Time.
func FromNanoseconds(ns float64) Time { return FromSeconds(ns * 1e-9) }

// TransferTime returns the time needed to move n bytes at the given
// bandwidth in bytes per second. Zero bandwidth yields MaxTime for n > 0
// (an unusable link), and zero bytes always take zero time.
func TransferTime(n int64, bytesPerSecond float64) Time {
	if n <= 0 {
		return 0
	}
	if bytesPerSecond <= 0 {
		return MaxTime
	}
	return FromSeconds(float64(n) / bytesPerSecond)
}

// CyclesTime returns the time to execute the given number of cycles at the
// given frequency in Hz.
func CyclesTime(cycles uint64, hz float64) Time {
	if cycles == 0 {
		return 0
	}
	if hz <= 0 {
		return MaxTime
	}
	return FromSeconds(float64(cycles) / hz)
}

// MaxOf returns the later of two times.
func MaxOf(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinOf returns the earlier of two times.
func MinOf(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
