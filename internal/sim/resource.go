package sim

// Resource is a single-server FCFS resource reserved by time spans.
//
// Callers "claim" a duration starting no earlier than now; the resource
// returns the actual [start, end) interval, pushing its next free time to
// end. This time-reservation style models queueing delay on buses, flash
// dies, DRAM banks and CPU cores without explicit queue processes, and is
// exact for FCFS service disciplines.
type Resource struct {
	name   string
	freeAt Time
	busy   Duration // accumulated service time, for utilization accounting
	claims uint64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name given at construction.
func (r *Resource) Name() string { return r.name }

// Claim reserves dur starting at or after now, whichever is later than the
// resource's next free time, and returns the service interval.
func (r *Resource) Claim(now Time, dur Duration) (start, end Time) {
	start = MaxOf(now, r.freeAt)
	end = start + dur
	r.freeAt = end
	r.busy += dur
	r.claims++
	return start, end
}

// ClaimAt reserves dur starting exactly at start, even if that overlaps an
// earlier reservation: the caller asserts the resource is genuinely free
// then (e.g. a replayed trace with externally known timing). The returned
// actualStart always equals start; the resource's next free time only moves
// forward, to max(freeAt, start+dur). Use Claim when queueing delay should
// be modeled instead.
func (r *Resource) ClaimAt(start Time, dur Duration) (actualStart, end Time) {
	end = start + dur
	if end > r.freeAt {
		r.freeAt = end
	}
	r.busy += dur
	r.claims++
	return start, end
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns total reserved service time.
func (r *Resource) BusyTime() Duration { return r.busy }

// Claims returns the number of reservations made.
func (r *Resource) Claims() uint64 { return r.claims }

// Utilization returns busy time divided by the given elapsed window.
func (r *Resource) Utilization(elapsed Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(r.busy) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears reservation state, keeping the name.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.claims = 0
}

// ResourceState is a Resource's serializable reservation state, captured by
// State and reinstalled by SetState for snapshot/restore.
type ResourceState struct {
	FreeAt Time
	Busy   Duration
	Claims uint64
}

// State captures the reservation state (the name is construction-time
// identity and is not included).
func (r *Resource) State() ResourceState {
	return ResourceState{FreeAt: r.freeAt, Busy: r.busy, Claims: r.claims}
}

// SetState reinstalls a previously captured reservation state.
func (r *Resource) SetState(st ResourceState) {
	r.freeAt = st.FreeAt
	r.busy = st.Busy
	r.claims = st.Claims
}

// Pool is a k-server resource: each claim is served by the server that
// frees earliest. It models identical parallel units such as CPU cores.
type Pool struct {
	name    string
	servers []Time
	busy    Duration
	claims  uint64
}

// NewPool returns a pool of n idle servers. n must be positive.
func NewPool(name string, n int) *Pool {
	if n <= 0 {
		panic("sim: pool must have at least one server")
	}
	return &Pool{name: name, servers: make([]Time, n)}
}

// Name returns the diagnostic name given at construction.
func (p *Pool) Name() string { return p.name }

// Size returns the number of servers.
func (p *Pool) Size() int { return len(p.servers) }

// Claim reserves dur on the earliest-free server and returns the service
// interval together with the chosen server index.
func (p *Pool) Claim(now Time, dur Duration) (start, end Time, server int) {
	server = 0
	for i := 1; i < len(p.servers); i++ {
		if p.servers[i] < p.servers[server] {
			server = i
		}
	}
	start = MaxOf(now, p.servers[server])
	end = start + dur
	p.servers[server] = end
	p.busy += dur
	p.claims++
	return start, end, server
}

// ClaimServer reserves dur on a specific server, modeling pinned work such
// as a firmware module bound to one embedded core.
func (p *Pool) ClaimServer(server int, now Time, dur Duration) (start, end Time) {
	start = MaxOf(now, p.servers[server])
	end = start + dur
	p.servers[server] = end
	p.busy += dur
	p.claims++
	return start, end
}

// BusyTime returns total reserved service time across all servers.
func (p *Pool) BusyTime() Duration { return p.busy }

// Claims returns the number of reservations made.
func (p *Pool) Claims() uint64 { return p.claims }

// Utilization returns aggregate busy time over (elapsed * servers).
func (p *Pool) Utilization(elapsed Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	u := float64(p.busy) / (float64(elapsed) * float64(len(p.servers)))
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears reservation state, keeping name and size.
func (p *Pool) Reset() {
	for i := range p.servers {
		p.servers[i] = 0
	}
	p.busy = 0
	p.claims = 0
}

// PoolState is a Pool's serializable reservation state.
type PoolState struct {
	Servers []Time
	Busy    Duration
	Claims  uint64
}

// State captures the reservation state. The returned server slice is a copy.
func (p *Pool) State() PoolState {
	servers := make([]Time, len(p.servers))
	copy(servers, p.servers)
	return PoolState{Servers: servers, Busy: p.busy, Claims: p.claims}
}

// SetState reinstalls a previously captured reservation state. The server
// count must match the pool's size.
func (p *Pool) SetState(st PoolState) {
	if len(st.Servers) != len(p.servers) {
		panic("sim: pool SetState with mismatched server count")
	}
	copy(p.servers, st.Servers)
	p.busy = st.Busy
	p.claims = st.Claims
}
