package farm

import (
	"testing"

	"amber/internal/config"
	"amber/internal/sim"
)

// testFarm builds a small farm over the standard test device. Faults are
// injected per test, either through the seeded FaultConfig or by pinning a
// device's resolved schedule directly (white-box, deterministic).
func testFarm(t *testing.T, groups, replicas, spares, workers int, faults FaultConfig) *Farm {
	t.Helper()
	f, err := New(Config{
		Device:   config.PCSystem(config.SmallTestDevice()),
		Groups:   groups,
		Replicas: replicas,
		Spares:   spares,
		Workers:  workers,
		Faults:   faults,
		Policy: Policy{
			HedgeAfter: 2 * sim.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mixedRun is the standard traffic shape: each tenant writes its span,
// then reads it back with payload verification.
func mixedRun(requests int) RunConfig {
	return RunConfig{
		Tenants:       3,
		Requests:      requests,
		MixedWrites:   requests / 2,
		Seed:          42,
		WithData:      true,
		DisjointSpans: true,
		VerifyReads:   true,
	}
}

func TestFarmCleanRun(t *testing.T) {
	f := testFarm(t, 2, 2, 1, 0, FaultConfig{})
	res, err := f.Run(mixedRun(60))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Requests != 3*60 {
		t.Fatalf("requests = %d, want %d", s.Requests, 3*60)
	}
	if s.Corruptions != 0 || s.FailedReads != 0 || s.FailedWrites != 0 {
		t.Fatalf("clean run degraded:\n%s", s.String())
	}
	// Every write fans out to both replicas; every read takes one leg,
	// plus any hedge legs fired by ordinary queueing delay (device clocks
	// run ahead of tenant clocks, so tail reads can exceed HedgeAfter
	// without any fault).
	wantOps := uint64(3*(30*2+30)) + s.Hedges
	if s.SubOps != wantOps {
		t.Fatalf("subOps = %d, want %d (hedges=%d)", s.SubOps, wantOps, s.Hedges)
	}
	if s.Retries != 0 || s.Timeouts != 0 {
		t.Fatalf("clean run retried or timed out:\n%s", s.String())
	}
	if len(s.Events) != 0 {
		t.Fatalf("clean run produced failure events: %v", s.Events)
	}
}

// TestFarmDeviceDeathFailoverRebuild kills one replica mid-run and checks
// the full recovery arc: the write path survives on the mirror, a spare is
// attached and rebuilt from the survivor, and — because the read phase
// keeps verifying payloads long after the rebuild completes — the
// reconstructed contents on the spare are proven byte-correct.
func TestFarmDeviceDeathFailoverRebuild(t *testing.T) {
	f := testFarm(t, 2, 2, 1, 0, FaultConfig{})
	f.devs[1].faults.deadAt = 10 * sim.Millisecond
	res, err := f.Run(mixedRun(120))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Corruptions != 0 {
		t.Fatalf("corrupted reads after rebuild:\n%s", s.String())
	}
	if s.DeviceDeaths != 1 || s.RebuildsStarted != 1 || s.RebuildsCompleted != 1 {
		t.Fatalf("recovery arc incomplete:\n%s", s.String())
	}
	if s.FailedWrites != 0 || s.FailedReads != 0 {
		t.Fatalf("mirror should have absorbed the death:\n%s", s.String())
	}
	if s.Timeouts == 0 {
		t.Fatalf("a dead device must be observed through timeouts:\n%s", s.String())
	}
	if f.devs[1].state != devDead {
		t.Fatalf("dev1 state = %v, want dead", f.devs[1].state)
	}
	if f.devs[4].state != devLive || f.devs[4].group != 0 {
		t.Fatalf("spare not promoted: state=%v group=%d", f.devs[4].state, f.devs[4].group)
	}
	g := f.grps[0]
	if len(g.members) != 2 || g.members[0] != 0 || g.members[1] != 4 {
		t.Fatalf("group 0 members = %v, want [0 4]", g.members)
	}
	if s.UnitsCopied == 0 {
		t.Fatalf("rebuild copied nothing:\n%s", s.String())
	}
}

// TestFarmReadOnlyLatchFailover latches one replica read-only mid-run:
// writes fail over to the mirror and a spare, reads may still be served
// from the latched device only while provably fresh — payload verification
// would catch any stale serve.
func TestFarmReadOnlyLatchFailover(t *testing.T) {
	f := testFarm(t, 2, 2, 1, 0, FaultConfig{})
	f.devs[0].faults.roAt = 8 * sim.Millisecond
	res, err := f.Run(mixedRun(120))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Corruptions != 0 {
		t.Fatalf("stale or corrupt reads:\n%s", s.String())
	}
	if s.ReadOnlyLatches != 1 {
		t.Fatalf("roLatches = %d, want 1:\n%s", s.ReadOnlyLatches, s.String())
	}
	if s.FailedWrites != 0 {
		t.Fatalf("writes must survive a single latch:\n%s", s.String())
	}
	if s.RebuildsStarted != 1 || s.RebuildsCompleted != 1 {
		t.Fatalf("latched member should be rebuilt onto the spare:\n%s", s.String())
	}
	if f.devs[0].state != devReadOnly {
		t.Fatalf("dev0 state = %v, want readonly", f.devs[0].state)
	}
}

// TestFarmLatencyStormHedging puts one replica in a latency storm: reads
// whose primary lands in the storm hedge to the mirror, and the hedge wins
// whenever the penalty exceeds the hedge threshold.
func TestFarmLatencyStormHedging(t *testing.T) {
	f := testFarm(t, 2, 2, 0, 0, FaultConfig{StormPenalty: 8 * sim.Millisecond})
	f.devs[1].faults.stormStart = 30 * sim.Millisecond
	f.devs[1].faults.stormEnd = 80 * sim.Millisecond
	res, err := f.Run(mixedRun(120))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Corruptions != 0 || s.FailedReads != 0 {
		t.Fatalf("storm must only slow, not fail:\n%s", s.String())
	}
	if s.Hedges == 0 {
		t.Fatalf("no hedges fired during the storm:\n%s", s.String())
	}
	if s.HedgeWins == 0 {
		t.Fatalf("an 8ms-delayed primary must lose to a healthy mirror:\n%s", s.String())
	}
	if s.DeviceDeaths != 0 || s.ReadOnlyLatches != 0 {
		t.Fatalf("storm misclassified as failure:\n%s", s.String())
	}
}

// TestFarmTimesSentinelAfterDeath: requests that run into a fully dead
// group fail cleanly and are counted — nothing panics, nothing stalls.
func TestFarmAllReplicasDead(t *testing.T) {
	f := testFarm(t, 1, 2, 0, 0, FaultConfig{})
	f.devs[0].faults.deadAt = 10 * sim.Millisecond
	f.devs[1].faults.deadAt = 12 * sim.Millisecond
	res, err := f.Run(RunConfig{
		Tenants:     2,
		Requests:    120,
		MixedWrites: 60,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.DeviceDeaths != 2 {
		t.Fatalf("deaths = %d, want 2:\n%s", s.DeviceDeaths, s.String())
	}
	if s.FailedWrites == 0 || s.FailedReads == 0 {
		t.Fatalf("requests against a dead group must fail:\n%s", s.String())
	}
	if s.Requests != 2*120 {
		t.Fatalf("every request must still complete (failed or not): %d", s.Requests)
	}
}

// TestFarmSnapshotClonesIdentical: before any traffic, every cloned device
// serves byte-identical contents with byte-identical timing.
func TestFarmSnapshotClonesIdentical(t *testing.T) {
	f, err := New(Config{
		Device:       config.PCSystem(config.SmallTestDevice()),
		Groups:       2,
		Replicas:     2,
		Spares:       1,
		Precondition: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := f.deviceDigest(f.devs[0])
	for _, d := range f.devs[1:] {
		dig, _ := f.deviceDigest(d)
		if dig != base {
			t.Fatalf("device %d clone digest %016x != device 0 %016x", d.id, dig, base)
		}
	}
}
