package farm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"amber/internal/core"
	"amber/internal/ftl"
	"amber/internal/sim"
	"amber/internal/workload"
)

// The farm executes in rounds, the farm-level analogue of the
// horizon-synchronized windows in sim/parallel.go:
//
//  1. Host phase (serial): decide every device operation that exists this
//     round — new tenant arrivals, retry/hedge legs carried over from the
//     previous merge, rebuild copies — each stamped with its issue time.
//  2. Device windows (parallel): each device executes its queue in
//     (issue time, creation order), fully independently; one device is
//     owned by exactly one worker. Fault draws are pure functions of the
//     schedule and the op's issue time, so a window's outcome depends only
//     on its own queue.
//  3. Merge phase (serial): results are folded back into host policy state
//     in op creation order — kicks, failovers, retry/hedge decisions,
//     rebuild bookkeeping, tenant completions.
//
// Worker count influences nothing but wall-clock time; the golden
// fault-storm test pins the whole trajectory byte-identical at workers
// {1, 2, 4} vs serial.

type opKind uint8

const (
	opWrite opKind = iota
	opRead
	opHedge
	opCopyRead
	opCopyWrite
)

// op is one device operation of the current round. Exec-phase workers
// write only done/err; everything else is fixed at creation.
type op struct {
	kind  opKind
	dev   int
	chain int // tenant chains; -1 for rebuild copies
	// Rebuild copies carry their own routing state instead of a chain.
	group int
	spare int
	unit  int64
	seq   uint64
	tried []int
	req   workload.Request
	buf   []byte
	issue sim.Time
	done  sim.Time
	err   error
}

type chainKind uint8

const (
	ckWrite chainKind = iota
	ckRead
)

// chain is one unit-aligned fragment of a tenant request: a write fans out
// to every member of the unit's write set; a read walks replicas with
// retries and an optional hedge leg.
type chain struct {
	kind    chainKind
	tenant  int
	group   int
	unit    int64
	devOff  int64
	absOff  int64
	length  int
	dataOff int
	seq     uint64 // writes: the global sequence this write holds
	issue   sim.Time

	attempt int
	tried   []int // reads: device ids already asked
	pending int
	acks    int
	maxObs  sim.Time
	// Read resolution: earliest successful leg wins.
	bestDone   sim.Time
	winnerBuf  []byte
	winnerKind opKind
	hedged     bool
	done       bool
}

type tenant struct {
	gen      workload.Generator
	next     int
	budget   int
	clock    sim.Time
	data     []byte
	pending  int
	inflight bool
	reqStart sim.Time
	reqDone  sim.Time
	reqFail  bool
}

// shiftGen offsets a generator into a tenant's private sub-span.
type shiftGen struct {
	g    workload.Generator
	base int64
}

func (s shiftGen) Name() string { return s.g.Name() }
func (s shiftGen) Next(i int) workload.Request {
	r := s.g.Next(i)
	r.Offset += s.base
	return r
}

// RunConfig drives one farm run: closed-loop depth-1 tenants over the
// striped volume.
type RunConfig struct {
	// Tenants is the number of concurrent closed-loop clients (default 1).
	Tenants int
	// Requests is the per-tenant request budget.
	Requests int
	// BlockSize defaults to one stripe unit.
	BlockSize int
	// Pattern is the FIO access pattern; ignored when MixedWrites > 0.
	Pattern workload.Pattern
	// MixedWrites switches to the write-then-read generator: each tenant's
	// first MixedWrites requests write, the rest read the written range.
	MixedWrites int
	// Seed derives every tenant's generator and payload stream.
	Seed uint64
	// WithData carries and checks real payload bytes (TrackData devices).
	WithData bool
	// DisjointSpans gives each tenant a private slice of the volume, so no
	// unit is ever raced by two tenants.
	DisjointSpans bool
	// VerifyReads compares every winning read payload against a host-side
	// model and counts mismatches in Stats.Corruptions. Requires WithData,
	// an unpreconditioned data-tracking farm, and race-free units
	// (DisjointSpans or a single tenant).
	VerifyReads bool
	// AbandonRebuilds stops rebuilds still active once tenant traffic
	// ends, instead of draining them to completion.
	AbandonRebuilds bool
}

// runState is the per-run working set of the round loop.
type runState struct {
	f       *Farm
	rc      RunConfig
	tenants []tenant
	chains  []chain
	cur     []op
	carry   []op
	ws      []int // writeSet scratch

	model      []byte
	skipVerify map[int64]bool

	readDigest uint64
	latSum     sim.Duration
	latMax     sim.Duration
}

// Run drives the tenants to completion (plus any rebuild drain) and
// returns the deterministic result.
func (f *Farm) Run(rc RunConfig) (RunResult, error) {
	if rc.Tenants <= 0 {
		rc.Tenants = 1
	}
	if rc.Requests <= 0 {
		return RunResult{}, fmt.Errorf("farm: RunConfig.Requests must be positive")
	}
	bs := rc.BlockSize
	if bs <= 0 {
		bs = int(f.unitBytes)
	}
	rc.BlockSize = bs
	if int64(bs) > f.VolumeBytes() {
		return RunResult{}, fmt.Errorf("farm: block size %d exceeds farm volume %d", bs, f.VolumeBytes())
	}
	if rc.VerifyReads {
		if !rc.WithData || !f.trackData {
			return RunResult{}, fmt.Errorf("farm: VerifyReads needs WithData and a data-tracking device")
		}
		if f.preconditioned {
			return RunResult{}, fmt.Errorf("farm: VerifyReads needs an unpreconditioned farm (unknown initial content)")
		}
		if rc.Tenants > 1 && !rc.DisjointSpans {
			return RunResult{}, fmt.Errorf("farm: VerifyReads with multiple tenants needs DisjointSpans")
		}
	}
	st := &runState{f: f, rc: rc, readDigest: fnvOffset}
	if rc.VerifyReads {
		st.model = make([]byte, f.VolumeBytes())
		st.skipVerify = make(map[int64]bool)
	}
	span := f.VolumeBytes()
	if rc.DisjointSpans {
		span = f.VolumeBytes() / int64(rc.Tenants) / int64(bs) * int64(bs)
		if span < int64(bs) {
			return RunResult{}, fmt.Errorf("farm: volume too small for %d disjoint tenant spans of block size %d",
				rc.Tenants, bs)
		}
	}
	st.tenants = make([]tenant, rc.Tenants)
	for ti := range st.tenants {
		seed := rc.Seed + uint64(ti)*0x9e3779b97f4a7c15
		var gen workload.Generator
		var err error
		if rc.MixedWrites > 0 {
			gen, err = workload.NewMixed(fmt.Sprintf("farm-t%d", ti), rc.MixedWrites, bs, span, seed)
		} else {
			gen, err = workload.NewFIO(rc.Pattern, bs, span, seed)
		}
		if err != nil {
			return RunResult{}, err
		}
		if rc.DisjointSpans && ti > 0 {
			gen = shiftGen{g: gen, base: int64(ti) * span}
		}
		t := &st.tenants[ti]
		t.gen = gen
		t.budget = rc.Requests
		if rc.WithData {
			t.data = make([]byte, bs)
		}
	}

	for {
		st.cur = append(st.cur[:0], st.carry...)
		st.carry = st.carry[:0]
		st.arrivals()
		if rc.AbandonRebuilds && st.trafficDone() {
			st.abandonRebuilds()
		}
		st.rebuildIssue()
		if len(st.cur) == 0 {
			if st.trafficDone() {
				break
			}
			// No device ops this round, but tenants still hold budget:
			// their arrivals all resolved instantly (e.g. a fully dead
			// group fails writes at decompose). Keep cycling rounds so
			// the closed loop drains its budget.
			continue
		}
		f.exec(st.cur)
		st.merge()
	}
	return RunResult{
		Stats:      f.stats.clone(),
		Now:        f.now,
		LatencySum: st.latSum,
		LatencyMax: st.latMax,
		ReadDigest: st.readDigest,
	}, nil
}

func (st *runState) trafficDone() bool {
	for i := range st.tenants {
		if st.tenants[i].budget > 0 || st.tenants[i].inflight {
			return false
		}
	}
	return true
}

func (st *runState) abandonRebuilds() {
	for _, g := range st.f.grps {
		if g.rb != nil {
			st.abortRebuild(g, st.f.now)
		}
	}
}

// fillPayload writes the deterministic payload stream of (seed, tenant,
// request) into buf — reproducible by tests without touching the farm.
func fillPayload(buf []byte, seed uint64, tenant, req int) {
	x := mix64(seed ^ (uint64(tenant)+1)*0x9e3779b97f4a7c15 ^ uint64(req)*0xd1342543de82ef95)
	for i := range buf {
		if i%8 == 0 {
			x = mix64(x)
		}
		buf[i] = byte(x >> uint((i%8)*8))
	}
}

// arrivals starts the next request of every idle tenant with budget: the
// closed-loop depth-1 contract, one request per tenant in flight.
func (st *runState) arrivals() {
	for ti := range st.tenants {
		t := &st.tenants[ti]
		if t.inflight || t.budget == 0 {
			continue
		}
		req := t.gen.Next(t.next)
		if st.rc.WithData && req.Write {
			fillPayload(t.data[:req.Length], st.rc.Seed, ti, t.next)
		}
		t.next++
		t.budget--
		t.inflight = true
		t.reqStart = t.clock
		t.reqDone = t.clock
		t.reqFail = false
		st.decompose(ti, req)
		if t.pending == 0 {
			// Every fragment resolved synchronously (no write set left
			// anywhere): the request is already over.
			st.finishRequest(t)
		}
	}
}

// decompose splits a tenant request into unit-aligned chains and issues
// their initial device legs at the tenant's clock.
func (st *runState) decompose(ti int, req workload.Request) {
	f := st.f
	t := &st.tenants[ti]
	end := req.Offset + int64(req.Length)
	for off := req.Offset; off < end; {
		u := off / f.unitBytes
		within := off - u*f.unitBytes
		n := f.unitBytes - within
		if rem := end - off; rem < n {
			n = rem
		}
		g := f.grps[f.groupOf(u)]
		ci := len(st.chains)
		c := chain{
			tenant:  ti,
			group:   g.id,
			unit:    u,
			devOff:  f.devOffset(u) + within,
			absOff:  off,
			length:  int(n),
			dataOff: int(off - req.Offset),
			issue:   t.clock,
		}
		if req.Write {
			c.kind = ckWrite
			f.writeSeq++
			c.seq = f.writeSeq
			f.unitSeq[u] = c.seq
			if st.model != nil {
				copy(st.model[off:off+n], t.data[c.dataOff:c.dataOff+int(n)])
			}
			st.ws = f.writeSet(g, st.ws)
			if len(st.ws) == 0 {
				f.stats.FailedWrites++
				st.markLost(u)
				c.done = true
				t.reqFail = true
			} else {
				var buf []byte
				if st.rc.WithData {
					buf = t.data[c.dataOff : c.dataOff+int(n)]
				}
				for _, d := range st.ws {
					st.cur = append(st.cur, op{kind: opWrite, dev: d, chain: ci,
						req: workload.Request{Write: true, Offset: c.devOff, Length: c.length},
						buf: buf, issue: t.clock})
				}
				c.pending = len(st.ws)
			}
		} else {
			c.kind = ckRead
			primary, ok := f.pickRead(g, u, nil)
			if !ok {
				f.stats.FailedReads++
				f.stats.ReadsLost++
				c.done = true
				t.reqFail = true
			} else {
				c.tried = append(c.tried, primary)
				st.cur = append(st.cur, op{kind: opRead, dev: primary, chain: ci,
					req: workload.Request{Offset: c.devOff, Length: c.length},
					buf: st.readBuf(c.length), issue: t.clock})
				c.pending = 1
			}
		}
		if !c.done {
			t.pending++
		}
		st.chains = append(st.chains, c)
		off += n
	}
}

func (st *runState) readBuf(n int) []byte {
	if !st.rc.WithData {
		return nil
	}
	return make([]byte, n)
}

func (st *runState) markLost(u int64) {
	if st.skipVerify != nil {
		st.skipVerify[u] = true
	}
}

// rebuildIssue advances every active rebuild: completed copy-reads become
// copy-writes (unless a fresher tenant write superseded them), then new
// copy-reads fill the in-flight budget. Runs after arrivals so the
// current round's unit sequence bumps are visible — the ordering that
// makes "drop superseded copies" airtight.
func (st *runState) rebuildIssue() {
	f := st.f
	for _, g := range f.grps {
		rb := g.rb
		if rb == nil {
			continue
		}
		for _, r := range rb.ready {
			if f.unitSeq[r.unit] != r.seq {
				// A tenant wrote this unit after the copy-read was decided;
				// the spare already took that write directly.
				f.stats.UnitsDropped++
				rb.inflight--
				continue
			}
			issue := r.done
			if issue < rb.clock {
				issue = rb.clock
			}
			st.cur = append(st.cur, op{kind: opCopyWrite, dev: rb.spare, chain: -1,
				group: g.id, spare: rb.spare, unit: r.unit, seq: r.seq,
				req: workload.Request{Write: true, Offset: f.devOffset(r.unit), Length: int(f.unitBytes)},
				buf: r.buf, issue: issue})
		}
		rb.ready = rb.ready[:0]
		for rb.inflight < f.pol.RebuildBatch && rb.cursor < f.unitsPerGroup {
			u := f.globalUnit(g.id, rb.cursor)
			rb.cursor++
			seq := f.unitSeq[u]
			if seq > rb.startSeq || (seq == 0 && !f.preconditioned) {
				// Written after the spare joined the write set (already
				// there), or provably blank on a blank farm.
				f.stats.UnitsSkipped++
				continue
			}
			src, ok := f.pickRead(g, u, nil)
			if !ok {
				f.stats.UnitsLost++
				st.markLost(u)
				continue
			}
			rb.inflight++
			st.cur = append(st.cur, op{kind: opCopyRead, dev: src, chain: -1,
				group: g.id, spare: rb.spare, unit: u, seq: seq, tried: []int{src},
				req: workload.Request{Offset: f.devOffset(u), Length: int(f.unitBytes)},
				buf: st.copyBuf(), issue: rb.clock})
		}
		if rb.cursor >= f.unitsPerGroup && rb.inflight == 0 && len(rb.ready) == 0 {
			// Reconstruction complete: the spare becomes a live member.
			d := f.devs[rb.spare]
			d.state = devLive
			g.members = append(g.members, rb.spare)
			f.stats.RebuildsCompleted++
			f.stats.event("rebuild-done", rb.spare, g.id, rb.spare, rb.clock)
			g.rb = nil
		}
	}
}

func (st *runState) copyBuf() []byte {
	if !st.f.trackData {
		return nil
	}
	return make([]byte, st.f.unitBytes)
}

// exec runs the round's device windows: serial below two active devices or
// workers <= 1, otherwise a transient worker set claiming devices off an
// atomic cursor (the sim.WorkerPool idiom, one level up).
func (f *Farm) exec(ops []op) {
	for i := range ops {
		d := f.devs[ops[i].dev]
		if len(d.q) == 0 {
			f.active = append(f.active, int32(d.id))
		}
		d.q = append(d.q, int32(i))
	}
	sort.Slice(f.active, func(i, j int) bool { return f.active[i] < f.active[j] })
	w := f.workers
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w > len(f.active) {
		w = len(f.active)
	}
	if w <= 1 {
		for _, id := range f.active {
			f.execDevice(f.devs[id], ops)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(f.active) {
						return
					}
					f.execDevice(f.devs[f.active[n]], ops)
				}
			}()
		}
		wg.Wait()
	}
	f.active = f.active[:0]
}

// execDevice serves one device's queue in (issue time, creation) order.
// The device is owned exclusively by this goroutine for the round.
func (f *Farm) execDevice(d *device, ops []op) {
	sort.Slice(d.q, func(i, j int) bool {
		a, b := &ops[d.q[i]], &ops[d.q[j]]
		if a.issue != b.issue {
			return a.issue < b.issue
		}
		return d.q[i] < d.q[j]
	})
	for _, qi := range d.q {
		f.execOp(d, &ops[qi])
	}
	d.sys.SetServiceDelay(0)
	d.q = d.q[:0]
}

// execOp applies the device's fault schedule at the op's issue time, then
// submits through the ordinary synchronous path.
func (f *Farm) execOp(d *device, o *op) {
	df := &d.faults
	var delay sim.Duration
	if df.stormStart > 0 && o.issue >= df.stormStart && o.issue < df.stormEnd {
		delay = f.cfg.Faults.StormPenalty
	}
	d.sys.SetServiceDelay(delay)
	if df.roAt > 0 && !d.roHit && o.issue >= df.roAt {
		d.sys.ForceReadOnly()
		d.roHit = true
	}
	if df.deadAt > 0 && !d.downHit && o.issue >= df.deadAt {
		d.sys.SetDeviceDown(true)
		d.downHit = true
	}
	done, err := d.sys.Submit(o.issue, o.req, o.buf)
	if err == nil && df.deadAt > 0 && done > df.deadAt {
		// The device died while serving: the completion never escaped.
		if !d.downHit {
			d.sys.SetDeviceDown(true)
			d.downHit = true
		}
		done, err = 0, core.ErrDeviceDown
	}
	o.done, o.err = done, err
}

// observe is when the host learns an op's fate: completions at their done
// time, device silence at issue + RequestTimeout, explicit refusals at
// their issue time.
func (st *runState) observe(o *op) sim.Time {
	if o.err == nil {
		return o.done
	}
	if errors.Is(o.err, core.ErrDeviceDown) {
		st.f.stats.Timeouts++
		return o.issue + st.f.pol.RequestTimeout
	}
	return o.issue
}

// merge folds the round's results back into host state, strictly in op
// creation order.
func (st *runState) merge() {
	for i := range st.cur {
		o := &st.cur[i]
		st.f.stats.SubOps++
		obs := st.observe(o)
		if obs > st.f.now {
			st.f.now = obs
		}
		if o.err != nil {
			st.kickFromError(o, obs)
		}
		switch o.kind {
		case opWrite:
			st.mergeWrite(o, obs)
		case opRead, opHedge:
			st.mergeRead(o, obs)
		case opCopyRead:
			st.mergeCopyRead(o, obs)
		case opCopyWrite:
			st.mergeCopyWrite(o, obs)
		}
	}
}

// kickFromError translates a failed op into membership changes: device
// death and read-only latches remove the device from service and may
// trigger a spare failover.
func (st *runState) kickFromError(o *op, obs sim.Time) {
	if errors.Is(o.err, core.ErrDeviceDown) {
		st.kickDead(o.dev, obs)
		return
	}
	if errors.Is(o.err, ftl.ErrReadOnly) {
		var refused uint64
		if o.kind == opWrite && o.chain >= 0 {
			refused = st.chains[o.chain].seq
		}
		st.kickReadOnly(o.dev, obs, refused)
	}
}

func (st *runState) kickDead(id int, at sim.Time) {
	f := st.f
	d := f.devs[id]
	if d.state == devDead {
		return
	}
	prev := d.state
	d.state = devDead
	f.stats.DeviceDeaths++
	f.stats.event("kick-dead", id, d.group, -1, at)
	switch prev {
	case devLive:
		g := f.grps[d.group]
		d.exitSeq = f.writeSeq
		g.dropMember(id)
		st.maybeFailover(g, at)
	case devRebuilding:
		st.abortRebuild(f.grps[d.group], at)
	}
}

// kickReadOnly removes a latched device from the write set. exitSeq is the
// highest write sequence the device provably holds: it starts at the
// current global sequence and is lowered by every refused write observed,
// so a refused seq s caps it at s-1 — replicas never serve a unit their
// latch made them miss.
func (st *runState) kickReadOnly(id int, at sim.Time, refusedSeq uint64) {
	f := st.f
	d := f.devs[id]
	switch d.state {
	case devReadOnly:
		if refusedSeq > 0 && refusedSeq-1 < d.exitSeq {
			d.exitSeq = refusedSeq - 1
		}
	case devLive:
		d.state = devReadOnly
		d.exitSeq = f.writeSeq
		if refusedSeq > 0 && refusedSeq-1 < d.exitSeq {
			d.exitSeq = refusedSeq - 1
		}
		f.stats.ReadOnlyLatches++
		f.stats.event("kick-readonly", id, d.group, -1, at)
		g := f.grps[d.group]
		g.dropMember(id)
		st.maybeFailover(g, at)
	case devRebuilding:
		d.state = devReadOnly
		d.exitSeq = 0 // a half-rebuilt latched spare proves nothing
		f.stats.ReadOnlyLatches++
		f.stats.event("kick-readonly", id, d.group, -1, at)
		st.abortRebuild(f.grps[d.group], at)
	}
}

// maybeFailover attaches the next hot spare to a group that lost a member
// and starts its rebuild.
func (st *runState) maybeFailover(g *group, at sim.Time) {
	f := st.f
	if g.rb != nil || len(f.spares) == 0 || len(g.members) >= f.cfg.Replicas {
		return
	}
	id := f.spares[0]
	f.spares = f.spares[1:]
	d := f.devs[id]
	d.state = devRebuilding
	d.group = g.id
	g.rb = &rebuild{group: g.id, spare: id, startSeq: f.writeSeq, clock: at}
	f.stats.RebuildsStarted++
	f.stats.event("rebuild-start", id, g.id, id, at)
}

func (st *runState) abortRebuild(g *group, at sim.Time) {
	f := st.f
	rb := g.rb
	if rb == nil {
		return
	}
	f.stats.RebuildsAborted++
	f.stats.event("rebuild-abort", rb.spare, g.id, rb.spare, at)
	g.rb = nil
	// The group is still short a member: try the next spare from scratch.
	st.maybeFailover(g, at)
}

func (st *runState) mergeWrite(o *op, obs sim.Time) {
	c := &st.chains[o.chain]
	if obs > c.maxObs {
		c.maxObs = obs
	}
	if o.err == nil {
		c.acks++
	}
	c.pending--
	if c.pending > 0 {
		return
	}
	if c.acks > 0 {
		st.chainDone(c, c.maxObs, false)
		return
	}
	f := st.f
	st.ws = f.writeSet(f.grps[c.group], st.ws)
	if c.attempt < f.pol.MaxRetries && len(st.ws) > 0 {
		c.attempt++
		f.stats.Retries++
		issue := c.maxObs + f.pol.backoff(c.attempt)
		var buf []byte
		if st.rc.WithData {
			buf = st.tenants[c.tenant].data[c.dataOff : c.dataOff+c.length]
		}
		for _, dv := range st.ws {
			st.carry = append(st.carry, op{kind: opWrite, dev: dv, chain: o.chain,
				req: workload.Request{Write: true, Offset: c.devOff, Length: c.length},
				buf: buf, issue: issue})
		}
		c.pending = len(st.ws)
		return
	}
	f.stats.FailedWrites++
	st.markLost(c.unit)
	st.chainDone(c, c.maxObs, true)
}

func (st *runState) mergeRead(o *op, obs sim.Time) {
	f := st.f
	c := &st.chains[o.chain]
	ci := o.chain
	c.pending--
	if o.err == nil {
		if c.bestDone == 0 || o.done < c.bestDone {
			c.bestDone = o.done
			c.winnerBuf = o.buf
			c.winnerKind = o.kind
		}
		// Slow primary: fire the hedge the host would have launched at
		// issue+HedgeAfter, still waiting for this answer.
		if o.kind == opRead && !c.hedged && f.pol.HedgeAfter > 0 && o.done > c.issue+f.pol.HedgeAfter {
			if sec, ok := f.pickRead(f.grps[c.group], c.unit, c.tried); ok {
				c.hedged = true
				c.tried = append(c.tried, sec)
				f.stats.Hedges++
				st.carry = append(st.carry, op{kind: opHedge, dev: sec, chain: ci,
					req: workload.Request{Offset: c.devOff, Length: c.length},
					buf: st.readBuf(c.length), issue: c.issue + f.pol.HedgeAfter})
				c.pending++
			}
		}
	} else {
		if obs > c.maxObs {
			c.maxObs = obs
		}
		if c.bestDone == 0 && c.attempt < f.pol.MaxRetries {
			if next, ok := f.pickRead(f.grps[c.group], c.unit, c.tried); ok {
				c.attempt++
				c.tried = append(c.tried, next)
				f.stats.Retries++
				st.carry = append(st.carry, op{kind: opRead, dev: next, chain: ci,
					req: workload.Request{Offset: c.devOff, Length: c.length},
					buf: st.readBuf(c.length), issue: obs + f.pol.backoff(c.attempt)})
				c.pending++
			} else {
				f.stats.ReadsLost++
			}
		}
	}
	if c.pending > 0 {
		return
	}
	if c.bestDone > 0 {
		if c.winnerKind == opHedge {
			f.stats.HedgeWins++
		}
		st.readDigest = fnvU64(st.readDigest, uint64(c.bestDone))
		if c.winnerBuf != nil {
			copy(st.tenants[c.tenant].data[c.dataOff:c.dataOff+c.length], c.winnerBuf)
			st.readDigest = fnvBytes(st.readDigest, c.winnerBuf)
			if st.model != nil && !st.skipVerify[c.unit] {
				if !bytesEqual(c.winnerBuf, st.model[c.absOff:c.absOff+int64(c.length)]) {
					f.stats.Corruptions++
				}
			}
		}
		st.chainDone(c, c.bestDone, false)
		return
	}
	f.stats.FailedReads++
	st.chainDone(c, c.maxObs, true)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (st *runState) mergeCopyRead(o *op, obs sim.Time) {
	f := st.f
	g := f.grps[o.group]
	rb := g.rb
	if rb == nil || rb.spare != o.spare {
		return // rebuild aborted while this copy was in flight
	}
	if obs > rb.clock {
		rb.clock = obs
	}
	if o.err == nil {
		rb.ready = append(rb.ready, copyRead{unit: o.unit, seq: o.seq, buf: o.buf, done: o.done})
		return
	}
	if src, ok := f.pickRead(g, o.unit, o.tried); ok {
		f.stats.Retries++
		st.carry = append(st.carry, op{kind: opCopyRead, dev: src, chain: -1,
			group: o.group, spare: o.spare, unit: o.unit, seq: o.seq,
			tried: append(o.tried, src), req: o.req, buf: o.buf, issue: obs})
		return
	}
	f.stats.UnitsLost++
	st.markLost(o.unit)
	rb.inflight--
}

func (st *runState) mergeCopyWrite(o *op, obs sim.Time) {
	f := st.f
	g := f.grps[o.group]
	rb := g.rb
	if rb == nil || rb.spare != o.spare {
		return
	}
	if obs > rb.clock {
		rb.clock = obs
	}
	if o.err == nil {
		f.stats.UnitsCopied++
		rb.inflight--
		return
	}
	// A dead or latched spare was kicked by kickFromError, aborting the
	// rebuild before this handler ran (rb == nil above). Reaching here
	// means an unexpected residual error on a healthy spare: give the unit
	// up rather than stall the rebuild.
	f.stats.UnitsLost++
	st.markLost(o.unit)
	rb.inflight--
}

// chainDone resolves one fragment of a tenant request.
func (st *runState) chainDone(c *chain, at sim.Time, failed bool) {
	if c.done {
		return
	}
	c.done = true
	t := &st.tenants[c.tenant]
	if at > t.reqDone {
		t.reqDone = at
	}
	if failed {
		t.reqFail = true
	}
	t.pending--
	if t.pending == 0 {
		st.finishRequest(t)
	}
}

func (st *runState) finishRequest(t *tenant) {
	t.inflight = false
	t.clock = t.reqDone
	st.f.stats.Requests++
	lat := t.reqDone - t.reqStart
	st.latSum += lat
	if lat > st.latMax {
		st.latMax = lat
	}
}

func (p Policy) backoff(attempt int) sim.Duration {
	b := p.RetryBackoff
	for i := 1; i < attempt; i++ {
		b *= 2
	}
	return b
}
