package farm

import (
	"os"
	"strconv"
	"testing"

	"amber/internal/config"
	"amber/internal/sim"
)

// farmWorkerMatrix mirrors the core intraWorkerMatrix contract: CI's race
// matrix pins one worker count per job via AMBERSIM_INTRA_WORKERS; without
// the variable the full {1, 2, 4} set runs against the serial reference.
func farmWorkerMatrix(t *testing.T) []int {
	t.Helper()
	if v := os.Getenv("AMBERSIM_INTRA_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad AMBERSIM_INTRA_WORKERS %q", v)
		}
		return []int{n}
	}
	return []int{1, 2, 4}
}

// stormFaults is the golden fault schedule: seed 4 over a 4x2+1 farm
// resolves to one whole-device death (with spare failover and a completed
// rebuild), three read-only latches, and latency storms wide enough that
// hedges fire and win — every host robustness path exercised in one run.
func stormFaults() FaultConfig {
	return FaultConfig{
		Seed:         4,
		DeathProb:    0.15,
		DeathMin:     8 * sim.Millisecond,
		DeathMax:     30 * sim.Millisecond,
		ReadOnlyProb: 0.10,
		ReadOnlyMin:  8 * sim.Millisecond,
		ReadOnlyMax:  30 * sim.Millisecond,
		StormProb:    0.30,
		StormMin:     5 * sim.Millisecond,
		StormMax:     40 * sim.Millisecond,
		StormLen:     20 * sim.Millisecond,
		StormPenalty: 8 * sim.Millisecond,
	}
}

// goldenRun builds a 9-device farm (4 groups x 2 replicas + 1 spare) at
// the given worker count, drives the standard verified mixed workload, and
// returns the full observable trajectory: counters, event timeline,
// per-device terminal state and content digests (including the rebuilt
// spare), latency aggregates, and the rolling winner-payload digest.
func goldenRun(t *testing.T, workers int, faults FaultConfig) (string, Stats) {
	t.Helper()
	f, err := New(Config{
		Device:   config.PCSystem(config.SmallTestDevice()),
		Groups:   4,
		Replicas: 2,
		Spares:   1,
		Workers:  workers,
		Policy:   Policy{HedgeAfter: 2 * sim.Millisecond},
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(RunConfig{
		Tenants: 3, Requests: 120, MixedWrites: 60, Seed: 42,
		WithData: true, DisjointSpans: true, VerifyReads: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	traj := f.Fingerprint()
	traj += "readDigest=" + strconv.FormatUint(res.ReadDigest, 16) +
		" latSum=" + strconv.FormatUint(uint64(res.LatencySum), 10) +
		" latMax=" + strconv.FormatUint(uint64(res.LatencyMax), 10) +
		" end=" + strconv.FormatUint(uint64(res.Now), 10) + "\n"
	return traj, res.Stats
}

// TestFarmFaultStormGoldenEquivalence is the tentpole determinism proof: a
// fault storm with a device death, read-only latches, latency storms, retry
// and hedge traffic, and one full hot-spare rebuild must produce a
// byte-identical trajectory — retry counts, hedge winners, failover order,
// event timeline, and the rebuilt spare's reconstructed payload digest —
// at every worker count. Under -race (the AMBERSIM_INTRA_WORKERS CI
// matrix) it also proves the device-window workers share nothing.
func TestFarmFaultStormGoldenEquivalence(t *testing.T) {
	base, s := goldenRun(t, 0, stormFaults())
	// The storm must actually exercise every robustness path.
	if s.DeviceDeaths == 0 || s.ReadOnlyLatches == 0 {
		t.Fatalf("storm fired no device-level faults:\n%s", s.String())
	}
	if s.Hedges == 0 || s.HedgeWins == 0 || s.Retries == 0 || s.Timeouts == 0 {
		t.Fatalf("host robustness paths idle:\n%s", s.String())
	}
	if s.RebuildsStarted == 0 || s.RebuildsCompleted == 0 || s.UnitsCopied == 0 {
		t.Fatalf("no completed rebuild:\n%s", s.String())
	}
	if s.Corruptions != 0 {
		t.Fatalf("payload verification failed:\n%s", s.String())
	}
	for _, w := range farmWorkerMatrix(t) {
		got, _ := goldenRun(t, w, stormFaults())
		if got != base {
			t.Fatalf("workers=%d trajectory diverged from serial\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}

// TestFarmCleanGoldenEquivalence pins the fault-free trajectory across the
// same worker matrix: parallel device windows must be invisible even when
// no robustness machinery fires.
func TestFarmCleanGoldenEquivalence(t *testing.T) {
	base, s := goldenRun(t, 0, FaultConfig{})
	if s.Corruptions != 0 || s.FailedReads != 0 || s.FailedWrites != 0 || len(s.Events) != 0 {
		t.Fatalf("clean run degraded:\n%s", s.String())
	}
	for _, w := range farmWorkerMatrix(t) {
		got, _ := goldenRun(t, w, FaultConfig{})
		if got != base {
			t.Fatalf("workers=%d trajectory diverged from serial\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, base, w, got)
		}
	}
}
