// Package farm simulates a shelf of SSDs behind one host: N core.Systems
// sharing one virtual clock, fronted by a multiplexer that stripes tenant
// requests across replica groups. It lifts the domain-local vs cross-domain
// split of sim/parallel.go one level up — devices are natural parallel
// domains that interact only through the host — and adds the failure modes
// that only exist at farm width: whole-device death, a device-level
// read-only latch (riding ftl.ErrReadOnly), and latency-storm windows,
// answered by host-side retry with backoff, request timeouts, hedged
// reads, replica failover, and hot-spare rebuild.
//
// Execution is round-based lockstep (see run.go): a serial host phase
// decides which device operations exist and at what issue times, a
// parallel window executes each device's queue independently (one device
// is touched by exactly one worker), and a serial merge phase folds the
// results back into host policy state in creation order. Worker count
// therefore never influences any result — the golden fault-storm test
// asserts byte-identical trajectories serial vs workers {1,2,4}. The
// determinism argument is spelled out in sim/doc.go.
package farm

import (
	"fmt"

	"amber/internal/core"
	"amber/internal/sim"
)

// Policy is the host robustness policy: how the multiplexer answers
// device-level failures and slowness.
type Policy struct {
	// MaxRetries bounds per-sub-operation retries (a read moving to the
	// next replica, a write re-issued to the refreshed write set).
	MaxRetries int
	// RetryBackoff is the base delay before a retry; it doubles with each
	// attempt.
	RetryBackoff sim.Duration
	// RequestTimeout is when the host observes a device's silence: an
	// operation lost to a dead device is detected at issue+RequestTimeout.
	RequestTimeout sim.Duration
	// HedgeAfter fires a hedged read to another replica when the primary
	// has not answered within this latency. Zero disables hedging.
	HedgeAfter sim.Duration
	// RebuildBatch bounds how many rebuild copy units are in flight at
	// once — the throttle that keeps reconstruction an ordinary background
	// request stream instead of a device-saturating burst.
	RebuildBatch int
}

func (p Policy) withDefaults() Policy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 2
	}
	if p.RetryBackoff == 0 {
		p.RetryBackoff = 50 * sim.Microsecond
	}
	if p.RequestTimeout == 0 {
		p.RequestTimeout = 2 * sim.Millisecond
	}
	if p.RebuildBatch <= 0 {
		p.RebuildBatch = 8
	}
	return p
}

// Config describes a farm: identical devices arranged as Groups stripe
// columns of Replicas mirrors each, plus idle hot spares.
type Config struct {
	// Device is the per-device configuration. Every device in the farm is
	// built from this one config (snapshot cloning requires it — see New).
	Device core.SystemConfig
	// Groups is the stripe width: unit u lives in group u % Groups.
	Groups int
	// Replicas is the mirror count per group; writes go to every live
	// member, reads to a deterministic primary.
	Replicas int
	// Spares is the number of idle hot-spare devices rebuilt onto after a
	// member is lost.
	Spares int
	// Precondition sequentially fills device 0 to steady state before
	// cloning it into the rest of the farm through snapshot/restore, so
	// all devices start from one identical aged image.
	Precondition bool
	// Workers sets the parallel device-window width; <= 1 executes device
	// windows serially. Results are byte-identical at any value.
	Workers int
	// Policy is the host robustness policy (zero fields take defaults).
	Policy Policy
	// Faults is the seeded device-level fault schedule.
	Faults FaultConfig
}

type devState uint8

const (
	devLive       devState = iota // serving member of its group
	devSpare                      // idle hot spare
	devRebuilding                 // spare attached to a group, copying
	devReadOnly                   // latched read-only, kicked from writes
	devDead                       // whole-device failure observed
)

func (s devState) String() string {
	switch s {
	case devLive:
		return "live"
	case devSpare:
		return "spare"
	case devRebuilding:
		return "rebuilding"
	case devReadOnly:
		return "readonly"
	case devDead:
		return "dead"
	}
	return fmt.Sprintf("devState(%d)", int(s))
}

// device is one farm slot: a full simulated System plus the host's view of
// it. Exec-phase workers own a device exclusively within a round; all
// other fields are only touched by the serial host phases.
type device struct {
	id    int
	sys   *core.System
	state devState
	group int // -1 while an idle spare
	// exitSeq is the highest global write sequence this device is
	// guaranteed to have applied when it left the live set; a kicked
	// replica may serve unit u only while exitSeq >= unitSeq[u].
	exitSeq uint64
	faults  devFaults
	downHit bool // death latch applied to sys
	roHit   bool // read-only latch applied to sys
	q       []int32
}

// group is one stripe column: the live members plus at most one active
// rebuild.
type group struct {
	id      int
	members []int
	rb      *rebuild
}

// rebuild reconstructs a lost member's contents onto a spare from the
// surviving replicas, as a throttled request stream on the shared
// timeline. The spare joins the write set immediately, so only units
// written before startSeq need copying; units overwritten by tenants while
// a copy is in flight are dropped in favor of the fresher direct write.
type rebuild struct {
	group    int
	spare    int
	startSeq uint64
	clock    sim.Time // throttle: the next copy batch issues here
	cursor   int64    // next group-local unit to consider
	inflight int      // units between copy-read issue and copy-write merge
	ready    []copyRead
}

type copyRead struct {
	unit int64
	seq  uint64
	buf  []byte
	done sim.Time
}

// Farm is the shelf: devices, groups, spares, and the unit version vector
// that keeps failover and rebuild reads consistent.
type Farm struct {
	cfg  Config
	pol  Policy
	devs []*device
	grps []*group
	// spares holds idle spare device ids in attachment order.
	spares []int

	unitBytes      int64
	unitsPerGroup  int64
	totalUnits     int64
	trackData      bool
	preconditioned bool

	// writeSeq is the global write sequence; unitSeq[u] is the sequence of
	// the last host write that touched unit u (0 = never written).
	writeSeq uint64
	unitSeq  []uint64

	workers int
	now     sim.Time
	stats   Stats

	active []int32 // exec-phase scratch: device ids with queued ops
}

// New builds the farm: device 0 is constructed (and optionally
// preconditioned), then cloned into every other slot through
// snapshot/restore — one aging pass instead of N. All devices share one
// config (the snapshot fingerprint demands it); divergence comes only from
// the seeded per-device fault schedule and the traffic itself.
func New(cfg Config) (*Farm, error) {
	if cfg.Groups < 1 || cfg.Replicas < 1 || cfg.Spares < 0 {
		return nil, fmt.Errorf("farm: need groups >= 1, replicas >= 1, spares >= 0 (got %d/%d/%d)",
			cfg.Groups, cfg.Replicas, cfg.Spares)
	}
	if err := cfg.Faults.validate(); err != nil {
		return nil, err
	}
	n := cfg.Groups*cfg.Replicas + cfg.Spares
	first, err := core.NewSystem(cfg.Device)
	if err != nil {
		return nil, err
	}
	if cfg.Precondition {
		if err := first.Precondition(8); err != nil {
			return nil, fmt.Errorf("farm: precondition: %w", err)
		}
	}
	var img []byte
	if n > 1 {
		img, err = first.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("farm: snapshot device 0: %w", err)
		}
	}
	f := &Farm{
		cfg:            cfg,
		pol:            cfg.Policy.withDefaults(),
		unitBytes:      int64(first.Split.LineBytes()),
		trackData:      cfg.Device.Device.TrackData,
		preconditioned: cfg.Precondition,
		workers:        cfg.Workers,
	}
	f.unitsPerGroup = first.VolumeBytes() / f.unitBytes
	f.totalUnits = f.unitsPerGroup * int64(cfg.Groups)
	f.unitSeq = make([]uint64, f.totalUnits)
	f.devs = make([]*device, n)
	for i := 0; i < n; i++ {
		sys := first
		if i > 0 {
			sys, err = core.NewSystem(cfg.Device)
			if err != nil {
				return nil, err
			}
			if err := sys.Restore(img); err != nil {
				return nil, fmt.Errorf("farm: clone device %d: %w", i, err)
			}
		}
		f.devs[i] = &device{id: i, sys: sys, group: -1, faults: cfg.Faults.schedule(i)}
	}
	for g := 0; g < cfg.Groups; g++ {
		grp := &group{id: g}
		for r := 0; r < cfg.Replicas; r++ {
			id := g*cfg.Replicas + r
			f.devs[id].state = devLive
			f.devs[id].group = g
			grp.members = append(grp.members, id)
		}
		f.grps = append(f.grps, grp)
	}
	for s := 0; s < cfg.Spares; s++ {
		id := cfg.Groups*cfg.Replicas + s
		f.devs[id].state = devSpare
		f.spares = append(f.spares, id)
	}
	return f, nil
}

// VolumeBytes is the logical capacity the farm exposes to tenants.
func (f *Farm) VolumeBytes() int64 { return f.totalUnits * f.unitBytes }

// UnitBytes is the stripe unit (one device super-page line).
func (f *Farm) UnitBytes() int64 { return f.unitBytes }

// Devices returns the total device count (members + spares).
func (f *Farm) Devices() int { return len(f.devs) }

// Stats returns a copy of the farm counters.
func (f *Farm) Stats() Stats { return f.stats.clone() }

// groupOf maps a global unit to its stripe group.
func (f *Farm) groupOf(u int64) int { return int(u % int64(f.cfg.Groups)) }

// devOffset maps a global unit to its byte offset inside each replica.
func (f *Farm) devOffset(u int64) int64 { return (u / int64(f.cfg.Groups)) * f.unitBytes }

// globalUnit is the inverse of (group, local) decomposition.
func (f *Farm) globalUnit(g int, local int64) int64 {
	return local*int64(f.cfg.Groups) + int64(g)
}

// writeSet is where a write to group g lands: every live member plus the
// rebuilding spare (which takes all new writes so the copy stream only has
// to cover history).
func (f *Farm) writeSet(g *group, dst []int) []int {
	dst = append(dst[:0], g.members...)
	if g.rb != nil {
		dst = append(dst, g.rb.spare)
	}
	return dst
}

// pickRead chooses the replica to serve unit u, skipping device ids in
// tried: the deterministic primary rotation over live members first, then
// — when no live member remains — the freshest kicked read-only replica
// that provably holds the unit's last write (exitSeq >= unitSeq[u]).
// Dead devices never serve. The second result is false when no replica
// can serve the unit without risking stale data: the caller counts the
// unit lost rather than silently serving an old version.
func (f *Farm) pickRead(g *group, u int64, tried []int) (int, bool) {
	if n := len(g.members); n > 0 {
		// Rotate on the group-local index: the global unit number is
		// congruent to the group id mod Groups, so it would pin one member
		// as everyone's primary.
		start := int((u / int64(f.cfg.Groups)) % int64(n))
		for i := 0; i < n; i++ {
			id := g.members[(start+i)%n]
			if !contains(tried, id) {
				return id, true
			}
		}
	}
	best, found := -1, false
	for _, d := range f.devs {
		if d.group != g.id || d.state != devReadOnly || contains(tried, d.id) {
			continue
		}
		if d.exitSeq < f.unitSeq[u] {
			continue // provably stale for this unit
		}
		if !found || d.exitSeq > f.devs[best].exitSeq {
			best, found = d.id, true
		}
	}
	return best, found
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// dropMember removes id from its group's live set.
func (g *group) dropMember(id int) {
	for i, m := range g.members {
		if m == id {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return
		}
	}
}
