package farm

import (
	"fmt"
	"strings"

	"amber/internal/sim"
	"amber/internal/workload"
)

// Event is one entry of the farm's failure timeline: kicks, failovers and
// rebuild lifecycle, in host observation order. The golden fault-storm
// test asserts the whole list byte-identical at any worker count.
type Event struct {
	Kind  string // kick-dead | kick-readonly | rebuild-start | rebuild-done | rebuild-abort
	Dev   int
	Group int
	Spare int // rebuild events: the spare involved (-1 otherwise)
	At    sim.Time
}

func (e Event) String() string {
	return fmt.Sprintf("%s dev=%d group=%d spare=%d at=%d", e.Kind, e.Dev, e.Group, e.Spare, uint64(e.At))
}

// Stats are the farm's observable counters. All of them are updated only
// in the serial host phases, so they are exact and deterministic.
type Stats struct {
	Requests     uint64 // tenant requests completed (including failed)
	FailedReads  uint64 // read sub-chains that exhausted every replica
	FailedWrites uint64 // write sub-chains with zero surviving acks
	ReadsLost    uint64 // reads refused because no fresh replica remained
	SubOps       uint64 // device operations executed (incl. retries, hedges, copies)

	Retries   uint64 // retry legs issued (reads and writes)
	Timeouts  uint64 // operations observed through the request timeout
	Hedges    uint64 // hedged read legs issued
	HedgeWins uint64 // hedges that beat the primary

	DeviceDeaths    uint64 // devices observed dead by the host
	ReadOnlyLatches uint64 // devices kicked for ftl.ErrReadOnly

	RebuildsStarted   uint64
	RebuildsCompleted uint64
	RebuildsAborted   uint64
	UnitsCopied       uint64 // rebuild copies that landed on the spare
	UnitsSkipped      uint64 // units already covered (never written / written after attach)
	UnitsDropped      uint64 // copies superseded mid-flight by a fresher tenant write
	UnitsLost         uint64 // units with no surviving fresh source

	Corruptions uint64 // VerifyReads mismatches (must stay 0)

	Events []Event // kicks + rebuild lifecycle in observation order
}

func (s *Stats) clone() Stats {
	c := *s
	c.Events = append([]Event(nil), s.Events...)
	return c
}

func (s *Stats) event(kind string, dev, group, spare int, at sim.Time) {
	s.Events = append(s.Events, Event{Kind: kind, Dev: dev, Group: group, Spare: spare, At: at})
}

// String renders every counter and the event timeline — the textual
// trajectory golden tests compare across worker counts.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d failedReads=%d failedWrites=%d readsLost=%d subOps=%d\n",
		s.Requests, s.FailedReads, s.FailedWrites, s.ReadsLost, s.SubOps)
	fmt.Fprintf(&b, "retries=%d timeouts=%d hedges=%d hedgeWins=%d\n",
		s.Retries, s.Timeouts, s.Hedges, s.HedgeWins)
	fmt.Fprintf(&b, "deaths=%d roLatches=%d corruptions=%d\n",
		s.DeviceDeaths, s.ReadOnlyLatches, s.Corruptions)
	fmt.Fprintf(&b, "rebuilds started=%d completed=%d aborted=%d copied=%d skipped=%d dropped=%d lost=%d\n",
		s.RebuildsStarted, s.RebuildsCompleted, s.RebuildsAborted,
		s.UnitsCopied, s.UnitsSkipped, s.UnitsDropped, s.UnitsLost)
	for i, e := range s.Events {
		fmt.Fprintf(&b, "event[%d]: %s\n", i, e)
	}
	return b.String()
}

// RunResult is one farm Run's outcome: the counters plus the latency
// aggregates and the rolling digest of every winning read payload (the
// value the golden test pins byte-identical across worker counts).
type RunResult struct {
	Stats      Stats
	Now        sim.Time     // farm clock at the end of the run
	LatencySum sim.Duration // sum of per-request latencies
	LatencyMax sim.Duration
	ReadDigest uint64 // FNV-1a over winner completion times and payload bytes
}

// Fingerprint renders the full observable trajectory: counters, failure
// timeline, per-device terminal state and — when the devices track data —
// a content digest of every surviving device, including the rebuilt
// spare's reconstructed payload.
func (f *Farm) Fingerprint() string {
	var b strings.Builder
	b.WriteString(f.stats.String())
	fmt.Fprintf(&b, "now=%d writeSeq=%d\n", uint64(f.now), f.writeSeq)
	for _, d := range f.devs {
		fmt.Fprintf(&b, "dev%d state=%s group=%d exitSeq=%d", d.id, d.state, d.group, d.exitSeq)
		if d.state == devDead || d.sys.DeviceDown() {
			b.WriteString(" digest=down\n")
			continue
		}
		dig, clk := f.deviceDigest(d)
		fmt.Fprintf(&b, " digest=%016x clock=%d\n", dig, uint64(clk))
	}
	return b.String()
}

const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

func fnvBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime
		v >>= 8
	}
	return h
}

// deviceDigest reads the device's whole volume unit by unit through the
// ordinary submit path and folds payload bytes (when tracked) and
// completion times into one digest. Post-run only: it advances the
// device's private clock.
func (f *Farm) deviceDigest(d *device) (uint64, sim.Time) {
	h := fnvOffset
	var buf []byte
	if f.trackData {
		buf = make([]byte, f.unitBytes)
	}
	var last sim.Time
	for off := int64(0); off+f.unitBytes <= d.sys.VolumeBytes(); off += f.unitBytes {
		done, err := d.sys.Submit(last, workload.Request{Offset: off, Length: int(f.unitBytes)}, buf)
		if err != nil {
			h = fnvBytes(h, []byte(err.Error()))
			continue
		}
		last = done
		h = fnvU64(h, uint64(done))
		if buf != nil {
			h = fnvBytes(h, buf)
		}
	}
	return h, last
}
