package farm

import (
	"fmt"

	"amber/internal/sim"
)

// FaultConfig is the seeded device-level fault schedule. Every draw is a
// pure function of (Seed, device index, fault kind) — no shared RNG state,
// no wall clock — mirroring the nand fault model's contract: the schedule
// is fixed at construction and identical at any worker count, so a fault
// storm replays byte-identically.
type FaultConfig struct {
	Seed uint64

	// DeathProb is the per-device probability of a scheduled whole-device
	// death; the death time is drawn uniformly in [DeathMin, DeathMax).
	DeathProb          float64
	DeathMin, DeathMax sim.Time

	// ReadOnlyProb schedules a device-level read-only latch (the
	// ftl.ErrReadOnly wear-out path, forced at the drawn time).
	ReadOnlyProb             float64
	ReadOnlyMin, ReadOnlyMax sim.Time

	// StormProb schedules one latency-storm window per device: requests
	// issued inside [start, start+StormLen) incur StormPenalty of extra
	// service delay.
	StormProb          float64
	StormMin, StormMax sim.Time
	StormLen           sim.Duration
	StormPenalty       sim.Duration
}

// Enabled reports whether any fault kind can fire.
func (c FaultConfig) Enabled() bool {
	return c.DeathProb > 0 || c.ReadOnlyProb > 0 || c.StormProb > 0
}

func (c FaultConfig) validate() error {
	for _, p := range []float64{c.DeathProb, c.ReadOnlyProb, c.StormProb} {
		if p < 0 || p > 1 {
			return fmt.Errorf("farm: fault probability %v outside [0,1]", p)
		}
	}
	return nil
}

// devFaults is one device's resolved schedule; zero times mean "never".
type devFaults struct {
	deadAt               sim.Time
	roAt                 sim.Time
	stormStart, stormEnd sim.Time
}

// Fault-kind separators keep the per-device draws independent streams of
// one seed (ASCII tags, same idiom as nand/fault.go).
const (
	kindDeath    uint64 = 0x6465765f64656164 // "dev_dead"
	kindReadOnly uint64 = 0x6465765f6c617463 // "dev_latc"
	kindStorm    uint64 = 0x6465765f73746f72 // "dev_stor"
)

// mix64 is the splitmix64 finalizer: a high-quality avalanche over the
// packed (seed, device, kind) key.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (c FaultConfig) draw(kind uint64, dev int) uint64 {
	return mix64(c.Seed ^ kind ^ (uint64(dev)+1)*0x9e3779b97f4a7c15)
}

func u01(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// timeIn maps a draw into [lo, hi); a degenerate window pins to lo.
func timeIn(r uint64, lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(r%uint64(hi-lo))
}

// schedule resolves device dev's fault draws. A drawn time is clamped to
// at least 1 so zero can keep meaning "never".
func (c FaultConfig) schedule(dev int) devFaults {
	var df devFaults
	if r := c.draw(kindDeath, dev); c.DeathProb > 0 && u01(r) < c.DeathProb {
		df.deadAt = timeIn(mix64(r), c.DeathMin, c.DeathMax) + 1
	}
	if r := c.draw(kindReadOnly, dev); c.ReadOnlyProb > 0 && u01(r) < c.ReadOnlyProb {
		df.roAt = timeIn(mix64(r), c.ReadOnlyMin, c.ReadOnlyMax) + 1
	}
	if r := c.draw(kindStorm, dev); c.StormProb > 0 && u01(r) < c.StormProb {
		df.stormStart = timeIn(mix64(r), c.StormMin, c.StormMax) + 1
		df.stormEnd = df.stormStart + c.StormLen
	}
	return df
}
