// Package dma implements Amber's data transfer emulation (§III-B): the
// host-side DMA engine that moves real request payloads between the host's
// system memory and the SSD's internal DRAM, driven by the pointer-list
// structure each protocol defines — PRDT for SATA, UPIU+PRDT for UFS, PRP
// lists (or SGL) for NVMe/OCSSD.
//
// The engine supports the two CPU-model behaviors the paper describes: in
// Timing mode every pointer-list entry is transferred as its own link and
// memory transaction (fine-grained arbitration, as with gem5's timing
// CPUs); in Functional mode the whole request aggregates into one transfer
// (as with AtomicSimpleCPU).
package dma

import (
	"fmt"

	"amber/internal/sim"
)

// ListKind identifies the pointer-list structure being walked.
type ListKind int

// Pointer-list kinds.
const (
	PRDT ListKind = iota + 1 // SATA physical region descriptor table
	UPIU                     // UFS transfer request PRDT
	PRP                      // NVMe physical region pages
	SGL                      // NVMe scatter-gather list
)

func (k ListKind) String() string {
	switch k {
	case PRDT:
		return "prdt"
	case UPIU:
		return "upiu"
	case PRP:
		return "prp"
	case SGL:
		return "sgl"
	default:
		return fmt.Sprintf("ListKind(%d)", int(k))
	}
}

// EntryBytes returns the descriptor size of one list entry, charged as
// link traffic when the device walks the list.
func (k ListKind) EntryBytes() int {
	switch k {
	case PRDT, UPIU:
		return 16
	case PRP:
		return 8
	case SGL:
		return 16
	default:
		return 16
	}
}

// Mode selects transfer granularity.
type Mode int

// Transfer modes.
const (
	// Timing transfers each pointer-list entry separately, arbitrating
	// memory and link per page — required under timing CPU models.
	Timing Mode = iota
	// Functional aggregates the request into a single transfer — the
	// functional (atomic) CPU behavior.
	Functional
)

func (m Mode) String() string {
	if m == Functional {
		return "functional"
	}
	return "timing"
}

// PointerList describes the system-memory pages of one request. Entries
// reference host page frames; Data optionally carries the real bytes
// (Amber's SSD emulation), sliced per entry.
type PointerList struct {
	Kind     ListKind
	PageSize int
	Length   int // total payload bytes
	Data     []byte
}

// Build constructs a pointer list for n bytes of payload over hostPageSize
// pages. data may be nil (timing-only run) or must be at least n bytes.
func Build(kind ListKind, n, hostPageSize int, data []byte) (PointerList, error) {
	if n <= 0 || hostPageSize <= 0 {
		return PointerList{}, fmt.Errorf("dma: length and page size must be positive")
	}
	if data != nil && len(data) < n {
		return PointerList{}, fmt.Errorf("dma: data shorter than length (%d < %d)", len(data), n)
	}
	return PointerList{Kind: kind, PageSize: hostPageSize, Length: n, Data: data}, nil
}

// Entries returns the number of pointer-list entries (host pages spanned).
func (pl PointerList) Entries() int {
	return (pl.Length + pl.PageSize - 1) / pl.PageSize
}

// EntrySlice returns the payload bytes of entry i, or nil when no data is
// attached.
func (pl PointerList) EntrySlice(i int) []byte {
	if pl.Data == nil {
		return nil
	}
	lo := i * pl.PageSize
	hi := lo + pl.PageSize
	if hi > pl.Length {
		hi = pl.Length
	}
	if lo >= hi {
		return nil
	}
	return pl.Data[lo:hi]
}

// Stats aggregates DMA engine activity.
type Stats struct {
	Transfers       uint64 // page-granularity transfers
	BytesMoved      uint64
	ListWalks       uint64
	DescriptorBytes uint64
}

// Engine is the DMA engine: it owns the link resource (shared with command
// traffic) and charges host-memory bandwidth per transfer.
type Engine struct {
	link      *sim.Resource
	linkBW    float64 // bytes/second
	hostMem   *sim.Resource
	hostMemBW float64
	mode      Mode
	hostCopy  bool // h-type: stage through host controller buffer (second copy)
	stats     Stats
}

// Config parameterizes an Engine.
type Config struct {
	Link               *sim.Resource
	LinkBytesPerSec    float64
	HostMem            *sim.Resource
	HostMemBytesPerSec float64
	Mode               Mode
	// HostControllerCopy enables the h-type double copy: the host
	// controller first copies pages from system memory into its own buffer
	// before the link transfer (§II-A).
	HostControllerCopy bool
}

// New constructs an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Link == nil || cfg.HostMem == nil {
		return nil, fmt.Errorf("dma: link and host memory resources are required")
	}
	if cfg.LinkBytesPerSec <= 0 || cfg.HostMemBytesPerSec <= 0 {
		return nil, fmt.Errorf("dma: bandwidths must be positive")
	}
	return &Engine{
		link:      cfg.Link,
		linkBW:    cfg.LinkBytesPerSec,
		hostMem:   cfg.HostMem,
		hostMemBW: cfg.HostMemBytesPerSec,
		mode:      cfg.Mode,
		hostCopy:  cfg.HostControllerCopy,
	}, nil
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Mode returns the transfer granularity mode.
func (e *Engine) Mode() Mode { return e.mode }

// WalkList charges the device-side fetch of the pointer list itself
// (descriptor traffic over the link) and returns its completion.
func (e *Engine) WalkList(now sim.Time, pl PointerList) sim.Time {
	bytes := int64(pl.Entries() * pl.Kind.EntryBytes())
	_, done := e.link.Claim(now, sim.TransferTime(bytes, e.linkBW))
	e.stats.ListWalks++
	e.stats.DescriptorBytes += uint64(bytes)
	return done
}

// Transfer moves the payload described by pl between host memory and the
// device, starting at now, and returns completion. toDevice is true for
// writes (host -> SSD). The per-entry loop claims host memory and the link
// for each page in Timing mode; Functional mode performs one aggregate
// claim.
func (e *Engine) Transfer(now sim.Time, pl PointerList, toDevice bool) sim.Time {
	if pl.Length <= 0 {
		return now
	}
	move := func(start sim.Time, n int) sim.Time {
		// Host memory access (read for writes, write for reads).
		memTime := sim.TransferTime(int64(n), e.hostMemBW)
		_, memDone := e.hostMem.Claim(start, memTime)
		if e.hostCopy {
			// h-type double copy: host controller stages the page in its
			// buffer — a second pass over host memory.
			_, memDone = e.hostMem.Claim(memDone, memTime)
		}
		// Link transfer; direction does not change occupancy.
		_, linkDone := e.link.Claim(memDone, sim.TransferTime(int64(n), e.linkBW))
		if !toDevice {
			// Reads land in host memory after the link: claim is already
			// modeled above for simplicity of arbitration; order differs
			// but occupancy is identical.
			_ = linkDone
		}
		e.stats.Transfers++
		e.stats.BytesMoved += uint64(n)
		return linkDone
	}

	if e.mode == Functional {
		return move(now, pl.Length)
	}
	done := now
	entries := pl.Entries()
	for i := 0; i < entries; i++ {
		n := pl.PageSize
		if (i+1)*pl.PageSize > pl.Length {
			n = pl.Length - i*pl.PageSize
		}
		// Entries pipeline: each starts as soon as the engine can issue it;
		// the shared resources serialize where physics requires.
		if t := move(now, n); t > done {
			done = t
		}
	}
	return done
}
