// Package dma implements Amber's data transfer emulation (§III-B): the
// host-side DMA engine that moves real request payloads between the host's
// system memory and the SSD's internal DRAM, driven by the pointer-list
// structure each protocol defines — PRDT for SATA, UPIU+PRDT for UFS, PRP
// lists (or SGL) for NVMe/OCSSD.
//
// The engine supports the two CPU-model behaviors the paper describes: in
// Timing mode every descriptor batch is transferred as its own link and
// memory transaction (fine-grained arbitration, as with gem5's timing
// CPUs); in Functional mode the whole request aggregates into one transfer
// (as with AtomicSimpleCPU).
//
// Real controllers do not arbitrate per host page: adjacent pointer-list
// entries that are physically contiguous (and move in the same direction)
// coalesce into one DMA descriptor per arbitration round. Timing mode
// models that by batching contiguous runs (PointerList.Contig or
// consecutive PointerList.Frames) into single link/memory claims, which
// also collapses the event count large blocks generate. Lists with
// unknown physical layout keep the historical per-entry arbitration
// exactly.
package dma

import (
	"fmt"

	"amber/internal/sim"
)

// Domain names the scheduling domain (sim.Engine shard) that orders
// payload-transfer stage boundaries: events whose time was produced by a
// DMA Transfer completion.
const Domain = "dma"

// ListKind identifies the pointer-list structure being walked.
type ListKind int

// Pointer-list kinds.
const (
	PRDT ListKind = iota + 1 // SATA physical region descriptor table
	UPIU                     // UFS transfer request PRDT
	PRP                      // NVMe physical region pages
	SGL                      // NVMe scatter-gather list
)

func (k ListKind) String() string {
	switch k {
	case PRDT:
		return "prdt"
	case UPIU:
		return "upiu"
	case PRP:
		return "prp"
	case SGL:
		return "sgl"
	default:
		return fmt.Sprintf("ListKind(%d)", int(k))
	}
}

// EntryBytes returns the descriptor size of one list entry, charged as
// link traffic when the device walks the list.
func (k ListKind) EntryBytes() int {
	switch k {
	case PRDT, UPIU:
		return 16
	case PRP:
		return 8
	case SGL:
		return 16
	default:
		return 16
	}
}

// Mode selects transfer granularity.
type Mode int

// Transfer modes.
const (
	// Timing transfers each pointer-list entry separately, arbitrating
	// memory and link per page — required under timing CPU models.
	Timing Mode = iota
	// Functional aggregates the request into a single transfer — the
	// functional (atomic) CPU behavior.
	Functional
)

func (m Mode) String() string {
	if m == Functional {
		return "functional"
	}
	return "timing"
}

// PointerList describes the system-memory pages of one request. Entries
// reference host page frames; Data optionally carries the real bytes
// (Amber's SSD emulation), sliced per entry.
//
// Physical layout: Contig marks every referenced page physically
// contiguous (one run of frames); Frames optionally gives the explicit
// per-entry frame numbers of a scattered buffer. When neither is set the
// layout is unknown and the engine conservatively treats every entry as
// its own physical extent, which preserves the historical per-entry
// Timing-mode arbitration exactly.
type PointerList struct {
	Kind     ListKind
	PageSize int
	Length   int // total payload bytes
	Data     []byte
	Contig   bool
	Frames   []int64 // host frame number per entry; nil = unknown layout
}

// Build constructs a pointer list for n bytes of payload over hostPageSize
// pages. data may be nil (timing-only run) or must be at least n bytes.
// The physical layout is left unknown (no descriptor batching).
func Build(kind ListKind, n, hostPageSize int, data []byte) (PointerList, error) {
	if n <= 0 || hostPageSize <= 0 {
		return PointerList{}, fmt.Errorf("dma: length and page size must be positive")
	}
	if data != nil && len(data) < n {
		return PointerList{}, fmt.Errorf("dma: data shorter than length (%d < %d)", len(data), n)
	}
	return PointerList{Kind: kind, PageSize: hostPageSize, Length: n, Data: data}, nil
}

// BuildContiguous is Build for a payload whose host pages are physically
// contiguous (a hugepage-backed or freshly allocated pinned buffer):
// Timing-mode transfers may coalesce adjacent entries into descriptor
// batches.
func BuildContiguous(kind ListKind, n, hostPageSize int, data []byte) (PointerList, error) {
	pl, err := Build(kind, n, hostPageSize, data)
	if err != nil {
		return PointerList{}, err
	}
	pl.Contig = true
	return pl, nil
}

// BuildFrames is Build with an explicit physical frame number per entry;
// runs of consecutive frames may coalesce into descriptor batches.
func BuildFrames(kind ListKind, n, hostPageSize int, data []byte, frames []int64) (PointerList, error) {
	pl, err := Build(kind, n, hostPageSize, data)
	if err != nil {
		return PointerList{}, err
	}
	if len(frames) < pl.Entries() {
		return PointerList{}, fmt.Errorf("dma: %d frames for %d entries", len(frames), pl.Entries())
	}
	pl.Frames = frames
	return pl, nil
}

// contiguousWith reports whether entry i+1 is the physical successor of
// entry i, i.e. the two can share a descriptor batch.
func (pl PointerList) contiguousWith(i int) bool {
	if pl.Contig {
		return true
	}
	return pl.Frames != nil && pl.Frames[i+1] == pl.Frames[i]+1
}

// Entries returns the number of pointer-list entries (host pages spanned).
func (pl PointerList) Entries() int {
	return (pl.Length + pl.PageSize - 1) / pl.PageSize
}

// EntrySlice returns the payload bytes of entry i, or nil when no data is
// attached.
func (pl PointerList) EntrySlice(i int) []byte {
	if pl.Data == nil {
		return nil
	}
	lo := i * pl.PageSize
	hi := lo + pl.PageSize
	if hi > pl.Length {
		hi = pl.Length
	}
	if lo >= hi {
		return nil
	}
	return pl.Data[lo:hi]
}

// Stats aggregates DMA engine activity. Descriptors counts modeled
// arbitration rounds (one link + memory claim each, post-batching) while
// Entries counts pointer-list entries walked (pre-batching); the two
// differ exactly by how much Timing-mode coalescing collapsed contiguous
// runs, and Functional mode always aggregates a request into one
// descriptor.
type Stats struct {
	Descriptors     uint64 // arbitration rounds: one link+memory claim each
	Entries         uint64 // pointer-list entries covered by those rounds
	BytesMoved      uint64
	ListWalks       uint64
	DescriptorBytes uint64
}

// Engine is the DMA engine: it owns the link resource (shared with command
// traffic) and charges host-memory bandwidth per transfer.
type Engine struct {
	link      *sim.Resource
	linkBW    float64 // bytes/second
	hostMem   *sim.Resource
	hostMemBW float64
	mode      Mode
	hostCopy  bool // h-type: stage through host controller buffer (second copy)
	maxBatch  int  // max entries per descriptor batch, 0 = unlimited
	stats     Stats
}

// Config parameterizes an Engine.
type Config struct {
	Link               *sim.Resource
	LinkBytesPerSec    float64
	HostMem            *sim.Resource
	HostMemBytesPerSec float64
	Mode               Mode
	// HostControllerCopy enables the h-type double copy: the host
	// controller first copies pages from system memory into its own buffer
	// before the link transfer (§II-A).
	HostControllerCopy bool
	// MaxBatchEntries caps how many physically contiguous pointer-list
	// entries one Timing-mode descriptor batch may cover (the controller's
	// maximum burst). Zero means unlimited.
	MaxBatchEntries int
}

// New constructs an Engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Link == nil || cfg.HostMem == nil {
		return nil, fmt.Errorf("dma: link and host memory resources are required")
	}
	if cfg.LinkBytesPerSec <= 0 || cfg.HostMemBytesPerSec <= 0 {
		return nil, fmt.Errorf("dma: bandwidths must be positive")
	}
	if cfg.MaxBatchEntries < 0 {
		return nil, fmt.Errorf("dma: MaxBatchEntries must be non-negative")
	}
	return &Engine{
		link:      cfg.Link,
		linkBW:    cfg.LinkBytesPerSec,
		hostMem:   cfg.HostMem,
		hostMemBW: cfg.HostMemBytesPerSec,
		mode:      cfg.Mode,
		hostCopy:  cfg.HostControllerCopy,
		maxBatch:  cfg.MaxBatchEntries,
	}, nil
}

// Stats returns a copy of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Mode returns the transfer granularity mode.
func (e *Engine) Mode() Mode { return e.mode }

// WalkList charges the device-side fetch of the pointer list itself
// (descriptor traffic over the link) and returns its completion.
func (e *Engine) WalkList(now sim.Time, pl PointerList) sim.Time {
	bytes := int64(pl.Entries() * pl.Kind.EntryBytes())
	_, done := e.link.Claim(now, sim.TransferTime(bytes, e.linkBW))
	e.stats.ListWalks++
	e.stats.DescriptorBytes += uint64(bytes)
	return done
}

// Transfer moves the payload described by pl between host memory and the
// device, starting at now, and returns completion. toDevice is true for
// writes (host -> SSD). In Timing mode every descriptor batch claims host
// memory and the link once; a batch is a run of physically contiguous
// entries of the same direction (the whole call shares one direction), so
// a list with unknown layout degenerates to the per-entry arbitration of
// fine-grained timing CPUs. Functional mode performs one aggregate claim.
func (e *Engine) Transfer(now sim.Time, pl PointerList, toDevice bool) sim.Time {
	if pl.Length <= 0 {
		return now
	}
	move := func(start sim.Time, n, entries int) sim.Time {
		// Host memory access (read for writes, write for reads).
		memTime := sim.TransferTime(int64(n), e.hostMemBW)
		_, memDone := e.hostMem.Claim(start, memTime)
		if e.hostCopy {
			// h-type double copy: host controller stages the batch in its
			// buffer — a second pass over host memory.
			_, memDone = e.hostMem.Claim(memDone, memTime)
		}
		// Link transfer; direction does not change occupancy.
		_, linkDone := e.link.Claim(memDone, sim.TransferTime(int64(n), e.linkBW))
		if !toDevice {
			// Reads land in host memory after the link: claim is already
			// modeled above for simplicity of arbitration; order differs
			// but occupancy is identical.
			_ = linkDone
		}
		e.stats.Descriptors++
		e.stats.Entries += uint64(entries)
		e.stats.BytesMoved += uint64(n)
		return linkDone
	}

	entries := pl.Entries()
	if e.mode == Functional {
		return move(now, pl.Length, entries)
	}
	done := now
	for i := 0; i < entries; {
		// Coalesce a run of physically contiguous entries into one
		// descriptor batch, bounded by the controller's burst limit.
		j := i + 1
		for j < entries && pl.contiguousWith(j-1) && (e.maxBatch == 0 || j-i < e.maxBatch) {
			j++
		}
		n := j * pl.PageSize
		if n > pl.Length {
			n = pl.Length
		}
		n -= i * pl.PageSize
		// Batches pipeline: each starts as soon as the engine can issue it;
		// the shared resources serialize where physics requires.
		if t := move(now, n, j-i); t > done {
			done = t
		}
		i = j
	}
	return done
}
