package dma

import (
	"testing"

	"amber/internal/sim"
)

func newEngine(t *testing.T, mode Mode, hostCopy bool) *Engine {
	t.Helper()
	e, err := New(Config{
		Link:               sim.NewResource("link"),
		LinkBytesPerSec:    3.2e9,
		HostMem:            sim.NewResource("hostmem"),
		HostMemBytesPerSec: 12.8e9,
		Mode:               mode,
		HostControllerCopy: hostCopy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(PRP, 0, 4096, nil); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := Build(PRP, 4096, 0, nil); err == nil {
		t.Fatal("zero page size accepted")
	}
	if _, err := Build(PRP, 4096, 4096, make([]byte, 100)); err == nil {
		t.Fatal("short data accepted")
	}
	pl, err := Build(PRP, 4096, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Entries() != 1 {
		t.Fatalf("Entries = %d", pl.Entries())
	}
}

func TestEntriesAndSlices(t *testing.T) {
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i)
	}
	pl, err := Build(PRP, 10000, 4096, data)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Entries() != 3 {
		t.Fatalf("Entries = %d, want 3", pl.Entries())
	}
	if got := pl.EntrySlice(0); len(got) != 4096 || got[0] != 0 {
		t.Fatalf("entry 0 = %d bytes", len(got))
	}
	if got := pl.EntrySlice(2); len(got) != 10000-8192 {
		t.Fatalf("entry 2 = %d bytes", len(got))
	}
	plNil, _ := Build(PRP, 10000, 4096, nil)
	if plNil.EntrySlice(0) != nil {
		t.Fatal("nil data should give nil slices")
	}
}

func TestListKindDescriptors(t *testing.T) {
	if PRP.EntryBytes() != 8 || PRDT.EntryBytes() != 16 || SGL.EntryBytes() != 16 {
		t.Fatal("descriptor sizes wrong")
	}
	if PRP.String() != "prp" || PRDT.String() != "prdt" || UPIU.String() != "upiu" || SGL.String() != "sgl" {
		t.Fatal("kind names wrong")
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	e := newEngine(t, Timing, false)
	pl4k, _ := Build(PRP, 4096, 4096, nil)
	d1 := e.Transfer(0, pl4k, true)
	e2 := newEngine(t, Timing, false)
	pl64k, _ := Build(PRP, 65536, 4096, nil)
	d2 := e2.Transfer(0, pl64k, true)
	if d2 <= d1 {
		t.Fatalf("64K (%v) should take longer than 4K (%v)", d2, d1)
	}
	if e2.Stats().Descriptors != 16 || e2.Stats().Entries != 16 {
		t.Fatalf("Descriptors/Entries = %d/%d, want 16/16 (unknown layout must not batch)",
			e2.Stats().Descriptors, e2.Stats().Entries)
	}
	if e2.Stats().BytesMoved != 65536 {
		t.Fatalf("BytesMoved = %d", e2.Stats().BytesMoved)
	}
}

func TestFunctionalAggregates(t *testing.T) {
	e := newEngine(t, Functional, false)
	pl, _ := Build(PRP, 65536, 4096, nil)
	e.Transfer(0, pl, true)
	if e.Stats().Descriptors != 1 {
		t.Fatalf("functional mode made %d descriptors", e.Stats().Descriptors)
	}
	if e.Stats().Entries != 16 {
		t.Fatalf("functional mode walked %d entries, want 16", e.Stats().Entries)
	}
}

// TestContiguousBatching locks in the descriptor-batching contract: a
// physically contiguous Timing-mode list claims link/memory once for the
// whole run, while stats keep the pre-batching entry count.
func TestContiguousBatching(t *testing.T) {
	link := sim.NewResource("link")
	e, err := New(Config{
		Link: link, LinkBytesPerSec: 3.2e9,
		HostMem: sim.NewResource("m"), HostMemBytesPerSec: 12.8e9,
		Mode: Timing,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildContiguous(PRP, 65536, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Transfer(0, pl, true)
	st := e.Stats()
	if st.Descriptors != 1 || st.Entries != 16 {
		t.Fatalf("Descriptors/Entries = %d/%d, want 1/16", st.Descriptors, st.Entries)
	}
	if st.BytesMoved != 65536 {
		t.Fatalf("BytesMoved = %d", st.BytesMoved)
	}
	if link.Claims() != 1 {
		t.Fatalf("link claimed %d times, want 1", link.Claims())
	}
}

// TestFramesBatchingSplitsAtGaps: consecutive frames coalesce, a gap
// starts a new descriptor batch.
func TestFramesBatchingSplitsAtGaps(t *testing.T) {
	e := newEngine(t, Timing, false)
	// 4 entries: frames 10,11 contiguous; 20 breaks; 21 continues.
	pl, err := BuildFrames(PRP, 4*4096, 4096, nil, []int64{10, 11, 20, 21})
	if err != nil {
		t.Fatal(err)
	}
	e.Transfer(0, pl, true)
	st := e.Stats()
	if st.Descriptors != 2 || st.Entries != 4 {
		t.Fatalf("Descriptors/Entries = %d/%d, want 2/4", st.Descriptors, st.Entries)
	}
}

// TestMaxBatchEntriesCapsRuns: the controller burst limit splits an
// otherwise fully contiguous run.
func TestMaxBatchEntriesCapsRuns(t *testing.T) {
	e, err := New(Config{
		Link: sim.NewResource("link"), LinkBytesPerSec: 3.2e9,
		HostMem: sim.NewResource("m"), HostMemBytesPerSec: 12.8e9,
		Mode: Timing, MaxBatchEntries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := BuildContiguous(PRP, 65536, 4096, nil) // 16 entries
	e.Transfer(0, pl, true)
	if st := e.Stats(); st.Descriptors != 4 || st.Entries != 16 {
		t.Fatalf("Descriptors/Entries = %d/%d, want 4/16", st.Descriptors, st.Entries)
	}
}

// TestBuildFramesValidation rejects frame slices shorter than the list.
func TestBuildFramesValidation(t *testing.T) {
	if _, err := BuildFrames(PRP, 4*4096, 4096, nil, []int64{1, 2}); err == nil {
		t.Fatal("short frame slice accepted")
	}
}

// TestNonContiguousTimingUnchanged: an unknown-layout list must produce
// exactly the same claim sequence (and therefore the same completion time)
// as the historical per-entry loop.
func TestNonContiguousTimingUnchanged(t *testing.T) {
	plain := newEngine(t, Timing, false)
	pl, _ := Build(PRP, 65536, 4096, nil)
	got := plain.Transfer(0, pl, true)

	// Reference: replay the per-entry arbitration by hand.
	link := sim.NewResource("link")
	mem := sim.NewResource("m")
	want := sim.Time(0)
	for i := 0; i < 16; i++ {
		_, memDone := mem.Claim(0, sim.TransferTime(4096, 12.8e9))
		_, linkDone := link.Claim(memDone, sim.TransferTime(4096, 3.2e9))
		if linkDone > want {
			want = linkDone
		}
	}
	if got != want {
		t.Fatalf("unknown-layout Timing transfer changed: got %v, want %v", got, want)
	}
}

func TestHostControllerCopyCostsMore(t *testing.T) {
	plain := newEngine(t, Timing, false)
	copied := newEngine(t, Timing, true)
	pl, _ := Build(PRDT, 65536, 4096, nil)
	d1 := plain.Transfer(0, pl, true)
	d2 := copied.Transfer(0, pl, true)
	if d2 <= d1 {
		t.Fatalf("h-type double copy (%v) should exceed direct DMA (%v)", d2, d1)
	}
}

func TestWalkListChargesDescriptors(t *testing.T) {
	e := newEngine(t, Timing, false)
	pl, _ := Build(PRP, 65536, 4096, nil) // 16 entries x 8 bytes
	done := e.WalkList(0, pl)
	if done == 0 {
		t.Fatal("walk took no time")
	}
	if e.Stats().DescriptorBytes != 128 {
		t.Fatalf("DescriptorBytes = %d", e.Stats().DescriptorBytes)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	link := sim.NewResource("link")
	mk := func() *Engine {
		e, err := New(Config{
			Link: link, LinkBytesPerSec: 1e9,
			HostMem: sim.NewResource("m"), HostMemBytesPerSec: 100e9,
			Mode: Functional,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk(), mk()
	pl, _ := Build(PRP, 1<<20, 4096, nil)
	d1 := a.Transfer(0, pl, true)
	d2 := b.Transfer(0, pl, false)
	if d2 < d1 {
		t.Fatalf("shared link should serialize: %v then %v", d1, d2)
	}
}

func TestZeroLengthTransferFree(t *testing.T) {
	e := newEngine(t, Timing, false)
	if done := e.Transfer(42, PointerList{PageSize: 4096}, true); done != 42 {
		t.Fatalf("zero transfer advanced time to %v", done)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Link: sim.NewResource("l"), HostMem: sim.NewResource("m")}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}
