package dma

import "amber/internal/snap"

// EncodeState serializes the engine's counters. The link and host-memory
// resources are owned by the system assembly and serialized there.
func (e *Engine) EncodeState(enc *snap.Enc) {
	enc.U64(e.stats.Descriptors)
	enc.U64(e.stats.Entries)
	enc.U64(e.stats.BytesMoved)
	enc.U64(e.stats.ListWalks)
	enc.U64(e.stats.DescriptorBytes)
}

// DecodeState reinstalls a state captured by EncodeState.
func (e *Engine) DecodeState(d *snap.Dec) error {
	e.stats.Descriptors = d.U64()
	e.stats.Entries = d.U64()
	e.stats.BytesMoved = d.U64()
	e.stats.ListWalks = d.U64()
	e.stats.DescriptorBytes = d.U64()
	return d.Err()
}
