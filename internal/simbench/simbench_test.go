package simbench

import (
	"bytes"
	"testing"
)

// TestHotLoopAllocFree asserts the harness's core property: after warmup
// the schedule/cancel/step churn performs zero allocations per op, at every
// domain count the benchmarks run with.
func TestHotLoopAllocFree(t *testing.T) {
	for _, domains := range []int{1, 4, HotLoopDomains} {
		h := NewHotLoop(domains)
		for i := 0; i < 5000; i++ { // reach the steady pool size
			h.Op()
		}
		if allocs := testing.AllocsPerRun(200, h.Op); allocs != 0 {
			t.Errorf("domains=%d: %v allocs/op, want 0", domains, allocs)
		}
		h.Drain()
	}
}

// TestHotLoopStableEventCounts asserts the churn schedule is domain-count
// invariant: the same op sequence dispatches exactly the same number of
// events whether the population lives in one global heap or is spread over
// the device's shards, and drains to an empty engine either way.
func TestHotLoopStableEventCounts(t *testing.T) {
	const ops = 20000
	var want uint64
	for i, domains := range []int{1, 2, 4, HotLoopDomains} {
		h := NewHotLoop(domains)
		for j := 0; j < ops; j++ {
			h.Op()
		}
		h.Drain()
		if h.Pending() != 0 {
			t.Fatalf("domains=%d: %d events left after drain", domains, h.Pending())
		}
		got := h.Dispatched()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("domains=%d dispatched %d events, want %d (domain count must not change semantics)", domains, got, want)
		}
	}
	if want == 0 {
		t.Fatal("degenerate run: nothing dispatched")
	}
}

// TestIntraLoopEquivalence locks the harness to the engine's horizon
// contract: serial dispatch, the horizon loop on one worker and the horizon
// loop over several workers must produce identical per-channel counts,
// payload bytes and dispatch totals.
func TestIntraLoopEquivalence(t *testing.T) {
	const channels, perChannel, rounds = 8, 16, 25

	serial := NewIntraLoop(channels, perChannel, rounds)
	serial.Run(0)

	parallel := NewIntraLoop(channels, perChannel, rounds)
	st := parallel.Run(4)

	if serial.Dispatched() != parallel.Dispatched() {
		t.Fatalf("dispatched %d (serial) != %d (parallel)", serial.Dispatched(), parallel.Dispatched())
	}
	for ch := 0; ch < channels; ch++ {
		if serial.ChannelCounts()[ch] != parallel.ChannelCounts()[ch] {
			t.Fatalf("ch%d count %d != %d", ch, serial.ChannelCounts()[ch], parallel.ChannelCounts()[ch])
		}
		if serial.ChannelCounts()[ch] != uint64(perChannel*rounds) {
			t.Fatalf("ch%d count %d, want %d", ch, serial.ChannelCounts()[ch], perChannel*rounds)
		}
		if !bytes.Equal(serial.Pages()[ch], parallel.Pages()[ch]) {
			t.Fatalf("ch%d payload bytes diverged", ch)
		}
	}
	if st.Horizons == 0 || st.LocalEvents != uint64(channels*perChannel*rounds) {
		t.Fatalf("horizon stats %+v, want %d local events", st, channels*perChannel*rounds)
	}
}

// TestIntraLoopNeutralBatching verifies the horizon-batching harness: every
// interleaved channel-neutral cross event dispatches through the batched
// fast path (it always has local work pending), the barrier count stays at
// one window per horizon, and the results match the serial dispatch.
func TestIntraLoopNeutralBatching(t *testing.T) {
	const channels, perChannel, neutralPer, rounds = 8, 16, 8, 25

	serial := NewIntraLoopNeutral(channels, perChannel, neutralPer, rounds)
	serial.Run(0)

	parallel := NewIntraLoopNeutral(channels, perChannel, neutralPer, rounds)
	st := parallel.Run(4)

	if serial.Dispatched() != parallel.Dispatched() {
		t.Fatalf("dispatched %d (serial) != %d (parallel)", serial.Dispatched(), parallel.Dispatched())
	}
	if got, want := parallel.NeutralEvents(), uint64(neutralPer*rounds); got != want {
		t.Fatalf("neutral events %d, want %d", got, want)
	}
	for ch := 0; ch < channels; ch++ {
		if !bytes.Equal(serial.Pages()[ch], parallel.Pages()[ch]) {
			t.Fatalf("ch%d payload bytes diverged", ch)
		}
	}
	if got, want := st.BatchedCross, uint64(neutralPer*rounds); got != want {
		t.Fatalf("BatchedCross = %d, want %d (every neutral event interleaves with pending local work)", got, want)
	}
	if st.BarriersWithoutBatching()-st.Barriers() != st.BatchedCross {
		t.Fatalf("barrier accounting inconsistent: %+v", st)
	}
}
