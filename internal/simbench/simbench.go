// Package simbench is the shared harness for the engine hot-loop
// microbenchmark: schedule/cancel/step churn at a fixed queue depth with
// the event population spread over a configurable number of scheduling
// domains. The root BenchmarkEngineHotLoop and the amberbench -json
// engine_hot_loop section both drive this one loop, so the CI bench smoke
// and the per-commit BENCH artifact always measure the same thing.
package simbench

import (
	"fmt"

	"amber/internal/sim"
)

// QueueDepth is the steady event population the hot loop churns at.
const QueueDepth = 4096

// HotLoopDomains is the sharded variant's domain count: the Intel 750
// preset's 12 NAND channels plus the host/cpu/icl.dram/dma shards
// (16 with the default shard).
const HotLoopDomains = 16

// HotLoop is one prepared churn run over a fresh engine.
type HotLoop struct {
	e    *sim.Engine
	doms []sim.DomainID
	fn   func()
	i    int
}

// NewHotLoop builds an engine with the given number of domains (1 = the
// single global heap) and fills it to QueueDepth pending events.
func NewHotLoop(domains int) *HotLoop {
	h := &HotLoop{e: sim.NewEngine(), fn: func() {}}
	h.doms = make([]sim.DomainID, domains)
	h.doms[0] = sim.DefaultDomain
	for i := 1; i < domains; i++ {
		h.doms[i] = h.e.Domain(fmt.Sprintf("shard%d", i))
	}
	for i := 0; i < QueueDepth; i++ {
		h.e.ScheduleIn(h.doms[i%domains], sim.Duration(i%977), h.fn)
	}
	return h
}

// Op runs one churn iteration: a schedule, every seventh time a cancel
// plus a replacement schedule, and one dispatch — queue depth stays at
// QueueDepth.
func (h *HotLoop) Op() {
	dom := h.doms[h.i%len(h.doms)]
	ev := h.e.ScheduleIn(dom, sim.Duration(500+h.i%977), h.fn)
	if h.i%7 == 0 {
		h.e.Cancel(ev)
		h.e.ScheduleIn(dom, sim.Duration(600+h.i%199), h.fn)
	}
	h.e.Step()
	h.i++
}

// Drain dispatches the remaining population.
func (h *HotLoop) Drain() { h.e.Run() }
