// Package simbench is the shared harness for the engine hot-loop
// microbenchmark: schedule/cancel/step churn at a fixed queue depth with
// the event population spread over a configurable number of scheduling
// domains. The root BenchmarkEngineHotLoop and the amberbench -json
// engine_hot_loop section both drive this one loop, so the CI bench smoke
// and the per-commit BENCH artifact always measure the same thing.
package simbench

import (
	"fmt"

	"amber/internal/sim"
)

// QueueDepth is the steady event population the hot loop churns at.
const QueueDepth = 4096

// HotLoopDomains is the sharded variant's domain count: the Intel 750
// preset's 12 NAND channels plus the host/cpu/icl.dram/dma shards
// (16 with the default shard).
const HotLoopDomains = 16

// HotLoop is one prepared churn run over a fresh engine.
type HotLoop struct {
	e    *sim.Engine
	doms []sim.DomainID
	fn   func()
	i    int
}

// NewHotLoop builds an engine with the given number of domains (1 = the
// single global heap) and fills it to QueueDepth pending events.
func NewHotLoop(domains int) *HotLoop {
	h := &HotLoop{e: sim.NewEngine(), fn: func() {}}
	h.doms = make([]sim.DomainID, domains)
	h.doms[0] = sim.DefaultDomain
	for i := 1; i < domains; i++ {
		h.doms[i] = h.e.Domain(fmt.Sprintf("shard%d", i))
	}
	for i := 0; i < QueueDepth; i++ {
		h.e.ScheduleIn(h.doms[i%domains], sim.Duration(i%977), h.fn)
	}
	return h
}

// Op runs one churn iteration: a schedule, every seventh time a cancel
// plus a replacement schedule, and one dispatch — queue depth stays at
// QueueDepth.
func (h *HotLoop) Op() {
	dom := h.doms[h.i%len(h.doms)]
	ev := h.e.ScheduleIn(dom, sim.Duration(500+h.i%977), h.fn)
	if h.i%7 == 0 {
		h.e.Cancel(ev)
		h.e.ScheduleIn(dom, sim.Duration(600+h.i%199), h.fn)
	}
	h.e.Step()
	h.i++
}

// Drain dispatches the remaining population.
func (h *HotLoop) Drain() { h.e.Run() }

// Dispatched returns the engine's lifetime dispatch count: with the same
// churn schedule it must be identical at every domain count (the sharding
// is an ordering structure, not a semantic one).
func (h *HotLoop) Dispatched() uint64 { return h.e.Dispatched() }

// Pending returns the currently queued event count.
func (h *HotLoop) Pending() int { return h.e.Pending() }

// IntraLoop is the intra-device parallelism harness: one cross-domain
// pacing event per synchronization horizon plus bursts of domain-local
// events across the channel shards, each carrying a page-sized payload copy
// — the shape of a multi-channel device's deferred flash bookkeeping under
// horizon-synchronized dispatch (sim.Engine.RunParallel). The root
// BenchmarkIntraParallel and the amberbench -json intra_parallel section
// both drive this loop.
type IntraLoop struct {
	e       *sim.Engine
	locals  []sim.DomainID
	cross   sim.DomainID
	neutral sim.DomainID // channel-neutral cross shard (horizon batching)

	src, dst [][]byte // per-channel payload pages
	counts   []uint64 // per-channel dispatched local events

	perChannel int
	neutralPer int // channel-neutral events interleaved per horizon
	rounds     int
	round      int

	localFns  []func() // per-channel local event bodies, bound once
	crossFn   func()
	neutralFn func()
	neutrals  uint64 // dispatched neutral events
}

// IntraPageBytes is the payload each local event copies: one 4 KiB flash
// page, the unit the real deferred read completions move when data
// tracking is on.
const IntraPageBytes = 4096

// NewIntraLoop builds the harness: `channels` domain-local shards that each
// receive `perChannel` copy events between consecutive horizons, for
// `rounds` horizons.
func NewIntraLoop(channels, perChannel, rounds int) *IntraLoop {
	return NewIntraLoopNeutral(channels, perChannel, 0, rounds)
}

// NewIntraLoopNeutral is NewIntraLoop with `neutralPer` channel-neutral
// cross events additionally interleaved between each horizon's local
// bursts — the shape of a request stream whose host/CPU/DMA stage
// boundaries commute with the channels' deferred flash bookkeeping. Under
// RunParallel, each neutral event dispatches through the horizon-batching
// fast path (no barrier) while the un-batched loop would have drained and
// synchronized before every one.
func NewIntraLoopNeutral(channels, perChannel, neutralPer, rounds int) *IntraLoop {
	l := &IntraLoop{
		e:          sim.NewEngine(),
		perChannel: perChannel,
		neutralPer: neutralPer,
		rounds:     rounds,
	}
	l.cross = l.e.Domain("cross")
	l.neutral = l.e.Domain("cross.neutral")
	l.e.MarkChannelNeutral(l.neutral)
	l.neutralFn = func() { l.neutrals++ }
	l.counts = make([]uint64, channels)
	for ch := 0; ch < channels; ch++ {
		ch := ch
		dom := l.e.Domain(fmt.Sprintf("ch%d", ch))
		l.e.MarkDomainLocal(dom)
		l.locals = append(l.locals, dom)
		src := make([]byte, IntraPageBytes)
		for i := range src {
			src[i] = byte(ch + i)
		}
		l.src = append(l.src, src)
		l.dst = append(l.dst, make([]byte, IntraPageBytes))
		l.localFns = append(l.localFns, func() {
			copy(l.dst[ch], l.src[ch])
			l.counts[ch]++
		})
	}
	l.crossFn = l.pace
	return l
}

// pace is the cross-domain horizon driver: it fills every channel's window
// with copy events, then schedules the next horizon.
func (l *IntraLoop) pace() {
	if l.round >= l.rounds {
		return
	}
	l.round++
	const period = sim.Duration(1000 * 1000) // 1 us of simulated time per horizon
	step := period / sim.Duration(l.perChannel+1)
	for i := 0; i < l.perChannel; i++ {
		at := sim.Duration(i+1) * step
		for ch := range l.locals {
			l.e.ScheduleIn(l.locals[ch], at, l.localFns[ch])
		}
	}
	// Channel-neutral cross events land strictly between local events
	// (half-step offsets), so each one finds local work pending: without
	// the neutral mark it would split the window and cost a barrier.
	for i := 0; i < l.neutralPer; i++ {
		at := sim.Duration(i+1)*step + step/2
		l.e.ScheduleIn(l.neutral, at, l.neutralFn)
	}
	l.e.ScheduleIn(l.cross, period, l.crossFn)
}

// Run drains the loop: workers <= 0 uses the plain serial dispatcher
// (Engine.Run), workers >= 1 the horizon-synchronized parallel one.
func (l *IntraLoop) Run(workers int) sim.ParallelStats {
	l.round = 0
	l.e.ScheduleIn(l.cross, 0, l.crossFn)
	if workers <= 0 {
		l.e.Run()
		return sim.ParallelStats{}
	}
	return l.e.RunParallel(workers)
}

// Dispatched returns the engine's lifetime dispatch count.
func (l *IntraLoop) Dispatched() uint64 { return l.e.Dispatched() }

// NeutralEvents returns how many channel-neutral cross events dispatched.
func (l *IntraLoop) NeutralEvents() uint64 { return l.neutrals }

// ChannelCounts returns the per-channel local event counts.
func (l *IntraLoop) ChannelCounts() []uint64 { return l.counts }

// Pages returns the per-channel destination pages (for equivalence checks).
func (l *IntraLoop) Pages() [][]byte { return l.dst }
