// Package dram models the SSD's internal DRAM and memory controller: DDR
// timing (tCL/tRCD/tRP/tRAS), per-bank row-buffer state with open-page and
// close-page policies, bank interleaving, data-bus contention, a
// DRAMPower-style energy model with active/precharge-standby and power-down
// states, and a capacity accountant used by the firmware for cached data,
// metadata and mapping tables (§III-B).
package dram

import (
	"fmt"

	"amber/internal/sim"
)

// Domain names the scheduling domain (sim.Engine shard) that orders
// ICL/DRAM stage boundaries: events whose time was produced by cache-memory
// accesses and write-back completions.
const Domain = "icl.dram"

// PagePolicy selects the controller's row-buffer management policy.
type PagePolicy int

// Row-buffer policies.
const (
	// OpenPage keeps rows open after access, betting on locality: row hits
	// cost tCL, conflicts cost tRP+tRCD+tCL.
	OpenPage PagePolicy = iota
	// ClosePage precharges after every access: every access costs tRCD+tCL
	// with the precharge hidden.
	ClosePage
)

func (p PagePolicy) String() string {
	if p == ClosePage {
		return "close-page"
	}
	return "open-page"
}

// Config describes the DRAM organization and timing (Table I: 1 GB, one
// channel/rank, 8 banks, 4 chips, 8-bit chip bus → 32-bit channel).
type Config struct {
	CapacityBytes   int64
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	BusWidthBits    int     // total channel data width
	ClockMHz        float64 // I/O clock; DDR transfers on both edges
	BurstLength     int     // transfers per burst (DDR3: 8)
	CL, RCD, RP     int     // CAS latency, RAS-to-CAS, precharge, in cycles
	RAS             int     // row active time in cycles
	RowBytes        int     // row-buffer size per bank
	Policy          PagePolicy
}

// Validate reports descriptive configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CapacityBytes <= 0:
		return fmt.Errorf("dram: capacity must be positive")
	case c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: channels/ranks/banks must be positive")
	case c.BusWidthBits <= 0 || c.BusWidthBits%8 != 0:
		return fmt.Errorf("dram: bus width must be a positive multiple of 8 bits")
	case c.ClockMHz <= 0:
		return fmt.Errorf("dram: clock must be positive")
	case c.BurstLength <= 0:
		return fmt.Errorf("dram: burst length must be positive")
	case c.CL <= 0 || c.RCD <= 0 || c.RP <= 0:
		return fmt.Errorf("dram: CL/RCD/RP must be positive")
	case c.RowBytes <= 0:
		return fmt.Errorf("dram: row size must be positive")
	}
	return nil
}

// CycleTime returns one clock period.
func (c Config) CycleTime() sim.Duration {
	return sim.FromSeconds(1 / (c.ClockMHz * 1e6))
}

// BurstBytes returns the bytes moved by one burst.
func (c Config) BurstBytes() int {
	return c.BusWidthBits / 8 * c.BurstLength
}

// BurstTime returns data-bus occupancy of one burst (DDR: BL/2 cycles).
func (c Config) BurstTime() sim.Duration {
	return sim.FromSeconds(float64(c.BurstLength) / 2 / (c.ClockMHz * 1e6))
}

// PeakBandwidth returns theoretical bytes/second across all channels.
func (c Config) PeakBandwidth() float64 {
	return c.ClockMHz * 1e6 * 2 * float64(c.BusWidthBits/8) * float64(c.Channels)
}

// TotalBanks returns the number of independently timed banks.
func (c Config) TotalBanks() int { return c.Channels * c.RanksPerChannel * c.BanksPerRank }

// Power is a DRAMPower-style state+event energy model.
type Power struct {
	ActStandbyW    float64 // background power while any bank is active
	PreStandbyW    float64 // background power while precharged and clocked
	PowerDownW     float64 // background power in power-down
	SelfRefreshW   float64 // background power in self-refresh (long idle)
	ActEnergyJ     float64 // per ACT+PRE pair
	RdBurstEnergyJ float64 // per read burst
	WrBurstEnergyJ float64 // per write burst
	RefreshEnergyJ float64 // per refresh interval, charged per tREFI
	TREFI          sim.Duration
}

// Stats aggregates DRAM controller activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BytesRead    uint64
	BytesWritten uint64
	RowHits      uint64
	RowMisses    uint64
	Activates    uint64
}

type bank struct {
	res     *sim.Resource
	openRow int64 // -1 when precharged
}

// DRAM is the internal memory subsystem. Not safe for concurrent use.
type DRAM struct {
	cfg   Config
	pow   Power
	bus   []*sim.Resource // per-channel data bus
	banks []bank

	used int64 // capacity accountant

	stats     Stats
	energyJ   float64
	busyUntil sim.Time // latest completion, for power-state accounting
}

// New constructs a DRAM model from a validated configuration.
func New(cfg Config, pow Power) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &DRAM{cfg: cfg, pow: pow}
	d.bus = make([]*sim.Resource, cfg.Channels)
	for i := range d.bus {
		d.bus[i] = sim.NewResource(fmt.Sprintf("dram.ch%d", i))
	}
	d.banks = make([]bank, cfg.TotalBanks())
	for i := range d.banks {
		d.banks[i] = bank{res: sim.NewResource(fmt.Sprintf("dram.bank%d", i)), openRow: -1}
	}
	return d, nil
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of activity counters.
func (d *DRAM) Stats() Stats { return d.stats }

// bankOf maps an address to its bank via row-interleaving: consecutive rows
// rotate across banks, the standard interleave for streaming firmware
// accesses.
func (d *DRAM) bankOf(addr int64) (bankIndex int, row int64) {
	row = addr / int64(d.cfg.RowBytes)
	n := int64(len(d.banks))
	return int(row % n), row / n
}

// Access performs a read or write of n bytes starting at addr, decomposed
// into bursts, and returns when the last burst completes. Row-buffer state
// and bank/bus contention determine the latency.
func (d *DRAM) Access(now sim.Time, addr int64, n int, write bool) sim.Time {
	if n <= 0 {
		return now
	}
	ct := d.cfg.CycleTime()
	burstBytes := d.cfg.BurstBytes()
	bt := d.cfg.BurstTime()
	burstE := d.pow.RdBurstEnergyJ
	if write {
		burstE = d.pow.WrBurstEnergyJ
	}
	hitDur := sim.Duration(d.cfg.CL) * ct
	missDur := sim.Duration(d.cfg.RP+d.cfg.RCD+d.cfg.CL) * ct
	closeDur := sim.Duration(d.cfg.RCD+d.cfg.CL) * ct
	rowBytes := int64(d.cfg.RowBytes)

	// Bursts are issued per row-run: successive bursts stay in the same
	// (bank, row) until the address crosses a row boundary, so the address
	// decomposition and row-buffer policy resolve once per run instead of
	// once per burst. Per-burst resource claims and per-burst energy
	// accumulation are preserved in their original order, so contention,
	// stats and float-accumulated energy are bit-identical to the
	// one-burst-at-a-time walk.
	bursts := (n + burstBytes - 1) / burstBytes
	done := now
	a := addr
	for bursts > 0 {
		bi, row := d.bankOf(a)
		bk := &d.banks[bi]
		bus := d.bus[bi%d.cfg.Channels]
		k := int((rowBytes - a%rowBytes + int64(burstBytes) - 1) / int64(burstBytes))
		if k > bursts {
			k = bursts
		}
		if d.cfg.Policy == ClosePage {
			// Every burst pays the activate; no row state to carry.
			for i := 0; i < k; i++ {
				d.stats.Activates++
				d.energyJ += d.pow.ActEnergyJ
				_, bankReady := bk.res.Claim(now, closeDur)
				_, burstDone := bus.Claim(bankReady, bt)
				d.energyJ += burstE
				if burstDone > done {
					done = burstDone
				}
			}
		} else {
			// The run's first burst resolves the row buffer; the remaining
			// k-1 are hits by construction.
			access := hitDur
			if bk.openRow == row {
				d.stats.RowHits++
			} else {
				access = missDur
				d.stats.RowMisses++
				d.stats.Activates++
				d.energyJ += d.pow.ActEnergyJ
				bk.openRow = row
			}
			for i := 0; i < k; i++ {
				_, bankReady := bk.res.Claim(now, access)
				_, burstDone := bus.Claim(bankReady, bt)
				d.energyJ += burstE
				if burstDone > done {
					done = burstDone
				}
				access = hitDur
			}
			d.stats.RowHits += uint64(k - 1)
		}
		a += int64(k) * int64(burstBytes)
		bursts -= k
	}
	if write {
		d.stats.Writes++
		d.stats.BytesWritten += uint64(n)
	} else {
		d.stats.Reads++
		d.stats.BytesRead += uint64(n)
	}
	if done > d.busyUntil {
		d.busyUntil = done
	}
	return done
}

// Read is Access with write=false.
func (d *DRAM) Read(now sim.Time, addr int64, n int) sim.Time {
	return d.Access(now, addr, n, false)
}

// Write is Access with write=true.
func (d *DRAM) Write(now sim.Time, addr int64, n int) sim.Time {
	return d.Access(now, addr, n, true)
}

// Reserve accounts n bytes of capacity for a firmware consumer (cache
// lines, mapping tables). It fails when capacity would be exceeded, which
// back-pressures the ICL sizing logic.
func (d *DRAM) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("dram: negative reservation")
	}
	if d.used+n > d.cfg.CapacityBytes {
		return fmt.Errorf("dram: reservation of %d bytes exceeds capacity (%d of %d used)",
			n, d.used, d.cfg.CapacityBytes)
	}
	d.used += n
	return nil
}

// Release returns previously reserved capacity.
func (d *DRAM) Release(n int64) {
	if n < 0 || n > d.used {
		panic("dram: release does not match reservations")
	}
	d.used -= n
}

// Used returns currently reserved bytes.
func (d *DRAM) Used() int64 { return d.used }

// BusyTime returns aggregate data-bus busy time.
func (d *DRAM) BusyTime() sim.Duration {
	var t sim.Duration
	for _, b := range d.bus {
		t += b.BusyTime()
	}
	return t
}

// EnergyJoules returns dynamic energy so far (ACT/RD/WR events).
func (d *DRAM) EnergyJoules() float64 { return d.energyJ }

// TotalEnergyJoules returns dynamic plus state-dependent background energy
// over the elapsed window: busy time is charged at active-standby power,
// idle time at power-down power (the controller enters power-down when the
// command queue drains), plus refresh energy at tREFI.
func (d *DRAM) TotalEnergyJoules(elapsed sim.Duration) float64 {
	busy := d.BusyTime()
	if busy > elapsed {
		busy = elapsed
	}
	idle := elapsed - busy
	e := d.energyJ
	e += d.pow.ActStandbyW * busy.Seconds()
	e += d.pow.PowerDownW * idle.Seconds()
	if d.pow.TREFI > 0 {
		e += d.pow.RefreshEnergyJ * (elapsed.Seconds() / d.pow.TREFI.Seconds())
	}
	return e
}

// AveragePowerW returns average power over the elapsed window.
func (d *DRAM) AveragePowerW(elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return d.TotalEnergyJoules(elapsed) / elapsed.Seconds()
}

// RowHitRate returns the fraction of open-page accesses that hit.
func (d *DRAM) RowHitRate() float64 {
	tot := d.stats.RowHits + d.stats.RowMisses
	if tot == 0 {
		return 0
	}
	return float64(d.stats.RowHits) / float64(tot)
}

// DDR3L1600 returns a representative DDR3L-1600 configuration of the given
// capacity, matching Table I's internal DRAM (1 channel, 1 rank, 8 banks).
func DDR3L1600(capacity int64) Config {
	return Config{
		CapacityBytes:   capacity,
		Channels:        1,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		BusWidthBits:    32, // 4 chips x 8-bit
		ClockMHz:        800,
		BurstLength:     8,
		CL:              11, RCD: 11, RP: 11, RAS: 28,
		RowBytes: 2048,
		Policy:   OpenPage,
	}
}

// DefaultPower returns representative DDR3L power/energy parameters.
func DefaultPower() Power {
	return Power{
		ActStandbyW:    0.35,
		PreStandbyW:    0.25,
		PowerDownW:     0.05,
		SelfRefreshW:   0.02,
		ActEnergyJ:     12e-9,
		RdBurstEnergyJ: 4e-9,
		WrBurstEnergyJ: 4.4e-9,
		RefreshEnergyJ: 28e-9,
		TREFI:          sim.FromMicroseconds(7.8),
	}
}
