package dram

import (
	"fmt"

	"amber/internal/sim"
	"amber/internal/snap"
)

// EncodeState serializes the DRAM's complete functional state: bus and
// bank resource timelines, open-row registers, the capacity accountant,
// counters, energy and the power-state watermark.
func (d *DRAM) EncodeState(e *snap.Enc) {
	for _, bus := range d.bus {
		encodeResource(e, bus)
	}
	for i := range d.banks {
		encodeResource(e, d.banks[i].res)
		e.I64(d.banks[i].openRow)
	}
	e.I64(d.used)
	e.U64(d.stats.Reads)
	e.U64(d.stats.Writes)
	e.U64(d.stats.BytesRead)
	e.U64(d.stats.BytesWritten)
	e.U64(d.stats.RowHits)
	e.U64(d.stats.RowMisses)
	e.U64(d.stats.Activates)
	e.F64(d.energyJ)
	e.I64(int64(d.busyUntil))
}

// DecodeState reinstalls a state captured by EncodeState into d, which
// must be freshly constructed with the identical configuration.
func (d *DRAM) DecodeState(dec *snap.Dec) error {
	for _, bus := range d.bus {
		decodeResource(dec, bus)
	}
	for i := range d.banks {
		decodeResource(dec, d.banks[i].res)
		d.banks[i].openRow = dec.I64()
	}
	used := dec.I64()
	if dec.Err() == nil && (used < 0 || used > d.cfg.CapacityBytes) {
		return fmt.Errorf("%w: dram reservation %d outside capacity %d", snap.ErrCorrupt, used, d.cfg.CapacityBytes)
	}
	d.used = used
	d.stats.Reads = dec.U64()
	d.stats.Writes = dec.U64()
	d.stats.BytesRead = dec.U64()
	d.stats.BytesWritten = dec.U64()
	d.stats.RowHits = dec.U64()
	d.stats.RowMisses = dec.U64()
	d.stats.Activates = dec.U64()
	d.energyJ = dec.F64()
	d.busyUntil = sim.Time(dec.I64())
	return dec.Err()
}

func encodeResource(e *snap.Enc, r *sim.Resource) {
	st := r.State()
	e.I64(int64(st.FreeAt))
	e.I64(int64(st.Busy))
	e.U64(st.Claims)
}

func decodeResource(d *snap.Dec, r *sim.Resource) {
	r.SetState(sim.ResourceState{
		FreeAt: sim.Time(d.I64()),
		Busy:   sim.Duration(d.I64()),
		Claims: d.U64(),
	})
}
