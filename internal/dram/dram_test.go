package dram

import (
	"testing"
	"testing/quick"

	"amber/internal/sim"
)

func newTestDRAM(t *testing.T, policy PagePolicy) *DRAM {
	t.Helper()
	cfg := DDR3L1600(1 << 30)
	cfg.Policy = policy
	d, err := New(cfg, DefaultPower())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	cfg := DDR3L1600(1 << 30)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.BusWidthBits = 12 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.BurstLength = 0 },
		func(c *Config) { c.CL = 0 },
		func(c *Config) { c.RowBytes = 0 },
	}
	for i, mutate := range cases {
		c := DDR3L1600(1 << 30)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	cfg := DDR3L1600(1 << 30)
	if got := cfg.BurstBytes(); got != 32 {
		t.Fatalf("BurstBytes = %d, want 32", got)
	}
	// 800 MHz DDR on 32-bit bus: 6.4 GB/s.
	if got := cfg.PeakBandwidth(); got != 800e6*2*4 {
		t.Fatalf("PeakBandwidth = %v", got)
	}
	if cfg.TotalBanks() != 8 {
		t.Fatalf("TotalBanks = %d", cfg.TotalBanks())
	}
	// Burst time: 4 cycles at 1.25ns = 5ns.
	if got := cfg.BurstTime(); got != 5*sim.Nanosecond {
		t.Fatalf("BurstTime = %v", got)
	}
}

func TestOpenPageHitFasterThanMiss(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	// First access: row miss (activate).
	t0 := sim.Time(0)
	done1 := d.Read(t0, 0, 32)
	// Second access to the same row far in the future: row hit.
	t1 := sim.FromMicroseconds(10)
	done2 := d.Read(t1, 32, 32)
	missLat := done1 - t0
	hitLat := done2 - t1
	if hitLat >= missLat {
		t.Fatalf("row hit (%v) should be faster than miss (%v)", hitLat, missLat)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClosePageConstantLatency(t *testing.T) {
	d := newTestDRAM(t, ClosePage)
	l1 := d.Read(0, 0, 32) - 0
	t1 := sim.FromMicroseconds(10)
	l2 := d.Read(t1, 0, 32) - t1
	if l1 != l2 {
		t.Fatalf("close-page latencies differ: %v vs %v", l1, l2)
	}
	if d.Stats().RowHits != 0 {
		t.Fatal("close-page should record no row hits")
	}
}

func TestLargeAccessUsesMultipleBursts(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	small := d.Read(0, 0, 32) - 0
	d2 := newTestDRAM(t, OpenPage)
	big := d2.Read(0, 0, 4096) - 0
	if big <= small {
		t.Fatalf("4KB access (%v) should take longer than one burst (%v)", big, small)
	}
	if d2.Stats().BytesRead != 4096 {
		t.Fatalf("BytesRead = %d", d2.Stats().BytesRead)
	}
}

func TestBankInterleavingParallelism(t *testing.T) {
	// Two row-missing accesses to different banks overlap their activates;
	// to the same bank they serialize.
	cfg := DDR3L1600(1 << 30)
	d, _ := New(cfg, DefaultPower())
	rowBytes := int64(cfg.RowBytes)
	// addr 0 -> bank 0 row 0; addr rowBytes -> bank 1.
	doneA := d.Read(0, 0, 32)
	doneB := d.Read(0, rowBytes, 32)
	gap := doneB - doneA
	if gap > cfg.BurstTime() {
		t.Fatalf("different banks should overlap: gap %v", gap)
	}

	d2, _ := New(cfg, DefaultPower())
	// Same bank, different rows: serialized row cycles.
	doneC := d2.Read(0, 0, 32)
	doneD := d2.Read(0, rowBytes*int64(cfg.TotalBanks()), 32)
	if doneD <= doneC {
		t.Fatal("same-bank conflicting rows must serialize")
	}
}

func TestReserveRelease(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	if err := d.Reserve(1 << 29); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(1 << 29); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(1); err == nil {
		t.Fatal("over-capacity reservation accepted")
	}
	if d.Used() != 1<<30 {
		t.Fatalf("Used = %d", d.Used())
	}
	d.Release(1 << 30)
	if d.Used() != 0 {
		t.Fatalf("Used after release = %d", d.Used())
	}
	if err := d.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	defer func() {
		if recover() == nil {
			t.Fatal("over-release should panic")
		}
	}()
	d.Release(1)
}

func TestEnergyAccounting(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	d.Read(0, 0, 32)                        // 1 ACT + 1 RD burst
	d.Write(sim.FromMicroseconds(1), 0, 32) // row hit + 1 WR burst
	p := DefaultPower()
	want := p.ActEnergyJ + p.RdBurstEnergyJ + p.WrBurstEnergyJ
	if got := d.EnergyJoules(); !approx(got, want, 1e-15) {
		t.Fatalf("EnergyJoules = %v, want %v", got, want)
	}
	tot := d.TotalEnergyJoules(sim.Millisecond)
	if tot <= want {
		t.Fatal("total energy must include background power")
	}
	if d.AveragePowerW(sim.Millisecond) <= 0 {
		t.Fatal("average power must be positive")
	}
}

func TestRowHitRate(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	if d.RowHitRate() != 0 {
		t.Fatal("hit rate with no accesses should be 0")
	}
	d.Read(0, 0, 32)
	d.Read(sim.Microsecond, 0, 32)
	d.Read(2*sim.Microsecond, 0, 32)
	if r := d.RowHitRate(); !approx(r, 2.0/3.0, 1e-9) {
		t.Fatalf("RowHitRate = %v", r)
	}
}

func TestZeroByteAccessIsFree(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	if done := d.Read(5, 0, 0); done != 5 {
		t.Fatalf("zero-byte access advanced time to %v", done)
	}
	if d.Stats().Reads != 0 {
		t.Fatal("zero-byte access counted")
	}
}

// Property: completion time is never before submission and bytes accounting
// matches requests.
func TestAccessMonotonicProperty(t *testing.T) {
	d := newTestDRAM(t, OpenPage)
	f := func(addr uint32, n uint16, write bool, gap uint16) bool {
		now := d.busyUntil + sim.Time(gap)
		nb := int(n%8192) + 1
		before := d.Stats()
		done := d.Access(now, int64(addr), nb, write)
		after := d.Stats()
		if done < now {
			return false
		}
		if write {
			return after.BytesWritten-before.BytesWritten == uint64(nb)
		}
		return after.BytesRead-before.BytesRead == uint64(nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func BenchmarkAccess4K(b *testing.B) {
	d, err := New(DDR3L1600(1<<30), DefaultPower())
	if err != nil {
		b.Fatal(err)
	}
	now := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now = d.Access(now, int64(i)*4096, 4096, i%2 == 0)
	}
}
