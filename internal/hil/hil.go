// Package hil implements the host interface layer of Amber's firmware
// stack (§III-B): the module that fetches host requests from device-level
// queues, schedules them — FIFO for h-type storage, round-robin or
// weighted round-robin arbitration across rich queues for s-type — and
// splits each request into super-page-sized internal requests matched to
// the ICL's cache entry size.
package hil

import (
	"fmt"

	"amber/internal/proto"
)

// Request is a host command as the device controller exposes it to the HIL.
type Request struct {
	Queue  int // submission queue index
	Write  bool
	Offset int64 // byte offset into the logical volume
	Length int   // bytes
	Tag    uint64
}

// Line is one super-page-aligned internal request produced by splitting.
type Line struct {
	LSPN     int64
	FirstSub int
	NumSubs  int
	// ByteOff/ByteLen locate this line's payload within the request buffer.
	ByteOff int
	ByteLen int
}

// Splitter converts byte-addressed host requests into super-page lines.
type Splitter struct {
	subSize     int
	subsPerLine int
}

// NewSplitter builds a splitter for the given sub-page size and line width.
func NewSplitter(subSize, subsPerLine int) (*Splitter, error) {
	if subSize <= 0 || subsPerLine <= 0 {
		return nil, fmt.Errorf("hil: splitter geometry must be positive")
	}
	return &Splitter{subSize: subSize, subsPerLine: subsPerLine}, nil
}

// LineBytes returns the cache entry size (one super-page).
func (s *Splitter) LineBytes() int { return s.subSize * s.subsPerLine }

// Split decomposes [offset, offset+length) into lines. Sub-page
// granularity is the unit of cache validity, so offsets are rounded to
// sub-page boundaries (partial sub-pages touch the whole sub-page, the
// read-modify-write the paper attributes to small writes).
func (s *Splitter) Split(offset int64, length int) ([]Line, error) {
	return s.SplitInto(nil, offset, length)
}

// SplitInto is Split appending into dst, so per-request buffers can be
// reused by the submit hot path. Pass dst[:0] to recycle capacity.
func (s *Splitter) SplitInto(dst []Line, offset int64, length int) ([]Line, error) {
	if offset < 0 || length <= 0 {
		return nil, fmt.Errorf("hil: invalid request [%d, +%d)", offset, length)
	}
	lineBytes := int64(s.LineBytes())
	out := dst
	end := offset + int64(length)
	for pos := offset; pos < end; {
		lspn := pos / lineBytes
		lineStart := lspn * lineBytes
		inLine := pos - lineStart
		take := lineBytes - inLine
		if remaining := end - pos; take > remaining {
			take = remaining
		}
		firstSub := int(inLine) / s.subSize
		lastSub := int(inLine+take-1) / s.subSize
		out = append(out, Line{
			LSPN:     lspn,
			FirstSub: firstSub,
			NumSubs:  lastSub - firstSub + 1,
			ByteOff:  int(pos - offset),
			ByteLen:  int(take),
		})
		pos += take
	}
	return out, nil
}

// Arbiter schedules requests across device-level queues using the
// protocol's arbitration policy. It is the s-type "rich queue" fetch logic;
// with a single queue it degenerates to FIFO.
type Arbiter struct {
	policy  proto.Arbitration
	queues  [][]*Request
	weights []int
	// WRR state: current queue and remaining credits.
	cur     int
	credits int
}

// NewArbiter builds an arbiter over nQueues queues. weights are used by
// WRR (nil defaults every weight to 1, i.e. plain round-robin behavior).
func NewArbiter(policy proto.Arbitration, nQueues int, weights []int) (*Arbiter, error) {
	if nQueues <= 0 {
		return nil, fmt.Errorf("hil: need at least one queue")
	}
	if weights == nil {
		weights = make([]int, nQueues)
		for i := range weights {
			weights[i] = 1
		}
	}
	if len(weights) != nQueues {
		return nil, fmt.Errorf("hil: %d weights for %d queues", len(weights), nQueues)
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("hil: weight %d of queue %d must be positive", w, i)
		}
	}
	a := &Arbiter{policy: policy, queues: make([][]*Request, nQueues), weights: weights}
	a.credits = weights[0]
	return a, nil
}

// Enqueue places a request on its submission queue.
func (a *Arbiter) Enqueue(r *Request) error {
	if r.Queue < 0 || r.Queue >= len(a.queues) {
		return fmt.Errorf("hil: queue %d out of range [0,%d)", r.Queue, len(a.queues))
	}
	a.queues[r.Queue] = append(a.queues[r.Queue], r)
	return nil
}

// Pending returns the total queued request count.
func (a *Arbiter) Pending() int {
	n := 0
	for _, q := range a.queues {
		n += len(q)
	}
	return n
}

// Next fetches the next request per the arbitration policy, or nil when
// all queues are empty.
func (a *Arbiter) Next() *Request {
	switch a.policy {
	case proto.RoundRobin:
		return a.nextRR(false)
	case proto.WeightedRoundRobin:
		return a.nextRR(true)
	default:
		return a.nextFIFO()
	}
}

// nextFIFO drains queues strictly in order: the h-type single I/O path.
func (a *Arbiter) nextFIFO() *Request {
	for i := range a.queues {
		if len(a.queues[i]) > 0 {
			return a.pop(i)
		}
	}
	return nil
}

// nextRR visits queues cyclically; with weighted=true each queue keeps the
// grant for its weight's worth of commands before rotating.
func (a *Arbiter) nextRR(weighted bool) *Request {
	n := len(a.queues)
	for tries := 0; tries < n; tries++ {
		if len(a.queues[a.cur]) > 0 {
			r := a.pop(a.cur)
			if weighted {
				a.credits--
				if a.credits <= 0 {
					a.advance()
				}
			} else {
				a.advance()
			}
			return r
		}
		a.advance()
	}
	return nil
}

func (a *Arbiter) advance() {
	a.cur = (a.cur + 1) % len(a.queues)
	a.credits = a.weights[a.cur]
}

func (a *Arbiter) pop(i int) *Request {
	r := a.queues[i][0]
	a.queues[i] = a.queues[i][1:]
	return r
}
