package hil

import (
	"testing"
	"testing/quick"

	"amber/internal/proto"
)

func TestSplitterBasics(t *testing.T) {
	s, err := NewSplitter(4096, 4) // 16 KiB lines
	if err != nil {
		t.Fatal(err)
	}
	if s.LineBytes() != 16384 {
		t.Fatalf("LineBytes = %d", s.LineBytes())
	}
	// 4 KiB read at offset 0: one line, one sub.
	lines, err := s.Split(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0] != (Line{LSPN: 0, FirstSub: 0, NumSubs: 1, ByteOff: 0, ByteLen: 4096}) {
		t.Fatalf("lines = %+v", lines)
	}
}

func TestSplitCrossesLines(t *testing.T) {
	s, _ := NewSplitter(4096, 4)
	// 20 KiB starting 8 KiB into line 0: subs 2,3 of line 0 + sub 0..2 of line 1.
	lines, err := s.Split(8192, 20480)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %+v", lines)
	}
	if lines[0].LSPN != 0 || lines[0].FirstSub != 2 || lines[0].NumSubs != 2 || lines[0].ByteLen != 8192 {
		t.Fatalf("line0 = %+v", lines[0])
	}
	if lines[1].LSPN != 1 || lines[1].FirstSub != 0 || lines[1].NumSubs != 3 || lines[1].ByteLen != 12288 {
		t.Fatalf("line1 = %+v", lines[1])
	}
}

func TestSplitSubPagePartial(t *testing.T) {
	s, _ := NewSplitter(4096, 4)
	// 1 KiB at offset 512: touches sub 0 only.
	lines, err := s.Split(512, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].FirstSub != 0 || lines[0].NumSubs != 1 {
		t.Fatalf("lines = %+v", lines)
	}
	// 1 KiB spanning the sub 0/1 boundary touches two subs.
	lines, err = s.Split(3584, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 || lines[0].NumSubs != 2 {
		t.Fatalf("boundary lines = %+v", lines)
	}
}

func TestSplitRejectsBadArgs(t *testing.T) {
	s, _ := NewSplitter(4096, 4)
	if _, err := s.Split(-1, 4096); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := s.Split(0, 0); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := NewSplitter(0, 4); err == nil {
		t.Fatal("zero sub size accepted")
	}
}

// Property: split lines exactly tile the request byte range, in order,
// without overlap, and all sub ranges stay within the line.
func TestSplitTilesProperty(t *testing.T) {
	s, _ := NewSplitter(512, 8)
	f := func(off uint16, length uint16) bool {
		l := int(length%50000) + 1
		lines, err := s.Split(int64(off), l)
		if err != nil {
			return false
		}
		pos := 0
		prevLSPN := int64(-1)
		for _, ln := range lines {
			if ln.ByteOff != pos || ln.ByteLen <= 0 {
				return false
			}
			if ln.LSPN <= prevLSPN {
				return false
			}
			if ln.FirstSub < 0 || ln.FirstSub+ln.NumSubs > 8 {
				return false
			}
			prevLSPN = ln.LSPN
			pos += ln.ByteLen
		}
		return pos == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestArbiterFIFO(t *testing.T) {
	a, err := NewArbiter(proto.FIFO, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []*Request{{Queue: 1, Tag: 1}, {Queue: 0, Tag: 2}, {Queue: 1, Tag: 3}}
	for _, r := range reqs {
		if err := a.Enqueue(r); err != nil {
			t.Fatal(err)
		}
	}
	// FIFO drains queue 0 first, then queue 1 in order.
	want := []uint64{2, 1, 3}
	for i, w := range want {
		r := a.Next()
		if r == nil || r.Tag != w {
			t.Fatalf("fetch %d: got %+v, want tag %d", i, r, w)
		}
	}
	if a.Next() != nil {
		t.Fatal("empty arbiter returned a request")
	}
}

func TestArbiterRoundRobin(t *testing.T) {
	a, _ := NewArbiter(proto.RoundRobin, 3, nil)
	for q := 0; q < 3; q++ {
		for i := 0; i < 2; i++ {
			if err := a.Enqueue(&Request{Queue: q, Tag: uint64(q*10 + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	var got []uint64
	for r := a.Next(); r != nil; r = a.Next() {
		got = append(got, r.Tag)
	}
	want := []uint64{0, 10, 20, 1, 11, 21}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RR order = %v, want %v", got, want)
		}
	}
}

func TestArbiterWRRHonorsWeights(t *testing.T) {
	a, _ := NewArbiter(proto.WeightedRoundRobin, 2, []int{3, 1})
	for q := 0; q < 2; q++ {
		for i := 0; i < 6; i++ {
			if err := a.Enqueue(&Request{Queue: q, Tag: uint64(q)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// First 8 fetches: queue 0 should get 3 of every 4.
	q0 := 0
	for i := 0; i < 8; i++ {
		r := a.Next()
		if r == nil {
			t.Fatal("arbiter ran dry early")
		}
		if r.Tag == 0 {
			q0++
		}
	}
	if q0 != 6 {
		t.Fatalf("queue 0 got %d of 8 under 3:1 weights, want 6", q0)
	}
}

func TestArbiterSkipsEmptyQueues(t *testing.T) {
	a, _ := NewArbiter(proto.RoundRobin, 4, nil)
	if err := a.Enqueue(&Request{Queue: 2, Tag: 7}); err != nil {
		t.Fatal(err)
	}
	r := a.Next()
	if r == nil || r.Tag != 7 {
		t.Fatalf("RR failed to skip empties: %+v", r)
	}
}

func TestArbiterValidation(t *testing.T) {
	if _, err := NewArbiter(proto.RoundRobin, 0, nil); err == nil {
		t.Fatal("zero queues accepted")
	}
	if _, err := NewArbiter(proto.WeightedRoundRobin, 2, []int{1}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
	if _, err := NewArbiter(proto.WeightedRoundRobin, 2, []int{1, 0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	a, _ := NewArbiter(proto.FIFO, 1, nil)
	if err := a.Enqueue(&Request{Queue: 5}); err == nil {
		t.Fatal("out-of-range queue accepted")
	}
	if a.Pending() != 0 {
		t.Fatal("failed enqueue counted")
	}
}
