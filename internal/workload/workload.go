// Package workload generates the I/O streams the evaluation runs: a
// FIO-style microbenchmark engine (sequential/random read/write at a given
// block size, matching §III-A and §V-B) and synthetic generators for the
// five enterprise traces of Table III (24HR, 24HRS, CFS, MSNFS, DAP),
// parameterized by their published request-size, read-ratio and randomness
// statistics.
package workload

import (
	"fmt"

	"amber/internal/sim"
)

// Request is one generated I/O.
type Request struct {
	Write  bool
	Offset int64
	Length int
}

// Generator produces a request stream. Implementations are deterministic
// for a given seed.
type Generator interface {
	// Next returns the i-th request of the stream.
	Next(i int) Request
	// Name identifies the workload in reports.
	Name() string
}

// Pattern is a FIO access pattern.
type Pattern int

// FIO patterns.
const (
	SeqRead Pattern = iota
	RandRead
	SeqWrite
	RandWrite
)

func (p Pattern) String() string {
	switch p {
	case SeqRead:
		return "seq-read"
	case RandRead:
		return "rand-read"
	case SeqWrite:
		return "seq-write"
	case RandWrite:
		return "rand-write"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// IsWrite reports whether the pattern writes.
func (p Pattern) IsWrite() bool { return p == SeqWrite || p == RandWrite }

// IsRandom reports whether the pattern is random-offset.
func (p Pattern) IsRandom() bool { return p == RandRead || p == RandWrite }

// FIO is the microbenchmark generator: fixed block size over a volume span
// with a pure sequential or uniformly random offset stream.
type FIO struct {
	Pattern   Pattern
	BlockSize int
	Span      int64 // volume bytes; offsets stay in [0, Span)
	Seed      uint64

	rng    *sim.RNG
	blocks int64
}

// NewFIO validates and builds a FIO generator.
func NewFIO(p Pattern, blockSize int, span int64, seed uint64) (*FIO, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("workload: block size must be positive")
	}
	if span < int64(blockSize) {
		return nil, fmt.Errorf("workload: span %d smaller than block size %d", span, blockSize)
	}
	return &FIO{
		Pattern:   p,
		BlockSize: blockSize,
		Span:      span,
		Seed:      seed,
		rng:       sim.NewRNG(seed ^ 0xf10),
		blocks:    span / int64(blockSize),
	}, nil
}

// Name implements Generator.
func (f *FIO) Name() string {
	return fmt.Sprintf("fio-%v-%dk", f.Pattern, f.BlockSize/1024)
}

// Next implements Generator. Sequential streams wrap around the span.
func (f *FIO) Next(i int) Request {
	var block int64
	if f.Pattern.IsRandom() {
		block = int64(f.rng.Uint64n(uint64(f.blocks)))
	} else {
		block = int64(i) % f.blocks
	}
	return Request{
		Write:  f.Pattern.IsWrite(),
		Offset: block * int64(f.BlockSize),
		Length: f.BlockSize,
	}
}

// TraceParams holds Table III's workload characteristics.
type TraceParams struct {
	TraceName   string
	AvgReadKB   float64
	AvgWriteKB  float64
	ReadRatio   float64 // fraction of requests that are reads
	RandomRead  float64 // fraction of reads at random offsets
	RandomWrite float64 // fraction of writes at random offsets
}

// Table III trace parameter sets.
var (
	// W1: Authentication Server (24HR).
	Trace24HR = TraceParams{"24HR", 10.3, 8.1, 0.10, 0.97, 0.47}
	// W2: Back End SQL Server (24HRS).
	Trace24HRS = TraceParams{"24HRS", 106.2, 11.7, 0.18, 0.92, 0.43}
	// W3: Display Ads Payload (DAP).
	TraceDAP = TraceParams{"DAP", 62.1, 97.2, 0.56, 0.03, 0.84}
	// W4: MSN Storage metadata (CFS).
	TraceCFS = TraceParams{"CFS", 8.7, 12.6, 0.74, 0.94, 0.94}
	// W5: MSN Storage FS (MSNFS).
	TraceMSNFS = TraceParams{"MSNFS", 10.7, 11.2, 0.67, 0.98, 0.98}
)

// Traces lists the five Table III workloads in the paper's W1..W5 order.
func Traces() []TraceParams {
	return []TraceParams{Trace24HR, Trace24HRS, TraceDAP, TraceCFS, TraceMSNFS}
}

// Trace is a synthetic generator matching a TraceParams marginal
// distribution: request sizes are drawn around the per-direction mean
// (uniform in [0.5, 1.5] x mean, 4 KiB aligned, minimum 4 KiB), direction
// by ReadRatio, and offsets either continue a per-direction sequential
// stream or jump uniformly, per the Random* fractions.
type Trace struct {
	P    TraceParams
	Span int64
	Seed uint64

	rng     *sim.RNG
	nextOff [2]int64 // per-direction sequential cursors: [read, write]
}

// NewTrace validates and builds a trace generator.
func NewTrace(p TraceParams, span int64, seed uint64) (*Trace, error) {
	if span < 1<<20 {
		return nil, fmt.Errorf("workload: span %d too small for trace replay", span)
	}
	if p.ReadRatio < 0 || p.ReadRatio > 1 || p.RandomRead < 0 || p.RandomRead > 1 || p.RandomWrite < 0 || p.RandomWrite > 1 {
		return nil, fmt.Errorf("workload: trace fractions must be in [0,1]")
	}
	t := &Trace{P: p, Span: span, Seed: seed, rng: sim.NewRNG(seed ^ 0x7ace)}
	t.nextOff[1] = span / 2 // separate the write stream's sequential region
	return t, nil
}

// Name implements Generator.
func (t *Trace) Name() string { return t.P.TraceName }

// Next implements Generator.
func (t *Trace) Next(i int) Request {
	read := t.rng.Float64() < t.P.ReadRatio
	meanKB := t.P.AvgWriteKB
	randFrac := t.P.RandomWrite
	dir := 1
	if read {
		meanKB = t.P.AvgReadKB
		randFrac = t.P.RandomRead
		dir = 0
	}
	// Size: uniform around the mean, 4 KiB aligned, at least 4 KiB.
	kb := meanKB * t.rng.Range(0.5, 1.5)
	length := int(kb/4+0.5) * 4096
	if length < 4096 {
		length = 4096
	}
	if int64(length) > t.Span/4 {
		length = int(t.Span / 4 / 4096 * 4096)
	}

	var off int64
	if t.rng.Float64() < randFrac {
		maxBlock := (t.Span - int64(length)) / 4096
		off = int64(t.rng.Uint64n(uint64(maxBlock+1))) * 4096
	} else {
		off = t.nextOff[dir]
		if off+int64(length) > t.Span {
			off = 0
		}
	}
	t.nextOff[dir] = off + int64(length)
	return Request{Write: !read, Offset: off, Length: length}
}

// Mixed is a two-phase generator used by the Fig. 15b/c experiment: writes
// for the first writeCount requests, then reads of the written range.
type Mixed struct {
	Label      string
	WriteCount int
	BlockSize  int
	Span       int64
	Seed       uint64
	rng        *sim.RNG
}

// NewMixed builds a write-then-read phase generator.
func NewMixed(label string, writeCount, blockSize int, span int64, seed uint64) (*Mixed, error) {
	if writeCount <= 0 || blockSize <= 0 || span < int64(blockSize) {
		return nil, fmt.Errorf("workload: invalid mixed-phase parameters")
	}
	return &Mixed{Label: label, WriteCount: writeCount, BlockSize: blockSize, Span: span, Seed: seed,
		rng: sim.NewRNG(seed ^ 0x3d)}, nil
}

// Name implements Generator.
func (m *Mixed) Name() string { return m.Label }

// Next implements Generator.
func (m *Mixed) Next(i int) Request {
	blocks := m.Span / int64(m.BlockSize)
	block := int64(i) % blocks
	return Request{
		Write:  i < m.WriteCount,
		Offset: block * int64(m.BlockSize),
		Length: m.BlockSize,
	}
}
