package workload

import (
	"testing"
	"testing/quick"
)

func TestFIOValidation(t *testing.T) {
	if _, err := NewFIO(SeqRead, 0, 1<<20, 1); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewFIO(SeqRead, 4096, 100, 1); err == nil {
		t.Fatal("span smaller than block accepted")
	}
}

func TestFIOSequentialWraps(t *testing.T) {
	g, err := NewFIO(SeqWrite, 4096, 3*4096, 1)
	if err != nil {
		t.Fatal(err)
	}
	offs := []int64{}
	for i := 0; i < 6; i++ {
		r := g.Next(i)
		if !r.Write || r.Length != 4096 {
			t.Fatalf("request %d = %+v", i, r)
		}
		offs = append(offs, r.Offset)
	}
	want := []int64{0, 4096, 8192, 0, 4096, 8192}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets = %v", offs)
		}
	}
}

func TestFIORandomInBounds(t *testing.T) {
	g, err := NewFIO(RandRead, 4096, 1<<20, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i uint16) bool {
		r := g.Next(int(i))
		return r.Offset >= 0 && r.Offset+int64(r.Length) <= 1<<20 &&
			r.Offset%4096 == 0 && !r.Write
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternClassification(t *testing.T) {
	if SeqRead.IsWrite() || RandRead.IsWrite() || !SeqWrite.IsWrite() || !RandWrite.IsWrite() {
		t.Fatal("IsWrite wrong")
	}
	if SeqRead.IsRandom() || !RandRead.IsRandom() || SeqWrite.IsRandom() || !RandWrite.IsRandom() {
		t.Fatal("IsRandom wrong")
	}
	if SeqRead.String() != "seq-read" || RandWrite.String() != "rand-write" {
		t.Fatal("names wrong")
	}
}

func TestTraceMatchesMarginals(t *testing.T) {
	for _, tp := range Traces() {
		g, err := NewTrace(tp, 1<<30, 7)
		if err != nil {
			t.Fatal(err)
		}
		const n = 20000
		var reads, readBytes, writeBytes, writes int
		for i := 0; i < n; i++ {
			r := g.Next(i)
			if r.Offset < 0 || r.Offset+int64(r.Length) > 1<<30 {
				t.Fatalf("%s: request out of span: %+v", tp.TraceName, r)
			}
			if r.Length%4096 != 0 {
				t.Fatalf("%s: unaligned length %d", tp.TraceName, r.Length)
			}
			if r.Write {
				writes++
				writeBytes += r.Length
			} else {
				reads++
				readBytes += r.Length
			}
		}
		gotRatio := float64(reads) / n
		if diff := gotRatio - tp.ReadRatio; diff > 0.02 || diff < -0.02 {
			t.Errorf("%s: read ratio %.3f, want %.2f", tp.TraceName, gotRatio, tp.ReadRatio)
		}
		if reads > 0 {
			meanKB := float64(readBytes) / float64(reads) / 1024
			if meanKB < tp.AvgReadKB*0.7 || meanKB > tp.AvgReadKB*1.4 {
				t.Errorf("%s: mean read %.1f KB, want ~%.1f", tp.TraceName, meanKB, tp.AvgReadKB)
			}
		}
		if writes > 0 {
			meanKB := float64(writeBytes) / float64(writes) / 1024
			if meanKB < tp.AvgWriteKB*0.7 || meanKB > tp.AvgWriteKB*1.4 {
				t.Errorf("%s: mean write %.1f KB, want ~%.1f", tp.TraceName, meanKB, tp.AvgWriteKB)
			}
		}
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(Trace24HR, 100, 1); err == nil {
		t.Fatal("tiny span accepted")
	}
	bad := Trace24HR
	bad.ReadRatio = 1.5
	if _, err := NewTrace(bad, 1<<30, 1); err == nil {
		t.Fatal("bad ratio accepted")
	}
}

func TestTraceDeterminism(t *testing.T) {
	a, _ := NewTrace(TraceCFS, 1<<30, 42)
	b, _ := NewTrace(TraceCFS, 1<<30, 42)
	for i := 0; i < 100; i++ {
		if a.Next(i) != b.Next(i) {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestMixedPhases(t *testing.T) {
	m, err := NewMixed("x", 10, 4096, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r := m.Next(i)
		if (i < 10) != r.Write {
			t.Fatalf("request %d write=%v", i, r.Write)
		}
	}
	if _, err := NewMixed("x", 0, 4096, 1<<20, 1); err == nil {
		t.Fatal("zero write count accepted")
	}
	if m.Name() != "x" {
		t.Fatal("name wrong")
	}
}
