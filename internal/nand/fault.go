package nand

import (
	"errors"
	"fmt"

	"amber/internal/sim"
)

// Sentinel errors for the flash failure modes. They are wrapped with address
// context (FaultError or fmt.Errorf %w), so callers match with errors.Is and
// recover layer by layer: the FTL retires blocks on program/erase failures
// and drops data on uncorrectable reads, the FIL disarms its certified
// chain, the core bounds the retries.
var (
	// ErrProgramFail is an injected page-program failure: the page holds
	// garbage, the firmware must retire the block and re-place the data.
	ErrProgramFail = errors.New("nand: program failed")
	// ErrEraseFail is an injected block-erase failure: the block never
	// returns to a programmable state and must leave the free pool.
	ErrEraseFail = errors.New("nand: erase failed")
	// ErrUncorrectable is a read whose raw bit errors survived the whole
	// read-retry ladder: the page's data is lost.
	ErrUncorrectable = errors.New("nand: uncorrectable read error")
	// ErrUnwritten marks a read of a page that was never programmed since
	// its block's last erase.
	ErrUnwritten = errors.New("nand: read of unwritten page")
	// ErrOverwrite marks a program of an already-written page
	// (erase-before-write).
	ErrOverwrite = errors.New("nand: program of already-written page (erase-before-write)")
	// ErrOutOfOrder marks a program that skips its block's next in-order
	// page (MLC/TLC disturb management forbids it).
	ErrOutOfOrder = errors.New("nand: out-of-order program")
	// ErrDeferredInFlight marks a synchronous program/erase issued while a
	// deferred plan's installs are still pending on the channel: the
	// synchronous arena update would be silently overwritten when the
	// pending batch replays its staged bytes. Drain the engine first.
	ErrDeferredInFlight = errors.New("nand: synchronous program/erase while deferred installs are in flight")
)

// FaultError wraps a sentinel fault with the faulting operation and address,
// so an error that crosses several firmware layers still names the physical
// page it happened at. Matches the sentinel via errors.Is.
type FaultError struct {
	Op   OpKind
	Addr Address
	Err  error
}

func (e *FaultError) Error() string { return fmt.Sprintf("%v at %v", e.Err, e.Addr) }

// Unwrap exposes the sentinel for errors.Is.
func (e *FaultError) Unwrap() error { return e.Err }

// IsInjectedFault reports whether err is (or wraps) one of the injected
// flash fault sentinels — the recoverable failure class, as opposed to
// structural errors like out-of-range addresses or ordering violations.
func IsInjectedFault(err error) bool {
	return errors.Is(err, ErrProgramFail) || errors.Is(err, ErrEraseFail) ||
		errors.Is(err, ErrUncorrectable)
}

// FaultConfig parameterizes the deterministic fault-injection model. The
// zero value disables injection entirely (and keeps the hot paths free of
// fault bookkeeping).
//
// Every draw is a pure function of (Seed, physical page or block index, the
// block's erase count, retry attempt) — no wall clock, no shared generator
// state — so the fault schedule is a property of the op sequence alone:
// serial and horizon-parallel runs, or a prevalidation probe and the later
// issue-time draw of the same read, always agree (see sim/doc.go).
type FaultConfig struct {
	// Seed decorrelates fault schedules between runs/devices.
	Seed uint64
	// ProgramFailProb is the probability a page program fails, scaled by
	// the block's wear factor.
	ProgramFailProb float64
	// EraseFailProb is the probability a block erase fails, scaled by the
	// block's wear factor.
	EraseFailProb float64
	// ReadFailProb is the per-attempt probability a read returns
	// uncorrectable raw bit errors, scaled by the block's wear factor. Each
	// rung of the retry ladder draws independently; a read is lost only
	// when every rung fails.
	ReadFailProb float64
	// WearEraseLimit is the erase count at which the wear factor saturates
	// at 1 (probabilities below scale linearly with eraseCount/limit, so
	// fresh blocks are reliable and worn blocks degrade). Zero makes every
	// probability wear-independent.
	WearEraseLimit uint32
	// MaxReadRetries bounds the read-retry ladder; zero defaults to 3.
	MaxReadRetries int
	// ReadRetryLatency is the extra die occupancy per retry rung; zero
	// defaults to the timing model's ReadSlow.
	ReadRetryLatency sim.Duration
	// ReadDisturbLimit is the per-block read count at which accumulated
	// read disturb alone contributes a full wear factor to the read-fault
	// probability: every read of a block bumps its disturb counter (reset
	// by erase), and read draws scale with disturb/limit on top of the
	// erase-count wear term. Zero disables disturb accumulation entirely
	// (no counter bump, no draw change — the schedule stays bit-identical
	// to a disturb-free configuration).
	ReadDisturbLimit uint32
	// RetentionLimit is the simulated data age at which retention loss
	// alone contributes a full wear factor to the read-fault probability:
	// read draws scale with (now - program completion)/limit, quantized
	// into 16 buckets so the draw stays a pure function of a small key.
	// Zero disables the retention term.
	RetentionLimit sim.Duration
}

// Enabled reports whether any fault class can fire or any degradation
// counter must accumulate.
func (c FaultConfig) Enabled() bool {
	return c.ProgramFailProb > 0 || c.EraseFailProb > 0 || c.ReadFailProb > 0 ||
		c.ReadDisturbLimit > 0 || c.RetentionLimit > 0
}

// Validate reports descriptive configuration errors.
func (c FaultConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ProgramFailProb", c.ProgramFailProb},
		{"EraseFailProb", c.EraseFailProb},
		{"ReadFailProb", c.ReadFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("nand: fault %s %v outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxReadRetries < 0 {
		return fmt.Errorf("nand: MaxReadRetries must be >= 0, got %d", c.MaxReadRetries)
	}
	if c.ReadRetryLatency < 0 {
		return fmt.Errorf("nand: ReadRetryLatency must be >= 0, got %v", c.ReadRetryLatency)
	}
	if c.RetentionLimit < 0 {
		return fmt.Errorf("nand: RetentionLimit must be >= 0, got %v", c.RetentionLimit)
	}
	return nil
}

// FaultStats aggregates injected-fault activity.
type FaultStats struct {
	ProgramFails  uint64
	EraseFails    uint64
	Uncorrectable uint64 // reads that exhausted the retry ladder
	ReadRetries   uint64 // extra ladder rungs successful reads needed
}

// FaultSite records one injected fault for post-mortem inspection: what
// failed, where, and at what wear.
type FaultSite struct {
	Op         OpKind
	Addr       Address
	EraseCount uint32
}

// maxFaultSites bounds the fault-site log: enough for any diagnostic replay
// without letting a wear-out run grow it without limit.
const maxFaultSites = 1024

// Hash-domain separators per fault class, so the program, erase and read
// streams of one page/block are uncorrelated.
const (
	faultKindProgram uint64 = 0x70726f675f666169
	faultKindErase   uint64 = 0x65726173655f6661
	faultKindRead    uint64 = 0x726561645f666169
	faultKindTorn    uint64 = 0x746f726e5f706f77
	faultKindExt     uint64 = 0x64697374757262ff
)

// tornDraw resolves one in-flight program at a power cut: true means the
// interrupted array operation left the page torn (checksum-bad, payload
// lost), false means it latched enough charge to commit. Like every fault
// draw it is a pure function — of (seed, physical page, the program's
// write sequence number) — so the resolution is independent of dispatch
// order and identical for serial and horizon-parallel runs that cut power
// at the same point. The split is even: an array operation interrupted at
// a uniformly random point is modeled as a coin flip.
func tornDraw(seed uint64, pageIdx int64, seq uint64) bool {
	h := mix64(seed ^ (faultKindTorn + uint64(pageIdx)*0x9e3779b97f4a7c15))
	h = mix64(h ^ seq)
	return h&1 == 1
}

// faultModel draws injected faults. All draws run in serial sections (claim
// paths and validation probes), so plain fields suffice; nothing here is
// touched by domain-local completion events.
type faultModel struct {
	cfg      FaultConfig
	retries  int          // resolved MaxReadRetries
	retryLat sim.Duration // resolved ReadRetryLatency
	stats    FaultStats
	sites    []FaultSite
}

func newFaultModel(cfg FaultConfig, tim Timing) *faultModel {
	m := &faultModel{cfg: cfg, retries: cfg.MaxReadRetries, retryLat: cfg.ReadRetryLatency}
	if m.retries == 0 {
		m.retries = 3
	}
	if m.retryLat == 0 {
		m.retryLat = tim.ReadSlow
	}
	return m
}

// mix64 is the splitmix64 finalizer (same mixing as sim.NewRNG's seeding),
// used as a stateless hash: good enough avalanche that nearby (page, erase
// count, attempt) tuples give uncorrelated draws.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// wearFactor scales fault probabilities with the block's accumulated wear.
func (m *faultModel) wearFactor(ec uint32) float64 {
	if m.cfg.WearEraseLimit == 0 {
		return 1
	}
	if ec >= m.cfg.WearEraseLimit {
		return 1
	}
	return float64(ec) / float64(m.cfg.WearEraseLimit)
}

// hit is the pure draw: true when the op identified by (kind, idx, erase
// count, attempt) fails under base probability prob. Idempotent by
// construction — probing and issuing the same op always agree.
func (m *faultModel) hit(kind uint64, idx int64, ec uint32, attempt int, prob float64) bool {
	return m.hitP(kind, idx, ec, attempt, prob*m.wearFactor(ec), 0)
}

// hitP is the generalized pure draw: p is the final (already scaled)
// probability and ext an optional extra key term (disturb count, retention
// bucket) folded in with one more mix round. ext zero skips that round, so
// configurations without the extra terms draw bit-identically to the
// original two-round hash.
func (m *faultModel) hitP(kind uint64, idx int64, ec uint32, attempt int, p float64, ext uint64) bool {
	if p <= 0 {
		return false
	}
	h := mix64(m.cfg.Seed ^ (kind + uint64(idx)*0x9e3779b97f4a7c15))
	h = mix64(h ^ (uint64(ec) << 16) ^ uint64(attempt))
	if ext != 0 {
		h = mix64(h ^ ext)
	}
	return float64(h>>11)/(1<<53) < p
}

// readLadder draws the whole retry ladder for one read of pageIdx: rung k
// fails independently with probability p (the read probability already
// scaled by wear, disturb and retention; ext keys the disturb/retention
// state into the hash). It returns the extra rungs a successful read
// climbed, or ok=false when every rung failed (the data is uncorrectable
// until the block is erased — the draw depends only on (page, erase count,
// degradation state), so re-reads under the same state keep failing, which
// is exactly how a degraded cell behaves — while a scrub migration or
// further disturb changes the key, as refreshing or re-disturbing a real
// cell would).
func (m *faultModel) readLadder(pageIdx int64, ec uint32, p float64, ext uint64) (retries int, ok bool) {
	attempts := m.retries + 1
	for k := 0; k < attempts; k++ {
		if !m.hitP(faultKindRead, pageIdx, ec, k, p, ext) {
			return k, true
		}
	}
	return attempts - 1, false
}

// record appends one fault to the bounded site log.
func (m *faultModel) record(op OpKind, addr Address, ec uint32) {
	if len(m.sites) < maxFaultSites {
		m.sites = append(m.sites, FaultSite{Op: op, Addr: addr, EraseCount: ec})
	}
}

// FaultsEnabled reports whether fault injection is active.
func (f *Flash) FaultsEnabled() bool { return f.faults != nil }

// ReadFaultsArmed reports whether read-fault draws are live: the injected
// read-retry ladder runs per read and can stretch die occupancy or fail
// the read, so any fast path that skips per-read validation must also
// verify this is false — otherwise it would skip a draw that affects
// timing and outcome.
func (f *Flash) ReadFaultsArmed() bool {
	return f.faults != nil && f.faults.cfg.ReadFailProb > 0
}

// FaultStats returns the injected-fault counters (zero when injection is
// disabled).
func (f *Flash) FaultStats() FaultStats {
	if f.faults == nil {
		return FaultStats{}
	}
	return f.faults.stats
}

// FaultSites returns a copy of the bounded fault-site log, in injection
// order.
func (f *Flash) FaultSites() []FaultSite {
	if f.faults == nil {
		return nil
	}
	out := make([]FaultSite, len(f.faults.sites))
	copy(out, f.faults.sites)
	return out
}

// readDrawParams computes the effective read-fault probability and the
// extra hash key for one read of addr at simulated time now: the base
// probability scales with the sum of the erase-count wear factor, the
// block's disturb fraction and the page's retention-age fraction, and the
// (disturb count, retention bucket) pair keys the draw so degradation
// changes the schedule. With neither limit configured ext is 0 and the
// probability reduces to the original wear-scaled form, so the draw stream
// is bit-identical to a disturb/retention-free model.
func (f *Flash) readDrawParams(now sim.Time, addr Address, bi int) (p float64, ext uint64) {
	m := f.faults
	factor := m.wearFactor(f.blocks[bi].eraseCount)
	var dPart, bucket uint64
	keyed := false
	if lim := m.cfg.ReadDisturbLimit; lim > 0 {
		d := f.blocks[bi].disturb
		factor += float64(d) / float64(lim)
		dPart = uint64(d)
		keyed = true
	}
	if lim := m.cfg.RetentionLimit; lim > 0 {
		// A page pending a deferred program can carry a completion stamp
		// past the read's issue time; its age is zero, not an underflow.
		var age sim.Duration
		if done := f.oob[f.geo.PageIndex(addr)].doneAt; now > done {
			age = now - done
		}
		factor += float64(age) / float64(lim)
		step := lim / 16
		if step <= 0 {
			step = 1
		}
		bucket = uint64(age / step)
		keyed = true
	}
	p = m.cfg.ReadFailProb * factor
	if keyed {
		ext = mix64(faultKindExt ^ dPart*0x9e3779b97f4a7c15 ^ (bucket << 20))
	}
	return p, ext
}

// readFaultExtra runs the issue-time read-retry ladder for addr: it returns
// the extra die occupancy the retries cost, or a wrapped ErrUncorrectable
// when the ladder is exhausted. Called before claimRead on every read path,
// so a faulting read claims nothing and schedules nothing. now anchors the
// retention-age term (ignored when retention is disabled).
func (f *Flash) readFaultExtra(now sim.Time, addr Address) (sim.Duration, error) {
	m := f.faults
	if m == nil || m.cfg.ReadFailProb <= 0 {
		return 0, nil
	}
	bi := f.geo.BlockIndex(addr)
	ec := f.blocks[bi].eraseCount
	p, ext := f.readDrawParams(now, addr, bi)
	retries, ok := m.readLadder(f.geo.PageIndex(addr), ec, p, ext)
	if !ok {
		m.stats.Uncorrectable++
		m.record(OpRead, addr, ec)
		return 0, &FaultError{Op: OpRead, Addr: addr, Err: ErrUncorrectable}
	}
	if retries > 0 {
		m.stats.ReadRetries += uint64(retries)
		return sim.Duration(retries) * m.retryLat, nil
	}
	return 0, nil
}

// ProbeRead reports the error a read of addr would fail with at time now:
// CheckRead's structural checks plus the injected-fault ladder. The fault
// draw is a pure function of (seed, page, erase count, disturb count,
// retention bucket), so a passing probe guarantees an issue-time draw of
// the same read under the same degradation state also passes. Callers that
// interleave probes with disturb-bumping issues must instead carry the
// probe's result to the issue (ProbeReadExtra + the Predrawn read
// variants), because the issues shift later draws' keys. A failing probe
// charges the uncorrectable (it is where the caller observes the loss);
// the issue that would double-charge it never happens.
func (f *Flash) ProbeRead(now sim.Time, addr Address) error {
	if err := f.CheckRead(addr); err != nil {
		return err
	}
	m := f.faults
	if m == nil || m.cfg.ReadFailProb <= 0 {
		return nil
	}
	bi := f.geo.BlockIndex(addr)
	ec := f.blocks[bi].eraseCount
	p, ext := f.readDrawParams(now, addr, bi)
	if _, ok := m.readLadder(f.geo.PageIndex(addr), ec, p, ext); !ok {
		m.stats.Uncorrectable++
		m.record(OpRead, addr, ec)
		return &FaultError{Op: OpRead, Addr: addr, Err: ErrUncorrectable}
	}
	return nil
}

// ProbeReadExtra is the authoritative-draw probe: CheckRead plus one full
// ladder draw for a read of addr at time now, returning the extra die
// occupancy the retries will cost. The caller issues the read with a
// Predrawn variant that reuses the returned extra instead of re-drawing —
// the pattern batching paths need once read disturb is enabled, because a
// batch's issues bump the disturb counters its later probes were keyed on,
// so re-drawing at issue could disagree with the probe and break the
// probe-pass ⇒ issue-pass contract. Retry rungs are charged here (the
// probe IS the read's draw); a failing probe charges the uncorrectable.
func (f *Flash) ProbeReadExtra(now sim.Time, addr Address) (sim.Duration, error) {
	if err := f.CheckRead(addr); err != nil {
		return 0, err
	}
	return f.readFaultExtra(now, addr)
}

// ProbeErase reports the error an erase of addr's block would fail with
// right now: CheckErase's structural checks plus the injected fault draw.
// The draw is a pure function of (seed, block, erase count), so a passing
// probe guarantees the later issue-time draw of the same erase also
// passes. The FIL probes every plane of a super-block erase up front so a
// fault on ANY plane fails the whole op before ANY plane's cells are
// wiped — without the probe pass, planes issued before the faulting one
// would already be erased, breaking the error-⇒-no-mutation contract at
// the multi-plane op granularity the FTL recovers at. A failing probe
// charges the fault (the issue that would double-charge it never
// happens).
func (f *Flash) ProbeErase(addr Address) error {
	if err := f.CheckErase(addr); err != nil {
		return err
	}
	return f.drawEraseFault(addr)
}

// drawProgramFault draws the injected failure for a program of addr. Called
// after CheckProgram and before claimProgram on every program path, so a
// faulting program claims nothing, mutates nothing and schedules nothing.
// The draw keys on (page, erase count): firmware that retires the block
// never re-programs the same tuple, while a raw caller retrying the exact
// op deterministically observes the same failure.
func (f *Flash) drawProgramFault(addr Address) error {
	m := f.faults
	if m == nil || m.cfg.ProgramFailProb <= 0 {
		return nil
	}
	ec := f.blocks[f.geo.BlockIndex(addr)].eraseCount
	if m.hit(faultKindProgram, f.geo.PageIndex(addr), ec, 0, m.cfg.ProgramFailProb) {
		m.stats.ProgramFails++
		m.record(OpProgram, addr, ec)
		return &FaultError{Op: OpProgram, Addr: addr, Err: ErrProgramFail}
	}
	return nil
}

// drawEraseFault draws the injected failure for an erase of addr's block,
// keyed on (block, erase count). Same no-mutation placement as
// drawProgramFault.
func (f *Flash) drawEraseFault(addr Address) error {
	m := f.faults
	if m == nil || m.cfg.EraseFailProb <= 0 {
		return nil
	}
	bi := f.geo.BlockIndex(addr)
	ec := f.blocks[bi].eraseCount
	if m.hit(faultKindErase, int64(bi), ec, 0, m.cfg.EraseFailProb) {
		m.stats.EraseFails++
		m.record(OpErase, addr, ec)
		return &FaultError{Op: OpErase, Addr: addr, Err: ErrEraseFail}
	}
	return nil
}
