package nand

import "amber/internal/sim"

// Durable-state surface: what survives a power cut, and the cut itself.
//
// The durable state of the storage complex is exactly what physically lives
// in the NAND array — block erase counts, programmed-page bitmaps and
// in-order pointers, page payloads, per-page OOB stamps, and the grown
// bad-block table. Everything else (pending deferred bookkeeping, staged
// page buffers, pooled carriers, accounting not yet applied) is firmware
// RAM and is discarded by PowerLoss.

// OOBInfo is the readable view of one page's out-of-band metadata, the
// input to mount-time FTL recovery.
type OOBInfo struct {
	// FI is the FTL-defined logical tag stamped at program time (the
	// forward-map index of the logical sub-page), or -1 for raw/untagged
	// programs.
	FI int64
	// Seq is the device-wide write sequence number: among pages claiming
	// the same FI, the highest sequence holds the current data.
	Seq uint64
	// Good reports the modeled checksum verdict: false marks a torn
	// program (the power cut interrupted the array operation), which
	// recovery must treat as unwritten.
	Good bool
	// Stripe is the RAIN stripe-membership mask stamped on parity pages
	// (bit i: data plane i of the parity group is covered), zero for data
	// and non-RAIN pages. Mount rebuilds parity membership from it.
	Stripe uint32
}

// PageOOB returns the OOB metadata of the page at addr. Pages never
// programmed since their block's last erase return FI -1, Seq 0.
func (f *Flash) PageOOB(addr Address) OOBInfo {
	o := &f.oob[f.geo.PageIndex(addr)]
	return OOBInfo{FI: o.fi, Seq: o.seq, Good: o.good, Stripe: o.stripe}
}

// SetPageStripe stamps the written page at addr with a RAIN stripe
// membership mask. The stamp is part of the page's OOB metadata, written
// by the same array operation as the parity payload — callers invoke it in
// the same serial section as the parity program, and a power cut that
// tears the program clears the whole stamp (good=false) with it.
func (f *Flash) SetPageStripe(addr Address, mask uint32) {
	f.oob[f.geo.PageIndex(addr)].stripe = mask
}

// TamperOOB corrupts one field of a page's OOB stamp, selected by mode
// (modulo the field count): flip the checksum verdict, bit-flip the
// logical tag, the sequence number, the payload checksum, or the stripe
// mask. A test-only hook for fuzzing mount-time recovery against torn and
// bit-rotted OOB images; it models silent spare-area corruption, so no
// counters or epochs move.
func (f *Flash) TamperOOB(pageIdx int64, mode uint8) {
	if pageIdx < 0 || pageIdx >= int64(len(f.oob)) {
		return
	}
	o := &f.oob[pageIdx]
	switch mode % 5 {
	case 0:
		o.good = !o.good
	case 1:
		o.fi ^= 1 << (mode % 32)
	case 2:
		o.seq ^= 1 << (mode % 48)
	case 3:
		o.sum ^= 1 << (mode % 64)
	case 4:
		o.stripe ^= 1 << (mode % 16)
	}
}

// VerifyPage recomputes the modeled OOB checksum of the written page at
// addr against its stored payload: false marks a torn program. Pages
// stamped without tracked data (sum 0) verify trivially — their torn state
// is carried by the Good flag alone.
func (f *Flash) VerifyPage(addr Address) bool {
	pageIdx := f.geo.PageIndex(addr)
	o := &f.oob[pageIdx]
	if !o.good {
		return false
	}
	if !f.trackData || o.sum == 0 {
		return true
	}
	data := f.data[int(pageIdx/f.pagesPerC)].get(f.chanLocal(pageIdx))
	if data == nil {
		return false
	}
	return oobSum(data) == o.sum
}

// MarkBadBlock records the block at global index bi in the durable grown
// bad-block table, in call order. Idempotent. The FTL's retire hook calls
// it for every plane block of a retired super-block, which is what lets
// Mount rebuild the retirement order (and the read-only latch) from flash
// state alone.
func (f *Flash) MarkBadBlock(bi int) {
	blk := &f.blocks[bi]
	if blk.bad {
		return
	}
	blk.bad = true
	f.badOrder = append(f.badOrder, int32(bi))
}

// IsBadBlock reports whether the block at global index bi is in the grown
// bad-block table.
func (f *Flash) IsBadBlock(bi int) bool { return f.blocks[bi].bad }

// BadBlocks returns the grown bad-block table: global block indices in the
// order they were marked.
func (f *Flash) BadBlocks() []int {
	out := make([]int, len(f.badOrder))
	for i, bi := range f.badOrder {
		out[i] = int(bi)
	}
	return out
}

// WriteSeq returns the device-wide write sequence counter (the source of
// OOB sequence stamps).
func (f *Flash) WriteSeq() uint64 { return f.progSeq }

// PowerLossReport summarizes how a power cut resolved the storage state.
type PowerLossReport struct {
	// InFlight counts programs whose array operation had not completed at
	// the cut time and were resolved by the seeded torn-or-committed draw.
	InFlight int
	// Torn counts in-flight programs resolved as torn: their OOB checksum
	// is marked bad and their payload is lost, so mount-time recovery
	// treats the page as unwritten.
	Torn int
	// Committed counts in-flight programs resolved as committed: the array
	// operation latched enough charge that the page reads back intact.
	Committed int
	// ErasesUndone counts claimed erases whose array operation had not yet
	// started at the cut: the block never physically erased, so its
	// pre-erase contents (typically GC-migration sources whose copies were
	// still in flight) are restored.
	ErasesUndone int
}

// landPending installs the staged bytes of a not-yet-dispatched deferred
// program into the tracked arena, so the page's durable payload survives
// the batch carrier being dropped at a power cut. The checksum guard keeps
// it honest: if the page's current OOB stamp is not the staged program's
// (an undone erase restored an older generation over it), the staged bytes
// belong to a program that never physically started and must not land.
func (f *Flash) landPending(pageIdx int64) {
	if !f.trackData {
		return
	}
	ch := int(pageIdx / f.pagesPerC)
	m := f.pendingProg[ch]
	if m == nil {
		return
	}
	ref, ok := m[pageIdx]
	if !ok {
		return
	}
	rec := &ref.batch.ops[ref.idx]
	if rec.hasData {
		if oobSum(rec.buf) == f.oob[pageIdx].sum {
			f.data[ch].put(f.chanLocal(pageIdx), rec.buf)
		}
	} else if f.oob[pageIdx].sum == 0 {
		f.data[ch].clearRange(f.chanLocal(pageIdx), 1)
	}
}

// PowerLoss cuts power at simulated time now: every program whose array
// operation would complete after the cut is resolved torn-or-committed by
// a pure seeded draw (see tornDraw), torn pages lose their payload and
// their OOB checksum, pending erase presence-clears are applied (an
// interrupted erase completes — the model's deterministic resolution
// rule), and all volatile firmware-side state — pending install indexes,
// pooled deferred carriers, staged page buffers — is discarded.
//
// The caller must have stopped dispatching events first (sim.Engine.Halt):
// every deferred bookkeeping event still queued is abandoned, which is the
// point — that bookkeeping was firmware RAM. Because the in-flight set is
// decided purely by comparing each page's OOB completion stamp against the
// cut time, and the draw is a pure function of (seed, page, write
// sequence), the resolution is identical at any dispatch parallelism.
func (f *Flash) PowerLoss(now sim.Time, seed uint64) PowerLossReport {
	var rep PowerLossReport
	// Un-erase blocks whose erase claim's array operation starts after the
	// cut: the functional reset applied at claim time (the in-order pointer
	// must reset before later claims target the block), but physically the
	// erase never began — the block still holds its data, which may be the
	// only durable copy of migrations still in flight. Newest-first so
	// stacked claims against one block settle on the oldest snapshot. The
	// tracked arena needs no restore: every mutation that could follow the
	// claim (the erase's presence clear, re-program installs) rides batch
	// events at completion times after the cut, all abandoned.
	for i := len(f.eraseUndo) - 1; i >= 0; i-- {
		u := f.eraseUndo[i]
		if u.done || u.start <= now {
			continue
		}
		blk := &f.blocks[u.bi]
		blk.eraseCount = u.eraseCount
		blk.disturb = u.disturb
		blk.nextPage = u.nextPage
		copy(blk.written, u.written)
		base := int64(u.bi) * int64(f.geo.PagesPerBlock)
		copy(f.oob[base:base+int64(f.geo.PagesPerBlock)], u.oob)
		rep.ErasesUndone++
	}
	f.eraseUndo = nil
	for bi := range f.blocks {
		blk := &f.blocks[bi]
		base := int64(bi) * int64(f.geo.PagesPerBlock)
		for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
			pageIdx := base + int64(pg)
			if !blk.written[pg] {
				// Unwritten (possibly erased with the presence clear still
				// queued in an abandoned event): settle the durable state.
				if f.trackData {
					ch := int(pageIdx / f.pagesPerC)
					f.data[ch].clearRange(f.chanLocal(pageIdx), 1)
				}
				f.oob[pageIdx] = pageOOB{fi: -1}
				continue
			}
			o := &f.oob[pageIdx]
			if o.doneAt <= now {
				// Completed before the cut: durable as-is. The bytes may
				// still be staged though — a die batch dispatches at its
				// LAST completion, so an abandoned batch can hold installs
				// for programs that finished before the cut.
				f.landPending(pageIdx)
				continue
			}
			rep.InFlight++
			if tornDraw(seed, pageIdx, o.seq) {
				rep.Torn++
				o.good = false
				o.sum = 0
				if f.trackData {
					ch := int(pageIdx / f.pagesPerC)
					f.data[ch].clearRange(f.chanLocal(pageIdx), 1)
				}
				continue
			}
			rep.Committed++
			f.landPending(pageIdx)
		}
	}
	// Drop all volatile firmware-side state: pending install indexes and
	// every pooled carrier (abandoned queued events still reference some of
	// them; the fresh pools make reuse impossible).
	if f.pendingProg != nil {
		for ch := range f.pendingProg {
			f.pendingProg[ch] = nil
		}
	}
	for ch := range f.readOps {
		f.readOps[ch] = nil
		f.dieOps[ch] = nil
		f.pageBufs[ch] = nil
	}
	for i := range f.plan.dies {
		f.plan.dies[i] = nil
	}
	f.plan.used = f.plan.used[:0]
	f.plan.e, f.plan.doms, f.plan.open = nil, nil, false
	f.epoch++ // the cut is a functional state transition
	return rep
}
