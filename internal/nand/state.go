package nand

import (
	"fmt"

	"amber/internal/sim"
	"amber/internal/snap"
)

// EncodeState serializes the flash's complete functional and timing state —
// block condition, OOB stamps, tracked payloads, per-channel counters and
// energy, resource reservations, the ISPP jitter cursor, the fault model's
// counters and site log, and the bad-block table — so a restored flash
// continues byte-identically. The engine must be drained: pending deferred
// installs are volatile carrier state and have no serialized form (the
// caller checks QuiescedForSnapshot).
func (f *Flash) EncodeState(e *snap.Enc) {
	for _, r := range f.channels {
		encodeResource(e, r)
	}
	for _, r := range f.dies {
		encodeResource(e, r)
	}
	for i := range f.blocks {
		blk := &f.blocks[i]
		e.U64(uint64(blk.eraseCount))
		e.U64(uint64(blk.disturb))
		e.I64(int64(blk.nextPage))
		e.Bool(blk.bad)
		for _, w := range blk.written {
			e.Bool(w)
		}
	}
	for i := range f.blocks {
		blk := &f.blocks[i]
		base := int64(i) * int64(f.geo.PagesPerBlock)
		for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
			if !blk.written[pg] {
				continue // invariant: unwritten pages carry the zero OOB
			}
			o := &f.oob[base+int64(pg)]
			e.I64(o.fi)
			e.U64(o.seq)
			e.I64(int64(o.doneAt))
			e.U64(o.sum)
			e.Bool(o.good)
			e.U64(uint64(o.stripe))
		}
	}
	e.Bool(f.trackData)
	if f.trackData {
		for ch := range f.data {
			a := f.data[ch]
			var n uint64
			for idx := int64(0); idx < f.pagesPerC; idx++ {
				if a.has(idx) {
					n++
				}
			}
			e.U64(n)
			for idx := int64(0); idx < f.pagesPerC; idx++ {
				if a.has(idx) {
					e.I64(idx)
					e.Blob(a.get(idx))
				}
			}
		}
	}
	for i := range f.chStats {
		encodeFlashStats(e, &f.chStats[i])
	}
	for _, v := range f.chEnergy {
		e.F64(v)
	}
	e.U64(f.epoch)
	e.U64(f.progSeq)
	st := f.rng.State()
	for _, s := range st {
		e.U64(s)
	}
	e.U64(uint64(len(f.badOrder)))
	for _, bi := range f.badOrder {
		e.I64(int64(bi))
	}
	e.Bool(f.faults != nil)
	if f.faults != nil {
		m := f.faults
		e.U64(m.stats.ProgramFails)
		e.U64(m.stats.EraseFails)
		e.U64(m.stats.Uncorrectable)
		e.U64(m.stats.ReadRetries)
		e.U64(uint64(len(m.sites)))
		for _, s := range m.sites {
			e.Int(int(s.Op))
			encodeAddr(e, s.Addr)
			e.U64(uint64(s.EraseCount))
		}
	}
}

// DecodeState reinstalls a state captured by EncodeState into f, which must
// be freshly constructed with the identical geometry, options and fault
// configuration (the image fingerprint enforces this upstream). On error f
// is left partially written and must be discarded — callers decode into a
// scratch device and swap on success.
func (f *Flash) DecodeState(d *snap.Dec) error {
	for _, r := range f.channels {
		decodeResource(d, r)
	}
	for _, r := range f.dies {
		decodeResource(d, r)
	}
	for i := range f.blocks {
		blk := &f.blocks[i]
		blk.eraseCount = uint32(d.U64())
		blk.disturb = uint32(d.U64())
		blk.nextPage = int32(d.I64())
		blk.bad = d.Bool()
		for pg := range blk.written {
			blk.written[pg] = d.Bool()
		}
	}
	for i := range f.blocks {
		blk := &f.blocks[i]
		base := int64(i) * int64(f.geo.PagesPerBlock)
		for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
			o := &f.oob[base+int64(pg)]
			if !blk.written[pg] {
				*o = pageOOB{fi: -1}
				continue
			}
			o.fi = d.I64()
			o.seq = d.U64()
			o.doneAt = sim.Time(d.I64())
			o.sum = d.U64()
			o.good = d.Bool()
			o.stripe = uint32(d.U64())
		}
	}
	if tracked := d.Bool(); d.Err() == nil && tracked != f.trackData {
		return fmt.Errorf("%w: image tracks data %v, device %v", snap.ErrMismatch, tracked, f.trackData)
	}
	if f.trackData {
		for ch := range f.data {
			a := f.data[ch]
			n := d.Len(int(f.pagesPerC))
			for i := 0; i < n; i++ {
				idx := d.I64()
				buf := d.Blob()
				if d.Err() != nil {
					return d.Err()
				}
				if idx < 0 || idx >= f.pagesPerC {
					return fmt.Errorf("%w: arena page index %d out of range", snap.ErrCorrupt, idx)
				}
				if len(buf) != f.geo.PageSize {
					return fmt.Errorf("%w: arena page of %d bytes, want %d", snap.ErrCorrupt, len(buf), f.geo.PageSize)
				}
				a.put(idx, buf)
			}
		}
	}
	for i := range f.chStats {
		decodeFlashStats(d, &f.chStats[i])
	}
	for i := range f.chEnergy {
		f.chEnergy[i] = d.F64()
	}
	f.epoch = d.U64()
	f.progSeq = d.U64()
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	f.rng.SetState(st)
	nBad := d.Len(len(f.blocks))
	f.badOrder = f.badOrder[:0]
	for i := 0; i < nBad; i++ {
		bi := d.I64()
		if d.Err() != nil {
			return d.Err()
		}
		if bi < 0 || bi >= int64(len(f.blocks)) {
			return fmt.Errorf("%w: bad-block index %d out of range", snap.ErrCorrupt, bi)
		}
		f.badOrder = append(f.badOrder, int32(bi))
	}
	if hasFaults := d.Bool(); d.Err() == nil && hasFaults != (f.faults != nil) {
		return fmt.Errorf("%w: image fault model armed %v, device %v", snap.ErrMismatch, hasFaults, f.faults != nil)
	}
	if f.faults != nil {
		m := f.faults
		m.stats.ProgramFails = d.U64()
		m.stats.EraseFails = d.U64()
		m.stats.Uncorrectable = d.U64()
		m.stats.ReadRetries = d.U64()
		nSites := d.Len(maxFaultSites)
		m.sites = m.sites[:0]
		for i := 0; i < nSites; i++ {
			var s FaultSite
			s.Op = OpKind(d.Int())
			s.Addr = decodeAddr(d)
			s.EraseCount = uint32(d.U64())
			m.sites = append(m.sites, s)
		}
	}
	return d.Err()
}

// QuiescedForSnapshot reports nil when no deferred bookkeeping is in
// flight, the precondition for EncodeState (pending installs are volatile
// carrier state with no serialized form).
func (f *Flash) QuiescedForSnapshot() error {
	if f.plan.open {
		return fmt.Errorf("nand: snapshot with a plan batch open")
	}
	for ch := range f.pendingProg {
		if len(f.pendingProg[ch]) > 0 {
			return fmt.Errorf("nand: snapshot with deferred installs in flight on channel %d (drain the engine first)", ch)
		}
	}
	return nil
}

func encodeResource(e *snap.Enc, r *sim.Resource) {
	st := r.State()
	e.I64(int64(st.FreeAt))
	e.I64(int64(st.Busy))
	e.U64(st.Claims)
}

func decodeResource(d *snap.Dec, r *sim.Resource) {
	var st sim.ResourceState
	st.FreeAt = sim.Time(d.I64())
	st.Busy = sim.Duration(d.I64())
	st.Claims = d.U64()
	r.SetState(st)
}

func encodeFlashStats(e *snap.Enc, s *Stats) {
	e.U64(s.Reads)
	e.U64(s.Programs)
	e.U64(s.Erases)
	e.U64(s.BytesRead)
	e.U64(s.BytesWritten)
	e.U64(s.MultiPlaneOps)
}

func decodeFlashStats(d *snap.Dec, s *Stats) {
	s.Reads = d.U64()
	s.Programs = d.U64()
	s.Erases = d.U64()
	s.BytesRead = d.U64()
	s.BytesWritten = d.U64()
	s.MultiPlaneOps = d.U64()
}

func encodeAddr(e *snap.Enc, a Address) {
	e.Int(a.Channel)
	e.Int(a.Package)
	e.Int(a.Die)
	e.Int(a.Plane)
	e.Int(a.Block)
	e.Int(a.Page)
}

func decodeAddr(d *snap.Dec) Address {
	return Address{
		Channel: d.Int(), Package: d.Int(), Die: d.Int(),
		Plane: d.Int(), Block: d.Int(), Page: d.Int(),
	}
}
