// Package nand models the SSD storage backend: a multi-channel, multi-way
// NAND flash subsystem with per-die and per-channel contention, MLC/TLC
// page-position-dependent latencies with ISPP variation, erase-before-write
// and in-order-program enforcement, per-operation energy accounting, wear
// counters, and optional tracking of real page contents (Amber's data
// transfer emulation).
//
// The model corresponds to the paper's "storage complex" (§II-B, Fig. 2):
// packages containing dies hang off channel buses (ONFi); the set of dies at
// the same offset across channels forms a way; flash firmware spreads
// requests across channels and ways for parallelism.
package nand

import (
	"fmt"
	"strconv"

	"amber/internal/sim"
)

// CellType selects the flash technology, which determines how many latency
// classes a block's pages fall into (SLC: one, MLC: two, TLC: three).
type CellType int

// Supported flash cell technologies.
const (
	SLC CellType = iota + 1
	MLC
	TLC
)

// String returns the conventional name of the cell type.
func (c CellType) String() string {
	switch c {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(c))
	}
}

// LatencyClasses returns the number of page latency classes for the cell
// type: pages within a wordline program at different speeds (LSB fast, MSB
// slow for MLC; low/center/upper for TLC).
func (c CellType) LatencyClasses() int {
	switch c {
	case SLC:
		return 1
	case TLC:
		return 3
	default:
		return 2
	}
}

// Geometry describes the physical organization of the flash backend.
type Geometry struct {
	Channels           int // independent ONFi buses
	PackagesPerChannel int // ways
	DiesPerPackage     int
	PlanesPerDie       int
	BlocksPerPlane     int
	PagesPerBlock      int
	PageSize           int // bytes of user data per physical page
}

// Validate reports a descriptive error if any dimension is non-positive.
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("nand: geometry %s must be positive, got %d", name, v)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"PackagesPerChannel", g.PackagesPerChannel},
		{"DiesPerPackage", g.DiesPerPackage},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	return nil
}

// TotalDies returns the number of independently operating dies.
func (g Geometry) TotalDies() int {
	return g.Channels * g.PackagesPerChannel * g.DiesPerPackage
}

// TotalPlanes returns the number of planes across all dies.
func (g Geometry) TotalPlanes() int { return g.TotalDies() * g.PlanesPerDie }

// TotalBlocks returns the number of physical blocks.
func (g Geometry) TotalBlocks() int { return g.TotalPlanes() * g.BlocksPerPlane }

// TotalPages returns the number of physical pages.
func (g Geometry) TotalPages() int64 {
	return int64(g.TotalBlocks()) * int64(g.PagesPerBlock)
}

// CapacityBytes returns raw capacity in bytes.
func (g Geometry) CapacityBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// ChannelDomain names the scheduling domain (sim.Engine shard) that orders
// flash-completion events of one channel. Each channel gets its own shard
// so the dominant per-channel traffic sifts within a per-channel heap.
func ChannelDomain(channel int) string {
	return "nand.ch" + strconv.Itoa(channel)
}

// Address identifies one physical page (or, for erase, its block).
type Address struct {
	Channel int
	Package int
	Die     int
	Plane   int
	Block   int
	Page    int
}

func (a Address) String() string {
	return fmt.Sprintf("ch%d/pkg%d/die%d/pl%d/blk%d/pg%d",
		a.Channel, a.Package, a.Die, a.Plane, a.Block, a.Page)
}

// DieIndex returns the global die index of the address.
func (g Geometry) DieIndex(a Address) int {
	return (a.Channel*g.PackagesPerChannel+a.Package)*g.DiesPerPackage + a.Die
}

// PlaneIndex returns the global plane index of the address.
func (g Geometry) PlaneIndex(a Address) int {
	return g.DieIndex(a)*g.PlanesPerDie + a.Plane
}

// BlockIndex returns the global block index of the address.
func (g Geometry) BlockIndex(a Address) int {
	return g.PlaneIndex(a)*g.BlocksPerPlane + a.Block
}

// PageIndex returns the global physical page number of the address.
func (g Geometry) PageIndex(a Address) int64 {
	return int64(g.BlockIndex(a))*int64(g.PagesPerBlock) + int64(a.Page)
}

// AddressOfBlock is the inverse of BlockIndex with Page zero.
func (g Geometry) AddressOfBlock(blockIndex int) Address {
	a := Address{}
	a.Block = blockIndex % g.BlocksPerPlane
	rest := blockIndex / g.BlocksPerPlane
	a.Plane = rest % g.PlanesPerDie
	rest /= g.PlanesPerDie
	a.Die = rest % g.DiesPerPackage
	rest /= g.DiesPerPackage
	a.Package = rest % g.PackagesPerChannel
	a.Channel = rest / g.PackagesPerChannel
	return a
}

// AddressOfPage is the inverse of PageIndex.
func (g Geometry) AddressOfPage(pageIndex int64) Address {
	a := g.AddressOfBlock(int(pageIndex / int64(g.PagesPerBlock)))
	a.Page = int(pageIndex % int64(g.PagesPerBlock))
	return a
}

// CheckAddress reports an error if a falls outside the geometry.
func (g Geometry) CheckAddress(a Address) error {
	switch {
	case a.Channel < 0 || a.Channel >= g.Channels:
		return fmt.Errorf("nand: channel %d out of range [0,%d)", a.Channel, g.Channels)
	case a.Package < 0 || a.Package >= g.PackagesPerChannel:
		return fmt.Errorf("nand: package %d out of range [0,%d)", a.Package, g.PackagesPerChannel)
	case a.Die < 0 || a.Die >= g.DiesPerPackage:
		return fmt.Errorf("nand: die %d out of range [0,%d)", a.Die, g.DiesPerPackage)
	case a.Plane < 0 || a.Plane >= g.PlanesPerDie:
		return fmt.Errorf("nand: plane %d out of range [0,%d)", a.Plane, g.PlanesPerDie)
	case a.Block < 0 || a.Block >= g.BlocksPerPlane:
		return fmt.Errorf("nand: block %d out of range [0,%d)", a.Block, g.BlocksPerPlane)
	case a.Page < 0 || a.Page >= g.PagesPerBlock:
		return fmt.Errorf("nand: page %d out of range [0,%d)", a.Page, g.PagesPerBlock)
	}
	return nil
}

// Timing holds the flash transaction timing model (Table I and §V-A): page
// read (tR) and program (tPROG) ranges whose endpoints are the fast/slow
// page-class latencies, block erase time, ONFi channel transfer rate and
// command/address overhead.
type Timing struct {
	ReadFast   sim.Duration // tR for the fastest page class
	ReadSlow   sim.Duration // tR for the slowest page class
	ProgFast   sim.Duration // tPROG for the fastest page class
	ProgSlow   sim.Duration // tPROG for the slowest page class
	Erase      sim.Duration // tERASE
	BusMTps    float64      // channel transfer rate in megatransfers/s (8-bit bus: 1 MT = 1 byte)
	CmdCycles  sim.Duration // command + address phase occupancy on the channel
	ISPPJitter float64      // +/- fractional jitter applied to tPROG draws (incremental step pulse programming)
}

// Validate reports an error for non-physical timing parameters.
func (t Timing) Validate() error {
	if t.ReadFast == 0 || t.ProgFast == 0 || t.Erase == 0 {
		return fmt.Errorf("nand: timing must set ReadFast, ProgFast and Erase")
	}
	if t.ReadSlow < t.ReadFast || t.ProgSlow < t.ProgFast {
		return fmt.Errorf("nand: slow latencies must be >= fast latencies")
	}
	if t.BusMTps <= 0 {
		return fmt.Errorf("nand: BusMTps must be positive, got %v", t.BusMTps)
	}
	if t.ISPPJitter < 0 || t.ISPPJitter >= 1 {
		return fmt.Errorf("nand: ISPPJitter must be in [0,1), got %v", t.ISPPJitter)
	}
	return nil
}

// BusBytesPerSecond returns the channel bandwidth in bytes per second.
func (t Timing) BusBytesPerSecond() float64 { return t.BusMTps * 1e6 }

// XferTime returns channel occupancy for moving n bytes of page data.
func (t Timing) XferTime(n int) sim.Duration {
	return sim.TransferTime(int64(n), t.BusBytesPerSecond())
}

// Power holds the per-operation energy model for the storage complex
// (NANDFlashSim-style): array access energies plus per-byte transfer energy
// between the internal DRAM and each package's row buffer, and per-die
// leakage.
type Power struct {
	ReadEnergyJ        float64 // array read (tR) energy per page
	ProgEnergyJ        float64 // program energy per page
	EraseEnergyJ       float64 // erase energy per block
	XferEnergyJPerByte float64
	LeakageWPerDie     float64
}

// OpKind distinguishes flash transactions.
type OpKind int

// Flash transaction kinds.
const (
	OpRead OpKind = iota + 1
	OpProgram
	OpErase
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Result reports the timing of one flash transaction.
type Result struct {
	Start sim.Time // when the transaction began occupying its first resource
	Ready sim.Time // when the die finished the array operation
	Done  sim.Time // when the transaction fully completed (incl. data transfer)
}

// Latency returns Done minus the submission time it was computed against.
func (r Result) Latency(submitted sim.Time) sim.Duration {
	if r.Done < submitted {
		return 0
	}
	return r.Done - submitted
}

// Stats aggregates flash activity.
type Stats struct {
	Reads         uint64
	Programs      uint64
	Erases        uint64
	BytesRead     uint64
	BytesWritten  uint64
	MultiPlaneOps uint64
}

// blockState tracks per-block physical condition.
type blockState struct {
	eraseCount uint32
	// disturb counts reads of the block since its last erase, the
	// accumulated read-disturb stress. Only maintained when
	// FaultConfig.ReadDisturbLimit is set; erase resets it (a fresh
	// program cycle starts unstressed). Durable: real disturb is charge
	// displacement in the array, which a power cut does not undo.
	disturb  uint32
	nextPage int32 // next programmable page (in-order constraint); PagesPerBlock means full
	written  []bool
	// bad marks a grown bad block: durable (it survives power loss — real
	// firmware keeps a bad-block table in flash), recorded by MarkBadBlock
	// when the FTL retires the block's super-block.
	bad bool
}

// pageOOB models the out-of-band (spare) area real NAND pages carry: the
// firmware stamps every program with the owning logical sub-page (fi, an
// FTL-defined tag; -1 for untagged raw programs), a device-wide
// monotonically increasing write sequence number, and a payload checksum.
// Mount-time recovery rebuilds the whole mapping table from these stamps
// alone: the highest sequence number wins a logical sub-page, and a failed
// checksum (modeled by the good flag, cleared when a power cut tears the
// program) marks the page unwritten. doneAt records when the array
// operation completes, which is what decides whether a power cut at time T
// caught the program in flight.
type pageOOB struct {
	fi     int64
	seq    uint64
	doneAt sim.Time
	sum    uint64
	good   bool
	// stripe tags a RAIN parity page with its stripe membership mask (bit
	// i set: data plane i of the page's parity group is covered). Zero for
	// data and non-RAIN pages. Durable, like every OOB stamp, so mount
	// rebuilds parity membership from flash alone.
	stripe uint32
}

// oobSum is the modeled payload checksum: FNV-1a over the page bytes. Pages
// programmed without tracked data carry sum 0 and skip verification.
func oobSum(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// arenaChunkPages is the number of physical pages per arena chunk. Chunks
// are sized so a typical working set touches a handful of large contiguous
// allocations instead of one small allocation (plus map bucket churn) per
// programmed page.
const arenaChunkPages = 256

// pageArena stores tracked page contents in lazily allocated fixed-size
// chunks indexed by global physical page number, with a presence bitmap.
// Compared to the map[int64][]byte it replaces, it performs zero
// allocations per program in steady state and erases a block by clearing
// presence bits instead of deleting map entries page by page.
type pageArena struct {
	pageSize int
	chunks   [][]byte // chunk i covers pages [i*arenaChunkPages, (i+1)*arenaChunkPages)
	present  []uint64 // one bit per physical page
}

func newPageArena(totalPages int64, pageSize int) *pageArena {
	nChunks := (totalPages + arenaChunkPages - 1) / arenaChunkPages
	return &pageArena{
		pageSize: pageSize,
		chunks:   make([][]byte, nChunks),
		present:  make([]uint64, (totalPages+63)/64),
	}
}

// slot returns the storage for page idx, allocating its chunk on first use.
func (a *pageArena) slot(idx int64) []byte {
	ci := idx / arenaChunkPages
	if a.chunks[ci] == nil {
		a.chunks[ci] = make([]byte, arenaChunkPages*a.pageSize)
	}
	off := int(idx%arenaChunkPages) * a.pageSize
	return a.chunks[ci][off : off+a.pageSize]
}

func (a *pageArena) has(idx int64) bool {
	return a.present[idx/64]&(1<<(uint(idx)%64)) != 0
}

// put stores data (shorter payloads are zero-padded) as page idx's contents.
func (a *pageArena) put(idx int64, data []byte) {
	dst := a.slot(idx)
	n := copy(dst, data)
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
	a.present[idx/64] |= 1 << (uint(idx) % 64)
}

// get returns page idx's contents, or nil when nothing was stored.
func (a *pageArena) get(idx int64) []byte {
	if !a.has(idx) {
		return nil
	}
	return a.slot(idx)
}

// clearRange drops presence for pages [base, base+n). The chunk bytes stay
// allocated for reuse by the block's next program cycle.
func (a *pageArena) clearRange(base int64, n int) {
	for idx := base; idx < base+int64(n); idx++ {
		a.present[idx/64] &^= 1 << (uint(idx) % 64)
	}
}

// Flash is the storage complex. Programs, erases and synchronous reads are
// not safe for concurrent use; the deferred completion events that
// ReadDeferred, ProgramDeferred and EraseDeferred schedule touch only
// per-channel state (the channel-indexed accumulators below, the channel's
// own tracked-data arena and pending-install index), so an engine with the
// channel domains marked domain-local may dispatch completions of
// different channels concurrently (sim.Engine.RunParallel).
type Flash struct {
	geo  Geometry
	tim  Timing
	pow  Power
	cell CellType

	channels []*sim.Resource // one per channel bus
	dies     []*sim.Resource // one per die
	blocks   []blockState

	// oob holds the per-page out-of-band metadata, indexed by global
	// physical page number; progSeq is the device-wide write sequence
	// counter its stamps draw from. Both are durable across power loss.
	oob     []pageOOB
	progSeq uint64

	// badOrder lists grown bad blocks (global block indices) in the order
	// MarkBadBlock recorded them — the durable bad-block table mount-time
	// recovery rebuilds the FTL retirement order from.
	badOrder []int32

	trackData bool
	// data holds one tracked-page arena per channel, indexed by
	// channel-local physical page number (the channel is the geometry's
	// most significant dimension, so each channel's pages are one
	// contiguous global range). The split keeps chunk allocations and
	// presence-bitmap words channel-disjoint, which is what lets deferred
	// program installs and erase clears of different channels run
	// concurrently inside one parallel window.
	data      []*pageArena
	pagesPerC int64 // physical pages per channel

	rng *sim.RNG

	// faults draws injected program/erase/read failures; nil when fault
	// injection is disabled, so the hot paths pay one nil check. All draws
	// and stat updates happen in serial sections (issue time), never inside
	// deferred completion events.
	faults *faultModel

	// Activity counters and dynamic energy are accumulated per channel and
	// merged (in channel order, so float sums stay deterministic) by
	// Stats/EnergyJoules: a channel's deferred completion events may then
	// run concurrently with other channels' without sharing a counter.
	chStats  []Stats
	chEnergy []float64

	// readOps pools deferred read-completion carriers per channel, dieOps
	// the per-die plan-batch carriers and pageBufs their staging buffers:
	// acquire happens at schedule time (serial sections), release inside
	// the channel's own completion event, so the free lists never cross
	// shards.
	readOps  [][]*readCompletion
	dieOps   [][]*dieBatch
	pageBufs [][][]byte

	// plan is the reusable accumulation context for BeginPlan (one plan
	// executes at a time; its committed die batches stay in flight
	// independently). domScratch backs the single-op deferred wrappers'
	// domain table.
	plan       PlanBatch
	domScratch []sim.DomainID

	// epoch counts functional block-state transitions (programs and erases,
	// on any path — synchronous, deferred, batched). It backs the certified
	// plan fast path: an executor that recorded the epoch after its last
	// plan can tell with one comparison whether anything else (raw OCSSD
	// ops, another executor) has mutated the flash since, which would break
	// the lockstep its certificates assume. Reads never bump it.
	epoch uint64

	// eraseUndo snapshots the durable state each claimed erase destroys,
	// until the erase's array operation has verifiably started. The
	// functional reset applies at claim time (later claims against the
	// block need the in-order pointer reset), but physically the block
	// still holds its data until the array operation begins — a power cut
	// before that start means the erase never happened, and PowerLoss
	// restores the snapshot so data still being migrated off the block
	// survives the cut. Records are pruned once the dispatch clock passes
	// their start (from then on any cut catches the erase mid-operation,
	// which the model resolves as completed). eraseUndoPool recycles
	// pruned records so the steady-state deferred erase path stays
	// allocation-free.
	eraseUndo     []*eraseUndoRec
	eraseUndoPool []*eraseUndoRec

	// pendingProg indexes, per channel, the deferred program installs that
	// have been issued but whose batch event has not yet dispatched: global
	// physical page number -> the batch record holding the staged bytes.
	// Serial sections consult it when staging a read of the same page (the
	// die register already latched the data), and the channel's own batch
	// event removes its entry — the two access classes never overlap in
	// time, and other channels' events never touch it. Nil maps until a
	// channel's first tracked deferred program.
	pendingProg []map[int64]pendingRef
}

// pendingRef locates one pending program-install record: the in-flight die
// batch and the record's index within it (indices stay valid while the
// record slice grows; element pointers would not).
type pendingRef struct {
	batch *dieBatch
	idx   int32
}

// Options configures optional Flash behavior.
type Options struct {
	// TrackData keeps real page contents so reads return the bytes last
	// programmed. Tests and data-integrity checks enable it; large
	// performance sweeps leave it off to bound memory.
	TrackData bool
	// Seed drives the ISPP jitter stream.
	Seed uint64
	// Faults configures deterministic fault injection. The zero value
	// disables it.
	Faults FaultConfig
}

// New constructs a Flash from a validated geometry, timing and power model.
func New(geo Geometry, tim Timing, pow Power, cell CellType, opt Options) (*Flash, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if err := tim.Validate(); err != nil {
		return nil, err
	}
	if cell.LatencyClasses() == 0 {
		return nil, fmt.Errorf("nand: invalid cell type %v", cell)
	}
	if err := opt.Faults.Validate(); err != nil {
		return nil, err
	}
	f := &Flash{
		geo:       geo,
		tim:       tim,
		pow:       pow,
		cell:      cell,
		trackData: opt.TrackData,
		rng:       sim.NewRNG(opt.Seed ^ 0xa3b1), // decorrelate from other consumers of the same seed
	}
	if opt.Faults.Enabled() {
		f.faults = newFaultModel(opt.Faults, tim)
	}
	f.channels = make([]*sim.Resource, geo.Channels)
	for i := range f.channels {
		f.channels[i] = sim.NewResource(fmt.Sprintf("nand.ch%d", i))
	}
	f.dies = make([]*sim.Resource, geo.TotalDies())
	for i := range f.dies {
		f.dies[i] = sim.NewResource(fmt.Sprintf("nand.die%d", i))
	}
	f.blocks = make([]blockState, geo.TotalBlocks())
	for i := range f.blocks {
		f.blocks[i].written = make([]bool, geo.PagesPerBlock)
	}
	f.oob = make([]pageOOB, geo.TotalPages())
	for i := range f.oob {
		f.oob[i].fi = -1
	}
	f.chStats = make([]Stats, geo.Channels)
	f.chEnergy = make([]float64, geo.Channels)
	f.readOps = make([][]*readCompletion, geo.Channels)
	f.dieOps = make([][]*dieBatch, geo.Channels)
	f.pageBufs = make([][][]byte, geo.Channels)
	f.pagesPerC = geo.TotalPages() / int64(geo.Channels)
	f.plan.f = f
	f.plan.dies = make([]*dieBatch, geo.TotalDies())
	if opt.TrackData {
		f.data = make([]*pageArena, geo.Channels)
		for ch := range f.data {
			f.data[ch] = newPageArena(f.pagesPerC, geo.PageSize)
		}
		f.pendingProg = make([]map[int64]pendingRef, geo.Channels)
	}
	return f, nil
}

// chanLocal converts a global physical page number to its channel-local
// arena index.
func (f *Flash) chanLocal(pageIdx int64) int64 { return pageIdx % f.pagesPerC }

// TrackData reports whether the flash stores real page contents.
func (f *Flash) TrackData() bool { return f.trackData }

// StateEpoch returns the functional block-state epoch: a counter bumped by
// every program and erase at issue time, on every path. Two equal readings
// with no plan execution in between prove no block state changed — the
// staleness check behind fil's certified-plan fast path.
func (f *Flash) StateEpoch() uint64 { return f.epoch }

// Geometry returns the physical organization.
func (f *Flash) Geometry() Geometry { return f.geo }

// Timing returns the timing model.
func (f *Flash) Timing() Timing { return f.tim }

// Stats returns the activity counters, merged over the per-channel
// accumulators in channel order.
func (f *Flash) Stats() Stats {
	var s Stats
	for i := range f.chStats {
		c := &f.chStats[i]
		s.Reads += c.Reads
		s.Programs += c.Programs
		s.Erases += c.Erases
		s.BytesRead += c.BytesRead
		s.BytesWritten += c.BytesWritten
		s.MultiPlaneOps += c.MultiPlaneOps
	}
	return s
}

// ChannelStats returns channel ch's activity counters.
func (f *Flash) ChannelStats(ch int) Stats { return f.chStats[ch] }

// EnergyJoules returns dynamic energy consumed so far (excluding leakage),
// merged over the per-channel accumulators in channel order so the
// floating-point sum is identical at any dispatch parallelism.
func (f *Flash) EnergyJoules() float64 {
	var e float64
	for _, v := range f.chEnergy {
		e += v
	}
	return e
}

// TotalEnergyJoules returns dynamic plus leakage energy over the elapsed
// simulated time.
func (f *Flash) TotalEnergyJoules(elapsed sim.Duration) float64 {
	return f.EnergyJoules() + f.pow.LeakageWPerDie*float64(f.geo.TotalDies())*elapsed.Seconds()
}

// AveragePowerW returns average power over the elapsed simulated time.
func (f *Flash) AveragePowerW(elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return f.TotalEnergyJoules(elapsed) / elapsed.Seconds()
}

// EraseCount returns the erase count of the block containing a.
func (f *Flash) EraseCount(a Address) uint32 {
	return f.blocks[f.geo.BlockIndex(a)].eraseCount
}

// pageClass returns the latency class of a page within its block: pages are
// interleaved across classes the way LSB/CSB/MSB pages share wordlines.
func (f *Flash) pageClass(page int) int {
	return page % f.cell.LatencyClasses()
}

// readLatency returns tR for the page, interpolating between fast and slow
// classes.
func (f *Flash) readLatency(page int) sim.Duration {
	return f.classLatency(page, f.tim.ReadFast, f.tim.ReadSlow)
}

// progLatency returns tPROG for the page with ISPP jitter applied.
func (f *Flash) progLatency(page int) sim.Duration {
	base := f.classLatency(page, f.tim.ProgFast, f.tim.ProgSlow)
	if f.tim.ISPPJitter == 0 {
		return base
	}
	// ISPP: the number of program pulses varies with cell condition, so the
	// latency jitters around its class nominal.
	factor := 1 + f.rng.Range(-f.tim.ISPPJitter, f.tim.ISPPJitter)
	return sim.FromSeconds(base.Seconds() * factor)
}

func (f *Flash) classLatency(page int, fast, slow sim.Duration) sim.Duration {
	classes := f.cell.LatencyClasses()
	if classes == 1 || slow == fast {
		return fast
	}
	cl := f.pageClass(page)
	span := float64(slow-fast) / float64(classes-1)
	return fast + sim.Duration(span*float64(cl))
}

// CheckRead reports the error a read of addr would fail with (address out
// of range, page unwritten), without claiming resources or scheduling
// anything. Callers batching deferred reads validate every address first so
// a mid-batch failure cannot leave completion events queued.
func (f *Flash) CheckRead(addr Address) error {
	if err := f.geo.CheckAddress(addr); err != nil {
		return err
	}
	if !f.blocks[f.geo.BlockIndex(addr)].written[addr.Page] {
		return fmt.Errorf("%w %v", ErrUnwritten, addr)
	}
	return nil
}

// claimRead reserves the read's three phases: the command/address phase
// occupies the channel briefly, then the die runs the array read, then the
// data streams back over the channel. extra stretches the die phase with
// the read-retry ladder's cost (zero when the first rung succeeded). Shared
// by Read and ReadDeferred so the two paths can never diverge in timing.
func (f *Flash) claimRead(now sim.Time, addr Address, extra sim.Duration) (cmdStart, ready, done sim.Time) {
	ch := f.channels[addr.Channel]
	die := f.dies[f.geo.DieIndex(addr)]
	cmdStart, cmdEnd := ch.Claim(now, f.tim.CmdCycles)
	_, ready = die.Claim(cmdEnd, f.readLatency(addr.Page)+extra)
	_, done = ch.Claim(ready, f.tim.XferTime(f.geo.PageSize))
	if f.faults != nil && f.faults.cfg.ReadDisturbLimit > 0 {
		// Read disturb accrues at claim time, in the serial section — after
		// this read's own draw (taken before claimRead on every path), so a
		// read is stressed by its predecessors, never by itself.
		f.blocks[f.geo.BlockIndex(addr)].disturb++
	}
	return cmdStart, ready, done
}

// Read performs a page read: the die is busy for tR, then the channel is
// occupied streaming the page out. If data tracking is on and dst is
// non-nil, dst receives the page contents.
func (f *Flash) Read(now sim.Time, addr Address, dst []byte) (Result, error) {
	if err := f.CheckRead(addr); err != nil {
		return Result{}, err
	}
	extra, err := f.readFaultExtra(now, addr)
	if err != nil {
		return Result{}, err
	}
	cmdStart, ready, done := f.claimRead(now, addr, extra)
	f.accountRead(addr.Channel)
	f.copyOut(f.geo.PageIndex(addr), dst)
	return Result{Start: cmdStart, Ready: ready, Done: done}, nil
}

// accountRead charges one page read to the channel's counters and energy.
func (f *Flash) accountRead(channel int) {
	st := &f.chStats[channel]
	st.Reads++
	st.BytesRead += uint64(f.geo.PageSize)
	f.chEnergy[channel] += f.pow.ReadEnergyJ + f.pow.XferEnergyJPerByte*float64(f.geo.PageSize)
}

// copyOut moves tracked page contents into dst (zero-padding past what was
// stored), a no-op when data tracking is off or dst is nil. It is
// pending-aware: a deferred program whose install event has not yet
// dispatched already owns the page's future contents (the die register
// latched them at issue), so a read staged between issue and install
// observes the staged bytes — exactly the state a synchronous program
// would have left.
func (f *Flash) copyOut(pageIdx int64, dst []byte) {
	if !f.trackData || dst == nil {
		return
	}
	ch := int(pageIdx / f.pagesPerC)
	if m := f.pendingProg[ch]; m != nil {
		if ref, ok := m[pageIdx]; ok {
			rec := &ref.batch.ops[ref.idx]
			var n int
			if rec.hasData {
				n = copy(dst, rec.buf)
			}
			for i := n; i < len(dst) && i < f.geo.PageSize; i++ {
				dst[i] = 0
			}
			return
		}
	}
	stored := f.data[ch].get(f.chanLocal(pageIdx))
	n := copy(dst, stored)
	for i := n; i < len(dst) && i < f.geo.PageSize; i++ {
		dst[i] = 0
	}
}

// readCompletion carries one deferred read's per-channel bookkeeping (stats,
// energy, tracked-data copy) into the channel's scheduling domain. Pooled
// per channel with the callback bound once, so steady-state deferred reads
// schedule without allocating.
//
// buf stages the page bytes captured at issue time: the array read latches
// its data before any later erase or program can touch the block (the die
// resource serializes them), so the bytes a read returns are fixed when it
// is issued — exactly what the synchronous Read models by copying
// immediately. Deferring the dst copy without staging would instead observe
// the arena at completion time, where an interleaved GC erase + reprogram
// of the same physical page could replace the data. The staging copy runs
// in the serial section; the (equally sized) copy into dst is the
// channel-shard work that parallelizes.
type readCompletion struct {
	f      *Flash
	ch     int
	buf    []byte // page-size staging buffer, lazily allocated, reused
	staged bool   // buf holds the page bytes captured at issue
	dst    []byte
	fn     func()
}

func (f *Flash) acquireReadCompletion(ch int) *readCompletion {
	free := f.readOps[ch]
	if n := len(free); n > 0 {
		op := free[n-1]
		f.readOps[ch] = free[:n-1]
		return op
	}
	op := &readCompletion{f: f, ch: ch}
	op.fn = op.complete
	return op
}

// complete is the deferred event body. It touches only channel-owned state:
// the channel's counters and energy accumulator, the op's staged page
// bytes, the caller's destination slice, and the channel's own op pool —
// the domain-local contract that lets channels step concurrently.
func (op *readCompletion) complete() {
	f := op.f
	f.accountRead(op.ch)
	if op.staged {
		copy(op.dst, op.buf)
		op.staged = false
	}
	op.dst = nil
	f.readOps[op.ch] = append(f.readOps[op.ch], op)
}

// ReadDeferred performs a page read with the timing of Read, but defers the
// per-channel bookkeeping — counters, energy, the tracked-data copy into
// dst — to an event scheduled in dom at the transaction's completion time.
// The returned bytes are identical to Read's: the page contents are staged
// at issue time (see readCompletion.buf). The caller passes the channel's
// scheduling domain (nand.ChannelDomain); when that domain is marked
// domain-local, the engine may dispatch the completion concurrently with
// other channels' between synchronization horizons. dst must stay valid
// until an event at the returned Done time observes it (the core's fill
// install, always scheduled after this call, so it orders later among
// same-time events). An error claims nothing and schedules nothing, but
// batching callers should prevalidate with CheckRead so no earlier
// iteration has scheduled yet when a later one fails.
func (f *Flash) ReadDeferred(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte) (Result, error) {
	if err := f.CheckRead(addr); err != nil {
		return Result{}, err
	}
	extra, err := f.readFaultExtra(now, addr)
	if err != nil {
		return Result{}, err
	}
	return f.readDeferredClaimed(e, dom, now, addr, dst, extra), nil
}

// ReadDeferredPredrawn is ReadDeferred minus validation and the fault draw:
// the caller already ran both through ProbeReadExtra and passes the drawn
// retry cost in extra. This is how batching paths keep the probe-pass ⇒
// issue-pass contract once read disturb is live — the probe's draw is THE
// draw, and the issue only claims (which bumps the disturb counter for
// later reads).
func (f *Flash) ReadDeferredPredrawn(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte, extra sim.Duration) Result {
	return f.readDeferredClaimed(e, dom, now, addr, dst, extra)
}

func (f *Flash) readDeferredClaimed(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte, extra sim.Duration) Result {
	cmdStart, ready, done := f.claimRead(now, addr, extra)
	op := f.acquireReadCompletion(addr.Channel)
	op.dst = dst
	if f.trackData && dst != nil {
		if op.buf == nil {
			op.buf = make([]byte, f.geo.PageSize)
		}
		f.copyOut(f.geo.PageIndex(addr), op.buf)
		op.staged = true
	}
	e.AtIn(dom, done, op.fn)
	return Result{Start: cmdStart, Ready: ready, Done: done}
}

// ReadDeferredEager is ReadDeferred with the tracked-data copy performed at
// issue time instead of inside the channel event: dst receives the page
// bytes (pending-aware, exactly what a synchronous Read would deliver)
// before this call returns, and the deferred event carries only the
// channel's counters and energy. The bytes are fixed at issue for the same
// physical reason ReadDeferred's staging is sound — the array read latches
// its data before any later erase or program can touch the block — so eager
// delivery observes the identical bytes, and does it with one page copy
// instead of ReadDeferred's stage-then-copy pair. Because the consumer-side
// buffer is complete at issue, a continuation that reads it no longer
// depends on this channel's pending events at all: that independence is
// what lets the core's two-stage fill installs ride a channel-neutral
// publish shard (horizon batching) instead of forcing a barrier per fill.
func (f *Flash) ReadDeferredEager(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte) (Result, error) {
	if err := f.CheckRead(addr); err != nil {
		return Result{}, err
	}
	extra, err := f.readFaultExtra(now, addr)
	if err != nil {
		return Result{}, err
	}
	return f.ReadDeferredEagerPredrawn(e, dom, now, addr, dst, extra), nil
}

// ReadDeferredEagerPredrawn is ReadDeferredEager minus validation and the
// fault draw: like ReadDeferredPredrawn, the caller carries the
// ProbeReadExtra result in extra so batched probes and issues cannot
// disagree once read disturb shifts draw keys between them.
func (f *Flash) ReadDeferredEagerPredrawn(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte, extra sim.Duration) Result {
	cmdStart, ready, done := f.claimRead(now, addr, extra)
	f.copyOut(f.geo.PageIndex(addr), dst)
	op := f.acquireReadCompletion(addr.Channel) // accounting-only carrier: dst nil, staged false
	e.AtIn(dom, done, op.fn)
	return Result{Start: cmdStart, Ready: ready, Done: done}
}

// ReadDeferredEagerTrusted is ReadDeferredEager minus the per-address
// validation: no CheckRead, no read-fault ladder draw. The caller vouches
// for both — it holds a certificate that the address is in range and
// written (ftl.ReadCert: mapped ⇒ written while the certified chain is
// armed) and has verified that read-fault draws are disabled
// (ReadFaultsArmed false), so neither skipped step could have changed the
// outcome or the timing. Claims, accounting and tracked-data delivery are
// exactly ReadDeferredEager's, so the two paths can never diverge when
// both apply.
func (f *Flash) ReadDeferredEagerTrusted(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, dst []byte) Result {
	cmdStart, ready, done := f.claimRead(now, addr, 0)
	f.copyOut(f.geo.PageIndex(addr), dst)
	op := f.acquireReadCompletion(addr.Channel) // accounting-only carrier: dst nil, staged false
	e.AtIn(dom, done, op.fn)
	return Result{Start: cmdStart, Ready: ready, Done: done}
}

// planOpRec is one transaction's deferred per-channel bookkeeping inside a
// die batch: what to account and, for tracked data, what to install or
// clear when the batch event dispatches.
type planOpRec struct {
	kind      OpKind
	pageIdx   int64  // program: global page number (pendingProg key)
	pageLocal int64  // program install / erase clear base (channel-local)
	clearN    int    // erase: pages to clear from pageLocal
	buf       []byte // program: staged page bytes (pooled)
	hasData   bool
	tracked   bool // program install registered in pendingProg
}

// dieBatch accumulates every transaction one plan issues against one die
// and carries their combined per-channel bookkeeping — counters, energy,
// tracked-data installs and clears — into the owning channel's scheduling
// domain as a single event at the die's last completion time. Batching per
// die rather than per op cuts the deferred path's event count from O(plan
// ops) to O(touched dies) while preserving the serial observable state: a
// die's array operations complete in issue order (the die and channel
// resources serialize every claim), so a later plan's batch on the same
// die always carries a later (time, seq) key than an earlier plan's, and
// records within a batch apply in issue order — exactly the per-op
// dispatch order, grouped.
//
// Reads, and every op of a timing-only (no data tracking) flash, leave no
// per-op record — only the per-kind counters, replayed as individual
// accountX calls so the per-channel energy accumulation stays a same-order
// float sum at any worker count. Keeping timing-only plans record-free
// matters: large sweeps run thousands of GC ops per plan, and writing a
// record per op would drag a cache line of scratch through the hot path
// for bookkeeping that reduces to six integers.
type dieBatch struct {
	f       *Flash
	ch      int
	at      sim.Time // latest completion among the batch's transactions
	nReads  int32
	nProgs  int32 // timing-only programs (tracked programs carry records)
	nErases int32 // timing-only erases
	ops     []planOpRec
	fn      func() // op.apply, bound once
}

func (f *Flash) acquireDieBatch(ch int) *dieBatch {
	free := f.dieOps[ch]
	if n := len(free); n > 0 {
		b := free[n-1]
		f.dieOps[ch] = free[:n-1]
		return b
	}
	b := &dieBatch{f: f, ch: ch}
	b.fn = b.apply
	return b
}

// acquirePageBuf hands out a pooled page-size staging buffer owned by the
// channel (released by the channel's own batch event).
func (f *Flash) acquirePageBuf(ch int) []byte {
	free := f.pageBufs[ch]
	if n := len(free); n > 0 {
		buf := free[n-1]
		f.pageBufs[ch] = free[:n-1]
		return buf
	}
	return make([]byte, f.geo.PageSize)
}

// apply is the batch event body. It touches only channel-owned state: the
// channel's counters and energy accumulator, its arena, its pendingProg
// index and its own pools — the domain-local contract that lets channels
// step concurrently.
func (b *dieBatch) apply() {
	f := b.f
	for i := int32(0); i < b.nReads; i++ {
		f.accountRead(b.ch)
	}
	for i := int32(0); i < b.nProgs; i++ {
		f.accountProgram(b.ch)
	}
	for i := int32(0); i < b.nErases; i++ {
		f.accountErase(b.ch)
	}
	for i := range b.ops {
		rec := &b.ops[i]
		switch rec.kind {
		case OpProgram:
			f.accountProgram(b.ch)
			if rec.tracked {
				if rec.hasData {
					f.data[b.ch].put(rec.pageLocal, rec.buf)
				} else {
					f.data[b.ch].clearRange(rec.pageLocal, 1)
				}
			}
		case OpErase:
			f.accountErase(b.ch)
			if rec.clearN > 0 {
				f.data[b.ch].clearRange(rec.pageLocal, rec.clearN)
			}
		}
		b.dropRecord(i)
	}
	b.release()
}

// dropRecord withdraws record i's pending-install registration (if still
// pointing at this batch — a later erase + reprogram of the same page may
// have replaced it) and returns its staging buffer to the channel pool.
// Shared by apply (after the effects landed) and Abort (discarding them).
func (b *dieBatch) dropRecord(i int) {
	f := b.f
	rec := &b.ops[i]
	if rec.tracked {
		m := f.pendingProg[b.ch]
		if ref, ok := m[rec.pageIdx]; ok && ref.batch == b && int(ref.idx) == i {
			delete(m, rec.pageIdx)
		}
		rec.tracked = false
	}
	if rec.buf != nil {
		f.pageBufs[b.ch] = append(f.pageBufs[b.ch], rec.buf)
		rec.buf = nil
	}
	rec.hasData = false
	rec.clearN = 0
}

// release resets the batch and returns it to its channel's pool.
func (b *dieBatch) release() {
	b.ops = b.ops[:0]
	b.at = 0
	b.nReads, b.nProgs, b.nErases = 0, 0, 0
	b.f.dieOps[b.ch] = append(b.f.dieOps[b.ch], b)
}

// PlanBatch routes one plan's flash transactions through the deferred
// per-channel bookkeeping path: Read, Program and Erase have the timing and
// functional state transitions of their synchronous counterparts, but their
// counters, energy and tracked-data effects ride the owning channel's
// domain-local shard, grouped into one event per touched die and scheduled
// by Commit. Obtain with Flash.BeginPlan; a batch must end with exactly one
// Commit (schedules the events) or Abort (discards the bookkeeping after a
// caller-detected failure). Only one plan may be open per Flash at a time
// — the FIL's serial plan execution guarantees it — while committed
// batches from earlier plans may still be in flight.
type PlanBatch struct {
	f    *Flash
	e    *sim.Engine
	doms []sim.DomainID
	dies []*dieBatch // by die index, nil when untouched
	used []int32     // touched die indices, in first-touch order
	open bool
}

// BeginPlan opens the deferred batching context for one plan's flash
// transactions. chDoms[channel] names the channel's domain-local shard.
func (f *Flash) BeginPlan(e *sim.Engine, chDoms []sim.DomainID) *PlanBatch {
	b := &f.plan
	if b.open {
		panic("nand: BeginPlan with a plan already open")
	}
	b.e, b.doms, b.open = e, chDoms, true
	return b
}

// die returns (acquiring if needed) the batch for addr's die, tracking the
// die's latest completion time.
func (b *PlanBatch) die(addr Address, done sim.Time) *dieBatch {
	di := b.f.geo.DieIndex(addr)
	db := b.dies[di]
	if db == nil {
		db = b.f.acquireDieBatch(addr.Channel)
		b.dies[di] = db
		b.used = append(b.used, int32(di))
	}
	if done > db.at {
		db.at = done
	}
	return db
}

// record appends a tracked-data bookkeeping record to addr's die batch,
// returning the record and its location.
func (b *PlanBatch) record(addr Address, done sim.Time) (*planOpRec, *dieBatch, int32) {
	db := b.die(addr, done)
	db.ops = append(db.ops, planOpRec{})
	i := int32(len(db.ops) - 1)
	return &db.ops[i], db, i
}

// Read performs a page read with Read's timing, delivering the page bytes
// into dst at issue (a dependent rewrite consumes them within the same
// serial call; copyOut is pending-aware, so bytes latched by earlier
// not-yet-installed programs are observed) and batching the per-channel
// accounting. dst is not retained.
func (b *PlanBatch) Read(now sim.Time, addr Address, dst []byte) (Result, error) {
	if err := b.f.CheckRead(addr); err != nil {
		return Result{}, err
	}
	return b.readChecked(now, addr, dst)
}

// ReadTrusted is Read without the structural precheck (address bounds,
// page written): for certified plans, whose issuing FTL proved both at
// construction time against a flash it is in lockstep with. Injected
// fault draws still run — a certificate trusts the model, not the silicon.
func (b *PlanBatch) ReadTrusted(now sim.Time, addr Address, dst []byte) (Result, error) {
	return b.readChecked(now, addr, dst)
}

func (b *PlanBatch) readChecked(now sim.Time, addr Address, dst []byte) (Result, error) {
	f := b.f
	extra, err := f.readFaultExtra(now, addr)
	if err != nil {
		return Result{}, err
	}
	return b.ReadPredrawn(now, addr, dst, extra), nil
}

// ReadPredrawn is the plan-batch read minus validation and the fault draw:
// the caller carries a ProbeReadExtra result in extra. Uncertified plan
// walks use it so the prevalidation probe's draw is the authoritative one —
// issues bump disturb counters, so a re-draw at issue could disagree with
// the probe that promised the whole plan would execute.
func (b *PlanBatch) ReadPredrawn(now sim.Time, addr Address, dst []byte, extra sim.Duration) Result {
	f := b.f
	cmdStart, ready, done := f.claimRead(now, addr, extra)
	f.copyOut(f.geo.PageIndex(addr), dst)
	b.die(addr, done).nReads++
	return Result{Start: cmdStart, Ready: ready, Done: done}
}

// Program performs a page program with Program's timing and functional
// block-state transition, staging the page bytes into a pooled buffer at
// issue (the caller's buffer is not retained; reads staged before the
// batch event observe the bytes through the channel's pending-install
// index) and batching the accounting and the tracked-data install.
func (b *PlanBatch) Program(now sim.Time, addr Address, data []byte) (Result, error) {
	return b.ProgramTagged(now, addr, data, -1)
}

// ProgramTagged is Program with an OOB logical tag: the FTL-defined
// identity of the logical sub-page this program stores (fil passes the
// forward-map index), stamped into the page's out-of-band metadata so
// mount-time recovery can rebuild the mapping from flash alone. Raw and
// untagged programs pass -1.
func (b *PlanBatch) ProgramTagged(now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	if err := b.f.CheckProgram(addr); err != nil {
		return Result{}, err
	}
	return b.programChecked(now, addr, data, tag)
}

// ProgramTaggedTrusted is ProgramTagged without the structural precheck
// (address bounds, in-order program pointer): for certified plans, whose
// issuing FTL proved both at construction time. Injected fault draws still
// run.
func (b *PlanBatch) ProgramTaggedTrusted(now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	return b.programChecked(now, addr, data, tag)
}

func (b *PlanBatch) programChecked(now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	f := b.f
	if err := f.drawProgramFault(addr); err != nil {
		return Result{}, err
	}
	xferStart, done := f.claimProgram(now, addr, tag)
	if !f.trackData {
		b.die(addr, done).nProgs++
		return Result{Start: xferStart, Ready: done, Done: done}, nil
	}
	rec, db, idx := b.record(addr, done)
	rec.kind = OpProgram
	pageIdx := f.geo.PageIndex(addr)
	rec.pageIdx, rec.pageLocal = pageIdx, f.chanLocal(pageIdx)
	if data != nil {
		rec.buf = f.acquirePageBuf(addr.Channel)
		n := copy(rec.buf, data)
		for i := n; i < len(rec.buf); i++ {
			rec.buf[i] = 0
		}
		rec.hasData = true
		f.oob[pageIdx].sum = oobSum(rec.buf)
	}
	rec.tracked = true
	m := f.pendingProg[addr.Channel]
	if m == nil {
		m = make(map[int64]pendingRef)
		f.pendingProg[addr.Channel] = m
	}
	m[pageIdx] = pendingRef{batch: db, idx: idx}
	return Result{Start: xferStart, Ready: done, Done: done}, nil
}

// Erase erases the block containing addr with Erase's timing and
// functional reset, batching the accounting and the tracked-data presence
// clear. The clear applies after every earlier-completing program install
// of the same die (in-batch records keep issue order; cross-plan batches
// order by the die's serialized completions), so an erase + reprogram
// sequence converges to the synchronous arena state, and in-flight
// deferred reads are immune because they stage their bytes at issue.
func (b *PlanBatch) Erase(now sim.Time, addr Address) (Result, error) {
	f := b.f
	addr.Page = 0
	if err := f.geo.CheckAddress(addr); err != nil {
		return Result{}, err
	}
	if err := f.drawEraseFault(addr); err != nil {
		return Result{}, err
	}
	bi := f.geo.BlockIndex(addr)
	f.pruneEraseUndo(b.e.Now())
	cmdStart, done, _ := f.claimErase(now, addr)
	if !f.trackData {
		b.die(addr, done).nErases++
		return Result{Start: cmdStart, Ready: done, Done: done}, nil
	}
	rec, _, _ := b.record(addr, done)
	rec.kind = OpErase
	rec.pageLocal = f.chanLocal(int64(bi) * int64(f.geo.PagesPerBlock))
	rec.clearN = f.geo.PagesPerBlock
	return Result{Start: cmdStart, Ready: done, Done: done}, nil
}

// Commit schedules every touched die's batch as one event in its channel's
// domain at the die's latest completion time, then closes the plan
// context. The batches release themselves (and their staged buffers) back
// to their channel's pools when they dispatch.
func (b *PlanBatch) Commit() {
	for _, di := range b.used {
		db := b.dies[di]
		b.e.AtIn(b.doms[db.ch], db.at, db.fn)
		b.dies[di] = nil
	}
	b.reset()
}

// Abort discards the batched bookkeeping without scheduling it, for a
// caller abandoning a plan whose error preceded any issued transaction.
// Resource claims and functional block-state transitions made through the
// batch are not rolled back — which is why fil.ExecuteOn only Aborts for
// structural errors its prevalidation guarantees arrive with nothing
// issued; a mid-plan injected fault instead Commits the executed prefix
// (those transactions really happened) and reports a PlanFault. Pending-
// install registrations of the aborted records are withdrawn.
func (b *PlanBatch) Abort() {
	for _, di := range b.used {
		db := b.dies[di]
		for i := range db.ops {
			db.dropRecord(i)
		}
		db.release()
		b.dies[di] = nil
	}
	b.reset()
}

func (b *PlanBatch) reset() {
	b.used = b.used[:0]
	b.e, b.doms = nil, nil
	b.open = false
}

// ProgramDeferred performs a page program with the timing and functional
// block-state transition of Program, deferring the per-channel bookkeeping
// — counters, energy, the tracked-data install — to an event in dom at the
// transaction's completion time: a single-transaction PlanBatch. An error
// claims nothing and schedules nothing.
func (f *Flash) ProgramDeferred(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, data []byte) (Result, error) {
	return f.ProgramDeferredTagged(e, dom, now, addr, data, -1)
}

// ProgramDeferredTagged is ProgramDeferred with an OOB logical tag (see
// PlanBatch.ProgramTagged).
func (f *Flash) ProgramDeferredTagged(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	b := f.BeginPlan(e, nil)
	r, err := b.programIn(dom, now, addr, data, tag)
	if err != nil {
		b.Abort()
		return r, err
	}
	b.Commit()
	return r, nil
}

// EraseDeferred erases the block containing addr with the timing and
// functional reset of Erase, deferring counters, energy and the
// tracked-data presence clear into dom: a single-transaction PlanBatch.
func (f *Flash) EraseDeferred(e *sim.Engine, dom sim.DomainID, now sim.Time, addr Address) (Result, error) {
	b := f.BeginPlan(e, nil)
	r, err := b.eraseIn(dom, now, addr)
	if err != nil {
		b.Abort()
		return r, err
	}
	b.Commit()
	return r, nil
}

// programIn / eraseIn run one batch op with an explicit target domain, so
// the single-op wrappers work without a per-channel domain table.
func (b *PlanBatch) programIn(dom sim.DomainID, now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	b.domOverride(dom, addr)
	return b.ProgramTagged(now, addr, data, tag)
}

func (b *PlanBatch) eraseIn(dom sim.DomainID, now sim.Time, addr Address) (Result, error) {
	b.domOverride(dom, addr)
	return b.Erase(now, addr)
}

// domOverride points the batch's per-channel domain table at dom for
// addr's channel, using a pooled single-channel table.
func (b *PlanBatch) domOverride(dom sim.DomainID, addr Address) {
	f := b.f
	if cap(f.domScratch) < f.geo.Channels {
		f.domScratch = make([]sim.DomainID, f.geo.Channels)
	}
	b.doms = f.domScratch[:f.geo.Channels]
	b.doms[addr.Channel] = dom
}

// CheckProgram reports the error a program of addr would fail with
// (address out of range, overwrite, out-of-order page), without claiming
// resources, mutating block state or scheduling anything. Single-op
// prevalidation only: callers batching deferred programs of one plan must
// overlay in-plan state changes themselves (fil's plan prevalidation).
func (f *Flash) CheckProgram(addr Address) error {
	if err := f.geo.CheckAddress(addr); err != nil {
		return err
	}
	blk := &f.blocks[f.geo.BlockIndex(addr)]
	if blk.written[addr.Page] {
		return fmt.Errorf("%w: %v", ErrOverwrite, addr)
	}
	if int32(addr.Page) != blk.nextPage {
		return fmt.Errorf("%w: page %d at %v (next is %d)", ErrOutOfOrder, addr.Page, addr, blk.nextPage)
	}
	return nil
}

// CheckErase reports the error an erase of the block containing addr would
// fail with, without claiming resources or mutating anything.
func (f *Flash) CheckErase(addr Address) error {
	addr.Page = 0
	return f.geo.CheckAddress(addr)
}

// accountProgram charges one page program to the channel's counters and
// energy. Called exactly once per program, either synchronously (Program)
// or from the deferred completion event (ProgramDeferred).
func (f *Flash) accountProgram(channel int) {
	st := &f.chStats[channel]
	st.Programs++
	st.BytesWritten += uint64(f.geo.PageSize)
	f.chEnergy[channel] += f.pow.ProgEnergyJ + f.pow.XferEnergyJPerByte*float64(f.geo.PageSize)
}

// accountErase charges one block erase to the channel's counters and
// energy. Called exactly once per erase, like accountProgram.
func (f *Flash) accountErase(channel int) {
	f.chStats[channel].Erases++
	f.chEnergy[channel] += f.pow.EraseEnergyJ
}

// claimProgram reserves a program's two phases — the data streams over the
// channel into the die's register, then the die programs the array — and
// applies the functional block-state transition (written, in-order
// pointer), which serial sections read. It also stamps the page's OOB
// metadata: the caller's logical tag (-1 for raw untagged programs), the
// next device-wide write sequence number, and the completion time the
// power-loss cut tests against. Shared by Program and ProgramDeferred so
// the two paths can never diverge in timing or state.
func (f *Flash) claimProgram(now sim.Time, addr Address, tag int64) (xferStart, done sim.Time) {
	ch := f.channels[addr.Channel]
	die := f.dies[f.geo.DieIndex(addr)]
	xferStart, xferEnd := ch.Claim(now, f.tim.CmdCycles+f.tim.XferTime(f.geo.PageSize))
	_, done = die.Claim(xferEnd, f.progLatency(addr.Page))
	blk := &f.blocks[f.geo.BlockIndex(addr)]
	blk.written[addr.Page] = true
	blk.nextPage++
	f.epoch++
	f.progSeq++
	f.oob[f.geo.PageIndex(addr)] = pageOOB{fi: tag, seq: f.progSeq, doneAt: done, good: true}
	return xferStart, done
}

// syncMutateErr reports (wrapping ErrDeferredInFlight) when a synchronous
// tracked-data mutation targets a channel with deferred installs still in
// flight: the synchronous path applies its arena update immediately, while
// the pending batch would replay staged bytes over it later — silent data
// corruption. Mixing the paths on one channel is only legal with the engine
// drained (the map is then empty), so the guard costs one length check.
// Public entry points return this error before touching anything;
// checkNoPendingInstalls backs it as the internal invariant.
func (f *Flash) syncMutateErr(ch int) error {
	if f.pendingProg != nil && len(f.pendingProg[ch]) > 0 {
		return fmt.Errorf("%w on channel %d (drain the engine first)", ErrDeferredInFlight, ch)
	}
	return nil
}

// checkNoPendingInstalls is the internal invariant behind syncMutateErr:
// the synchronous arena mutation paths assert it immediately before
// writing, unreachable once the public entry points return the error.
func (f *Flash) checkNoPendingInstalls(ch int) {
	if f.pendingProg != nil && len(f.pendingProg[ch]) > 0 {
		panic("nand: synchronous program/erase while deferred installs are in flight on the channel (drain the engine first)")
	}
}

// Program writes one page. It enforces the flash physical constraints: the
// page must be the next in-order page of its block (no overwrite, ascending
// program order within a block for MLC/TLC disturb management). While a
// deferred plan's installs are in flight on the channel, synchronous
// programs fail with ErrDeferredInFlight.
func (f *Flash) Program(now sim.Time, addr Address, data []byte) (Result, error) {
	return f.ProgramTagged(now, addr, data, -1)
}

// ProgramTagged is Program with an OOB logical tag (see
// PlanBatch.ProgramTagged).
func (f *Flash) ProgramTagged(now sim.Time, addr Address, data []byte, tag int64) (Result, error) {
	if err := f.CheckProgram(addr); err != nil {
		return Result{}, err
	}
	if err := f.syncMutateErr(addr.Channel); err != nil {
		return Result{}, err
	}
	if err := f.drawProgramFault(addr); err != nil {
		return Result{}, err
	}
	xferStart, done := f.claimProgram(now, addr, tag)
	f.accountProgram(addr.Channel)
	if f.trackData && data != nil {
		f.checkNoPendingInstalls(addr.Channel)
		pageIdx := f.geo.PageIndex(addr)
		f.data[addr.Channel].put(f.chanLocal(pageIdx), data)
		f.oob[pageIdx].sum = oobSum(f.data[addr.Channel].get(f.chanLocal(pageIdx)))
	}
	return Result{Start: xferStart, Ready: done, Done: done}, nil
}

// eraseUndoRec snapshots the block state one claimed erase destroyed, so a
// power cut before the erase's array operation started can put it back.
type eraseUndoRec struct {
	bi         int
	start      sim.Time // array-operation start on the die
	eraseCount uint32
	disturb    uint32
	nextPage   int32
	written    []bool
	oob        []pageOOB
	// done marks an erase committed at claim time: the synchronous path
	// runs with the engine drained and clears the tracked arena
	// immediately, so its snapshot must never be restored.
	done bool
}

// pruneEraseUndo drops undo records whose array operation has started by
// the given engine dispatch time: any later power cut catches those erases
// mid-operation (resolved as completed), so the snapshots are dead weight.
func (f *Flash) pruneEraseUndo(dispatch sim.Time) {
	kept := f.eraseUndo[:0]
	for _, u := range f.eraseUndo {
		if u.done || u.start <= dispatch {
			f.eraseUndoPool = append(f.eraseUndoPool, u)
			continue
		}
		kept = append(kept, u)
	}
	f.eraseUndo = kept
}

// PruneEraseUndo drops undo records whose array operation has started by
// the given committed simulation time: the caller asserts no future power
// cut can land before it (e.g. core's batched submit after a window drain,
// where the host clock is the earliest possible cut). The evented path
// prunes on dispatch instead; this entry point exists for callers that
// claim erases outside a running engine, whose dispatch clock would
// otherwise never advance past the records.
func (f *Flash) PruneEraseUndo(committed sim.Time) { f.pruneEraseUndo(committed) }

// acquireEraseUndo hands out a pooled undo record with its snapshot slices
// sized for one block.
func (f *Flash) acquireEraseUndo() *eraseUndoRec {
	if n := len(f.eraseUndoPool); n > 0 {
		u := f.eraseUndoPool[n-1]
		f.eraseUndoPool = f.eraseUndoPool[:n-1]
		u.done = false
		return u
	}
	return &eraseUndoRec{
		written: make([]bool, f.geo.PagesPerBlock),
		oob:     make([]pageOOB, f.geo.PagesPerBlock),
	}
}

// commitEraseUndo marks an erase committed at claim time (the synchronous
// path: the tracked arena is cleared immediately, so the snapshot must never
// be restored) and recycles the record.
func (f *Flash) commitEraseUndo(u *eraseUndoRec) {
	u.done = true
	if n := len(f.eraseUndo); n > 0 && f.eraseUndo[n-1] == u {
		f.eraseUndo = f.eraseUndo[:n-1]
		f.eraseUndoPool = append(f.eraseUndoPool, u)
	}
}

// claimErase reserves an erase's phases and applies the functional block
// reset (erase count, in-order pointer, written map). Shared by Erase and
// EraseDeferred. The returned undo record holds the destroyed state; the
// synchronous caller marks it done (committed at claim), the deferred path
// leaves it pending until the array operation's start time passes.
func (f *Flash) claimErase(now sim.Time, addr Address) (cmdStart, done sim.Time, undo *eraseUndoRec) {
	bi := f.geo.BlockIndex(addr)
	blk := &f.blocks[bi]
	ch := f.channels[addr.Channel]
	die := f.dies[f.geo.DieIndex(addr)]
	cmdStart, cmdEnd := ch.Claim(now, f.tim.CmdCycles)
	opStart, done := die.Claim(cmdEnd, f.tim.Erase)
	base := int64(bi) * int64(f.geo.PagesPerBlock)
	undo = f.acquireEraseUndo()
	undo.bi = bi
	undo.start = opStart
	undo.eraseCount = blk.eraseCount
	undo.disturb = blk.disturb
	undo.nextPage = blk.nextPage
	copy(undo.written, blk.written)
	copy(undo.oob, f.oob[base:base+int64(f.geo.PagesPerBlock)])
	f.eraseUndo = append(f.eraseUndo, undo)
	blk.eraseCount++
	blk.disturb = 0
	blk.nextPage = 0
	for i := range blk.written {
		blk.written[i] = false
	}
	for i := 0; i < f.geo.PagesPerBlock; i++ {
		f.oob[base+int64(i)] = pageOOB{fi: -1}
	}
	f.epoch++
	return cmdStart, done, undo
}

// Erase erases the block containing addr (its Page field is ignored).
// Like Program, it fails with ErrDeferredInFlight while deferred installs
// are in flight on the channel.
func (f *Flash) Erase(now sim.Time, addr Address) (Result, error) {
	addr.Page = 0
	if err := f.geo.CheckAddress(addr); err != nil {
		return Result{}, err
	}
	if err := f.syncMutateErr(addr.Channel); err != nil {
		return Result{}, err
	}
	if err := f.drawEraseFault(addr); err != nil {
		return Result{}, err
	}
	bi := f.geo.BlockIndex(addr)
	cmdStart, done, undo := f.claimErase(now, addr)
	f.commitEraseUndo(undo)
	if f.trackData {
		f.checkNoPendingInstalls(addr.Channel)
		base := int64(bi) * int64(f.geo.PagesPerBlock)
		f.data[addr.Channel].clearRange(f.chanLocal(base), f.geo.PagesPerBlock)
	}
	f.accountErase(addr.Channel)
	return Result{Start: cmdStart, Ready: done, Done: done}, nil
}

// PageWritten reports whether the page at addr currently holds data.
func (f *Flash) PageWritten(addr Address) bool {
	return f.blocks[f.geo.BlockIndex(addr)].written[addr.Page]
}

// PagePayload copies the tracked contents of the page at addr into dst
// (zero-padded past what was stored), with no timing, accounting or fault
// draw — firmware-internal data movement, not a flash transaction. It is
// pending-aware: bytes latched by a deferred program whose install event
// has not dispatched yet are observed, exactly like a synchronous read
// would. RAIN parity computation XORs stripe members through this (each
// member was already read or programmed by the surrounding plan, which is
// where the timing lives). No-op when data tracking is off or dst is nil.
func (f *Flash) PagePayload(addr Address, dst []byte) {
	f.copyOut(f.geo.PageIndex(addr), dst)
}

// BlockDisturb returns the accumulated read-disturb count of the block at
// global index bi (always zero unless FaultConfig.ReadDisturbLimit is set).
func (f *Flash) BlockDisturb(bi int) uint32 { return f.blocks[bi].disturb }

// BlockRisk scores the degradation risk of the block at global index bi at
// simulated time now: the sum of its read-disturb fraction and the
// retention-age fraction of its oldest written page, each relative to the
// configured limit. 1.0 means one fully-expended budget. Zero when fault
// injection is off or neither limit is configured — the patrol scrubber's
// risk scan is then inert.
func (f *Flash) BlockRisk(bi int, now sim.Time) float64 {
	m := f.faults
	if m == nil {
		return 0
	}
	var r float64
	if lim := m.cfg.ReadDisturbLimit; lim > 0 {
		r += float64(f.blocks[bi].disturb) / float64(lim)
	}
	if lim := m.cfg.RetentionLimit; lim > 0 {
		blk := &f.blocks[bi]
		base := int64(bi) * int64(f.geo.PagesPerBlock)
		var oldest sim.Time
		found := false
		for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
			if !blk.written[pg] {
				continue
			}
			if d := f.oob[base+int64(pg)].doneAt; !found || d < oldest {
				oldest = d
				found = true
			}
		}
		if found && now > oldest {
			r += float64(now-oldest) / float64(lim)
		}
	}
	return r
}

// NextProgramPage returns the next in-order programmable page of the block
// containing addr, or PagesPerBlock if the block is full.
func (f *Flash) NextProgramPage(addr Address) int {
	return int(f.blocks[f.geo.BlockIndex(addr)].nextPage)
}

// FreeAt returns the time at which every channel and die becomes idle —
// the backend quiesce point after outstanding programs/erases drain.
func (f *Flash) FreeAt() sim.Time {
	var t sim.Time
	for _, ch := range f.channels {
		if ch.FreeAt() > t {
			t = ch.FreeAt()
		}
	}
	for _, d := range f.dies {
		if d.FreeAt() > t {
			t = d.FreeAt()
		}
	}
	return t
}

// ChannelUtilization returns per-channel bus utilization over elapsed time.
func (f *Flash) ChannelUtilization(elapsed sim.Duration) []float64 {
	out := make([]float64, len(f.channels))
	for i, ch := range f.channels {
		out[i] = ch.Utilization(elapsed)
	}
	return out
}

// DieUtilization returns per-die utilization over elapsed time.
func (f *Flash) DieUtilization(elapsed sim.Duration) []float64 {
	out := make([]float64, len(f.dies))
	for i, d := range f.dies {
		out[i] = d.Utilization(elapsed)
	}
	return out
}

// MaxEraseCount returns the highest per-block erase count, the wear-leveling
// figure of merit.
func (f *Flash) MaxEraseCount() uint32 {
	var m uint32
	for i := range f.blocks {
		if f.blocks[i].eraseCount > m {
			m = f.blocks[i].eraseCount
		}
	}
	return m
}

// MinEraseCount returns the lowest per-block erase count.
func (f *Flash) MinEraseCount() uint32 {
	if len(f.blocks) == 0 {
		return 0
	}
	m := f.blocks[0].eraseCount
	for i := range f.blocks {
		if f.blocks[i].eraseCount < m {
			m = f.blocks[i].eraseCount
		}
	}
	return m
}
