package nand

import (
	"bytes"
	"testing"
	"testing/quick"

	"amber/internal/sim"
)

func testGeometry() Geometry {
	return Geometry{
		Channels:           4,
		PackagesPerChannel: 2,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     8,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
}

func testTiming() Timing {
	return Timing{
		ReadFast:  sim.FromMicroseconds(60),
		ReadSlow:  sim.FromMicroseconds(105),
		ProgFast:  sim.FromMicroseconds(820),
		ProgSlow:  sim.FromMicroseconds(2250),
		Erase:     sim.FromMicroseconds(3000),
		BusMTps:   333,
		CmdCycles: sim.FromNanoseconds(100),
	}
}

func newTestFlash(t *testing.T, opt Options) *Flash {
	t.Helper()
	f, err := New(testGeometry(), testTiming(), Power{
		ReadEnergyJ:        50e-9,
		ProgEnergyJ:        400e-9,
		EraseEnergyJ:       1500e-9,
		XferEnergyJPerByte: 1e-12,
		LeakageWPerDie:     1e-3,
	}, MLC, opt)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGeometryValidate(t *testing.T) {
	g := testGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.Channels = 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero channels should fail validation")
	}
}

func TestGeometryCounts(t *testing.T) {
	g := testGeometry()
	if got := g.TotalDies(); got != 8 {
		t.Fatalf("TotalDies = %d, want 8", got)
	}
	if got := g.TotalPlanes(); got != 16 {
		t.Fatalf("TotalPlanes = %d, want 16", got)
	}
	if got := g.TotalBlocks(); got != 128 {
		t.Fatalf("TotalBlocks = %d, want 128", got)
	}
	if got := g.TotalPages(); got != 2048 {
		t.Fatalf("TotalPages = %d, want 2048", got)
	}
	if got := g.CapacityBytes(); got != 2048*4096 {
		t.Fatalf("CapacityBytes = %d", got)
	}
}

func TestAddressRoundTrip(t *testing.T) {
	g := testGeometry()
	f := func(block uint16, page uint8) bool {
		bi := int(block) % g.TotalBlocks()
		pi := int64(bi)*int64(g.PagesPerBlock) + int64(int(page)%g.PagesPerBlock)
		a := g.AddressOfPage(pi)
		if err := g.CheckAddress(a); err != nil {
			return false
		}
		return g.PageIndex(a) == pi && g.BlockIndex(g.AddressOfBlock(bi)) == bi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAddressBounds(t *testing.T) {
	g := testGeometry()
	bad := []Address{
		{Channel: 4}, {Package: 2}, {Die: 1}, {Plane: 2},
		{Block: 8}, {Page: 16}, {Channel: -1},
	}
	for _, a := range bad {
		if err := g.CheckAddress(a); err == nil {
			t.Errorf("address %v should be rejected", a)
		}
	}
	if err := g.CheckAddress(Address{Channel: 3, Package: 1, Plane: 1, Block: 7, Page: 15}); err != nil {
		t.Errorf("valid address rejected: %v", err)
	}
}

func TestEraseBeforeWrite(t *testing.T) {
	f := newTestFlash(t, Options{})
	addr := Address{Page: 0}
	if _, err := f.Program(0, addr, nil); err != nil {
		t.Fatalf("first program failed: %v", err)
	}
	if _, err := f.Program(0, addr, nil); err == nil {
		t.Fatal("overwrite without erase must fail")
	}
	if _, err := f.Erase(0, addr); err != nil {
		t.Fatalf("erase failed: %v", err)
	}
	if _, err := f.Program(0, addr, nil); err != nil {
		t.Fatalf("program after erase failed: %v", err)
	}
}

func TestInOrderProgramEnforced(t *testing.T) {
	f := newTestFlash(t, Options{})
	if _, err := f.Program(0, Address{Page: 3}, nil); err == nil {
		t.Fatal("out-of-order program (page 3 first) must fail")
	}
	for p := 0; p < 4; p++ {
		if _, err := f.Program(0, Address{Page: p}, nil); err != nil {
			t.Fatalf("in-order program of page %d failed: %v", p, err)
		}
	}
	if _, err := f.Program(0, Address{Page: 6}, nil); err == nil {
		t.Fatal("skipping page 4 must fail")
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	f := newTestFlash(t, Options{})
	if _, err := f.Read(0, Address{Page: 0}, nil); err == nil {
		t.Fatal("read of unwritten page must fail")
	}
}

func TestDataIntegrity(t *testing.T) {
	f := newTestFlash(t, Options{TrackData: true})
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	addr := Address{Channel: 1, Block: 2}
	if _, err := f.Program(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := f.Read(0, addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("read-back bytes differ from programmed bytes")
	}
	// Erase clears content.
	if _, err := f.Erase(0, addr); err != nil {
		t.Fatal(err)
	}
	if f.PageWritten(addr) {
		t.Fatal("page still marked written after erase")
	}
}

func TestProgramCopiesPayload(t *testing.T) {
	f := newTestFlash(t, Options{TrackData: true})
	payload := make([]byte, 4096)
	payload[0] = 0xAA
	addr := Address{}
	if _, err := f.Program(0, addr, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 0xBB // mutate caller buffer after program
	got := make([]byte, 4096)
	if _, err := f.Read(0, addr, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA {
		t.Fatal("flash must store a copy of the programmed data")
	}
}

func TestReadTimingComposition(t *testing.T) {
	f := newTestFlash(t, Options{})
	tm := testTiming()
	if _, err := f.Program(0, Address{Page: 0}, nil); err != nil {
		t.Fatal(err)
	}
	// Use a quiet moment well after the program completes.
	start := sim.FromMicroseconds(10000)
	res, err := f.Read(start, Address{Page: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantReady := start + tm.CmdCycles + tm.ReadFast // page 0 is the fast class
	if res.Ready != wantReady {
		t.Fatalf("Ready = %v, want %v", res.Ready, wantReady)
	}
	wantDone := wantReady + tm.XferTime(4096)
	if res.Done != wantDone {
		t.Fatalf("Done = %v, want %v", res.Done, wantDone)
	}
}

func TestMLCPageClassLatencies(t *testing.T) {
	f := newTestFlash(t, Options{})
	tm := testTiming()
	// Page 0 (LSB, fast) vs page 1 (MSB, slow).
	if got := f.readLatency(0); got != tm.ReadFast {
		t.Fatalf("page 0 tR = %v, want %v", got, tm.ReadFast)
	}
	if got := f.readLatency(1); got != tm.ReadSlow {
		t.Fatalf("page 1 tR = %v, want %v", got, tm.ReadSlow)
	}
	if got := f.progLatency(0); got != tm.ProgFast {
		t.Fatalf("page 0 tPROG = %v, want %v", got, tm.ProgFast)
	}
	if got := f.progLatency(1); got != tm.ProgSlow {
		t.Fatalf("page 1 tPROG = %v, want %v", got, tm.ProgSlow)
	}
}

func TestTLCThreeClasses(t *testing.T) {
	f, err := New(testGeometry(), testTiming(), Power{}, TLC, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	l0, l1, l2 := f.readLatency(0), f.readLatency(1), f.readLatency(2)
	if l0 != tm.ReadFast || l2 != tm.ReadSlow {
		t.Fatalf("TLC extremes wrong: %v %v", l0, l2)
	}
	if !(l0 < l1 && l1 < l2) {
		t.Fatalf("TLC classes not ordered: %v %v %v", l0, l1, l2)
	}
	if f.readLatency(3) != l0 {
		t.Fatal("classes should repeat every 3 pages")
	}
}

func TestISPPJitterBounded(t *testing.T) {
	tm := testTiming()
	tm.ISPPJitter = 0.1
	f, err := New(testGeometry(), tm, Power{}, MLC, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo := sim.FromSeconds(tm.ProgFast.Seconds() * 0.9)
	hi := sim.FromSeconds(tm.ProgFast.Seconds() * 1.1)
	varied := false
	first := f.progLatency(0)
	for i := 0; i < 100; i++ {
		l := f.progLatency(0)
		if l < lo || l > hi {
			t.Fatalf("jittered tPROG %v outside [%v,%v]", l, lo, hi)
		}
		if l != first {
			varied = true
		}
	}
	if !varied {
		t.Fatal("ISPP jitter produced constant latencies")
	}
}

func TestChannelContentionSerializes(t *testing.T) {
	f := newTestFlash(t, Options{})
	// Two programs to different dies on the SAME channel: data transfers
	// must serialize on the bus.
	a1 := Address{Channel: 0, Package: 0, Page: 0}
	a2 := Address{Channel: 0, Package: 1, Page: 0}
	r1, err := f.Program(0, a1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Program(0, a2, nil)
	if err != nil {
		t.Fatal(err)
	}
	tm := testTiming()
	xfer := tm.CmdCycles + tm.XferTime(4096)
	if r2.Start != sim.Time(xfer) {
		t.Fatalf("second transfer should start after first bus occupancy: start=%v want=%v", r2.Start, xfer)
	}
	// But the array programs overlap: both Ready well before 2*tPROG.
	if r2.Ready >= r1.Ready+tm.ProgFast {
		t.Fatal("programs on different dies should overlap")
	}
}

func TestDifferentChannelsParallel(t *testing.T) {
	f := newTestFlash(t, Options{})
	r1, err := f.Program(0, Address{Channel: 0, Page: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Program(0, Address{Channel: 1, Page: 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Start != r2.Start {
		t.Fatalf("different channels should start together: %v vs %v", r1.Start, r2.Start)
	}
}

func TestDieContentionSerializesArrayOps(t *testing.T) {
	f := newTestFlash(t, Options{})
	a1 := Address{Page: 0}
	a2 := Address{Page: 1}
	r1, err := f.Program(0, a1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Program(0, a2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Ready < r1.Ready {
		t.Fatal("same-die programs cannot complete out of order")
	}
	tm := testTiming()
	if r2.Ready-r1.Ready < tm.ProgSlow {
		t.Fatalf("second program should wait for the die: gap %v", r2.Ready-r1.Ready)
	}
}

func TestEraseResetsWear(t *testing.T) {
	f := newTestFlash(t, Options{})
	addr := Address{Block: 3}
	for i := 0; i < 5; i++ {
		if _, err := f.Erase(0, addr); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.EraseCount(addr); got != 5 {
		t.Fatalf("EraseCount = %d, want 5", got)
	}
	if f.MaxEraseCount() != 5 || f.MinEraseCount() != 0 {
		t.Fatalf("Max/Min erase = %d/%d", f.MaxEraseCount(), f.MinEraseCount())
	}
}

func TestStatsAndEnergy(t *testing.T) {
	f := newTestFlash(t, Options{})
	if _, err := f.Program(0, Address{Page: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Read(sim.FromMicroseconds(5000), Address{Page: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Erase(sim.FromMicroseconds(9000), Address{}); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.Reads != 1 || s.Programs != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesRead != 4096 || s.BytesWritten != 4096 {
		t.Fatalf("bytes = %+v", s)
	}
	wantDyn := 50e-9 + 400e-9 + 1500e-9 + 2*4096*1e-12
	if diff := f.EnergyJoules() - wantDyn; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("EnergyJoules = %v, want %v", f.EnergyJoules(), wantDyn)
	}
	// Leakage: 8 dies * 1mW * 1s = 8 mJ.
	tot := f.TotalEnergyJoules(sim.Second)
	if diff := tot - (wantDyn + 8e-3); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("TotalEnergyJoules = %v", tot)
	}
	if p := f.AveragePowerW(sim.Second); p <= 0 {
		t.Fatalf("AveragePowerW = %v", p)
	}
}

func TestUtilizationVectors(t *testing.T) {
	f := newTestFlash(t, Options{})
	if _, err := f.Program(0, Address{Channel: 2, Page: 0}, nil); err != nil {
		t.Fatal(err)
	}
	cu := f.ChannelUtilization(sim.FromMicroseconds(1000))
	if cu[2] == 0 {
		t.Fatal("used channel shows zero utilization")
	}
	if cu[0] != 0 {
		t.Fatal("unused channel shows utilization")
	}
	du := f.DieUtilization(sim.FromMicroseconds(10000))
	nonzero := 0
	for _, u := range du {
		if u > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("want exactly 1 busy die, got %d", nonzero)
	}
}

// Property: the flash never loses or corrupts data across arbitrary valid
// program/read sequences within one block.
func TestBlockDataProperty(t *testing.T) {
	f := newTestFlash(t, Options{TrackData: true})
	g := f.Geometry()
	rng := sim.NewRNG(77)
	now := sim.Time(0)
	written := map[int][]byte{}
	for round := 0; round < 3; round++ {
		for p := 0; p < g.PagesPerBlock; p++ {
			buf := make([]byte, g.PageSize)
			for i := range buf {
				buf[i] = byte(rng.Uint64())
			}
			now += sim.FromMicroseconds(5000)
			if _, err := f.Program(now, Address{Page: p}, buf); err != nil {
				t.Fatal(err)
			}
			written[p] = buf
		}
		for p := 0; p < g.PagesPerBlock; p++ {
			got := make([]byte, g.PageSize)
			now += sim.FromMicroseconds(500)
			if _, err := f.Read(now, Address{Page: p}, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, written[p]) {
				t.Fatalf("round %d page %d corrupted", round, p)
			}
		}
		now += sim.FromMicroseconds(5000)
		if _, err := f.Erase(now, Address{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCellTypeStrings(t *testing.T) {
	if SLC.String() != "SLC" || MLC.String() != "MLC" || TLC.String() != "TLC" {
		t.Fatal("cell type names wrong")
	}
	if SLC.LatencyClasses() != 1 || MLC.LatencyClasses() != 2 || TLC.LatencyClasses() != 3 {
		t.Fatal("latency class counts wrong")
	}
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Fatal("op kind names wrong")
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	g := testGeometry()
	tm := testTiming()
	if _, err := New(Geometry{}, tm, Power{}, MLC, Options{}); err == nil {
		t.Fatal("empty geometry accepted")
	}
	bad := tm
	bad.BusMTps = 0
	if _, err := New(g, bad, Power{}, MLC, Options{}); err == nil {
		t.Fatal("zero bus rate accepted")
	}
	bad = tm
	bad.ReadSlow = tm.ReadFast / 2
	if _, err := New(g, bad, Power{}, MLC, Options{}); err == nil {
		t.Fatal("slow < fast accepted")
	}
	bad = tm
	bad.ISPPJitter = 1.5
	if _, err := New(g, bad, Power{}, MLC, Options{}); err == nil {
		t.Fatal("jitter >= 1 accepted")
	}
}

func BenchmarkProgramReadErase(b *testing.B) {
	f, err := New(testGeometry(), testTiming(), Power{}, MLC, Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := f.Geometry()
	now := sim.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk := Address{Block: i % g.BlocksPerPlane}
		for p := 0; p < g.PagesPerBlock; p++ {
			blk.Page = p
			if _, err := f.Program(now, blk, nil); err != nil {
				b.Fatal(err)
			}
		}
		now += sim.FromMicroseconds(100000)
		if _, err := f.Erase(now, blk); err != nil {
			b.Fatal(err)
		}
	}
}

// TestReadDeferred verifies the deferred read path: timing identical to the
// synchronous Read, bookkeeping and the tracked-data copy landing only when
// the completion event dispatches, and a channel-pooled carrier that makes
// steady-state deferred reads allocation-free.
func TestReadDeferred(t *testing.T) {
	fSync := newTestFlash(t, Options{TrackData: true, Seed: 1})
	fDef := newTestFlash(t, Options{TrackData: true, Seed: 1})
	addr := Address{Channel: 2, Page: 0}
	payload := bytes.Repeat([]byte{0xa5}, 4096)
	for _, f := range []*Flash{fSync, fDef} {
		if _, err := f.Program(0, addr, payload); err != nil {
			t.Fatal(err)
		}
	}
	now := sim.FromMicroseconds(5000)
	want, err := fSync.Read(now, addr, make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	dst := make([]byte, 4096)
	got, err := fDef.ReadDeferred(e, dom, now, addr, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("deferred timing %+v != sync %+v", got, want)
	}
	if n := fDef.Stats().Reads; n != 0 {
		t.Fatalf("stats counted before completion: %d reads", n)
	}
	e.Run()
	if fDef.Stats() != fSync.Stats() {
		t.Fatalf("stats after completion %+v != sync %+v", fDef.Stats(), fSync.Stats())
	}
	if fDef.EnergyJoules() != fSync.EnergyJoules() {
		t.Fatalf("energy %v != %v", fDef.EnergyJoules(), fSync.EnergyJoules())
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("deferred copy did not deliver the page contents")
	}

	// Steady state reuses the pooled completion carrier: no allocations.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := fDef.ReadDeferred(e, dom, e.Now(), addr, dst); err != nil {
			t.Fatal(err)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("deferred read allocated %v per op", allocs)
	}
}

// TestReadDeferredEager locks in the eager-staged deferred read (the
// precopy stage of two-stage fill installs): timing identical to the
// synchronous Read, page bytes delivered into dst before any event
// dispatches (and immune to a later erase + reprogram, like ReadDeferred's
// staging), counters and energy landing only when the channel event runs,
// and pooled carriers that keep steady state allocation-free.
func TestReadDeferredEager(t *testing.T) {
	fSync := newTestFlash(t, Options{TrackData: true, Seed: 1})
	fDef := newTestFlash(t, Options{TrackData: true, Seed: 1})
	addr := Address{Channel: 2, Page: 0}
	payload := bytes.Repeat([]byte{0x3c}, 4096)
	for _, f := range []*Flash{fSync, fDef} {
		if _, err := f.Program(0, addr, payload); err != nil {
			t.Fatal(err)
		}
	}
	now := sim.FromMicroseconds(5000)
	want, err := fSync.Read(now, addr, make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	dst := make([]byte, 4096)
	got, err := fDef.ReadDeferredEager(e, dom, now, addr, dst)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("eager timing %+v != sync %+v", got, want)
	}
	// The consumer-side contract: bytes are complete at issue, so a
	// continuation reading dst depends on no pending channel event.
	if !bytes.Equal(dst, payload) {
		t.Fatal("eager read did not deliver the page contents at issue")
	}
	if n := fDef.Stats().Reads; n != 0 {
		t.Fatalf("stats counted before completion: %d reads", n)
	}
	e.Run()
	if fDef.Stats() != fSync.Stats() {
		t.Fatalf("stats after completion %+v != sync %+v", fDef.Stats(), fSync.Stats())
	}
	if fDef.EnergyJoules() != fSync.EnergyJoules() {
		t.Fatalf("energy %v != %v", fDef.EnergyJoules(), fSync.EnergyJoules())
	}
	if !bytes.Equal(dst, payload) {
		t.Fatal("dst changed after the accounting event")
	}

	// Steady state reuses the pooled completion carrier: no allocations.
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := fDef.ReadDeferredEager(e, dom, e.Now(), addr, dst); err != nil {
			t.Fatal(err)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("eager deferred read allocated %v per op", allocs)
	}
}

// TestProgramDeferred verifies the deferred program path: timing and
// functional block state identical to the synchronous Program, counters,
// energy and the tracked-data install landing only when the completion
// event dispatches, and pooled carriers that make steady state
// allocation-free.
func TestProgramDeferred(t *testing.T) {
	fSync := newTestFlash(t, Options{TrackData: true, Seed: 1})
	fDef := newTestFlash(t, Options{TrackData: true, Seed: 1})
	addr := Address{Channel: 3, Page: 0}
	payload := bytes.Repeat([]byte{0x5c}, 4096)

	want, err := fSync.Program(0, addr, payload)
	if err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	got, err := fDef.ProgramDeferred(e, dom, 0, addr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("deferred timing %+v != sync %+v", got, want)
	}
	if !fDef.PageWritten(addr) || fDef.NextProgramPage(addr) != 1 {
		t.Fatal("functional block state must transition at issue")
	}
	if n := fDef.Stats().Programs; n != 0 {
		t.Fatalf("stats counted before completion: %d programs", n)
	}
	// A read staged before the install event must already observe the
	// latched bytes (the pending-install index), like the synchronous path.
	staged := make([]byte, 4096)
	if _, err := fDef.ReadDeferred(e, dom, 0, addr, staged); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if fDef.Stats().Programs != 1 || fDef.Stats().BytesWritten != 4096 {
		t.Fatalf("stats after completion: %+v", fDef.Stats())
	}
	if !bytes.Equal(staged, payload) {
		t.Fatal("read staged before install missed the pending program bytes")
	}
	rb := make([]byte, 4096)
	if _, err := fDef.Read(sim.FromMicroseconds(50000), addr, rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, payload) {
		t.Fatal("install did not land the programmed bytes")
	}

	// Steady state reuses the pooled carrier: no allocations.
	next := Address{Channel: 3, Block: 1}
	allocs := testing.AllocsPerRun(14, func() {
		if _, err := fDef.ProgramDeferred(e, dom, e.Now(), next, payload); err != nil {
			t.Fatal(err)
		}
		e.Run()
		next.Page++
	})
	if allocs != 0 {
		t.Fatalf("deferred program allocated %v per op", allocs)
	}
}

// TestEraseDeferred verifies the deferred erase path: functional reset at
// issue, counters/energy/presence-clear at completion, byte-identical
// totals versus the synchronous path.
func TestEraseDeferred(t *testing.T) {
	fSync := newTestFlash(t, Options{TrackData: true, Seed: 1})
	fDef := newTestFlash(t, Options{TrackData: true, Seed: 1})
	addr := Address{Channel: 1, Page: 0}
	payload := bytes.Repeat([]byte{0x77}, 4096)
	for _, f := range []*Flash{fSync, fDef} {
		if _, err := f.Program(0, addr, payload); err != nil {
			t.Fatal(err)
		}
	}
	now := sim.FromMicroseconds(10000)
	want, err := fSync.Erase(now, addr)
	if err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	got, err := fDef.EraseDeferred(e, dom, now, addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("deferred timing %+v != sync %+v", got, want)
	}
	if fDef.PageWritten(addr) || fDef.NextProgramPage(addr) != 0 {
		t.Fatal("functional reset must apply at issue")
	}
	if n := fDef.Stats().Erases; n != 0 {
		t.Fatalf("stats counted before completion: %d erases", n)
	}
	e.Run()
	if fDef.Stats() != fSync.Stats() {
		t.Fatalf("stats after completion %+v != sync %+v", fDef.Stats(), fSync.Stats())
	}
	if fDef.EraseCount(addr) != 1 {
		t.Fatalf("EraseCount = %d", fDef.EraseCount(addr))
	}

	allocs := testing.AllocsPerRun(20, func() {
		if _, err := fDef.EraseDeferred(e, dom, e.Now(), addr); err != nil {
			t.Fatal(err)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("deferred erase allocated %v per op", allocs)
	}
}

// TestDeferredGCReprogramOrdering is the golden ordering test for deferred
// writes against in-flight deferred reads: a read is issued, then a GC-style
// erase + reprogram of the same physical page runs entirely on the deferred
// path before any completion event dispatches. The in-flight read must
// return the pre-erase bytes (staged at issue), the post-drain arena must
// hold the new bytes (installs and clears dispatch in channel (time, seq)
// order, which the die resource aligns with issue order), and the counters
// must match a synchronous reference executing the same sequence.
func TestDeferredGCReprogramOrdering(t *testing.T) {
	fSync := newTestFlash(t, Options{TrackData: true, Seed: 1})
	fDef := newTestFlash(t, Options{TrackData: true, Seed: 1})
	addr := Address{Channel: 2, Page: 0}
	old := bytes.Repeat([]byte{0x11}, 4096)
	new_ := bytes.Repeat([]byte{0xee}, 4096)

	// Synchronous reference.
	if _, err := fSync.Program(0, addr, old); err != nil {
		t.Fatal(err)
	}
	syncDst := make([]byte, 4096)
	if _, err := fSync.Read(0, addr, syncDst); err != nil {
		t.Fatal(err)
	}
	if _, err := fSync.Erase(0, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := fSync.Program(0, addr, new_); err != nil {
		t.Fatal(err)
	}

	// Deferred run: same sequence, nothing dispatched until the end.
	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	if _, err := fDef.ProgramDeferred(e, dom, 0, addr, old); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	if _, err := fDef.ReadDeferred(e, dom, 0, addr, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := fDef.EraseDeferred(e, dom, 0, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := fDef.ProgramDeferred(e, dom, 0, addr, new_); err != nil {
		t.Fatal(err)
	}
	e.Run()

	if !bytes.Equal(dst, old) {
		t.Fatalf("in-flight deferred read observed post-erase contents: %x...", dst[:4])
	}
	if !bytes.Equal(dst, syncDst) {
		t.Fatal("deferred read bytes diverge from synchronous reference")
	}
	got := make([]byte, 4096)
	if _, err := fDef.Read(sim.FromMicroseconds(100000), addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, new_) {
		t.Fatalf("arena did not converge to the reprogrammed bytes: %x...", got[:4])
	}
	ds, ss := fDef.Stats(), fSync.Stats()
	// The verification read above is extra; discount it.
	ds.Reads--
	ds.BytesRead -= uint64(len(got))
	if ds != ss {
		t.Fatalf("deferred stats %+v != sync %+v", ds, ss)
	}
}

// TestReadDeferredSnapshotsAtIssue locks in the data semantics of the
// deferred path: the bytes a read returns are fixed when it is issued (the
// array read latches them), so an erase + reprogram of the same physical
// page that executes before the completion event dispatches must not leak
// the new contents into the in-flight read — exactly what the synchronous
// Read guarantees by copying immediately.
func TestReadDeferredSnapshotsAtIssue(t *testing.T) {
	f := newTestFlash(t, Options{TrackData: true})
	addr := Address{Page: 0}
	old := bytes.Repeat([]byte{0x11}, 4096)
	if _, err := f.Program(0, addr, old); err != nil {
		t.Fatal(err)
	}

	e := sim.NewEngine()
	dom := e.Domain(ChannelDomain(addr.Channel))
	dst := make([]byte, 4096)
	if _, err := f.ReadDeferred(e, dom, 0, addr, dst); err != nil {
		t.Fatal(err)
	}

	// A GC cycle recycles the block before the completion event runs.
	if _, err := f.Erase(0, addr); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Program(0, addr, bytes.Repeat([]byte{0xee}, 4096)); err != nil {
		t.Fatal(err)
	}

	e.Run()
	if !bytes.Equal(dst, old) {
		t.Fatalf("in-flight read observed post-erase contents: got %x... want %x...", dst[:4], old[:4])
	}
}
