// Package snap implements the checksummed, versioned binary image format
// behind crash-consistent snapshot/restore of device state. It is a small
// self-contained codec — varint-packed scalars, length-prefixed byte
// strings, an FNV-1a trailer over the whole image — with sticky-error
// decoding: a truncated, corrupted or version-skewed image surfaces one of
// the typed errors below and decoders read zero values from then on, so a
// caller can decode a whole module graph and check the error once, with no
// partial mutation of live state (decode into fresh objects, swap on
// success).
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Typed image errors, matched with errors.Is.
var (
	// ErrTruncated marks an image shorter than its framing or body demands.
	ErrTruncated = errors.New("snap: truncated image")
	// ErrCorrupt marks a checksum or structural mismatch: the bytes do not
	// decode to what was written.
	ErrCorrupt = errors.New("snap: corrupt image")
	// ErrVersion marks an image written by an unsupported format version.
	ErrVersion = errors.New("snap: unsupported image version")
	// ErrMismatch marks an image whose configuration fingerprint does not
	// match the target device: restoring it would build a silently wrong
	// device.
	ErrMismatch = errors.New("snap: image does not match device configuration")
)

// magic identifies an Amber snapshot image.
var magic = [8]byte{'A', 'M', 'B', 'R', 'S', 'N', 'A', 'P'}

// fnv1a is the trailer checksum.
func fnv1a(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Fingerprint hashes an arbitrary configuration rendering into the 64-bit
// value Seal/Open compare, so an image restores only onto an identically
// configured device.
func Fingerprint(b []byte) uint64 { return fnv1a(b) }

// Enc builds a snapshot body. The zero value is ready to use.
type Enc struct {
	buf []byte
}

// Bytes returns the encoded body.
func (e *Enc) Bytes() []byte { return e.buf }

// U64 appends an unsigned varint.
func (e *Enc) U64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// I64 appends a signed (zigzag) varint.
func (e *Enc) I64(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends a signed varint from an int.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its fixed 8-byte IEEE-754 bit pattern (varint
// packing would corrupt the exponent distribution of energy accumulators).
func (e *Enc) F64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Blob appends a length-prefixed byte string.
func (e *Enc) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Dec reads a snapshot body with a sticky error: after the first failure
// every getter returns the zero value and Err reports the failure.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over body.
func NewDec(body []byte) *Dec { return &Dec{buf: body} }

// Err returns the sticky decode error, nil when every read succeeded.
func (d *Dec) Err() error { return d.err }

// fail records the first error.
func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Done reports an error unless the body was consumed exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// U64 reads an unsigned varint.
func (d *Dec) U64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	d.off += n
	return v
}

// I64 reads a signed (zigzag) varint.
func (d *Dec) I64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed varint as an int.
func (d *Dec) Int() int { return int(d.I64()) }

// F64 reads a fixed 8-byte float64.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// Bool reads a one-byte boolean.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail(fmt.Errorf("%w: bad boolean byte %d", ErrCorrupt, b))
		return false
	}
	return b == 1
}

// Blob reads a length-prefixed byte string. The returned slice aliases the
// image; callers copy if they keep it.
func (d *Dec) Blob() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Len reads a varint-encoded collection length and bounds-checks it against
// cap (each element needs at least one body byte, so a length beyond the
// remaining bytes is structurally corrupt). It protects decoders from
// allocating attacker- or corruption-sized slices.
func (d *Dec) Len(cap int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(cap) || n > uint64(len(d.buf)-d.off)+1 {
		d.fail(fmt.Errorf("%w: collection length %d exceeds bound %d", ErrCorrupt, n, cap))
		return 0
	}
	return int(n)
}

// Seal frames a body into a complete image: magic, format version,
// configuration fingerprint, body, FNV-1a trailer over everything before
// the trailer.
func Seal(version uint32, fingerprint uint64, body []byte) []byte {
	img := make([]byte, 0, len(magic)+4+8+8+len(body)+8)
	img = append(img, magic[:]...)
	img = binary.LittleEndian.AppendUint32(img, version)
	img = binary.LittleEndian.AppendUint64(img, fingerprint)
	img = binary.LittleEndian.AppendUint64(img, uint64(len(body)))
	img = append(img, body...)
	img = binary.LittleEndian.AppendUint64(img, fnv1a(img))
	return img
}

// Open validates an image's framing — magic, version, fingerprint, length,
// checksum — and returns its body. version is the single format version
// the caller supports; fingerprint is the target device's configuration
// hash. Every failure is typed: ErrTruncated, ErrCorrupt, ErrVersion or
// ErrMismatch.
func Open(img []byte, version uint32, fingerprint uint64) ([]byte, error) {
	const headerLen = 8 + 4 + 8 + 8
	if len(img) < headerLen+8 {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(img), headerLen+8)
	}
	if [8]byte(img[:8]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	// The checksum seals everything, including the header fields the
	// typed checks below read — verify it first so a flipped version or
	// fingerprint byte reports corruption, not a misleading skew.
	sum := binary.LittleEndian.Uint64(img[len(img)-8:])
	if fnv1a(img[:len(img)-8]) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(img[8:12]); v != version {
		return nil, fmt.Errorf("%w: image version %d, supported %d", ErrVersion, v, version)
	}
	if fp := binary.LittleEndian.Uint64(img[12:20]); fp != fingerprint {
		return nil, fmt.Errorf("%w: image fingerprint %#x, device %#x", ErrMismatch, binary.LittleEndian.Uint64(img[12:20]), fingerprint)
	}
	bodyLen := binary.LittleEndian.Uint64(img[20:28])
	if bodyLen != uint64(len(img)-headerLen-8) {
		return nil, fmt.Errorf("%w: body length %d, image holds %d", ErrTruncated, bodyLen, len(img)-headerLen-8)
	}
	return img[headerLen : headerLen+int(bodyLen)], nil
}
