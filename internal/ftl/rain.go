package ftl

import (
	"fmt"

	"amber/internal/sim"
)

// Die-level RAIN (redundant array of independent NAND): with Config.
// RAINWidth = W, every W+1 consecutive planes form a stripe group — W data
// planes and one parity plane (the group's last). One stripe is one page
// row of a group: when every data plane of the group has programmed row r,
// the parity plane programs row r with the XOR of the row's data pages,
// emitted into the same certified plan as the data write that completed
// the row (appendSub's catch-up). Because a flash page programs exactly
// once per erase cycle, the XOR identity over the row's physical contents
// holds from the parity program until the block erases — which is what
// makes reconstruction a pure function of durable state.
//
// On an uncorrectable read of a data page, the core assembles the XOR of
// the surviving stripe members (checking every member's OOB verdict — a
// torn or unwritten member is a double fault and falls back to honest data
// loss) and executes PlanReconstruct to re-home the sub-page; the lost
// page's block accumulates a reconstruction count that eventually forces a
// patrol scrub (NoteReconstruct). PlanScrub refreshes a whole super-block
// — migrate valid data onto young cells, erase — clearing accumulated
// read-disturb and retention stress before it becomes uncorrectable.

// reconScrubThreshold is the per-block reconstruction count at which
// NoteReconstruct asks for a forced scrub of the source block instead of
// letting it keep faulting.
const reconScrubThreshold = 2

// RAINEnabled reports whether the FTL stripes parity (Config.RAINWidth > 0).
func (f *FTL) RAINEnabled() bool { return f.rainW > 0 }

// isParityPlane reports whether plane p is a parity plane under RAIN.
func (f *FTL) isParityPlane(p int) bool {
	return f.rainW > 0 && p%(f.rainW+1) == f.rainW
}

// groupBase returns the first (data) plane of stripe group g.
func (f *FTL) groupBase(g int) int { return g * (f.rainW + 1) }

// parityPlane returns the parity plane of stripe group g.
func (f *FTL) parityPlane(g int) int { return g*(f.rainW+1) + f.rainW }

// dataPlane maps the i-th data slot onto its physical plane, skipping
// parity planes: slots fill group 0's data planes first, then group 1's.
func (f *FTL) dataPlane(i int) int {
	if f.rainW == 0 {
		return i
	}
	return (i/f.rainW)*(f.rainW+1) + i%f.rainW
}

// fullSubs returns the number of data sub-pages a fully-valid super-block
// holds (parity planes excluded under RAIN).
func (f *FTL) fullSubs() int { return f.pagesPerSB * f.dataPlanes }

// parityCatchupGroup emits the parity programs stripe group g of
// super-block sbi owes: one per completed row (every data plane of the
// group past it) whose parity page is not yet programmed. The parity
// append pointer advances eagerly, like appendSub's, so the FTL's model
// stays exactly one plan ahead of the flash. Returns the programs emitted.
func (f *FTL) parityCatchupGroup(sbi, g int, plan *Plan) int {
	sb := &f.sbs[sbi]
	pp := f.parityPlane(g)
	base := f.groupBase(g)
	min := int32(f.pagesPerSB)
	for i := 0; i < f.rainW; i++ {
		if np := sb.nextPage[base+i]; np < min {
			min = np
		}
	}
	n := 0
	for sb.nextPage[pp] < min {
		row := int(sb.nextPage[pp])
		plan.Ops = append(plan.Ops, Op{
			Kind: OpWrite,
			Loc:  PageLoc{SB: sbi, Page: row, Plane: pp, Sub: base},
			LSPN: -1, GC: true, Parity: true,
			Mask: uint32(1)<<uint(f.rainW) - 1,
		})
		sb.nextPage[pp]++
		f.stats.ParityWrites++
		n++
	}
	return n
}

// StripePeers resolves the RAIN stripe of the data page at src: the other
// data pages of its group's row (appended to peers, recycled like a lookup
// buffer) and the row's parity page. ok is false when RAIN is off or src
// sits on a parity plane. The caller must still check each member's OOB
// verdict against the flash — a returned location names a stripe slot, not
// a guarantee the page survived.
func (f *FTL) StripePeers(src PageLoc, peers []PageLoc) ([]PageLoc, PageLoc, bool) {
	if f.rainW == 0 || f.isParityPlane(src.Plane) {
		return peers, PageLoc{}, false
	}
	g := src.Plane / (f.rainW + 1)
	base := f.groupBase(g)
	for i := 0; i < f.rainW; i++ {
		p := base + i
		if p == src.Plane {
			continue
		}
		peers = append(peers, PageLoc{SB: src.SB, Page: src.Page, Plane: p, Sub: p})
	}
	return peers, PageLoc{SB: src.SB, Page: src.Page, Plane: f.parityPlane(g), Sub: base}, true
}

// StripeMaskBit returns the parity-mask bit covering the data page at src
// (its slot within the stripe group), for checking a stored OOB stripe
// mask before trusting a reconstruction.
func (f *FTL) StripeMaskBit(src PageLoc) uint32 {
	return uint32(1) << uint(src.Plane%(f.rainW+1))
}

// PlanReconstruct builds the certified plan that re-homes the data
// sub-page (lspn, sub) after an uncorrectable read: timing reads of the
// surviving stripe members in aux (LSPN -1, never paired with mappings or
// host data — the XOR itself is controller-RAM work the caller already
// did), then a fresh allocation whose payload the caller supplies as host
// data. aux may be empty when the members were already read as part of the
// faulted plan (the GC-recovery path). The append invalidates the old
// mapping, so the uncorrectable page drops out of the map — the loss
// became a latency event. The caller must have verified every member
// readable (probe + OOB verdict) before calling.
func (f *FTL) PlanReconstruct(now sim.Time, lspn int64, sub int, aux []PageLoc) (Plan, error) {
	plan := Plan{Ops: make([]Op, 0, len(aux)+4)}
	if f.rainW == 0 {
		return plan, fmt.Errorf("ftl: reconstruction without RAIN enabled")
	}
	if err := f.checkLSPN(lspn); err != nil {
		return plan, err
	}
	burn := true
	defer func() {
		if burn {
			f.planSeq++
		}
	}()
	for _, p := range aux {
		plan.Ops = append(plan.Ops, Op{Kind: OpRead, Loc: p, LSPN: -1})
	}
	if err := f.appendSub(now, lspn, sub, true, &plan); err != nil {
		return plan, err
	}
	f.stats.Reconstructions++
	f.certify(&plan)
	burn = false
	return plan, nil
}

// NoteReconstruct records a reconstruction sourced from super-block sb and
// reports whether the block has faulted often enough that the caller
// should scrub it now: migrating and erasing re-programs the data on young
// cells and clears the accumulated disturb/retention stress, while a block
// with genuinely failing cells then surfaces as a program or erase failure
// and retires through the grown-bad-block path.
func (f *FTL) NoteReconstruct(sb int) bool {
	f.sbs[sb].recon++
	return f.sbs[sb].recon >= reconScrubThreshold
}

// NoteDoubleFault counts a reconstruction that could not proceed (stripe
// member torn, unwritten or unreadable) and fell back to data loss.
func (f *FTL) NoteDoubleFault() { f.stats.DoubleFaults++ }

// SuperBlockCount returns the number of super-blocks the FTL manages, for
// callers walking the device (the patrol scrubber's risk scan).
func (f *FTL) SuperBlockCount() int { return f.sbCount }

// Scrubbable reports whether sb currently qualifies for a patrol scrub or
// a precautionary retirement: closed (or at least not open), not free, not
// retired, and holding programmed pages.
func (f *FTL) Scrubbable(sb int) bool {
	blk := &f.sbs[sb]
	if blk.free || blk.retired || sb == f.openSB {
		return false
	}
	for _, np := range blk.nextPage {
		if np > 0 {
			return true
		}
	}
	return false
}

// PlanRetire builds the plan that evacuates super-block sb's valid data
// and retires it into the grown-bad-block list — the conservative policy
// for a block that keeps sourcing reconstructions when no patrol scrubber
// is armed to refresh it. The retirement counts against the spare reserve
// like any grown-bad block, so repeated read failures on an unscrubbed
// device eventually latch read-only; a scrubbed device clears the same
// stress with an erase instead and keeps the block. The block is retired
// even when the migration runs out of space mid-plan (its unmigrated valid
// pages stay readable in place, see retireSB); the partial plan must still
// execute so the flash stays in lockstep.
func (f *FTL) PlanRetire(now sim.Time, sb int) (Plan, error) {
	var plan Plan
	blk := &f.sbs[sb]
	if blk.free || blk.retired || sb == f.openSB {
		return plan, nil
	}
	wasInGC := f.inGC
	f.inGC = true
	defer func() { f.inGC = wasInGC }()
	burn := true
	defer func() {
		if burn {
			f.planSeq++
		}
	}()
	err := f.migrateSuperBlock(now, sb, &plan, scrubMove)
	f.retireSB(sb)
	if err != nil {
		return plan, err
	}
	f.certify(&plan)
	burn = false
	return plan, nil
}

// PlanScrub builds the certified plan that refreshes super-block sb:
// every valid sub-page migrates to the open block and sb erases back into
// the free reserve, resetting its read-disturb and retention clocks. A
// plan with no ops is returned when sb is not scrubbable (free, retired,
// open, or never written). Works with or without RAIN — scrub is the
// patrol half of the reliability machinery, parity the reactive half.
func (f *FTL) PlanScrub(now sim.Time, sb int) (Plan, int, error) {
	var plan Plan
	blk := &f.sbs[sb]
	if blk.free || blk.retired || sb == f.openSB {
		return plan, 0, nil
	}
	written := 0
	for _, np := range blk.nextPage {
		written += int(np)
	}
	if written == 0 {
		return plan, 0, nil
	}
	plan.Ops = make([]Op, 0, int(blk.validSubs)*2+4)
	// Suppress nested GC victim selection from racing the scrub victim the
	// same way wear-leveling does.
	wasInGC := f.inGC
	f.inGC = true
	defer func() { f.inGC = wasInGC }()
	burn := true
	defer func() {
		if burn {
			f.planSeq++
		}
	}()
	moved := int(blk.validSubs)
	if err := f.migrateSuperBlock(now, sb, &plan, scrubMove); err != nil {
		return plan, 0, err
	}
	f.eraseSB(sb, &plan)
	f.stats.ScrubRuns++
	f.certify(&plan)
	burn = false
	return plan, moved, nil
}

// ParityCatchup builds the post-mount plan that re-emits parity for every
// completed stripe row whose parity page is missing: rows finished right
// before a power cut whose parity program never started. A torn parity
// page cannot be re-programmed in place (strict in-order programming) and
// stays dead until its block erases; only rows the parity append pointer
// never reached are covered. The caller must execute the plan through the
// FIL (certified when non-empty) so the programs are charged to the
// simulated clock. Returns the parity programs planned.
func (f *FTL) ParityCatchup() (Plan, int) {
	var plan Plan
	if f.rainW == 0 {
		return plan, 0
	}
	n := 0
	for sb := range f.sbs {
		blk := &f.sbs[sb]
		if blk.free || blk.retired {
			continue
		}
		for g := 0; g < f.subCount/(f.rainW+1); g++ {
			n += f.parityCatchupGroup(sb, g, &plan)
		}
	}
	if n > 0 {
		f.certify(&plan)
	}
	return plan, n
}
