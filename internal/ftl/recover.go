package ftl

import (
	"errors"
	"fmt"

	"amber/internal/nand"
	"amber/internal/sim"
)

// retireSB marks sb as a grown bad block: it leaves the free pool and the
// open slot, is never erased, programmed or selected as a victim again,
// and counts against the spare reserve. Once retirements exceed the
// reserve the device latches read-only. The block is NOT erased — retired
// cells keep whatever the flash last programmed, so still-valid sub-pages
// remain readable until recovery migrates them out.
func (f *FTL) retireSB(sb int) {
	blk := &f.sbs[sb]
	if blk.retired {
		return
	}
	blk.retired = true
	blk.free = false
	blk.closed = true
	for i, fs := range f.freeSB {
		if fs == sb {
			f.freeSB = append(f.freeSB[:i], f.freeSB[i+1:]...)
			break
		}
	}
	if f.openSB == sb {
		f.openSB = -1
	}
	f.retireOrder = append(f.retireOrder, sb)
	f.stats.Retirements++
	if len(f.retireOrder) > f.spares {
		f.readOnly = true
	}
	if f.onRetire != nil {
		f.onRetire(sb)
	}
}

// loseSub unmaps the forward entry fi after an uncorrectable read: the
// current mapping (which points at the location the in-flight plan was
// migrating the data to) is dropped, so the super-page reads back as
// unmapped zeroes from now on — data loss, surfaced honestly instead of
// serving stale bytes.
func (f *FTL) loseSub(fi int64) {
	packed := f.fwd[fi]
	if packed < 0 {
		return
	}
	sub := int(fi % int64(f.subCount))
	loc := f.unpackLoc(packed, sub)
	pi := f.physIndex(loc)
	if f.valid[pi] {
		f.valid[pi] = false
		f.rev[pi] = -1
		f.sbs[loc.SB].validSubs--
	}
	f.fwd[fi] = -1
	f.stats.LostSubs++
}

// RecoverPlanFault absorbs an injected flash fault that stopped a plan
// mid-execution and returns the recovery plan that restores model/flash
// lockstep. plan is the failed plan, executed the number of its ops that
// completed before the fault (the op at index executed is the one that
// drew it, claiming and mutating nothing), cause the fault error.
//
// Program failure: the target super-block is retired and every op the
// fault stranded is re-placed — suffix writes aimed at the retired block
// get fresh allocations (invalidating their stale mappings), then the
// block's surviving valid sub-pages are migrated out. Erase failure: the
// block is retired out of the free pool; the suffix continues without it.
// Uncorrectable read: the sub-page is unmapped (data loss) and its paired
// migration write degrades to a padding program — the physical page is
// still burned so the target block's append pointer advances in lockstep
// on the model and the flash, which strict in-order programming requires.
//
// GC rewrites in the suffix whose source reads executed before the fault
// are re-read from the original location while it is physically intact.
// Squeeze-shaped plans order a victim's erase BEFORE its rewrites
// (compaction into the same block), so those re-reads are hoisted ahead
// of the erase; when the erase already executed, the bytes are
// unrecoverable and the sub-page is unmapped with its write degraded to a
// padding burn. The returned plan is uncertified — the executor walks it
// — and its Ops are freshly allocated (recovery is the cold path and must
// not alias the scratch buffer the failed plan borrowed).
func (f *FTL) RecoverPlanFault(now sim.Time, plan Plan, executed int, cause error) (Plan, error) {
	if executed < 0 || executed >= len(plan.Ops) {
		return Plan{}, fmt.Errorf("ftl: recover with executed %d outside plan of %d ops", executed, len(plan.Ops))
	}
	failed := plan.Ops[executed]
	f.stats.Replans++

	lostFi := int64(-1)
	switch {
	case errors.Is(cause, nand.ErrProgramFail):
		if failed.Kind != OpWrite {
			return Plan{}, fmt.Errorf("ftl: program fault on %v op", failed.Kind)
		}
		f.retireSB(failed.Loc.SB)
	case errors.Is(cause, nand.ErrEraseFail):
		if failed.Kind != OpErase {
			return Plan{}, fmt.Errorf("ftl: erase fault on %v op", failed.Kind)
		}
		f.retireSB(failed.SB)
	case errors.Is(cause, nand.ErrUncorrectable):
		if failed.Kind != OpRead {
			return Plan{}, fmt.Errorf("ftl: read fault on %v op", failed.Kind)
		}
		// A timing read (LSPN < 0: a reconstruction plan's stripe-member
		// read) owns no mapping — nothing to lose, the suffix just drops it.
		if failed.LSPN >= 0 {
			lostFi = f.fwdIndex(failed.LSPN, failed.Loc.Sub)
			f.loseSub(lostFi)
		}
	default:
		return Plan{}, fmt.Errorf("ftl: unrecoverable plan failure: %w", cause)
	}

	suffix := plan.Ops[executed:]
	out := Plan{Ops: make([]Op, 0, len(suffix)+8)}

	// A mega-plan can chain a logical sub-page through several physical
	// homes: migrated from its pre-plan page to a fresh block, that block
	// later collected in the SAME plan, migrated again, and so on. When a
	// link in the chain lands on the block this fault retired, every later
	// read of the chain points at a page whose programming write will
	// never burn. So pre-scan the plan per sub-page for the two places the
	// data is still physically real: the last write that EXECUTED before
	// the fault (programmed, but the executor's buffer is gone), else the
	// chain's original pre-plan source (intact — its erase follows the
	// chain's first write in plan order, so it is still in the suffix). A
	// chain rooted at a host write of this flush has no read source at
	// all; its data comes from hostData.
	type fiInfo struct {
		origin    PageLoc // first read loc in the plan (pre-plan home)
		lastExec  PageLoc // last write loc in the executed prefix
		hasOrigin bool
		hasExec   bool
		touched   bool
	}
	info := make(map[int64]*fiInfo)
	// Blocks whose erase already executed: a read source on one of them
	// has physically lost its bytes — no recovery read can bring them back.
	erasedPrefix := make(map[int]bool)
	for idx, op := range plan.Ops {
		if op.Kind == OpErase {
			if idx < executed {
				erasedPrefix[op.SB] = true
			}
			continue
		}
		if op.LSPN < 0 {
			continue // parity/timing ops own no logical sub-page
		}
		fi := f.fwdIndex(op.LSPN, op.Loc.Sub)
		in := info[fi]
		if in == nil {
			in = &fiInfo{}
			info[fi] = in
		}
		switch op.Kind {
		case OpRead:
			if !in.touched {
				in.origin, in.hasOrigin = op.Loc, true
			}
		case OpWrite:
			if idx < executed {
				in.lastExec, in.hasExec = op.Loc, true
			}
		}
		in.touched = true
	}

	emitted := make(map[int64]bool)  // fi whose data a recovery read loads
	broken := make(map[PageLoc]bool) // pages whose programming write was displaced

	// srcOf resolves the physical location still holding fi's bytes: the
	// last write that executed before the fault, else the chain's pre-plan
	// origin. ok is false for host-rooted chains (no read source ever).
	srcOf := func(in *fiInfo) (PageLoc, bool) {
		if in.hasExec {
			return in.lastExec, true
		}
		if in.hasOrigin {
			return in.origin, true
		}
		return PageLoc{}, false
	}

	// ensureData outcomes for a suffix write that needs its sub-page's
	// bytes in the executor's buffers.
	const (
		srcLoaded = iota // a recovery read supplies the bytes (or already did)
		srcHost          // host-rooted chain: pull from this flush's hostData
		srcGone          // only physical copy already erased: data is lost
	)
	ensureData := func(op Op, fi int64) int {
		if emitted[fi] {
			return srcLoaded
		}
		in := info[fi]
		if in == nil {
			return srcHost
		}
		src, ok := srcOf(in)
		if !ok {
			return srcHost
		}
		if erasedPrefix[src.SB] {
			// Squeeze-shaped plans erase a victim before rewriting it; when
			// the erase sits in the executed prefix and the rewrite's bytes
			// died with the failed executor's buffers, no copy survives.
			return srcGone
		}
		out.Ops = append(out.Ops, Op{Kind: OpRead, Loc: src, LSPN: op.LSPN})
		emitted[fi] = true
		return srcLoaded
	}

	// Writes stranded on the retired block are re-placed with fresh
	// allocations — but only after the whole verbatim suffix has been
	// emitted. Appending them mid-walk would violate flash ordering two
	// ways: a fresh allocation can land on a free-pool block whose erase
	// is still later in the suffix (programming a block before erasing
	// it), and it can land on the open block at a page past verbatim
	// suffix writes that would then program behind it (out-of-order
	// pages). Their source reads DO stay in place: a read must precede
	// any later suffix erase of the block it reads.
	type displacedWrite struct {
		op Op
		gc bool
	}
	var moves []displacedWrite

	// Sub-pages whose bytes no surviving copy can supply: the current
	// fault's uncorrectable read, plus any chain srcGone discovers. Their
	// pending writes degrade to padding burns.
	lost := map[int64]bool{}
	if lostFi >= 0 {
		lost[lostFi] = true
	}

	for j, op := range suffix {
		switch op.Kind {
		case OpRead:
			if j == 0 && failed.Kind == OpRead {
				continue // the uncorrectable read itself
			}
			if op.LSPN < 0 {
				// Timing read of a stripe member: no mapping, no pairing —
				// re-issue verbatim (its page is physically intact; a plan
				// orders any erase of it after the read).
				out.Ops = append(out.Ops, op)
				continue
			}
			fi := f.fwdIndex(op.LSPN, op.Loc.Sub)
			if broken[op.Loc] {
				// The write that was to program this page was displaced
				// onto the retired block; load from the still-intact
				// source instead (or nothing, for host-rooted chains —
				// the paired write degrades to a hostData write below).
				ensureData(op, fi)
				continue
			}
			out.Ops = append(out.Ops, op)
			emitted[fi] = true
		case OpWrite:
			if op.Parity {
				// A parity program owns no mapping. Its block retired: the
				// whole stripe died with the block, drop it. Otherwise the
				// suffix re-issues it verbatim — earlier writes into the same
				// block re-issue verbatim too, so in-order programming holds.
				if !f.sbs[op.Loc.SB].retired {
					out.Ops = append(out.Ops, op)
				}
				continue
			}
			fi := f.fwdIndex(op.LSPN, op.Loc.Sub)
			if f.sbs[op.Loc.SB].retired {
				broken[op.Loc] = true
				// Re-place only a write that still owns fi's live
				// mapping; one superseded later in the plan (or whose
				// data an uncorrectable read lost) needs neither a
				// mapping nor a burn on a block nothing programs again.
				if packed := f.fwd[fi]; packed >= 0 && f.unpackLoc(packed, op.Loc.Sub) == op.Loc {
					gc := op.GC
					if op.GC {
						switch ensureData(op, fi) {
						case srcHost:
							gc = false
						case srcGone:
							// No surviving copy to migrate: unmap — honest
							// loss — and skip the re-placement (the write
							// targeted the retired block, so no live block
							// owes a burn for it).
							f.loseSub(fi)
							lost[fi] = true
							continue
						}
					}
					moves = append(moves, displacedWrite{op: op, gc: gc})
				}
				continue
			}
			if lost[fi] {
				// Padding program: the data is gone but the page must
				// still burn, or the live target block's next-page
				// pointer would diverge between model and flash.
				out.Ops = append(out.Ops, Op{Kind: OpWrite, Loc: op.Loc, LSPN: op.LSPN, GC: true})
				continue
			}
			if op.GC {
				switch ensureData(op, fi) {
				case srcHost:
					// Host-rooted chain whose read source was displaced:
					// re-program from the flush's host data.
					out.Ops = append(out.Ops, Op{Kind: OpWrite, Loc: op.Loc, LSPN: op.LSPN})
					continue
				case srcGone:
					// The only physical copy was erased before the fault and
					// the first-pass read's bytes died with the failed
					// executor: unmap and degrade to a padding burn.
					f.loseSub(fi)
					lost[fi] = true
					out.Ops = append(out.Ops, Op{Kind: OpWrite, Loc: op.Loc, LSPN: op.LSPN, GC: true})
					continue
				}
			}
			out.Ops = append(out.Ops, op)
		case OpErase:
			if f.sbs[op.SB].retired {
				continue
			}
			// Squeeze-shaped plans erase a victim BEFORE rewriting its
			// pages into the compacted block. A chain whose first-pass read
			// executed holds its bytes only in the failed executor's
			// buffers — gone — so its recovery re-read must land before
			// this erase burns the last physical copy (ensureData would
			// otherwise emit it at the paired write's position, after the
			// erase).
			for _, later := range suffix[j+1:] {
				if later.Kind != OpWrite || !later.GC || later.Parity || later.LSPN < 0 {
					continue
				}
				lfi := f.fwdIndex(later.LSPN, later.Loc.Sub)
				if emitted[lfi] || lost[lfi] || f.fwd[lfi] < 0 {
					continue
				}
				in := info[lfi]
				if in == nil {
					continue
				}
				if src, ok := srcOf(in); ok && src.SB == op.SB && !erasedPrefix[src.SB] {
					out.Ops = append(out.Ops, Op{Kind: OpRead, Loc: src, LSPN: later.LSPN})
					emitted[lfi] = true
				}
			}
			out.Ops = append(out.Ops, op)
		}
	}
	for i, m := range moves {
		if err := f.appendSub(now, m.op.LSPN, m.op.Loc.Sub, m.gc, &out); err != nil {
			// No space to re-place the remaining stranded writes: their
			// mappings point at pages the fault kept the flash from ever
			// programming, so unmap them — honest data loss — instead of
			// leaving phantom locations a later read would trip over. The
			// partial plan is still returned: the caller must execute it
			// to bring the flash in lockstep with the mutations already
			// made (see Write's contract on mid-plan errors).
			f.readOnly = true
			for _, rest := range moves[i:] {
				f.loseSub(f.fwdIndex(rest.op.LSPN, rest.op.Loc.Sub))
			}
			return out, err
		}
	}

	// With the stranded suffix re-placed, whatever is still valid in a
	// block retired by this fault was physically programmed before the
	// fault — migrate it to safety. (Erase-failure retirements are always
	// empty: a victim's migration precedes its erase in plan order.)
	var retired int
	switch {
	case errors.Is(cause, nand.ErrProgramFail):
		retired = failed.Loc.SB
	case errors.Is(cause, nand.ErrEraseFail):
		retired = failed.SB
	default:
		return out, nil
	}
	if f.sbs[retired].validSubs > 0 {
		if err := f.migrateSuperBlock(now, retired, &out, gcMove); err != nil {
			f.readOnly = true
			return out, err
		}
	}
	return out, nil
}
