package ftl

import (
	"fmt"

	"amber/internal/sim"
	"amber/internal/snap"
)

// EncodeState serializes the FTL's complete functional state: the forward
// map, per-super-block metadata, the free reserve and open block, the
// retirement order with the read-only latch, the counters and the plan
// sequence. The reverse map, valid bits and valid counts are derived from
// the forward map at decode time instead of being stored.
func (f *FTL) EncodeState(e *snap.Enc) {
	e.U64(uint64(len(f.fwd)))
	for _, v := range f.fwd {
		e.I64(v)
	}
	for i := range f.sbs {
		sb := &f.sbs[i]
		for _, np := range sb.nextPage {
			e.I64(int64(np))
		}
		e.U64(uint64(sb.eraseCount))
		e.I64(int64(sb.lastWrite))
		e.Bool(sb.closed)
		e.Bool(sb.free)
		e.Bool(sb.retired)
		e.U64(uint64(sb.recon))
	}
	e.U64(uint64(len(f.freeSB)))
	for _, sb := range f.freeSB {
		e.Int(sb)
	}
	e.Int(f.openSB)
	e.U64(f.stats.HostSubWrites)
	e.U64(f.stats.FlashSubWrites)
	e.U64(f.stats.GCRuns)
	e.U64(f.stats.GCMigrated)
	e.U64(f.stats.Erases)
	e.U64(f.stats.RMWReads)
	e.U64(f.stats.PartialRemaps)
	e.U64(f.stats.WearLevelMoves)
	e.U64(f.stats.Retirements)
	e.U64(f.stats.Replans)
	e.U64(f.stats.LostSubs)
	e.U64(f.stats.ParityWrites)
	e.U64(f.stats.Reconstructions)
	e.U64(f.stats.DoubleFaults)
	e.U64(f.stats.ScrubRuns)
	e.U64(f.stats.ScrubMigrated)
	e.U64(uint64(len(f.retireOrder)))
	for _, sb := range f.retireOrder {
		e.Int(sb)
	}
	e.Bool(f.readOnly)
	e.U64(f.planSeq)
}

// DecodeState reinstalls a state captured by EncodeState into f, which
// must be freshly constructed with the identical configuration. The
// reverse map, valid bits and per-super-block valid counts are rebuilt
// from the decoded forward map. On error f must be discarded.
func (f *FTL) DecodeState(d *snap.Dec) error {
	if n := d.U64(); d.Err() == nil && n != uint64(len(f.fwd)) {
		return fmt.Errorf("%w: forward map of %d entries, want %d", snap.ErrMismatch, n, len(f.fwd))
	}
	for i := range f.fwd {
		f.fwd[i] = d.I64()
	}
	for i := range f.sbs {
		sb := &f.sbs[i]
		for p := range sb.nextPage {
			sb.nextPage[p] = int32(d.I64())
		}
		sb.eraseCount = uint32(d.U64())
		sb.lastWrite = sim.Time(d.I64())
		sb.closed = d.Bool()
		sb.free = d.Bool()
		sb.retired = d.Bool()
		sb.recon = uint32(d.U64())
		sb.validSubs = 0
	}
	nFree := d.Len(f.sbCount)
	f.freeSB = f.freeSB[:0]
	for i := 0; i < nFree; i++ {
		f.freeSB = append(f.freeSB, d.Int())
	}
	f.openSB = d.Int()
	f.stats.HostSubWrites = d.U64()
	f.stats.FlashSubWrites = d.U64()
	f.stats.GCRuns = d.U64()
	f.stats.GCMigrated = d.U64()
	f.stats.Erases = d.U64()
	f.stats.RMWReads = d.U64()
	f.stats.PartialRemaps = d.U64()
	f.stats.WearLevelMoves = d.U64()
	f.stats.Retirements = d.U64()
	f.stats.Replans = d.U64()
	f.stats.LostSubs = d.U64()
	f.stats.ParityWrites = d.U64()
	f.stats.Reconstructions = d.U64()
	f.stats.DoubleFaults = d.U64()
	f.stats.ScrubRuns = d.U64()
	f.stats.ScrubMigrated = d.U64()
	nRet := d.Len(f.sbCount)
	f.retireOrder = f.retireOrder[:0]
	for i := 0; i < nRet; i++ {
		f.retireOrder = append(f.retireOrder, d.Int())
	}
	f.readOnly = d.Bool()
	f.planSeq = d.U64()
	if err := d.Err(); err != nil {
		return err
	}

	// Rebuild the derived maps from the forward map.
	for i := range f.rev {
		f.rev[i] = -1
		f.valid[i] = false
	}
	for fi := range f.fwd {
		packed := f.fwd[fi]
		if packed < 0 {
			continue
		}
		sub := fi % f.subCount
		loc := f.unpackLoc(packed, sub)
		if loc.SB < 0 || loc.SB >= f.sbCount || loc.Page < 0 || loc.Page >= f.pagesPerSB ||
			loc.Plane < 0 || loc.Plane >= f.subCount {
			return fmt.Errorf("%w: forward entry %d decodes to out-of-range %+v", snap.ErrCorrupt, fi, loc)
		}
		pi := f.physIndex(loc)
		if f.valid[pi] {
			return fmt.Errorf("%w: physical sub %+v mapped twice", snap.ErrCorrupt, loc)
		}
		f.rev[pi] = int64(fi)
		f.valid[pi] = true
		f.sbs[loc.SB].validSubs++
	}
	for _, sb := range f.freeSB {
		if sb < 0 || sb >= f.sbCount {
			return fmt.Errorf("%w: free super-block %d out of range", snap.ErrCorrupt, sb)
		}
	}
	for _, sb := range f.retireOrder {
		if sb < 0 || sb >= f.sbCount {
			return fmt.Errorf("%w: retired super-block %d out of range", snap.ErrCorrupt, sb)
		}
	}
	if f.openSB < -1 || f.openSB >= f.sbCount {
		return fmt.Errorf("%w: open super-block %d out of range", snap.ErrCorrupt, f.openSB)
	}
	return nil
}
