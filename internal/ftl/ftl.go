// Package ftl implements the flash translation layer of Amber's firmware
// stack (§II-B, §III-B): super-page-granular page-level mapping, reserved
// blocks with a configurable over-provisioning ratio, garbage collection
// with Greedy and Cost-Benefit victim selection, dynamic and static
// wear-leveling, and the §IV-C partial-update optimization that remaps
// sub-pages of a super-page individually instead of read-modify-writing the
// whole stripe.
//
// The FTL is a pure mapping machine: it returns a Plan of physical page
// operations (reads, programs, erases, in order) and the caller — the flash
// interface layer — schedules them onto the storage complex. This keeps
// the layer unit-testable against a model of the physical constraints.
package ftl

import (
	"errors"
	"fmt"

	"amber/internal/nand"
	"amber/internal/sim"
)

// ErrReadOnly marks the device's graceful-degradation end state: grown bad
// blocks have exhausted the spare reserve, so new host writes are refused
// (wrapped with this sentinel) while reads keep working. Matched with
// errors.Is.
var ErrReadOnly = errors.New("ftl: device is read-only (grown bad blocks exhausted spare reserve)")

// GCPolicy selects the garbage-collection victim scoring.
type GCPolicy int

// Victim-selection policies.
const (
	// Greedy picks the super-block with the fewest valid sub-pages [41].
	Greedy GCPolicy = iota
	// CostBenefit weighs reclaimable space against migration cost and block
	// age [42]: score = (1-u)/(2u) * age.
	CostBenefit
)

func (p GCPolicy) String() string {
	if p == CostBenefit {
		return "cost-benefit"
	}
	return "greedy"
}

// Config parameterizes the FTL.
type Config struct {
	Geometry nand.Geometry
	// OPRatio is the fraction of super-blocks reserved as over-provisioning
	// (paper default 20%, Fig. 11 sweeps 5-20%).
	OPRatio float64
	// GCPolicy selects victim scoring.
	GCPolicy GCPolicy
	// GCFreeThreshold triggers GC when free super-blocks drop to or below
	// this count; at least 2 are needed so GC always has an open block to
	// migrate into.
	GCFreeThreshold int
	// PartialUpdate enables the §IV-C super-page hashmap optimization:
	// sub-page writes are remapped individually rather than triggering a
	// read-modify-write of the whole super-page.
	PartialUpdate bool
	// WearLevelDelta triggers static wear-leveling when the spread between
	// max and min block erase counts exceeds it. Zero disables.
	WearLevelDelta uint32
	// SpareBlocks is the number of grown-bad-block retirements the device
	// absorbs before transitioning to read-only. Zero selects the default
	// reservation, max(1, super-blocks/16).
	SpareBlocks int
	// RAINWidth enables die-level RAIN parity: every RAINWidth data planes
	// form a stripe group with one additional parity plane, and each
	// completed stripe row gets a parity page (the XOR of the row's data
	// pages) programmed as part of the same certified plan. An uncorrectable
	// read of a data page then reconstructs from the surviving stripe
	// members instead of losing the sub-page. RAINWidth+1 must divide the
	// geometry's total planes; zero disables RAIN entirely.
	RAINWidth int
}

// Validate reports descriptive configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.OPRatio < 0.01 || c.OPRatio > 0.5 {
		return fmt.Errorf("ftl: OPRatio %v outside [0.01, 0.5]", c.OPRatio)
	}
	if c.GCFreeThreshold < 2 {
		return fmt.Errorf("ftl: GCFreeThreshold must be >= 2, got %d", c.GCFreeThreshold)
	}
	minSBs := c.GCFreeThreshold + 2
	if c.Geometry.BlocksPerPlane < minSBs {
		return fmt.Errorf("ftl: geometry has %d super-blocks, need >= %d", c.Geometry.BlocksPerPlane, minSBs)
	}
	if c.SpareBlocks < 0 {
		return fmt.Errorf("ftl: SpareBlocks must be >= 0, got %d", c.SpareBlocks)
	}
	if c.RAINWidth < 0 {
		return fmt.Errorf("ftl: RAINWidth must be >= 0, got %d", c.RAINWidth)
	}
	if c.RAINWidth > 0 {
		if c.RAINWidth > 32 {
			return fmt.Errorf("ftl: RAINWidth %d exceeds the 32-plane stripe mask", c.RAINWidth)
		}
		if stripe := c.RAINWidth + 1; c.Geometry.TotalPlanes()%stripe != 0 {
			return fmt.Errorf("ftl: RAIN stripe of %d planes does not divide %d total planes",
				stripe, c.Geometry.TotalPlanes())
		}
	}
	return nil
}

// PageLoc names one physical sub-page: page Page of plane Plane in
// super-block SB, holding logical sub-page Sub of its super-page. The
// allocator prefers Plane == Sub (channel-striped layout for maximum bus
// overlap) but may place a sub-page on another plane when the preferred
// plane's append point is full — the flexibility that keeps GC compaction
// from wedging under plane-skewed partial updates.
type PageLoc struct {
	SB    int
	Page  int
	Plane int
	Sub   int
}

// PageWrite is a program the FIL must issue, with the owning logical
// super-page for accounting.
type PageWrite struct {
	Loc  PageLoc
	LSPN int64
	// GC marks migration writes (vs. host writes) for WAF accounting.
	GC bool
}

// PageRead is a pre-read the FIL must issue (RMW fill or GC migration
// source), with the owning logical super-page so its data can be paired
// with the corresponding rewrite.
type PageRead struct {
	Loc  PageLoc
	LSPN int64
}

// OpKind distinguishes plan operations.
type OpKind int

// Plan operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpErase
)

// ParityTag is the OOB logical tag stamped on RAIN parity programs: not a
// forward-map index, so Mount never maps a parity page as data (the FI < 0
// skip), but distinguishable from raw untagged programs (-1).
const ParityTag int64 = -2

// Op is one physical operation in a plan, in causal order: a write may
// depend on the read of the same (LSPN, Sub) issued before it, and a write
// into a super-block erased earlier in the same plan must follow that
// erase.
//
// A Parity write carries no logical sub-page (LSPN is -1): the executor
// computes its payload as the XOR of the stripe row's data pages and stamps
// the page's OOB with Mask. Loc.Sub of a parity op holds the first data
// plane of its stripe group, so the op alone names every member: data
// planes [Loc.Sub, Loc.Plane), mask bit i covering plane Loc.Sub+i.
// Timing reads with LSPN -1 (reconstruction's stripe-member reads) are
// never paired with host data or mappings.
type Op struct {
	Kind   OpKind
	Loc    PageLoc // read/write target
	LSPN   int64   // owning logical super-page (read/write), -1 for parity/aux
	GC     bool    // write: migration/RMW rewrite rather than host data
	SB     int     // erase target super-block
	Parity bool    // write: RAIN parity program (payload = stripe XOR)
	Mask   uint32  // parity: stripe membership mask (bit i = data plane Loc.Sub+i)
}

// Plan is the ordered physical work produced by one FTL call. Ops must be
// executed respecting their order-induced dependencies.
type Plan struct {
	Ops []Op
	// GCRuns counts garbage collections triggered by this call.
	GCRuns int
	// Migrated counts valid sub-pages moved by GC.
	Migrated int
	// WearLevelMoves counts static wear-leveling migrations.
	WearLevelMoves int
	// Cert is the construction-time certification (see Cert). The zero
	// value marks a hand-built plan, which executors must validate
	// themselves. Note a copied Plan keeps its certificate: what protects
	// executors from copies is the sequence check — the original and the
	// copy carry the same number, so at most one of them (whichever runs
	// first, unmodified) is honored and the other breaks the chain.
	Cert Cert
}

// Cert certifies that a plan is valid by construction: the FTL knows the
// geometry bounds and every block's next-page pointer when it emits reads,
// writes and erases, so a plan it returns needs no second validation walk —
// provided the executor's flash is in lockstep with the FTL's model. The
// certificate binds the plan to its issuing FTL and to its position in that
// FTL's plan sequence; an executor (fil.FIL.AcceptCertified) honors it only
// while every certified plan has executed in issue order against a flash
// nothing else has mutated. Only the ftl package can mint a non-zero Cert,
// so hand-built plans always take the executor's slow validation path.
type Cert struct {
	issuer *FTL
	seq    uint64
}

// Certified reports whether the plan carries a certification at all.
func (c Cert) Certified() bool { return c.issuer != nil }

// By reports whether the certificate was minted by f.
func (c Cert) By(f *FTL) bool { return f != nil && c.issuer == f }

// Seq returns the plan's position in the issuing FTL's plan sequence.
func (c Cert) Seq() uint64 { return c.seq }

// ReadCert certifies a Lookup result: while the FTL's mapping model is in
// lockstep with the flash (the same invariant the plan-side Cert chain
// maintains), "mapped ⇒ written" holds by construction — the FTL only maps
// a sub-page when it plans the program for it, and certified plans execute
// in issue order — so the per-address written-bit walk (nand.CheckRead) a
// reader would otherwise do is redundant. The certificate binds the lookup
// to its issuing FTL and to the flash mutation epoch it was read under; an
// executor honors it only while its certified chain with that issuer is
// armed and the flash epoch still matches. Only the ftl package can mint a
// non-zero ReadCert, so hand-built address lists always take the
// executor's validation walk.
type ReadCert struct {
	issuer *FTL
	epoch  uint64
}

// Certified reports whether the lookup carries a certification at all.
func (c ReadCert) Certified() bool { return c.issuer != nil }

// By reports whether the certificate was minted by f.
func (c ReadCert) By(f *FTL) bool { return f != nil && c.issuer == f }

// Epoch returns the flash mutation epoch the lookup was performed under.
func (c ReadCert) Epoch() uint64 { return c.epoch }

// Reads returns the plan's pre-reads in order.
func (p Plan) Reads() []PageRead {
	var out []PageRead
	for _, op := range p.Ops {
		if op.Kind == OpRead {
			out = append(out, PageRead{Loc: op.Loc, LSPN: op.LSPN})
		}
	}
	return out
}

// Writes returns the plan's programs in order.
func (p Plan) Writes() []PageWrite {
	var out []PageWrite
	for _, op := range p.Ops {
		if op.Kind == OpWrite {
			out = append(out, PageWrite{Loc: op.Loc, LSPN: op.LSPN, GC: op.GC})
		}
	}
	return out
}

// Erases returns the erased super-blocks in order.
func (p Plan) Erases() []int {
	var out []int
	for _, op := range p.Ops {
		if op.Kind == OpErase {
			out = append(out, op.SB)
		}
	}
	return out
}

// Stats aggregates FTL activity.
type Stats struct {
	HostSubWrites  uint64 // sub-pages written on behalf of the host
	FlashSubWrites uint64 // total sub-pages programmed (host + GC + RMW)
	GCRuns         uint64
	GCMigrated     uint64
	Erases         uint64
	RMWReads       uint64 // pre-reads caused by partial writes without the optimization
	PartialRemaps  uint64 // sub-page writes served by the partial-update hashmap
	WearLevelMoves uint64
	Retirements    uint64 // super-blocks retired as grown bad blocks
	Replans        uint64 // recovery plans built after injected plan faults
	LostSubs       uint64 // sub-pages unmapped after uncorrectable reads
	ParityWrites   uint64 // RAIN parity pages programmed
	// Reconstructions counts uncorrectable reads answered from RAIN parity
	// (data re-homed, a latency event instead of loss); DoubleFaults counts
	// the reconstructions that could not proceed — a stripe member torn,
	// unwritten or itself uncorrectable — and fell back to honest data loss.
	Reconstructions uint64
	DoubleFaults    uint64
	ScrubRuns       uint64 // patrol-scrub super-block refreshes
	ScrubMigrated   uint64 // sub-pages migrated by patrol scrub
}

// WAF returns the write-amplification factor.
func (s Stats) WAF() float64 {
	if s.HostSubWrites == 0 {
		return 0
	}
	return float64(s.FlashSubWrites) / float64(s.HostSubWrites)
}

type superBlock struct {
	nextPage   []int32 // per-plane append pointer
	validSubs  int32
	eraseCount uint32
	lastWrite  sim.Time
	closed     bool
	free       bool
	// retired marks a grown bad block: never erased, programmed or chosen
	// as a GC/wear-leveling victim again. Still-valid sub-pages stay
	// readable until recovery migrates them out.
	retired bool
	// recon counts RAIN reconstructions sourced from this block since its
	// last erase; at reconScrubThreshold the block is flagged for a forced
	// scrub (NoteReconstruct).
	recon uint32
}

// FTL is the page-level translator. Not safe for concurrent use.
type FTL struct {
	cfg        Config
	subCount   int // planes per super-page
	pagesPerSB int
	sbCount    int

	// rainW is the RAIN stripe width (data planes per parity group), zero
	// when RAIN is off; dataPlanes is the number of planes carrying data
	// per super-block (= subCount without RAIN).
	rainW      int
	dataPlanes int

	// forward map: lspn*subCount+sub -> packed (sb, page, plane), -1 unmapped.
	fwd []int64
	// reverse map: physical sub-page -> fwd index (lspn*subCount+sub),
	// -1 invalid/unwritten.
	rev []int64
	// valid bit per physical sub-page.
	valid []bool

	sbs    []superBlock
	freeSB []int // stack of free super-blocks
	openSB int   // current append super-block, -1 none

	userLSPNs int64
	stats     Stats
	inGC      bool // reentrancy guard: GC's own writes must not trigger GC

	// spares is the grown-bad-block budget; retireOrder lists retired
	// super-blocks in retirement order (deterministic, rendered by the
	// golden tests); readOnly latches once retirements exceed the budget
	// and gates new host writes (recovery and reads proceed).
	spares      int
	retireOrder []int
	readOnly    bool

	// onRetire, when set, is invoked once per super-block retirement with
	// the retired super-block. The core wires it to the flash's durable
	// bad-block table (nand.MarkBadBlock per plane block), which is what
	// makes retirement state survive power loss and rebuild at Mount.
	onRetire func(sb int)

	// planSeq numbers the plans this FTL has certified. The FTL mutates its
	// mapping and append-pointer state eagerly at Write time, so plan N is
	// valid against a flash that has executed exactly plans 0..N-1 — the
	// contract the sequence number lets executors enforce.
	planSeq uint64

	// epochSource, when set (core wires it to nand.Flash.StateEpoch), lets
	// LookupCertified stamp its results with the flash mutation epoch the
	// mapping was read under — the freshness half of a read certificate.
	epochSource func() uint64

	// scratchOps backs the Ops slice of the plan returned by Write, reused
	// across calls: the submit path executes each plan synchronously before
	// the next FTL call, so one growable buffer serves every request.
	scratchOps []Op
}

// New constructs an FTL over the given geometry.
func New(cfg Config) (*FTL, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Geometry
	f := &FTL{
		cfg:        cfg,
		subCount:   g.TotalPlanes(),
		pagesPerSB: g.PagesPerBlock,
		sbCount:    g.BlocksPerPlane,
		openSB:     -1,
	}
	f.dataPlanes = f.subCount
	if cfg.RAINWidth > 0 {
		f.rainW = cfg.RAINWidth
		f.dataPlanes = f.subCount / (f.rainW + 1) * f.rainW
	}
	totalSuperPages := int64(f.sbCount) * int64(f.pagesPerSB)
	// RAIN reserves one plane per stripe group for parity, shrinking the
	// physical sub-page budget by dataPlanes/subCount before the OP ratio
	// carves out its share.
	f.userLSPNs = int64(float64(totalSuperPages) * float64(f.dataPlanes) / float64(f.subCount) * (1 - cfg.OPRatio))
	// Regardless of the OP ratio, at least two super-blocks stay out of the
	// user capacity: one open append block and one block of GC headroom.
	// Without this floor a fully-valid device can strand GC with no free
	// block to migrate into.
	if maxUser := int64(f.sbCount-2) * int64(f.pagesPerSB) * int64(f.dataPlanes) / int64(f.subCount); f.userLSPNs > maxUser {
		f.userLSPNs = maxUser
	}
	if f.userLSPNs < 1 {
		return nil, fmt.Errorf("ftl: over-provisioning leaves no user capacity")
	}
	f.fwd = make([]int64, f.userLSPNs*int64(f.subCount))
	for i := range f.fwd {
		f.fwd[i] = -1
	}
	physSubs := int64(f.sbCount) * int64(f.pagesPerSB) * int64(f.subCount)
	f.rev = make([]int64, physSubs)
	for i := range f.rev {
		f.rev[i] = -1
	}
	f.valid = make([]bool, physSubs)
	f.sbs = make([]superBlock, f.sbCount)
	f.freeSB = make([]int, 0, f.sbCount)
	for i := f.sbCount - 1; i >= 0; i-- {
		f.sbs[i] = superBlock{nextPage: make([]int32, f.subCount), free: true}
		f.freeSB = append(f.freeSB, i)
	}
	f.spares = cfg.SpareBlocks
	if f.spares == 0 {
		f.spares = f.sbCount / 16
		if f.spares < 1 {
			f.spares = 1
		}
	}
	return f, nil
}

// Config returns the configuration.
func (f *FTL) Config() Config { return f.cfg }

// UserSuperPages returns the exported logical capacity in super-pages.
func (f *FTL) UserSuperPages() int64 { return f.userLSPNs }

// SubPagesPerSuperPage returns the number of physical pages striped into
// one super-page (= total planes).
func (f *FTL) SubPagesPerSuperPage() int { return f.subCount }

// SuperPageBytes returns the byte size of one super-page.
func (f *FTL) SuperPageBytes() int { return f.subCount * f.cfg.Geometry.PageSize }

// Stats returns a copy of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// FreeSuperBlocks returns the current reserve of erased super-blocks.
func (f *FTL) FreeSuperBlocks() int { return len(f.freeSB) }

// ReadOnly reports whether grown bad blocks exhausted the spare reserve
// and the device now refuses new host writes.
func (f *FTL) ReadOnly() bool { return f.readOnly }

// ForceReadOnly latches the drive read-only immediately, exactly as if the
// grown-bad-block budget had just been exhausted: writes refuse with
// ErrReadOnly, reads keep serving, and the latch is permanent for the life
// of the FTL like the organic wear-out one. Device-level fault injection
// (internal/farm) uses it to schedule a whole-device read-only latch
// without having to provoke real block retirements.
func (f *FTL) ForceReadOnly() { f.readOnly = true }

// SpareHeadroom returns how many more super-block retirements the device
// absorbs before going read-only (floored at zero).
func (f *FTL) SpareHeadroom() int {
	if h := f.spares - len(f.retireOrder); h > 0 {
		return h
	}
	return 0
}

// RetiredSuperBlocks returns the grown bad blocks in retirement order.
func (f *FTL) RetiredSuperBlocks() []int {
	out := make([]int, len(f.retireOrder))
	copy(out, f.retireOrder)
	return out
}

// SetRetireHook registers fn to be called once per super-block retirement.
// The core uses it to mirror retirements into the flash's durable
// bad-block table; Mount reads that table back to rebuild the retirement
// order after power loss.
func (f *FTL) SetRetireHook(fn func(sb int)) { f.onRetire = fn }

// PlanSeq returns the sequence number the next certified plan will carry.
// Executors binding to this FTL (fil.FIL.AcceptCertified) record it as the
// first certificate they will accept.
func (f *FTL) PlanSeq() uint64 { return f.planSeq }

// certify stamps a successfully constructed plan as pre-checked. Error
// paths never certify — and once plan construction may have mutated the
// mapping model, they must still consume a sequence number (see Write's
// burn defer): a partially built plan never executes, so the flash epoch
// alone cannot reveal the divergence, and only the sequence gap forces the
// executor's chain to break and every later plan to take the walk.
func (f *FTL) certify(p *Plan) {
	p.Cert = Cert{issuer: f, seq: f.planSeq}
	f.planSeq++
}

func (f *FTL) physIndex(loc PageLoc) int64 {
	return (int64(loc.SB)*int64(f.pagesPerSB)+int64(loc.Page))*int64(f.subCount) + int64(loc.Plane)
}

func (f *FTL) fwdIndex(lspn int64, sub int) int64 {
	return lspn*int64(f.subCount) + int64(sub)
}

func (f *FTL) packLoc(loc PageLoc) int64 {
	return (int64(loc.SB)*int64(f.pagesPerSB)+int64(loc.Page))*int64(f.subCount) + int64(loc.Plane)
}

func (f *FTL) unpackLoc(packed int64, sub int) PageLoc {
	plane := int(packed % int64(f.subCount))
	rest := packed / int64(f.subCount)
	return PageLoc{
		SB:    int(rest / int64(f.pagesPerSB)),
		Page:  int(rest % int64(f.pagesPerSB)),
		Plane: plane,
		Sub:   sub,
	}
}

// checkLSPN validates a logical super-page number.
func (f *FTL) checkLSPN(lspn int64) error {
	if lspn < 0 || lspn >= f.userLSPNs {
		return fmt.Errorf("ftl: LSPN %d out of range [0,%d)", lspn, f.userLSPNs)
	}
	return nil
}

// Lookup returns the physical locations of the mapped sub-pages of lspn.
// Unmapped sub-pages are omitted; reading an entirely unmapped super-page
// returns an empty slice (the device returns zeroes).
func (f *FTL) Lookup(lspn int64) ([]PageLoc, error) {
	return f.LookupInto(make([]PageLoc, 0, f.subCount), lspn)
}

// LookupInto is Lookup appending into dst, so the submit hot path can
// reuse a per-request buffer. Pass dst[:0] to recycle capacity.
func (f *FTL) LookupInto(dst []PageLoc, lspn int64) ([]PageLoc, error) {
	locs, _, err := f.LookupCertified(dst, lspn)
	return locs, err
}

// LookupCertified is LookupInto stamping the result with a read
// certificate: every returned location is mapped, and while the issuing
// FTL's certified chain is armed, mapped ⇒ written — so an executor
// honoring the certificate may skip per-address read validation. The
// certificate is zero (uncertified) when no epoch source is wired.
func (f *FTL) LookupCertified(dst []PageLoc, lspn int64) ([]PageLoc, ReadCert, error) {
	if err := f.checkLSPN(lspn); err != nil {
		return nil, ReadCert{}, err
	}
	locs := dst
	for sub := 0; sub < f.subCount; sub++ {
		packed := f.fwd[f.fwdIndex(lspn, sub)]
		if packed >= 0 {
			locs = append(locs, f.unpackLoc(packed, sub))
		}
	}
	var cert ReadCert
	if f.epochSource != nil {
		cert = ReadCert{issuer: f, epoch: f.epochSource()}
	}
	return locs, cert, nil
}

// SetEpochSource wires the flash mutation-epoch source LookupCertified
// stamps into read certificates (the core passes nand.Flash.StateEpoch).
// Without a source, lookups return uncertified results and readers walk
// validation as before.
func (f *FTL) SetEpochSource(fn func() uint64) { f.epochSource = fn }

// Address converts a PageLoc to the NAND physical address.
func (f *FTL) Address(loc PageLoc) nand.Address {
	g := f.cfg.Geometry
	// The global plane index decomposes into (channel, package, die, plane)
	// with channel varying fastest, so consecutive planes stripe across
	// channels first — the layout that maximizes bus overlap.
	sub := loc.Plane
	ch := sub % g.Channels
	rest := sub / g.Channels
	pkg := rest % g.PackagesPerChannel
	rest /= g.PackagesPerChannel
	die := rest % g.DiesPerPackage
	plane := rest / g.DiesPerPackage
	return nand.Address{
		Channel: ch, Package: pkg, Die: die, Plane: plane,
		Block: loc.SB, Page: loc.Page,
	}
}

// allocOpen ensures an open super-block exists with room on at least one
// plane, running GC beforehand when the reserve is low. It appends any GC
// work to the plan.
func (f *FTL) allocOpen(now sim.Time, plan *Plan) error {
	if f.openSB >= 0 {
		sb := &f.sbs[f.openSB]
		for p, np := range sb.nextPage {
			if f.isParityPlane(p) {
				continue // parity planes never take data pages
			}
			if int(np) < f.pagesPerSB {
				return nil
			}
		}
		// Every data plane is full: top off the parity planes (the per-append
		// catch-up already did unless the block was reopened skewed at mount)
		// and close the block.
		if f.rainW > 0 {
			for g := 0; g < f.subCount/(f.rainW+1); g++ {
				f.parityCatchupGroup(f.openSB, g, plan)
			}
		}
		sb.closed = true
		f.openSB = -1
	}
	if !f.inGC && len(f.freeSB) <= f.cfg.GCFreeThreshold {
		f.inGC = true
		// Bounded collection: plane-skewed partial updates can make a single
		// collect net-zero (migration consumes a block as the erase frees
		// one), so cap the work per allocation instead of insisting the
		// reserve recovers fully here.
		for tries := 0; len(f.freeSB) <= f.cfg.GCFreeThreshold && tries < f.sbCount; tries++ {
			ok, err := f.collect(now, plan)
			if err != nil {
				f.inGC = false
				return err
			}
			if !ok {
				break // nothing reclaimable; dip into the OP reserve
			}
		}
		f.inGC = false
	}
	if len(f.freeSB) == 0 {
		if len(f.retireOrder) > 0 {
			// Retirements permanently shrank the pool: this exhaustion
			// cannot resolve (GC already found nothing reclaimable), so
			// the device latches read-only even if the spare budget was
			// not formally overrun — effective spare exhaustion.
			f.readOnly = true
		}
		return fmt.Errorf("%w: no free super-blocks (device full beyond OP)", ErrReadOnly)
	}
	f.openSB = f.popFreeSB()
	sb := &f.sbs[f.openSB]
	sb.free = false
	sb.closed = false
	return nil
}

// popFreeSB removes and returns the free super-block with the lowest erase
// count — dynamic wear-leveling by allocation order.
func (f *FTL) popFreeSB() int {
	best := 0
	for i := 1; i < len(f.freeSB); i++ {
		if f.sbs[f.freeSB[i]].eraseCount < f.sbs[f.freeSB[best]].eraseCount {
			best = i
		}
	}
	sb := f.freeSB[best]
	f.freeSB = append(f.freeSB[:best], f.freeSB[best+1:]...)
	return sb
}

// appendSub programs the next page of the open super-block and installs
// the mapping lspn/sub -> there. The preferred plane is sub's stripe slot;
// when that plane's append point is full the least-filled plane takes the
// page instead. Any previous mapping is invalidated. The write is appended
// to the plan.
func (f *FTL) appendSub(now sim.Time, lspn int64, sub int, gc bool, plan *Plan) error {
	if err := f.allocOpen(now, plan); err != nil {
		return err
	}
	sb := &f.sbs[f.openSB]
	plane := sub % f.subCount
	if f.rainW > 0 {
		plane = f.dataPlane(sub % f.dataPlanes)
	}
	if int(sb.nextPage[plane]) >= f.pagesPerSB {
		best := -1
		for p := 0; p < f.subCount; p++ {
			if f.isParityPlane(p) {
				continue
			}
			if int(sb.nextPage[p]) < f.pagesPerSB && (best < 0 || sb.nextPage[p] < sb.nextPage[best]) {
				best = p
			}
		}
		plane = best // allocOpen guaranteed at least one open data plane
	}
	loc := PageLoc{SB: f.openSB, Page: int(sb.nextPage[plane]), Plane: plane, Sub: sub}
	sb.nextPage[plane]++
	sb.lastWrite = now

	// Invalidate old location.
	fi := f.fwdIndex(lspn, sub)
	if old := f.fwd[fi]; old >= 0 {
		oldLoc := f.unpackLoc(old, sub)
		pi := f.physIndex(oldLoc)
		if f.valid[pi] {
			f.valid[pi] = false
			f.rev[pi] = -1
			f.sbs[oldLoc.SB].validSubs--
		}
	}
	// Install new mapping.
	pi := f.physIndex(loc)
	f.fwd[fi] = f.packLoc(loc)
	f.rev[pi] = fi
	f.valid[pi] = true
	sb.validSubs++

	plan.Ops = append(plan.Ops, Op{Kind: OpWrite, Loc: loc, LSPN: lspn, GC: gc})
	f.stats.FlashSubWrites++
	if f.rainW > 0 {
		// Parity rides the same plan as the data: once this append completed
		// a stripe row (every data plane of the group past it), its parity
		// program is emitted right here, after the row's data writes.
		f.parityCatchupGroup(f.openSB, plane/(f.rainW+1), plan)
	}
	return nil
}

// Write maps a host write of lspn covering the sub-pages set in dirty
// (nil means the full super-page) and returns the physical plan. Without
// the partial-update optimization, a partial write triggers a
// read-modify-write: the untouched mapped sub-pages are read and rewritten
// so the whole super-page stays physically contiguous.
//
// The returned plan's Ops slice aliases a per-FTL scratch buffer valid
// until the next Write call; execute (or copy) it before writing again.
// A successfully constructed plan — host writes, RMW, GC migrations and
// wear-leveling alike — is stamped as certified (see Cert): every address
// is in bounds and every program lands on its block's next in-order page
// by construction, so a lockstep executor may skip revalidation.
func (f *FTL) Write(now sim.Time, lspn int64, dirty []bool) (Plan, error) {
	plan := Plan{Ops: f.scratchOps[:0]}
	defer func() { f.scratchOps = plan.Ops[:0] }()
	if f.readOnly {
		return plan, fmt.Errorf("%w: write of LSPN %d refused", ErrReadOnly, lspn)
	}
	if err := f.checkLSPN(lspn); err != nil {
		return plan, err
	}
	if dirty != nil && len(dirty) != f.subCount {
		return plan, fmt.Errorf("ftl: dirty mask has %d entries, want %d", len(dirty), f.subCount)
	}
	full := dirty == nil
	if !full {
		full = true
		any := false
		for _, d := range dirty {
			if d {
				any = true
			} else {
				full = false
			}
		}
		if !any {
			f.certify(&plan)
			return plan, nil
		}
	}

	// From here on plan construction mutates the mapping model (appendSub
	// installs mappings and advances append pointers before a later sub can
	// fail), so a mid-plan error leaves the model ahead of the flash. Two
	// defenses keep that from ever being observable. First, every mutation
	// appends its op to the plan before the next mutation can fail, so the
	// partial plan returned alongside the error replays exactly the
	// mutations made — the caller (core.flushEviction) executes it to
	// restore lockstep before surfacing the error; this matters on a
	// degrading device, where allocation failures (ErrReadOnly) are
	// survivable outcomes the host keeps running past, not run-enders.
	// Second, burn this plan's sequence number on every error return: the
	// gap breaks the executor's chain at its sequence check, so every later
	// plan takes the validation walk instead of a certified fast path.
	// certify() consumes the number on success and clears the burn.
	burn := true
	defer func() {
		if burn {
			f.planSeq++
		}
	}()

	writeSub := func(sub int, gc bool) error {
		if !gc {
			f.stats.HostSubWrites++
		}
		return f.appendSub(now, lspn, sub, gc, &plan)
	}

	switch {
	case full:
		for sub := 0; sub < f.subCount; sub++ {
			if err := writeSub(sub, false); err != nil {
				return plan, err
			}
		}
	case f.cfg.PartialUpdate:
		// §IV-C: remap only the dirty sub-pages via the super-page hashmap
		// (here: the per-sub forward map), leaving clean sub-pages where
		// they are.
		for sub := 0; sub < f.subCount; sub++ {
			if dirty[sub] {
				f.stats.PartialRemaps++
				if err := writeSub(sub, false); err != nil {
					return plan, err
				}
			}
		}
	default:
		// Read-modify-write: pre-read mapped clean sub-pages, then rewrite
		// the full stripe.
		for sub := 0; sub < f.subCount; sub++ {
			if !dirty[sub] {
				if packed := f.fwd[f.fwdIndex(lspn, sub)]; packed >= 0 {
					plan.Ops = append(plan.Ops, Op{Kind: OpRead, Loc: f.unpackLoc(packed, sub), LSPN: lspn})
					f.stats.RMWReads++
				}
			}
		}
		for sub := 0; sub < f.subCount; sub++ {
			gcWrite := !dirty[sub] // rewrites of clean data amplify writes
			if !gcWrite {
				f.stats.HostSubWrites++
			}
			if err := f.appendSub(now, lspn, sub, gcWrite, &plan); err != nil {
				return plan, err
			}
		}
	}

	if f.cfg.WearLevelDelta > 0 {
		f.maybeWearLevel(now, &plan)
	}
	f.certify(&plan)
	burn = false
	return plan, nil
}

// Trim unmaps the super-page, invalidating its physical sub-pages without
// any flash work (the device-level TRIM/deallocate path).
func (f *FTL) Trim(lspn int64) error {
	if err := f.checkLSPN(lspn); err != nil {
		return err
	}
	for sub := 0; sub < f.subCount; sub++ {
		fi := f.fwdIndex(lspn, sub)
		if packed := f.fwd[fi]; packed >= 0 {
			loc := f.unpackLoc(packed, sub)
			pi := f.physIndex(loc)
			if f.valid[pi] {
				f.valid[pi] = false
				f.rev[pi] = -1
				f.sbs[loc.SB].validSubs--
			}
			f.fwd[fi] = -1
		}
	}
	return nil
}

// Mapped reports whether any sub-page of lspn is mapped.
func (f *FTL) Mapped(lspn int64) bool {
	for sub := 0; sub < f.subCount; sub++ {
		if f.fwd[f.fwdIndex(lspn, sub)] >= 0 {
			return true
		}
	}
	return false
}

// EraseCount returns the erase count of a super-block.
func (f *FTL) EraseCount(sb int) uint32 { return f.sbs[sb].eraseCount }

// MaxEraseSpread returns max-min erase counts across super-blocks.
func (f *FTL) MaxEraseSpread() uint32 {
	if len(f.sbs) == 0 {
		return 0
	}
	min, max := f.sbs[0].eraseCount, f.sbs[0].eraseCount
	for i := range f.sbs {
		c := f.sbs[i].eraseCount
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	return max - min
}

// ValidSubs returns the valid sub-page count of a super-block (testing and
// GC-scoring aid).
func (f *FTL) ValidSubs(sb int) int { return int(f.sbs[sb].validSubs) }

// CheckInvariants verifies internal consistency: the forward map is
// injective, reverse entries match forward entries, and per-super-block
// valid counts equal the valid bits. It is used by property tests and is
// cheap enough to call after every operation on small geometries.
func (f *FTL) CheckInvariants() error {
	counts := make([]int32, f.sbCount)
	seen := make(map[int64]int64) // physical sub index -> lspn
	for lspn := int64(0); lspn < f.userLSPNs; lspn++ {
		for sub := 0; sub < f.subCount; sub++ {
			packed := f.fwd[f.fwdIndex(lspn, sub)]
			if packed < 0 {
				continue
			}
			loc := f.unpackLoc(packed, sub)
			pi := f.physIndex(loc)
			if prev, dup := seen[pi]; dup {
				return fmt.Errorf("ftl: physical sub %v mapped by both LSPN %d and %d", loc, prev, lspn)
			}
			seen[pi] = lspn
			if !f.valid[pi] {
				return fmt.Errorf("ftl: mapped sub %v not marked valid", loc)
			}
			if f.rev[pi] != f.fwdIndex(lspn, sub) {
				return fmt.Errorf("ftl: reverse map of %v is %d, want %d", loc, f.rev[pi], f.fwdIndex(lspn, sub))
			}
			counts[loc.SB]++
		}
	}
	for sb := range f.sbs {
		if counts[sb] != f.sbs[sb].validSubs {
			return fmt.Errorf("ftl: SB %d valid count %d, recomputed %d", sb, f.sbs[sb].validSubs, counts[sb])
		}
	}
	return nil
}
