package ftl

import (
	"testing"

	"amber/internal/nand"
	"amber/internal/sim"
)

// fuzzImage drives a fresh RAIN-striped FTL through a fill-plus-overwrite
// trajectory and executes every plan against a data-tracked flash the way
// fil does — programs stamp the same OOB tag and stripe mask, erases wipe
// every plane — so the durable image Mount scans is exactly what a powered
// run leaves behind: current and stale claimants, migrated chains, parity
// rows, erased blocks.
func fuzzImage(tb testing.TB) (Config, *nand.Flash) {
	tb.Helper()
	cfg := testConfig()
	cfg.RAINWidth = 3 // 4 planes: one group of 3 data + 1 parity
	f, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	flash, err := nand.New(cfg.Geometry, nand.Timing{
		ReadFast:  sim.FromMicroseconds(60),
		ReadSlow:  sim.FromMicroseconds(105),
		ProgFast:  sim.FromMicroseconds(820),
		ProgSlow:  sim.FromMicroseconds(2250),
		Erase:     sim.FromMicroseconds(3000),
		BusMTps:   333,
		CmdCycles: sim.FromNanoseconds(100),
	}, nand.Power{}, nand.MLC, nand.Options{TrackData: true, Seed: 7})
	if err != nil {
		tb.Fatal(err)
	}

	now := sim.FromMicroseconds(1)
	ps := cfg.Geometry.PageSize
	planes := cfg.Geometry.TotalPlanes()
	version := byte(0)
	type subKey struct {
		lspn int64
		sub  int
	}
	exec := func(plan Plan) {
		reads := make(map[subKey][]byte)
		for _, op := range plan.Ops {
			switch op.Kind {
			case OpRead:
				buf := make([]byte, ps)
				if _, err := flash.Read(now, f.Address(op.Loc), buf); err != nil {
					tb.Fatalf("plan read %v: %v", op.Loc, err)
				}
				reads[subKey{op.LSPN, op.Loc.Sub}] = buf
			case OpWrite:
				addr := f.Address(op.Loc)
				if op.Parity {
					if _, err := flash.ProgramTagged(now, addr, make([]byte, ps), ParityTag); err != nil {
						tb.Fatalf("parity program %v: %v", op.Loc, err)
					}
					flash.SetPageStripe(addr, op.Mask)
					continue
				}
				data := reads[subKey{op.LSPN, op.Loc.Sub}]
				if data == nil {
					data = make([]byte, ps)
					for i := range data {
						data[i] = byte(int(version) + int(op.LSPN)*31 + op.Loc.Sub*7 + i)
					}
				}
				tag := op.LSPN*int64(planes) + int64(op.Loc.Sub)
				if _, err := flash.ProgramTagged(now, addr, data, tag); err != nil {
					tb.Fatalf("plan program %v: %v", op.Loc, err)
				}
			case OpErase:
				for p := 0; p < planes; p++ {
					addr := f.Address(PageLoc{SB: op.SB, Page: 0, Plane: p, Sub: p})
					if _, err := flash.Erase(now, addr); err != nil {
						tb.Fatalf("plan erase SB %d plane %d: %v", op.SB, p, err)
					}
				}
			}
		}
	}
	write := func(lspn int64) {
		version++
		plan, err := f.Write(now, lspn, nil)
		if err != nil {
			tb.Fatalf("write LSPN %d: %v", lspn, err)
		}
		exec(plan)
	}
	n := f.UserSuperPages()
	for lspn := int64(0); lspn < n; lspn++ {
		write(lspn)
	}
	// Overwrite a hot prefix: stale claimants, GC migrations, erased and
	// re-filled blocks, parity catch-up rows mid-stripe.
	hot := n/2 + 1
	for i := int64(0); i < 2*n; i++ {
		write(i % hot)
	}
	return cfg, flash
}

// FuzzMount fuzzes mount-time recovery against silent OOB corruption:
// arbitrary tamper scripts (page index + field selector triples, applied
// via nand.TamperOOB as torn-verdict flips and bit-rot in the tag,
// sequence, checksum and stripe mask) must leave Mount returning a
// structurally consistent FTL — never a panic, never a mapping onto a
// page whose checksum fails or whose tag disagrees with the map — and the
// post-mount cleanup and parity catch-up passes must execute cleanly on
// the surviving image.
func FuzzMount(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                      // flip page 0's torn verdict
	f.Add([]byte{0, 17, 1, 0, 33, 2, 0, 49, 3}) // tag/seq/sum rot on a spread
	f.Add([]byte{0, 3, 4, 0, 7, 4})             // stripe-mask rot on parity planes
	f.Add([]byte{255, 255, 255, 128, 0, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		cfg, flash := fuzzImage(t)
		total := cfg.Geometry.TotalPages()
		// Cap the tamper count: each triple corrupts one OOB field, and a
		// bounded gauntlet keeps iterations fast without narrowing the
		// reachable corruption space (any subset of fields is expressible).
		for i := 0; i+2 < len(script) && i < 3*64; i += 3 {
			pageIdx := (int64(script[i])<<8 | int64(script[i+1])) % total
			flash.TamperOOB(pageIdx, script[i+2])
		}

		mounted, _, err := Mount(cfg, flash)
		if err != nil {
			// Mount of a matching geometry reads durable state only; any
			// corruption must degrade to discarded pages, not an error.
			t.Fatalf("mount failed: %v", err)
		}
		checkMountedMappings(t, mounted, flash)

		// The post-mount passes run on whatever survived: cleanup erases
		// fully-stale blocks, parity catch-up re-emits missing parity.
		// Both mutate the model in lockstep with the plan they emit, so
		// executing the plans and re-checking closes the loop.
		execMountPlan(t, mounted, flash, func() Plan { p, _ := mounted.MountCleanup(); return p })
		execMountPlan(t, mounted, flash, func() Plan { p, _ := mounted.ParityCatchup(); return p })
		checkMountedMappings(t, mounted, flash)
	})
}

// checkMountedMappings asserts the never-serve-torn-data invariant on a
// mounted FTL: structural consistency (CheckInvariants) plus, for every
// forward-map entry, a written page whose OOB verdict and payload checksum
// hold and whose stamped tag is the mapping's own index.
func checkMountedMappings(t *testing.T, f *FTL, flash *nand.Flash) {
	t.Helper()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lspn := int64(0); lspn < f.userLSPNs; lspn++ {
		for sub := 0; sub < f.subCount; sub++ {
			fi := f.fwdIndex(lspn, sub)
			packed := f.fwd[fi]
			if packed < 0 {
				continue
			}
			loc := f.unpackLoc(packed, sub)
			addr := f.Address(loc)
			if !flash.PageWritten(addr) {
				t.Fatalf("LSPN %d sub %d mapped to unwritten page %v", lspn, sub, loc)
			}
			oob := flash.PageOOB(addr)
			if !oob.Good || !flash.VerifyPage(addr) {
				t.Fatalf("LSPN %d sub %d mapped to torn page %v (oob %+v)", lspn, sub, loc, oob)
			}
			if oob.FI != fi {
				t.Fatalf("LSPN %d sub %d mapped to page %v tagged %d, want %d", lspn, sub, loc, oob.FI, fi)
			}
		}
	}
}

// execMountPlan runs one post-mount maintenance plan against the flash
// (erases and zero-payload parity programs only — mount plans move no host
// data through this path) so model and flash stay in lockstep for the
// invariant re-check.
func execMountPlan(t *testing.T, f *FTL, flash *nand.Flash, build func() Plan) {
	t.Helper()
	now := sim.FromMicroseconds(1)
	ps := f.cfg.Geometry.PageSize
	planes := f.cfg.Geometry.TotalPlanes()
	for _, op := range build().Ops {
		switch op.Kind {
		case OpRead:
			buf := make([]byte, ps)
			if _, err := flash.Read(now, f.Address(op.Loc), buf); err != nil {
				t.Fatalf("mount-plan read %v: %v", op.Loc, err)
			}
		case OpWrite:
			addr := f.Address(op.Loc)
			tag := op.LSPN*int64(planes) + int64(op.Loc.Sub)
			if op.Parity {
				tag = ParityTag
			}
			if _, err := flash.ProgramTagged(now, addr, make([]byte, ps), tag); err != nil {
				t.Fatalf("mount-plan program %v: %v", op.Loc, err)
			}
			if op.Parity {
				flash.SetPageStripe(addr, op.Mask)
			}
		case OpErase:
			for p := 0; p < planes; p++ {
				addr := f.Address(PageLoc{SB: op.SB, Page: 0, Plane: p, Sub: p})
				if _, err := flash.Erase(now, addr); err != nil {
					t.Fatalf("mount-plan erase SB %d plane %d: %v", op.SB, p, err)
				}
			}
		}
	}
}
