package ftl

import (
	"fmt"

	"amber/internal/nand"
	"amber/internal/sim"
)

// MountReport summarizes one mount-time recovery scan.
type MountReport struct {
	// ScanTime is the simulated duration of the mount scan: every written
	// page's OOB area is read, channels scan in parallel, so the scan costs
	// the busiest channel's page count times one fast read plus command
	// overhead.
	ScanTime sim.Duration
	// RecoveredSubs counts logical sub-page mappings rebuilt from OOB.
	RecoveredSubs int
	// TornDiscarded counts pages whose OOB checksum failed (torn tail
	// programs at the power cut) and were treated as unwritten.
	TornDiscarded int
	// StaleSkipped counts written pages that lost their logical slot to a
	// later write (lower sequence number than the winner).
	StaleSkipped int
	// RetiredSBs counts super-blocks rebuilt as retired from the durable
	// bad-block table.
	RetiredSBs int
	// CleanupErases counts super-blocks erased by the post-mount cleanup
	// pass (MountCleanup): blocks whose surviving pages were all stale or
	// torn, reclaimed into the free reserve before the device serves I/O.
	CleanupErases int
	// SqueezedSBs counts super-blocks compacted by the emergency mount
	// squeeze (MountSqueeze), and SqueezedSubs the valid sub-pages it
	// rewrote. Nonzero only when the durable image held no erased block at
	// all — every functionally-free block's erase claim was undone by the
	// cut — so normal GC could not bootstrap a write destination.
	SqueezedSBs  int
	SqueezedSubs int
	// ParityPages counts intact RAIN parity pages found by the scan
	// (stripe membership rebuilt from their OOB tags and masks).
	ParityPages int
	// ParityReemitted counts parity programs the post-mount catch-up pass
	// (ParityCatchup) planned for stripe rows completed before the cut
	// whose parity never programmed.
	ParityReemitted int
}

// Mount rebuilds an FTL from flash state alone — the crash-recovery path.
// It scans every block's written pages in allocation order, reading only
// the OOB metadata each program stamped (logical tag, write sequence,
// checksum verdict): the highest sequence number claiming a logical
// sub-page holds its current data, torn pages (checksum-bad) are treated
// as unwritten, per-plane append pointers and erase counts come from the
// flash's block state, and the retirement order (with the read-only latch)
// is replayed from the durable bad-block table. The result converges to a
// mapping where every write whose program completed before the cut — every
// acknowledged-durable write — is readable, and no torn page is ever
// served.
//
// The scan is deterministic at any dispatch parallelism: it runs with the
// engine drained, reads only durable state, and its iteration order is
// fixed by the geometry. Mount does not touch the flash (OOB reads are
// modeled in the report's ScanTime, not charged to the channel counters,
// so a remounted device's golden state stays a pure function of its
// durable state).
func Mount(cfg Config, flash *nand.Flash) (*FTL, MountReport, error) {
	f, err := New(cfg)
	if err != nil {
		return nil, MountReport{}, err
	}
	if flash.Geometry() != cfg.Geometry {
		return nil, MountReport{}, fmt.Errorf("ftl: mount geometry mismatch")
	}
	var rep MountReport

	// Replay retirements from the durable bad-block table, in marked order.
	// MarkBadBlock records every plane block of a retired super-block;
	// deduplication by super-block recovers the retirement order.
	seen := make(map[int]bool)
	for _, bi := range flash.BadBlocks() {
		sb := bi % cfg.Geometry.BlocksPerPlane
		if seen[sb] {
			continue
		}
		seen[sb] = true
		blk := &f.sbs[sb]
		blk.retired = true
		blk.free = false
		blk.closed = true
		f.retireOrder = append(f.retireOrder, sb)
		rep.RetiredSBs++
	}
	if len(f.retireOrder) > f.spares {
		f.readOnly = true
	}

	// Scan: per super-block, per plane, per page in program order. The
	// winner for each logical sub-page is the claimant with the highest
	// write sequence. bestSeq is indexed by forward-map index.
	bestSeq := make([]uint64, len(f.fwd))
	chPages := make([]int64, cfg.Geometry.Channels) // written pages per channel
	for sb := 0; sb < f.sbCount; sb++ {
		blk := &f.sbs[sb]
		anyWritten := false
		for plane := 0; plane < f.subCount; plane++ {
			addr0 := f.Address(PageLoc{SB: sb, Plane: plane})
			blk.nextPage[plane] = int32(flash.NextProgramPage(addr0))
			if plane == 0 {
				blk.eraseCount = flash.EraseCount(addr0)
			}
			for page := 0; page < f.pagesPerSB; page++ {
				addr := addr0
				addr.Page = page
				if !flash.PageWritten(addr) {
					continue
				}
				anyWritten = true
				chPages[addr.Channel]++
				oob := flash.PageOOB(addr)
				if !oob.Good || !flash.VerifyPage(addr) {
					rep.TornDiscarded++
					continue
				}
				if oob.FI == ParityTag {
					rep.ParityPages++
					continue // parity holds no mapping; membership is its OOB mask
				}
				if oob.FI < 0 || oob.FI >= int64(len(f.fwd)) {
					continue // raw/untagged program: not the FTL's page
				}
				sub := int(oob.FI % int64(f.subCount))
				loc := PageLoc{SB: sb, Page: page, Plane: plane, Sub: sub}
				if oob.Seq <= bestSeq[oob.FI] {
					rep.StaleSkipped++
					continue
				}
				if old := f.fwd[oob.FI]; old >= 0 {
					// This claimant supersedes an earlier-scanned winner.
					oldLoc := f.unpackLoc(old, sub)
					pi := f.physIndex(oldLoc)
					f.valid[pi] = false
					f.rev[pi] = -1
					f.sbs[oldLoc.SB].validSubs--
					rep.RecoveredSubs--
					rep.StaleSkipped++
				}
				bestSeq[oob.FI] = oob.Seq
				pi := f.physIndex(loc)
				f.fwd[oob.FI] = f.packLoc(loc)
				f.rev[pi] = oob.FI
				f.valid[pi] = true
				blk.validSubs++
				rep.RecoveredSubs++
			}
		}
		if blk.retired {
			continue
		}
		if anyWritten || !planesAllAtZero(blk) {
			blk.free = false
			blk.closed = true
		}
	}

	// Rebuild the free reserve in New's order (descending index) so the
	// dynamic wear-leveling pop is deterministic.
	f.freeSB = f.freeSB[:0]
	for sb := f.sbCount - 1; sb >= 0; sb-- {
		if f.sbs[sb].free {
			f.freeSB = append(f.freeSB, sb)
		}
	}

	// Resume the active block: reopen the partially written super-block
	// with the most remaining append room (ties to the lowest index).
	// Which block was open at the cut is not recorded durably, but the
	// max-room block is the deterministic proxy — and reopening one is
	// load-bearing, not cosmetic: a cut can leave a durable state with no
	// erased block at all (every functionally-free block's erase claim was
	// undone), and GC cannot bootstrap a destination out of an empty
	// reserve. The interrupted block's unwritten tail is the only write
	// room the durable state guarantees.
	f.openSB = -1
	bestRoom := 0
	for sb := 0; sb < f.sbCount; sb++ {
		blk := &f.sbs[sb]
		if blk.free || blk.retired {
			continue
		}
		room := 0
		for _, np := range blk.nextPage {
			room += f.pagesPerSB - int(np)
		}
		if room > bestRoom {
			bestRoom = room
			f.openSB = sb
		}
	}
	if f.openSB >= 0 {
		f.sbs[f.openSB].closed = false
	}

	var maxPages int64
	for _, n := range chPages {
		if n > maxPages {
			maxPages = n
		}
	}
	tim := flash.Timing()
	rep.ScanTime = sim.Duration(maxPages) * (tim.ReadFast + tim.CmdCycles)
	return f, rep, nil
}

// MountCleanup builds the post-mount recovery erase plan: every closed,
// unretired super-block holding no valid data (all its written pages lost
// to later writes or torn at the cut) is erased back into the free
// reserve. Mount itself leaves such blocks closed — only fully-erased
// blocks re-enter the free list — so a cut taken mid-GC (migrations
// landed, victim erase undone because its array operation never started)
// can leave the reserve empty with no GC destination to rebuild it: the
// device would refuse writes despite those blocks holding nothing live.
// The plan is certified when non-empty; the caller must execute it through
// the FIL so the erases are charged to the simulated clock like any other
// plan (skipping execution would break the certified chain). Returns the
// number of super-blocks erased; zero means no plan was issued.
func (f *FTL) MountCleanup() (Plan, int) {
	var plan Plan
	n := 0
	for sb := range f.sbs {
		blk := &f.sbs[sb]
		if blk.free || blk.retired || sb == f.openSB || blk.validSubs != 0 {
			continue
		}
		written := 0
		for _, np := range blk.nextPage {
			written += int(np)
		}
		if written == 0 {
			continue
		}
		f.eraseSB(sb, &plan)
		n++
	}
	if n > 0 {
		f.certify(&plan)
	}
	return plan, n
}

// MountSqueeze builds the emergency compaction plan for a durable image
// with no usable write room: repeatedly pick the closed super-block with
// the fewest valid sub-pages, read those sub-pages out, erase the block,
// and rewrite them compactly — the freed block is its own first
// destination, so the squeeze needs no pre-existing free space. This is
// the cap-backed-RAM recovery real controllers use for the same corner: a
// cut can undo every claimed erase at once, restoring a physical state
// where all blocks are fully written (the over-provisioning space entirely
// stale but trapped), and ordinary GC — which migrates before erasing —
// cannot bootstrap a destination out of that. The squeeze inverts the
// order, which is only crash-safe because mount is atomic in the model:
// the valid data lives in controller RAM between the erase and the
// rewrite.
//
// The loop compacts until the free reserve clears the GC threshold or no
// profitable victim remains. The plan is certified when non-empty and must
// be executed through the FIL (reads complete before the erase starts, and
// the rewrites before the block's erase ordering slot, by the FIL's
// super-block ordering). Returns the number of blocks squeezed and valid
// sub-pages rewritten.
func (f *FTL) MountSqueeze(now sim.Time) (Plan, int, int, error) {
	var plan Plan
	blocks, subs := 0, 0
	f.inGC = true
	defer func() { f.inGC = false }()
	burn := false
	defer func() {
		if burn {
			f.planSeq++
		}
	}()
	fullSubs := f.fullSubs()
	for tries := 0; len(f.freeSB) <= f.cfg.GCFreeThreshold && tries < 2*f.sbCount; tries++ {
		victim := -1
		for sb := range f.sbs {
			blk := &f.sbs[sb]
			if blk.free || blk.retired || sb == f.openSB || int(blk.validSubs) >= fullSubs {
				continue
			}
			if victim < 0 || blk.validSubs < f.sbs[victim].validSubs {
				victim = sb
			}
		}
		if victim < 0 {
			break
		}
		type move struct {
			lspn int64
			sub  int
		}
		var moves []move
		base := int64(victim) * int64(f.pagesPerSB) * int64(f.subCount)
		for page := 0; page < f.pagesPerSB; page++ {
			for plane := 0; plane < f.subCount; plane++ {
				pi := base + int64(page)*int64(f.subCount) + int64(plane)
				if !f.valid[pi] {
					continue
				}
				lspn := f.rev[pi] / int64(f.subCount)
				sub := int(f.rev[pi] % int64(f.subCount))
				plan.Ops = append(plan.Ops, Op{Kind: OpRead, Loc: PageLoc{SB: victim, Page: page, Plane: plane, Sub: sub}, LSPN: lspn})
				moves = append(moves, move{lspn: lspn, sub: sub})
			}
		}
		f.eraseSB(victim, &plan)
		for _, m := range moves {
			burn = true
			if err := f.appendSub(now, m.lspn, m.sub, true, &plan); err != nil {
				return plan, blocks, subs, err
			}
			burn = false
			f.stats.GCMigrated++
			plan.Migrated++
		}
		blocks++
		subs += len(moves)
	}
	if len(plan.Ops) > 0 {
		f.certify(&plan)
	}
	return plan, blocks, subs, nil
}

// planesAllAtZero reports whether every plane's append pointer is at page
// zero — the erased (or never-programmed) state that keeps a block in the
// free reserve at mount.
func planesAllAtZero(blk *superBlock) bool {
	for _, np := range blk.nextPage {
		if np != 0 {
			return false
		}
	}
	return true
}
