package ftl

import (
	"amber/internal/sim"
)

// collect runs one garbage collection: it selects a victim super-block,
// migrates its valid sub-pages into the open super-block, erases it and
// returns it to the free reserve. The physical reads, writes and erase are
// appended to the plan in dependency order. It reports whether a
// profitable victim existed; when every candidate is fully valid there is
// nothing to reclaim and the caller must stop collecting (writes then
// consume the over-provisioning reserve, which subsequent overwrites will
// replenish by invalidating pages).
func (f *FTL) collect(now sim.Time, plan *Plan) (bool, error) {
	victim := f.selectVictim(now)
	if victim < 0 {
		return false, nil
	}
	f.stats.GCRuns++
	plan.GCRuns++

	if err := f.migrateSuperBlock(now, victim, plan, gcMove); err != nil {
		return true, err
	}
	f.eraseSB(victim, plan)
	return true, nil
}

// migrateMode attributes a super-block migration's moves in the stats.
type migrateMode int

const (
	gcMove migrateMode = iota
	wearMove
	scrubMove
)

// migrateSuperBlock moves every valid sub-page of sb into the open
// super-block, attributing the moves to mode.
func (f *FTL) migrateSuperBlock(now sim.Time, sb int, plan *Plan, mode migrateMode) error {
	base := int64(sb) * int64(f.pagesPerSB) * int64(f.subCount)
	for page := 0; page < f.pagesPerSB; page++ {
		for plane := 0; plane < f.subCount; plane++ {
			pi := base + int64(page)*int64(f.subCount) + int64(plane)
			if !f.valid[pi] {
				continue
			}
			lspn := f.rev[pi] / int64(f.subCount)
			sub := int(f.rev[pi] % int64(f.subCount))
			plan.Ops = append(plan.Ops, Op{Kind: OpRead, Loc: PageLoc{SB: sb, Page: page, Plane: plane, Sub: sub}, LSPN: lspn})
			if err := f.appendSub(now, lspn, sub, true, plan); err != nil {
				return err
			}
			switch mode {
			case wearMove:
				f.stats.WearLevelMoves++
				plan.WearLevelMoves++
			case scrubMove:
				f.stats.ScrubMigrated++
				plan.Migrated++
			default:
				f.stats.GCMigrated++
				plan.Migrated++
			}
		}
	}
	return nil
}

// eraseSB resets the super-block's physical state and returns it to the
// free list.
func (f *FTL) eraseSB(sb int, plan *Plan) {
	blk := &f.sbs[sb]
	base := int64(sb) * int64(f.pagesPerSB) * int64(f.subCount)
	for i := int64(0); i < int64(f.pagesPerSB)*int64(f.subCount); i++ {
		f.valid[base+i] = false
		f.rev[base+i] = -1
	}
	for p := range blk.nextPage {
		blk.nextPage[p] = 0
	}
	blk.validSubs = 0
	blk.eraseCount++
	blk.recon = 0 // a fresh erase clears the reconstruction pressure
	blk.closed = false
	blk.free = true
	f.freeSB = append(f.freeSB, sb)
	f.stats.Erases++
	plan.Ops = append(plan.Ops, Op{Kind: OpErase, SB: sb})
}

// selectVictim returns the best GC victim, or -1 if none qualifies. The
// open super-block and free blocks are excluded. A block with zero valid
// sub-pages is always the best possible victim under both policies.
func (f *FTL) selectVictim(now sim.Time) int {
	best := -1
	var bestScore float64
	totalSubs := float64(f.fullSubs())
	for sb := range f.sbs {
		blk := &f.sbs[sb]
		if blk.free || blk.retired || sb == f.openSB {
			continue
		}
		written := 0
		for _, np := range blk.nextPage {
			written += int(np)
		}
		if written == 0 {
			continue // nothing ever written; erasing gains nothing
		}
		if int(blk.validSubs) == f.fullSubs() {
			continue // fully valid: migration would consume what the erase frees
		}
		var score float64
		switch f.cfg.GCPolicy {
		case CostBenefit:
			// Benefit/cost = (1-u)/(2u) * age, with u the valid fraction.
			u := float64(blk.validSubs) / totalSubs
			age := (now - blk.lastWrite).Seconds() + 1e-9
			if u == 0 {
				score = 1e18 * age // free space for no migration cost
			} else {
				score = (1 - u) / (2 * u) * age
			}
		default: // Greedy: fewest valid sub-pages (most reclaimable space)
			score = totalSubs - float64(blk.validSubs)
		}
		if best < 0 || score > bestScore {
			best = sb
			bestScore = score
		}
	}
	return best
}

// maybeWearLevel performs static wear-leveling when the erase spread
// exceeds the configured delta: the coldest closed super-block (the one
// least recently written, holding static data) is migrated and erased so
// its underlying cells rejoin the rotation.
func (f *FTL) maybeWearLevel(now sim.Time, plan *Plan) {
	if f.MaxEraseSpread() <= f.cfg.WearLevelDelta {
		return
	}
	coldest := -1
	var coldestTime sim.Time
	for sb := range f.sbs {
		blk := &f.sbs[sb]
		if blk.free || blk.retired || sb == f.openSB || blk.validSubs == 0 {
			continue
		}
		// Only blocks with below-median wear hold back the spread.
		if blk.eraseCount > f.sbs[f.minEraseSB()].eraseCount {
			continue
		}
		if coldest < 0 || blk.lastWrite < coldestTime {
			coldest = sb
			coldestTime = blk.lastWrite
		}
	}
	if coldest < 0 {
		return
	}
	// Suppress nested GC during the move: a GC choosing this same block as
	// its victim would double-erase it.
	wasInGC := f.inGC
	f.inGC = true
	err := f.migrateSuperBlock(now, coldest, plan, wearMove)
	f.inGC = wasInGC
	if err != nil {
		return // reserve exhausted; ordinary GC will recover first
	}
	f.eraseSB(coldest, plan)
}

func (f *FTL) minEraseSB() int {
	best := 0
	for i := range f.sbs {
		if f.sbs[i].eraseCount < f.sbs[best].eraseCount {
			best = i
		}
	}
	return best
}
