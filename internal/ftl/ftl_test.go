package ftl

import (
	"testing"

	"amber/internal/nand"
	"amber/internal/sim"
)

func testGeometry() nand.Geometry {
	return nand.Geometry{
		Channels:           2,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     8,
		PagesPerBlock:      4,
		PageSize:           4096,
	}
}

func testConfig() Config {
	return Config{
		Geometry:        testGeometry(),
		OPRatio:         0.25,
		GCPolicy:        Greedy,
		GCFreeThreshold: 2,
		PartialUpdate:   true,
	}
}

func newTestFTL(t *testing.T, mutate func(*Config)) *FTL {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWriteErrorBurnsPlanSeq pins the certificate-chain break on failed
// plan construction: once Write may have mutated the mapping model, an
// error return must still consume a sequence number. The failed plan never
// executes, so the flash epoch cannot expose the divergence — only the
// sequence gap forces a lockstep executor off the certified fast path and
// onto the validation walk for every later plan.
func TestWriteErrorBurnsPlanSeq(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.Write(0, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Exhaust the device: no free reserve, every plane of the open block
	// full, so the next write fails mid-construction (allocOpen finds no
	// victim worth collecting and no free super-block).
	f.freeSB = f.freeSB[:0]
	for sb := range f.sbs {
		if !f.sbs[sb].free {
			for p := range f.sbs[sb].nextPage {
				f.sbs[sb].nextPage[p] = int32(f.pagesPerSB)
			}
		}
	}
	seq := f.PlanSeq()
	plan, err := f.Write(0, 1, nil)
	if err == nil {
		t.Fatal("write on an exhausted device succeeded")
	}
	if plan.Cert.Certified() {
		t.Fatal("failed Write returned a certified plan")
	}
	if got := f.PlanSeq(); got != seq+1 {
		t.Fatalf("failed Write left PlanSeq at %d, want %d (burned)", got, seq+1)
	}
	// Cheap validation failures happen before any model mutation and must
	// NOT burn: the chain stays intact across a caller's bad-LSPN mistake.
	seq = f.PlanSeq()
	if _, err := f.Write(0, -1, nil); err == nil {
		t.Fatal("negative LSPN accepted")
	}
	if got := f.PlanSeq(); got != seq {
		t.Fatalf("pre-mutation validation error burned a sequence number (%d -> %d)", seq, got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.OPRatio = 0 },
		func(c *Config) { c.OPRatio = 0.9 },
		func(c *Config) { c.GCFreeThreshold = 1 },
		func(c *Config) { c.Geometry.Channels = 0 },
		func(c *Config) { c.Geometry.BlocksPerPlane = 3 },
	}
	for i, m := range cases {
		c := testConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestCapacityAccounting(t *testing.T) {
	f := newTestFTL(t, nil)
	// 8 SBs x 4 pages = 32 super-pages; 25% OP -> 24 user LSPNs.
	if f.UserSuperPages() != 24 {
		t.Fatalf("UserSuperPages = %d, want 24", f.UserSuperPages())
	}
	if f.SubPagesPerSuperPage() != 4 {
		t.Fatalf("SubPagesPerSuperPage = %d, want 4", f.SubPagesPerSuperPage())
	}
	if f.SuperPageBytes() != 4*4096 {
		t.Fatalf("SuperPageBytes = %d", f.SuperPageBytes())
	}
}

func TestFullWriteMapsAllSubs(t *testing.T) {
	f := newTestFTL(t, nil)
	plan, err := f.Write(0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Writes()) != 4 || len(plan.Reads()) != 0 {
		t.Fatalf("plan = %+v", plan)
	}
	locs, err := f.Lookup(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 4 {
		t.Fatalf("Lookup returned %d locs", len(locs))
	}
	// First write: all subs land on page 0 of the same SB.
	for _, l := range locs {
		if l.Page != 0 || l.SB != locs[0].SB {
			t.Fatalf("unexpected loc %+v", l)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLookupUnmapped(t *testing.T) {
	f := newTestFTL(t, nil)
	locs, err := f.Lookup(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 0 {
		t.Fatalf("unmapped LSPN returned locs %v", locs)
	}
	if f.Mapped(3) {
		t.Fatal("Mapped should be false")
	}
	if _, err := f.Lookup(999); err == nil {
		t.Fatal("out-of-range LSPN accepted")
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.Write(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	old, _ := f.Lookup(1)
	if _, err := f.Write(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	niu, _ := f.Lookup(1)
	if old[0] == niu[0] {
		t.Fatal("overwrite did not move the mapping")
	}
	// The old SB lost 4 valid subs.
	if got := f.ValidSubs(old[0].SB); got != 4 {
		// old and new are in the same SB (page 0 -> page 1): 4 valid remain.
		t.Fatalf("ValidSubs = %d", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPartialUpdateRemapsOnlyDirty(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.Write(0, 2, nil); err != nil {
		t.Fatal(err)
	}
	before, _ := f.Lookup(2)
	dirty := []bool{true, false, false, true}
	plan, err := f.Write(1, 2, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Writes()) != 2 {
		t.Fatalf("partial update wrote %d subs, want 2", len(plan.Writes()))
	}
	if len(plan.Reads()) != 0 {
		t.Fatal("partial update must not pre-read")
	}
	after, _ := f.Lookup(2)
	// Sub 1 and 2 unchanged; sub 0 and 3 moved.
	for _, l := range after {
		switch l.Sub {
		case 1, 2:
			if l != before[l.Sub] {
				t.Fatalf("clean sub %d moved: %+v", l.Sub, l)
			}
		case 0, 3:
			if l == before[l.Sub] {
				t.Fatalf("dirty sub %d did not move", l.Sub)
			}
		}
	}
	if f.Stats().PartialRemaps != 2 {
		t.Fatalf("PartialRemaps = %d", f.Stats().PartialRemaps)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRMWWithoutPartialUpdate(t *testing.T) {
	f := newTestFTL(t, func(c *Config) { c.PartialUpdate = false })
	if _, err := f.Write(0, 2, nil); err != nil {
		t.Fatal(err)
	}
	dirty := []bool{true, false, false, false}
	plan, err := f.Write(1, 2, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reads()) != 3 {
		t.Fatalf("RMW pre-reads = %d, want 3", len(plan.Reads()))
	}
	if len(plan.Writes()) != 4 {
		t.Fatalf("RMW writes = %d, want 4", len(plan.Writes()))
	}
	s := f.Stats()
	if s.RMWReads != 3 {
		t.Fatalf("RMWReads = %d", s.RMWReads)
	}
	// WAF: host wrote 4+1 subs, flash wrote 4+4.
	if got := s.WAF(); got <= 1 {
		t.Fatalf("WAF = %v, want > 1", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDirtyMaskIsNoop(t *testing.T) {
	f := newTestFTL(t, nil)
	plan, err := f.Write(0, 1, []bool{false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Writes()) != 0 {
		t.Fatal("all-clean mask should write nothing")
	}
}

func TestBadDirtyMaskLength(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.Write(0, 1, []bool{true}); err == nil {
		t.Fatal("wrong-length dirty mask accepted")
	}
}

func TestGCTriggersAndPreservesMappings(t *testing.T) {
	f := newTestFTL(t, nil)
	now := sim.Time(0)
	// Fill the device twice over to force GC.
	for round := 0; round < 3; round++ {
		for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
			now += sim.Microsecond
			if _, err := f.Write(now, lspn, nil); err != nil {
				t.Fatalf("round %d lspn %d: %v", round, lspn, err)
			}
		}
	}
	if f.Stats().GCRuns == 0 {
		t.Fatal("GC never ran despite 3x overwrite")
	}
	// Every LSPN still resolves to exactly 4 valid sub-pages.
	for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
		locs, err := f.Lookup(lspn)
		if err != nil {
			t.Fatal(err)
		}
		if len(locs) != 4 {
			t.Fatalf("LSPN %d has %d locs after GC", lspn, len(locs))
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().WAF() < 1 {
		t.Fatalf("WAF = %v < 1", f.Stats().WAF())
	}
}

func TestGCPlanOrdering(t *testing.T) {
	f := newTestFTL(t, nil)
	now := sim.Time(0)
	var gcPlan *Plan
	for round := 0; round < 4 && gcPlan == nil; round++ {
		for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
			now += sim.Microsecond
			plan, err := f.Write(now, lspn, nil)
			if err != nil {
				t.Fatal(err)
			}
			if plan.GCRuns > 0 {
				gcPlan = &plan
				break
			}
		}
	}
	if gcPlan == nil {
		t.Fatal("no GC plan observed")
	}
	if len(gcPlan.Erases()) == 0 {
		t.Fatal("GC plan has no erase")
	}
	if gcPlan.Migrated != len(gcPlan.Reads()) {
		t.Fatalf("migrated %d but %d reads", gcPlan.Migrated, len(gcPlan.Reads()))
	}
}

func TestLowerOPMeansMoreGC(t *testing.T) {
	run := func(op float64) uint64 {
		cfg := testConfig()
		cfg.Geometry.BlocksPerPlane = 16
		cfg.OPRatio = op
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(3)
		now := sim.Time(0)
		// Precondition: fill once sequentially.
		for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
			now += sim.Microsecond
			if _, err := f.Write(now, lspn, nil); err != nil {
				t.Fatal(err)
			}
		}
		// Random overwrites, 2x the volume (the Fig. 11 stress pattern).
		for i := int64(0); i < 2*f.UserSuperPages(); i++ {
			now += sim.Microsecond
			lspn := int64(rng.Uint64n(uint64(f.UserSuperPages())))
			if _, err := f.Write(now, lspn, nil); err != nil {
				t.Fatal(err)
			}
		}
		return f.Stats().GCMigrated
	}
	high := run(0.25)
	low := run(0.06)
	if low <= high {
		t.Fatalf("5%%-ish OP migrated %d pages, 25%% OP migrated %d; want low OP >> high OP", low, high)
	}
}

func TestTrim(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.Write(0, 7, nil); err != nil {
		t.Fatal(err)
	}
	sb := func() int {
		locs, _ := f.Lookup(7)
		return locs[0].SB
	}()
	if err := f.Trim(7); err != nil {
		t.Fatal(err)
	}
	if f.Mapped(7) {
		t.Fatal("LSPN still mapped after trim")
	}
	if f.ValidSubs(sb) != 0 {
		t.Fatal("valid subs not released by trim")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := f.Trim(9999); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}

func TestWearLevelingBoundsSpread(t *testing.T) {
	cfg := testConfig()
	cfg.Geometry.BlocksPerPlane = 12
	cfg.WearLevelDelta = 4
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	// Static data in low LSPNs, hot overwrites in one LSPN: without static
	// wear-leveling the cold blocks would never be erased.
	for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
		now += sim.Microsecond
		if _, err := f.Write(now, lspn, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i++ {
		now += sim.Microsecond
		if _, err := f.Write(now, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().WearLevelMoves == 0 {
		t.Fatal("static wear-leveling never ran")
	}
	if spread := f.MaxEraseSpread(); spread > 3*cfg.WearLevelDelta {
		t.Fatalf("erase spread %d far exceeds delta %d", spread, cfg.WearLevelDelta)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCostBenefitPrefersColdSparseBlocks(t *testing.T) {
	// Construct two candidate victims: one nearly empty but hot, one
	// moderately full but very old. Greedy picks the empty one;
	// cost-benefit weighs age.
	mk := func(policy GCPolicy) *FTL {
		cfg := testConfig()
		cfg.GCPolicy = policy
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, policy := range []GCPolicy{Greedy, CostBenefit} {
		f := mk(policy)
		now := sim.Time(0)
		for round := 0; round < 3; round++ {
			for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
				now += sim.Microsecond
				if _, err := f.Write(now, lspn, nil); err != nil {
					t.Fatalf("%v: %v", policy, err)
				}
			}
		}
		if f.Stats().GCRuns == 0 {
			t.Fatalf("%v: GC never ran", policy)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}

func TestAddressConversion(t *testing.T) {
	f := newTestFTL(t, nil)
	g := testGeometry()
	seen := map[string]bool{}
	for sub := 0; sub < f.SubPagesPerSuperPage(); sub++ {
		a := f.Address(PageLoc{SB: 3, Page: 2, Plane: sub, Sub: sub})
		if err := g.CheckAddress(a); err != nil {
			t.Fatalf("sub %d: %v", sub, err)
		}
		if a.Block != 3 || a.Page != 2 {
			t.Fatalf("sub %d mapped to wrong block/page: %+v", sub, a)
		}
		key := a.String()
		if seen[key] {
			t.Fatalf("sub collision at %v", a)
		}
		seen[key] = true
	}
	// Consecutive subs hit different channels first (stripe for bus overlap).
	a0 := f.Address(PageLoc{SB: 0, Page: 0, Plane: 0, Sub: 0})
	a1 := f.Address(PageLoc{SB: 0, Page: 0, Plane: 1, Sub: 1})
	if a0.Channel == a1.Channel {
		t.Fatal("subs 0 and 1 should differ in channel")
	}
}

// Property-style stress: random full/partial writes and trims with
// invariants checked throughout; the mapping must stay injective and
// resolvable.
func TestRandomWorkloadInvariants(t *testing.T) {
	for _, partial := range []bool{true, false} {
		f := newTestFTL(t, func(c *Config) {
			c.PartialUpdate = partial
			c.Geometry.BlocksPerPlane = 10
		})
		rng := sim.NewRNG(99)
		now := sim.Time(0)
		for i := 0; i < 800; i++ {
			now += sim.Microsecond
			lspn := int64(rng.Uint64n(uint64(f.UserSuperPages())))
			switch rng.Intn(10) {
			case 0:
				if err := f.Trim(lspn); err != nil {
					t.Fatal(err)
				}
			case 1, 2, 3:
				dirty := make([]bool, f.SubPagesPerSuperPage())
				dirty[rng.Intn(len(dirty))] = true
				if _, err := f.Write(now, lspn, dirty); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := f.Write(now, lspn, nil); err != nil {
					t.Fatal(err)
				}
			}
			if i%100 == 0 {
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("iter %d (partial=%v): %v", i, partial, err)
				}
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("final (partial=%v): %v", partial, err)
		}
	}
}

func BenchmarkSequentialWrite(b *testing.B) {
	cfg := testConfig()
	cfg.Geometry.BlocksPerPlane = 64
	cfg.Geometry.PagesPerBlock = 64
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Microsecond
		lspn := int64(i) % f.UserSuperPages()
		if _, err := f.Write(now, lspn, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomOverwriteWithGC(b *testing.B) {
	cfg := testConfig()
	cfg.Geometry.BlocksPerPlane = 64
	cfg.Geometry.PagesPerBlock = 64
	cfg.OPRatio = 0.1
	f, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	now := sim.Time(0)
	for lspn := int64(0); lspn < f.UserSuperPages(); lspn++ {
		now += sim.Microsecond
		if _, err := f.Write(now, lspn, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += sim.Microsecond
		lspn := int64(rng.Uint64n(uint64(f.UserSuperPages())))
		if _, err := f.Write(now, lspn, nil); err != nil {
			b.Fatal(err)
		}
	}
}
