// Package cpu models the SSD's embedded processors: ARMv8-class cores that
// execute the flash firmware stack. Amber decomposes each firmware
// function into an instruction mix (branches, loads, stores, integer
// arithmetic, floating point, other), charges the execution time on the
// core the module is pinned to, and integrates a McPAT-style power model
// (dynamic energy-per-instruction plus per-core leakage). The same model
// doubles as the host CPU's kernel-path cost model (§III-B, Fig. 13c).
package cpu

import (
	"fmt"
	"sort"

	"amber/internal/sim"
)

// Domain names the scheduling domain (sim.Engine shard) that orders
// firmware-execution stage boundaries: events whose time was produced by a
// device-CPU Execute claim.
const Domain = "cpu"

// InstrMix counts instructions by category, mirroring the breakdown Amber
// reports in Fig. 13c.
type InstrMix struct {
	Branch uint64
	Load   uint64
	Store  uint64
	Arith  uint64
	FP     uint64
	Other  uint64
}

// Total returns the instruction count across all categories.
func (m InstrMix) Total() uint64 {
	return m.Branch + m.Load + m.Store + m.Arith + m.FP + m.Other
}

// Add returns the categorical sum of two mixes.
func (m InstrMix) Add(o InstrMix) InstrMix {
	return InstrMix{
		Branch: m.Branch + o.Branch,
		Load:   m.Load + o.Load,
		Store:  m.Store + o.Store,
		Arith:  m.Arith + o.Arith,
		FP:     m.FP + o.FP,
		Other:  m.Other + o.Other,
	}
}

// Scale returns the mix with every category multiplied by k.
func (m InstrMix) Scale(k uint64) InstrMix {
	return InstrMix{
		Branch: m.Branch * k,
		Load:   m.Load * k,
		Store:  m.Store * k,
		Arith:  m.Arith * k,
		FP:     m.FP * k,
		Other:  m.Other * k,
	}
}

// LoadStoreFraction returns the fraction of loads+stores, the dominant
// category (~60%) in the paper's firmware breakdown.
func (m InstrMix) LoadStoreFraction() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.Load+m.Store) / float64(t)
}

// Config describes the embedded complex: core count, clock and sustained
// IPC of the in-order ARM pipeline.
type Config struct {
	Cores        int
	FrequencyMHz float64
	IPC          float64
}

// Validate reports descriptive configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("cpu: need at least one core")
	case c.FrequencyMHz <= 0:
		return fmt.Errorf("cpu: frequency must be positive")
	case c.IPC <= 0:
		return fmt.Errorf("cpu: IPC must be positive")
	}
	return nil
}

// Power is the McPAT-style energy model.
type Power struct {
	EnergyPerInstrJ float64 // average dynamic energy per instruction
	LeakageWPerCore float64
}

// Complex is a set of embedded cores with instruction accounting. Firmware
// modules are pinned to cores (HIL, ICL/FTL, FIL each get a core in the
// default 3-core layout), reproducing the paper's observation that the
// NVMe-queue core saturates first.
type Complex struct {
	cfg   Config
	pow   Power
	cores *sim.Pool

	total InstrMix
	// perModule is a small append-only list (the firmware stack has ~10
	// module names, charged millions of times): a linear scan with a
	// last-hit cache beats hashing the module string on every Execute.
	perModule []moduleMix
	lastMod   int
	energyJ   float64
}

// moduleMix is one module's cumulative instruction accounting.
type moduleMix struct {
	name string
	mix  InstrMix
}

// New constructs a Complex from a validated configuration.
func New(cfg Config, pow Power) (*Complex, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Complex{
		cfg:   cfg,
		pow:   pow,
		cores: sim.NewPool("cpu.cores", cfg.Cores),
	}, nil
}

// Config returns the configuration.
func (c *Complex) Config() Config { return c.cfg }

// ExecTime returns how long the mix takes on one core.
func (c *Complex) ExecTime(mix InstrMix) sim.Duration {
	cycles := float64(mix.Total()) / c.cfg.IPC
	return sim.FromSeconds(cycles / (c.cfg.FrequencyMHz * 1e6))
}

// Execute runs the mix for the named module on the given core (pinned),
// queueing behind earlier work on that core, and returns the service
// interval.
func (c *Complex) Execute(now sim.Time, core int, module string, mix InstrMix) (start, end sim.Time) {
	if core < 0 || core >= c.cfg.Cores {
		core = 0
	}
	start, end = c.cores.ClaimServer(core, now, c.ExecTime(mix))
	c.account(module, mix)
	return start, end
}

// ExecuteAny runs the mix on the earliest-free core, for work that is not
// pinned (e.g. background GC).
func (c *Complex) ExecuteAny(now sim.Time, module string, mix InstrMix) (start, end sim.Time) {
	start, end, _ = c.cores.Claim(now, c.ExecTime(mix))
	c.account(module, mix)
	return start, end
}

func (c *Complex) account(module string, mix InstrMix) {
	c.total = c.total.Add(mix)
	slot := c.moduleSlot(module)
	slot.mix = slot.mix.Add(mix)
	c.energyJ += c.pow.EnergyPerInstrJ * float64(mix.Total())
}

// moduleSlot returns (appending if new) module's accounting slot. The
// returned pointer is valid until the next moduleSlot call.
func (c *Complex) moduleSlot(module string) *moduleMix {
	if c.lastMod < len(c.perModule) && c.perModule[c.lastMod].name == module {
		return &c.perModule[c.lastMod]
	}
	for i := range c.perModule {
		if c.perModule[i].name == module {
			c.lastMod = i
			return &c.perModule[i]
		}
	}
	c.lastMod = len(c.perModule)
	c.perModule = append(c.perModule, moduleMix{name: module})
	return &c.perModule[c.lastMod]
}

// Instructions returns the cumulative instruction mix.
func (c *Complex) Instructions() InstrMix { return c.total }

// ModuleInstructions returns cumulative instructions for one module.
func (c *Complex) ModuleInstructions(module string) InstrMix {
	for i := range c.perModule {
		if c.perModule[i].name == module {
			return c.perModule[i].mix
		}
	}
	return InstrMix{}
}

// Modules returns module names sorted for deterministic reporting.
func (c *Complex) Modules() []string {
	out := make([]string, 0, len(c.perModule))
	for i := range c.perModule {
		out = append(out, c.perModule[i].name)
	}
	sort.Strings(out)
	return out
}

// Utilization returns aggregate core utilization over the elapsed window.
func (c *Complex) Utilization(elapsed sim.Duration) float64 {
	return c.cores.Utilization(elapsed)
}

// BusyTime returns aggregate core busy time.
func (c *Complex) BusyTime() sim.Duration { return c.cores.BusyTime() }

// EnergyJoules returns dynamic energy so far.
func (c *Complex) EnergyJoules() float64 { return c.energyJ }

// TotalEnergyJoules adds leakage over the elapsed window.
func (c *Complex) TotalEnergyJoules(elapsed sim.Duration) float64 {
	return c.energyJ + c.pow.LeakageWPerCore*float64(c.cfg.Cores)*elapsed.Seconds()
}

// AveragePowerW returns average power over the elapsed window.
func (c *Complex) AveragePowerW(elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return c.TotalEnergyJoules(elapsed) / elapsed.Seconds()
}

// MIPS returns achieved million-instructions-per-second over the window.
func (c *Complex) MIPS(elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(c.total.Total()) / elapsed.Seconds() / 1e6
}

// Mix builds an InstrMix from a total count and the firmware-typical
// category fractions: ~25% loads, ~35% stores is the paper's dominant
// load/store share; remaining instructions split across branches,
// arithmetic and other with negligible FP.
func Mix(total uint64) InstrMix {
	return MixWith(total, 0.15, 0.30, 0.30, 0.20, 0.0)
}

// MixWith builds an InstrMix of the given total with explicit fractions of
// branches, loads, stores and arithmetic; FP takes fpFrac and "other"
// absorbs the remainder.
func MixWith(total uint64, brFrac, ldFrac, stFrac, arFrac, fpFrac float64) InstrMix {
	m := InstrMix{
		Branch: uint64(float64(total) * brFrac),
		Load:   uint64(float64(total) * ldFrac),
		Store:  uint64(float64(total) * stFrac),
		Arith:  uint64(float64(total) * arFrac),
		FP:     uint64(float64(total) * fpFrac),
	}
	sum := m.Branch + m.Load + m.Store + m.Arith + m.FP
	if sum > total {
		// Rounding overshoot: trim from the largest bucket.
		m.Store -= sum - total
		sum = total
	}
	m.Other = total - sum
	return m
}

// Firmware-function instruction budgets (per event), calibrated so a
// 3-core 400-500 MHz complex adds single-digit-microsecond firmware
// latency per 4KB page, matching Amber's reported firmware overheads.
// The NVMe doorbell/queue path is deliberately the most expensive: the
// paper measures 5.45x more instructions under NVMe than UFS because a
// core is involved on every doorbell ring.
var (
	// MixHILParseHType: SATA/UFS command unpack (FIS/UPIU) at the device.
	MixHILParseHType = Mix(260)
	// MixHILParseNVMe: SQ-entry fetch, opcode decode, PRP setup.
	MixHILParseNVMe = Mix(420)
	// MixDoorbell: per-doorbell queue-state handling on the NVMe core.
	MixDoorbell = Mix(520)
	// MixHTypeQueue: NCQ/UTRD slot management per command (h-type).
	MixHTypeQueue = Mix(180)
	// MixICLLookup: cache tag walk per super-page line.
	MixICLLookup = Mix(160)
	// MixICLInsert: line allocation, metadata update.
	MixICLInsert = Mix(200)
	// MixICLEvict: victim selection and flush composition.
	MixICLEvict = Mix(220)
	// MixFTLTranslate: LPN->PPN map lookup/update per super-page.
	MixFTLTranslate = Mix(190)
	// MixFTLGCPerPage: valid-page migration bookkeeping during GC.
	MixFTLGCPerPage = Mix(280)
	// MixFILSchedule: transaction composition and die dispatch per flash op.
	MixFILSchedule = Mix(120)
	// MixCompletion: completion-path bookkeeping (CQ entry / FIS response).
	MixCompletion = Mix(300)
)

// DefaultPower returns representative embedded-core power parameters (a
// few hundred mW per active core at ~500 MHz), tuned so the NVMe firmware
// CPU dominates the SSD power budget as in Fig. 13b.
func DefaultPower() Power {
	return Power{
		EnergyPerInstrJ: 1.1e-9,
		LeakageWPerCore: 0.12,
	}
}
