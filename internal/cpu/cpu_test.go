package cpu

import (
	"testing"
	"testing/quick"

	"amber/internal/sim"
)

func newTestComplex(t *testing.T) *Complex {
	t.Helper()
	c, err := New(Config{Cores: 3, FrequencyMHz: 500, IPC: 1.0}, DefaultPower())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	for i, cfg := range []Config{
		{Cores: 0, FrequencyMHz: 500, IPC: 1},
		{Cores: 1, FrequencyMHz: 0, IPC: 1},
		{Cores: 1, FrequencyMHz: 500, IPC: 0},
	} {
		if _, err := New(cfg, Power{}); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestInstrMixArithmetic(t *testing.T) {
	m := InstrMix{Branch: 1, Load: 2, Store: 3, Arith: 4, FP: 5, Other: 6}
	if m.Total() != 21 {
		t.Fatalf("Total = %d", m.Total())
	}
	s := m.Add(m)
	if s.Total() != 42 || s.Load != 4 {
		t.Fatalf("Add = %+v", s)
	}
	k := m.Scale(3)
	if k.Total() != 63 || k.FP != 15 {
		t.Fatalf("Scale = %+v", k)
	}
}

func TestMixWithFractions(t *testing.T) {
	m := MixWith(1000, 0.1, 0.3, 0.3, 0.2, 0.05)
	if m.Total() != 1000 {
		t.Fatalf("MixWith total = %d, want 1000", m.Total())
	}
	if m.Branch != 100 || m.Load != 300 || m.Store != 300 || m.Arith != 200 || m.FP != 50 {
		t.Fatalf("MixWith = %+v", m)
	}
	if m.Other != 50 {
		t.Fatalf("Other = %d", m.Other)
	}
}

// Property: MixWith always produces exactly the requested total.
func TestMixTotalsProperty(t *testing.T) {
	f := func(n uint32) bool {
		return Mix(uint64(n)).Total() == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMixLoadStoreDominant(t *testing.T) {
	// The paper reports loads+stores ~60% of firmware instructions.
	frac := Mix(100000).LoadStoreFraction()
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("load/store fraction = %v, want ~0.6", frac)
	}
}

func TestExecTime(t *testing.T) {
	c := newTestComplex(t)
	// 500 instructions at IPC 1, 500 MHz => 1us.
	got := c.ExecTime(Mix(500))
	if got != sim.Microsecond {
		t.Fatalf("ExecTime = %v, want 1us", got)
	}
}

func TestExecutePinnedQueues(t *testing.T) {
	c := newTestComplex(t)
	mix := Mix(500) // 1us each
	_, end1 := c.Execute(0, 1, "hil", mix)
	start2, end2 := c.Execute(0, 1, "hil", mix)
	if start2 != end1 || end2 != 2*sim.Microsecond {
		t.Fatalf("pinned work must queue: start2=%v end2=%v", start2, end2)
	}
	// A different core is free.
	start3, _ := c.Execute(0, 2, "ftl", mix)
	if start3 != 0 {
		t.Fatalf("other core should start immediately, got %v", start3)
	}
}

func TestExecuteAnyBalances(t *testing.T) {
	c := newTestComplex(t)
	mix := Mix(500)
	for i := 0; i < 3; i++ {
		start, _ := c.ExecuteAny(0, "gc", mix)
		if start != 0 {
			t.Fatalf("claim %d should start at 0 with 3 cores", i)
		}
	}
	start4, _ := c.ExecuteAny(0, "gc", mix)
	if start4 == 0 {
		t.Fatal("fourth concurrent claim must wait")
	}
}

func TestExecuteOutOfRangeCoreClamped(t *testing.T) {
	c := newTestComplex(t)
	// Out-of-range cores fall back to core 0 rather than panicking.
	_, end := c.Execute(0, 99, "x", Mix(500))
	if end == 0 {
		t.Fatal("execution did not happen")
	}
	_, end2 := c.Execute(0, -1, "x", Mix(500))
	if end2 <= end {
		t.Fatal("clamped core should queue behind earlier work on core 0")
	}
}

func TestAccounting(t *testing.T) {
	c := newTestComplex(t)
	c.Execute(0, 0, "hil", Mix(1000))
	c.Execute(0, 1, "ftl", Mix(2000))
	c.Execute(0, 0, "hil", Mix(1000))
	if got := c.Instructions().Total(); got != 4000 {
		t.Fatalf("total instructions = %d", got)
	}
	if got := c.ModuleInstructions("hil").Total(); got != 2000 {
		t.Fatalf("hil instructions = %d", got)
	}
	mods := c.Modules()
	if len(mods) != 2 || mods[0] != "ftl" || mods[1] != "hil" {
		t.Fatalf("Modules = %v", mods)
	}
}

func TestEnergyAndPower(t *testing.T) {
	c := newTestComplex(t)
	c.Execute(0, 0, "hil", Mix(1_000_000))
	p := DefaultPower()
	wantDyn := p.EnergyPerInstrJ * 1e6
	if got := c.EnergyJoules(); !approx(got, wantDyn, 1e-9) {
		t.Fatalf("EnergyJoules = %v, want %v", got, wantDyn)
	}
	tot := c.TotalEnergyJoules(sim.Second)
	wantTot := wantDyn + 3*p.LeakageWPerCore
	if !approx(tot, wantTot, 1e-9) {
		t.Fatalf("TotalEnergyJoules = %v, want %v", tot, wantTot)
	}
	if pw := c.AveragePowerW(sim.Second); !approx(pw, wantTot, 1e-9) {
		t.Fatalf("AveragePowerW = %v", pw)
	}
}

func TestUtilizationAndMIPS(t *testing.T) {
	c := newTestComplex(t)
	// 1500 instructions = 3us on one core; over 9us of 3 cores => 3/27.
	c.Execute(0, 0, "hil", Mix(1500))
	if u := c.Utilization(9 * sim.Microsecond); !approx(u, 3.0/27.0, 1e-9) {
		t.Fatalf("Utilization = %v", u)
	}
	// 1500 instructions over 3us => 500 MIPS.
	if m := c.MIPS(3 * sim.Microsecond); !approx(m, 500, 1e-6) {
		t.Fatalf("MIPS = %v", m)
	}
}

func TestNVMePathCostsMoreThanHType(t *testing.T) {
	// The structural reason NVMe firmware executes more instructions
	// (Fig. 13c): queue/doorbell handling per request.
	nvme := MixHILParseNVMe.Total() + MixDoorbell.Total()
	htype := MixHILParseHType.Total()
	if nvme <= 2*htype {
		t.Fatalf("NVMe per-request path (%d) should be well above h-type (%d)", nvme, htype)
	}
}

func approx(a, b, eps float64) bool {
	d := a - b
	return d < eps && d > -eps
}

func BenchmarkExecute(b *testing.B) {
	c, err := New(Config{Cores: 3, FrequencyMHz: 500, IPC: 1}, DefaultPower())
	if err != nil {
		b.Fatal(err)
	}
	mix := Mix(400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Execute(sim.Time(i), i%3, "bench", mix)
	}
}
