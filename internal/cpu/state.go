package cpu

import (
	"fmt"

	"amber/internal/sim"
	"amber/internal/snap"
)

func encodeMix(e *snap.Enc, m InstrMix) {
	e.U64(m.Branch)
	e.U64(m.Load)
	e.U64(m.Store)
	e.U64(m.Arith)
	e.U64(m.FP)
	e.U64(m.Other)
}

func decodeMix(d *snap.Dec) InstrMix {
	return InstrMix{
		Branch: d.U64(),
		Load:   d.U64(),
		Store:  d.U64(),
		Arith:  d.U64(),
		FP:     d.U64(),
		Other:  d.U64(),
	}
}

// EncodeState serializes the complex's complete functional state: per-core
// timelines, aggregate and per-module instruction accounting (modules in
// sorted order for a canonical image), and accumulated energy.
func (c *Complex) EncodeState(e *snap.Enc) {
	st := c.cores.State()
	e.U64(uint64(len(st.Servers)))
	for _, t := range st.Servers {
		e.I64(int64(t))
	}
	e.I64(int64(st.Busy))
	e.U64(st.Claims)
	encodeMix(e, c.total)
	mods := c.Modules()
	e.U64(uint64(len(mods)))
	for _, m := range mods {
		e.Blob([]byte(m))
		encodeMix(e, c.ModuleInstructions(m))
	}
	e.F64(c.energyJ)
}

// DecodeState reinstalls a state captured by EncodeState into c, which
// must be freshly constructed with the identical configuration.
func (c *Complex) DecodeState(d *snap.Dec) error {
	if n := d.U64(); d.Err() == nil && n != uint64(c.cfg.Cores) {
		return fmt.Errorf("%w: %d cpu cores, want %d", snap.ErrMismatch, n, c.cfg.Cores)
	}
	st := sim.PoolState{Servers: make([]sim.Time, c.cfg.Cores)}
	for i := range st.Servers {
		st.Servers[i] = sim.Time(d.I64())
	}
	st.Busy = sim.Duration(d.I64())
	st.Claims = d.U64()
	total := decodeMix(d)
	nMods := d.Len(1 << 20)
	c.perModule = c.perModule[:0]
	c.lastMod = 0
	for i := 0; i < nMods; i++ {
		name := string(d.Blob())
		c.perModule = append(c.perModule, moduleMix{name: name, mix: decodeMix(d)})
	}
	c.energyJ = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	c.cores.SetState(st)
	c.total = total
	return nil
}
