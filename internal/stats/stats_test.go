package stats

import (
	"testing"
	"testing/quick"

	"amber/internal/sim"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if l.Mean() != 0 || l.Percentile(50) != 0 {
		t.Fatal("empty latency should be zero")
	}
	for _, us := range []float64{10, 20, 30, 40, 50} {
		l.Add(sim.FromMicroseconds(us))
	}
	if l.Count() != 5 {
		t.Fatalf("Count = %d", l.Count())
	}
	approx := func(got, want float64) bool {
		d := got - want
		return d < 1e-5 && d > -1e-5 // picosecond conversion rounding
	}
	if !approx(l.Mean(), 30) {
		t.Fatalf("Mean = %v", l.Mean())
	}
	if !approx(l.Min(), 10) || !approx(l.Max(), 50) {
		t.Fatalf("Min/Max = %v/%v", l.Min(), l.Max())
	}
	if p := l.Percentile(50); !approx(p, 30) {
		t.Fatalf("p50 = %v", p)
	}
	if p := l.Percentile(100); !approx(p, 50) {
		t.Fatalf("p100 = %v", p)
	}
	if p := l.Percentile(0); !approx(p, 10) {
		t.Fatalf("p0 = %v", p)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestPercentileMonotone(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var l Latency
		for _, v := range vals {
			l.Add(sim.Time(v) * sim.Microsecond)
		}
		prev := l.Min()
		for p := 5.0; p <= 100; p += 5 {
			v := l.Percentile(p)
			if v < prev || v > l.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthAndIOPS(t *testing.T) {
	if bw := BandwidthMBps(1e6, sim.Second); bw != 1 {
		t.Fatalf("BandwidthMBps = %v", bw)
	}
	if bw := BandwidthMBps(100, 0); bw != 0 {
		t.Fatal("zero window should give 0")
	}
	if io := IOPS(1000, sim.Second); io != 1000 {
		t.Fatalf("IOPS = %v", io)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty series should be zero")
	}
	s.Add(1, 10)
	s.Add(2, 30)
	s.Add(3, 20)
	if s.Len() != 3 || s.Mean() != 20 || s.Max() != 30 {
		t.Fatalf("series = %+v", s)
	}
}

func TestErrorAndAccuracy(t *testing.T) {
	if e := ErrorRate(100, 90); e != 0.1 {
		t.Fatalf("ErrorRate = %v", e)
	}
	if e := ErrorRate(0, 90); e != 0 {
		t.Fatal("zero ref should give 0")
	}
	if a := Accuracy(100, 90); a != 0.9 {
		t.Fatalf("Accuracy = %v", a)
	}
	if a := Accuracy(100, 300); a != 0 {
		t.Fatal("accuracy should clamp at 0")
	}
	m, err := MeanAccuracy([]float64{100, 200}, []float64{90, 180})
	if err != nil || m != 0.9 {
		t.Fatalf("MeanAccuracy = %v, %v", m, err)
	}
	if _, err := MeanAccuracy([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched curves accepted")
	}
}

func TestCounterDeltas(t *testing.T) {
	var c Counter
	if d := c.Delta(sim.Second, 5); d != 0 {
		t.Fatal("first call should baseline")
	}
	if d := c.Delta(2*sim.Second, 15); d != 10 {
		t.Fatalf("Delta = %v, want 10/s", d)
	}
	if d := c.Delta(2*sim.Second, 20); d != 0 {
		t.Fatal("zero-width window should give 0")
	}
}
