// Package stats provides the measurement collectors the experiment harness
// uses: latency distributions, bandwidth computation, windowed time series
// (kernel CPU utilization and DRAM usage over time, Fig. 15), and error
// metrics against reference curves.
package stats

import (
	"fmt"
	"math"
	"sort"

	"amber/internal/sim"
)

// Latency collects a latency distribution in microseconds.
type Latency struct {
	samples []float64
	sorted  bool
	sum     float64
	min     float64
	max     float64
}

// Add records one latency.
func (l *Latency) Add(d sim.Duration) {
	v := d.Microseconds()
	if len(l.samples) == 0 || v < l.min {
		l.min = v
	}
	if len(l.samples) == 0 || v > l.max {
		l.max = v
	}
	l.samples = append(l.samples, v)
	l.sorted = false
	l.sum += v
}

// Count returns the sample count.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average latency in microseconds.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	return l.sum / float64(len(l.samples))
}

// Min returns the smallest sample in microseconds.
func (l *Latency) Min() float64 { return l.min }

// Max returns the largest sample in microseconds.
func (l *Latency) Max() float64 { return l.max }

// Percentile returns the p-th percentile (0 < p <= 100) in microseconds,
// using nearest-rank on the sorted samples.
func (l *Latency) Percentile(p float64) float64 {
	n := len(l.samples)
	if n == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	if p <= 0 {
		return l.samples[0]
	}
	if p >= 100 {
		return l.samples[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// BandwidthMBps converts bytes moved over a window into MB/s (decimal
// megabytes, as storage benchmarks report).
func BandwidthMBps(bytes int64, elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(bytes) / 1e6 / elapsed.Seconds()
}

// IOPS converts an operation count over a window into I/O per second.
func IOPS(ops int64, elapsed sim.Duration) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// Point is one time-series sample.
type Point struct {
	T sim.Time
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t sim.Time, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the sample count.
func (s *Series) Len() int { return len(s.Points) }

// Mean returns the average sample value.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Max returns the largest sample value.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// ErrorRate returns |ref-sim|/ref, the paper's accuracy metric
// (|Perf_real - Perf_sim| / Perf_real). A zero reference yields NaN-free 0.
func ErrorRate(ref, simulated float64) float64 {
	if ref == 0 {
		return 0
	}
	return math.Abs(ref-simulated) / math.Abs(ref)
}

// Accuracy returns 1 - ErrorRate clamped to [0, 1], matching the
// percentage labels in Figs. 8-9.
func Accuracy(ref, simulated float64) float64 {
	a := 1 - ErrorRate(ref, simulated)
	if a < 0 {
		return 0
	}
	return a
}

// MeanAccuracy averages Accuracy over paired curves.
func MeanAccuracy(ref, simulated []float64) (float64, error) {
	if len(ref) != len(simulated) || len(ref) == 0 {
		return 0, fmt.Errorf("stats: curves must be equal-length and non-empty")
	}
	var sum float64
	for i := range ref {
		sum += Accuracy(ref[i], simulated[i])
	}
	return sum / float64(len(ref)), nil
}

// Counter is a windowed rate tracker: the runner feeds cumulative values
// (e.g. CPU busy time) and reads back per-window deltas.
type Counter struct {
	lastT sim.Time
	lastV float64
}

// Delta returns the rate of change since the previous call: (v-prevV) /
// (t-prevT in seconds). The first call establishes the baseline and
// returns 0.
func (c *Counter) Delta(t sim.Time, v float64) float64 {
	if c.lastT == 0 && c.lastV == 0 {
		c.lastT, c.lastV = t, v
		return 0
	}
	dt := (t - c.lastT).Seconds()
	dv := v - c.lastV
	c.lastT, c.lastV = t, v
	if dt <= 0 {
		return 0
	}
	return dv / dt
}
