package refdata

import (
	"testing"

	"amber/internal/workload"
)

func TestAllCurvesComplete(t *testing.T) {
	pats := []workload.Pattern{workload.SeqRead, workload.RandRead, workload.SeqWrite, workload.RandWrite}
	for _, dev := range DeviceNames() {
		for _, p := range pats {
			bw, err := Bandwidth(dev, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(bw) != len(Depths) {
				t.Fatalf("%s/%v: %d points for %d depths", dev, p, len(bw), len(Depths))
			}
			for i, v := range bw {
				if v <= 0 {
					t.Fatalf("%s/%v: nonpositive bandwidth at depth %d", dev, p, Depths[i])
				}
			}
			bb, err := BlockBandwidth(dev, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(bb) != len(BlockSizesKiB) {
				t.Fatalf("%s/%v: %d block points", dev, p, len(bb))
			}
		}
	}
}

func TestCurveShapes(t *testing.T) {
	for _, dev := range DeviceNames() {
		// Reads saturate: monotone non-decreasing with depth.
		for _, p := range []workload.Pattern{workload.SeqRead, workload.RandRead} {
			bw, _ := Bandwidth(dev, p)
			for i := 1; i < len(bw); i++ {
				if bw[i] < bw[i-1] {
					t.Fatalf("%s/%v: bandwidth decreases at depth %d", dev, p, Depths[i])
				}
			}
		}
	}
	// Device ordering: Z-SSD reads fastest, 850 PRO SATA-bound.
	z, _ := Bandwidth("zssd", workload.SeqRead)
	s, _ := Bandwidth("850pro", workload.SeqRead)
	if z[len(z)-1] <= s[len(s)-1] {
		t.Fatal("Z-SSD must outread the 850 PRO")
	}
	if s[len(s)-1] > 600 {
		t.Fatal("850 PRO cannot exceed SATA's 600 MB/s")
	}
}

func TestLatencyDerivation(t *testing.T) {
	lat, err := Latency("intel750", workload.RandRead)
	if err != nil {
		t.Fatal(err)
	}
	bw, _ := Bandwidth("intel750", workload.RandRead)
	// Little's law at depth 32: lat = 32*4096/bw.
	want := 32.0 * 4096 / (bw[len(bw)-1] * 1e6) * 1e6
	got := lat[len(lat)-1]
	if d := got - want; d > 0.01 || d < -0.01 {
		t.Fatalf("latency = %v, want %v", got, want)
	}
}

func TestUnknownDevice(t *testing.T) {
	if _, err := Bandwidth("nope", workload.SeqRead); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := BlockBandwidth("nope", workload.SeqRead); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := Latency("nope", workload.SeqRead); err == nil {
		t.Fatal("unknown device accepted")
	}
}
