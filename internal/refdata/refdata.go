// Package refdata holds the real-device reference curves the validation
// experiments compare against (Figs. 3, 4, 8, 9, 10). The values are
// digitized approximations of the dashed "Real SSD" lines in the paper's
// figures, anchored to the published device specifications (Intel 750
// 400 GB, Samsung 850 PRO, Z-SSD and 983 DCT prototypes) — see DESIGN.md's
// substitution table. The curves preserve what the figures communicate:
// absolute levels at 4 KiB, saturation points, and the ordering between
// devices and patterns.
package refdata

import (
	"fmt"

	"amber/internal/workload"
)

// Depths is the I/O-depth axis of Figs. 3/4/8/9.
var Depths = []int{1, 2, 4, 8, 16, 24, 32}

// BlockSizesKiB is the block-size axis of Fig. 10.
var BlockSizesKiB = []int{4, 16, 64, 256, 1024}

// bandwidth holds MB/s per depth (aligned with Depths).
type deviceRef struct {
	bw  map[workload.Pattern][]float64
	lat map[workload.Pattern][]float64 // us per depth
	// blockBW holds MB/s per block size (aligned with BlockSizesKiB) at
	// queue depth 32.
	blockBW map[workload.Pattern][]float64
}

var devices = map[string]deviceRef{
	"intel750": {
		bw: map[workload.Pattern][]float64{
			workload.SeqRead:   {350, 700, 1250, 1900, 2150, 2220, 2250},
			workload.RandRead:  {45, 90, 180, 350, 650, 900, 1150},
			workload.SeqWrite:  {600, 850, 900, 920, 930, 930, 930},
			workload.RandWrite: {230, 240, 250, 258, 263, 265, 265},
		},
		blockBW: map[workload.Pattern][]float64{
			workload.SeqRead:   {2250, 2300, 2400, 2400, 2400},
			workload.RandRead:  {1150, 1800, 2250, 2380, 2400},
			workload.SeqWrite:  {930, 940, 950, 950, 950},
			workload.RandWrite: {265, 600, 880, 940, 950},
		},
	},
	"850pro": {
		bw: map[workload.Pattern][]float64{
			workload.SeqRead:   {380, 470, 520, 535, 545, 545, 545},
			workload.RandRead:  {38, 75, 150, 280, 430, 500, 530},
			workload.SeqWrite:  {440, 480, 495, 500, 505, 508, 510},
			workload.RandWrite: {330, 345, 355, 360, 363, 364, 365},
		},
		blockBW: map[workload.Pattern][]float64{
			workload.SeqRead:   {545, 550, 555, 555, 555},
			workload.RandRead:  {530, 545, 550, 555, 555},
			workload.SeqWrite:  {510, 515, 520, 520, 520},
			workload.RandWrite: {365, 470, 505, 515, 520},
		},
	},
	"zssd": {
		bw: map[workload.Pattern][]float64{
			workload.SeqRead:   {780, 1500, 2600, 3100, 3200, 3200, 3200},
			workload.RandRead:  {350, 700, 1350, 2300, 3000, 3100, 3100},
			workload.SeqWrite:  {550, 950, 1400, 1600, 1700, 1700, 1700},
			workload.RandWrite: {520, 900, 1300, 1500, 1550, 1570, 1580},
		},
		blockBW: map[workload.Pattern][]float64{
			workload.SeqRead:   {3200, 3250, 3300, 3300, 3300},
			workload.RandRead:  {3100, 3200, 3280, 3300, 3300},
			workload.SeqWrite:  {1700, 1750, 1780, 1800, 1800},
			workload.RandWrite: {1580, 1680, 1750, 1780, 1800},
		},
	},
	"983dct": {
		bw: map[workload.Pattern][]float64{
			workload.SeqRead:   {400, 800, 1500, 2300, 2800, 2880, 2900},
			workload.RandRead:  {50, 100, 200, 390, 750, 1050, 1300},
			workload.SeqWrite:  {700, 1100, 1350, 1400, 1400, 1400, 1400},
			workload.RandWrite: {450, 480, 500, 510, 515, 518, 520},
		},
		blockBW: map[workload.Pattern][]float64{
			workload.SeqRead:   {2900, 2950, 3000, 3000, 3000},
			workload.RandRead:  {1300, 2100, 2700, 2950, 3000},
			workload.SeqWrite:  {1400, 1420, 1450, 1450, 1450},
			workload.RandWrite: {520, 900, 1250, 1400, 1450},
		},
	},
}

// DeviceNames lists the reference devices in the paper's order.
func DeviceNames() []string {
	return []string{"intel750", "850pro", "zssd", "983dct"}
}

// Bandwidth returns the reference bandwidth curve (MB/s over Depths) of
// the device for the pattern at 4 KiB blocks.
func Bandwidth(device string, p workload.Pattern) ([]float64, error) {
	d, ok := devices[device]
	if !ok {
		return nil, fmt.Errorf("refdata: unknown device %q", device)
	}
	c, ok := d.bw[p]
	if !ok {
		return nil, fmt.Errorf("refdata: no %v curve for %q", p, device)
	}
	return c, nil
}

// Latency returns the reference latency curve (us over Depths), derived
// from the bandwidth curve by Little's law (depth * blocksize / bandwidth),
// which is how closed-loop FIO latency and bandwidth relate.
func Latency(device string, p workload.Pattern) ([]float64, error) {
	bw, err := Bandwidth(device, p)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bw))
	for i, d := range Depths {
		if bw[i] > 0 {
			out[i] = float64(d) * 4096 / (bw[i] * 1e6) * 1e6
		}
	}
	return out, nil
}

// BlockBandwidth returns the reference bandwidth (MB/s over BlockSizesKiB)
// at queue depth 32 for Fig. 10.
func BlockBandwidth(device string, p workload.Pattern) ([]float64, error) {
	d, ok := devices[device]
	if !ok {
		return nil, fmt.Errorf("refdata: unknown device %q", device)
	}
	c, ok := d.blockBW[p]
	if !ok {
		return nil, fmt.Errorf("refdata: no %v block curve for %q", p, device)
	}
	return c, nil
}
