// Package config provides the device and platform presets the evaluation
// uses: the reverse-engineered Intel 750 of Table I, the Samsung 850 PRO
// (h-type), Z-SSD and 983 DCT prototypes (s-type) of §V-B, a UFS mobile
// device, and the OCSSD variant of §V-E.
//
// Geometries keep the paper's parallelism (channels, ways, planes) exact
// but scale blocks-per-plane down so steady-state experiments fit in
// laptop-scale memory and wall-clock; the OP ratio, page sizes and all
// timing parameters are unscaled, so bandwidth/latency behavior is
// preserved while raw capacity shrinks. DESIGN.md documents this
// substitution.
package config

import (
	"fmt"

	"amber/internal/cpu"
	"amber/internal/dram"
	"amber/internal/ftl"
	"amber/internal/host"
	"amber/internal/icl"
	"amber/internal/nand"
	"amber/internal/proto"
	"amber/internal/sim"

	"amber/internal/core"
)

// defaultDevCPU is the 3-core ARMv8 embedded complex of §V-A.
func defaultDevCPU() cpu.Config {
	return cpu.Config{Cores: 3, FrequencyMHz: 500, IPC: 1.0}
}

// defaultFlashPower returns representative per-operation NAND energies.
func defaultFlashPower() nand.Power {
	return nand.Power{
		ReadEnergyJ:        55e-9,
		ProgEnergyJ:        480e-9,
		EraseEnergyJ:       1800e-9,
		XferEnergyJPerByte: 1.2e-12,
		LeakageWPerDie:     2.5e-3,
	}
}

// Intel750 returns the Table I device: 12 channels x 5 packages, 2 planes,
// MLC with tPROG 820.62/2250 us, tR 59.975/104.956 us, tERASE 3 ms, ONFi 3
// (333 MT/s), 1 GB internal DDR3L, NVMe 1.2.1, 20% OP.
func Intel750() core.DeviceConfig {
	return core.DeviceConfig{
		Name: "intel750",
		Geometry: nand.Geometry{
			Channels:           12,
			PackagesPerChannel: 5,
			DiesPerPackage:     1,
			PlanesPerDie:       2,
			BlocksPerPlane:     48,  // scaled from 512 (capacity only)
			PagesPerBlock:      128, // scaled from 512 (capacity only)
			PageSize:           8192,
		},
		Flash: nand.Timing{
			ReadFast:   sim.FromMicroseconds(59.975),
			ReadSlow:   sim.FromMicroseconds(104.956),
			ProgFast:   sim.FromMicroseconds(820.62),
			ProgSlow:   sim.FromMicroseconds(2250),
			Erase:      sim.FromMicroseconds(3000),
			BusMTps:    333,
			CmdCycles:  sim.FromNanoseconds(120),
			ISPPJitter: 0.05,
		},
		FlashPower:         defaultFlashPower(),
		Cell:               nand.MLC,
		DRAM:               dram.DDR3L1600(1 << 30),
		DRAMPower:          dram.DefaultPower(),
		CPU:                defaultDevCPU(),
		CPUPower:           cpu.DefaultPower(),
		OPRatio:            0.20,
		GCPolicy:           ftl.Greedy,
		PartialUpdate:      true,
		CacheAssoc:         icl.FullyAssoc,
		CacheRepl:          icl.LRU,
		ReadaheadThreshold: 2,
		ReadaheadLines:     4,
		Protocol:           proto.NVMe121(),
		Seed:               750,
	}
}

// Samsung850Pro returns the §V-B h-type device: MLC over 8 interconnects,
// SATA 3.0.
func Samsung850Pro() core.DeviceConfig {
	d := Intel750()
	d.Name = "850pro"
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 4,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     48,
		PagesPerBlock:      128,
		PageSize:           8192,
	}
	d.Flash.ReadFast = sim.FromMicroseconds(45)
	d.Flash.ReadSlow = sim.FromMicroseconds(90)
	d.Flash.ProgFast = sim.FromMicroseconds(700)
	d.Flash.ProgSlow = sim.FromMicroseconds(1900)
	d.DRAM = dram.DDR3L1600(512 << 20)
	d.Protocol = proto.SATA30()
	d.Seed = 850
	return d
}

// ZSSD returns the §V-B Z-SSD prototype: new low-latency flash with 3 us
// reads and 100 us writes [61] behind NVMe on a wider PCIe link.
func ZSSD() core.DeviceConfig {
	d := Intel750()
	d.Name = "zssd"
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 2,
		DiesPerPackage:     2,
		PlanesPerDie:       2,
		BlocksPerPlane:     48,
		PagesPerBlock:      128,
		PageSize:           8192,
	}
	d.Cell = nand.SLC
	d.Flash.ReadFast = sim.FromMicroseconds(3)
	d.Flash.ReadSlow = sim.FromMicroseconds(3)
	d.Flash.ProgFast = sim.FromMicroseconds(100)
	d.Flash.ProgSlow = sim.FromMicroseconds(100)
	d.Flash.Erase = sim.FromMicroseconds(1000)
	d.Flash.BusMTps = 667 // high-speed toggle interface
	d.Flash.ISPPJitter = 0.02
	d.CPU.FrequencyMHz = 800 // faster controller for the ultra-low-latency part
	d.Protocol = proto.NVMe121()
	d.Protocol.LinkBytesPerSec = 4.4e9 // PCIe Gen3 x8-class device link
	d.Seed = 963
	return d
}

// Samsung983DCT returns the §V-B 983 DCT prototype: like the 850 PRO's
// backend but behind NVMe with multi-stream support.
func Samsung983DCT() core.DeviceConfig {
	d := Samsung850Pro()
	d.Name = "983dct"
	d.Geometry.Channels = 8
	d.Geometry.PackagesPerChannel = 4
	d.Flash.ProgFast = sim.FromMicroseconds(600)
	d.Flash.ProgSlow = sim.FromMicroseconds(1600)
	d.Protocol = proto.NVMe121()
	d.DRAM = dram.DDR3L1600(1 << 30)
	d.Seed = 983
	return d
}

// MobileUFS returns the §V-D handheld device: a smaller backend behind
// UFS 2.1, as embedded in the Jetson TX2-class platform.
func MobileUFS() core.DeviceConfig {
	d := Intel750()
	d.Name = "mobile-ufs"
	d.Geometry = nand.Geometry{
		Channels:           4,
		PackagesPerChannel: 2,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     48,
		PagesPerBlock:      128,
		PageSize:           8192,
	}
	d.DRAM = dram.DDR3L1600(256 << 20)
	d.CPU.FrequencyMHz = 400
	d.Protocol = proto.UFS21()
	d.Seed = 21
	return d
}

// MobileNVMe returns the same mobile backend behind NVMe — the §V-D
// comparison device ("NVMe attached ARM core").
func MobileNVMe() core.DeviceConfig {
	d := MobileUFS()
	d.Name = "mobile-nvme"
	d.Protocol = proto.NVMe121()
	return d
}

// OCSSD returns the §V-E passive device: the Intel 750 backend exposed
// through OCSSD 2.0 with pblk on the host.
func OCSSD() core.DeviceConfig {
	d := Intel750()
	d.Name = "ocssd"
	d.Protocol = proto.OCSSD20()
	d.Passive = true
	return d
}

// Devices returns the named device presets.
func Devices() map[string]func() core.DeviceConfig {
	return map[string]func() core.DeviceConfig{
		"intel750":    Intel750,
		"850pro":      Samsung850Pro,
		"zssd":        ZSSD,
		"983dct":      Samsung983DCT,
		"ufs":         MobileUFS,
		"mobile-nvme": MobileNVMe,
		"ocssd":       OCSSD,
	}
}

// Device returns the preset with the given name.
func Device(name string) (core.DeviceConfig, error) {
	f, ok := Devices()[name]
	if !ok {
		return core.DeviceConfig{}, fmt.Errorf("config: unknown device %q", name)
	}
	return f(), nil
}

// PCSystem returns a general-purpose platform (Table II PC) around the
// device.
func PCSystem(d core.DeviceConfig) core.SystemConfig {
	return core.SystemConfig{Device: d, Host: host.PC()}
}

// MobileSystem returns the handheld platform (Table II mobile) around the
// device.
func MobileSystem(d core.DeviceConfig) core.SystemConfig {
	return core.SystemConfig{Device: d, Host: host.Mobile()}
}

// FaultProfile returns a named deterministic fault-injection preset.
// The seed fixes the fault schedule: the same seed with the same request
// stream draws identical faults at any intra-parallel worker count.
//
//	off     — no injection (the zero FaultConfig)
//	light   — rare failures on a healthy device, wear from 3000 erases
//	heavy   — an aging device: frequent failures, wear from 500 erases
//	wearout — an end-of-life device that degrades to read-only quickly
func FaultProfile(name string, seed uint64) (nand.FaultConfig, error) {
	switch name {
	case "off", "":
		return nand.FaultConfig{}, nil
	case "light":
		return nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: 2e-4,
			EraseFailProb:   5e-4,
			ReadFailProb:    2e-4,
			WearEraseLimit:  3000,
			MaxReadRetries:  3,
		}, nil
	case "heavy":
		return nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: 2e-3,
			EraseFailProb:   5e-3,
			ReadFailProb:    1e-3,
			WearEraseLimit:  500,
			MaxReadRetries:  3,
		}, nil
	case "wearout":
		return nand.FaultConfig{
			Seed:            seed,
			ProgramFailProb: 0.02,
			EraseFailProb:   0.05,
			ReadFailProb:    0.01,
			WearEraseLimit:  50,
			MaxReadRetries:  2,
		}, nil
	default:
		return nand.FaultConfig{}, fmt.Errorf("config: unknown fault profile %q (want off, light, heavy or wearout)", name)
	}
}

// SmallTestDevice returns a deliberately tiny device for fast unit and
// integration tests: full firmware stack, data tracking on.
func SmallTestDevice() core.DeviceConfig {
	d := Intel750()
	d.Name = "test-small"
	d.Geometry = nand.Geometry{
		Channels:           2,
		PackagesPerChannel: 2,
		DiesPerPackage:     1,
		PlanesPerDie:       1,
		BlocksPerPlane:     16,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	d.DRAM = dram.DDR3L1600(8 << 20)
	d.CacheLines = 8
	d.TrackData = true
	d.ReadaheadThreshold = 2
	d.ReadaheadLines = 2
	d.Seed = 7
	return d
}
