package config

import (
	"testing"

	"amber/internal/core"
	"amber/internal/proto"
)

func TestAllPresetsValidate(t *testing.T) {
	for name, f := range Devices() {
		d := f()
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Name == "" {
			t.Errorf("%s: empty name", name)
		}
	}
}

func TestTableIFidelity(t *testing.T) {
	d := Intel750()
	// The published Table I parameters are unscaled.
	if got := d.Flash.ProgFast.Microseconds(); got < 820.61 || got > 820.63 {
		t.Fatalf("tPROG fast = %v, want 820.62", got)
	}
	if got := d.Flash.ReadFast.Microseconds(); got < 59.97 || got > 59.98 {
		t.Fatalf("tR fast = %v, want 59.975", got)
	}
	if d.Flash.Erase.Microseconds() != 3000 {
		t.Fatal("tERASE must be 3ms")
	}
	if d.Geometry.Channels != 12 || d.Geometry.PackagesPerChannel != 5 || d.Geometry.PlanesPerDie != 2 {
		t.Fatal("Table I parallelism must be unscaled")
	}
	if d.OPRatio != 0.20 {
		t.Fatal("Intel 750 OP is 20%")
	}
	if d.DRAM.CapacityBytes != 1<<30 || d.DRAM.BanksPerRank != 8 {
		t.Fatal("Table I internal DRAM: 1GB, 8 banks")
	}
}

func TestDeviceProtocolAssignments(t *testing.T) {
	cases := map[string]proto.Kind{
		"intel750": proto.NVMe, "850pro": proto.SATA, "zssd": proto.NVMe,
		"983dct": proto.NVMe, "ufs": proto.UFS, "mobile-nvme": proto.NVMe,
		"ocssd": proto.OCSSD,
	}
	for name, want := range cases {
		d, err := Device(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Protocol.Kind != want {
			t.Errorf("%s: protocol %v, want %v", name, d.Protocol.Kind, want)
		}
	}
	if d, _ := Device("ocssd"); !d.Passive {
		t.Fatal("ocssd preset must be passive")
	}
}

func TestZSSDIsLowLatency(t *testing.T) {
	z, i := ZSSD(), Intel750()
	if z.Flash.ReadFast >= i.Flash.ReadFast/10 {
		t.Fatal("Z-SSD reads must be ~3us [61]")
	}
	if z.Flash.ProgFast >= i.Flash.ProgFast/5 {
		t.Fatal("Z-SSD writes must be ~100us [61]")
	}
}

func TestPlatformBuilders(t *testing.T) {
	d := SmallTestDevice()
	pc := PCSystem(d)
	mob := MobileSystem(d)
	if pc.Host.FreqMHz <= mob.Host.FreqMHz {
		t.Fatal("PC platform must be faster (Table II)")
	}
	if _, err := core.NewSystem(pc); err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewSystem(mob); err != nil {
		t.Fatal(err)
	}
}
