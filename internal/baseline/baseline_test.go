package baseline

import (
	"testing"

	"amber/internal/workload"
)

func TestAllBaselinesRun(t *testing.T) {
	for _, b := range All() {
		r := b.Replay(workload.RandRead, 4096, 8, 500)
		if r.BandwidthMBps <= 0 || r.LatencyUs <= 0 {
			t.Fatalf("%s: degenerate result %+v", b.Name(), r)
		}
	}
}

// The structural pathologies §III-A describes must emerge from each model.

func TestMQSimLikeScalesLinearly(t *testing.T) {
	b := NewMQSimLike()
	r1 := b.Replay(workload.RandRead, 4096, 1, 2000)
	r16 := b.Replay(workload.RandRead, 4096, 16, 2000)
	ratio := r16.BandwidthMBps / r1.BandwidthMBps
	if ratio < 14 || ratio > 18 {
		t.Fatalf("mqsim-like depth scaling = %.1fx, want ~16x (linear)", ratio)
	}
	// And latency is depth-independent (no contention anywhere).
	if r16.LatencyUs != r1.LatencyUs {
		t.Fatalf("mqsim-like latency changed with depth: %v vs %v", r1.LatencyUs, r16.LatencyUs)
	}
}

func TestSSDExtLikeIsFlat(t *testing.T) {
	b := NewSSDExtLike()
	r1 := b.Replay(workload.RandRead, 4096, 1, 2000)
	r32 := b.Replay(workload.RandRead, 4096, 32, 2000)
	// Serialized path: bandwidth must NOT grow with depth.
	if r32.BandwidthMBps > r1.BandwidthMBps*1.1 {
		t.Fatalf("ssdext-like scaled with depth: %v -> %v", r1.BandwidthMBps, r32.BandwidthMBps)
	}
	// Latency balloons instead.
	if r32.LatencyUs < r1.LatencyUs*10 {
		t.Fatalf("ssdext-like latency did not balloon: %v -> %v", r1.LatencyUs, r32.LatencyUs)
	}
}

func TestFlashSimLikeFlatAndSlow(t *testing.T) {
	b := NewFlashSimLike()
	r1 := b.Replay(workload.SeqRead, 4096, 1, 2000)
	r32 := b.Replay(workload.SeqRead, 4096, 32, 2000)
	if r32.BandwidthMBps > r1.BandwidthMBps*1.1 {
		t.Fatal("flashsim-like should be flat")
	}
	// Reads and writes are indistinguishable (no flash model).
	w1 := b.Replay(workload.SeqWrite, 4096, 1, 2000)
	if w1.BandwidthMBps != r1.BandwidthMBps {
		t.Fatal("flashsim-like should not distinguish reads from writes")
	}
}

func TestSSDSimLikeContendOnDies(t *testing.T) {
	b := NewSSDSimLike()
	r1 := b.Replay(workload.RandRead, 4096, 1, 2000)
	r32 := b.Replay(workload.RandRead, 4096, 32, 2000)
	// Some scaling (parallel dies) but sublinear due to collisions.
	if r32.BandwidthMBps <= r1.BandwidthMBps {
		t.Fatal("ssdsim-like should scale somewhat with depth")
	}
}

func TestNames(t *testing.T) {
	want := []string{"mqsim-like", "ssdsim-like", "ssdext-like", "flashsim-like"}
	for i, b := range All() {
		if b.Name() != want[i] {
			t.Fatalf("baseline %d = %q, want %q", i, b.Name(), want[i])
		}
	}
}
