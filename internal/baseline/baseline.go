// Package baseline implements simplified SSD simulators reproducing the
// structural omissions §III-A blames for the wrong bandwidth/latency
// curves of existing tools (Figs. 3-4):
//
//   - MQSimLike models queues and flash latency but no computation complex
//     and no interface ceiling: bandwidth grows nearly linearly with depth.
//   - SSDSimLike models internal die parallelism extracted from a test
//     platform but no storage interface or queue control: its curve keeps
//     climbing without saturating by depth 32.
//   - SSDExtLike (SSD extension for DiskSim) serializes requests through a
//     single service path with a per-request FTL functional cost: bandwidth
//     is flat regardless of depth.
//   - FlashSimLike has neither a flash array model nor a queue: a constant
//     per-request latency yields a flat, low curve.
//
// Each baseline is an honest small model — the pathological curves emerge
// from what is missing, not from hard-coded shapes.
package baseline

import (
	"fmt"

	"amber/internal/sim"
	"amber/internal/workload"
)

// Result is one measured point.
type Result struct {
	BandwidthMBps float64
	LatencyUs     float64
}

// Simulator is a trace-replay SSD model: it serves n requests of the
// given pattern at the given queue depth and reports steady-state
// bandwidth and mean latency. (None of the baselines can run applications
// or carry data — that is the point.)
type Simulator interface {
	Name() string
	Replay(p workload.Pattern, blockSize, depth, n int) Result
}

// closedLoop replays a closed-loop trace against a per-request service
// function which returns the completion time of a request issued at t.
func closedLoop(service func(i int, issue sim.Time) sim.Time, depth, n, blockSize int) Result {
	if depth < 1 {
		depth = 1
	}
	slots := make([]sim.Time, depth)
	var lastDone sim.Time
	var latSum float64
	for i := 0; i < n; i++ {
		slot := 0
		for j := 1; j < depth; j++ {
			if slots[j] < slots[slot] {
				slot = j
			}
		}
		issue := slots[slot]
		done := service(i, issue)
		slots[slot] = done
		latSum += (done - issue).Microseconds()
		if done > lastDone {
			lastDone = done
		}
	}
	el := lastDone
	if el == 0 {
		el = 1
	}
	return Result{
		BandwidthMBps: float64(n) * float64(blockSize) / 1e6 / el.Seconds(),
		LatencyUs:     latSum / float64(n),
	}
}

// MQSimLike: multi-queue protocol bookkeeping plus flash latency, but no
// embedded cores, no link model and effectively unbounded backend
// parallelism — every queue entry progresses independently, so bandwidth
// scales almost linearly with depth.
type MQSimLike struct {
	ReadUs, WriteUs float64 // flash service per request
	QueueUs         float64 // fixed protocol bookkeeping
}

// NewMQSimLike returns the baseline with representative MLC latencies.
func NewMQSimLike() *MQSimLike {
	return &MQSimLike{ReadUs: 80, WriteUs: 1200, QueueUs: 6}
}

// Name implements Simulator.
func (m *MQSimLike) Name() string { return "mqsim-like" }

// Replay implements Simulator.
func (m *MQSimLike) Replay(p workload.Pattern, blockSize, depth, n int) Result {
	svc := m.ReadUs
	if p.IsWrite() {
		svc = m.WriteUs
	}
	per := sim.FromMicroseconds(m.QueueUs + svc)
	return closedLoop(func(i int, issue sim.Time) sim.Time {
		// No shared resource anywhere: requests never contend.
		return issue + per
	}, depth, n, blockSize)
}

// SSDSimLike: per-die contention from an in-house platform, but no host
// interface, no queue ceiling and no firmware cost: the curve keeps
// growing with depth because 30+ dies never saturate at depth 32.
type SSDSimLike struct {
	Dies            int
	ReadUs, WriteUs float64
}

// NewSSDSimLike returns the baseline with a 32-die backend.
func NewSSDSimLike() *SSDSimLike {
	return &SSDSimLike{Dies: 32, ReadUs: 85, WriteUs: 1300}
}

// Name implements Simulator.
func (s *SSDSimLike) Name() string { return "ssdsim-like" }

// Replay implements Simulator. Each replay starts from an idle backend.
func (s *SSDSimLike) Replay(p workload.Pattern, blockSize, depth, n int) Result {
	svc := sim.FromMicroseconds(s.ReadUs)
	if p.IsWrite() {
		svc = sim.FromMicroseconds(s.WriteUs)
	}
	rng := sim.NewRNG(404)
	dies := make([]*sim.Resource, s.Dies)
	for i := range dies {
		dies[i] = sim.NewResource(fmt.Sprintf("ssdsim.die%d", i))
	}
	return closedLoop(func(i int, issue sim.Time) sim.Time {
		die := dies[rng.Intn(len(dies))]
		_, done := die.Claim(issue, svc)
		return done
	}, depth, n, blockSize)
}

// SSDExtLike: DiskSim's single-request service path with a page-mapping
// FTL functional model. Requests serialize completely, so depth buys
// nothing: the bandwidth curve is flat and latency grows linearly.
type SSDExtLike struct {
	ReadUs, WriteUs, FTLUs float64
}

// NewSSDExtLike returns the baseline.
func NewSSDExtLike() *SSDExtLike {
	return &SSDExtLike{ReadUs: 90, WriteUs: 900, FTLUs: 25}
}

// Name implements Simulator.
func (s *SSDExtLike) Name() string { return "ssdext-like" }

// Replay implements Simulator.
func (s *SSDExtLike) Replay(p workload.Pattern, blockSize, depth, n int) Result {
	svc := s.ReadUs
	if p.IsWrite() {
		svc = s.WriteUs
	}
	per := sim.FromMicroseconds(svc + s.FTLUs)
	path := sim.NewResource("ssdext.path")
	return closedLoop(func(i int, issue sim.Time) sim.Time {
		_, done := path.Claim(issue, per)
		return done
	}, depth, n, blockSize)
}

// FlashSimLike: an FTL-mapping simulator with neither a flash array timing
// model nor a queue: every request costs the same fixed latency through
// one path. Flat and far from the device.
type FlashSimLike struct {
	PerRequestUs float64
}

// NewFlashSimLike returns the baseline.
func NewFlashSimLike() *FlashSimLike {
	return &FlashSimLike{PerRequestUs: 210}
}

// Name implements Simulator.
func (f *FlashSimLike) Name() string { return "flashsim-like" }

// Replay implements Simulator.
func (f *FlashSimLike) Replay(p workload.Pattern, blockSize, depth, n int) Result {
	per := sim.FromMicroseconds(f.PerRequestUs)
	path := sim.NewResource("flashsim.path")
	return closedLoop(func(i int, issue sim.Time) sim.Time {
		_, done := path.Claim(issue, per)
		return done
	}, depth, n, blockSize)
}

// All returns the four baselines in the paper's comparison order.
func All() []Simulator {
	return []Simulator{NewMQSimLike(), NewSSDSimLike(), NewSSDExtLike(), NewFlashSimLike()}
}
