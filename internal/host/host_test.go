package host

import (
	"testing"

	"amber/internal/cpu"
	"amber/internal/sim"
)

func TestConfigValidate(t *testing.T) {
	if err := PC().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Mobile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := PC()
	bad.CPUs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero CPUs accepted")
	}
	bad = PC()
	bad.MemBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero memory accepted")
	}
}

func TestPlatformContrast(t *testing.T) {
	pc, mob := PC(), Mobile()
	if pc.FreqMHz <= mob.FreqMHz {
		t.Fatal("PC must be faster than mobile (Table II)")
	}
	if pc.MemBandwidth <= mob.MemBandwidth {
		t.Fatal("PC memory must be faster")
	}
}

func TestSchedulerCosts(t *testing.T) {
	mk := func(k SchedulerKind) *Host {
		cfg := PC()
		cfg.Scheduler = k
		h, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	cfq, bfq, noop := mk(CFQ), mk(BFQ), mk(NoopSched)
	// CFQ submission burns the most CPU (§V-C).
	tc := cfq.Submit(0, false, 9000)
	tb := bfq.Submit(0, false, 9000)
	tn := noop.Submit(0, false, 9000)
	if !(tc > tb && tb > tn) {
		t.Fatalf("submit times: cfq=%v bfq=%v noop=%v", tc, tb, tn)
	}
	// BFQ merges sequential requests cheaply.
	seq := mk(BFQ).Submit(0, true, 9000)
	if seq >= tb {
		t.Fatal("BFQ sequential merge should be cheaper")
	}
	// CFQ's dispatch window is capped; BFQ's is not.
	if cfq.DepthCap() != 8 || bfq.DepthCap() < 1024 {
		t.Fatalf("depth caps: cfq=%d bfq=%d", cfq.DepthCap(), bfq.DepthCap())
	}
	if CFQ.String() != "cfq" || BFQ.String() != "bfq" || NoopSched.String() != "noop" {
		t.Fatal("names wrong")
	}
}

func TestCompleteChargesISR(t *testing.T) {
	h, err := New(PC())
	if err != nil {
		t.Fatal(err)
	}
	end := h.Complete(0, 7000)
	if end == 0 {
		t.Fatal("ISR took no time")
	}
	if h.CPU.BusyTime() == 0 {
		t.Fatal("ISR not charged to CPU")
	}
}

func TestMemoryAccounting(t *testing.T) {
	h, err := New(PC())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(1 << 30); err != nil {
		t.Fatal(err)
	}
	if h.MemUsed() != 1<<30 {
		t.Fatalf("MemUsed = %d", h.MemUsed())
	}
	if err := h.Alloc(64 << 30); err == nil {
		t.Fatal("over-allocation accepted")
	}
	h.Free(1 << 30)
	if h.MemUsed() != 0 {
		t.Fatal("free did not release")
	}
	if err := h.Alloc(-1); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	h, _ := New(PC())
	defer func() {
		if recover() == nil {
			t.Fatal("over-free should panic")
		}
	}()
	h.Free(1)
}

func TestExecutePinnedAndUtilization(t *testing.T) {
	h, err := New(PC())
	if err != nil {
		t.Fatal(err)
	}
	end := h.ExecutePinned(0, 2, "pblk.test", cpu.Mix(44000))
	// 44000 instr at 2 IPC, 4.4 GHz = 5us.
	if end != 5*sim.Microsecond {
		t.Fatalf("pinned exec end = %v", end)
	}
	if u := h.CPUUtilization(20 * sim.Microsecond); u <= 0 {
		t.Fatal("utilization should be positive")
	}
}
