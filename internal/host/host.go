// Package host models the host system Amber plugs its SSDs into: host CPU
// cores executing the kernel storage stack (reusing the instruction-mix
// machinery of package cpu), system memory bandwidth and capacity
// accounting, and the block-layer I/O scheduler models the OS-impact
// experiment (§V-C, Fig. 12) turns on — CFQ as shipped in Linux 4.4 and
// the refined per-process BFQ of 4.14, plus a noop/none passthrough.
package host

import (
	"fmt"

	"amber/internal/cpu"
	"amber/internal/sim"
)

// Domain names the scheduling domain (sim.Engine shard) that orders
// host-side events: request issue slots, kernel submission boundaries and
// completion/ISR events (the host/HIL traffic).
const Domain = "host"

// SchedulerKind selects the block-layer I/O scheduler model.
type SchedulerKind int

// Scheduler models.
const (
	// NoopSched is the passthrough (mq "none") scheduler.
	NoopSched SchedulerKind = iota
	// CFQ models Linux 4.4's Completely Fair Queuing: heavy per-request
	// accounting and a small per-process dispatch window that cannot keep
	// deep device queues fed (§V-C).
	CFQ
	// BFQ models Linux 4.14's refined Budget Fair Queueing: per-process
	// queues with budgets, a unified merge path that coalesces sequential
	// requests, and no artificial dispatch ceiling.
	BFQ
)

func (s SchedulerKind) String() string {
	switch s {
	case CFQ:
		return "cfq"
	case BFQ:
		return "bfq"
	default:
		return "noop"
	}
}

// Config describes the host platform (Table II).
type Config struct {
	CPUs         int
	FreqMHz      float64
	IPC          float64
	Scheduler    SchedulerKind
	MemBytes     int64
	MemBandwidth float64 // bytes/second
}

// Validate reports descriptive configuration errors.
func (c Config) Validate() error {
	switch {
	case c.CPUs <= 0:
		return fmt.Errorf("host: CPUs must be positive")
	case c.FreqMHz <= 0 || c.IPC <= 0:
		return fmt.Errorf("host: frequency and IPC must be positive")
	case c.MemBytes <= 0 || c.MemBandwidth <= 0:
		return fmt.Errorf("host: memory size and bandwidth must be positive")
	}
	return nil
}

// PC returns the Table II general-purpose platform (i7-4790K class):
// 4 cores at 4.4 GHz, DDR4-2400 x2 (~38.4 GB/s), 16 GiB.
func PC() Config {
	return Config{
		CPUs: 4, FreqMHz: 4400, IPC: 2.0,
		Scheduler: BFQ,
		MemBytes:  16 << 30, MemBandwidth: 38.4e9,
	}
}

// Mobile returns the Table II handheld platform (Jetson TX2 class):
// 4 cores at 2 GHz, LPDDR4-3733 x1 (~29.9 GB/s peak, derated), 8 GiB.
func Mobile() Config {
	return Config{
		CPUs: 4, FreqMHz: 2000, IPC: 1.2,
		Scheduler: BFQ,
		MemBytes:  8 << 30, MemBandwidth: 14.9e9,
	}
}

// Host is the host-system model. Not safe for concurrent use.
type Host struct {
	cfg Config
	// CPU is the host processor complex; the kernel storage stack and (for
	// OCSSD) pblk execute here.
	CPU *cpu.Complex
	// Mem is the system memory bandwidth resource shared by the DMA engine
	// and kernel copies.
	Mem *sim.Resource

	memUsed int64
}

// New constructs a Host.
func New(cfg Config) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := cpu.New(cpu.Config{
		Cores:        cfg.CPUs,
		FrequencyMHz: cfg.FreqMHz,
		IPC:          cfg.IPC,
	}, cpu.Power{EnergyPerInstrJ: 0.4e-9, LeakageWPerCore: 1.5})
	if err != nil {
		return nil, err
	}
	return &Host{cfg: cfg, CPU: c, Mem: sim.NewResource("host.mem")}, nil
}

// Config returns the configuration.
func (h *Host) Config() Config { return h.cfg }

// MemBandwidth returns system memory bandwidth in bytes/second.
func (h *Host) MemBandwidth() float64 { return h.cfg.MemBandwidth }

// schedulerInstr returns the I/O scheduler's per-request instruction
// budget. sequential requests that merge with their predecessor are
// cheaper under BFQ's unified merge path.
func (h *Host) schedulerInstr(sequential bool) uint64 {
	switch h.cfg.Scheduler {
	case CFQ:
		// Per-process service trees, time-slice accounting, idling logic:
		// the cycles §V-C blames for CFQ "consuming CPU in I/O scheduling".
		return 52000
	case BFQ:
		if sequential {
			return 9000 // merged into the previous request's budget
		}
		return 17000
	default:
		return 3000
	}
}

// DepthCap returns the scheduler's effective outstanding-request ceiling:
// CFQ's per-process dispatch window cannot keep deep queues fed, which is
// the second half of the §V-C result.
func (h *Host) DepthCap() int {
	if h.cfg.Scheduler == CFQ {
		return 8
	}
	return 1 << 20
}

// BatchWindow bounds a vectored submission window by the scheduler's
// outstanding-request ceiling: a batch can defer per-request bookkeeping
// only across as many commands as the kernel would actually keep in
// flight. The protocol's hardware queue limit clamps further
// (proto.Params.EffectiveQueueDepth).
func (h *Host) BatchWindow(requested int) int {
	if cap := h.DepthCap(); requested > cap {
		return cap
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// Submit charges the kernel submission path (block layer + scheduler +
// driver instructions) on a host core and returns its completion time.
func (h *Host) Submit(now sim.Time, sequential bool, driverInstr uint64) sim.Time {
	mix := cpu.Mix(driverInstr + h.schedulerInstr(sequential))
	_, end := h.CPU.ExecuteAny(now, "kernel.submit", mix)
	return end
}

// Complete charges the interrupt service routine and completion path and
// returns its completion time.
func (h *Host) Complete(now sim.Time, isrInstr uint64) sim.Time {
	_, end := h.CPU.ExecuteAny(now, "kernel.isr", cpu.Mix(isrInstr))
	return end
}

// ExecutePinned charges arbitrary host work (pblk, lightNVM) on a specific
// core.
func (h *Host) ExecutePinned(now sim.Time, core int, module string, mix cpu.InstrMix) sim.Time {
	_, end := h.CPU.Execute(now, core, module, mix)
	return end
}

// Alloc reserves host memory (driver pools, FIO buffers, pblk tables).
func (h *Host) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("host: negative allocation")
	}
	if h.memUsed+n > h.cfg.MemBytes {
		return fmt.Errorf("host: allocation of %d exceeds %d available",
			n, h.cfg.MemBytes-h.memUsed)
	}
	h.memUsed += n
	return nil
}

// Free releases host memory.
func (h *Host) Free(n int64) {
	if n < 0 || n > h.memUsed {
		panic("host: free does not match allocations")
	}
	h.memUsed -= n
}

// MemUsed returns currently allocated host memory in bytes.
func (h *Host) MemUsed() int64 { return h.memUsed }

// CPUUtilization returns aggregate host CPU utilization over the window.
func (h *Host) CPUUtilization(elapsed sim.Duration) float64 {
	return h.CPU.Utilization(elapsed)
}
