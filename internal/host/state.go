package host

import (
	"amber/internal/sim"
	"amber/internal/snap"
)

// EncodeState serializes the host's complete functional state: the CPU
// complex, the memory-bandwidth resource and the capacity accountant.
func (h *Host) EncodeState(e *snap.Enc) {
	h.CPU.EncodeState(e)
	st := h.Mem.State()
	e.I64(int64(st.FreeAt))
	e.I64(int64(st.Busy))
	e.U64(st.Claims)
	e.I64(h.memUsed)
}

// DecodeState reinstalls a state captured by EncodeState into h, which
// must be freshly constructed with the identical configuration.
func (h *Host) DecodeState(d *snap.Dec) error {
	if err := h.CPU.DecodeState(d); err != nil {
		return err
	}
	h.Mem.SetState(sim.ResourceState{
		FreeAt: sim.Time(d.I64()),
		Busy:   sim.Duration(d.I64()),
		Claims: d.U64(),
	})
	h.memUsed = d.I64()
	return d.Err()
}
