package proto

import "testing"

func TestAllKindsValidate(t *testing.T) {
	for _, k := range []Kind{SATA, UFS, NVMe, OCSSD} {
		p, err := ForKind(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", k, err)
		}
		if p.Kind != k {
			t.Errorf("%v: kind mismatch", k)
		}
	}
	if _, err := ForKind(Kind(99)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestHTypeClassification(t *testing.T) {
	if !SATA.IsHType() || !UFS.IsHType() {
		t.Fatal("SATA/UFS must be h-type")
	}
	if NVMe.IsHType() || OCSSD.IsHType() {
		t.Fatal("NVMe/OCSSD must be s-type")
	}
}

func TestHTypeQueueLimits(t *testing.T) {
	// The architectural contrast of §II-A: 32-entry command lists vs rich
	// queues.
	if SATA30().QueueDepthLimit != 32 || UFS21().QueueDepthLimit != 32 {
		t.Fatal("h-type must have 32-entry queues")
	}
	if NVMe121().QueueDepthLimit != 65536 || NVMe121().MaxQueues != 65536 {
		t.Fatal("NVMe must expose rich queues")
	}
}

func TestEffectiveQueueDepth(t *testing.T) {
	s := SATA30()
	if s.EffectiveQueueDepth(64) != 32 {
		t.Fatal("SATA should clamp depth 64 to 32")
	}
	if s.EffectiveQueueDepth(8) != 8 {
		t.Fatal("depth below limit should pass through")
	}
	if s.EffectiveQueueDepth(0) != 1 {
		t.Fatal("zero depth should clamp to 1")
	}
	n := NVMe121()
	if n.EffectiveQueueDepth(256) != 256 {
		t.Fatal("NVMe should not clamp 256")
	}
}

func TestLinkOrdering(t *testing.T) {
	// NVMe's PCIe Gen3 x4 must outrun SATA 6Gbps and UFS HS-G3.
	if NVMe121().LinkBytesPerSec <= SATA30().LinkBytesPerSec {
		t.Fatal("NVMe link must be faster than SATA")
	}
	if NVMe121().LinkBytesPerSec <= UFS21().LinkBytesPerSec {
		t.Fatal("NVMe link must be faster than UFS")
	}
}

func TestHostControllerCopyFlags(t *testing.T) {
	if !SATA30().HostControllerCopy || !UFS21().HostControllerCopy {
		t.Fatal("h-type protocols stage through the host controller")
	}
	if NVMe121().HostControllerCopy || OCSSD20().HostControllerCopy {
		t.Fatal("s-type protocols DMA directly")
	}
}

func TestNVMeFirmwareHeavierThanHType(t *testing.T) {
	// Fig. 13c: the NVMe queue/doorbell path executes far more firmware
	// instructions per command than UFS.
	nvme := NVMe121()
	ufs := UFS21()
	nvmeInstr := nvme.ParseMix.Total() + nvme.QueueMix.Total()
	ufsInstr := ufs.ParseMix.Total() + ufs.QueueMix.Total()
	if float64(nvmeInstr) < 2*float64(ufsInstr) {
		t.Fatalf("NVMe per-command firmware (%d) should be well above UFS (%d)", nvmeInstr, ufsInstr)
	}
}

func TestTransferTimes(t *testing.T) {
	n := NVMe121()
	if n.CmdFetchTime() == 0 || n.CompletionTime() == 0 {
		t.Fatal("command transfer times must be nonzero")
	}
	if n.CmdFetchTime() <= n.CompletionTime() {
		t.Fatal("64B SQ fetch should outweigh 16B CQ entry")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	p := NVMe121()
	p.QueueDepthLimit = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero queue depth accepted")
	}
	p = NVMe121()
	p.LinkBytesPerSec = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero link accepted")
	}
	p = NVMe121()
	p.CmdFetchBytes = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero fetch size accepted")
	}
}

func TestStrings(t *testing.T) {
	if SATA.String() != "sata" || OCSSD.String() != "ocssd" {
		t.Fatal("kind names wrong")
	}
	if FIFO.String() != "fifo" || RoundRobin.String() != "rr" || WeightedRoundRobin.String() != "wrr" {
		t.Fatal("arbitration names wrong")
	}
}
