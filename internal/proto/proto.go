// Package proto models the storage interfaces and protocols Amber
// implements (§IV): SATA 3.0 (AHCI HBA, NCQ, FIS/PRDT), UFS 2.1 (UTP
// engine, UFSHCI, UPIU, M-PHY), NVMe 1.2.1 (SQ/CQ rich queues, doorbells,
// PRP/SGL, MSI-X) and OCSSD 2.0 (NVMe transport with physical addressing).
//
// Each protocol is described by a Params value capturing the properties the
// paper's evaluation turns on: the hardware queue limit (32-entry command
// lists for h-type vs 64K rich queues for s-type), link bandwidth, per-
// command controller latencies, whether data passes through a host
// controller buffer (the h-type double copy), whether completions
// serialize on a single I/O path, and the host-kernel and device-firmware
// instruction budgets of the submission and completion paths.
package proto

import (
	"fmt"

	"amber/internal/cpu"
	"amber/internal/sim"
)

// Kind identifies a storage interface protocol.
type Kind int

// Supported protocols.
const (
	SATA Kind = iota + 1
	UFS
	NVMe
	OCSSD
)

func (k Kind) String() string {
	switch k {
	case SATA:
		return "sata"
	case UFS:
		return "ufs"
	case NVMe:
		return "nvme"
	case OCSSD:
		return "ocssd"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsHType reports whether the protocol is hardware-driven storage (I/O
// controller hub with a host controller: SATA, UFS) as opposed to
// software-driven (memory controller hub over PCIe: NVMe, OCSSD).
func (k Kind) IsHType() bool { return k == SATA || k == UFS }

// Arbitration selects the HIL scheduling policy for s-type multi-queue
// protocols.
type Arbitration int

// Queue arbitration mechanisms (§III-B firmware stack).
const (
	FIFO Arbitration = iota // h-type single queue
	RoundRobin
	WeightedRoundRobin
)

func (a Arbitration) String() string {
	switch a {
	case RoundRobin:
		return "rr"
	case WeightedRoundRobin:
		return "wrr"
	default:
		return "fifo"
	}
}

// Params captures the performance-relevant properties of one protocol
// instance.
type Params struct {
	Kind Kind

	// QueueDepthLimit caps in-flight commands per queue (NCQ/UTRD list: 32;
	// NVMe: 65536).
	QueueDepthLimit int
	// MaxQueues is the number of I/O queues the protocol exposes.
	MaxQueues int
	// Arbitration is the device-side queue scheduling policy.
	Arbitration Arbitration

	// LinkBytesPerSec is the effective payload bandwidth of the physical
	// link (after encoding overhead).
	LinkBytesPerSec float64
	// CmdFetchBytes is the size of a command fetch (SQ entry, FIS, UTRD).
	CmdFetchBytes int
	// CompletionBytes is the completion record size (CQ entry, response
	// FIS/UPIU).
	CompletionBytes int

	// ControllerLatency is the fixed per-command device controller / PHY
	// crossing time.
	ControllerLatency sim.Duration
	// DoorbellLatency is the host MMIO write (or h-type register program)
	// reaching the device.
	DoorbellLatency sim.Duration
	// InterruptLatency is the MSI-X write or legacy interrupt delivery.
	InterruptLatency sim.Duration

	// HostControllerCopy marks h-type storage: payloads are staged through
	// the host controller's buffer (an extra host-memory copy per transfer)
	// and command/completion handling serializes on the controller.
	HostControllerCopy bool

	// SubmitInstr is the host-kernel instruction budget per submission
	// (driver + block layer glue, excluding the I/O scheduler, which the
	// host model owns).
	SubmitInstr uint64
	// CompleteInstr is the host ISR + completion path instruction budget.
	CompleteInstr uint64

	// ParseMix is the device firmware cost of unpacking one command.
	ParseMix cpu.InstrMix
	// QueueMix is the device firmware cost of queue/doorbell management
	// per command (the NVMe core rings on every doorbell — the 5.45x
	// instruction gap of Fig. 13c lives here).
	QueueMix cpu.InstrMix
	// CompleteMix is the device firmware cost of composing the completion.
	CompleteMix cpu.InstrMix
}

// Validate reports descriptive parameter errors.
func (p Params) Validate() error {
	switch {
	case p.Kind < SATA || p.Kind > OCSSD:
		return fmt.Errorf("proto: unknown kind %d", int(p.Kind))
	case p.QueueDepthLimit <= 0 || p.MaxQueues <= 0:
		return fmt.Errorf("proto: queue limits must be positive")
	case p.LinkBytesPerSec <= 0:
		return fmt.Errorf("proto: link bandwidth must be positive")
	case p.CmdFetchBytes <= 0 || p.CompletionBytes <= 0:
		return fmt.Errorf("proto: command/completion sizes must be positive")
	}
	return nil
}

// EffectiveQueueDepth bounds a requested I/O depth by the hardware limit.
func (p Params) EffectiveQueueDepth(requested int) int {
	if requested > p.QueueDepthLimit {
		return p.QueueDepthLimit
	}
	if requested < 1 {
		return 1
	}
	return requested
}

// CmdFetchTime returns link occupancy for fetching one command.
func (p Params) CmdFetchTime() sim.Duration {
	return sim.TransferTime(int64(p.CmdFetchBytes), p.LinkBytesPerSec)
}

// CompletionTime returns link occupancy for one completion record.
func (p Params) CompletionTime() sim.Duration {
	return sim.TransferTime(int64(p.CompletionBytes), p.LinkBytesPerSec)
}

// SATA30 returns SATA 3.0 over AHCI: 6 Gbit/s 8b/10b (600 MB/s payload),
// one 32-entry NCQ command list, FIS-based transfers staged through the
// HBA, legacy interrupt, serialized host-controller I/O path (§IV-A).
func SATA30() Params {
	return Params{
		Kind:               SATA,
		QueueDepthLimit:    32,
		MaxQueues:          1,
		Arbitration:        FIFO,
		LinkBytesPerSec:    600e6,
		CmdFetchBytes:      64 + 20, // command table entry + register FIS
		CompletionBytes:    20,      // D2H register FIS
		ControllerLatency:  sim.FromMicroseconds(2.0),
		DoorbellLatency:    sim.FromNanoseconds(400),
		InterruptLatency:   sim.FromMicroseconds(1.5),
		HostControllerCopy: true,
		SubmitInstr:        14000,
		CompleteInstr:      11000,
		ParseMix:           cpu.MixHILParseHType,
		QueueMix:           cpu.MixHTypeQueue,
		CompleteMix:        cpu.MixCompletion,
	}
}

// UFS21 returns UFS 2.1: UTP engine on the SoC bus (AXI), M-PHY HS-G3 x2
// (~1166 MB/s raw, ~730 MB/s effective payload), 32-entry UTRD list,
// UPIU-based transfers (§IV-A). The host controller sits in the SoC so its
// crossing latency is lower than SATA's ICH path.
func UFS21() Params {
	return Params{
		Kind:               UFS,
		QueueDepthLimit:    32,
		MaxQueues:          1,
		Arbitration:        FIFO,
		LinkBytesPerSec:    730e6,
		CmdFetchBytes:      32 + 32, // UTRD + command UPIU
		CompletionBytes:    32,      // response UPIU
		ControllerLatency:  sim.FromMicroseconds(1.2),
		DoorbellLatency:    sim.FromNanoseconds(150),
		InterruptLatency:   sim.FromMicroseconds(1.0),
		HostControllerCopy: true,
		SubmitInstr:        12000,
		CompleteInstr:      9000,
		ParseMix:           cpu.MixHILParseHType,
		QueueMix:           cpu.MixHTypeQueue,
		CompleteMix:        cpu.MixCompletion,
	}
}

// NVMe121 returns NVMe 1.2.1 over PCIe Gen3 x4 (~3.2 GB/s effective
// payload): 64K rich queues of 64K entries, 64-byte SQ entries with PRP
// lists, 16-byte CQ entries, MSI-X, doorbell-driven (§IV-B).
func NVMe121() Params {
	return Params{
		Kind:              NVMe,
		QueueDepthLimit:   65536,
		MaxQueues:         65536,
		Arbitration:       RoundRobin,
		LinkBytesPerSec:   3.2e9,
		CmdFetchBytes:     64,
		CompletionBytes:   16,
		ControllerLatency: sim.FromMicroseconds(0.8),
		DoorbellLatency:   sim.FromNanoseconds(250),
		InterruptLatency:  sim.FromNanoseconds(600),
		SubmitInstr:       9000,
		CompleteInstr:     7000,
		ParseMix:          cpu.MixHILParseNVMe,
		QueueMix:          cpu.MixDoorbell,
		CompleteMix:       cpu.MixCompletion,
	}
}

// OCSSD20 returns Open-Channel SSD 2.0: the NVMe transport with vector
// (physical) commands. The device bypasses FTL/ICL; the host runs pblk.
// Vector commands are larger (address lists) and the host-side cost moves
// into the pblk model in package host.
func OCSSD20() Params {
	p := NVMe121()
	p.Kind = OCSSD
	p.CmdFetchBytes = 64 + 64 // SQ entry + PPA list
	p.ParseMix = cpu.Mix(300) // thin pass-through firmware
	p.SubmitInstr = 11000     // lightNVM adds driver work before pblk costs
	return p
}

// ForKind returns the default parameter set of the given protocol.
func ForKind(k Kind) (Params, error) {
	switch k {
	case SATA:
		return SATA30(), nil
	case UFS:
		return UFS21(), nil
	case NVMe:
		return NVMe121(), nil
	case OCSSD:
		return OCSSD20(), nil
	default:
		return Params{}, fmt.Errorf("proto: unknown kind %d", int(k))
	}
}
