// oslatency reproduces the §V-C observation in miniature: the same SSD
// under the same workload delivers very different user-level performance
// depending on the kernel's I/O scheduler — Linux 4.4's CFQ cannot keep a
// modern SSD's queues fed, while 4.14's BFQ can.
package main

import (
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/host"
	"amber/internal/workload"
)

func main() {
	fmt.Println("OS impact on storage performance (paper §V-C, Fig. 12)")
	fmt.Println()
	fmt.Printf("%-10s %-18s %12s %12s\n", "workload", "scheduler", "MB/s", "avg us")

	for _, tp := range workload.Traces() {
		for _, sched := range []host.SchedulerKind{host.CFQ, host.BFQ} {
			d, err := config.Device("intel750")
			if err != nil {
				log.Fatal(err)
			}
			cfg := config.PCSystem(d)
			cfg.Host.Scheduler = sched
			sys, err := core.NewSystem(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if err := sys.Precondition(32); err != nil {
				log.Fatal(err)
			}
			gen, err := workload.NewTrace(tp, sys.VolumeBytes(), 7)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Run(gen, core.RunConfig{Requests: 1500, IODepth: 32})
			if err != nil {
				log.Fatal(err)
			}
			kernel := "4.4 (CFQ)"
			if sched == host.BFQ {
				kernel = "4.14 (BFQ)"
			}
			fmt.Printf("%-10s %-18s %12.1f %12.1f\n",
				tp.TraceName, kernel, res.BandwidthMBps(), res.AvgLatencyUs())
		}
	}
	fmt.Println()
	fmt.Println("CFQ both burns host CPU in scheduling and caps the dispatch window,")
	fmt.Println("so the device's internal parallelism sits idle — the paper's finding.")
}
