// Powerloss: cut device power in the middle of a GC-heavy overwrite storm,
// remount, and verify the durability contract — every write the device
// acknowledged durable before the cut reads back intact, and no torn page
// is ever served.
//
// The demo drives the full crash cycle:
//
//  1. A sequential fill of the whole volume, flushed and drained, so every
//     baseline byte is acknowledged durable on flash.
//  2. A 4K random-overwrite storm sized to force garbage collection, with
//     power cut deep inside it: in-flight programs resolve torn-or-committed
//     by a seeded draw, claimed-but-unstarted erases are undone, and all
//     volatile firmware state (cache lines, staged buffers, in-flight
//     plans) is lost.
//  3. Mount-time recovery: the FTL rebuilds its mapping purely from the
//     per-page OOB stamps (logical tag, write sequence, checksum), plus
//     post-mount cleanup and — if the cut left no erased block at all —
//     the emergency squeeze that compacts the over-provisioning space free.
//  4. A full-volume read-back: every 4 KiB block must hold either its
//     durable baseline payload or the payload of some storm write to that
//     offset. Anything else (zeroes, torn bytes, a stale page served over
//     a newer acknowledged one) fails the demo.
//
// The whole cycle is deterministic: same seeds, same cut time, same
// recovery — serially or at any intra-parallel worker count.
package main

import (
	"bytes"
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/workload"
)

// payload reconstructs the deterministic payload Run's WithData mode
// attaches to request i: data[k] = byte(offset + k + i).
func payload(req workload.Request, i int) []byte {
	data := make([]byte, req.Length)
	for k := range data {
		data[k] = byte(int(req.Offset) + k + i)
	}
	return data
}

func main() {
	// A wide data-tracking device: 8 channels so GC, the storm and the cut
	// all spread across real parallelism.
	d := config.SmallTestDevice()
	d.Geometry = nand.Geometry{
		Channels:           8,
		PackagesPerChannel: 1,
		DiesPerPackage:     1,
		PlanesPerDie:       2,
		BlocksPerPlane:     10,
		PagesPerBlock:      16,
		PageSize:           4096,
	}
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: durable baseline — write the whole volume sequentially,
	// flush the cache, drain the engine. Every byte is now acknowledged
	// durable on flash.
	bs := s.Split.LineBytes()
	n := int(s.VolumeBytes() / int64(bs))
	const fillSeed, stormSeed = 43, 29
	fill, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), fillSeed)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Run(fill, core.RunConfig{Requests: n, IODepth: 16, WithData: true}); err != nil {
		log.Fatal(err)
	}
	if _, err := s.Flush(s.Now()); err != nil {
		log.Fatal(err)
	}
	s.Drain()
	fmt.Printf("baseline: %d x %d B lines written, flushed, drained (now %v)\n", n, bs, s.Now())

	// Phase 2: the overwrite storm, power cut deep inside. A short probe
	// segment first establishes GC churn and a reference duration so the
	// cut lands mid-storm, not in the ramp-up.
	probe, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 11)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run(probe, core.RunConfig{Requests: 300, IODepth: 16, WithData: true})
	if err != nil {
		log.Fatal(err)
	}
	if s.FTL.Stats().GCRuns == 0 {
		log.Fatal("probe storm did not trigger GC; the cut would not land mid-GC")
	}
	cut := s.Now() + sim.Time((res.End-res.Start)/3)
	const stormReqs = 600
	storm, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), stormSeed)
	if err != nil {
		log.Fatal(err)
	}
	res, err = s.Run(storm, core.RunConfig{Requests: stormReqs, IODepth: 16, WithData: true, PowerLossAt: cut})
	if err != nil {
		log.Fatal(err)
	}
	if !res.PowerLost {
		log.Fatalf("cut at %v did not fire (storm ended %v)", cut, res.End)
	}
	pl := res.PowerLoss.Flash
	fmt.Printf("power cut at %v (GC runs so far: %d)\n", cut, s.FTL.Stats().GCRuns)
	fmt.Printf("  in-flight programs: %d -> %d torn / %d committed (seeded draw)\n",
		pl.InFlight, pl.Torn, pl.Committed)
	fmt.Printf("  erases undone: %d, dirty cache lines lost: %d (never acknowledged)\n",
		pl.ErasesUndone, res.PowerLoss.DirtyLinesLost)
	m := res.Mount
	fmt.Printf("remount: scan %v, %d mappings recovered from OOB, %d torn discarded, %d stale skipped\n",
		m.ScanTime, m.RecoveredSubs, m.TornDiscarded, m.StaleSkipped)
	if m.CleanupErases > 0 || m.SqueezedSBs > 0 {
		fmt.Printf("  free-reserve recovery: cleanup erased %d blocks, squeeze compacted %d blocks (%d sub-pages)\n",
			m.CleanupErases, m.SqueezedSBs, m.SqueezedSubs)
	}

	// Phase 3: verify every acknowledged write. Candidates per 4 KiB
	// offset: the baseline fill slice, plus every storm write to that
	// offset — a write in flight at the cut may legitimately have
	// committed, but served bytes must always be SOME complete write.
	// Generators are stateful: replay each phase's request stream on a
	// fresh generator with the same seed.
	base := make(map[int64][]byte)
	fillReplay, err := workload.NewFIO(workload.SeqWrite, bs, s.VolumeBytes(), fillSeed)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := fillReplay.Next(i)
		data := payload(req, i)
		for off := 0; off < req.Length; off += 4096 {
			base[req.Offset+int64(off)] = data[off : off+4096]
		}
	}
	stormAt := make(map[int64][][]byte)
	replay := func(pattern workload.Pattern, seed uint64, reqs int) {
		gen, err := workload.NewFIO(pattern, 4096, s.VolumeBytes(), seed)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < reqs; i++ {
			req := gen.Next(i)
			stormAt[req.Offset] = append(stormAt[req.Offset], payload(req, i))
		}
	}
	replay(workload.RandWrite, 11, 300) // the probe segment's overwrites survive too
	replay(workload.RandWrite, stormSeed, stormReqs)
	buf := make([]byte, 4096)
	baseline, updated := 0, 0
	for off := int64(0); off < s.VolumeBytes(); off += 4096 {
		if _, err := s.Submit(s.Now(), workload.Request{Offset: off, Length: 4096}, buf); err != nil {
			log.Fatalf("read @%d after remount: %v", off, err)
		}
		switch {
		case bytes.Equal(buf, base[off]):
			baseline++
		default:
			ok := false
			for _, cand := range stormAt[off] {
				if bytes.Equal(buf, cand) {
					ok = true
					break
				}
			}
			if !ok {
				log.Fatalf("block @%d holds neither its durable baseline nor any storm payload: torn or lost data served", off)
			}
			updated++
		}
	}
	fmt.Printf("verify: %d blocks read back — %d baseline, %d storm-updated, 0 torn, 0 lost\n",
		baseline+updated, baseline, updated)

	// The remounted device keeps serving: a fresh write burst succeeds.
	post, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 17)
	if err != nil {
		log.Fatal(err)
	}
	res, err = s.Run(post, core.RunConfig{Requests: 200, IODepth: 16, WithData: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-recovery: %d writes served in %v (%d failed)\n",
		res.Requests, res.Elapsed(), res.FailedWrites)
	fmt.Println("durability contract held: every acknowledged write survived the cut")
}
