// Quickstart: build a small full-system SSD, write data through the whole
// stack (kernel -> NVMe -> firmware -> flash), read it back, and print
// what the simulator measured along the way.
package main

import (
	"bytes"
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/workload"
)

func main() {
	// A tiny device with data tracking on: reads return the bytes written.
	sys, err := core.NewSystem(config.PCSystem(config.SmallTestDevice()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s over %s, %d MB volume, %d flash dies\n",
		sys.Config().Device.Name, sys.Protocol().Kind,
		sys.VolumeBytes()>>20, sys.Config().Device.Geometry.TotalDies())

	// Write 64 KiB of patterned data at offset 1 MiB.
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	wreq := workload.Request{Write: true, Offset: 1 << 20, Length: len(payload)}
	wDone, err := sys.Submit(0, wreq, payload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("write:  64 KiB completed at +%v\n", wDone)

	// Flush the cache so the data must come back from flash.
	fDone, err := sys.Flush(wDone)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flush:  dirty lines programmed by +%v\n", fDone)

	// Read it back and verify byte-for-byte.
	got := make([]byte, len(payload))
	rreq := workload.Request{Offset: 1 << 20, Length: len(got)}
	rDone, err := sys.Submit(fDone, rreq, got)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("data corruption: read-back differs")
	}
	fmt.Printf("read:   64 KiB verified, completed at +%v (latency %v)\n", rDone, rDone-fDone)

	// Now run a closed-loop random-read benchmark at queue depth 16.
	gen, err := workload.NewFIO(workload.RandRead, 4096, sys.VolumeBytes(), 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(gen, core.RunConfig{Requests: 2000, IODepth: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bench:  4K rand-read qd16: %.1f MB/s, avg %.1f us, p99 %.1f us\n",
		res.BandwidthMBps(), res.AvgLatencyUs(), res.Latency.Percentile(99))
	fmt.Printf("flash:  %d reads, %d programs; ICL hit rate %.0f%%\n",
		sys.Flash.Stats().Reads, sys.Flash.Stats().Programs, sys.ICL.Stats().HitRate()*100)

	// Vectored submission: hand the device a whole request stream at once.
	// SubmitBatch keeps the serial depth-1 contract — results are
	// byte-identical to calling Submit in a loop — but drains deferred
	// bookkeeping once per window instead of once per request.
	batch := make([]workload.Request, 256)
	datas := make([][]byte, len(batch))
	for i := range batch {
		buf := make([]byte, 4096)
		for j := range buf {
			buf[j] = byte(i + j)
		}
		batch[i] = workload.Request{Write: true, Offset: int64(i) * 4096, Length: len(buf)}
		datas[i] = buf
	}
	bDone, err := sys.SubmitBatch(sys.Now(), batch, datas, nil)
	if err != nil {
		log.Fatal(err)
	}
	windows, batched := sys.BatchStats()
	fmt.Printf("batch:  %d writes vectored over %d windows, done at +%v\n", batched, windows, bDone)

	// Read one batched write back to show the contract held.
	check := make([]byte, 4096)
	if _, err := sys.Submit(bDone, workload.Request{Offset: 100 * 4096, Length: len(check)}, check); err != nil {
		log.Fatal(err)
	}
	for j := range check {
		if check[j] != byte(100+j) {
			log.Fatalf("batched write 100 corrupt at byte %d", j)
		}
	}
	fmt.Println("batch:  request 100 read back and verified")
}
