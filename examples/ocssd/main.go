// ocssd reproduces §V-E in miniature: active storage (NVMe SSD with its
// firmware on-device) versus passive storage (Open-Channel SSD with pblk
// running the FTL on the host). Passive storage can win on small I/O but
// consumes most of the host's cores.
package main

import (
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/sim"
	"amber/internal/workload"
)

func main() {
	fmt.Println("Active vs passive storage (paper §V-E, Fig. 15)")
	fmt.Println()
	fmt.Printf("%-10s %10s %14s %14s %12s\n", "device", "MB/s", "host CPU util", "host mem MB", "avg us")

	for _, dev := range []string{"intel750", "ocssd"} {
		d, err := config.Device(dev)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(config.PCSystem(d))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Precondition(32); err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewFIO(workload.RandWrite, 4096, sys.VolumeBytes(), 9)
		if err != nil {
			log.Fatal(err)
		}
		runMem := int64(280 << 20)
		if sys.Passive() {
			runMem = 120 << 20
		}
		busy0 := sys.Host.CPU.BusyTime()
		res, err := sys.Run(gen, core.RunConfig{
			Requests: 3000, IODepth: 32,
			SampleEvery: sim.Millisecond,
			RunMemBytes: runMem,
		})
		if err != nil {
			log.Fatal(err)
		}
		util := float64(sys.Host.CPU.BusyTime()-busy0) / float64(res.Elapsed()) / 4
		fmt.Printf("%-10s %10.1f %13.1f%% %14.0f %12.1f\n",
			dev, res.BandwidthMBps(), util*100,
			res.HostMemMB.Max(), res.AvgLatencyUs())
	}
	fmt.Println()
	fmt.Println("pblk+LightNVM run the FTL, cache and GC on host cores — the CPU and")
	fmt.Println("memory cost the paper identifies as passive storage's open problem.")
}
