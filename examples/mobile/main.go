// mobile reproduces §V-D in miniature: the same flash backend behind UFS
// vs NVMe on a handheld-class host. NVMe's rich queues and faster link win,
// but the low-power host CPU cannot always generate enough I/O to exploit
// them — and the SSD-side power tells the other half of the story.
package main

import (
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/workload"
)

func main() {
	fmt.Println("Handheld vs general computing (paper §V-D, Fig. 13)")
	fmt.Println()

	type outcome struct {
		name  string
		bw    float64
		cpuW  float64
		dramW float64
		nandW float64
		instr float64
	}
	var results []outcome

	for _, dev := range []string{"ufs", "mobile-nvme"} {
		d, err := config.Device(dev)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := core.NewSystem(config.MobileSystem(d))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Precondition(32); err != nil {
			log.Fatal(err)
		}
		gen, err := workload.NewFIO(workload.RandRead, 4096, sys.VolumeBytes(), 3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(gen, core.RunConfig{Requests: 3000, IODepth: 32})
		if err != nil {
			log.Fatal(err)
		}
		el := res.Elapsed()
		results = append(results, outcome{
			name:  string(sys.Protocol().Kind.String()),
			bw:    res.BandwidthMBps(),
			cpuW:  sys.DevCPU.AveragePowerW(el),
			dramW: sys.DevDRAM.AveragePowerW(el),
			nandW: sys.Flash.AveragePowerW(el),
			instr: float64(sys.DevCPU.Instructions().Total()) / 1e6,
		})
	}

	fmt.Printf("%-8s %10s %8s %8s %8s %12s\n", "iface", "MB/s", "cpu W", "dram W", "nand W", "fw Minstr")
	for _, r := range results {
		fmt.Printf("%-8s %10.1f %8.2f %8.2f %8.2f %12.1f\n",
			r.name, r.bw, r.cpuW, r.dramW, r.nandW, r.instr)
	}
	fmt.Println()
	fmt.Printf("NVMe/UFS bandwidth ratio: %.2fx (paper: up to 1.81x)\n", results[1].bw/results[0].bw)
	fmt.Println("The embedded CPU dominates SSD power — the paper's argument that mobile")
	fmt.Println("NVMe needs hardware automation to fit handheld power budgets.")
}
