// Farm: a shelf of nine simulated SSDs behind one host multiplexer rides
// out a seeded fault storm — a whole-device death, read-only latches and
// latency storms — while tenants keep writing and reading verified
// payloads. The host answers with retries, timeouts, hedged reads,
// replica failover and a hot-spare rebuild, and the run ends with every
// payload intact and the failure timeline printed.
//
// The whole trajectory is deterministic: the fault schedule is a pure
// function of the seed, and the round-lockstep executor makes the result
// byte-identical at any -workers value (the same guarantee the golden
// equivalence test in internal/farm pins).
package main

import (
	"flag"
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/farm"
	"amber/internal/sim"
)

func main() {
	workers := flag.Int("workers", 0, "parallel device-window workers (byte-identical at any value)")
	flag.Parse()

	// Four replica groups of two mirrors plus one hot spare, each a full
	// simulated small SSD cloned from one snapshot. The seed-4 schedule
	// resolves to one device death, three read-only latches and several
	// latency storms on this topology.
	f, err := farm.New(farm.Config{
		Device:   config.PCSystem(config.SmallTestDevice()),
		Groups:   4,
		Replicas: 2,
		Spares:   1,
		Workers:  *workers,
		Policy:   farm.Policy{HedgeAfter: 2 * sim.Millisecond},
		Faults: farm.FaultConfig{
			Seed:         4,
			DeathProb:    0.15,
			DeathMin:     8 * sim.Millisecond,
			DeathMax:     30 * sim.Millisecond,
			ReadOnlyProb: 0.10,
			ReadOnlyMin:  8 * sim.Millisecond,
			ReadOnlyMax:  30 * sim.Millisecond,
			StormProb:    0.30,
			StormMin:     5 * sim.Millisecond,
			StormMax:     40 * sim.Millisecond,
			StormLen:     20 * sim.Millisecond,
			StormPenalty: 8 * sim.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three tenants, each writing its private span and reading it back
	// with end-to-end payload verification: a corruption — a stale read
	// off a kicked replica, a mis-rebuilt unit on the spare — would be
	// counted, and the run below insists on zero.
	res, err := f.Run(farm.RunConfig{
		Tenants:       3,
		Requests:      120,
		MixedWrites:   60,
		Seed:          42,
		WithData:      true,
		DisjointSpans: true,
		VerifyReads:   true,
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("farm: %d devices, %d requests, %d device sub-ops, simulated %.0f ms\n",
		f.Devices(), s.Requests, s.SubOps, float64(res.Now)/1e6)
	fmt.Printf("robustness: %d retries, %d timeouts, %d hedges (%d won)\n",
		s.Retries, s.Timeouts, s.Hedges, s.HedgeWins)
	fmt.Printf("faults: %d deaths, %d read-only latches; rebuilds %d completed (%d units copied)\n",
		s.DeviceDeaths, s.ReadOnlyLatches, s.RebuildsCompleted, s.UnitsCopied)
	fmt.Printf("verified: %d corruptions, %d failed writes, %d failed reads\n",
		s.Corruptions, s.FailedWrites, s.FailedReads)
	fmt.Println("timeline:")
	for _, e := range s.Events {
		fmt.Printf("  %s\n", e)
	}
	if s.Corruptions != 0 {
		log.Fatal("payload verification failed")
	}
}
