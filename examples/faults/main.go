// Faults: run a small SSD to wear-out under deterministic fault injection
// and print the degradation timeline — injected failures, grown-bad-block
// retirements, recovery replans, shrinking spare headroom — until the
// spare reserve runs out and the device latches read-only (writes then
// fail with ftl.ErrReadOnly; reads keep serving).
//
// The schedule is a pure function of the fault seed and the request
// stream: rerunning this program, serially or with intra-parallel
// workers, reproduces the same faults at the same operations.
package main

import (
	"errors"
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/ftl"
	"amber/internal/workload"
)

func main() {
	// A tiny device under the end-of-life fault profile: blocks wear out
	// after ~50 erases, and program/erase/read failure rates climb with
	// each block's erase count.
	d := config.SmallTestDevice()
	d.TrackData = false
	// Generous over-provisioning gives the grown-bad-block machinery room
	// to absorb several retirements before capacity, not the spare budget,
	// would end the device.
	d.OPRatio = 0.4
	faults, err := config.FaultProfile("wearout", 7)
	if err != nil {
		log.Fatal(err)
	}
	d.Faults = faults
	d.SpareBlocks = 4

	sys, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s, %d MB volume, %d super-blocks, %d spares, fault profile wearout (seed %d)\n",
		sys.Config().Device.Name, sys.VolumeBytes()>>20,
		sys.FTL.UserSuperPages()/16, d.SpareBlocks, faults.Seed)
	if err := sys.Precondition(16); err != nil {
		log.Fatal(err)
	}

	// Hammer the volume with 4K random overwrites in chunks, printing the
	// degradation after each: GC erases age the blocks, wear raises the
	// injected failure rates, failures retire blocks out of the spare
	// reserve, and eventually the reserve runs dry.
	gen, err := workload.NewFIO(workload.RandWrite, 4096, sys.VolumeBytes(), 3)
	if err != nil {
		log.Fatal(err)
	}
	const chunk = 400
	for round := 1; ; round++ {
		res, err := sys.Run(gen, core.RunConfig{Requests: chunk, IODepth: 16})
		if err != nil {
			// A non-degradation error would abort the run; spare
			// exhaustion never does — it surfaces through the result.
			if errors.Is(err, ftl.ErrReadOnly) {
				log.Fatal("unexpected: ErrReadOnly aborted the run instead of degrading it")
			}
			log.Fatal(err)
		}
		fst := sys.Flash.FaultStats()
		fs := sys.FTL.Stats()
		fmt.Printf("round %2d: %5d writes (%4d refused)  faults %3dp/%3de/%3du  retries %4d  retired %2d  replans %3d  spare headroom %d\n",
			round, chunk*round, res.FailedWrites,
			fst.ProgramFails, fst.EraseFails, fst.Uncorrectable, fst.ReadRetries,
			fs.Retirements, fs.Replans, sys.FTL.SpareHeadroom())
		if res.ReadOnly {
			fmt.Printf("\nwear-out: spare reserve exhausted after %d retirements (order %v)\n",
				fs.Retirements, sys.FTL.RetiredSuperBlocks())
			break
		}
		if round > 200 {
			log.Fatal("device refused to die; raise the fault rates")
		}
	}

	// The device is read-only, not dead: writes fail fast with a sentinel
	// the host can test for, reads still serve every mapped page.
	_, err = sys.Submit(sys.Now(), workload.Request{Write: true, Offset: 0, Length: 4096}, nil)
	fmt.Printf("write after wear-out: %v (errors.Is(ftl.ErrReadOnly) = %v)\n", err, errors.Is(err, ftl.ErrReadOnly))
	if _, err := sys.Submit(sys.Now(), workload.Request{Offset: 0, Length: 4096}, nil); err != nil {
		fmt.Printf("read after wear-out: %v\n", err)
	} else {
		fmt.Println("read after wear-out: still served")
	}
}
