// Faults: run a small SSD to wear-out under deterministic fault injection
// and print the degradation timeline — injected failures, grown-bad-block
// retirements, recovery replans, shrinking spare headroom — until the
// spare reserve runs out and the device latches read-only (writes then
// fail with ftl.ErrReadOnly; reads keep serving).
//
// The schedule is a pure function of the fault seed and the request
// stream: rerunning this program, serially or with intra-parallel
// workers, reproduces the same faults at the same operations.
package main

import (
	"errors"
	"fmt"
	"log"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/ftl"
	"amber/internal/nand"
	"amber/internal/sim"
	"amber/internal/workload"
)

func main() {
	// A tiny device under the end-of-life fault profile: blocks wear out
	// after ~50 erases, and program/erase/read failure rates climb with
	// each block's erase count.
	d := config.SmallTestDevice()
	d.TrackData = false
	// Generous over-provisioning gives the grown-bad-block machinery room
	// to absorb several retirements before capacity, not the spare budget,
	// would end the device.
	d.OPRatio = 0.4
	faults, err := config.FaultProfile("wearout", 7)
	if err != nil {
		log.Fatal(err)
	}
	d.Faults = faults
	d.SpareBlocks = 4

	sys, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %s, %d MB volume, %d super-blocks, %d spares, fault profile wearout (seed %d)\n",
		sys.Config().Device.Name, sys.VolumeBytes()>>20,
		sys.FTL.UserSuperPages()/16, d.SpareBlocks, faults.Seed)
	if err := sys.Precondition(16); err != nil {
		log.Fatal(err)
	}

	// Hammer the volume with 4K random overwrites in chunks, printing the
	// degradation after each: GC erases age the blocks, wear raises the
	// injected failure rates, failures retire blocks out of the spare
	// reserve, and eventually the reserve runs dry.
	gen, err := workload.NewFIO(workload.RandWrite, 4096, sys.VolumeBytes(), 3)
	if err != nil {
		log.Fatal(err)
	}
	const chunk = 400
	for round := 1; ; round++ {
		res, err := sys.Run(gen, core.RunConfig{Requests: chunk, IODepth: 16})
		if err != nil {
			// A non-degradation error would abort the run; spare
			// exhaustion never does — it surfaces through the result.
			if errors.Is(err, ftl.ErrReadOnly) {
				log.Fatal("unexpected: ErrReadOnly aborted the run instead of degrading it")
			}
			log.Fatal(err)
		}
		fst := sys.Flash.FaultStats()
		fs := sys.FTL.Stats()
		fmt.Printf("round %2d: %5d writes (%4d refused)  faults %3dp/%3de/%3du  retries %4d  retired %2d  replans %3d  spare headroom %d\n",
			round, chunk*round, res.FailedWrites,
			fst.ProgramFails, fst.EraseFails, fst.Uncorrectable, fst.ReadRetries,
			fs.Retirements, fs.Replans, sys.FTL.SpareHeadroom())
		if res.ReadOnly {
			fmt.Printf("\nwear-out: spare reserve exhausted after %d retirements (order %v)\n",
				fs.Retirements, sys.FTL.RetiredSuperBlocks())
			break
		}
		if round > 200 {
			log.Fatal("device refused to die; raise the fault rates")
		}
	}

	// The device is read-only, not dead: writes fail fast with a sentinel
	// the host can test for, reads still serve every mapped page.
	_, err = sys.Submit(sys.Now(), workload.Request{Write: true, Offset: 0, Length: 4096}, nil)
	fmt.Printf("write after wear-out: %v (errors.Is(ftl.ErrReadOnly) = %v)\n", err, errors.Is(err, ftl.ErrReadOnly))
	if _, err := sys.Submit(sys.Now(), workload.Request{Offset: 0, Length: 4096}, nil); err != nil {
		fmt.Printf("read after wear-out: %v\n", err)
	} else {
		fmt.Println("read after wear-out: still served")
	}

	rainTimeline()
}

// rainTimeline contrasts read-disturb wear-out across the RAIN policy
// space. Read stress — not program wear — does the damage here: repeat
// reads push blocks past their disturb limit and draws go uncorrectable.
// The bare device surfaces them as failed reads (permanent data loss).
// RAIN reconstructs every one from its stripe — zero failed reads — but
// without a patrol the firmware cannot tell stress from damage, so blocks
// that keep sourcing reconstructions are retired conservatively and the
// spare reserve drains toward the read-only latch. Arming the patrol
// scrub replaces those retirements with refreshes (migrate, erase — the
// erase clears the accumulated stress), deferring the latch.
func rainTimeline() {
	leg := func(rain, scrub bool) {
		d := config.SmallTestDevice()
		d.OPRatio = 0.4
		d.SpareBlocks = 1
		d.Faults = nand.FaultConfig{
			Seed:             21,
			ReadFailProb:     0.04,
			MaxReadRetries:   1,
			ReadDisturbLimit: 512,
			RetentionLimit:   500 * sim.Millisecond,
		}
		var scrubEvery sim.Duration
		if rain {
			d.RAINWidth = 3 // 4 planes: 3 data + 1 parity
		}
		if scrub {
			scrubEvery = 2 * sim.Millisecond
		}
		sys, err := core.NewSystem(config.PCSystem(d))
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Precondition(16); err != nil {
			log.Fatal(err)
		}
		wgen, err := workload.NewFIO(workload.RandWrite, 4096, sys.VolumeBytes(), 5)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Run(wgen, core.RunConfig{Requests: 300, IODepth: 8, WithData: true}); err != nil {
			log.Fatal(err)
		}
		rgen, err := workload.NewFIO(workload.RandRead, 4096, sys.VolumeBytes(), 13)
		if err != nil {
			log.Fatal(err)
		}
		name := "bare"
		switch {
		case rain && scrub:
			name = "rain+scrub"
		case rain:
			name = "rain, no scrub"
		}
		fmt.Printf("\n%s:\n", name)
		failed := 0
		for round := 1; round <= 12; round++ {
			res, err := sys.Run(rgen, core.RunConfig{Requests: 250, IODepth: 8, ScrubEvery: scrubEvery})
			if err != nil {
				log.Fatal(err)
			}
			failed += res.FailedReads
			fst := sys.Flash.FaultStats()
			fs := sys.FTL.Stats()
			fmt.Printf("  round %2d: %4d reads (%3d failed)  uncorrectable %3d  recon %3d  retired %d  scrubs %4d  headroom %d%s\n",
				round, 250*round, failed, fst.Uncorrectable,
				fs.Reconstructions, fs.Retirements, fs.ScrubRuns, sys.FTL.SpareHeadroom(),
				map[bool]string{true: "  READ-ONLY", false: ""}[sys.FTL.ReadOnly()])
			if sys.FTL.ReadOnly() {
				break
			}
		}
		fs := sys.FTL.Stats()
		fmt.Printf("  => %d failed reads, %d reconstructions (%d double faults), %d retirements, read-only %v\n",
			failed, fs.Reconstructions, fs.DoubleFaults, fs.Retirements, sys.FTL.ReadOnly())
	}

	fmt.Println("\n=== RAIN vs no-RAIN under read-disturb stress ===")
	leg(false, false)
	leg(true, false)
	leg(true, true)
}
