// Package amber's root bench suite regenerates every table and figure of
// the paper's evaluation (one benchmark per table/figure, DESIGN.md §4)
// plus ablation benches for the §IV-C design choices. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment in quick mode and reports the
// simulator's wall-clock cost; the printed tables themselves come from
// cmd/amberbench.
package amber_test

import (
	"testing"

	"amber/internal/config"
	"amber/internal/core"
	"amber/internal/exp"
	"amber/internal/simbench"
	"amber/internal/workload"
)

var quick = exp.Options{Quick: true}

func benchExperiment(b *testing.B, run func(exp.Options) (*exp.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := run(quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkTableI_Config(b *testing.B)                    { benchExperiment(b, exp.TableI) }
func BenchmarkFigure3_BaselineBandwidth(b *testing.B)        { benchExperiment(b, exp.Figure3) }
func BenchmarkFigure4_BaselineLatency(b *testing.B)          { benchExperiment(b, exp.Figure4) }
func BenchmarkFigure8_ValidationBandwidth(b *testing.B)      { benchExperiment(b, exp.Figure8) }
func BenchmarkFigure9_ValidationLatency(b *testing.B)        { benchExperiment(b, exp.Figure9) }
func BenchmarkFigure10_BlockSize(b *testing.B)               { benchExperiment(b, exp.Figure10) }
func BenchmarkFigure11_OverProvisioning(b *testing.B)        { benchExperiment(b, exp.Figure11) }
func BenchmarkFigure12_OSImpact(b *testing.B)                { benchExperiment(b, exp.Figure12) }
func BenchmarkFigure13a_MobileVsPC(b *testing.B)             { benchExperiment(b, exp.Figure13a) }
func BenchmarkFigure13b_PowerBreakdown(b *testing.B)         { benchExperiment(b, exp.Figure13b) }
func BenchmarkFigure13c_InstructionBreakdown(b *testing.B)   { benchExperiment(b, exp.Figure13c) }
func BenchmarkFigure14_CPUFrequency(b *testing.B)            { benchExperiment(b, exp.Figure14) }
func BenchmarkFigure15a_ActivePassiveBandwidth(b *testing.B) { benchExperiment(b, exp.Figure15a) }
func BenchmarkFigure15b_KernelCPU(b *testing.B)              { benchExperiment(b, exp.Figure15b) }
func BenchmarkFigure15c_DRAMUsage(b *testing.B)              { benchExperiment(b, exp.Figure15c) }
func BenchmarkFigure16_SimSpeed(b *testing.B)                { benchExperiment(b, exp.Figure16) }
func BenchmarkTableIV_Features(b *testing.B)                 { benchExperiment(b, exp.TableIV) }

// ablationSystem measures 4K random-read or write bandwidth for a mutated
// device configuration — the harness for the §IV-C design-choice ablations
// DESIGN.md calls out.
func ablationBandwidth(b *testing.B, pattern workload.Pattern, mutate func(*core.DeviceConfig)) float64 {
	b.Helper()
	d, err := config.Device("intel750")
	if err != nil {
		b.Fatal(err)
	}
	if mutate != nil {
		mutate(&d)
	}
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Precondition(32); err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewFIO(pattern, 4096, s.VolumeBytes(), 5)
	if err != nil {
		b.Fatal(err)
	}
	res, err := s.Run(gen, core.RunConfig{Requests: 1500, IODepth: 32})
	if err != nil {
		b.Fatal(err)
	}
	return res.BandwidthMBps()
}

// BenchmarkAblation_NoReadahead quantifies §IV-C's parallelism-aware
// readahead: sequential-read bandwidth with and without it.
func BenchmarkAblation_NoReadahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationBandwidth(b, workload.SeqRead, nil)
		without := ablationBandwidth(b, workload.SeqRead, func(d *core.DeviceConfig) {
			d.ReadaheadThreshold = 0
			d.ReadaheadLines = 0
		})
		b.ReportMetric(with/without, "readahead-speedup")
	}
}

// BenchmarkAblation_NoPartialUpdate quantifies §IV-C's super-page hashmap:
// random-write bandwidth with partial updates vs read-modify-write.
func BenchmarkAblation_NoPartialUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := ablationBandwidth(b, workload.RandWrite, nil)
		without := ablationBandwidth(b, workload.RandWrite, func(d *core.DeviceConfig) {
			d.PartialUpdate = false
		})
		b.ReportMetric(with/without, "partial-update-speedup")
	}
}

// BenchmarkAblation_NoComputationComplex shows what omitting the embedded
// cores does to the curve: with a near-infinite-speed computation complex
// the firmware becomes free, reproducing the baseline-simulator optimism
// the paper criticizes.
func BenchmarkAblation_NoComputationComplex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		real := ablationBandwidth(b, workload.RandRead, nil)
		ideal := ablationBandwidth(b, workload.RandRead, func(d *core.DeviceConfig) {
			d.CPU.FrequencyMHz = 1e6 // effectively free firmware
		})
		b.ReportMetric(ideal/real, "firmware-cost-factor")
	}
}

// BenchmarkAblation_GCPolicy compares Greedy and Cost-Benefit victim
// selection under steady-state random writes.
func BenchmarkAblation_GCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		greedy := ablationBandwidth(b, workload.RandWrite, nil)
		cb := ablationBandwidth(b, workload.RandWrite, func(d *core.DeviceConfig) {
			d.GCPolicy = 1 // ftl.CostBenefit
		})
		b.ReportMetric(cb/greedy, "costbenefit-vs-greedy")
	}
}

// BenchmarkEngineHotLoop measures raw engine throughput under
// schedule/cancel/step churn at a realistic total queue depth (the shared
// simbench harness, also run by amberbench -json). The "global" case puts
// every event in the default domain — the single global heap the engine
// used before sharding — while "sharded" spreads the same population
// across the Intel 750 preset's scheduling domains (12 NAND channels +
// host + cpu + icl.dram + dma), so each dispatch sifts a heap 1/16th the
// size plus an O(log S) tournament repair.
func BenchmarkEngineHotLoop(b *testing.B) {
	run := func(b *testing.B, domains int) {
		h := simbench.NewHotLoop(domains)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Op()
		}
		b.StopTimer()
		h.Drain()
	}
	b.Run("global", func(b *testing.B) { run(b, 1) })
	b.Run("sharded16", func(b *testing.B) { run(b, simbench.HotLoopDomains) })
}

// BenchmarkIntraParallel measures horizon-synchronized parallel intra-device
// dispatch on the shared simbench harness: 16 channel shards each receiving
// page-copy events between horizons (the shape of deferred flash bookkeeping
// on a data-tracking device). "serial" is the plain single-goroutine
// dispatcher; the worker variants fan the channel shards out between
// synchronization horizons. Wall-clock speedup requires multiple cores
// (GOMAXPROCS); on a single-core machine the variants measure the barrier
// overhead instead.
func BenchmarkIntraParallel(b *testing.B) {
	const channels, perChannel, rounds = 16, 64, 25
	run := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := simbench.NewIntraLoop(channels, perChannel, rounds)
			l.Run(workers)
			if got, want := l.Dispatched(), uint64(channels*perChannel*rounds+rounds+1); got != want {
				b.Fatalf("dispatched %d events, want %d", got, want)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("workers2", func(b *testing.B) { run(b, 2) })
	b.Run("workers4", func(b *testing.B) { run(b, 4) })

	// The batched variant interleaves channel-neutral cross events between
	// the local bursts (half of perChannel per horizon): with horizon
	// batching they dispatch without draining the channel shards, so the
	// barrier count stays one per horizon instead of growing with the
	// neutral traffic.
	runNeutral := func(b *testing.B, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l := simbench.NewIntraLoopNeutral(channels, perChannel, perChannel/2, rounds)
			st := l.Run(workers)
			if workers > 0 && st.BatchedCross == 0 {
				b.Fatal("no cross events batched")
			}
		}
	}
	b.Run("neutral-serial", func(b *testing.B) { runNeutral(b, 0) })
	b.Run("neutral-workers4", func(b *testing.B) { runNeutral(b, 4) })
}

// BenchmarkIntraParallelSystem measures the full-system effect on a wide
// (8-channel) data-tracking device: serial dispatch vs horizon-synchronized
// dispatch at 4 workers, under sequential reads (PR 3's original fast
// path), GC-triggering 4K random writes (deferred program/erase
// bookkeeping), and 4K random reads (the small-window class horizon
// batching targets). The modes are byte-identical in results (locked by
// the core golden equivalence tests); this benchmark records their
// wall-clock cost.
func BenchmarkIntraParallelSystem(b *testing.B) {
	build := func() *core.System {
		d := config.SmallTestDevice()
		d.Geometry.Channels = 8
		d.Geometry.PackagesPerChannel = 1
		d.Geometry.BlocksPerPlane = 10
		s, err := core.NewSystem(config.PCSystem(d))
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Precondition(16); err != nil {
			b.Fatal(err)
		}
		return s
	}
	run := func(b *testing.B, pattern workload.Pattern, bs, workers int) {
		s := build()
		gen, err := workload.NewFIO(pattern, bs, s.VolumeBytes(), 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Run(gen, core.RunConfig{Requests: 300, IODepth: 16, IntraWorkers: workers, WithData: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq-read-serial", func(b *testing.B) { run(b, workload.SeqRead, 16384, 0) })
	b.Run("seq-read-workers4", func(b *testing.B) { run(b, workload.SeqRead, 16384, 4) })
	b.Run("rand-write-serial", func(b *testing.B) { run(b, workload.RandWrite, 4096, 0) })
	b.Run("rand-write-workers4", func(b *testing.B) { run(b, workload.RandWrite, 4096, 4) })
	b.Run("rand-read-serial", func(b *testing.B) { run(b, workload.RandRead, 4096, 0) })
	b.Run("rand-read-workers4", func(b *testing.B) { run(b, workload.RandRead, 4096, 4) })
}

// BenchmarkSubmitPathIntra measures the synchronous Submit wrapper with the
// pooled intra mode (System.SetIntraWorkers) on a data-tracking device —
// the trace-replay shape the submit-path intra mode exists for — against
// the plain serial drain.
func BenchmarkSubmitPathIntra(b *testing.B) {
	run := func(b *testing.B, workers int) {
		d := config.SmallTestDevice()
		d.Geometry.Channels = 8
		d.Geometry.PackagesPerChannel = 1
		d.Geometry.BlocksPerPlane = 10
		s, err := core.NewSystem(config.PCSystem(d))
		if err != nil {
			b.Fatal(err)
		}
		s.SetIntraWorkers(workers)
		defer s.SetIntraWorkers(0)
		gen, err := workload.NewFIO(workload.SeqRead, 16384, s.VolumeBytes(), 3)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Precondition(16); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 16384)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Submit(s.Now(), gen.Next(i), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("serial", func(b *testing.B) { run(b, 0) })
	b.Run("workers4", func(b *testing.B) { run(b, 4) })
}

// BenchmarkSubmitPath measures the raw simulator throughput of the full
// I/O path (requests simulated per second of wall clock).
func BenchmarkSubmitPath(b *testing.B) {
	d := config.SmallTestDevice()
	d.TrackData = false
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := gen.Next(i)
		if _, err := s.Submit(s.Now(), req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubmitBatch measures the same stream through the vectored
// SubmitBatch API: identical simulated results to the Submit loop above
// (core's golden equivalence test), with per-request constants amortized
// across queue-depth windows.
func BenchmarkSubmitBatch(b *testing.B) {
	d := config.SmallTestDevice()
	d.TrackData = false
	s, err := core.NewSystem(config.PCSystem(d))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewFIO(workload.RandWrite, 4096, s.VolumeBytes(), 1)
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]workload.Request, b.N)
	for i := range reqs {
		reqs[i] = gen.Next(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.SubmitBatch(s.Now(), reqs, nil, nil); err != nil {
		b.Fatal(err)
	}
}
