module amber

go 1.24
