// Command amberbench regenerates the paper's tables and figures
// (§V evaluation): every experiment prints the same rows/series the paper
// reports, computed by the simulator.
//
// Usage:
//
//	amberbench                 # run everything (full resolution)
//	amberbench -quick          # reduced request counts / sweep resolution
//	amberbench -only fig8,fig9 # a subset
//	amberbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"amber/internal/exp"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced request counts and sweep resolution")
		only  = flag.String("only", "", "comma-separated experiment ids (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	o := exp.Options{Quick: *quick}
	failed := 0
	for _, e := range exp.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		t, err := e.Run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "amberbench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
